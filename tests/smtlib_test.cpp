// Tests for SMT-LIB2 query export.
#include <sstream>

#include <gtest/gtest.h>

#include "src/smt/smtlib_export.h"

namespace bcert::smt {
namespace {

using expr::ExprPool;
using interval::Box;

TEST(SmtLib, ExpressionRendering) {
  ExprPool p;
  const auto x = p.var(0), y = p.var(1);
  EXPECT_EQ(to_smtlib(p, p.add(x, y)), "(+ x0 x1)");
  // Commutative ops canonicalize operand order by node id.
  EXPECT_EQ(to_smtlib(p, p.mul(p.constant(2.0), x)), "(* x0 2.0)");
  EXPECT_EQ(to_smtlib(p, p.sin(x)), "(sin x0)");
  EXPECT_EQ(to_smtlib(p, p.tanh(x)), "(tanh x0)");
  EXPECT_EQ(to_smtlib(p, p.sqr(x)), "(* x0 x0)");
  EXPECT_EQ(to_smtlib(p, p.pow(x, 3)), "(^ x0 3)");
  EXPECT_EQ(to_smtlib(p, p.neg(x)), "(- x0)");
}

TEST(SmtLib, NegativeLiteralsWrapped) {
  ExprPool p;
  const std::string s = to_smtlib(p, p.add(p.var(0), p.constant(-1.5)));
  EXPECT_NE(s.find("(- 1.5)"), std::string::npos);
}

TEST(SmtLib, SigmoidExpanded) {
  ExprPool p;
  const std::string s = to_smtlib(p, p.sigmoid(p.var(0)));
  EXPECT_NE(s.find("exp"), std::string::npos);
  EXPECT_EQ(s.find("sigmoid"), std::string::npos);
}

TEST(SmtLib, CustomVariableNames) {
  ExprPool p;
  const std::string s =
      to_smtlib(p, p.mul(p.var(0), p.var(1)), {"d_err", "th_err"});
  EXPECT_NE(s.find("d_err"), std::string::npos);
  EXPECT_NE(s.find("th_err"), std::string::npos);
  EXPECT_EQ(s.find("x0"), std::string::npos);
}

TEST(SmtLib, FullBenchmarkStructure) {
  ExprPool p;
  Conjunction c;
  c.add(p.sub(p.sqr(p.var(0)), p.one()), Rel::kLe);
  c.add(p.sin(p.var(1)), Rel::kGt);
  std::ostringstream os;
  write_smtlib(os, p, c, Box::from_bounds({{-2.0, 2.0}, {0.0, 3.0}}));
  const std::string out = os.str();
  EXPECT_NE(out.find("(set-logic QF_NRA)"), std::string::npos);
  EXPECT_NE(out.find("(declare-fun x0 () Real)"), std::string::npos);
  EXPECT_NE(out.find("(declare-fun x1 () Real)"), std::string::npos);
  EXPECT_NE(out.find("(assert (>= x0 (- 2.0)))"), std::string::npos);
  EXPECT_NE(out.find("(assert (<= x0 2.0))"), std::string::npos);
  EXPECT_NE(out.find("(check-sat)"), std::string::npos);
  EXPECT_NE(out.find("(exit)"), std::string::npos);
  // Constraints appear with their relations.
  EXPECT_NE(out.find("(<= (- (* x0 x0) 1.0) 0.0)"), std::string::npos);
  EXPECT_NE(out.find("(> (sin x1) 0.0)"), std::string::npos);
}

TEST(SmtLib, DnfBecomesOrOfAnds) {
  ExprPool p;
  Conjunction a, b;
  a.add(p.var(0), Rel::kLe);
  b.add(p.var(0), Rel::kGe);
  Dnf dnf({a, b});
  std::ostringstream os;
  write_smtlib(os, p, dnf, Box::from_bounds({{-1.0, 1.0}}));
  const std::string out = os.str();
  EXPECT_NE(out.find("(assert (or"), std::string::npos);
  EXPECT_NE(out.find("(and (<= x0 0.0))"), std::string::npos);
  EXPECT_NE(out.find("(and (>= x0 0.0))"), std::string::npos);
}

TEST(SmtLib, SharedSubtermsRenderConsistently) {
  ExprPool p;
  const auto t = p.tanh(p.var(0));
  const auto e = p.add(t, p.mul(t, t));  // tanh(x0) appears 3 times
  const std::string s = to_smtlib(p, e);
  // Count occurrences of "(tanh x0)".
  std::size_t count = 0, pos = 0;
  while ((pos = s.find("(tanh x0)", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 3u);
}

TEST(SmtLib, IntegralConstantsGetDecimalPoint) {
  ExprPool p;
  const std::string s = to_smtlib(p, p.add(p.var(0), p.constant(42.0)));
  EXPECT_NE(s.find("42.0"), std::string::npos);
}

}  // namespace
}  // namespace bcert::smt
