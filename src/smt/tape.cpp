#include "src/smt/tape.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <stdexcept>

#include "src/core/fault.h"
#include "src/expr/eval.h"
#include "src/smt/jit/hc4_jit.h"
#include "src/smt/projections.h"
#include "src/smt/tape_kernels.h"

namespace bcert::smt {

using expr::ExprId;
using expr::kNoExpr;
using expr::Node;
using expr::Op;
using interval::Interval;
using tkern::const_quotient_feasible;
using tkern::mul_rec;
#if BCERT_TAPE_SSE2
using tkern::add_iv;
using tkern::load_iv;
using tkern::refine_sub;
#endif

Hc4Tape::Hc4Tape(const expr::ExprPool& pool, Conjunction conjunction)
    : conjunction_(std::move(conjunction)) {
  // Degradation-ladder rung: a throw here is caught by the ICP
  // contractor setup, which falls back to the tree backend.
  core::FaultRegistry::check(core::FaultPoint::kTapeCompile);
  std::vector<ExprId> roots;
  roots.reserve(conjunction_.size());
  for (const Constraint& k : conjunction_.constraints) roots.push_back(k.lhs);

  // Borrow the evaluator's topological schedule so the *instruction
  // order* — and therefore every arithmetic step — matches the
  // tree-walking path exactly (the differential fuzz suite relies on
  // this). Register numbering is free to differ: slots are laid out as
  // [constants | variables | interior nodes], each group in schedule
  // order, so the leaf loads are contiguous (one memcpy re-seeds every
  // constant) and the forward sweep writes a dense ascending range.
  const expr::Evaluator ev(pool, std::move(roots));
  const std::vector<ExprId>& schedule = ev.schedule();
  num_slots_ = schedule.size();

  std::vector<TapeSlot> slot_of(schedule.size());
  std::size_t num_consts = 0, num_vars = 0;
  for (const ExprId id : schedule) {
    const Op op = pool.node(id).op;
    num_consts += op == Op::kConst;
    num_vars += op == Op::kVar;
  }
  std::size_t next_const = 0;
  std::size_t next_var = num_consts;
  std::size_t next_interior = num_consts + num_vars;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Op op = pool.node(schedule[i]).op;
    std::size_t& counter = op == Op::kConst  ? next_const
                           : op == Op::kVar ? next_var
                                            : next_interior;
    slot_of[i] = static_cast<TapeSlot>(counter++);
  }

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Node& n = pool.node(schedule[i]);
    const TapeSlot slot = slot_of[i];
    if (n.op == Op::kVar) {
      var_slots_.push_back(slot);
      var_dims_.push_back(static_cast<std::uint32_t>(n.index));
      continue;
    }
    if (n.op == Op::kConst) {
      const_slots_.push_back(slot);
      const_values_.push_back(Interval(n.value));
      continue;
    }
    if (n.op == Op::kPow && (n.index > INT16_MAX || n.index < INT16_MIN)) {
      throw std::invalid_argument("Hc4Tape: kPow exponent out of range");
    }
    TapeInstr ins;
    ins.op = n.op;
    ins.exponent = static_cast<std::int16_t>(n.index);
    ins.dst = slot;
    ins.a = slot_of[ev.position_of(n.a)];
    ins.b = n.b != kNoExpr ? slot_of[ev.position_of(n.b)] : kNoSlot;

    // Strength-reduce multiplies with one constant operand (weight
    // products dominate NN-derived conjunctions).
    if (n.op == Op::kMul && mul_const_.size() <= INT16_MAX) {
      const Node& ca = pool.node(n.a);
      const Node& cb = pool.node(n.b);
      const bool a_const = ca.op == Op::kConst;
      const bool b_const = cb.op == Op::kConst;
      if (a_const != b_const) {
        const double w = a_const ? ca.value : cb.value;
        if (w != 0.0 && std::isfinite(w)) {
          MulConstSpec sp;
          sp.w = w;
          sp.rec = Interval(interval::prev_float(1.0 / w),
                            interval::next_float(1.0 / w));
          sp.var_slot = a_const ? ins.b : ins.a;
          sp.const_slot = a_const ? ins.a : ins.b;
          sp.var_is_a = !a_const;
          ins.spec = kSpecMulConst;
          ins.exponent = static_cast<std::int16_t>(mul_const_.size());
          mul_const_.push_back(sp);
        }
      }
    }
    code_.push_back(ins);
  }

  root_slots_.reserve(conjunction_.size());
  root_feasible_.reserve(conjunction_.size());
  for (const Constraint& k : conjunction_.constraints) {
    root_slots_.push_back(slot_of[ev.position_of(k.lhs)]);
    root_feasible_.push_back(k.feasible_values());
  }
}

Hc4Tape::Registers Hc4Tape::make_registers() const {
  Registers regs(num_slots_);
  std::copy(const_values_.begin(), const_values_.end(), regs.begin());
  return regs;
}

void Hc4Tape::load_leaves(const interval::Box& box, Registers& regs) const {
  // Constants are re-seeded every pass: the backward sweep projects
  // requirements into *all* child slots, including constant leaves, and
  // those narrowed points must not leak into the next query's forward
  // values. The layout makes this one contiguous block copy.
  std::copy(const_values_.begin(), const_values_.end(), regs.begin());
  Interval* const var_regs = regs.data() + const_values_.size();
  for (std::size_t i = 0; i < var_slots_.size(); ++i) {
    var_regs[i] = box[var_dims_[i]];
  }
}

void Hc4Tape::forward(Registers& regs) const {
  static const Interval kNoOperand;  // matches the tree path's empty filler
  Interval* const r = regs.data();
  const TapeInstr* const code = code_.data();
  const MulConstSpec* const mc = mul_const_.data();
  const std::size_t n = code_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const TapeInstr ins = code[i];
    if (ins.spec == kSpecMulConst) {
      const MulConstSpec& sp = mc[ins.exponent];
      r[ins.dst] = tkern::mul_const(r[sp.var_slot], sp.w);
      continue;
    }
#if BCERT_TAPE_SSE2
    if (ins.op == Op::kAdd) {
      r[ins.dst] = add_iv(r[ins.a], r[ins.b]);
      continue;
    }
#endif
    const Interval& a = r[ins.a];
    const Interval& b = ins.b != kNoSlot ? r[ins.b] : kNoOperand;
    r[ins.dst] = expr::apply_interval_op(ins.op, ins.exponent, a, b);
  }
}

void Hc4Tape::eval_roots(const interval::Box& box, Registers& regs,
                         std::vector<Interval>& out) const {
  if (regs.size() != num_slots_) regs = make_registers();
  load_leaves(box, regs);
  forward(regs);
  out.resize(root_slots_.size());
  for (std::size_t i = 0; i < root_slots_.size(); ++i) {
    out[i] = regs[root_slots_[i]];
  }
}

ContractResult Hc4Tape::contract(interval::Box& box, Registers& regs,
                                 std::vector<Interval>* fwd_roots) const {
  if (regs.size() != num_slots_) regs = make_registers();
  load_leaves(box, regs);
  forward(regs);

  if (fwd_roots != nullptr) {
    fwd_roots->resize(root_slots_.size());
    for (std::size_t i = 0; i < root_slots_.size(); ++i) {
      (*fwd_roots)[i] = regs[root_slots_[i]];
    }
  }

  // Intersect each constraint root with its feasible value set.
  for (std::size_t i = 0; i < root_slots_.size(); ++i) {
    Interval& root = regs[root_slots_[i]];
    root = intersect(root, root_feasible_[i]);
    if (root.is_empty()) return ContractResult::kEmpty;
  }

  // Reverse sweep: instructions are in topological order, so walking the
  // code backwards processes parents before children and each dst's
  // requirement is final when projected downward.
  core::FaultRegistry::check(core::FaultPoint::kHc4Backward);
  Interval* const reg = regs.data();
  const TapeInstr* const code = code_.data();
  const MulConstSpec* const mc = mul_const_.data();
  for (std::size_t i = code_.size(); i-- > 0;) {
    const TapeInstr ins = code[i];
    const Interval r = reg[ins.dst];
    if (r.is_empty()) return ContractResult::kEmpty;
    if (ins.spec == kSpecMulConst) {
      // Same two projection legs as the generic kMul, in the generic
      // order, but the division by the pristine [w, w] sibling is the
      // precompiled reciprocal multiply.
      const MulConstSpec& sp = mc[ins.exponent];
      Interval& x = reg[sp.var_slot];
      if (sp.var_is_a) {
        x = intersect(x, mul_rec(r, sp.rec, sp.w > 0.0));
        if (x.is_empty()) return ContractResult::kEmpty;
        if (!const_quotient_feasible(sp.w, r, x)) {
          return ContractResult::kEmpty;
        }
      } else {
        if (!const_quotient_feasible(sp.w, r, x)) {
          return ContractResult::kEmpty;
        }
        x = intersect(x, mul_rec(r, sp.rec, sp.w > 0.0));
        if (x.is_empty()) return ContractResult::kEmpty;
      }
      continue;
    }
#if BCERT_TAPE_SSE2
    if (ins.op == Op::kAdd) {
      // Generic kAdd projections, two-lane vectorized.
      const __m128d rv = load_iv(r);
      if (!refine_sub(reg[ins.a], rv, reg[ins.b])) {
        return ContractResult::kEmpty;
      }
      if (!refine_sub(reg[ins.b], rv, reg[ins.a])) {
        return ContractResult::kEmpty;
      }
      continue;
    }
#endif
    Interval* b = ins.b != kNoSlot ? &reg[ins.b] : nullptr;
    if (!detail::project_node(ins.op, ins.exponent, r, reg[ins.a], b)) {
      return ContractResult::kEmpty;
    }
  }

  // Read back the narrowed variable slots.
  bool changed = false;
  for (std::size_t i = 0; i < var_slots_.size(); ++i) {
    const std::uint32_t dim = var_dims_[i];
    const Interval narrowed = intersect(box[dim], regs[var_slots_[i]]);
    if (narrowed.is_empty()) return ContractResult::kEmpty;
    if (!(narrowed == box[dim])) {
      box[dim] = narrowed;
      changed = true;
    }
  }
  return changed ? ContractResult::kContracted : ContractResult::kNoChange;
}

void Hc4Tape::dump(std::ostream& os) const {
  os << "tape: " << code_.size() << " instrs, " << num_slots_ << " slots ("
     << const_slots_.size() << " const, " << var_slots_.size() << " var), "
     << root_slots_.size() << " roots\n";
  for (std::size_t i = 0; i < const_slots_.size(); ++i) {
    os << "  const %" << const_slots_[i] << " = [" << const_values_[i].lo()
       << ", " << const_values_[i].hi() << "]\n";
  }
  for (std::size_t i = 0; i < var_slots_.size(); ++i) {
    os << "  var   %" << var_slots_[i] << " = x" << var_dims_[i] << "\n";
  }
  for (const TapeInstr& ins : code_) {
    os << "  %" << ins.dst << " = ";
    if (ins.spec == kSpecMulConst) {
      const MulConstSpec& sp = mul_const_[ins.exponent];
      os << "mulconst %" << sp.var_slot << ", " << sp.w
         << (sp.var_is_a ? "  (var_is_a)" : "");
    } else {
      os << expr::op_name(ins.op) << " %" << ins.a;
      if (ins.b != kNoSlot) os << ", %" << ins.b;
      if (ins.op == Op::kPow) os << " ^" << ins.exponent;
    }
    os << "\n";
  }
  for (std::size_t i = 0; i < root_slots_.size(); ++i) {
    os << "  root  %" << root_slots_[i] << " in [" << root_feasible_[i].lo()
       << ", " << root_feasible_[i].hi() << "]\n";
  }
}

TapeCache::Signature TapeCache::signature_of(const expr::ExprPool& pool,
                                             const Conjunction& c) {
  Signature sig;
  sig.first = &pool;
  sig.second.reserve(c.size());
  for (const Constraint& k : c.constraints) {
    sig.second.emplace_back(k.lhs, k.rel);
  }
  return sig;
}

std::shared_ptr<const Hc4Tape> TapeCache::get_or_compile(
    const expr::ExprPool& pool, const Conjunction& c) {
  Signature sig = signature_of(pool, c);
  if (auto tape = tapes_.get(sig)) return tape;
  // Compile outside the lock; a racing duplicate compile is harmless
  // (put(replace=false) keeps the first, both tapes are equivalent).
  auto tape = std::make_shared<const Hc4Tape>(pool, c);
  return tapes_.put(std::move(sig), std::move(tape), /*replace=*/false);
}

std::shared_ptr<const Hc4Jit> TapeCache::get_or_compile_jit(
    const expr::ExprPool& pool, const Conjunction& c) {
  Signature sig = signature_of(pool, c);
  if (auto jit = jits_.get(sig)) return jit;
  // The jit is a pure function of the tape, so reuse (or populate) the
  // tape store first, then emit outside the lock. Emission failures
  // propagate and cache nothing.
  auto jit = Hc4Jit::compile(get_or_compile(pool, c));
  return jits_.put(std::move(sig), std::move(jit), /*replace=*/false);
}

}  // namespace bcert::smt
