// Ablation B: how the amount of simulation data (seed traces × samples
// per trace) affects the candidate-generator LP — iterations to a valid
// candidate, LP margin, and end-to-end success.
//
// DESIGN.md design choice probed here: derivative-based decrease
// constraints at sampled points let even sparse trace sets produce valid
// candidates, with the CEX loop patching coverage gaps.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace bcert;

  std::printf("# Ablation B: seed-trace budget vs synthesis behaviour "
              "(20-neuron controller)\n");
  std::printf("# %7s %9s | %7s %8s %8s | %9s | %7s\n", "traces",
              "pts/trace", "status", "iters", "margin", "samples",
              "tot(s)");

  for (const int traces : {2, 5, 10, 20}) {
    for (const std::size_t per_trace : {5ul, 15ul, 40ul}) {
      expr::ExprPool pool;
      const nn::FeedforwardNet controller = dubins::distill_controller(
          dubins::proportional_teacher(), 20, 11);
      core::VerifierOptions opts;
      opts.seed_traces = traces;
      opts.samples_per_trace = per_trace;
      core::BarrierPipeline<core::QuadraticForm> verifier(
          bench::make_problem(pool, controller), opts);
      // Count the samples the seed phase would produce.
      std::size_t n_samples = 0;
      for (const linalg::Vector& x0 :
           verifier.random_initial_states(traces, opts.seed)) {
        n_samples += verifier.simulate_samples(x0).size();
      }
      const core::VerifyResult r = verifier.run();
      std::printf("  %7d %9zu | %7s %8d %8.4f | %9zu | %7.2f\n", traces,
                  per_trace, r.safe() ? "SAFE" : "fail",
                  r.timings.candidate_iterations, r.lp_margin, n_samples,
                  r.timings.total_time_s);
      std::fflush(stdout);
    }
  }
  std::printf("#\n# reading: for this 2-state system even a handful of "
              "samples yields a valid\n# candidate (CEX loop rarely "
              "fires); the LP margin saturates immediately while\n# LP "
              "time grows superlinearly in the sample count — sparse "
              "seeding + CEX\n# refinement is the right operating "
              "point.\n");
  return 0;
}
