#include "src/smt/constraint.h"

#include <bit>
#include <limits>

#include "src/expr/eval.h"

namespace bcert::smt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// SplitMix64 finalizer — a strong 64-bit mixer.
inline std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Two independently-mixed accumulator lanes; feeding each datum
/// through mix64 with lane-distinct tweaks keeps the lanes decorrelated
/// (a collision must survive both).
struct Sig128Hasher {
  std::uint64_t a = 0x62636572742d3161ull;  // "bcert-1a"
  std::uint64_t b = 0x62636572742d3162ull;  // "bcert-1b"

  void feed(std::uint64_t v) {
    a = mix64(a ^ v);
    b = mix64(b ^ ~v) + 0x165667b19e3779f9ull;
  }

  Sig128 digest() const { return {a, b}; }
};
}

const char* rel_name(Rel r) {
  switch (r) {
    case Rel::kLe: return "<=";
    case Rel::kLt: return "<";
    case Rel::kGe: return ">=";
    case Rel::kGt: return ">";
    case Rel::kEq: return "=";
  }
  return "?";
}

interval::Interval Constraint::feasible_values() const {
  switch (rel) {
    case Rel::kLe:
    case Rel::kLt:
      return {-kInf, 0.0};
    case Rel::kGe:
    case Rel::kGt:
      return {0.0, kInf};
    case Rel::kEq:
      return interval::Interval(0.0);
  }
  return interval::Interval::entire();
}

bool Constraint::certainly_violated(const interval::Interval& v) const {
  if (v.is_empty()) return true;
  switch (rel) {
    case Rel::kLe: return v.lo() > 0.0;   // every point has lhs > 0
    case Rel::kLt: return v.lo() >= 0.0;  // every point has lhs ≥ 0
    case Rel::kGe: return v.hi() < 0.0;
    case Rel::kGt: return v.hi() <= 0.0;
    case Rel::kEq: return !v.contains(0.0);
  }
  return false;
}

bool Constraint::certainly_satisfied(const interval::Interval& v) const {
  if (v.is_empty()) return false;
  switch (rel) {
    case Rel::kLe: return v.hi() <= 0.0;
    case Rel::kLt: return v.hi() < 0.0;
    case Rel::kGe: return v.lo() >= 0.0;
    case Rel::kGt: return v.lo() > 0.0;
    case Rel::kEq: return v.is_point() && v.lo() == 0.0;
  }
  return false;
}

Sig128 content_signature(const expr::ExprPool& pool, const Conjunction& c) {
  std::vector<expr::ExprId> roots;
  roots.reserve(c.size());
  for (const Constraint& k : c.constraints) roots.push_back(k.lhs);
  // The Evaluator's schedule is the tape compiler's slot order (a pure
  // structural DFS): hashing node data against *schedule positions*
  // instead of pool ExprIds makes the signature independent of how the
  // pool numbered the DAG, while still covering wiring and sharing
  // exactly as the compiler sees them.
  const expr::Evaluator ev(pool, std::move(roots));
  const std::vector<expr::ExprId>& schedule = ev.schedule();

  Sig128Hasher h;
  h.feed(schedule.size());
  for (const expr::ExprId id : schedule) {
    const expr::Node& n = pool.node(id);
    h.feed(static_cast<std::uint64_t>(n.op));
    if (n.op == expr::Op::kConst) {
      h.feed(std::bit_cast<std::uint64_t>(n.value));
    } else if (n.op == expr::Op::kVar || n.op == expr::Op::kPow) {
      h.feed(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(n.index)));
    }
    h.feed(n.a != expr::kNoExpr ? ev.position_of(n.a) : ~0ull);
    h.feed(n.b != expr::kNoExpr ? ev.position_of(n.b) : ~0ull);
  }
  h.feed(c.size());
  for (const Constraint& k : c.constraints) {
    h.feed(ev.position_of(k.lhs));
    h.feed(static_cast<std::uint64_t>(k.rel));
  }
  return h.digest();
}

Dnf Dnf::conjoin(const Dnf& other) const {
  Dnf out;
  out.disjuncts.reserve(disjuncts.size() * other.disjuncts.size());
  for (const Conjunction& a : disjuncts) {
    for (const Conjunction& b : other.disjuncts) {
      Conjunction c = a;
      c.constraints.insert(c.constraints.end(), b.constraints.begin(),
                           b.constraints.end());
      out.disjuncts.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace bcert::smt
