#pragma once
/// \file log.h
/// \brief Structured key=value logging for the `bcertd` daemon.
///
/// One line per event on a single stream (stderr by default):
///
///   2026-08-09T12:34:56.789Z level=info event=submit job=3 conn=1 ...
///
/// Severity is filtered against `BCERT_LOG_LEVEL`
/// (core::ConfigLogLevel); values containing spaces, quotes or '=' are
/// double-quoted with backslash escaping so lines stay machine-
/// splittable on whitespace. A mutex serializes whole lines — progress
/// events fire from Engine pool workers while the scheduler logs its
/// own, and interleaved fragments would defeat the point of structure.

#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/runtime_config.h"

namespace bcert::daemon {

/// One key=value field. Values are formatted by the caller (keep keys
/// snake_case and stable: tooling greps them).
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {}
  LogField(std::string k, double v);
  LogField(std::string k, std::uint64_t v) : key(std::move(k)),
                                             value(std::to_string(v)) {}
  LogField(std::string k, std::int64_t v) : key(std::move(k)),
                                            value(std::to_string(v)) {}
  LogField(std::string k, int v) : key(std::move(k)),
                                   value(std::to_string(v)) {}
};

/// Thread-safe leveled logger. Cheap when the level filters the event
/// out (one enum compare before any formatting).
class Logger {
 public:
  explicit Logger(core::ConfigLogLevel level, std::ostream* os = nullptr);

  core::ConfigLogLevel level() const { return level_; }

  void log(core::ConfigLogLevel severity, const std::string& event,
           std::vector<LogField> fields = {});

  void error(const std::string& event, std::vector<LogField> fields = {}) {
    log(core::ConfigLogLevel::kError, event, std::move(fields));
  }
  void warn(const std::string& event, std::vector<LogField> fields = {}) {
    log(core::ConfigLogLevel::kWarn, event, std::move(fields));
  }
  void info(const std::string& event, std::vector<LogField> fields = {}) {
    log(core::ConfigLogLevel::kInfo, event, std::move(fields));
  }
  void debug(const std::string& event, std::vector<LogField> fields = {}) {
    log(core::ConfigLogLevel::kDebug, event, std::move(fields));
  }

 private:
  core::ConfigLogLevel level_;
  std::ostream* os_;
  std::mutex mutex_;
};

}  // namespace bcert::daemon
