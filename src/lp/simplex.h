#pragma once
/// \file simplex.h
/// \brief Two-phase dense primal simplex.
///
/// Handles general LPs (free variables, box bounds, ≤/≥/= rows) by
/// conversion to standard form `min cᵀx, Ax = b, x ≥ 0` followed by a
/// tableau simplex with Dantzig pricing and a Bland's-rule fallback for
/// anti-cycling. Built for the small/medium dense problems of the
/// barrier-synthesis loop.

#include "src/lp/problem.h"

namespace bcert::lp {

/// Solver options.
struct SimplexOptions {
  int max_iterations = 50'000;
  double eps = 1e-9;           ///< pivot / feasibility tolerance
  int bland_after = 2'000;     ///< switch to Bland's rule after this many
};

/// Solves \p problem; never throws on solver-status conditions (status is
/// reported in the result), throws std::invalid_argument on malformed
/// input (e.g. inconsistent dimensions).
LpSolution solve_lp(const LpProblem& problem, const SimplexOptions& opts = {});

}  // namespace bcert::lp
