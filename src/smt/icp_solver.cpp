#include "src/smt/icp_solver.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/core/fault.h"
#include "src/core/runtime_config.h"
#include "src/interval/box_batch.h"
#include "src/parallel/thread_pool.h"

namespace bcert::smt {

using clock = std::chrono::steady_clock;
using interval::Box;
using interval::BoxBatch;
using interval::Interval;

const char* sat_result_name(SatResult r) {
  switch (r) {
    case SatResult::kUnsat: return "UNSAT";
    case SatResult::kSat: return "SAT";
    case SatResult::kDeltaSat: return "delta-SAT";
    case SatResult::kUnknown: return "UNKNOWN";
  }
  return "?";
}

linalg::Vector IcpResult::witness_point() const {
  if (!witness) {
    throw std::logic_error("IcpResult::witness_point: no witness");
  }
  return witness->midpoint();
}

int resolve_icp_batch(int requested) {
  // Clamp both the config and RuntimeConfig paths: every worker sizes a
  // BoxBatch and a batch register file by this, so an absurd width is
  // an OOM.
  static constexpr int kMaxBatch = 1024;
  if (requested > 0) return std::min(requested, kMaxBatch);
  const int configured = core::RuntimeConfig::active().icp_batch;
  if (configured > 0) return std::min(configured, kMaxBatch);
  return 8;
}

bool icp_warm_enabled(const IcpConfig& config) {
  if (!config.unsat_cache) return false;
  // Same override contract as the LP warm knob: RuntimeConfig kAuto
  // (BCERT_ICP_WARM unset) defers to the config flag.
  switch (core::RuntimeConfig::active().icp_warm) {
    case core::ConfigToggle::kOn: return true;
    case core::ConfigToggle::kOff: return false;
    case core::ConfigToggle::kAuto: break;
  }
  return config.warm_start;
}

namespace {

/// One wall-clock + box budget shared by every worker of a query — and,
/// for DNF queries, by every disjunct, so the configured limits bound
/// the *query*, not each of its k disjuncts separately.
struct SharedBudget {
  clock::time_point start;
  double time_limit_s;
  std::uint64_t max_boxes;
  const parallel::CancellationToken* interrupt;
  core::MemoryBudget* mem;
  std::atomic<std::uint64_t> boxes_used{0};

  explicit SharedBudget(const IcpConfig& config)
      : start(clock::now()),
        time_limit_s(config.time_limit_s),
        max_boxes(config.max_boxes),
        interrupt(config.interrupt),
        mem(config.mem_budget) {}

  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start).count();
  }

  /// Claims one box; false when the box or time budget is spent, an
  /// external interrupt fired, or the job's memory budget latched
  /// exhausted (all look like budget exhaustion to the solver: the query
  /// winds down and reports kUnknown; the pipeline distinguishes the
  /// memory case through MemoryBudget::exhausted()).
  bool admit_box() {
    if (interrupt != nullptr && interrupt->cancelled()) return false;
    if (mem != nullptr && mem->exhausted()) return false;
    if (boxes_used.fetch_add(1, std::memory_order_relaxed) >= max_boxes) {
      return false;
    }
    return elapsed_s() <= time_limit_s;
  }
};

/// The pool a query's workers run on (the Engine's owned pool when the
/// config carries one, else the process-global pool).
parallel::ThreadPool& pool_of(const IcpConfig& config) {
  return config.pool != nullptr ? *config.pool
                                : parallel::ThreadPool::global();
}

/// Outcome flags shared by the workers of one conjunction query (and by
/// concurrently dispatched DNF disjuncts).
struct SharedOutcome {
  std::mutex m;
  bool sat_found = false;
  SatResult sat_verdict = SatResult::kUnknown;
  interval::Box sat_witness;
  std::atomic<bool> exhausted{false};

  /// First (δ-)SAT discovery wins; everyone else gets cancelled.
  void report_sat(SatResult verdict, interval::Box witness,
                  parallel::CancellationToken& cancel) {
    {
      std::lock_guard<std::mutex> lock(m);
      if (!sat_found) {
        sat_found = true;
        sat_verdict = verdict;
        sat_witness = std::move(witness);
      }
    }
    cancel.cancel();
  }
};

void merge_stats(IcpStats& into, const IcpStats& from) {
  into.boxes_processed += from.boxes_processed;
  into.boxes_pruned += from.boxes_pruned;
  into.splits += from.splits;
  into.warm_starts += from.warm_starts;
  into.max_depth_width = std::min(into.max_depth_width, from.max_depth_width);
}

/// Where a query's workers get their contractors from. In jit/tape mode
/// the conjunction is compiled exactly once and every worker shares the
/// immutable compilation (each contractor then owns just a register
/// file); in tree mode each worker compiles its own evaluator, as the
/// seed did.
///
/// Three degradation-ladder rungs live here, all bit-identical in
/// results: a native-emission failure falls back to the tape interpreter
/// (`jit_to_tape`), a tape compilation failure falls back to the tree
/// backend (`tape_to_tree`), and a tripped cache_lookup fault treats the
/// tape-cache entry as corrupt — the conjunction recompiles cold instead
/// of trusting the cache.
struct ContractorSpec {
  const expr::ExprPool* pool = nullptr;
  const Conjunction* conjunction = nullptr;
  std::shared_ptr<const Hc4Jit> jit;    // non-null → native backend
  std::shared_ptr<const Hc4Tape> tape;  // else: null → tree backend

  ContractorSpec(const expr::ExprPool& p, const Conjunction& c,
                 const IcpConfig& config) {
    const Hc4Mode mode = resolve_hc4_mode(config.hc4_mode);
    if (mode == Hc4Mode::kJit || mode == Hc4Mode::kTape) {
      try {
        bool use_cache = config.tape_cache != nullptr;
        if (use_cache &&
            core::FaultRegistry::trip(core::FaultPoint::kCacheLookup)) {
          use_cache = false;
          if (config.degrade != nullptr) {
            config.degrade->cache_cold.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (mode == Hc4Mode::kJit) {
          try {
            jit = use_cache
                      ? config.tape_cache->get_or_compile_jit(p, c)
                      : Hc4Jit::compile(
                            std::make_shared<const Hc4Tape>(p, c));
            return;
          } catch (const std::exception&) {
            if (config.degrade != nullptr) {
              config.degrade->jit_to_tape.fetch_add(1,
                                                    std::memory_order_relaxed);
            }
          }
        }
        tape = use_cache ? config.tape_cache->get_or_compile(p, c)
                         : std::make_shared<const Hc4Tape>(p, c);
        return;
      } catch (const std::exception&) {
        if (config.degrade != nullptr) {
          config.degrade->tape_to_tree.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    pool = &p;
    conjunction = &c;
  }

  Hc4Contractor make() const {
    if (jit) return Hc4Contractor(jit);
    return tape ? Hc4Contractor(tape)
                : Hc4Contractor(*pool, *conjunction, Hc4Mode::kTree);
  }
};

/// A frontier box plus its node id in the split-tree recording (unused
/// when recording is off).
struct WorkItem {
  Box box;
  std::uint32_t node = 0;
};

/// Thread-safe split-tree recorder. Boxes carry their node ids; a split
/// turns the parent's leaf node into an internal node with two fresh
/// leaf children. Recording that would exceed the per-tree node cap is
/// abandoned (overflow) and the tree is not persisted.
///
/// Built for the parallel hot loop: ids come from one atomic counter
/// and nodes live in fixed-size blocks behind stable pointers, so the
/// common split takes no lock at all (the block-grow path locks once
/// per kBlockNodes splits). A parent entry is written only by the
/// worker that popped the parent's box, and the frontier's shard mutex
/// orders that write before any child box is popped elsewhere.
class TreeRecorder {
 public:
  explicit TreeRecorder(core::MemoryBudget* mem = nullptr) : mem_(mem) {
    // Root (id 0) starts as a leaf; no root block → no recording at all.
    if (!ensure_block(0)) overflow_.store(true, std::memory_order_release);
  }

  ~TreeRecorder() {
    if (mem_ != nullptr && charged_ > 0) mem_->release(charged_);
  }

  bool overflow() const { return overflow_.load(std::memory_order_acquire); }

  std::pair<std::uint32_t, std::uint32_t> record_split(std::uint32_t parent,
                                                       std::uint32_t dim,
                                                       double value) {
    constexpr auto kNone =
        std::pair<std::uint32_t, std::uint32_t>{UnsatTree::kNoNode,
                                                UnsatTree::kNoNode};
    if (parent == UnsatTree::kNoNode || overflow()) {
      overflow_.store(true, std::memory_order_release);
      return kNone;
    }
    const std::uint32_t left = next_.fetch_add(2, std::memory_order_relaxed);
    if (left + 1 >= UnsatTreeCache::kMaxNodes) {
      overflow_.store(true, std::memory_order_release);
      return kNone;
    }
    const std::uint32_t right = left + 1;
    // Ensure *both* children's blocks before the ids escape: a sibling
    // pair can straddle a block boundary, and another worker may write
    // node(left) (splitting that child) before this thread runs again.
    // A block the memory budget refuses abandons the recording (the
    // tree is simply not persisted) — recording is an optimization, so
    // quota pressure degrades it first.
    if (!ensure_block(left / kBlockNodes) ||
        !ensure_block(right / kBlockNodes)) {  // children default to leaves
      overflow_.store(true, std::memory_order_release);
      return kNone;
    }
    UnsatTree::Node& p = node(parent);
    p.dim = dim;
    p.value = value;
    p.left = left;
    p.right = right;
    return {left, right};
  }

  /// Snapshot of the recording (call only after the solve completed).
  std::vector<UnsatTree::Node> take_nodes() {
    const std::uint32_t n = std::min<std::uint32_t>(
        next_.load(std::memory_order_acquire),
        static_cast<std::uint32_t>(UnsatTreeCache::kMaxNodes));
    std::vector<UnsatTree::Node> out(n);
    for (std::uint32_t i = 0; i < n; ++i) out[i] = node(i);
    return out;
  }

 private:
  static constexpr std::size_t kBlockNodes = 4096;
  static constexpr std::size_t kNumBlocks =
      (UnsatTreeCache::kMaxNodes + kBlockNodes - 1) / kBlockNodes;

  UnsatTree::Node& node(std::uint32_t id) {
    return blocks_[id / kBlockNodes].load(std::memory_order_acquire)
        [id % kBlockNodes];
  }

  bool ensure_block(std::size_t j) {
    if (blocks_[j].load(std::memory_order_acquire) != nullptr) return true;
    std::lock_guard<std::mutex> lock(grow_m_);
    if (blocks_[j].load(std::memory_order_acquire) != nullptr) return true;
    constexpr std::size_t kBlockBytes = kBlockNodes * sizeof(UnsatTree::Node);
    if (mem_ != nullptr && !mem_->try_charge(kBlockBytes)) return false;
    charged_ += kBlockBytes;  // under grow_m_
    owned_.push_back(
        std::make_unique<UnsatTree::Node[]>(kBlockNodes));  // all leaves
    blocks_[j].store(owned_.back().get(), std::memory_order_release);
    return true;
  }

  std::atomic<std::uint32_t> next_{1};
  std::atomic<bool> overflow_{false};
  std::array<std::atomic<UnsatTree::Node*>, kNumBlocks> blocks_{};
  std::mutex grow_m_;
  std::vector<std::unique_ptr<UnsatTree::Node[]>> owned_;
  core::MemoryBudget* mem_;
  std::size_t charged_ = 0;
};

/// Replays \p seed over \p box while reproducing the seed's split
/// structure inside \p rec, so the new recording extends the seeded
/// partition. Uses the one shared UnsatTree::walk traversal (the
/// partition-coverage invariant lives in a single place). Returns the
/// partition leaves in left-first order — pushed onto the LIFO frontier
/// as-is, they are explored right-most first, matching the cold DFS
/// orientation.
std::vector<WorkItem> replay_seed(const UnsatTree& seed, const Box& box,
                                  TreeRecorder* rec) {
  std::vector<WorkItem> out;
  seed.walk(
      box, std::uint32_t{0},
      [rec](const UnsatTree::Node& n, std::uint32_t rid) {
        return rec != nullptr
                   ? rec->record_split(rid, n.dim, n.value)
                   : std::pair<std::uint32_t, std::uint32_t>{0, 0};
      },
      [&out](Box&& leaf, std::uint32_t rid) {
        out.push_back({std::move(leaf), rid});
      });
  return out;
}

/// Per-conjunction-solve warm-start context: resolves the seed partition
/// (or the cold single-box seed), owns the split-tree recorder, and
/// publishes the recording when the query completed UNSAT.
class QueryContext {
 public:
  QueryContext(const expr::ExprPool& pool, const Conjunction& c,
               const Box& box, const IcpConfig& config)
      : pool_(&pool), box_(box), config_(&config) {
    if (box.is_empty()) return;  // no seeds: trivially UNSAT
    if (icp_warm_enabled(config)) {
      rec_ = std::make_unique<TreeRecorder>(config.mem_budget);
      // Hash the conjunction once; publish() reuses both signatures. The
      // lossy shape hash keys the live LRU (organic cross-candidate
      // seeding); the content-exact hash keys the persisted warm table,
      // where only a byte-identical query may adopt a restored tree
      // (verdict invariance — see UnsatTreeCache::WarmEntry).
      signature_ = structural_signature(pool, c);
      content_ = content_signature(pool, c);
      // A tripped cache_lookup fault treats any cached seed as stale:
      // the query cold-starts from the full box, exactly the stale-seed
      // recovery path the UNSAT-tree cache already has.
      if (core::FaultRegistry::trip(core::FaultPoint::kCacheLookup)) {
        if (config.degrade != nullptr) {
          config.degrade->cache_cold.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (const auto seed =
                     config.unsat_cache->find(pool, signature_, content_,
                                              box)) {
        seeds_ = replay_seed(*seed, box, rec_.get());
        warm_ = seeds_.size() > 1;
      }
    }
    if (seeds_.empty()) seeds_.push_back({box, 0});
  }

  std::vector<WorkItem> take_seeds() { return std::move(seeds_); }
  TreeRecorder* recorder() { return rec_.get(); }
  bool warm_started() const { return warm_; }

  /// Persists the recorded tree when the query was refuted cleanly (a
  /// cancelled or exhausted run has an incomplete tree — never stored;
  /// a root-only tree carries no information — also skipped).
  void publish(SatResult verdict) {
    if (rec_ == nullptr || rec_->overflow() ||
        verdict != SatResult::kUnsat) {
      return;
    }
    std::vector<UnsatTree::Node> nodes = rec_->take_nodes();
    if (nodes.size() <= 1) return;
    auto tree = std::make_shared<UnsatTree>();
    tree->root_box = std::move(box_);
    tree->nodes = std::move(nodes);
    config_->unsat_cache->store(*pool_, signature_, content_,
                                std::move(tree));
  }

 private:
  const expr::ExprPool* pool_;
  Box box_;
  const IcpConfig* config_;
  std::uint64_t signature_ = 0;
  Sig128 content_;
  std::unique_ptr<TreeRecorder> rec_;
  std::vector<WorkItem> seeds_;
  bool warm_ = false;
};

/// Contraction engine of one worker: either the batched tape sweeps over
/// a sibling group (structure-of-arrays lanes) or a scalar contractor.
/// batch_size = 1 and tree mode both take the scalar path, which is the
/// exact legacy hot loop (contract_fixpoint + cached
/// certainly_satisfied); every lane of the batched path is bit-identical
/// to that loop by the tape batch contract.
class BatchContractor {
 public:
  BatchContractor(const ContractorSpec& spec, const IcpConfig& config,
                  std::size_t dims, int batch)
      : passes_(config.hc4_passes),
        ratio_(config.hc4_improvement),
        degrade_(config.degrade) {
    if (spec.tape != nullptr && batch > 1) {
      tape_ = spec.tape;
      tier_ = resolve_simd_tier();
      boxes_ = BoxBatch(dims, static_cast<std::size_t>(batch));
      regs_ = tape_->make_batch_registers(static_cast<std::size_t>(batch));
    } else {
      scalar_.emplace(spec.make());
    }
  }

  /// Contracts items[0..k) in place and fills out[0..k).
  void contract(std::vector<WorkItem>& items, std::size_t k,
                std::vector<Hc4Tape::LaneOutcome>& out) {
    out.resize(k);
    if (tape_ != nullptr) {
      // Ladder rung: a tripped simd_dispatch fault walks this worker
      // down one tier (AVX2 → SSE2 → scalar) for the rest of the query.
      // Sound and invisible in results — every tier is bit-identical
      // per lane by the tape batch contract.
      if (core::FaultRegistry::trip(core::FaultPoint::kSimdDispatch) &&
          tier_ != SimdTier::kScalar) {
        tier_ = tier_ == SimdTier::kAvx2 ? SimdTier::kSse2 : SimdTier::kScalar;
        if (degrade_ != nullptr) {
          degrade_->simd_downgrade.fetch_add(1, std::memory_order_relaxed);
        }
      }
      boxes_.clear();
      for (std::size_t i = 0; i < k; ++i) boxes_.push_back(items[i].box);
      tape_->contract_fixpoint_batch(boxes_, regs_, passes_, ratio_,
                                     out.data(), tier_);
      for (std::size_t i = 0; i < k; ++i) {
        if (out[i].result != ContractResult::kEmpty) {
          items[i].box = boxes_.box(i);
        }
      }
      return;
    }
    for (std::size_t i = 0; i < k; ++i) {
      const ContractResult r =
          scalar_->contract_fixpoint(items[i].box, passes_, ratio_);
      out[i].result = r;
      out[i].satisfied = r != ContractResult::kEmpty &&
                         !items[i].box.is_empty() &&
                         scalar_->certainly_satisfied(items[i].box);
    }
  }

 private:
  int passes_;
  double ratio_;
  core::DegradationCounters* degrade_;
  std::shared_ptr<const Hc4Tape> tape_;
  SimdTier tier_ = SimdTier::kScalar;
  BoxBatch boxes_;
  Hc4Tape::BatchRegisters regs_;
  std::optional<Hc4Contractor> scalar_;
};

/// Settles one contracted work item — prune / report SAT / report δ-SAT
/// / split-and-record — appending surviving children to \p children.
/// Returns false when a (δ-)SAT was reported and the caller must stop.
/// One shared body keeps the sequential and parallel frontiers
/// bit-identical per box (the "batch_size = 1 equals the scalar seed
/// algorithm" contract lives here).
bool settle_item(WorkItem& it, const Hc4Tape::LaneOutcome& oc,
                 const IcpConfig& config, TreeRecorder* rec,
                 SharedOutcome& outcome, parallel::CancellationToken& cancel,
                 IcpStats& stats,
                 std::vector<std::pair<WorkItem, WorkItem>>& children) {
  if (oc.result == ContractResult::kEmpty || it.box.is_empty()) {
    ++stats.boxes_pruned;
    return true;
  }
  stats.max_depth_width = std::min(stats.max_depth_width, it.box.max_width());

  // True SAT: constraints certainly hold over the whole surviving box.
  if (oc.satisfied) {
    outcome.report_sat(SatResult::kSat, std::move(it.box), cancel);
    return false;
  }
  // δ-condition: box too small to split further.
  if (it.box.max_width() <= config.delta) {
    outcome.report_sat(SatResult::kDeltaSat, std::move(it.box), cancel);
    return false;
  }

  const std::size_t dim = it.box.widest_dim();
  const double mid = it.box[dim].mid();
  auto [left, right] = it.box.split(dim);
  ++stats.splits;
  const auto ids =
      rec != nullptr
          ? rec->record_split(it.node, static_cast<std::uint32_t>(dim), mid)
          : std::pair<std::uint32_t, std::uint32_t>{0, 0};
  children.emplace_back(WorkItem{std::move(left), ids.first},
                        WorkItem{std::move(right), ids.second});
  return true;
}

/// Depth-first branch-and-prune over one conjunction, popping and
/// contracting up to `batch` sibling boxes per round (see the
/// exploration-order contract in icp_solver.h). With batch = 1 and a
/// fresh budget/token this is exactly the sequential seed algorithm —
/// same exploration order, same witness, same statistics.
void solve_sequential(const ContractorSpec& spec, std::vector<WorkItem> seeds,
                      const IcpConfig& config, int batch, TreeRecorder* rec,
                      double root_width, SharedBudget& budget,
                      SharedOutcome& outcome,
                      parallel::CancellationToken& cancel, IcpStats& stats) {
  stats.max_depth_width = root_width;
  if (seeds.empty()) return;
  const std::size_t dims = seeds.front().box.size();
  BatchContractor engine(spec, config, dims, batch);

  // Resource governor: the DFS stack's growth is charged per box (the
  // dominant term — each WorkItem owns dims intervals). A refused
  // charge latches the budget's exhausted flag and the query winds down
  // exactly like a spent box budget.
  core::MemoryBudget* const mem = config.mem_budget;
  const std::size_t box_bytes =
      dims * sizeof(Interval) + sizeof(WorkItem);
  const auto release_frontier = [&](std::size_t boxes) {
    if (mem != nullptr && boxes > 0) mem->release(boxes * box_bytes);
  };

  // DFS work stack (back = deepest): depth-first finds witnesses fast
  // and keeps memory bounded by (depth × dimension + batch).
  std::vector<WorkItem> work = std::move(seeds);
  if (mem != nullptr && !mem->try_charge(work.size() * box_bytes)) {
    outcome.exhausted.store(true, std::memory_order_release);
    cancel.cancel();
    return;
  }
  const auto want = static_cast<std::size_t>(batch);
  std::vector<WorkItem> items(want);
  std::vector<Hc4Tape::LaneOutcome> outcomes;
  std::vector<std::pair<WorkItem, WorkItem>> children;

  while (!work.empty()) {
    if (cancel.cancelled()) {
      release_frontier(work.size());
      return;
    }
    const std::size_t k = std::min(want, work.size());
    for (std::size_t i = 0; i < k; ++i) {
      items[i] = std::move(work.back());
      work.pop_back();
    }
    release_frontier(k);
    std::size_t admitted = 0;
    bool exhausted = false;
    for (; admitted < k; ++admitted) {
      if (!budget.admit_box()) {
        exhausted = true;
        break;
      }
    }
    stats.boxes_processed += admitted;
    if (admitted > 0) engine.contract(items, admitted, outcomes);

    children.clear();
    for (std::size_t i = 0; i < admitted; ++i) {
      if (!settle_item(items[i], outcomes[i], config, rec, outcome, cancel,
                       stats, children)) {
        release_frontier(work.size());
        return;  // (δ-)SAT reported
      }
    }
    if (mem != nullptr && !children.empty() &&
        !mem->try_charge(2 * children.size() * box_bytes)) {
      release_frontier(work.size());
      outcome.exhausted.store(true, std::memory_order_release);
      cancel.cancel();
      return;
    }
    // Surviving children go back in reverse pop order, so the deepest
    // box's children surface first (DFS; exact seed order at batch 1).
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      work.push_back(std::move(it->first));
      work.push_back(std::move(it->second));
    }
    if (exhausted) {
      release_frontier(work.size());
      outcome.exhausted.store(true, std::memory_order_release);
      cancel.cancel();
      return;
    }
  }
}

/// Work-sharing frontier: one shard per worker. Owners push/pop batches
/// at the back of their shard (depth-first, cache-friendly); idle
/// workers steal a whole *chunk* — up to a batch, at most half the
/// victim's shard — from the front of a victim shard, which holds the
/// shallowest (largest) subproblems, so one steal transfers a big slice
/// of the search tree and immediately fills the thief's batch lanes.
struct Frontier {
  struct alignas(64) Shard {
    std::mutex m;
    std::deque<WorkItem> stack;
  };
  std::vector<Shard> shards;
  /// Boxes pushed but not yet retired (pruned / leaf / reported). The
  /// frontier is exhausted — query UNSAT — when this reaches zero.
  std::atomic<std::int64_t> in_flight{0};

  explicit Frontier(std::size_t workers) : shards(workers) {}

  void push_local(std::size_t w, WorkItem item) {
    std::lock_guard<std::mutex> lock(shards[w].m);
    shards[w].stack.push_back(std::move(item));
  }

  /// Pushes a whole round's surviving children under one lock, in
  /// reverse pair order (left then right per pair), so the deepest
  /// parent's children end on top — the documented exploration order.
  void push_children(std::size_t w,
                     std::vector<std::pair<WorkItem, WorkItem>>& children) {
    std::lock_guard<std::mutex> lock(shards[w].m);
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      shards[w].stack.push_back(std::move(it->first));
      shards[w].stack.push_back(std::move(it->second));
    }
  }

  /// Pops up to \p want items into \p out (out[0] = deepest of the run).
  std::size_t pop_batch(std::size_t w, std::size_t want,
                        std::vector<WorkItem>& out) {
    {
      Shard& own = shards[w];
      std::lock_guard<std::mutex> lock(own.m);
      if (!own.stack.empty()) {
        const std::size_t k = std::min(want, own.stack.size());
        for (std::size_t i = 0; i < k; ++i) {
          out[i] = std::move(own.stack.back());
          own.stack.pop_back();
        }
        return k;
      }
    }
    for (std::size_t j = 1; j < shards.size(); ++j) {
      Shard& victim = shards[(w + j) % shards.size()];
      std::lock_guard<std::mutex> lock(victim.m);
      if (victim.stack.empty()) continue;
      const std::size_t k =
          std::min(want, (victim.stack.size() + 1) / 2);
      for (std::size_t i = 0; i < k; ++i) {
        out[i] = std::move(victim.stack.front());
        victim.stack.pop_front();
      }
      return k;
    }
    return 0;
  }
};

/// Parallel branch-and-prune: the frontier is shared, every worker runs
/// its own batch engine (contraction keeps mutable per-lane scratch),
/// and the first (δ-)SAT box cancels everyone.
void solve_parallel(const ContractorSpec& spec, std::vector<WorkItem> seeds,
                    std::size_t dims, const IcpConfig& config, int workers,
                    int batch, TreeRecorder* rec, double root_width,
                    SharedBudget& budget, SharedOutcome& outcome,
                    parallel::CancellationToken& cancel,
                    IcpStats& merged_stats) {
  Frontier frontier(static_cast<std::size_t>(workers));
  frontier.in_flight.store(static_cast<std::int64_t>(seeds.size()),
                           std::memory_order_relaxed);

  // Resource governor: every box resident in the shared frontier is
  // charged against the job budget (released on pop, re-charged when
  // children are pushed). A refused charge winds the query down like a
  // spent budget.
  core::MemoryBudget* const mem = config.mem_budget;
  const std::size_t box_bytes = dims * sizeof(Interval) + sizeof(WorkItem);
  if (mem != nullptr && !mem->try_charge(seeds.size() * box_bytes)) {
    outcome.exhausted.store(true, std::memory_order_release);
    return;
  }
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    frontier.push_local(i % static_cast<std::size_t>(workers),
                        std::move(seeds[i]));
  }

  std::vector<IcpStats> worker_stats(static_cast<std::size_t>(workers));
  for (IcpStats& s : worker_stats) s.max_depth_width = root_width;

  pool_of(config).run_on_workers(
      static_cast<std::size_t>(workers), [&](std::size_t w) {
        try {
        BatchContractor engine(spec, config, dims, batch);
        IcpStats& stats = worker_stats[w];
        const auto want = static_cast<std::size_t>(batch);
        std::vector<WorkItem> items(want);
        std::vector<Hc4Tape::LaneOutcome> outcomes;
        std::vector<std::pair<WorkItem, WorkItem>> children;
        int idle_spins = 0;

        while (!cancel.cancelled()) {
          const std::size_t k = frontier.pop_batch(w, want, items);
          if (k == 0) {
            if (frontier.in_flight.load(std::memory_order_acquire) <= 0) {
              return;  // frontier drained: UNSAT
            }
            // Brief spin before yielding: boxes reappear quickly while
            // peers are mid-split.
            if (++idle_spins > 64) std::this_thread::yield();
            continue;
          }
          idle_spins = 0;
          if (mem != nullptr) mem->release(k * box_bytes);

          std::size_t admitted = 0;
          bool exhausted = false;
          for (; admitted < k; ++admitted) {
            if (!budget.admit_box()) {
              exhausted = true;
              break;
            }
          }
          stats.boxes_processed += admitted;
          if (admitted > 0) engine.contract(items, admitted, outcomes);

          children.clear();
          bool reported = false;
          for (std::size_t i = 0; i < admitted && !reported; ++i) {
            reported = !settle_item(items[i], outcomes[i], config, rec,
                                    outcome, cancel, stats, children);
          }

          if (!reported && !exhausted && !children.empty()) {
            if (mem != nullptr &&
                !mem->try_charge(2 * children.size() * box_bytes)) {
              exhausted = true;
            } else {
              // Children replace their parents: publish the increment
              // before pushing so peers never observe a transient zero,
              // then retire the popped batch in one decrement below.
              frontier.in_flight.fetch_add(
                  static_cast<std::int64_t>(2 * children.size()),
                  std::memory_order_acq_rel);
              frontier.push_children(w, children);
            }
          }
          frontier.in_flight.fetch_sub(static_cast<std::int64_t>(k),
                                       std::memory_order_acq_rel);
          if (reported) return;
          if (exhausted) {
            outcome.exhausted.store(true, std::memory_order_release);
            cancel.cancel();
            return;
          }
        }
        } catch (...) {
          // Job isolation: an exception on one worker (e.g. an injected
          // hc4_backward fault) must not strand its peers — they spin on
          // in_flight, which this worker's popped boxes keep nonzero.
          // Cancel everyone, then let run_on_workers rethrow after all
          // strands retired.
          cancel.cancel();
          throw;
        }
      });

  if (mem != nullptr) {
    // Return whatever the wind-down left in the frontier (cancelled and
    // exhausted exits leave boxes resident).
    std::size_t remaining = 0;
    for (Frontier::Shard& shard : frontier.shards) {
      remaining += shard.stack.size();
    }
    mem->release(remaining * box_bytes);
  }

  for (const IcpStats& s : worker_stats) merge_stats(merged_stats, s);
}

/// Assembles the final verdict from the shared outcome flags.
IcpResult finalize(SharedOutcome& outcome, SharedBudget& budget,
                   IcpStats stats) {
  IcpResult result;
  result.stats = stats;
  std::lock_guard<std::mutex> lock(outcome.m);
  if (outcome.sat_found) {
    result.verdict = outcome.sat_verdict;
    result.witness = outcome.sat_witness;
  } else if (outcome.exhausted.load(std::memory_order_acquire)) {
    result.verdict = SatResult::kUnknown;
  } else {
    result.verdict = SatResult::kUnsat;
  }
  result.stats.solve_time_s = budget.elapsed_s();
  return result;
}

}  // namespace

IcpResult IcpSolver::solve(const Conjunction& conjunction,
                           const interval::Box& box) const {
  SharedBudget budget(config_);

  if (conjunction.empty()) {
    // Trivially satisfied everywhere (if the box is nonempty).
    IcpResult result;
    result.verdict = box.is_empty() ? SatResult::kUnsat : SatResult::kSat;
    if (!box.is_empty()) result.witness = box;
    result.stats.solve_time_s = budget.elapsed_s();
    return result;
  }

  SharedOutcome outcome;
  parallel::CancellationToken cancel;
  IcpStats stats;
  stats.max_depth_width = box.max_width();

  const ContractorSpec spec(*pool_, conjunction, config_);
  const int threads = parallel::resolve_thread_count(config_.threads);
  const int batch = resolve_icp_batch(config_.batch_size);

  QueryContext ctx(*pool_, conjunction, box, config_);
  if (ctx.warm_started()) ++stats.warm_starts;
  std::vector<WorkItem> seeds = ctx.take_seeds();

  if (threads <= 1 || seeds.empty()) {
    IcpStats seq_stats;
    solve_sequential(spec, std::move(seeds), config_, batch, ctx.recorder(),
                     box.max_width(), budget, outcome, cancel, seq_stats);
    merge_stats(stats, seq_stats);
  } else {
    solve_parallel(spec, std::move(seeds), box.size(), config_, threads,
                   batch, ctx.recorder(), box.max_width(), budget, outcome,
                   cancel, stats);
  }
  IcpResult result = finalize(outcome, budget, stats);
  ctx.publish(result.verdict);
  return result;
}

IcpResult IcpSolver::solve(const Dnf& dnf, const interval::Box& box) const {
  // One budget for the whole DNF: a k-disjunct query previously received
  // k fresh budgets and could run k× over the configured limits.
  SharedBudget budget(config_);
  const std::size_t k = dnf.disjuncts.size();

  IcpResult aggregate;
  aggregate.verdict = SatResult::kUnsat;
  aggregate.stats.max_depth_width = box.max_width();

  std::vector<IcpResult> results(k);
  for (IcpResult& r : results) r.stats.max_depth_width = box.max_width();
  const int threads = parallel::resolve_thread_count(config_.threads);
  const int batch = resolve_icp_batch(config_.batch_size);

  if (threads > 1 && k >= static_cast<std::size_t>(threads)) {
    // Concurrent disjunct dispatch (enough disjuncts to feed every
    // worker): each disjunct runs the sequential branch-and-prune on a
    // pool strand; the first SAT answer (or an exhausted budget)
    // cancels the rest. With fewer disjuncts than workers the sweep
    // below is used instead, parallelizing *within* each disjunct so no
    // worker idles.
    parallel::CancellationToken cancel;
    SharedOutcome dnf_outcome;  // only `exhausted` is shared DNF-wide
    std::vector<SharedOutcome> outcomes(k);
    std::atomic<std::size_t> next{0};
    const std::size_t strands =
        std::min<std::size_t>(k, static_cast<std::size_t>(threads));

    pool_of(config_).run_on_workers(strands, [&](std::size_t) {
      try {
      while (!cancel.cancelled()) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= k) return;
        IcpStats stats;
        stats.max_depth_width = box.max_width();
        if (box.is_empty()) {
          results[i].verdict = SatResult::kUnsat;
          continue;
        }
        std::optional<QueryContext> ctx;
        if (dnf.disjuncts[i].empty()) {
          outcomes[i].sat_found = true;
          outcomes[i].sat_verdict = SatResult::kSat;
          outcomes[i].sat_witness = box;
          cancel.cancel();
        } else {
          // Compile lazily on the claiming strand: a DNF whose first
          // disjunct SATs immediately cancels the rest before their
          // (O(nodes)) tape compilations ever run.
          const ContractorSpec spec(*pool_, dnf.disjuncts[i], config_);
          ctx.emplace(*pool_, dnf.disjuncts[i], box, config_);
          if (ctx->warm_started()) ++stats.warm_starts;
          solve_sequential(spec, ctx->take_seeds(), config_, batch,
                           ctx->recorder(), box.max_width(), budget,
                           outcomes[i], cancel, stats);
          if (outcomes[i].exhausted.load(std::memory_order_acquire)) {
            dnf_outcome.exhausted.store(true, std::memory_order_release);
          }
        }
        results[i].stats = stats;
        {
          std::lock_guard<std::mutex> lock(outcomes[i].m);
          if (outcomes[i].sat_found) {
            results[i].verdict = outcomes[i].sat_verdict;
            results[i].witness = outcomes[i].sat_witness;
          } else if (cancel.cancelled()) {
            results[i].verdict = SatResult::kUnknown;
          } else {
            results[i].verdict = SatResult::kUnsat;
          }
        }
        if (ctx) ctx->publish(results[i].verdict);
      }
      } catch (...) {
        // Fail the whole DNF fast instead of letting sibling disjuncts
        // run to completion under a doomed query.
        cancel.cancel();
        throw;
      }
    });

    bool any_unknown =
        dnf_outcome.exhausted.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < k; ++i) {
      merge_stats(aggregate.stats, results[i].stats);
      if (results[i].is_sat() && aggregate.verdict != SatResult::kSat &&
          aggregate.verdict != SatResult::kDeltaSat) {
        aggregate.verdict = results[i].verdict;
        aggregate.witness = std::move(results[i].witness);
      } else if (results[i].verdict == SatResult::kUnknown &&
                 !results[i].is_sat()) {
        any_unknown = true;
      }
    }
    if (!aggregate.is_sat() && any_unknown) {
      aggregate.verdict = SatResult::kUnknown;
    }
    aggregate.stats.solve_time_s = budget.elapsed_s();
    return aggregate;
  }

  // Sequential disjunct sweep (seed semantics: first SAT short-circuits)
  // under the shared budget.
  bool any_unknown = false;
  for (const Conjunction& disjunct : dnf.disjuncts) {
    SharedOutcome outcome;
    parallel::CancellationToken cancel;
    IcpStats stats;
    stats.max_depth_width = box.max_width();
    if (disjunct.empty()) {
      if (!box.is_empty()) {
        aggregate.verdict = SatResult::kSat;
        aggregate.witness = box;
        aggregate.stats.solve_time_s = budget.elapsed_s();
        return aggregate;
      }
      continue;
    }
    if (!box.is_empty()) {
      const ContractorSpec spec(*pool_, disjunct, config_);
      QueryContext ctx(*pool_, disjunct, box, config_);
      if (ctx.warm_started()) ++stats.warm_starts;
      if (threads > 1) {
        solve_parallel(spec, ctx.take_seeds(), box.size(), config_, threads,
                       batch, ctx.recorder(), box.max_width(), budget,
                       outcome, cancel, stats);
      } else {
        IcpStats seq_stats;
        solve_sequential(spec, ctx.take_seeds(), config_, batch,
                         ctx.recorder(), box.max_width(), budget, outcome,
                         cancel, seq_stats);
        merge_stats(stats, seq_stats);
      }
      {
        std::lock_guard<std::mutex> lock(outcome.m);
        const SatResult verdict =
            outcome.sat_found ? outcome.sat_verdict
            : outcome.exhausted.load(std::memory_order_acquire)
                ? SatResult::kUnknown
                : SatResult::kUnsat;
        ctx.publish(verdict);
      }
    }
    merge_stats(aggregate.stats, stats);
    std::lock_guard<std::mutex> lock(outcome.m);
    if (outcome.sat_found) {
      aggregate.verdict = outcome.sat_verdict;
      aggregate.witness = std::move(outcome.sat_witness);
      aggregate.stats.solve_time_s = budget.elapsed_s();
      return aggregate;
    }
    if (outcome.exhausted.load(std::memory_order_acquire)) any_unknown = true;
  }
  if (any_unknown) aggregate.verdict = SatResult::kUnknown;
  aggregate.stats.solve_time_s = budget.elapsed_s();
  return aggregate;
}

}  // namespace bcert::smt
