// Fault-injection matrix for the fault-tolerant Engine: the
// deterministic registry itself (spec grammar, exact-hit / every-N
// triggers, delay actions), the per-job resource governor
// (MemoryBudget + kResourceExhausted), the degradation ladder
// (tape → tree, cache trip → cold start — each degraded run must be
// bit-identical to the matching clean fallback configuration), the
// campaign isolation/retry/quarantine machinery, and the JSON error
// reporting with full string escaping.
#include "src/core/fault.h"

#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/report.h"
#include "src/core/runtime_config.h"
#include "src/lp/simplex.h"

namespace bcert::core {
namespace {

using linalg::Vector;

/// RAII: installs a fault spec for the test body, disarms on exit.
class ScopedFaultSpec {
 public:
  explicit ScopedFaultSpec(const std::string& spec) {
    std::vector<std::string> errors;
    ok_ = FaultRegistry::configure(spec, &errors);
    EXPECT_TRUE(ok_) << (errors.empty() ? "?" : errors.front());
  }
  ~ScopedFaultSpec() { FaultRegistry::clear(); }
  bool ok() const { return ok_; }

 private:
  bool ok_ = false;
};

/// RAII: overrides the active RuntimeConfig (and with it the armed
/// fault spec — set_active(config) re-installs config.fault_spec).
class ScopedActiveConfig {
 public:
  explicit ScopedActiveConfig(const RuntimeConfig& next)
      : saved_(RuntimeConfig::active()) {
    RuntimeConfig::set_active(next);
  }
  ~ScopedActiveConfig() { RuntimeConfig::set_active(saved_); }

 private:
  RuntimeConfig saved_;
};

/// Analytic workload (matches tests/engine_test.cpp): ẋ = −x decays to
/// the origin and the whole pipeline is deterministic at threads = 1.
BarrierProblem linear_problem(expr::ExprPool& pool) {
  BarrierProblem p;
  p.pool = &pool;
  p.sim_field = [](const Vector& x) { return Vector{-x[0], -x[1]}; };
  p.sym_field = {pool.neg(pool.var(0)), pool.neg(pool.var(1))};
  p.initial_set = {{-0.5, -0.5}, {0.5, 0.5}};
  p.safe_rect = {{-2.0, -2.0}, {2.0, 2.0}};
  return p;
}

JobOptions deterministic_options() {
  JobOptions opts;
  opts.verify.icp.threads = 1;
  return opts;
}

EngineOptions serial_engine() {
  EngineOptions eo;
  eo.threads = 1;           // fault hit numbers map to submission order
  eo.share_lp_basis = false;  // retries must not reshuffle basis handoff
  return eo;
}

void expect_bit_identical(const VerifyResult& a, const VerifyResult& b) {
  ASSERT_EQ(a.status, b.status)
      << verify_status_name(a.status) << " vs "
      << verify_status_name(b.status);
  EXPECT_EQ(a.template_kind, b.template_kind);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.lp_margin, b.lp_margin);
  ASSERT_EQ(a.has_generator(), b.has_generator());
  if (a.has_generator()) {
    const Vector& ca = a.generator_coeffs();
    const Vector& cb = b.generator_coeffs();
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i], cb[i]) << "coefficient " << i;
    }
  }
  ASSERT_EQ(a.counterexamples.size(), b.counterexamples.size());
  EXPECT_EQ(a.timings.candidate_iterations, b.timings.candidate_iterations);
  EXPECT_EQ(a.timings.lp_solves, b.timings.lp_solves);
  EXPECT_EQ(a.timings.smt5_queries, b.timings.smt5_queries);
}

// --- registry -------------------------------------------------------------

TEST(FaultRegistry, ValidateAcceptsGrammarAndRejectsJunk) {
  std::vector<std::string> errors;
  EXPECT_TRUE(FaultRegistry::validate(
      "tape_compile:throw@3,lp_solve:delay=50ms@every:7,alloc:throw",
      &errors));
  EXPECT_TRUE(errors.empty());

  EXPECT_FALSE(FaultRegistry::validate("no_such_point:throw", &errors));
  EXPECT_FALSE(FaultRegistry::validate("lp_solve:explode", &errors));
  EXPECT_FALSE(FaultRegistry::validate("lp_solve:delay=99999999ms", &errors));
  EXPECT_FALSE(FaultRegistry::validate("lp_solve:throw@zero", &errors));
  EXPECT_FALSE(FaultRegistry::validate("lp_solve:throw@every:0", &errors));
  EXPECT_EQ(errors.size(), 5u);
  // A failed configure must leave the registry disarmed.
  EXPECT_FALSE(FaultRegistry::configure("no_such_point:throw"));
  EXPECT_FALSE(FaultRegistry::enabled());
}

TEST(FaultRegistry, ThrowFiresOnExactlyTheNthHit) {
  ScopedFaultSpec spec("lp_solve:throw@3");
  EXPECT_TRUE(FaultRegistry::enabled());
  EXPECT_NO_THROW(FaultRegistry::check(FaultPoint::kLpSolve));
  EXPECT_NO_THROW(FaultRegistry::check(FaultPoint::kLpSolve));
  try {
    FaultRegistry::check(FaultPoint::kLpSolve);
    FAIL() << "third hit must throw";
  } catch (const FaultInjected& e) {
    EXPECT_EQ(e.point(), FaultPoint::kLpSolve);
    EXPECT_NE(std::string(e.what()).find("lp_solve"), std::string::npos);
  }
  EXPECT_NO_THROW(FaultRegistry::check(FaultPoint::kLpSolve));
  EXPECT_EQ(FaultRegistry::hits(FaultPoint::kLpSolve), 4u);
  // Unrelated points stay dark.
  EXPECT_NO_THROW(FaultRegistry::check(FaultPoint::kTapeCompile));
  EXPECT_FALSE(FaultRegistry::trip(FaultPoint::kCacheLookup));
}

TEST(FaultRegistry, EveryNTriggerTripsPeriodically) {
  ScopedFaultSpec spec("cache_lookup:throw@every:2");
  EXPECT_FALSE(FaultRegistry::trip(FaultPoint::kCacheLookup));
  EXPECT_TRUE(FaultRegistry::trip(FaultPoint::kCacheLookup));
  EXPECT_FALSE(FaultRegistry::trip(FaultPoint::kCacheLookup));
  EXPECT_TRUE(FaultRegistry::trip(FaultPoint::kCacheLookup));
}

TEST(FaultRegistry, DelayActionSleepsWithoutThrowing) {
  ScopedFaultSpec spec("lp_pivot:delay=20ms@1");
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(FaultRegistry::check(FaultPoint::kLpPivot));
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed.count() * 1000.0, 15.0);
}

TEST(FaultRegistry, ClearDisarmsAndResetsCounters) {
  FaultRegistry::configure("lp_solve:throw@1");
  FaultRegistry::check(FaultPoint::kTapeCompile);
  FaultRegistry::clear();
  EXPECT_FALSE(FaultRegistry::enabled());
  EXPECT_EQ(FaultRegistry::hits(FaultPoint::kTapeCompile), 0u);
  // Disarmed checks are free no-ops and do not even count hits.
  FaultRegistry::check(FaultPoint::kLpSolve);
  EXPECT_EQ(FaultRegistry::hits(FaultPoint::kLpSolve), 0u);
}

// --- resource governor ----------------------------------------------------

TEST(MemoryBudget, QuotaChargesAndLatchesExhaustion) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.try_charge(60));
  EXPECT_EQ(budget.used(), 60u);
  EXPECT_FALSE(budget.try_charge(50));  // 110 > 100
  EXPECT_EQ(budget.used(), 60u);        // failed charge rolls back
  EXPECT_TRUE(budget.exhausted());      // ...but latches
  budget.release(60);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_TRUE(budget.try_charge(100));
  EXPECT_TRUE(budget.exhausted());  // the latch is one-way per job
}

TEST(MemoryBudget, UnlimitedBudgetOnlyAccounts) {
  MemoryBudget budget;  // quota 0 = unlimited
  EXPECT_TRUE(budget.try_charge(1ull << 40));
  EXPECT_FALSE(budget.exhausted());
}

TEST(MemoryBudget, AllocFaultForcesChargeFailure) {
  ScopedFaultSpec spec("alloc:throw@1");
  MemoryBudget budget;  // even an unlimited budget fails on the trip
  EXPECT_FALSE(budget.try_charge(8));
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_TRUE(budget.try_charge(8));  // only the first hit was armed
}

// --- LP interrupt + fault checks ------------------------------------------

TEST(SimplexInterrupt, InterruptHookStopsTheSolve) {
  lp::LpProblem p = lp::LpProblem::with_free_vars(2);
  p.objective = Vector{2.0, 3.0};
  p.lower = {0.0, 0.0};
  p.add_row(Vector{1.0, 1.0}, lp::RowRel::kGe, 4.0);
  lp::SimplexOptions opts;
  opts.interrupt = [] { return true; };
  const lp::LpSolution s = lp::solve_lp(p, opts);
  EXPECT_EQ(s.status, lp::LpStatus::kInterrupted)
      << lp_status_name(s.status);
  EXPECT_EQ(s.x.size(), 0u);  // non-optimal statuses carry no solution

  lp::SimplexOptions clean;
  const lp::LpSolution full = lp::solve_lp(p, clean);
  EXPECT_EQ(full.status, lp::LpStatus::kOptimal);
}

TEST(SimplexInterrupt, LpSolveFaultBecomesTypedJobError) {
  // Prime the runtime config first: the job's lazy active() init would
  // otherwise (re)install the env fault spec and disarm ours.
  RuntimeConfig clean = RuntimeConfig::active();
  clean.fault_spec.clear();
  ScopedActiveConfig guard(clean);

  expr::ExprPool pool;
  Engine engine(serial_engine());
  ScopedFaultSpec spec("lp_solve:throw@1");
  const VerifyResult r =
      engine.verify(linear_problem(pool), deterministic_options());
  EXPECT_EQ(r.status, VerifyStatus::kInternalError);
  EXPECT_EQ(r.error.code, ErrorCode::kFaultInjected);
  EXPECT_TRUE(r.error.retryable());
  EXPECT_NE(r.error.message.find("lp_solve"), std::string::npos);
}

// --- degradation ladder ---------------------------------------------------

// An injected tape-compilation failure must walk the contractor down to
// the tree HC4 backend — and produce a result bit-identical to running
// with BCERT_HC4_MODE=tree outright (the clean fallback configuration).
TEST(DegradationLadder, TapeFaultMatchesTreeModeBitIdentical) {
  RuntimeConfig tree = RuntimeConfig::active();
  tree.fault_spec.clear();
  tree.hc4_mode = ConfigHc4Mode::kTree;
  RuntimeConfig tape = tree;
  tape.hc4_mode = ConfigHc4Mode::kTape;

  expr::ExprPool pool_a;
  VerifyResult tree_result;
  {
    ScopedActiveConfig guard(tree);
    Engine engine(serial_engine());
    tree_result =
        engine.verify(linear_problem(pool_a), deterministic_options());
  }
  ASSERT_TRUE(tree_result.safe()) << verify_status_name(tree_result.status);
  EXPECT_EQ(tree_result.degradation.tape_to_tree, 0u);

  expr::ExprPool pool_b;
  VerifyResult faulted;
  {
    ScopedActiveConfig guard(tape);
    ScopedFaultSpec spec("tape_compile:throw");  // every compile fails
    Engine engine(serial_engine());
    faulted = engine.verify(linear_problem(pool_b), deterministic_options());
  }
  expect_bit_identical(tree_result, faulted);
  EXPECT_GT(faulted.degradation.tape_to_tree, 0u);
  EXPECT_TRUE(faulted.error.ok());  // degraded, not failed
}

// A tripped cache lookup must behave exactly like the cold-start path
// that already exists for stale seeds: same results, cache_cold counted.
TEST(DegradationLadder, CacheTripColdStartsBitIdentical) {
  RuntimeConfig clean = RuntimeConfig::active();
  clean.fault_spec.clear();
  ScopedActiveConfig guard(clean);

  expr::ExprPool pool_a;
  Engine fresh(serial_engine());
  const VerifyResult baseline =
      fresh.verify(linear_problem(pool_a), deterministic_options());
  ASSERT_TRUE(baseline.safe()) << verify_status_name(baseline.status);

  expr::ExprPool pool_b;
  Engine engine(serial_engine());
  const BarrierProblem problem = linear_problem(pool_b);
  ScopedFaultSpec spec("cache_lookup:throw");  // every probe trips
  const VerifyResult first = engine.verify(problem, deterministic_options());
  const VerifyResult second = engine.verify(problem, deterministic_options());
  expect_bit_identical(baseline, first);
  expect_bit_identical(baseline, second);
  EXPECT_GT(second.degradation.cache_cold, 0u);
}

TEST(DegradationLadder, SimdTripsNeverChangeResults) {
  RuntimeConfig clean = RuntimeConfig::active();
  clean.fault_spec.clear();
  ScopedActiveConfig guard(clean);

  expr::ExprPool pool_a;
  Engine fresh(serial_engine());
  const VerifyResult baseline =
      fresh.verify(linear_problem(pool_a), deterministic_options());

  expr::ExprPool pool_b;
  Engine engine(serial_engine());
  ScopedFaultSpec spec("simd_dispatch:throw@every:1");
  const VerifyResult faulted =
      engine.verify(linear_problem(pool_b), deterministic_options());
  // The batched tiers are lane-for-lane bit-identical by contract, so a
  // downgrade is invisible in results (the counter only moves when the
  // batched sweep is active on this workload/config).
  expect_bit_identical(baseline, faulted);
}

TEST(ResourceGovernor, TinyQuotaYieldsTypedResourceExhausted) {
  expr::ExprPool pool;
  Engine engine(serial_engine());
  JobOptions opts = deterministic_options();
  opts.mem_quota_bytes = 1;  // first frontier charge already fails
  const VerifyResult r = engine.verify(linear_problem(pool), opts);
  EXPECT_EQ(r.status, VerifyStatus::kResourceExhausted)
      << verify_status_name(r.status);
  EXPECT_EQ(r.error.code, ErrorCode::kResourceExhausted);
  EXPECT_FALSE(r.error.retryable());  // deterministic: retry won't help
  EXPECT_NE(r.error.message.find("quota"), std::string::npos);
}

// --- campaign isolation / retry / quarantine ------------------------------

// Eight scenarios, faults injected into three of them: the campaign
// must complete, the clean five must be bit-identical to a fault-free
// campaign, and the faulted three must recover via retry with their
// attempt counts recorded.
TEST(Campaign, RetriesTransientFaultsAndKeepsCleanScenariosIdentical) {
  RuntimeConfig clean_config = RuntimeConfig::active();
  clean_config.fault_spec.clear();
  ScopedActiveConfig config_guard(clean_config);

  constexpr std::size_t kScenarios = 8;
  const JobOptions opts = deterministic_options();

  expr::ExprPool pool_a;
  std::vector<Scenario> scenarios_a;
  for (std::size_t i = 0; i < kScenarios; ++i) {
    scenarios_a.push_back(
        {"s" + std::to_string(i), linear_problem(pool_a)});
  }
  Engine clean_engine(serial_engine());
  const CampaignResult clean = clean_engine.run_campaign(
      std::span<const Scenario>(scenarios_a), opts);
  ASSERT_EQ(clean.scenarios.size(), kScenarios);
  ASSERT_EQ(clean.failed_count, 0);

  expr::ExprPool pool_b;
  std::vector<Scenario> scenarios_b;
  for (std::size_t i = 0; i < kScenarios; ++i) {
    scenarios_b.push_back(
        {"s" + std::to_string(i), linear_problem(pool_b)});
  }
  Engine engine(serial_engine());
  // threads=1 executes jobs in submission order, so dispatch hits 2, 5
  // and 7 are scenarios s1, s4 and s6; their retries are hits 9+ and
  // run clean.
  ScopedFaultSpec spec(
      "worker_dispatch:throw@2,worker_dispatch:throw@5,"
      "worker_dispatch:throw@7");
  const CampaignResult faulted =
      engine.run_campaign(std::span<const Scenario>(scenarios_b), opts);

  ASSERT_EQ(faulted.scenarios.size(), kScenarios);
  EXPECT_EQ(faulted.failed_count, 0);  // every fault recovered via retry
  EXPECT_TRUE(faulted.quarantined.empty());
  for (std::size_t i = 0; i < kScenarios; ++i) {
    SCOPED_TRACE(faulted.scenarios[i].name);
    const bool was_faulted = i == 1 || i == 4 || i == 6;
    EXPECT_EQ(faulted.scenarios[i].attempts, was_faulted ? 2 : 1);
    EXPECT_EQ(faulted.scenarios[i].result.degradation.retries,
              was_faulted ? 1u : 0u);
    EXPECT_FALSE(faulted.scenarios[i].quarantined);
    EXPECT_TRUE(faulted.scenarios[i].result.error.ok());
    expect_bit_identical(clean.scenarios[i].result,
                         faulted.scenarios[i].result);
  }
}

TEST(Campaign, PersistentFailuresAreQuarantinedWithPartialResults) {
  RuntimeConfig clean_config = RuntimeConfig::active();
  clean_config.fault_spec.clear();
  ScopedActiveConfig config_guard(clean_config);

  expr::ExprPool pool;
  std::vector<Scenario> scenarios;
  for (int i = 0; i < 3; ++i) {
    scenarios.push_back({"doomed-" + std::to_string(i),
                         linear_problem(pool)});
  }
  Engine engine(serial_engine());
  JobOptions opts = deterministic_options();
  opts.retry.max_retries = 1;
  opts.retry.backoff_s = 0.001;
  ScopedFaultSpec spec("worker_dispatch:throw@every:1");  // every attempt
  const CampaignResult out = engine.run_campaign(
      std::span<const Scenario>(scenarios), opts);

  ASSERT_EQ(out.scenarios.size(), 3u);  // campaign completed regardless
  EXPECT_EQ(out.failed_count, 3);
  ASSERT_EQ(out.quarantined.size(), 3u);
  for (const ScenarioOutcome& s : out.scenarios) {
    SCOPED_TRACE(s.name);
    EXPECT_EQ(s.attempts, 2);  // 1 + max_retries
    EXPECT_TRUE(s.quarantined);
    EXPECT_EQ(s.result.status, VerifyStatus::kInternalError);
    EXPECT_EQ(s.result.error.code, ErrorCode::kFaultInjected);
  }
  const std::string json = out.to_json();
  EXPECT_NE(json.find("\"fault_injected\""), std::string::npos);
  EXPECT_NE(json.find("\"quarantined\": [\"doomed-0\", \"doomed-1\", "
                      "\"doomed-2\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"failed_count\": 3"), std::string::npos);
}

TEST(Campaign, WatchdogFlagsStuckWorkerAndCompletes) {
  RuntimeConfig clean_config = RuntimeConfig::active();
  clean_config.fault_spec.clear();
  ScopedActiveConfig config_guard(clean_config);

  expr::ExprPool pool;
  const std::vector<Scenario> scenarios = {
      {"stuck", linear_problem(pool)}};
  Engine engine(serial_engine());
  JobOptions opts = deterministic_options();
  opts.deadline_s = 0.05;
  opts.stuck_grace_s = 0.05;
  // The dispatch stalls far past deadline + 2×grace and never polls the
  // cancellation token while sleeping — a stuck worker, not a slow one.
  ScopedFaultSpec spec("worker_dispatch:delay=500ms@1");
  const CampaignResult out = engine.run_campaign(
      std::span<const Scenario>(scenarios), opts);

  ASSERT_EQ(out.scenarios.size(), 1u);
  EXPECT_EQ(out.scenarios[0].result.error.code, ErrorCode::kWorkerStuck);
  EXPECT_EQ(out.scenarios[0].attempts, 1);  // kWorkerStuck: no retry
  EXPECT_TRUE(out.scenarios[0].quarantined);
  EXPECT_EQ(out.failed_count, 1);
  // Engine destruction then waits for the abandoned worker to drain.
}

// --- JSON escaping --------------------------------------------------------

/// Inverse of json_escape for round-trip checking.
std::string json_unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        const int hi = std::stoi(s.substr(i + 1, 4), nullptr, 16);
        out.push_back(static_cast<char>(hi));
        i += 4;
        break;
      }
      default: ADD_FAILURE() << "unknown escape \\" << s[i];
    }
  }
  return out;
}

/// Extracts the contents of the JSON string literal that follows
/// `"<key>": "` in \p json (still escaped).
std::string string_field_after(const std::string& json,
                               const std::string& key) {
  const std::string marker = "\"" + key + "\": \"";
  const std::size_t begin = json.find(marker) + marker.size();
  EXPECT_NE(begin, std::string::npos + marker.size());
  std::size_t end = begin;
  while (end < json.size() &&
         !(json[end] == '"' && json[end - 1] != '\\')) {
    // A literal backslash escape ("\\\\") must not hide a closing quote.
    if (json[end] == '\\' && end + 1 < json.size()) ++end;
    ++end;
  }
  return json.substr(begin, end - begin);
}

TEST(JsonEscaping, EscapeRoundTripsControlAndQuoteCharacters) {
  const std::string nasty =
      "quote\" back\\slash\nnewline\ttab\rret\x01\x1f end";
  const std::string escaped = json_escape(nasty);
  // No raw control characters survive, and every quote is escaped.
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    EXPECT_GE(static_cast<unsigned char>(escaped[i]), 0x20);
    if (escaped[i] == '"') {
      ASSERT_GT(i, 0u);
      EXPECT_EQ(escaped[i - 1], '\\');
    }
  }
  EXPECT_NE(escaped.find("\\u0001"), std::string::npos);
  EXPECT_NE(escaped.find("\\u001f"), std::string::npos);
  EXPECT_EQ(json_unescape(escaped), nasty);
}

TEST(JsonEscaping, CampaignJsonCarriesEscapedNamesAndTypedErrors) {
  const std::string nasty = "scenario \"7\"\\dubins\n\x02";
  CampaignResult out;
  ScenarioOutcome s;
  s.name = nasty;
  s.attempts = 3;
  s.quarantined = true;
  s.result.status = VerifyStatus::kInternalError;
  s.result.error =
      Status(ErrorCode::kFaultInjected, "fault \"thrown\" at\n\tpivot");
  s.result.degradation.retries = 2;
  s.result.degradation.tape_to_tree = 1;
  out.scenarios.push_back(std::move(s));
  out.quarantined.push_back(nasty);
  out.failed_count = 1;

  const std::string json = out.to_json();
  EXPECT_EQ(json_unescape(string_field_after(json, "name")), nasty);
  EXPECT_EQ(json_unescape(string_field_after(json, "message")),
            "fault \"thrown\" at\n\tpivot");
  EXPECT_NE(json.find("\"code\": \"fault_injected\""), std::string::npos);
  EXPECT_NE(json.find("\"attempts\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"quarantined\": true"), std::string::npos);
  EXPECT_NE(json.find("\"retries\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tape_to_tree\": 1"), std::string::npos);
  // Raw control characters must never reach the document.
  for (const char c : json) {
    if (c == '\n') continue;  // the pretty-printer's own newlines
    EXPECT_GE(static_cast<unsigned char>(c), 0x20);
  }
}

}  // namespace
}  // namespace bcert::core
