#pragma once
/// \file cache_io.h
/// \brief Persistent warm-state snapshots: serialization of compiled
/// HC4 tapes, UNSAT split trees and LP warm bases across process
/// restarts.
///
/// The daemon (`bcertd`) accumulates warm state that is expensive to
/// rebuild — compiled tape programs, refutation partitions, simplex
/// bases — but all of it is keyed by the live `ExprPool`'s address and
/// therefore dies with the process. This file defines the
/// pool-independent on-disk form:
///
///   * tapes travel as `Hc4Tape::Image` keyed by the conjunction's
///     128-bit `content_signature` (full compiler input → adopting a
///     persisted tape is bit-identical to recompiling);
///   * UNSAT trees travel keyed by the same content-exact signature —
///     NOT the lossy structural key the live LRU uses. Adopting a tree
///     for a different-content query of the same shape would be sound
///     (replay always partitions the box) but not verdict-neutral: it
///     seeds a search a cold process runs unseeded, changing which δ-SAT
///     witness is found. Content-exact adoption replays only the
///     byte-identical query the tree refuted, reproducing verdict and
///     recording alike;
///   * LP bases travel keyed by {problem kind, degree, dims} — a warm
///     basis is only ever a simplex starting point, never an answer.
///
/// Container format (little-endian, see src/core/binary_io.h):
///
///   magic "BCERTSNP" (8 bytes) | version u32 | payload_size u64 |
///   fnv1a64(payload) u64 | payload
///
/// The payload is the three sections in order, each count-prefixed.
/// Decoding is strict: wrong magic, unknown version, short payload, bad
/// checksum, or any structurally invalid record (via `Hc4Tape::restore`
/// validation) rejects the *whole* snapshot and the caller cold-starts —
/// a snapshot is a pure performance artifact, so the only acceptable
/// failure mode is "as if it never existed". Writing is atomic
/// (temp file + rename) so a crash mid-save leaves the previous
/// snapshot intact. `save_snapshot` honours the `cache_serialize` fault
/// point by reporting failure (the daemon skips the snapshot and
/// warns — it never dies for persistence).

#include <cstdint>
#include <string>
#include <vector>

#include "src/lp/problem.h"
#include "src/smt/tape.h"
#include "src/smt/unsat_tree.h"

namespace bcert::smt {

/// Current snapshot container version. Bump on ANY change to the
/// payload encoding; old files then load as empty (cold start), which
/// is always correct. Never reinterpret bytes across versions.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// One persisted LP warm basis with its pool-independent key (mirrors
/// core::Engine's warm-basis map key).
struct WarmBasisEntry {
  std::int32_t kind = 0;    ///< verification problem kind
  std::int32_t degree = 0;  ///< certificate template degree
  std::uint64_t dims = 0;   ///< state-space dimension
  lp::LpBasis basis;
};

/// Everything a process persists across restarts. Loaded state is
/// behavior-identical to organically warmed state: warm tapes are
/// bit-identical programs, warm trees only seed partitions, warm bases
/// only pick simplex starting points.
struct WarmState {
  std::vector<TapeCache::WarmEntry> tapes;
  std::vector<UnsatTreeCache::WarmEntry> trees;
  std::vector<WarmBasisEntry> bases;

  bool empty() const {
    return tapes.empty() && trees.empty() && bases.empty();
  }
};

/// Serializes \p state into the full container (header + payload).
std::vector<std::uint8_t> encode_snapshot(const WarmState& state);

/// Strict decode of a full container. On success returns true and fills
/// \p out; on any corruption/version mismatch returns false and leaves
/// \p out empty. Restored tapes pass `Hc4Tape::restore` validation;
/// records that fail it reject the whole snapshot.
bool decode_snapshot(const std::uint8_t* data, std::size_t size,
                     WarmState& out, std::string* error);

/// Atomically writes the snapshot (`path.tmp` + rename). Returns false
/// (with \p error set) on I/O failure or an armed `cache_serialize`
/// fault; never throws, never leaves a partial file at \p path.
bool save_snapshot(const std::string& path, const WarmState& state,
                   std::string* error);

/// Loads and strictly decodes \p path. A missing file, I/O error or
/// corrupt/mismatched snapshot returns false with \p out empty and
/// \p error describing why — the caller logs a warning and cold-starts.
bool load_snapshot(const std::string& path, WarmState& out,
                   std::string* error);

}  // namespace bcert::smt
