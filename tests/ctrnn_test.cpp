// Tests for the stateful (CTRNN) controller extension: network
// semantics, augmented closed-loop dynamics, and full barrier-certificate
// verification of a recurrent controller (the paper's §5 future work).
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "src/core/verifier.h"
#include "src/dubins/rnn_dynamics.h"
#include "src/expr/eval.h"

namespace bcert {
namespace {

using linalg::Vector;
constexpr double kPi = 3.14159265358979323846;

TEST(Ctrnn, ShapeAndAccessors) {
  nn::Ctrnn net(2, 3, 1, 0.25);
  EXPECT_EQ(net.num_inputs(), 2u);
  EXPECT_EQ(net.num_hidden(), 3u);
  EXPECT_EQ(net.num_outputs(), 1u);
  EXPECT_DOUBLE_EQ(net.tau(), 0.25);
  EXPECT_THROW(nn::Ctrnn(2, 3, 1, 0.0), std::invalid_argument);
}

TEST(Ctrnn, HiddenBoxIsForwardInvariant) {
  // With tanh activation, at h_i = 1 we have ḣ_i ≤ 0 and at h_i = −1,
  // ḣ_i ≥ 0: [−1, 1]^k traps the hidden state.
  std::mt19937 rng(3);
  nn::Ctrnn net(2, 4, 1, 0.2);
  net.randomize(rng, 2.0);
  std::uniform_real_distribution<double> dy(-5.0, 5.0), dh(-1.0, 1.0);
  for (int trial = 0; trial < 200; ++trial) {
    Vector y{dy(rng), dy(rng)};
    Vector h(4);
    for (int i = 0; i < 4; ++i) h[static_cast<std::size_t>(i)] = dh(rng);
    for (std::size_t i = 0; i < 4; ++i) {
      Vector h_hi = h, h_lo = h;
      h_hi[i] = 1.0;
      h_lo[i] = -1.0;
      EXPECT_LE(net.hidden_derivative(y, h_hi)[i], 0.0);
      EXPECT_GE(net.hidden_derivative(y, h_lo)[i], 0.0);
    }
  }
}

TEST(Ctrnn, LaggedPolicyConvergesToTeacher) {
  // ḣ = (−h + tanh(g·y))/τ with frozen input settles at tanh(g·y).
  const Vector gains{0.25, 2.0};
  const nn::Ctrnn net = nn::Ctrnn::lagged_policy(gains, 0.1);
  const Vector y{2.0, -0.3};
  Vector h{0.0};
  const double dt = 0.001;
  for (int i = 0; i < 5000; ++i) {
    h += dt * net.hidden_derivative(y, h);
  }
  const double target = std::tanh(0.25 * 2.0 + 2.0 * (-0.3));
  EXPECT_NEAR(net.output(h)[0], target, 1e-6);
}

TEST(Ctrnn, SymbolicMatchesNumeric) {
  std::mt19937 rng(7);
  nn::Ctrnn net(2, 3, 1, 0.3);
  net.randomize(rng, 1.5);

  expr::ExprPool pool;
  std::vector<expr::ExprId> y{pool.var(0), pool.var(1)};
  std::vector<expr::ExprId> h{pool.var(2), pool.var(3), pool.var(4)};
  const auto u_expr = net.output_expr(pool, h);
  const auto dh_expr = net.hidden_derivative_expr(pool, y, h);
  std::vector<expr::ExprId> roots = u_expr;
  roots.insert(roots.end(), dh_expr.begin(), dh_expr.end());
  expr::Evaluator ev(pool, roots);

  std::uniform_real_distribution<double> d(-2.0, 2.0);
  for (int i = 0; i < 100; ++i) {
    const Vector full{d(rng), d(rng), d(rng), d(rng), d(rng)};
    const Vector yv{full[0], full[1]};
    const Vector hv{full[2], full[3], full[4]};
    const auto out = ev.eval(full);
    EXPECT_NEAR(out[0], net.output(hv)[0], 1e-12);
    const Vector dh = net.hidden_derivative(yv, hv);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(out[1 + j], dh[j], 1e-12);
    }
  }
}

TEST(RnnDynamics, AugmentedFieldShapes) {
  const nn::Ctrnn net = nn::Ctrnn::lagged_policy(Vector{0.25, 2.0}, 0.2);
  const dubins::ErrorModel model{1.0, 0.0};
  const auto f = dubins::rnn_closed_loop_field(model, net);
  const Vector x{1.0, 0.2, 0.1};
  const Vector dx = f(x);
  ASSERT_EQ(dx.size(), 3u);
  EXPECT_NEAR(dx[0], std::sin(0.2), 1e-12);       // V sin θ
  EXPECT_NEAR(dx[1], -net.output(Vector{0.1})[0], 1e-12);
}

TEST(RnnDynamics, SymbolicMatchesNumeric) {
  std::mt19937 rng(5);
  nn::Ctrnn net(2, 2, 1, 0.25);
  net.randomize(rng, 1.0);
  const dubins::ErrorModel model{1.0, 0.4};
  const auto f_num = rnn_closed_loop_field(model, net);
  expr::ExprPool pool;
  const auto f_sym = rnn_closed_loop_field_expr(model, net, pool);
  expr::Evaluator ev(pool, f_sym);
  std::uniform_real_distribution<double> d(-1.5, 1.5);
  for (int i = 0; i < 100; ++i) {
    const Vector x{d(rng), d(rng), d(rng), d(rng)};
    const Vector num = f_num(x);
    const auto sym = ev.eval(x);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(sym[j], num[j], 1e-10);
    }
  }
}

TEST(RnnDynamics, StatefulControllerTracksPath) {
  // The lagged policy still stabilizes the error dynamics.
  const nn::Ctrnn net = nn::Ctrnn::lagged_policy(Vector{0.25, 2.0}, 0.2);
  const auto f = dubins::rnn_closed_loop_field({1.0, 0.0}, net);
  ode::IntegrateOptions iopts;
  iopts.step = 0.01;
  iopts.t_end = 60.0;
  const ode::Trace t = integrate_rk4(f, Vector{3.0, 0.5, 0.0}, iopts);
  EXPECT_LT(std::fabs(t.back()[0]), 0.2);
  EXPECT_LT(std::fabs(t.back()[1]), 0.1);
}

TEST(RnnVerification, BarrierCertificateForStatefulController) {
  // The headline: the unmodified pipeline certifies a *recurrent*
  // controller — 3-dimensional augmented state, 3-D SMT queries.
  // τ = 0.1: at τ = 0.2 the controller lag makes quadratic (and even
  // quartic) certificates genuinely infeasible over the full domain —
  // the "increased query complexity" the paper predicts for stateful
  // controllers (§2).
  const nn::Ctrnn net = nn::Ctrnn::lagged_policy(Vector{0.25, 2.0}, 0.1);
  expr::ExprPool pool;
  core::BarrierProblem p;
  p.pool = &pool;
  p.sim_field = dubins::rnn_closed_loop_field({1.0, 0.0}, net);
  p.sym_field = dubins::rnn_closed_loop_field_expr({1.0, 0.0}, net, pool);
  // X0: paper's (d, θ) box × small hidden box. Safe range for h is its
  // invariant box [−1, 1] (slightly shrunk: the verifier requires
  // X0 ⊂ safe interior and h genuinely stays inside).
  p.initial_set = {{-1.0, -kPi / 16.0, -0.25}, {1.0, kPi / 16.0, 0.25}};
  p.safe_rect = {{-5.0, -(kPi / 2.0 - 0.01), -1.0},
                 {5.0, kPi / 2.0 - 0.01, 1.0}};
  // Only (d, θ) bounds are unsafe; h's range is the CTRNN's invariant
  // box, which the verifier proves flow-invariant.
  p.unsafe_dims = {true, true, false};

  core::VerifierOptions opts;
  opts.trace_duration = 25.0;
  opts.icp.time_limit_s = 120.0;
  core::BarrierVerifier verifier(p, opts);
  const core::VerifyResult r = verifier.verify();
  ASSERT_EQ(r.status, core::VerifyStatus::kSafe)
      << verify_status_name(r.status);

  // Certified invariant honoured by simulation from X0 corners.
  for (const Vector& v : p.initial_set.vertices()) {
    ode::IntegrateOptions iopts;
    iopts.step = 0.02;
    iopts.t_end = 30.0;
    const ode::Trace t = integrate_rk4(p.sim_field, v, iopts);
    for (std::size_t i = 0; i < t.size(); ++i) {
      ASSERT_LE(r.generator->value(t.state(i)), r.level + 1e-6);
    }
  }
}

}  // namespace
}  // namespace bcert
