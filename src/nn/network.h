#pragma once
/// \file network.h
/// \brief Feedforward neural networks: numeric evaluation, flat-parameter
/// access for policy search, symbolic export for verification, and
/// text (de)serialization.
///
/// The paper's controller (§4.2) is one hidden `tansig` layer of Nh
/// neurons with a `tansig` output neuron: (2 → Nh → 1),
/// 4·Nh + 1 parameters. This class supports arbitrary depth.

#include <iosfwd>
#include <random>
#include <vector>

#include "src/expr/expr.h"
#include "src/linalg/matrix.h"
#include "src/linalg/vector.h"
#include "src/nn/activation.h"

namespace bcert::nn {

/// One dense layer: out = act(W · in + b).
struct Layer {
  linalg::Matrix weights;  ///< (outputs × inputs)
  linalg::Vector bias;     ///< (outputs)
  Activation activation = Activation::kTanh;

  std::size_t inputs() const { return weights.cols(); }
  std::size_t outputs() const { return weights.rows(); }
  std::size_t num_params() const {
    return weights.rows() * weights.cols() + bias.size();
  }

  linalg::Vector forward(const linalg::Vector& in) const;

  /// Allocation-free forward pass; bit-identical to forward(). \p out
  /// is resized to outputs() and may not alias \p in.
  void forward_inplace(const linalg::Vector& in, linalg::Vector& out) const;
};

/// Reusable ping-pong buffers for FeedforwardNet::forward_inplace. One
/// scratch per thread; contents are overwritten on every call.
struct ForwardScratch {
  linalg::Vector a, b;
};

/// A stateless feedforward network (the `h` of Eq. (3) in the paper).
class FeedforwardNet {
 public:
  FeedforwardNet() = default;

  /// Builds an unpopulated network from a layer-size spec, e.g.
  /// {2, 10, 1} with activations {kTanh, kTanh} (one per non-input
  /// layer). Weights start at zero.
  FeedforwardNet(const std::vector<std::size_t>& layer_sizes,
                 const std::vector<Activation>& activations);

  /// Convenience: the paper's single-hidden-layer shape
  /// (inputs → hidden → outputs), all-tanh.
  static FeedforwardNet single_hidden(std::size_t inputs, std::size_t hidden,
                                      std::size_t outputs,
                                      Activation act = Activation::kTanh);

  std::size_t num_layers() const { return layers_.size(); }
  const Layer& layer(std::size_t i) const { return layers_[i]; }
  Layer& layer(std::size_t i) { return layers_[i]; }

  std::size_t num_inputs() const;
  std::size_t num_outputs() const;

  /// Total trainable parameter count (the 4·Nh+1 of the paper for
  /// the (2, Nh, 1) shape).
  std::size_t num_params() const;

  /// Forward evaluation.
  linalg::Vector forward(const linalg::Vector& in) const;

  /// Allocation-free forward evaluation into \p out (resized to
  /// num_outputs()), using \p scratch for hidden-layer activations.
  /// Bit-identical to forward(); one scratch per thread.
  void forward_inplace(const linalg::Vector& in, linalg::Vector& out,
                       ForwardScratch& scratch) const;

  /// Flattened parameters (layer by layer: row-major weights then bias).
  linalg::Vector parameters() const;
  /// Loads flattened parameters; size must equal num_params().
  void set_parameters(const linalg::Vector& params);

  /// Random init: weights ~ N(0, scale/sqrt(fan_in)), biases ~ N(0, scale).
  void randomize(std::mt19937& rng, double scale = 1.0);

  /// Exports the network as expression DAG(s): one ExprId per output,
  /// in terms of the given symbolic inputs. This is how the *same*
  /// weights that drive the simulator enter the SMT queries.
  std::vector<expr::ExprId> to_expr(
      expr::ExprPool& pool, const std::vector<expr::ExprId>& inputs) const;

  /// Text serialization (portable, human-inspectable).
  void save(std::ostream& os) const;
  static FeedforwardNet load(std::istream& is);

 private:
  std::vector<Layer> layers_;
};

}  // namespace bcert::nn
