#pragma once
/// \file problem.h
/// \brief Linear-program model types.
///
/// The barrier-synthesis LP is small in variables (template coefficients
/// plus one margin variable) and moderate in rows (two constraints per
/// sampled trace point), so a dense representation is appropriate.

#include <cstdint>
#include <limits>
#include <vector>

#include "src/linalg/vector.h"

namespace bcert::lp {

/// Row relation.
enum class RowRel : std::uint8_t { kLe, kGe, kEq };

/// Objective sense.
enum class Sense : std::uint8_t { kMinimize, kMaximize };

inline constexpr double kLpInf = std::numeric_limits<double>::infinity();

/// One linear constraint `coeffs · x (rel) rhs`.
struct LpRow {
  linalg::Vector coeffs;
  RowRel rel = RowRel::kLe;
  double rhs = 0.0;
};

/// A linear program over n variables with optional box bounds.
struct LpProblem {
  Sense sense = Sense::kMinimize;
  linalg::Vector objective;     ///< length n
  std::vector<LpRow> rows;
  std::vector<double> lower;    ///< length n; -kLpInf for free below
  std::vector<double> upper;    ///< length n; +kLpInf for free above

  std::size_t num_vars() const { return objective.size(); }
  std::size_t num_rows() const { return rows.size(); }

  /// Creates a problem with n variables, zero objective, free bounds.
  static LpProblem with_free_vars(std::size_t n);

  /// Appends a row; coefficient vector must have length num_vars().
  void add_row(linalg::Vector coeffs, RowRel rel, double rhs);
};

/// Solver status.
enum class LpStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterLimit,
};

const char* lp_status_name(LpStatus s);

/// Solution report.
struct LpSolution {
  LpStatus status = LpStatus::kIterLimit;
  linalg::Vector x;        ///< primal values (original variable space)
  double objective = 0.0;  ///< objective value in the problem's sense
  int iterations = 0;
};

}  // namespace bcert::lp
