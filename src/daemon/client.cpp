#include "src/daemon/client.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

namespace bcert::daemon {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

Client::Client(std::string socket_path) : path_(std::move(socket_path)) {}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
  events_.clear();
}

bool Client::connect(double timeout_s, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.empty() || path_.size() >= sizeof addr.sun_path) {
    return fail(error, "socket path empty or too long");
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof addr.sun_path - 1);

  const auto start = SteadyClock::now();
  int last_errno = 0;
  do {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return fail(error, std::string("socket(): ") + strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      fd_ = fd;
      return true;
    }
    last_errno = errno;
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  } while (seconds_since(start) < timeout_s);
  return fail(error, "connect " + path_ + ": " + strerror(last_errno));
}

bool Client::send_all(const std::string& line, std::string* error) {
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd_, line.data() + sent, line.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    close();
    return fail(error, std::string("send: ") + strerror(errno));
  }
  return true;
}

bool Client::read_line(std::string& out, double timeout_s,
                       std::string* error) {
  const auto start = SteadyClock::now();
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    const double remaining = timeout_s - seconds_since(start);
    if (remaining <= 0.0) return fail(error, "timed out waiting for response");
    pollfd pfd{fd_, POLLIN, 0};
    const int rc =
        ::poll(&pfd, 1, static_cast<int>(remaining * 1000.0) + 1);
    if (rc < 0 && errno != EINTR) {
      close();
      return fail(error, std::string("poll: ") + strerror(errno));
    }
    if (rc <= 0) continue;
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      buffer_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    close();
    return fail(error, n == 0 ? "connection closed by daemon"
                              : std::string("recv: ") + strerror(errno));
  }
}

bool Client::request(const std::string& request, JsonValue& response,
                     std::string* error) {
  if (fd_ < 0) return fail(error, "not connected");
  if (request.empty() || request.front() != '{') {
    return fail(error, "request must be a JSON object");
  }
  const std::uint64_t id = next_id_++;
  // Splice the id in as the first member: {"id":N,<rest> — or {"id":N}
  // for the empty object.
  std::string line = "{\"id\":" + std::to_string(id);
  if (request.find_first_not_of(" \t", 1) != request.size() - 1) line += ",";
  line.append(request, 1, request.size() - 1);
  line += '\n';
  if (!send_all(line, error)) return false;

  while (true) {
    std::string text;
    if (!read_line(text, 30.0, error)) return false;
    JsonValue value;
    std::string parse_error;
    if (!JsonValue::parse(text, value, &parse_error)) {
      close();
      return fail(error, "bad daemon line: " + parse_error);
    }
    const JsonValue* req = value.find("req");
    if (req != nullptr && req->is_number() &&
        req->as_number() == static_cast<double>(id)) {
      response = std::move(value);
      return true;
    }
    events_.push_back(std::move(value));
  }
}

bool Client::read_event(JsonValue& out, double timeout_s,
                        std::string* error) {
  if (!events_.empty()) {
    out = std::move(events_.front());
    events_.pop_front();
    return true;
  }
  if (fd_ < 0) return fail(error, "not connected");
  std::string text;
  if (!read_line(text, timeout_s, error)) return false;
  std::string parse_error;
  if (!JsonValue::parse(text, out, &parse_error)) {
    close();
    return fail(error, "bad daemon line: " + parse_error);
  }
  return true;
}

}  // namespace bcert::daemon
