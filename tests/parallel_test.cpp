// Tests for the work-stealing ThreadPool and CancellationToken.
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/parallel/thread_pool.h"

namespace bcert::parallel {
namespace {

TEST(CancellationToken, LatchesAndResets) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(DefaultThreadCount, HonorsEnvOverride) {
  const char* saved = std::getenv("BCERT_THREADS");
  const std::string saved_value = saved ? saved : "";
  setenv("BCERT_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count(), 3u);
  setenv("BCERT_THREADS", "0", 1);  // non-positive → fall back to hardware
  EXPECT_GE(default_thread_count(), 1u);
  if (saved) {
    setenv("BCERT_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("BCERT_THREADS");
  }
}

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex m;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([i, &order, &m] {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(i);
    }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f =
      pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives the exception and keeps serving tasks.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, RunOnWorkersRunsEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(17);
  pool.run_on_workers(17, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunOnWorkersRethrowsStrandError) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run_on_workers(8,
                          [&](std::size_t i) {
                            ran.fetch_add(1, std::memory_order_relaxed);
                            if (i == 3) throw std::logic_error("strand 3");
                          }),
      std::logic_error);
  // Every strand still ran to completion before the rethrow.
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, 7, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(hi, kN);
    ASSERT_LE(hi - lo, 7u);
    for (std::size_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForHonorsPreCancelledToken) {
  ThreadPool pool(2);
  CancellationToken token;
  token.cancel();
  std::atomic<std::size_t> executed{0};
  pool.parallel_for(
      0, 10000, 10,
      [&](std::size_t lo, std::size_t hi) {
        executed.fetch_add(hi - lo, std::memory_order_relaxed);
      },
      &token);
  EXPECT_EQ(executed.load(), 0u);
}

TEST(ThreadPool, ParallelForStopsAfterMidRunCancellation) {
  ThreadPool pool(2);
  CancellationToken token;
  std::atomic<std::size_t> executed{0};
  pool.parallel_for(
      0, 100000, 1,
      [&](std::size_t lo, std::size_t) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (lo >= 50) token.cancel();
      },
      &token);
  EXPECT_LT(executed.load(), 100000u);
}

TEST(ThreadPool, NestedRunOnWorkersDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.run_on_workers(4, [&](std::size_t) {
    pool.run_on_workers(4, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  EXPECT_GE(ThreadPool::global().size(), 1u);
  EXPECT_EQ(ThreadPool::global().submit([] { return 41 + 1; }).get(), 42);
}

}  // namespace
}  // namespace bcert::parallel
