#pragma once
/// \file x64_asm.h
/// \brief Minimal x86-64 byte-buffer assembler for the tape JIT.
///
/// Covers exactly the instruction set the HC4 emitter needs: 64-bit
/// moves/lea/push/pop/call/ret, rel32 branches with label fixups, and
/// the SSE2 packed-double subset mirroring src/smt/tape_kernels.h
/// (movupd/movapd/arithmetic/compares/shuffles plus the integer-lane
/// ops behind `outward_pd`). Memory operands are restricted to
/// [base + disp32] with a non-rsp/r12 base, so no SIB bytes exist and
/// every encoding below is the straight-line REX/modrm case.
///
/// Internal header: include only from src/smt/jit implementation files.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace bcert::smt::jit {

// General-purpose register numbers (SysV).
inline constexpr int kRax = 0, kRcx = 1, kRdx = 2, kRbx = 3, kRsp = 4,
                     kRbp = 5, kRsi = 6, kRdi = 7, kR8 = 8, kR12 = 12,
                     kR13 = 13;

/// Condition codes for jcc (0F 8x).
inline constexpr std::uint8_t kCcBelow = 0x2, kCcEq = 0x4, kCcNe = 0x5,
                              kCcAbove = 0x7;

class X64Assembler {
 public:
  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

  // --- labels --------------------------------------------------------------

  struct Label {
    std::ptrdiff_t pos = -1;               ///< bound offset, -1 = pending
    std::vector<std::size_t> fixups;       ///< rel32 patch positions
  };

  std::size_t new_label() {
    labels_.emplace_back();
    return labels_.size() - 1;
  }

  void bind(std::size_t label) {
    Label& l = labels_.at(label);
    l.pos = static_cast<std::ptrdiff_t>(buf_.size());
    for (const std::size_t at : l.fixups) patch_rel32(at, l.pos);
    l.fixups.clear();
  }

  /// 0F 8x rel32 conditional jump to \p label.
  void jcc(std::uint8_t cc, std::size_t label) {
    u8(0x0F);
    u8(static_cast<std::uint8_t>(0x80 | cc));
    branch_to(label);
  }

  /// E9 rel32 unconditional jump.
  void jmp(std::size_t label) {
    u8(0xE9);
    branch_to(label);
  }

  // --- integer / control flow ----------------------------------------------

  void push(int r) {
    if (r >= 8) u8(0x41);
    u8(static_cast<std::uint8_t>(0x50 + (r & 7)));
  }
  void pop(int r) {
    if (r >= 8) u8(0x41);
    u8(static_cast<std::uint8_t>(0x58 + (r & 7)));
  }
  void ret() { u8(0xC3); }

  /// mov r64, imm64 (movabs).
  void mov_ri64(int r, std::uint64_t imm) {
    rex(1, 0, r);
    u8(static_cast<std::uint8_t>(0xB8 + (r & 7)));
    u64(imm);
  }

  /// mov r64dst, r64src.
  void mov_rr64(int dst, int src) {
    rex(1, src, dst);
    u8(0x89);
    modrm(3, src, dst);
  }

  /// mov r64, [base + disp32].
  void mov_rm64(int dst, int base, std::int32_t disp) {
    rex(1, dst, base);
    u8(0x8B);
    mem(dst, base, disp);
  }

  /// lea r64, [base + disp32].
  void lea(int dst, int base, std::int32_t disp) {
    rex(1, dst, base);
    u8(0x8D);
    mem(dst, base, disp);
  }

  void call_reg(int r) {
    if (r >= 8) u8(0x41);
    u8(0xFF);
    modrm(3, 2, r);
  }

  void test_eax_eax() {
    u8(0x85);
    u8(0xC0);
  }
  void xor_eax_eax() {
    u8(0x31);
    u8(0xC0);
  }
  void xor_edx_edx() {
    u8(0x31);
    u8(0xD2);
  }
  void mov_r32_imm(int r, std::uint32_t imm) {
    if (r >= 8) u8(0x41);
    u8(static_cast<std::uint8_t>(0xB8 + (r & 7)));
    u32(imm);
  }
  void cmp_eax_imm8(std::int8_t imm) {
    u8(0x83);
    u8(0xF8);
    u8(static_cast<std::uint8_t>(imm));
  }
  void cmp_eax_imm32(std::uint32_t imm) {
    u8(0x3D);
    u32(imm);
  }

  // --- SSE2 packed double --------------------------------------------------
  // All take xmm0..xmm7 only (asserted), so no REX.R is ever needed and a
  // REX prefix appears only for an r13 base.

  void movupd_load(int x, int base, std::int32_t disp) {
    sse_mem(0x66, 0x10, x, base, disp);
  }
  void movupd_store(int base, std::int32_t disp, int x) {
    sse_mem(0x66, 0x11, x, base, disp);
  }
  void movapd_load(int x, int base, std::int32_t disp) {
    sse_mem(0x66, 0x28, x, base, disp);
  }
  void movapd_rr(int dst, int src) { sse_rr(0x66, 0x28, dst, src); }
  /// movsd xmm_dst, xmm_src — merges src lane0 into dst lane0.
  void movsd_rr(int dst, int src) { sse_rr(0xF2, 0x10, dst, src); }

  void addpd(int dst, int src) { sse_rr(0x66, 0x58, dst, src); }
  void subpd(int dst, int src) { sse_rr(0x66, 0x5C, dst, src); }
  void mulpd(int dst, int src) { sse_rr(0x66, 0x59, dst, src); }
  void divpd(int dst, int src) { sse_rr(0x66, 0x5E, dst, src); }
  void mulpd_mem(int dst, int base, std::int32_t disp) {
    sse_mem(0x66, 0x59, dst, base, disp);
  }
  void minpd(int dst, int src) { sse_rr(0x66, 0x5D, dst, src); }
  void maxpd(int dst, int src) { sse_rr(0x66, 0x5F, dst, src); }
  void andpd(int dst, int src) { sse_rr(0x66, 0x54, dst, src); }
  void andpd_mem(int dst, int base, std::int32_t disp) {
    sse_mem(0x66, 0x54, dst, base, disp);
  }
  void andnpd(int dst, int src) { sse_rr(0x66, 0x55, dst, src); }
  void orpd(int dst, int src) { sse_rr(0x66, 0x56, dst, src); }
  void xorpd(int dst, int src) { sse_rr(0x66, 0x57, dst, src); }
  void unpckhpd(int dst, int src) { sse_rr(0x66, 0x15, dst, src); }
  void shufpd(int dst, int src, std::uint8_t imm) {
    sse_rr(0x66, 0xC6, dst, src);
    u8(imm);
  }
  void ucomisd(int a, int b) { sse_rr(0x66, 0x2E, a, b); }
  /// cmppd dst, src, imm (0 = eq, 3 = unord).
  void cmppd(int dst, int src, std::uint8_t imm) {
    sse_rr(0x66, 0xC2, dst, src);
    u8(imm);
  }
  void cmppd_mem(int dst, int base, std::int32_t disp, std::uint8_t imm) {
    sse_mem(0x66, 0xC2, dst, base, disp);
    u8(imm);
  }
  void movmskpd(int r32, int x) { sse_rr(0x66, 0x50, r32, x); }

  // Integer lanes (outward rounding).
  void psrlq_imm(int x, std::uint8_t imm) {
    u8(0x66);
    u8(0x0F);
    u8(0x73);
    modrm(3, 2, x);
    u8(imm);
  }
  void psllq_imm(int x, std::uint8_t imm) {
    u8(0x66);
    u8(0x0F);
    u8(0x73);
    modrm(3, 6, x);
    u8(imm);
  }
  void paddq(int dst, int src) { sse_rr(0x66, 0xD4, dst, src); }
  void psubq(int dst, int src) { sse_rr(0x66, 0xFB, dst, src); }
  void psubq_mem(int dst, int base, std::int32_t disp) {
    sse_mem(0x66, 0xFB, dst, base, disp);
  }
  void pcmpeqd(int dst, int src) { sse_rr(0x66, 0x76, dst, src); }
  void pmovmskb(int r32, int x) { sse_rr(0x66, 0xD7, r32, x); }
  void pand(int dst, int src) { sse_rr(0x66, 0xDB, dst, src); }
  void pandn(int dst, int src) { sse_rr(0x66, 0xDF, dst, src); }
  void por(int dst, int src) { sse_rr(0x66, 0xEB, dst, src); }
  void pxor(int dst, int src) { sse_rr(0x66, 0xEF, dst, src); }

 private:
  void u8(std::uint8_t b) { buf_.push_back(b); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void rex(int w, int reg, int rm) {
    const std::uint8_t b = static_cast<std::uint8_t>(
        0x40 | (w << 3) | ((reg >= 8) << 2) | (rm >= 8));
    if (w != 0 || b != 0x40) u8(b);
  }

  void modrm(int mod, int reg, int rm) {
    u8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) | (rm & 7)));
  }

  /// [base + disp32] operand; base must not be rsp/r12 (SIB territory).
  void mem(int reg, int base, std::int32_t disp) {
    if ((base & 7) == kRsp) {
      throw std::logic_error("x64_asm: rsp/r12 base needs a SIB byte");
    }
    modrm(2, reg, base);
    u32(static_cast<std::uint32_t>(disp));
  }

  void sse_rr(std::uint8_t prefix, std::uint8_t opc, int reg, int rm) {
    u8(prefix);
    u8(0x0F);
    u8(opc);
    modrm(3, reg, rm);
  }

  void sse_mem(std::uint8_t prefix, std::uint8_t opc, int x, int base,
               std::int32_t disp) {
    u8(prefix);
    if (base >= 8) u8(0x41);  // REX.B — must precede 0F
    u8(0x0F);
    u8(opc);
    mem(x, base, disp);
  }

  void branch_to(std::size_t label) {
    Label& l = labels_.at(label);
    const std::size_t at = buf_.size();
    u32(0);
    if (l.pos >= 0) {
      patch_rel32(at, l.pos);
    } else {
      l.fixups.push_back(at);
    }
  }

  void patch_rel32(std::size_t at, std::ptrdiff_t target) {
    const std::ptrdiff_t rel =
        target - static_cast<std::ptrdiff_t>(at) - 4;
    const std::uint32_t v = static_cast<std::uint32_t>(rel);
    for (int i = 0; i < 4; ++i) {
      buf_[at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  std::vector<std::uint8_t> buf_;
  std::vector<Label> labels_;
};

}  // namespace bcert::smt::jit
