// Tests for core::RuntimeConfig — the typed home of every BCERT_*
// runtime knob: strict env parsing, the single warning channel, and the
// programmatic override path the Engine and resolvers rely on.
#include "src/core/runtime_config.h"

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/fault.h"
#include "src/core/lp_synthesis.h"
#include "src/parallel/thread_pool.h"
#include "src/smt/hc4.h"
#include "src/smt/icp_solver.h"

namespace bcert {
namespace {

using core::ConfigHc4Mode;
using core::ConfigSimd;
using core::ConfigToggle;
using core::RuntimeConfig;

/// Fixture that snapshots and clears the parsed BCERT_* variables, so
/// the tests see a deterministic environment even under the CI legs
/// that exercise the suite with BCERT_THREADS / BCERT_FAULT / ... set.
/// Everything is restored on teardown.
class RuntimeConfigTest : public ::testing::Test {
 protected:
  static constexpr const char* kVars[8] = {
      "BCERT_THREADS", "BCERT_ICP_BATCH", "BCERT_ICP_WARM",
      "BCERT_LP_WARM", "BCERT_HC4_MODE", "BCERT_ICP_SIMD",
      "BCERT_FAULT", "BCERT_MEM_QUOTA"};

  void SetUp() override {
    for (const char* name : kVars) {
      const char* v = std::getenv(name);
      saved_.emplace_back(v ? std::optional<std::string>(v) : std::nullopt);
      unsetenv(name);
    }
  }
  void TearDown() override {
    for (std::size_t i = 0; i < std::size(kVars); ++i) {
      if (saved_[i]) {
        setenv(kVars[i], saved_[i]->c_str(), 1);
      } else {
        unsetenv(kVars[i]);
      }
    }
  }

  std::vector<std::optional<std::string>> saved_;
};

TEST_F(RuntimeConfigTest, DefaultsWhenEnvironmentUnset) {
  std::vector<std::string> warnings;
  const RuntimeConfig c = RuntimeConfig::from_env(&warnings);
  EXPECT_EQ(c.threads, 0);
  EXPECT_EQ(c.icp_batch, 0);
  EXPECT_EQ(c.icp_warm, ConfigToggle::kAuto);
  EXPECT_EQ(c.lp_warm, ConfigToggle::kAuto);
  EXPECT_EQ(c.hc4_mode, ConfigHc4Mode::kTape);
  EXPECT_EQ(c.icp_simd, ConfigSimd::kAuto);
  EXPECT_TRUE(warnings.empty());
}

TEST_F(RuntimeConfigTest, ParsesWellFormedValues) {
  setenv("BCERT_THREADS", "4", 1);
  setenv("BCERT_ICP_BATCH", "16", 1);
  setenv("BCERT_ICP_WARM", "off", 1);
  setenv("BCERT_LP_WARM", "1", 1);
  setenv("BCERT_HC4_MODE", "tree", 1);
  setenv("BCERT_ICP_SIMD", "scalar", 1);

  std::vector<std::string> warnings;
  const RuntimeConfig c = RuntimeConfig::from_env(&warnings);
  EXPECT_EQ(c.threads, 4);
  EXPECT_EQ(c.icp_batch, 16);
  EXPECT_EQ(c.icp_warm, ConfigToggle::kOff);
  EXPECT_EQ(c.lp_warm, ConfigToggle::kOn);
  EXPECT_EQ(c.hc4_mode, ConfigHc4Mode::kTree);
  EXPECT_EQ(c.icp_simd, ConfigSimd::kScalar);
  EXPECT_TRUE(warnings.empty()) << warnings.front();
}

TEST_F(RuntimeConfigTest, MalformedIntegersWarnAndFallBack) {
  setenv("BCERT_THREADS", "abc", 1);
  setenv("BCERT_ICP_BATCH", "8boxes", 1);  // trailing junk

  std::vector<std::string> warnings;
  const RuntimeConfig c = RuntimeConfig::from_env(&warnings);
  EXPECT_EQ(c.threads, 0);    // auto, not atoi garbage
  EXPECT_EQ(c.icp_batch, 0);  // default, not 8-with-junk
  ASSERT_EQ(warnings.size(), 2u);
  EXPECT_NE(warnings[0].find("BCERT_THREADS"), std::string::npos);
  EXPECT_NE(warnings[1].find("BCERT_ICP_BATCH"), std::string::npos);
}

TEST_F(RuntimeConfigTest, NonPositiveIntegersRejected) {
  setenv("BCERT_THREADS", "0", 1);
  setenv("BCERT_ICP_BATCH", "-3", 1);
  std::vector<std::string> warnings;
  const RuntimeConfig c = RuntimeConfig::from_env(&warnings);
  EXPECT_EQ(c.threads, 0);
  EXPECT_EQ(c.icp_batch, 0);
  EXPECT_EQ(warnings.size(), 2u);
}

TEST_F(RuntimeConfigTest, MalformedEnumsWarnAndFallBack) {
  setenv("BCERT_HC4_MODE", "tapee", 1);
  setenv("BCERT_ICP_SIMD", "avx512", 1);
  std::vector<std::string> warnings;
  const RuntimeConfig c = RuntimeConfig::from_env(&warnings);
  EXPECT_EQ(c.hc4_mode, ConfigHc4Mode::kTape);
  EXPECT_EQ(c.icp_simd, ConfigSimd::kAuto);
  EXPECT_EQ(warnings.size(), 2u);
}

TEST_F(RuntimeConfigTest, MalformedToggleWarnsButEnables) {
  // Legacy contract: any unrecognized non-off token enables the knob —
  // preserved, but no longer silent.
  setenv("BCERT_ICP_WARM", "yes-please", 1);
  std::vector<std::string> warnings;
  const RuntimeConfig c = RuntimeConfig::from_env(&warnings);
  EXPECT_EQ(c.icp_warm, ConfigToggle::kOn);
  EXPECT_EQ(warnings.size(), 1u);
}

TEST_F(RuntimeConfigTest, UnknownBcertVariableWarns) {
  setenv("BCERT_ICP_BACTH", "8", 1);  // the classic typo
  std::vector<std::string> warnings;
  (void)RuntimeConfig::from_env(&warnings);
  unsetenv("BCERT_ICP_BACTH");
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("BCERT_ICP_BACTH"), std::string::npos);
  EXPECT_NE(warnings[0].find("unknown"), std::string::npos);
}

TEST_F(RuntimeConfigTest, BenchKnobsAreKnown) {
  setenv("BCERT_ICP_BOXES", "1000", 1);
  setenv("BCERT_SIZES", "small", 1);
  std::vector<std::string> warnings;
  (void)RuntimeConfig::from_env(&warnings);
  unsetenv("BCERT_ICP_BOXES");
  unsetenv("BCERT_SIZES");
  EXPECT_TRUE(warnings.empty()) << warnings.front();
}

TEST_F(RuntimeConfigTest, FaultSpecParsedWhenWellFormed) {
  // A CI fault leg may have armed the registry through an earlier
  // active() call before this fixture scrubbed the environment.
  core::FaultRegistry::clear();
  setenv("BCERT_FAULT",
         "tape_compile:throw@3,lp_solve:delay=50ms@every:7", 1);
  std::vector<std::string> warnings;
  const RuntimeConfig c = RuntimeConfig::from_env(&warnings);
  EXPECT_EQ(c.fault_spec, "tape_compile:throw@3,lp_solve:delay=50ms@every:7");
  EXPECT_TRUE(warnings.empty()) << warnings.front();
  // from_env only *validates*: parsing an environment must never arm
  // the process-wide registry as a side effect.
  EXPECT_FALSE(core::FaultRegistry::enabled());
}

TEST_F(RuntimeConfigTest, MalformedFaultSpecWarnsAndIsIgnored) {
  setenv("BCERT_FAULT", "bogus_point:throw,lp_solve:delay=900000ms", 1);
  std::vector<std::string> warnings;
  const RuntimeConfig c = RuntimeConfig::from_env(&warnings);
  EXPECT_TRUE(c.fault_spec.empty());
  ASSERT_EQ(warnings.size(), 2u);
  EXPECT_NE(warnings[0].find("BCERT_FAULT"), std::string::npos);
  EXPECT_NE(warnings[0].find("bogus_point"), std::string::npos);
  EXPECT_NE(warnings[1].find("delay"), std::string::npos);
}

TEST_F(RuntimeConfigTest, MemQuotaParsesBinarySuffixes) {
  const auto parse = [this](const char* text) {
    setenv("BCERT_MEM_QUOTA", text, 1);
    std::vector<std::string> warnings;
    const RuntimeConfig c = RuntimeConfig::from_env(&warnings);
    EXPECT_TRUE(warnings.empty()) << text << ": " << warnings.front();
    return c.mem_quota_bytes;
  };
  EXPECT_EQ(parse("1024"), 1024u);
  EXPECT_EQ(parse("64k"), 64u << 10);
  EXPECT_EQ(parse("64KB"), 64u << 10);
  EXPECT_EQ(parse("8M"), 8u << 20);
  EXPECT_EQ(parse("2g"), 2ull << 30);
}

TEST_F(RuntimeConfigTest, MalformedMemQuotaWarnsAndDisables) {
  setenv("BCERT_MEM_QUOTA", "lots", 1);
  std::vector<std::string> warnings;
  const RuntimeConfig c = RuntimeConfig::from_env(&warnings);
  EXPECT_EQ(c.mem_quota_bytes, 0u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("BCERT_MEM_QUOTA"), std::string::npos);
}

TEST_F(RuntimeConfigTest, StderrWarningsDedupePerMessage) {
  // Without a sink, warnings go to stderr — but each distinct message
  // only once per process, however often the same malformed environment
  // is re-parsed.
  setenv("BCERT_ICP_BATCH", "dedupe-check-8x", 1);
  ::testing::internal::CaptureStderr();
  (void)RuntimeConfig::from_env(nullptr);
  const std::string first = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(first.find("BCERT_ICP_BATCH"), std::string::npos);

  ::testing::internal::CaptureStderr();
  (void)RuntimeConfig::from_env(nullptr);
  (void)RuntimeConfig::from_env(nullptr);
  const std::string repeats = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(repeats.find("dedupe-check-8x"), std::string::npos) << repeats;

  // A *different* offending value is a different message and still
  // surfaces.
  setenv("BCERT_ICP_BATCH", "dedupe-check-9x", 1);
  ::testing::internal::CaptureStderr();
  (void)RuntimeConfig::from_env(nullptr);
  const std::string changed = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(changed.find("dedupe-check-9x"), std::string::npos);
}

/// RAII guard restoring the active config (the rest of the process
/// consults it through the resolvers).
class ScopedActiveConfig {
 public:
  explicit ScopedActiveConfig(const RuntimeConfig& next)
      : saved_(RuntimeConfig::active()) {
    RuntimeConfig::set_active(next);
  }
  ~ScopedActiveConfig() { RuntimeConfig::set_active(saved_); }

 private:
  RuntimeConfig saved_;
};

TEST(RuntimeConfigOverride, ReachesThreadResolver) {
  RuntimeConfig c = RuntimeConfig::active();
  c.threads = 3;
  ScopedActiveConfig guard(c);
  EXPECT_EQ(parallel::default_thread_count(), 3u);
  EXPECT_EQ(parallel::resolve_thread_count(0), 3);
  EXPECT_EQ(parallel::resolve_thread_count(7), 7);  // explicit wins
}

TEST(RuntimeConfigOverride, ReachesIcpResolvers) {
  RuntimeConfig c = RuntimeConfig::active();
  c.icp_batch = 5;
  c.icp_warm = ConfigToggle::kOff;
  c.hc4_mode = ConfigHc4Mode::kTree;
  ScopedActiveConfig guard(c);

  EXPECT_EQ(smt::resolve_icp_batch(0), 5);
  EXPECT_EQ(smt::resolve_icp_batch(2), 2);  // explicit wins
  EXPECT_EQ(smt::resolve_hc4_mode(smt::Hc4Mode::kAuto), smt::Hc4Mode::kTree);
  EXPECT_EQ(smt::resolve_hc4_mode(smt::Hc4Mode::kTape), smt::Hc4Mode::kTape);

  smt::IcpConfig icp;
  icp.unsat_cache = std::make_shared<smt::UnsatTreeCache>();
  icp.warm_start = true;
  EXPECT_FALSE(smt::icp_warm_enabled(icp));  // kOff overrides the flag
}

TEST(RuntimeConfigOverride, ReachesLpWarmSwitch) {
  core::SynthesisOptions opts;
  opts.warm_start = true;

  RuntimeConfig c = RuntimeConfig::active();
  c.lp_warm = ConfigToggle::kOff;
  {
    ScopedActiveConfig guard(c);
    EXPECT_FALSE(core::lp_warm_start_enabled(opts));
  }
  c.lp_warm = ConfigToggle::kAuto;
  {
    ScopedActiveConfig guard(c);
    EXPECT_TRUE(core::lp_warm_start_enabled(opts));
    opts.warm_start = false;
    EXPECT_FALSE(core::lp_warm_start_enabled(opts));
  }
}

TEST(RuntimeConfigOverride, IcpBatchClampedToLaneBufferCap) {
  RuntimeConfig c = RuntimeConfig::active();
  c.icp_batch = 1 << 19;
  ScopedActiveConfig guard(c);
  EXPECT_EQ(smt::resolve_icp_batch(0), 1024);
  EXPECT_EQ(smt::resolve_icp_batch(1 << 19), 1024);
}

}  // namespace
}  // namespace bcert
