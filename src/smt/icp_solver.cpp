#include "src/smt/icp_solver.h"

#include <deque>
#include <stdexcept>

namespace bcert::smt {

using clock = std::chrono::steady_clock;

const char* sat_result_name(SatResult r) {
  switch (r) {
    case SatResult::kUnsat: return "UNSAT";
    case SatResult::kSat: return "SAT";
    case SatResult::kDeltaSat: return "delta-SAT";
    case SatResult::kUnknown: return "UNKNOWN";
  }
  return "?";
}

linalg::Vector IcpResult::witness_point() const {
  if (!witness) {
    throw std::logic_error("IcpResult::witness_point: no witness");
  }
  return witness->midpoint();
}

IcpResult IcpSolver::solve(const Conjunction& conjunction,
                           const interval::Box& box) const {
  IcpResult result;
  const auto start = clock::now();
  auto elapsed_s = [&start] {
    return std::chrono::duration<double>(clock::now() - start).count();
  };

  if (conjunction.empty()) {
    // Trivially satisfied everywhere (if the box is nonempty).
    result.verdict = box.is_empty() ? SatResult::kUnsat : SatResult::kSat;
    if (!box.is_empty()) result.witness = box;
    result.stats.solve_time_s = elapsed_s();
    return result;
  }

  Hc4Contractor contractor(*pool_, conjunction);

  // DFS work stack: depth-first finds witnesses fast and keeps memory
  // bounded by (depth x dimension).
  std::deque<interval::Box> work;
  if (!box.is_empty()) work.push_back(box);

  result.stats.max_depth_width = box.max_width();

  while (!work.empty()) {
    if (result.stats.boxes_processed >= config_.max_boxes ||
        elapsed_s() > config_.time_limit_s) {
      result.verdict = SatResult::kUnknown;
      result.stats.solve_time_s = elapsed_s();
      return result;
    }

    interval::Box current = std::move(work.back());
    work.pop_back();
    ++result.stats.boxes_processed;

    const ContractResult cr = contractor.contract_fixpoint(
        current, config_.hc4_passes, config_.hc4_improvement);
    if (cr == ContractResult::kEmpty || current.is_empty()) {
      ++result.stats.boxes_pruned;
      continue;
    }

    result.stats.max_depth_width =
        std::min(result.stats.max_depth_width, current.max_width());

    // True SAT: constraints certainly hold over the whole surviving box.
    if (contractor.certainly_satisfied(current)) {
      result.verdict = SatResult::kSat;
      result.witness = current;
      result.stats.solve_time_s = elapsed_s();
      return result;
    }

    // δ-condition: box too small to split further.
    if (current.max_width() <= config_.delta) {
      result.verdict = SatResult::kDeltaSat;
      result.witness = current;
      result.stats.solve_time_s = elapsed_s();
      return result;
    }

    auto [left, right] = current.split_widest();
    ++result.stats.splits;
    work.push_back(std::move(left));
    work.push_back(std::move(right));
  }

  result.verdict = SatResult::kUnsat;
  result.stats.solve_time_s = elapsed_s();
  return result;
}

IcpResult IcpSolver::solve(const Dnf& dnf, const interval::Box& box) const {
  IcpResult aggregate;
  aggregate.verdict = SatResult::kUnsat;
  bool any_unknown = false;

  for (const Conjunction& disjunct : dnf.disjuncts) {
    IcpResult r = solve(disjunct, box);
    aggregate.stats.boxes_processed += r.stats.boxes_processed;
    aggregate.stats.boxes_pruned += r.stats.boxes_pruned;
    aggregate.stats.splits += r.stats.splits;
    aggregate.stats.solve_time_s += r.stats.solve_time_s;
    if (r.is_sat()) {
      aggregate.verdict = r.verdict;
      aggregate.witness = std::move(r.witness);
      return aggregate;
    }
    if (r.verdict == SatResult::kUnknown) any_unknown = true;
  }
  if (any_unknown) aggregate.verdict = SatResult::kUnknown;
  return aggregate;
}

}  // namespace bcert::smt
