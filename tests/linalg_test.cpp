// Unit tests for bcert::linalg — vectors, matrices, decompositions.
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/linalg/decompositions.h"
#include "src/linalg/matrix.h"
#include "src/linalg/vector.h"

namespace bcert::linalg {
namespace {

TEST(Vector, ArithmeticBasics) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, 5.0, 6.0};
  EXPECT_EQ((a + b), (Vector{5.0, 7.0, 9.0}));
  EXPECT_EQ((b - a), (Vector{3.0, 3.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Vector{2.0, 4.0, 6.0}));
  EXPECT_EQ((-a), (Vector{-1.0, -2.0, -3.0}));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(Vector, Norms) {
  Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_inf(), 4.0);
  EXPECT_DOUBLE_EQ(v.sum(), -1.0);
}

TEST(Vector, DimensionMismatchThrows) {
  Vector a{1.0, 2.0};
  Vector b{1.0};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
}

TEST(Vector, Hadamard) {
  EXPECT_EQ(hadamard(Vector{1.0, 2.0}, Vector{3.0, 4.0}),
            (Vector{3.0, 8.0}));
}

TEST(Matrix, ConstructionAndIdentity) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Product) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Vector x{1.0, 1.0};
  EXPECT_EQ(a * x, (Vector{3.0, 7.0}));
}

TEST(Matrix, TransposeAndSymmetry) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.transposed()(0, 1), 3.0);
  EXPECT_FALSE(a.is_symmetric());
  Matrix s{{2.0, 1.0}, {1.0, 2.0}};
  EXPECT_TRUE(s.is_symmetric());
}

TEST(Matrix, QuadraticForm) {
  Matrix p{{2.0, 0.0}, {0.0, 3.0}};
  Vector x{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quadratic_form(x, p, x), 2.0 + 12.0);
}

TEST(Matrix, Outer) {
  Matrix m = outer(Vector{1.0, 2.0}, Vector{3.0, 4.0});
  EXPECT_DOUBLE_EQ(m(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 4.0);
}

TEST(Lu, SolveKnownSystem) {
  Matrix a{{4.0, 3.0}, {6.0, 3.0}};
  Vector b{10.0, 12.0};
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.invertible());
  Vector x = lu.solve(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, Determinant) {
  Matrix a{{4.0, 3.0}, {6.0, 3.0}};
  EXPECT_NEAR(LuDecomposition(a).determinant(), -6.0, 1e-12);
}

TEST(Lu, SingularDetected) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  LuDecomposition lu(a);
  EXPECT_FALSE(lu.invertible());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
  EXPECT_THROW(lu.solve(Vector{1.0, 1.0}), std::runtime_error);
}

TEST(Lu, InverseRoundTrip) {
  Matrix a{{2.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 4.0}};
  Matrix inv = LuDecomposition(a).inverse();
  Matrix prod = a * inv;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-12);
}

TEST(Cholesky, SpdSolve) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  CholeskyDecomposition chol(a);
  ASSERT_TRUE(chol.success());
  Vector x = chol.solve(Vector{8.0, 7.0});
  // Verify A x = b.
  Vector back = a * x;
  EXPECT_NEAR(back[0], 8.0, 1e-12);
  EXPECT_NEAR(back[1], 7.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyDecomposition(a).success());
}

TEST(Eigen, DiagonalMatrix) {
  Matrix a = Matrix::diagonal(Vector{3.0, 1.0, 2.0});
  SymmetricEigen e = symmetric_eigen(a);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(e.eigenvalues[1], 2.0, 1e-10);
  EXPECT_NEAR(e.eigenvalues[2], 3.0, 1e-10);
}

TEST(Eigen, Known2x2) {
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};  // eigenvalues 1 and 3
  SymmetricEigen e = symmetric_eigen(a);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(e.eigenvalues[1], 3.0, 1e-10);
}

TEST(Eigen, ReconstructionProperty) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) a(r, c) = a(c, r) = dist(rng);
  SymmetricEigen e = symmetric_eigen(a);
  // A V = V diag(λ)
  Matrix av = a * e.eigenvectors;
  Matrix vl = e.eigenvectors * Matrix::diagonal(e.eigenvalues);
  EXPECT_LT((av - vl).norm_max(), 1e-9);
  // V orthogonal
  Matrix vtv = e.eigenvectors.transposed() * e.eigenvectors;
  EXPECT_LT((vtv - Matrix::identity(n)).norm_max(), 1e-9);
}

TEST(Eigen, NonSymmetricThrows) {
  Matrix a{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_THROW(symmetric_eigen(a), std::invalid_argument);
}

TEST(LeastSquares, ExactFit) {
  // Overdetermined but consistent: y = 2x + 1 at 4 points.
  Matrix a{{0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}, {3.0, 1.0}};
  Vector b{1.0, 3.0, 5.0, 7.0};
  Vector x = least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 1.0, 1e-10);
}

TEST(LeastSquares, MinimizesResidual) {
  Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  Vector b{1.0, 1.0, 0.0};
  Vector x = least_squares(a, b);
  // Normal-equation solution: x = (AᵀA)⁻¹ Aᵀ b = [1/3, 1/3]
  EXPECT_NEAR(x[0], 1.0 / 3.0, 1e-10);
  EXPECT_NEAR(x[1], 1.0 / 3.0, 1e-10);
}

TEST(SolveLinear, ReturnsNulloptOnSingular) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(solve_linear(a, Vector{1.0, 2.0}).has_value());
}

// Property sweep: LU solve of random well-conditioned systems recovers
// the planted solution.
class LuRandomSolve : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomSolve, RecoversPlantedSolution) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(rng);
    a(r, r) += 8.0;  // diagonal dominance keeps conditioning sane
  }
  Vector x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = dist(rng);
  Vector b = a * x_true;
  Vector x = LuDecomposition(a).solve(b);
  EXPECT_LT((x - x_true).norm_inf(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuRandomSolve, ::testing::Range(0, 10));

// Raw-pointer kernels (the LP tableau's substrate): SSE2 fast paths must
// be bit-identical to the scalar loops at every length, including the
// odd tails, and the aligned allocator must deliver 64-byte rows.
TEST(RawKernels, MatchScalarReferenceAtAllLengths) {
  std::mt19937 rng(33);
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  for (std::size_t n = 0; n <= 17; ++n) {
    std::vector<double> x(n), y(n), y_ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = dist(rng);
      y[i] = y_ref[i] = dist(rng);
    }
    const double a = dist(rng);

    axpy(n, a, x.data(), y.data());
    for (std::size_t i = 0; i < n; ++i) y_ref[i] += a * x[i];
    EXPECT_EQ(y, y_ref) << "axpy n=" << n;

    std::vector<double> q = x, q_ref = x;
    const double d = a != 0.0 ? a : 1.5;
    scale_divide(n, d, q.data());
    for (std::size_t i = 0; i < n; ++i) q_ref[i] /= d;
    EXPECT_EQ(q, q_ref) << "scale_divide n=" << n;

    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
    EXPECT_EQ(dot(n, x.data(), y.data()), acc) << "dot n=" << n;
  }
}

TEST(RawKernels, AlignedDoublesIsZeroedAndAligned) {
  const AlignedDoubles buf = aligned_doubles(37);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.get()) % 64, 0u);
  for (std::size_t i = 0; i < 37; ++i) EXPECT_EQ(buf[i], 0.0);
}

}  // namespace
}  // namespace bcert::linalg
