#include "src/daemon/protocol.h"

#include <cmath>
#include <cstdio>

#include "src/scenario/plants.h"

namespace bcert::daemon {

namespace {

/// %.17g — round-trips every finite double exactly.
std::string full_precision(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Exact non-negative integer check for JSON numbers used as u64 ids.
bool as_u64(const JsonValue& v, std::uint64_t& out) {
  if (!v.is_number()) return false;
  const double d = v.as_number();
  if (!(d >= 0.0) || d != std::floor(d) || d > 9007199254740992.0) {
    return false;
  }
  out = static_cast<std::uint64_t>(d);
  return true;
}

bool family_from_name(const std::string& name, scenario::PlantFamily& out) {
  for (int i = 0; i < scenario::kPlantFamilyCount; ++i) {
    const auto family = static_cast<scenario::PlantFamily>(i);
    if (name == scenario::plant_family_name(family)) {
      out = family;
      return true;
    }
  }
  return false;
}

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

std::string ScenarioSpec::name() const {
  return "zoo-s" + std::to_string(seed) + "-i" + std::to_string(index);
}

scenario::GeneratorConfig ScenarioSpec::generator_config() const {
  scenario::GeneratorConfig config;
  config.seed = seed;
  config.count = index + 1;
  if (!families.empty()) config.families = families;
  if (param_jitter >= 0.0) config.param_jitter = param_jitter;
  if (weight_jitter >= 0.0) config.weight_jitter = weight_jitter;
  if (region_jitter >= 0.0) config.region_jitter = region_jitter;
  config.jitter_templates = jitter_templates;
  config.polynomial_degree = polynomial_degree;
  return config;
}

bool parse_scenario_spec(const JsonValue& v, ScenarioSpec& out,
                         std::string* error) {
  out = ScenarioSpec();
  if (!v.is_object()) return fail(error, "scenario must be an object");
  for (const JsonValue::Member& m : v.members()) {
    const std::string& key = m.first;
    const JsonValue& value = m.second;
    if (key == "seed") {
      if (!as_u64(value, out.seed)) {
        return fail(error, "scenario.seed must be a non-negative integer");
      }
    } else if (key == "index") {
      if (!as_u64(value, out.index) || out.index > 1u << 20) {
        return fail(error, "scenario.index must be an integer in [0, 2^20]");
      }
    } else if (key == "families") {
      if (!value.is_array()) {
        return fail(error, "scenario.families must be an array of names");
      }
      out.families.clear();
      for (const JsonValue& item : value.items()) {
        scenario::PlantFamily family{};
        if (!item.is_string() ||
            !family_from_name(item.as_string(), family)) {
          return fail(error, "scenario.families: unknown plant family");
        }
        out.families.push_back(family);
      }
      if (out.families.empty()) {
        return fail(error, "scenario.families must not be empty");
      }
    } else if (key == "param_jitter" || key == "weight_jitter" ||
               key == "region_jitter") {
      if (!value.is_number() || !(value.as_number() >= 0.0) ||
          !(value.as_number() <= 1.0)) {
        return fail(error, "scenario." + key + " must be in [0, 1]");
      }
      (key == "param_jitter"
           ? out.param_jitter
           : key == "weight_jitter" ? out.weight_jitter
                                    : out.region_jitter) = value.as_number();
    } else if (key == "jitter_templates") {
      if (!value.is_bool()) {
        return fail(error, "scenario.jitter_templates must be a bool");
      }
      out.jitter_templates = value.as_bool();
    } else if (key == "polynomial_degree") {
      std::uint64_t degree = 0;
      if (!as_u64(value, degree) || degree < 1 || degree > 6) {
        return fail(error, "scenario.polynomial_degree must be in [1, 6]");
      }
      out.polynomial_degree = static_cast<int>(degree);
    } else {
      return fail(error, "scenario: unknown key \"" + key + "\"");
    }
  }
  return true;
}

std::string verdict_line(const std::string& name,
                         const core::VerifyResult& result) {
  std::string line = name;
  line += " status=";
  line += core::verify_status_name(result.status);
  line += " template=";
  line += core::template_kind_name(result.template_kind);
  line += " level=";
  line += full_precision(result.level);
  line += " lp_margin=";
  line += full_precision(result.lp_margin);
  line += " cex=";
  line += std::to_string(result.counterexamples.size());
  line += " coeffs=[";
  if (result.has_generator()) {
    const linalg::Vector& coeffs = result.generator_coeffs();
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      if (i != 0) line += ',';
      line += full_precision(coeffs[i]);
    }
  }
  line += ']';
  return line;
}

}  // namespace bcert::daemon
