#include "src/smt/tape.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <set>
#include <stdexcept>

#include "src/core/fault.h"
#include "src/expr/eval.h"
#include "src/smt/jit/hc4_jit.h"
#include "src/smt/projections.h"
#include "src/smt/tape_kernels.h"

namespace bcert::smt {

using expr::ExprId;
using expr::kNoExpr;
using expr::Node;
using expr::Op;
using interval::Interval;
using tkern::const_quotient_feasible;
using tkern::mul_rec;
#if BCERT_TAPE_SSE2
using tkern::add_iv;
using tkern::load_iv;
using tkern::refine_sub;
#endif

Hc4Tape::Hc4Tape(const expr::ExprPool& pool, Conjunction conjunction)
    : conjunction_(std::move(conjunction)) {
  // Degradation-ladder rung: a throw here is caught by the ICP
  // contractor setup, which falls back to the tree backend.
  core::FaultRegistry::check(core::FaultPoint::kTapeCompile);
  std::vector<ExprId> roots;
  roots.reserve(conjunction_.size());
  for (const Constraint& k : conjunction_.constraints) roots.push_back(k.lhs);

  // Borrow the evaluator's topological schedule so the *instruction
  // order* — and therefore every arithmetic step — matches the
  // tree-walking path exactly (the differential fuzz suite relies on
  // this). Register numbering is free to differ: slots are laid out as
  // [constants | variables | interior nodes], each group in schedule
  // order, so the leaf loads are contiguous (one memcpy re-seeds every
  // constant) and the forward sweep writes a dense ascending range.
  const expr::Evaluator ev(pool, std::move(roots));
  const std::vector<ExprId>& schedule = ev.schedule();
  num_slots_ = schedule.size();

  std::vector<TapeSlot> slot_of(schedule.size());
  std::size_t num_consts = 0, num_vars = 0;
  for (const ExprId id : schedule) {
    const Op op = pool.node(id).op;
    num_consts += op == Op::kConst;
    num_vars += op == Op::kVar;
  }
  std::size_t next_const = 0;
  std::size_t next_var = num_consts;
  std::size_t next_interior = num_consts + num_vars;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Op op = pool.node(schedule[i]).op;
    std::size_t& counter = op == Op::kConst  ? next_const
                           : op == Op::kVar ? next_var
                                            : next_interior;
    slot_of[i] = static_cast<TapeSlot>(counter++);
  }

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Node& n = pool.node(schedule[i]);
    const TapeSlot slot = slot_of[i];
    if (n.op == Op::kVar) {
      var_slots_.push_back(slot);
      var_dims_.push_back(static_cast<std::uint32_t>(n.index));
      continue;
    }
    if (n.op == Op::kConst) {
      const_slots_.push_back(slot);
      const_values_.push_back(Interval(n.value));
      continue;
    }
    if (n.op == Op::kPow && (n.index > INT16_MAX || n.index < INT16_MIN)) {
      throw std::invalid_argument("Hc4Tape: kPow exponent out of range");
    }
    TapeInstr ins;
    ins.op = n.op;
    ins.exponent = static_cast<std::int16_t>(n.index);
    ins.dst = slot;
    ins.a = slot_of[ev.position_of(n.a)];
    ins.b = n.b != kNoExpr ? slot_of[ev.position_of(n.b)] : kNoSlot;

    // Strength-reduce multiplies with one constant operand (weight
    // products dominate NN-derived conjunctions).
    if (n.op == Op::kMul && mul_const_.size() <= INT16_MAX) {
      const Node& ca = pool.node(n.a);
      const Node& cb = pool.node(n.b);
      const bool a_const = ca.op == Op::kConst;
      const bool b_const = cb.op == Op::kConst;
      if (a_const != b_const) {
        const double w = a_const ? ca.value : cb.value;
        if (w != 0.0 && std::isfinite(w)) {
          MulConstSpec sp;
          sp.w = w;
          sp.rec = Interval(interval::prev_float(1.0 / w),
                            interval::next_float(1.0 / w));
          sp.var_slot = a_const ? ins.b : ins.a;
          sp.const_slot = a_const ? ins.a : ins.b;
          sp.var_is_a = !a_const;
          ins.spec = kSpecMulConst;
          ins.exponent = static_cast<std::int16_t>(mul_const_.size());
          mul_const_.push_back(sp);
        }
      }
    }
    code_.push_back(ins);
  }

  root_slots_.reserve(conjunction_.size());
  root_feasible_.reserve(conjunction_.size());
  for (const Constraint& k : conjunction_.constraints) {
    root_slots_.push_back(slot_of[ev.position_of(k.lhs)]);
    root_feasible_.push_back(k.feasible_values());
  }
}

Hc4Tape::Image Hc4Tape::image() const {
  Image img;
  img.rels.reserve(conjunction_.size());
  for (const Constraint& k : conjunction_.constraints) {
    img.rels.push_back(k.rel);
  }
  img.code = code_;
  img.mul_const = mul_const_;
  img.var_slots = var_slots_;
  img.var_dims = var_dims_;
  img.const_slots = const_slots_;
  img.const_values = const_values_;
  img.root_slots = root_slots_;
  img.root_feasible = root_feasible_;
  img.num_slots = num_slots_;
  return img;
}

namespace {
/// Bitwise interval equality — the restore validator's notion of "the
/// compiler would have produced exactly this" (operator== treats two
/// empty intervals as equal regardless of representation; bit equality
/// is stricter).
bool same_bits(const Interval& x, const Interval& y) {
  return std::bit_cast<std::uint64_t>(x.lo()) ==
             std::bit_cast<std::uint64_t>(y.lo()) &&
         std::bit_cast<std::uint64_t>(x.hi()) ==
             std::bit_cast<std::uint64_t>(y.hi());
}

/// Ceiling on persisted variable dimensions — wildly above any real
/// scenario, low enough that a forged tape cannot index far outside a
/// live box.
constexpr std::uint32_t kMaxRestoredVarDim = 1u << 20;
}  // namespace

std::shared_ptr<const Hc4Tape> Hc4Tape::restore(const Image& img) {
  const std::size_t nc = img.const_slots.size();
  const std::size_t nv = img.var_slots.size();
  const std::size_t ni = img.code.size();
  const std::size_t nr = img.root_slots.size();
  if (img.const_values.size() != nc || img.var_dims.size() != nv ||
      img.root_feasible.size() != nr || img.rels.size() != nr) {
    return nullptr;
  }
  if (img.num_slots != nc + nv + ni) return nullptr;
  const std::size_t slots = static_cast<std::size_t>(img.num_slots);

  // Dense [constants | variables | interiors] layout in schedule order —
  // exactly what the compiling constructor lays down.
  for (std::size_t i = 0; i < nc; ++i) {
    if (img.const_slots[i] != static_cast<TapeSlot>(i)) return nullptr;
  }
  for (std::size_t i = 0; i < nv; ++i) {
    if (img.var_slots[i] != static_cast<TapeSlot>(nc + i)) return nullptr;
    if (img.var_dims[i] > kMaxRestoredVarDim) return nullptr;
  }
  for (std::size_t i = 0; i < ni; ++i) {
    const TapeInstr& ins = img.code[i];
    if (ins.dst != static_cast<TapeSlot>(nc + nv + i)) return nullptr;
    if (ins.op <= expr::Op::kVar || ins.op > expr::Op::kMax) return nullptr;
    // Topological order: operands strictly precede their consumer.
    if (ins.a >= ins.dst) return nullptr;
    if (expr::is_binary(ins.op)) {
      if (ins.b == kNoSlot || ins.b >= ins.dst) return nullptr;
    } else if (ins.b != kNoSlot) {
      return nullptr;
    }
    if (ins.spec == kSpecMulConst) {
      if (ins.op != Op::kMul) return nullptr;
      if (ins.exponent < 0 ||
          static_cast<std::size_t>(ins.exponent) >= img.mul_const.size()) {
        return nullptr;
      }
      const MulConstSpec& sp = img.mul_const[ins.exponent];
      const TapeSlot want_var = sp.var_is_a ? ins.a : ins.b;
      const TapeSlot want_const = sp.var_is_a ? ins.b : ins.a;
      if (sp.var_slot != want_var || sp.const_slot != want_const) {
        return nullptr;
      }
      if (sp.w == 0.0 || !std::isfinite(sp.w)) return nullptr;
      if (sp.const_slot >= nc ||
          !same_bits(img.const_values[sp.const_slot], Interval(sp.w))) {
        return nullptr;
      }
      const Interval rec(interval::prev_float(1.0 / sp.w),
                         interval::next_float(1.0 / sp.w));
      if (!same_bits(sp.rec, rec)) return nullptr;
    } else if (ins.spec != kSpecNone) {
      return nullptr;
    }
  }
  for (std::size_t i = 0; i < nr; ++i) {
    if (img.root_slots[i] >= slots) return nullptr;
    if (img.rels[i] > Rel::kEq) return nullptr;
    const Constraint proto{kNoExpr, img.rels[i]};
    if (!same_bits(img.root_feasible[i], proto.feasible_values())) {
      return nullptr;
    }
  }

  std::shared_ptr<Hc4Tape> tape(new Hc4Tape());
  for (const Rel rel : img.rels) tape->conjunction_.add(kNoExpr, rel);
  tape->code_ = img.code;
  tape->mul_const_ = img.mul_const;
  tape->var_slots_ = img.var_slots;
  tape->var_dims_ = img.var_dims;
  tape->const_slots_ = img.const_slots;
  tape->const_values_ = img.const_values;
  tape->root_slots_ = img.root_slots;
  tape->root_feasible_ = img.root_feasible;
  tape->num_slots_ = slots;
  return tape;
}

Hc4Tape::Hc4Tape(const Hc4Tape& proto, Conjunction conjunction)
    : conjunction_(std::move(conjunction)),
      code_(proto.code_),
      mul_const_(proto.mul_const_),
      var_slots_(proto.var_slots_),
      var_dims_(proto.var_dims_),
      const_slots_(proto.const_slots_),
      const_values_(proto.const_values_),
      root_slots_(proto.root_slots_),
      root_feasible_(proto.root_feasible_),
      num_slots_(proto.num_slots_) {
  // Same degradation-ladder rung as a cold compile: adopting a warm
  // prototype must not dodge an armed tape_compile fault.
  core::FaultRegistry::check(core::FaultPoint::kTapeCompile);
  if (conjunction_.size() != proto.conjunction_.size()) {
    throw std::invalid_argument("Hc4Tape rebind: constraint count mismatch");
  }
  for (std::size_t i = 0; i < conjunction_.size(); ++i) {
    if (conjunction_.constraints[i].rel != proto.conjunction_.constraints[i].rel) {
      throw std::invalid_argument("Hc4Tape rebind: relation mismatch");
    }
  }
}

Hc4Tape::Registers Hc4Tape::make_registers() const {
  Registers regs(num_slots_);
  std::copy(const_values_.begin(), const_values_.end(), regs.begin());
  return regs;
}

void Hc4Tape::load_leaves(const interval::Box& box, Registers& regs) const {
  // Constants are re-seeded every pass: the backward sweep projects
  // requirements into *all* child slots, including constant leaves, and
  // those narrowed points must not leak into the next query's forward
  // values. The layout makes this one contiguous block copy.
  std::copy(const_values_.begin(), const_values_.end(), regs.begin());
  Interval* const var_regs = regs.data() + const_values_.size();
  for (std::size_t i = 0; i < var_slots_.size(); ++i) {
    var_regs[i] = box[var_dims_[i]];
  }
}

void Hc4Tape::forward(Registers& regs) const {
  static const Interval kNoOperand;  // matches the tree path's empty filler
  Interval* const r = regs.data();
  const TapeInstr* const code = code_.data();
  const MulConstSpec* const mc = mul_const_.data();
  const std::size_t n = code_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const TapeInstr ins = code[i];
    if (ins.spec == kSpecMulConst) {
      const MulConstSpec& sp = mc[ins.exponent];
      r[ins.dst] = tkern::mul_const(r[sp.var_slot], sp.w);
      continue;
    }
#if BCERT_TAPE_SSE2
    if (ins.op == Op::kAdd) {
      r[ins.dst] = add_iv(r[ins.a], r[ins.b]);
      continue;
    }
#endif
    const Interval& a = r[ins.a];
    const Interval& b = ins.b != kNoSlot ? r[ins.b] : kNoOperand;
    r[ins.dst] = expr::apply_interval_op(ins.op, ins.exponent, a, b);
  }
}

void Hc4Tape::eval_roots(const interval::Box& box, Registers& regs,
                         std::vector<Interval>& out) const {
  if (regs.size() != num_slots_) regs = make_registers();
  load_leaves(box, regs);
  forward(regs);
  out.resize(root_slots_.size());
  for (std::size_t i = 0; i < root_slots_.size(); ++i) {
    out[i] = regs[root_slots_[i]];
  }
}

ContractResult Hc4Tape::contract(interval::Box& box, Registers& regs,
                                 std::vector<Interval>* fwd_roots) const {
  if (regs.size() != num_slots_) regs = make_registers();
  load_leaves(box, regs);
  forward(regs);

  if (fwd_roots != nullptr) {
    fwd_roots->resize(root_slots_.size());
    for (std::size_t i = 0; i < root_slots_.size(); ++i) {
      (*fwd_roots)[i] = regs[root_slots_[i]];
    }
  }

  // Intersect each constraint root with its feasible value set.
  for (std::size_t i = 0; i < root_slots_.size(); ++i) {
    Interval& root = regs[root_slots_[i]];
    root = intersect(root, root_feasible_[i]);
    if (root.is_empty()) return ContractResult::kEmpty;
  }

  // Reverse sweep: instructions are in topological order, so walking the
  // code backwards processes parents before children and each dst's
  // requirement is final when projected downward.
  core::FaultRegistry::check(core::FaultPoint::kHc4Backward);
  Interval* const reg = regs.data();
  const TapeInstr* const code = code_.data();
  const MulConstSpec* const mc = mul_const_.data();
  for (std::size_t i = code_.size(); i-- > 0;) {
    const TapeInstr ins = code[i];
    const Interval r = reg[ins.dst];
    if (r.is_empty()) return ContractResult::kEmpty;
    if (ins.spec == kSpecMulConst) {
      // Same two projection legs as the generic kMul, in the generic
      // order, but the division by the pristine [w, w] sibling is the
      // precompiled reciprocal multiply.
      const MulConstSpec& sp = mc[ins.exponent];
      Interval& x = reg[sp.var_slot];
      if (sp.var_is_a) {
        x = intersect(x, mul_rec(r, sp.rec, sp.w > 0.0));
        if (x.is_empty()) return ContractResult::kEmpty;
        if (!const_quotient_feasible(sp.w, r, x)) {
          return ContractResult::kEmpty;
        }
      } else {
        if (!const_quotient_feasible(sp.w, r, x)) {
          return ContractResult::kEmpty;
        }
        x = intersect(x, mul_rec(r, sp.rec, sp.w > 0.0));
        if (x.is_empty()) return ContractResult::kEmpty;
      }
      continue;
    }
#if BCERT_TAPE_SSE2
    if (ins.op == Op::kAdd) {
      // Generic kAdd projections, two-lane vectorized.
      const __m128d rv = load_iv(r);
      if (!refine_sub(reg[ins.a], rv, reg[ins.b])) {
        return ContractResult::kEmpty;
      }
      if (!refine_sub(reg[ins.b], rv, reg[ins.a])) {
        return ContractResult::kEmpty;
      }
      continue;
    }
#endif
    Interval* b = ins.b != kNoSlot ? &reg[ins.b] : nullptr;
    if (!detail::project_node(ins.op, ins.exponent, r, reg[ins.a], b)) {
      return ContractResult::kEmpty;
    }
  }

  // Read back the narrowed variable slots.
  bool changed = false;
  for (std::size_t i = 0; i < var_slots_.size(); ++i) {
    const std::uint32_t dim = var_dims_[i];
    const Interval narrowed = intersect(box[dim], regs[var_slots_[i]]);
    if (narrowed.is_empty()) return ContractResult::kEmpty;
    if (!(narrowed == box[dim])) {
      box[dim] = narrowed;
      changed = true;
    }
  }
  return changed ? ContractResult::kContracted : ContractResult::kNoChange;
}

void Hc4Tape::dump(std::ostream& os) const {
  os << "tape: " << code_.size() << " instrs, " << num_slots_ << " slots ("
     << const_slots_.size() << " const, " << var_slots_.size() << " var), "
     << root_slots_.size() << " roots\n";
  for (std::size_t i = 0; i < const_slots_.size(); ++i) {
    os << "  const %" << const_slots_[i] << " = [" << const_values_[i].lo()
       << ", " << const_values_[i].hi() << "]\n";
  }
  for (std::size_t i = 0; i < var_slots_.size(); ++i) {
    os << "  var   %" << var_slots_[i] << " = x" << var_dims_[i] << "\n";
  }
  for (const TapeInstr& ins : code_) {
    os << "  %" << ins.dst << " = ";
    if (ins.spec == kSpecMulConst) {
      const MulConstSpec& sp = mul_const_[ins.exponent];
      os << "mulconst %" << sp.var_slot << ", " << sp.w
         << (sp.var_is_a ? "  (var_is_a)" : "");
    } else {
      os << expr::op_name(ins.op) << " %" << ins.a;
      if (ins.b != kNoSlot) os << ", %" << ins.b;
      if (ins.op == Op::kPow) os << " ^" << ins.exponent;
    }
    os << "\n";
  }
  for (std::size_t i = 0; i < root_slots_.size(); ++i) {
    os << "  root  %" << root_slots_[i] << " in [" << root_feasible_[i].lo()
       << ", " << root_feasible_[i].hi() << "]\n";
  }
}

TapeCache::Signature TapeCache::signature_of(const expr::ExprPool& pool,
                                             const Conjunction& c) {
  Signature sig;
  sig.first = &pool;
  sig.second.reserve(c.size());
  for (const Constraint& k : c.constraints) {
    sig.second.emplace_back(k.lhs, k.rel);
  }
  return sig;
}

std::shared_ptr<const Hc4Tape> TapeCache::get_or_compile(
    const expr::ExprPool& pool, const Conjunction& c) {
  Signature sig = signature_of(pool, c);
  if (auto entry = tapes_.get(sig)) return entry->tape;

  // Miss: before compiling, probe the persisted warm prototypes under
  // the pool-independent content signature. A hit is adopted (rebound to
  // the live conjunction — bit-identical program, see content_signature)
  // instead of compiled, and promoted into the LRU like any compile.
  const Sig128 content = content_signature(pool, c);
  std::shared_ptr<const Hc4Tape> proto;
  {
    std::lock_guard<std::mutex> lock(warm_mutex_);
    const auto it = warm_.find(content);
    if (it != warm_.end()) {
      proto = it->second;
      warm_.erase(it);  // now owned by the LRU under the live key
    }
  }
  std::shared_ptr<const Hc4Tape> tape;
  if (proto != nullptr) {
    tape = std::make_shared<const Hc4Tape>(*proto, c);
    warm_restores_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Compile outside the lock; a racing duplicate compile is harmless
    // (put(replace=false) keeps the first, both tapes are equivalent).
    tape = std::make_shared<const Hc4Tape>(pool, c);
  }
  auto entry =
      std::make_shared<const CachedTape>(CachedTape{std::move(tape), content});
  return tapes_.put(std::move(sig), std::move(entry), /*replace=*/false)->tape;
}

std::vector<TapeCache::WarmEntry> TapeCache::export_entries() const {
  std::vector<WarmEntry> out;
  std::set<Sig128> seen;
  for (const auto& [key, entry] : tapes_.snapshot()) {
    if (entry != nullptr && seen.insert(entry->content).second) {
      out.push_back({entry->content, entry->tape});
    }
  }
  std::lock_guard<std::mutex> lock(warm_mutex_);
  for (const auto& [content, tape] : warm_) {
    if (seen.insert(content).second) out.push_back({content, tape});
  }
  return out;
}

void TapeCache::import_entries(std::vector<WarmEntry> entries) {
  std::lock_guard<std::mutex> lock(warm_mutex_);
  for (WarmEntry& e : entries) {
    if (e.tape != nullptr) warm_[e.content] = std::move(e.tape);
  }
}

std::shared_ptr<const Hc4Jit> TapeCache::get_or_compile_jit(
    const expr::ExprPool& pool, const Conjunction& c) {
  Signature sig = signature_of(pool, c);
  if (auto jit = jits_.get(sig)) return jit;
  // The jit is a pure function of the tape, so reuse (or populate) the
  // tape store first, then emit outside the lock. Emission failures
  // propagate and cache nothing.
  auto jit = Hc4Jit::compile(get_or_compile(pool, c));
  return jits_.put(std::move(sig), std::move(jit), /*replace=*/false);
}

}  // namespace bcert::smt
