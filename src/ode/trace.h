#pragma once
/// \file trace.h
/// \brief Time-stamped simulation traces (the Φs / Φf of the paper).

#include <cstddef>
#include <vector>

#include "src/linalg/vector.h"

namespace bcert::ode {

/// One simulated trajectory: states sampled at increasing times.
class Trace {
 public:
  Trace() = default;

  void reserve(std::size_t n) {
    times_.reserve(n);
    states_.reserve(n);
  }

  void push_back(double t, linalg::Vector x) {
    times_.push_back(t);
    states_.push_back(std::move(x));
  }

  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  double time(std::size_t i) const { return times_[i]; }
  const linalg::Vector& state(std::size_t i) const { return states_[i]; }

  const linalg::Vector& front() const { return states_.front(); }
  const linalg::Vector& back() const { return states_.back(); }

  double duration() const {
    return empty() ? 0.0 : times_.back() - times_.front();
  }

  const std::vector<double>& times() const { return times_; }
  const std::vector<linalg::Vector>& states() const { return states_; }

  /// Downsamples to at most \p max_points states (keeping endpoints).
  Trace downsampled(std::size_t max_points) const;

 private:
  std::vector<double> times_;
  std::vector<linalg::Vector> states_;
};

}  // namespace bcert::ode
