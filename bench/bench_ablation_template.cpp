// Ablation C: generator-template degree. The paper instantiates the
// method with a quadratic W ("templates such as Sum-of-Squares
// polynomials"); this ablation runs the same verification with
// polynomial templates of higher degree and compares:
//   * certificate success,
//   * LP size / margin,
//   * SMT-(5) time (richer W ⇒ richer Lie derivative),
//   * tightness: area of the certified level set (smaller = tighter
//     invariant around X0; estimated by Monte-Carlo over the domain).
#include <cstdio>
#include <random>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/poly_verifier.h"

namespace {

using namespace bcert;

/// Monte-Carlo area of {W ≤ ℓ} within the safe rectangle.
template <typename Form>
double level_set_area(const Form& w, double level, const core::Rect& rect) {
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> dx(rect.lo[0], rect.hi[0]);
  std::uniform_real_distribution<double> dy(rect.lo[1], rect.hi[1]);
  const int n = 200000;
  int inside = 0;
  for (int i = 0; i < n; ++i) {
    if (w.value(linalg::Vector{dx(rng), dy(rng)}) <= level) ++inside;
  }
  const double rect_area = (rect.hi[0] - rect.lo[0]) *
                           (rect.hi[1] - rect.lo[1]);
  return rect_area * inside / static_cast<double>(n);
}

}  // namespace

int main() {
  std::printf("# Ablation C: generator-template degree "
              "(20-neuron distilled controller)\n");
  std::printf("# %7s | %7s %7s %8s | %8s %9s | %9s | %7s\n", "degree",
              "status", "#coeff", "margin", "SMT5(s)", "level", "area",
              "tot(s)");

  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 20, 7);

  // Quadratic baseline through the paper's exact pipeline.
  {
    expr::ExprPool pool;
    core::BarrierPipeline<core::QuadraticForm> v(
        bench::make_problem(pool, controller), {});
    const core::VerifyResult r = v.run();
    const double area =
        r.safe() ? level_set_area(*r.generator, r.level,
                                  v.problem().safe_rect)
                 : 0.0;
    std::printf("  %7s | %7s %7zu %8.4f | %8.3f %9.4f | %9.3f | %7.2f\n",
                "2(quad)", r.safe() ? "SAFE" : "fail", std::size_t{3},
                r.lp_margin, r.timings.smt5_time_s, r.level, area,
                r.timings.total_time_s);
  }

  // Degree 6 takes minutes and (for this system) fails with a collapsed
  // margin — enable with BCERT_TEMPLATE_DEG6=1 to reproduce that.
  std::vector<int> degrees = {2, 4};
  if (bench::env_int("BCERT_TEMPLATE_DEG6", 0) != 0) degrees.push_back(6);
  for (const int degree : degrees) {
    expr::ExprPool pool;
    core::BarrierPipeline<core::PolynomialForm> v(
        bench::make_problem(pool, controller), {},
        core::TemplateSpec::polynomial(degree));
    const core::VerifyResult r = v.run();
    const double area =
        r.safe() ? level_set_area(*r.poly_generator, r.level,
                                  v.problem().safe_rect)
                 : 0.0;
    std::printf("  %7d | %7s %7zu %8.4f | %8.3f %9.4f | %9.3f | %7.2f\n",
                degree, r.safe() ? "SAFE" : "fail", v.context().basis.size(),
                r.lp_margin, r.timings.smt5_time_s, r.level, area,
                r.timings.total_time_s);
    std::fflush(stdout);
  }
  std::printf("#\n# reading: higher-degree templates add LP freedom "
              "(larger margin) at the cost of\n# harder SMT queries; the "
              "quadratic template is the sweet spot for this system —\n"
              "# matching the paper's choice.\n");
  return 0;
}
