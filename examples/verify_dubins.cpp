// Verifies unbounded-time safety of the Dubins-car path-following system
// for an NN controller, reproducing the paper's full Figure-1 pipeline,
// and prints the certificate plus all intermediate artifacts.
//
// Usage:
//   verify_dubins                      distilled 10-neuron controller
//   verify_dubins <weights.net>        controller from file (see
//                                      train_dubins_controller)
//   verify_dubins --hidden N           distilled N-neuron controller
//
// Add `--report <prefix>` to write <prefix>.txt / <prefix>.json
// certificate reports and <prefix>_{decrease,initial,unsafe}.smt2
// SMT-LIB benchmarks (cross-checkable with dReal).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/core/engine.h"
#include "src/core/report.h"
#include "src/dubins/error_dynamics.h"
#include "src/dubins/training.h"
#include "src/expr/printer.h"

int main(int argc, char** argv) {
  using namespace bcert;
  constexpr double kPi = 3.14159265358979323846;

  // Peel off a trailing `--report <prefix>` pair if present.
  std::string report_prefix;
  if (argc >= 3 && std::strcmp(argv[argc - 2], "--report") == 0) {
    report_prefix = argv[argc - 1];
    argc -= 2;
  }

  nn::FeedforwardNet controller;
  std::string description;
  if (argc > 2 && std::strcmp(argv[1], "--hidden") == 0) {
    const std::size_t hidden = std::stoul(argv[2]);
    controller =
        dubins::distill_controller(dubins::proportional_teacher(), hidden);
    description = std::to_string(hidden) + "-neuron distilled";
  } else if (argc > 1) {
    std::ifstream is(argv[1]);
    if (!is) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    controller = nn::FeedforwardNet::load(is);
    description = std::string("loaded from ") + argv[1];
  } else {
    controller =
        dubins::distill_controller(dubins::proportional_teacher(), 10);
    description = "10-neuron distilled";
  }
  std::printf("controller: %s (%zu parameters)\n", description.c_str(),
              controller.num_params());

  expr::ExprPool pool;
  const dubins::ErrorModel model{/*velocity=*/1.0, /*theta_r=*/0.0};
  core::BarrierProblem problem;
  problem.pool = &pool;
  problem.sim_field = dubins::closed_loop_field(model, controller);
  problem.sym_field = dubins::closed_loop_field_expr(model, controller, pool);
  problem.initial_set = {{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}};
  problem.safe_rect = {{-5.0, -(kPi / 2.0 - 0.01)}, {5.0, kPi / 2.0 - 0.01}};

  std::printf("X0 = [-1,1] x [-pi/16, pi/16]\n");
  std::printf("U  = complement of [-5,5] x [-(pi/2-e), pi/2-e]\n\n");

  Engine engine;
  const core::VerifyResult r = engine.verify(problem);

  std::printf("== result: %s ==\n", verify_status_name(r.status));
  if (r.generator) {
    std::printf("generator  W(d,th) = %s\n",
                to_string(pool, r.generator->to_expr(pool), {"d", "th"})
                    .c_str());
    std::printf("LP margin  g = %.5f\n", r.lp_margin);
  }
  if (!r.counterexamples.empty()) {
    std::printf("counterexamples used for refinement:\n");
    for (const auto& cex : r.counterexamples) {
      std::printf("  (%.4f, %.4f)\n", cex[0], cex[1]);
    }
  }
  if (r.safe()) {
    std::printf("level      l = %.6f\n", r.level);
    std::printf("barrier    B(x) = W(x) - l   (all three SMT conditions "
                "UNSAT)\n");
  }
  // Testing-side cross-check: optimization-based falsification must
  // agree with the proof (find nothing when SAFE).
  if (r.safe()) {
    core::FalsifierOptions fopts;
    fopts.random_trials = 100;
    fopts.cmaes_iterations = 10;
    const core::FalsificationResult fr = engine.falsify(problem, fopts);
    std::printf("\nfalsification cross-check: %s (worst robustness %.4f "
                "over %d simulations)\n",
                fr.falsified ? "FALSIFIED (!)" : "no violation found",
                fr.robustness, fr.simulations);
  }

  std::printf("\ntimings (Table-1 columns):\n");
  std::printf("  candidate iterations : %d\n",
              r.timings.candidate_iterations);
  std::printf("  avg LP solve         : %.3f s\n",
              r.timings.avg_lp_time_s());
  std::printf("  avg SMT-(5) query    : %.3f s\n",
              r.timings.avg_smt5_time_s());
  std::printf("  generator total      : %.3f s\n",
              r.timings.generator_time_s);
  std::printf("  level-set phase      : %.3f s\n",
              r.timings.level_set_time_s);
  std::printf("  other                : %.3f s\n", r.timings.other_time_s());
  std::printf("  total                : %.3f s\n", r.timings.total_time_s);

  if (!report_prefix.empty()) {
    core::ReportContext ctx;
    ctx.system_name = "dubins-path-following";
    ctx.controller_description = description;
    std::ofstream txt(report_prefix + ".txt");
    write_text_report(txt, r, problem, ctx);
    std::ofstream js(report_prefix + ".json");
    write_json_report(js, r, problem, ctx);
    if (r.safe()) {
      core::BarrierPipeline<core::QuadraticForm>(problem, {})
          .export_queries_smtlib(*r.generator, r.level, report_prefix);
    }
    std::printf("\nreports written to %s.{txt,json}%s\n",
                report_prefix.c_str(),
                r.safe() ? " and *.smt2 benchmarks" : "");
  }
  return r.safe() ? 0 : 1;
}
