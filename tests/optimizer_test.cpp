// Tests for the certified global optimizer (branch-and-bound with
// interval bounds).
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "src/smt/optimizer.h"

namespace bcert::smt {
namespace {

using expr::ExprId;
using expr::ExprPool;
using interval::Box;
using linalg::Vector;

TEST(Optimizer, QuadraticBowl) {
  ExprPool p;
  // (x-1)² + (y+2)², min 0 at (1, -2).
  const ExprId e = p.add(p.sqr(p.sub(p.var(0), p.one())),
                         p.sqr(p.add(p.var(1), p.constant(2.0))));
  const auto r = minimize(p, e, Box::from_bounds({{-5, 5}, {-5, 5}}));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.value(), 0.0, 1e-5);
  EXPECT_NEAR(r.argmin[0], 1.0, 1e-2);
  EXPECT_NEAR(r.argmin[1], -2.0, 1e-2);
  // Certified enclosure brackets the true optimum.
  EXPECT_LE(r.lower, 0.0 + 1e-12);
  EXPECT_GE(r.upper, 0.0 - 1e-12);
}

TEST(Optimizer, BoundaryMinimum) {
  ExprPool p;
  // min of x over [2, 7] is at the left edge.
  const auto r = minimize(p, p.var(0), Box::from_bounds({{2.0, 7.0}}));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.value(), 2.0, 1e-5);
}

TEST(Optimizer, MultimodalSine) {
  ExprPool p;
  // sin(x) over [0, 10]: global min sin(3π/2) = −1 at x ≈ 4.712.
  const auto r = minimize(p, p.sin(p.var(0)), Box::from_bounds({{0.0, 10.0}}));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.value(), -1.0, 1e-5);
  EXPECT_NEAR(r.argmin[0], 4.712, 1e-2);
}

TEST(Optimizer, MaximizeMirrorsMinimize) {
  ExprPool p;
  // max of 3 - x² over [-2, 2] is 3 at 0.
  const ExprId e = p.sub(p.constant(3.0), p.sqr(p.var(0)));
  const auto r = maximize(p, e, Box::from_bounds({{-2.0, 2.0}}));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.value(), 3.0, 1e-5);
  EXPECT_LE(r.lower, 3.0 + 1e-9);
  EXPECT_GE(r.upper, 3.0 - 1e-9);
}

TEST(Optimizer, DegenerateFaceBox) {
  ExprPool p;
  // A face box (one dimension pinned): min of x² + y² on {x = 3}.
  const ExprId e = p.add(p.sqr(p.var(0)), p.sqr(p.var(1)));
  const auto r =
      minimize(p, e, Box::from_bounds({{3.0, 3.0}, {-4.0, 4.0}}));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.value(), 9.0, 1e-4);
}

TEST(Optimizer, RespectsBudget) {
  ExprPool p;
  // Highly multimodal with a tiny budget: must not claim convergence
  // dishonestly... (it may converge if pruning is lucky; only check that
  // bounds always bracket a sampled value).
  const ExprId e = p.sin(p.mul(p.constant(40.0), p.var(0)));
  OptimizeConfig cfg;
  cfg.max_boxes = 5;
  const auto r = minimize(p, e, Box::from_bounds({{0.0, 10.0}}), cfg);
  EXPECT_LE(r.lower, r.upper);
  EXPECT_GE(r.upper, -1.0 - 1e-12);
}

// Property: certified bounds always bracket dense-sampling estimates.
class OptimizerSoundness : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerSoundness, BoundsBracketSampledMinimum) {
  std::mt19937 rng(GetParam() * 37 + 5);
  std::uniform_real_distribution<double> coeff(-2.0, 2.0);
  ExprPool p;
  const ExprId x = p.var(0), y = p.var(1);
  const double a = coeff(rng), b = coeff(rng), c = coeff(rng);
  const ExprId e = p.sum({p.mul(p.constant(a), p.sqr(x)),
                          p.mul(p.constant(b), p.mul(x, p.sin(y))),
                          p.mul(p.constant(c), p.sqr(y))});
  const Box box = Box::from_bounds({{-2.0, 2.0}, {-2.0, 2.0}});
  const auto r = minimize(p, e, box);
  // Dense sampling can never beat the certified lower bound.
  std::uniform_real_distribution<double> s(-2.0, 2.0);
  double sampled_min = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 20000; ++i) {
    const Vector pt{s(rng), s(rng)};
    sampled_min = std::min(sampled_min, p.eval(e, pt));
  }
  EXPECT_GE(sampled_min, r.lower - 1e-9);
  EXPECT_LE(r.upper, sampled_min + 1e-6 + 0.05 * std::fabs(sampled_min));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerSoundness, ::testing::Range(0, 12));

}  // namespace
}  // namespace bcert::smt
