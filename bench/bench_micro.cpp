// Micro-benchmarks (google-benchmark) for the substrate layers: interval
// arithmetic, expression evaluation (scalar & interval), HC4 contraction,
// NN forward passes, the LP solver, RK4 integration, and the
// eigendecomposition used by CMA-ES.
#include <random>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/expr/derivative.h"
#include "src/expr/eval.h"
#include "src/linalg/decompositions.h"
#include "src/smt/hc4.h"

namespace {

using namespace bcert;
using interval::Box;
using interval::Interval;
using linalg::Vector;

void BM_IntervalArithmetic(benchmark::State& state) {
  Interval a(0.3, 1.7), b(-2.0, 0.4);
  for (auto _ : state) {
    Interval c = a * b + a - b / Interval(2.0, 3.0);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_IntervalArithmetic);

void BM_IntervalTranscendental(benchmark::State& state) {
  Interval a(-0.8, 0.9);
  for (auto _ : state) {
    Interval c = interval::tanh(interval::sin(a) + interval::cos(a));
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_IntervalTranscendental);

nn::FeedforwardNet make_net(std::size_t hidden) {
  std::mt19937 rng(5);
  nn::FeedforwardNet net = nn::FeedforwardNet::single_hidden(2, hidden, 1);
  net.randomize(rng);
  return net;
}

void BM_NnForward(benchmark::State& state) {
  const nn::FeedforwardNet net =
      make_net(static_cast<std::size_t>(state.range(0)));
  const Vector x{0.7, -0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x));
  }
}
BENCHMARK(BM_NnForward)->Arg(10)->Arg(100)->Arg(1000);

void BM_NnSymbolicEvalScalar(benchmark::State& state) {
  const nn::FeedforwardNet net =
      make_net(static_cast<std::size_t>(state.range(0)));
  expr::ExprPool pool;
  expr::Evaluator ev(pool, net.to_expr(pool, {pool.var(0), pool.var(1)}));
  const Vector x{0.7, -0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.eval(x));
  }
}
BENCHMARK(BM_NnSymbolicEvalScalar)->Arg(10)->Arg(100)->Arg(1000);

void BM_NnSymbolicEvalInterval(benchmark::State& state) {
  const nn::FeedforwardNet net =
      make_net(static_cast<std::size_t>(state.range(0)));
  expr::ExprPool pool;
  expr::Evaluator ev(pool, net.to_expr(pool, {pool.var(0), pool.var(1)}));
  const Box box = Box::from_bounds({{0.6, 0.8}, {-0.4, -0.2}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.eval(box));
  }
}
BENCHMARK(BM_NnSymbolicEvalInterval)->Arg(10)->Arg(100)->Arg(1000);

void BM_Hc4ContractLieDerivative(benchmark::State& state) {
  const nn::FeedforwardNet net =
      make_net(static_cast<std::size_t>(state.range(0)));
  expr::ExprPool pool;
  const dubins::ErrorModel model{1.0, 0.0};
  const auto field = dubins::closed_loop_field_expr(model, net, pool);
  core::QuadraticForm w(2, Vector{0.4, 0.7, 1.0});
  const expr::ExprId lie =
      expr::lie_derivative(pool, w.to_expr(pool), field);
  smt::Conjunction c;
  c.add(pool.add(lie, pool.constant(1e-6)), smt::Rel::kGe);
  smt::Hc4Contractor contractor(pool, c);
  for (auto _ : state) {
    Box box = Box::from_bounds({{1.0, 2.0}, {0.2, 0.6}});
    benchmark::DoNotOptimize(contractor.contract(box));
  }
}
BENCHMARK(BM_Hc4ContractLieDerivative)->Arg(10)->Arg(100)->Arg(1000);

void BM_SimplexMarginLp(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> d(0.1, 2.0);
  lp::LpProblem p = lp::LpProblem::with_free_vars(4);
  p.sense = lp::Sense::kMaximize;
  p.objective[3] = 1.0;
  for (int i = 0; i < 3; ++i) {
    p.lower[i] = -1.0;
    p.upper[i] = 1.0;
  }
  p.lower[3] = 0.0;
  for (int i = 0; i < rows; ++i) {
    p.add_row(Vector{-d(rng), -d(rng), -d(rng), 1.0}, lp::RowRel::kLe, 0.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lp(p));
  }
}
BENCHMARK(BM_SimplexMarginLp)->Arg(100)->Arg(400)->Arg(1000);

void BM_Rk4DubinsTrace(benchmark::State& state) {
  const nn::FeedforwardNet net = make_net(10);
  const auto field =
      dubins::closed_loop_field(dubins::ErrorModel{1.0, 0.0}, net);
  ode::IntegrateOptions opts;
  opts.step = 0.01;
  opts.t_end = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(integrate_rk4(field, Vector{3.0, 0.5}, opts));
  }
}
BENCHMARK(BM_Rk4DubinsTrace);

void BM_SymmetricEigen(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  linalg::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) a(r, c) = a(c, r) = d(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::symmetric_eigen(a));
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(8)->Arg(32)->Arg(64);

void BM_FullVerificationSmall(benchmark::State& state) {
  for (auto _ : state) {
    expr::ExprPool pool;
    const nn::FeedforwardNet net =
        dubins::distill_controller(dubins::proportional_teacher(), 10, 42);
    core::BarrierVerifier verifier(bench::make_problem(pool, net), {});
    benchmark::DoNotOptimize(verifier.verify());
  }
}
BENCHMARK(BM_FullVerificationSmall)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
