// Reproduces Figure 5: phase portrait of the verified closed-loop system
// in the (d_err, θ_err) plane — the initial set X0, the unsafe set U,
// sample trajectories, and the synthesized barrier-certificate level set
// (an ellipse separating X0 from U).
//
// Output sections (gnuplot/CSV friendly):
//   region X0 / region U_inner_boundary    rectangle corner series
//   traj<k>                                sample trajectories (d θ)
//   barrier                                points on {W(x) = ℓ}
//
// Environment knobs:
//   BCERT_FIG5_TRAIN=1   use a CMA-ES-trained controller (slower) instead
//                        of the distilled 10-neuron controller
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace bcert;

  const bool train = bench::env_int("BCERT_FIG5_TRAIN", 0) != 0;
  nn::FeedforwardNet controller;
  if (train) {
    controller =
        train_controller(bench::training_path(),
                         bench::verification_train_options())
            .controller;
  } else {
    controller = dubins::distill_controller(dubins::proportional_teacher(),
                                            10, 42);
  }

  expr::ExprPool pool;
  const core::BarrierProblem problem = bench::make_problem(pool, controller);
  core::BarrierPipeline<core::QuadraticForm> pipeline(problem, {});
  const core::VerifyResult r = pipeline.run();

  std::printf("# Figure 5 reproduction: phase portrait with barrier "
              "certificate\n");
  std::printf("# controller: %s 10-neuron tansig\n",
              train ? "CMA-ES-trained" : "distilled");
  std::printf("# verification: %s\n", verify_status_name(r.status));
  if (!r.safe()) return 1;

  const auto c = r.generator->coeffs();
  std::printf("# W(d,th) = %.6f d^2 + %.6f d*th + %.6f th^2, level l = "
              "%.6f\n", c[0], c[1], c[2], r.level);

  auto emit_rect = [](const char* tag, const core::Rect& rect) {
    std::printf("\n# series: %s (d theta), closed rectangle\n", tag);
    std::printf("%s %.4f %.4f\n", tag, rect.lo[0], rect.lo[1]);
    std::printf("%s %.4f %.4f\n", tag, rect.hi[0], rect.lo[1]);
    std::printf("%s %.4f %.4f\n", tag, rect.hi[0], rect.hi[1]);
    std::printf("%s %.4f %.4f\n", tag, rect.lo[0], rect.hi[1]);
    std::printf("%s %.4f %.4f\n", tag, rect.lo[0], rect.lo[1]);
  };
  emit_rect("X0", problem.initial_set);
  emit_rect("U_inner_boundary", problem.safe_rect);

  // Sample trajectories from the domain (as in the figure: starts marked
  // by *, ends by o).
  const auto starts = pipeline.random_initial_states(12, 7);
  int k = 0;
  for (const linalg::Vector& x0 : starts) {
    ode::IntegrateOptions iopts;
    iopts.step = 0.02;
    iopts.t_end = 12.0;
    const ode::Trace t = integrate_rk4(problem.sim_field, x0, iopts);
    std::printf("\n# series: traj%02d (d theta), start -> end\n", k);
    for (std::size_t i = 0; i < t.size(); i += 25) {
      std::printf("traj%02d %.4f %.4f\n", k, t.state(i)[0], t.state(i)[1]);
    }
    std::printf("traj%02d %.4f %.4f\n", k, t.back()[0], t.back()[1]);
    ++k;
  }

  std::printf("\n# series: barrier (d theta), level set W = l\n");
  for (const linalg::Vector& p : r.generator->boundary_points_2d(r.level,
                                                                 96)) {
    std::printf("barrier %.4f %.4f\n", p[0], p[1]);
  }

  std::printf("\n# paper shape: ellipse between the green X0 box and the "
              "red U region;\n");
  std::printf("# trajectories flow inward across the ellipse (W "
              "decreasing).\n");
  return 0;
}
