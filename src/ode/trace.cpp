#include "src/ode/trace.h"

namespace bcert::ode {

Trace Trace::downsampled(std::size_t max_points) const {
  if (max_points < 2 || size() <= max_points) return *this;
  Trace out;
  out.reserve(max_points);
  const double step =
      static_cast<double>(size() - 1) / static_cast<double>(max_points - 1);
  for (std::size_t i = 0; i < max_points; ++i) {
    const auto idx = static_cast<std::size_t>(i * step + 0.5);
    const std::size_t clamped = idx < size() ? idx : size() - 1;
    out.push_back(times_[clamped], states_[clamped]);
  }
  return out;
}

}  // namespace bcert::ode
