#include "src/parallel/thread_pool.h"

#include <algorithm>
#include <exception>

#include "src/core/runtime_config.h"

namespace bcert::parallel {

std::size_t default_thread_count() {
  const int configured = core::RuntimeConfig::active().threads;
  if (configured > 0) return static_cast<std::size_t>(configured);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? default_thread_count() : threads;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::enqueue(Task task) {
  const std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  // pending_ is incremented under sleep_mutex_ and *before* the push:
  // holding the mutex means a worker mid-wait either sees the new count
  // in its predicate or is already blocked when notify_one fires (no
  // lost wakeup), and incrementing first keeps pending_ >= the number of
  // queued tasks, so a concurrent try_pop can never underflow it.
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->m);
    queues_[target]->q.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, Task& out) {
  const std::size_t n = queues_.size();
  // Own queue: pop the front (oldest task first → FIFO for submit()).
  {
    WorkerQueue& mine = *queues_[self % n];
    std::lock_guard<std::mutex> lock(mine.m);
    if (!mine.q.empty()) {
      out = std::move(mine.q.front());
      mine.q.pop_front();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  // Steal from the back of the other queues.
  for (std::size_t k = 1; k < n; ++k) {
    WorkerQueue& victim = *queues_[(self + k) % n];
    std::lock_guard<std::mutex> lock(victim.m);
    if (!victim.q.empty()) {
      out = std::move(victim.q.back());
      victim.q.pop_back();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  Task task;
  while (true) {
    if (try_pop(index, task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::run_on_workers(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> remaining{n};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto strand = [&](std::size_t index) {
    try {
      fn(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
    remaining.fetch_sub(1, std::memory_order_acq_rel);
  };

  for (std::size_t i = 1; i < n; ++i) {
    enqueue([strand, i] { strand(i); });
  }
  strand(0);

  // Helping wait: drain pool tasks until every strand has retired. The
  // tasks we execute here may be unrelated work, which is fine — it only
  // speeds up overall progress.
  Task task;
  while (remaining.load(std::memory_order_acquire) > 0) {
    if (try_pop(0, task)) {
      task();
      task = nullptr;
    } else {
      std::this_thread::yield();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn,
    const CancellationToken* cancel) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t total = end - begin;
  const std::size_t chunks = (total + grain - 1) / grain;
  const std::size_t strands = std::min(chunks, size() + 1);

  std::atomic<std::size_t> next_chunk{0};
  run_on_workers(strands, [&](std::size_t) {
    while (true) {
      if (cancel != nullptr && cancel->cancelled()) return;
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      fn(lo, hi);
    }
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace bcert::parallel
