#include "src/lp/problem.h"

#include <stdexcept>

namespace bcert::lp {

const char* lp_status_name(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterLimit: return "iteration-limit";
    case LpStatus::kInterrupted: return "interrupted";
  }
  return "?";
}

LpProblem LpProblem::with_free_vars(std::size_t n) {
  LpProblem p;
  p.objective = linalg::Vector(n);
  p.lower.assign(n, -kLpInf);
  p.upper.assign(n, kLpInf);
  return p;
}

void LpProblem::add_row(linalg::Vector coeffs, RowRel rel, double rhs) {
  if (coeffs.size() != num_vars()) {
    throw std::invalid_argument("LpProblem::add_row: coefficient size");
  }
  rows.push_back({std::move(coeffs), rel, rhs});
}

}  // namespace bcert::lp
