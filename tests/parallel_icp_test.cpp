// Cross-implementation equivalence sweep for the parallel branch-and-
// prune ICP solver: the sequential (threads = 1) and parallel
// (threads = 4) solvers must agree on every verdict, with UNSAT answers
// bit-identical. Also covers the shared DNF budget fix.
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/expr/expr.h"
#include "src/smt/icp_solver.h"

namespace bcert::smt {
namespace {

using expr::ExprId;
using expr::ExprPool;
using interval::Box;
using linalg::Vector;

IcpConfig config_with_threads(int threads) {
  IcpConfig c;
  c.delta = 1e-2;
  c.max_boxes = 500'000;
  c.time_limit_s = 60.0;
  c.threads = threads;
  return c;
}

/// Random atomic constraint over (x, y): a small library of nonlinear
/// shapes whose SAT/UNSAT status varies with the drawn parameters.
Constraint random_atom(ExprPool& pool, std::mt19937& rng) {
  std::uniform_real_distribution<double> coef(-2.0, 2.0);
  std::uniform_int_distribution<int> kind(0, 3);
  std::uniform_int_distribution<int> rel_pick(0, 1);
  const ExprId x = pool.var(0);
  const ExprId y = pool.var(1);
  ExprId e = expr::kNoExpr;
  switch (kind(rng)) {
    case 0:  // circle: x² + y² - r²
      e = pool.sub(pool.add(pool.sqr(x), pool.sqr(y)),
                   pool.constant(std::abs(coef(rng)) + 0.1));
      break;
    case 1:  // trig sheet: sin(a·x) + cos(b·y) + c
      e = pool.add(
          pool.add(pool.sin(pool.mul(pool.constant(coef(rng)), x)),
                   pool.cos(pool.mul(pool.constant(coef(rng)), y))),
          pool.constant(coef(rng)));
      break;
    case 2:  // saddle: x·y - c
      e = pool.sub(pool.mul(x, y), pool.constant(coef(rng)));
      break;
    default:  // sigmoid ridge: tanh(x) - y + c
      e = pool.add(pool.sub(pool.tanh(x), y), pool.constant(coef(rng)));
      break;
  }
  return {e, rel_pick(rng) == 0 ? Rel::kLe : Rel::kGe};
}

TEST(ParallelIcp, RandomConjunctionEquivalenceSweep) {
  std::mt19937 rng(2018);
  const Box box = Box::from_bounds({{-2.0, 2.0}, {-2.0, 2.0}});
  int sat_seen = 0, unsat_seen = 0;
  for (int trial = 0; trial < 30; ++trial) {
    ExprPool pool;
    std::uniform_int_distribution<int> natoms(1, 3);
    Conjunction c;
    const int m = natoms(rng);
    for (int i = 0; i < m; ++i) {
      const Constraint atom = random_atom(pool, rng);
      c.add(atom.lhs, atom.rel);
    }

    const IcpSolver seq(pool, config_with_threads(1));
    const IcpSolver par(pool, config_with_threads(4));
    const IcpResult rs = seq.solve(c, box);
    const IcpResult rp = par.solve(c, box);

    ASSERT_NE(rs.verdict, SatResult::kUnknown)
        << "trial " << trial << " exhausted its budget";
    if (rs.is_unsat()) {
      ++unsat_seen;
      // UNSAT is a proof — the parallel solver must reproduce it
      // bit-identically (same verdict, no witness).
      EXPECT_EQ(rp.verdict, SatResult::kUnsat) << "trial " << trial;
      EXPECT_FALSE(rp.witness.has_value());
    } else {
      ++sat_seen;
      EXPECT_TRUE(rp.is_sat())
          << "trial " << trial << ": sequential found "
          << sat_result_name(rs.verdict) << ", parallel found "
          << sat_result_name(rp.verdict);
      ASSERT_TRUE(rp.witness.has_value());
      // A kSat witness box certainly satisfies every constraint: check
      // its midpoint numerically.
      if (rp.verdict == SatResult::kSat) {
        const Vector w = rp.witness_point();
        for (const Constraint& atom : c.constraints) {
          const double v = pool.eval(atom.lhs, w);
          if (atom.rel == Rel::kLe) EXPECT_LE(v, 1e-12);
          if (atom.rel == Rel::kGe) EXPECT_GE(v, -1e-12);
        }
      }
    }
  }
  // The sweep is only meaningful if both answer classes occur.
  EXPECT_GT(sat_seen, 0);
  EXPECT_GT(unsat_seen, 0);
}

TEST(ParallelIcp, RandomDnfEquivalenceSweep) {
  std::mt19937 rng(77);
  const Box box = Box::from_bounds({{-2.0, 2.0}, {-2.0, 2.0}});
  for (int trial = 0; trial < 15; ++trial) {
    ExprPool pool;
    std::uniform_int_distribution<int> ndisj(2, 4);
    Dnf dnf;
    const int d = ndisj(rng);
    for (int j = 0; j < d; ++j) {
      Conjunction c;
      const Constraint a = random_atom(pool, rng);
      const Constraint b = random_atom(pool, rng);
      c.add(a.lhs, a.rel);
      c.add(b.lhs, b.rel);
      dnf.disjuncts.push_back(std::move(c));
    }
    const IcpSolver seq(pool, config_with_threads(1));
    const IcpSolver par(pool, config_with_threads(4));
    const IcpResult rs = seq.solve(dnf, box);
    const IcpResult rp = par.solve(dnf, box);
    ASSERT_NE(rs.verdict, SatResult::kUnknown);
    EXPECT_EQ(rs.is_sat(), rp.is_sat()) << "trial " << trial;
    EXPECT_EQ(rs.is_unsat(), rp.is_unsat()) << "trial " << trial;
  }
}

/// A query the solver can never resolve: (x+y)² − x² − 2xy − y² is
/// identically zero, but the natural interval extension suffers the
/// dependency problem, so its enclosure always straddles 0 without ever
/// proving or refuting the equality. Every box survives and splits —
/// with an unreachable δ the search burns budget forever, which makes
/// the shared-budget accounting observable.
Conjunction budget_burner(ExprPool& pool) {
  const ExprId x = pool.var(0);
  const ExprId y = pool.var(1);
  const ExprId h = pool.sub(
      pool.sub(pool.sub(pool.sqr(pool.add(x, y)), pool.sqr(x)),
               pool.mul(pool.constant(2.0), pool.mul(x, y))),
      pool.sqr(y));
  Conjunction c;
  c.add(h, Rel::kEq);
  return c;
}

TEST(ParallelIcp, DnfSharesOneBoxBudget) {
  ExprPool pool;
  Dnf dnf;
  for (int j = 0; j < 4; ++j) dnf.disjuncts.push_back(budget_burner(pool));

  IcpConfig config;
  config.delta = -1.0;  // unreachable: the query can only exhaust budget
  config.max_boxes = 2000;
  config.time_limit_s = 60.0;
  config.threads = 1;
  const IcpSolver solver(pool, config);
  const Box box = Box::from_bounds({{-2.0, 2.0}, {-2.0, 2.0}});
  const IcpResult r = solver.solve(dnf, box);

  EXPECT_EQ(r.verdict, SatResult::kUnknown);
  // The seed gave each disjunct a fresh budget (4 × max_boxes here); the
  // shared budget must cap the whole query at max_boxes.
  EXPECT_LE(r.stats.boxes_processed, config.max_boxes);
}

TEST(ParallelIcp, DnfSharesOneTimeBudget) {
  ExprPool pool;
  Dnf dnf;
  for (int j = 0; j < 4; ++j) dnf.disjuncts.push_back(budget_burner(pool));

  IcpConfig config;
  config.delta = -1.0;
  config.time_limit_s = 0.2;  // would be 0.8 s query-wide under the seed
  config.threads = 1;
  const IcpSolver solver(pool, config);
  const Box box = Box::from_bounds({{-2.0, 2.0}, {-2.0, 2.0}});

  const auto start = std::chrono::steady_clock::now();
  const IcpResult r = solver.solve(dnf, box);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_EQ(r.verdict, SatResult::kUnknown);
  // Well under the seed's 4 × time_limit_s worst case.
  EXPECT_LT(wall, 2 * config.time_limit_s);
}

TEST(ParallelIcp, DnfPropagatesMaxDepthWidth) {
  ExprPool pool;
  // Two disjuncts that both force subdivision; the aggregate must report
  // the smallest surviving width (the seed silently dropped it).
  Dnf dnf;
  {
    Conjunction c;  // thin ring: 0.9 ≤ x² + y² ≤ 1.0
    const ExprId r2 = pool.add(pool.sqr(pool.var(0)), pool.sqr(pool.var(1)));
    c.add(pool.sub(r2, pool.constant(1.0)), Rel::kLe);
    c.add(pool.sub(pool.constant(0.9), r2), Rel::kLe);
    dnf.disjuncts.push_back(std::move(c));
  }
  IcpConfig config;
  config.delta = 1e-3;
  config.threads = 1;
  const IcpSolver solver(pool, config);
  const Box box = Box::from_bounds({{-2.0, 2.0}, {-2.0, 2.0}});
  const IcpResult r = solver.solve(dnf, box);
  ASSERT_TRUE(r.is_sat());
  EXPECT_GT(r.stats.max_depth_width, 0.0);
  EXPECT_LT(r.stats.max_depth_width, box.max_width());
}

TEST(ParallelIcp, SequentialMatchesSeedBehaviorOnConjunction) {
  // threads = 1 must preserve the classic DFS exploration: same verdict,
  // same witness box, same statistics on repeated runs.
  ExprPool pool;
  Conjunction c;
  const ExprId r2 = pool.add(pool.sqr(pool.var(0)), pool.sqr(pool.var(1)));
  c.add(pool.sub(r2, pool.constant(1.0)), Rel::kLe);
  c.add(pool.sub(pool.constant(0.25), r2), Rel::kLe);

  const IcpSolver solver(pool, config_with_threads(1));
  const Box box = Box::from_bounds({{-2.0, 2.0}, {-2.0, 2.0}});
  const IcpResult a = solver.solve(c, box);
  const IcpResult b = solver.solve(c, box);
  ASSERT_TRUE(a.is_sat());
  ASSERT_TRUE(b.is_sat());
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(*a.witness, *b.witness);
  EXPECT_EQ(a.stats.boxes_processed, b.stats.boxes_processed);
  EXPECT_EQ(a.stats.splits, b.stats.splits);
}

}  // namespace
}  // namespace bcert::smt
