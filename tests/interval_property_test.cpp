// Property/fuzz tests for the two trickiest projection primitives:
// interval::extended_div (the two-branch relational division behind the
// HC4 kMul/kDiv reversals) and the even-power backward projection
// (requirement clipping + two-branch root split). The deterministic
// cases pin signed zeros, straddling divisors and empty requirements;
// the fuzz sweeps assert the soundness direction — no value consistent
// with the relation is ever discarded.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/interval/interval.h"
#include "src/scenario/prng.h"
#include "src/smt/hc4.h"

namespace bcert {
namespace {

using interval::Interval;
using scenario::SplitMix64;

constexpr double kInf = std::numeric_limits<double>::infinity();

bool in_union(double x, int pieces, const Interval& q1, const Interval& q2) {
  if (pieces >= 1 && q1.contains(x)) return true;
  if (pieces >= 2 && q2.contains(x)) return true;
  return false;
}

TEST(ExtendedDiv, EmptyOperandsYieldNoPieces) {
  Interval q1, q2;
  EXPECT_EQ(interval::extended_div(Interval::empty(), {1.0, 2.0}, q1, q2), 0);
  EXPECT_TRUE(q1.is_empty());
  EXPECT_EQ(interval::extended_div({1.0, 2.0}, Interval::empty(), q1, q2), 0);
  EXPECT_TRUE(q1.is_empty());
}

TEST(ExtendedDiv, BoundedAwayFromZeroIsOrdinaryDivision) {
  Interval q1, q2;
  ASSERT_EQ(interval::extended_div({2.0, 6.0}, {1.0, 2.0}, q1, q2), 1);
  EXPECT_LE(q1.lo(), 1.0);
  EXPECT_GE(q1.hi(), 6.0);
  ASSERT_EQ(interval::extended_div({2.0, 6.0}, {-2.0, -1.0}, q1, q2), 1);
  EXPECT_LE(q1.lo(), -6.0);
  EXPECT_GE(q1.hi(), -1.0);
}

TEST(ExtendedDiv, ZeroInBothIsEntire) {
  // 0·d = 0 ∈ num holds for every real, so the projection is entire —
  // the exact point where pointwise operator/ would be wrong to use.
  Interval q1, q2;
  ASSERT_EQ(interval::extended_div({-1.0, 1.0}, {-2.0, 2.0}, q1, q2), 1);
  EXPECT_EQ(q1.lo(), -kInf);
  EXPECT_EQ(q1.hi(), kInf);
}

TEST(ExtendedDiv, ExactZeroDivisorWithNonzeroNumeratorIsEmpty) {
  Interval q1, q2;
  EXPECT_EQ(interval::extended_div({1.0, 2.0}, {0.0, 0.0}, q1, q2), 0);
  EXPECT_EQ(interval::extended_div({-2.0, -1.0}, {0.0, 0.0}, q1, q2), 0);
}

TEST(ExtendedDiv, SignedZeroEndpointsBehaveLikePositiveZero) {
  // IEEE -0.0 == 0.0, so a [-0.0, b] divisor must take the
  // zero-touching branch (half-line result), not the bounded-away one.
  Interval q1, q2;
  ASSERT_EQ(interval::extended_div({1.0, 2.0}, {-0.0, 4.0}, q1, q2), 1);
  EXPECT_LE(q1.lo(), 0.25);
  EXPECT_EQ(q1.hi(), kInf);

  ASSERT_EQ(interval::extended_div({1.0, 2.0}, {-4.0, +0.0}, q1, q2), 1);
  EXPECT_EQ(q1.lo(), -kInf);
  EXPECT_GE(q1.hi(), -0.25);

  // [-0.0, +0.0] is the exact-zero divisor.
  EXPECT_EQ(interval::extended_div({3.0, 5.0}, {-0.0, +0.0}, q1, q2), 0);
  ASSERT_EQ(interval::extended_div({-0.0, 5.0}, {-0.0, +0.0}, q1, q2), 1);
  EXPECT_EQ(q1.lo(), -kInf);  // 0 ∈ num: entire
}

TEST(ExtendedDiv, StraddlingDivisorSplitsIntoTwoHalfLines) {
  Interval q1, q2;
  // num = [4, 8], den = [-2, 2]: {n/d} = (-inf, -2] ∪ [2, inf).
  ASSERT_EQ(interval::extended_div({4.0, 8.0}, {-2.0, 2.0}, q1, q2), 2);
  EXPECT_EQ(q1.lo(), -kInf);
  EXPECT_GE(q1.hi(), -2.0);
  EXPECT_LE(q2.lo(), 2.0);
  EXPECT_EQ(q2.hi(), kInf);
  // The gap between the pieces is real: 0 is in neither.
  EXPECT_FALSE(in_union(0.0, 2, q1, q2));

  // Negative-numerator mirror: the set is the same two half-lines.
  ASSERT_EQ(interval::extended_div({-8.0, -4.0}, {-2.0, 2.0}, q1, q2), 2);
  EXPECT_EQ(q1.lo(), -kInf);
  EXPECT_GE(q1.hi(), -2.0 - 1e-12);
  EXPECT_LE(q2.lo(), 2.0 + 1e-12);
  EXPECT_EQ(q2.hi(), kInf);
  EXPECT_FALSE(in_union(0.0, 2, q1, q2));
}

TEST(ExtendedDiv, FuzzProjectionNeverLosesAConsistentValue) {
  // Soundness contract: whenever x·d ∈ num for some d ∈ den, x must be
  // inside q1 ∪ q2. Sweep random intervals (zero-touching endpoints
  // included on purpose) and random consistent points.
  SplitMix64 rng(0xD1FFUL);
  int checked = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    const auto endpoint = [&](double span) {
      // 1 in 4 endpoints snaps to (signed) zero to hammer the edges.
      const std::uint64_t pick = rng.below(4);
      if (pick == 0) return rng.below(2) ? 0.0 : -0.0;
      return rng.uniform(-span, span);
    };
    double nlo = endpoint(10.0), nhi = endpoint(10.0);
    double dlo = endpoint(4.0), dhi = endpoint(4.0);
    if (nlo > nhi) std::swap(nlo, nhi);
    if (dlo > dhi) std::swap(dlo, dhi);
    const Interval num(nlo, nhi), den(dlo, dhi);

    Interval q1, q2;
    const int pieces = interval::extended_div(num, den, q1, q2);

    for (int s = 0; s < 16; ++s) {
      const double d = rng.uniform(dlo, dhi);
      if (d == 0.0) continue;
      const double n = rng.uniform(nlo, nhi);
      const double x = n / d;
      if (!std::isfinite(x)) continue;
      // x·d == n ∈ num by construction, so x is consistent.
      EXPECT_TRUE(in_union(x, pieces, q1, q2))
          << "lost x=" << x << " = " << n << "/" << d << " for num=["
          << nlo << "," << nhi << "] den=[" << dlo << "," << dhi << "]";
      ++checked;
    }
  }
  // The sweep must have exercised a meaningful number of points.
  EXPECT_GT(checked, 10000);
}

// --- even-power backward projection -------------------------------------

const smt::Hc4Mode kModes[] = {smt::Hc4Mode::kTree, smt::Hc4Mode::kTape};

TEST(PowEvenProjection, EmptyRequirementPrunes) {
  for (const smt::Hc4Mode mode : kModes) {
    expr::ExprPool p;
    // x⁶ + 3 ≤ 0: the requirement on x⁶ is [-inf, -3] — empty after
    // clipping to the even power's range [0, inf).
    smt::Conjunction c;
    c.add(p.add(p.pow(p.var(0), 6), p.constant(3.0)), smt::Rel::kLe);
    smt::Hc4Contractor hc4(p, c, mode);
    interval::Box box = interval::Box::from_bounds({{-2.0, 2.0}});
    EXPECT_EQ(hc4.contract(box), smt::ContractResult::kEmpty);
  }
}

TEST(PowEvenProjection, ZeroBoundaryRequirementContractsToZero) {
  for (const smt::Hc4Mode mode : kModes) {
    expr::ExprPool p;
    // x⁴ ≤ 0: only x = 0 survives; the requirement's negative part must
    // clip to the signed-zero boundary, not poison the root split.
    smt::Conjunction c;
    c.add(p.pow(p.var(0), 4), smt::Rel::kLe);
    smt::Hc4Contractor hc4(p, c, mode);
    interval::Box box = interval::Box::from_bounds({{-2.0, 3.0}});
    const smt::ContractResult r = hc4.contract_fixpoint(box);
    ASSERT_NE(r, smt::ContractResult::kEmpty);
    EXPECT_LE(std::abs(box[0].lo()), 1e-9);
    EXPECT_LE(std::abs(box[0].hi()), 1e-9);
  }
}

TEST(PowEvenProjection, StraddlingBoxKeepsBothRootBranches) {
  for (const smt::Hc4Mode mode : kModes) {
    expr::ExprPool p;
    smt::Conjunction c;
    // x⁴ − 16 ≤ 0 ⇔ |x| ≤ 2.
    c.add(p.sub(p.pow(p.var(0), 4), p.constant(16.0)), smt::Rel::kLe);
    {
      smt::Hc4Contractor hc4(p, c, mode);
      interval::Box box = interval::Box::from_bounds({{-10.0, 10.0}});
      EXPECT_EQ(hc4.contract(box), smt::ContractResult::kContracted);
      EXPECT_GE(box[0].lo(), -2.0 - 1e-9);
      EXPECT_LE(box[0].hi(), 2.0 + 1e-9);
      // Both signs survive: the projection did not collapse to one root.
      EXPECT_LT(box[0].lo(), 0.0);
      EXPECT_GT(box[0].hi(), 0.0);
    }
    {
      // A negative-only box keeps only the negative branch.
      smt::Hc4Contractor hc4(p, c, mode);
      interval::Box box = interval::Box::from_bounds({{-10.0, -1.0}});
      EXPECT_EQ(hc4.contract(box), smt::ContractResult::kContracted);
      EXPECT_GE(box[0].lo(), -2.0 - 1e-9);
      EXPECT_LE(box[0].hi(), -1.0);
    }
  }
}

TEST(PowEvenProjection, FuzzContractionNeverDiscardsASatisfyingPoint) {
  // Random even-power constraints a·x^{2k} + b·x + c ≤ 0 over random
  // boxes: any sampled point that satisfies the constraint numerically
  // (with margin) must still be inside the contracted box — for both
  // backends, which must also agree exactly.
  SplitMix64 rng(0x9E37UL);
  int preserved = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const int exponent = 2 * (1 + static_cast<int>(rng.below(3)));  // 2,4,6
    const double a = rng.uniform(0.2, 2.0);
    const double b = rng.uniform(-1.0, 1.0);
    const double cc = rng.uniform(-8.0, 2.0);
    double lo = rng.uniform(-4.0, 4.0), hi = rng.uniform(-4.0, 4.0);
    if (lo > hi) std::swap(lo, hi);

    const auto value = [&](double x) {
      return a * std::pow(x, exponent) + b * x + cc;
    };

    expr::ExprPool p;
    smt::Conjunction c;
    const expr::ExprId term = p.add(
        p.add(p.mul(p.constant(a), p.pow(p.var(0), exponent)),
              p.mul(p.constant(b), p.var(0))),
        p.constant(cc));
    c.add(term, smt::Rel::kLe);

    interval::Box tree_box = interval::Box::from_bounds({{lo, hi}});
    interval::Box tape_box = tree_box;
    smt::Hc4Contractor tree(p, c, smt::Hc4Mode::kTree);
    smt::Hc4Contractor tape(p, c, smt::Hc4Mode::kTape);
    const smt::ContractResult tr = tree.contract_fixpoint(tree_box);
    const smt::ContractResult ta = tape.contract_fixpoint(tape_box);

    // Backend agreement is contractual and exact.
    EXPECT_EQ(tr, ta);
    EXPECT_EQ(tree_box[0].lo(), tape_box[0].lo());
    EXPECT_EQ(tree_box[0].hi(), tape_box[0].hi());

    for (int s = 0; s < 32; ++s) {
      const double x = rng.uniform(lo, hi);
      if (value(x) > -1e-9) continue;  // not a robust satisfying point
      EXPECT_NE(tr, smt::ContractResult::kEmpty)
          << "pruned a satisfying point x=" << x << " (iter " << iter << ")";
      EXPECT_TRUE(tree_box[0].contains(x))
          << "discarded x=" << x << " with value " << value(x) << " (iter "
          << iter << ")";
      ++preserved;
    }
  }
  EXPECT_GT(preserved, 1000);
}

}  // namespace
}  // namespace bcert
