#include "src/smt/optimizer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>
#include <vector>

namespace bcert::smt {

namespace {

using clock = std::chrono::steady_clock;

/// Work item: a box and the interval bound of the objective over it.
struct Node {
  interval::Box box;
  double lower;  // certified lower bound of the objective on this box
};

struct NodeCompare {
  // Best-first: explore the box with the smallest lower bound.
  bool operator()(const Node& a, const Node& b) const {
    return a.lower > b.lower;
  }
};

}  // namespace

OptimizeResult minimize(const expr::ExprPool& pool, expr::ExprId e,
                        const interval::Box& box,
                        const OptimizeConfig& config) {
  OptimizeResult result;
  const auto start = clock::now();
  auto elapsed = [&start] {
    return std::chrono::duration<double>(clock::now() - start).count();
  };

  expr::Evaluator eval(pool, {e});

  std::priority_queue<Node, std::vector<Node>, NodeCompare> queue;
  {
    const interval::Interval first = eval.eval(box)[0];
    queue.push({box, first.lo()});
  }

  // Upper bound: objective at sampled points (midpoints are feasible).
  double best_upper = std::numeric_limits<double>::infinity();
  linalg::Vector best_point = box.midpoint();
  auto try_point = [&](const linalg::Vector& x) {
    const double v = eval.eval(x)[0];
    if (v < best_upper) {
      best_upper = v;
      best_point = x;
    }
  };
  try_point(box.midpoint());

  double global_lower = -std::numeric_limits<double>::infinity();

  while (!queue.empty()) {
    if (result.boxes_processed >= config.max_boxes ||
        elapsed() > config.time_limit_s) {
      break;
    }
    Node node = queue.top();
    queue.pop();
    ++result.boxes_processed;

    global_lower = node.lower;  // best-first ⇒ queue head is the bound
    const double gap = best_upper - global_lower;
    if (gap <= config.tolerance ||
        gap <= config.rel_tolerance * std::max(1.0, std::fabs(best_upper))) {
      result.converged = true;
      break;
    }
    if (node.lower >= best_upper) {
      // Cannot contain anything better (can happen after upper improved).
      global_lower = best_upper;
      result.converged = true;
      break;
    }

    auto [left, right] = node.box.split_widest();
    for (interval::Box* child : {&left, &right}) {
      const interval::Interval bound = eval.eval(*child)[0];
      try_point(child->midpoint());
      if (bound.lo() < best_upper) {
        queue.push({std::move(*child), bound.lo()});
      }
    }
  }

  if (queue.empty() && !result.converged) {
    // Everything pruned: the optimum equals the best sampled value.
    global_lower = best_upper;
    result.converged = true;
  }

  result.lower = global_lower;
  result.upper = best_upper;
  result.argmin = best_point;
  result.solve_time_s = elapsed();
  return result;
}

OptimizeResult maximize(expr::ExprPool& pool, expr::ExprId e,
                        const interval::Box& box,
                        const OptimizeConfig& config) {
  // max f = −min(−f).
  const expr::ExprId neg = pool.neg(e);
  OptimizeResult r = minimize(pool, neg, box, config);
  std::swap(r.lower, r.upper);
  r.lower = -r.lower;
  r.upper = -r.upper;
  return r;
}

}  // namespace bcert::smt
