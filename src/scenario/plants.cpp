#include "src/scenario/plants.h"

#include <cmath>
#include <stdexcept>

#include "src/dubins/error_dynamics.h"
#include "src/dubins/rnn_dynamics.h"
#include "src/nn/ctrnn.h"
#include "src/nn/elm.h"
#include "src/scenario/prng.h"

namespace bcert::scenario {

namespace {

/// Post-fit controller perturbation: scales every flat parameter by an
/// independent SplitMix64 factor in [1 - magnitude, 1 + magnitude).
/// Relative (not additive) on purpose: the ridge-regularized output
/// layers carry small weights whose *shape* encodes the policy, and an
/// additive kick of the same absolute size wrecks them. Works on
/// anything with the parameters()/set_parameters() protocol
/// (FeedforwardNet and Ctrnn).
template <typename Net>
void perturb_weights(Net& net, double magnitude, std::uint64_t seed) {
  if (magnitude <= 0.0) return;
  SplitMix64 rng(seed);
  linalg::Vector params = net.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] *= rng.scale(magnitude);
  }
  net.set_parameters(params);
}

/// Distills an ELM student of \p teacher over the given box.
nn::FeedforwardNet fit_controller(const nn::TeacherFn& teacher,
                                  const linalg::Vector& lo,
                                  const linalg::Vector& hi,
                                  std::size_t hidden, unsigned seed) {
  nn::ElmOptions opts;
  opts.hidden = hidden;
  opts.samples = 600;
  opts.seed = seed;
  return nn::elm_fit(teacher, lo.size(), 1, lo, hi, opts);
}

}  // namespace

const char* plant_family_name(PlantFamily family) {
  switch (family) {
    case PlantFamily::kAcc: return "acc";
    case PlantFamily::kQuadrotor: return "quadrotor";
    case PlantFamily::kPendulumElm: return "pendulum-elm";
    case PlantFamily::kDubinsElm: return "dubins-elm";
    case PlantFamily::kDubinsCtrnn: return "dubins-ctrnn";
  }
  throw std::invalid_argument("plant_family_name: unknown family");
}

core::Scenario make_acc_scenario(expr::ExprPool& pool,
                                 const AccParams& params) {
  const nn::TeacherFn teacher = [kg = params.k_gap,
                                 kv = params.k_vel](const linalg::Vector& x) {
    return linalg::Vector{std::tanh(kg * x[0] + kv * x[1])};
  };
  nn::FeedforwardNet net =
      fit_controller(teacher, params.safe_rect.lo, params.safe_rect.hi,
                     params.hidden, params.controller_seed);
  perturb_weights(net, params.weight_jitter, params.jitter_seed);

  core::Scenario s;
  s.name = plant_family_name(PlantFamily::kAcc);
  core::BarrierProblem& p = s.problem;
  p.pool = &pool;
  const double a = params.max_accel;
  const double cv = params.drag;
  p.sim_field = [a, cv, net](const linalg::Vector& x) {
    const double u = net.forward(x)[0];
    return linalg::Vector{x[1], -a * u - cv * x[1]};
  };
  p.sim_field_factory = [a, cv, net] {
    return [a, cv, net, scratch = nn::ForwardScratch{},
            u = linalg::Vector{}](const linalg::Vector& x,
                                  linalg::Vector& dx) mutable {
      net.forward_inplace(x, u, scratch);
      dx.resize(2);
      dx[0] = x[1];
      dx[1] = -a * u[0] - cv * x[1];
    };
  };
  const expr::ExprId e = pool.var(0);
  const expr::ExprId v = pool.var(1);
  const expr::ExprId u = net.to_expr(pool, {e, v})[0];
  p.sym_field = {v, pool.sub(pool.neg(pool.mul(pool.constant(a), u)),
                             pool.mul(pool.constant(cv), v))};
  p.initial_set = params.initial_set;
  p.safe_rect = params.safe_rect;
  return s;
}

core::Scenario make_quadrotor_scenario(expr::ExprPool& pool,
                                       const QuadrotorParams& params) {
  const nn::TeacherFn teacher =
      [ka = params.k_angle, kr = params.k_rate](const linalg::Vector& x) {
        return linalg::Vector{std::tanh(-ka * x[0] - kr * x[1])};
      };
  nn::FeedforwardNet net =
      fit_controller(teacher, params.safe_rect.lo, params.safe_rect.hi,
                     params.hidden, params.controller_seed);
  perturb_weights(net, params.weight_jitter, params.jitter_seed);

  core::Scenario s;
  s.name = plant_family_name(PlantFamily::kQuadrotor);
  core::BarrierProblem& p = s.problem;
  p.pool = &pool;
  const double ct = params.torque;
  const double cd = params.drag;
  p.sim_field = [ct, cd, net](const linalg::Vector& x) {
    const double u = net.forward(x)[0];
    return linalg::Vector{x[1], ct * u - cd * x[1] * std::abs(x[1])};
  };
  p.sim_field_factory = [ct, cd, net] {
    return [ct, cd, net, scratch = nn::ForwardScratch{},
            u = linalg::Vector{}](const linalg::Vector& x,
                                  linalg::Vector& dx) mutable {
      net.forward_inplace(x, u, scratch);
      dx.resize(2);
      dx[0] = x[1];
      dx[1] = ct * u[0] - cd * x[1] * std::abs(x[1]);
    };
  };
  const expr::ExprId phi = pool.var(0);
  const expr::ExprId rate = pool.var(1);
  const expr::ExprId u = net.to_expr(pool, {phi, rate})[0];
  p.sym_field = {rate,
                 pool.sub(pool.mul(pool.constant(ct), u),
                          pool.mul(pool.constant(cd),
                                   pool.mul(rate, pool.abs(rate))))};
  p.initial_set = params.initial_set;
  p.safe_rect = params.safe_rect;
  return s;
}

core::Scenario make_pendulum_scenario(expr::ExprPool& pool,
                                      const PendulumParams& params) {
  const nn::TeacherFn teacher =
      [ka = params.k_angle, kr = params.k_rate](const linalg::Vector& x) {
        return linalg::Vector{std::tanh(-ka * x[0] - kr * x[1])};
      };
  // Fit over the safe rectangle inflated ~15% so the student tracks the
  // teacher slightly beyond every face it must prove decrease on.
  linalg::Vector lo = params.safe_rect.lo;
  linalg::Vector hi = params.safe_rect.hi;
  for (std::size_t i = 0; i < lo.size(); ++i) {
    lo[i] *= 1.15;
    hi[i] *= 1.15;
  }
  nn::FeedforwardNet net = fit_controller(teacher, lo, hi, params.hidden,
                                          params.controller_seed);
  perturb_weights(net, params.weight_jitter, params.jitter_seed);

  core::Scenario s;
  s.name = plant_family_name(PlantFamily::kPendulumElm);
  core::BarrierProblem& p = s.problem;
  p.pool = &pool;
  const double g = params.gravity;
  const double ct = params.torque;
  p.sim_field = [g, ct, net](const linalg::Vector& x) {
    const double u = net.forward(x)[0];
    return linalg::Vector{x[1], g * std::sin(x[0]) + ct * u};
  };
  p.sim_field_factory = [g, ct, net] {
    return [g, ct, net, scratch = nn::ForwardScratch{},
            u = linalg::Vector{}](const linalg::Vector& x,
                                  linalg::Vector& dx) mutable {
      net.forward_inplace(x, u, scratch);
      dx.resize(2);
      dx[0] = x[1];
      dx[1] = g * std::sin(x[0]) + ct * u[0];
    };
  };
  const expr::ExprId th = pool.var(0);
  const expr::ExprId om = pool.var(1);
  const expr::ExprId u = net.to_expr(pool, {th, om})[0];
  p.sym_field = {om, pool.add(pool.mul(pool.constant(g), pool.sin(th)),
                              pool.mul(pool.constant(ct), u))};
  p.initial_set = params.initial_set;
  p.safe_rect = params.safe_rect;
  return s;
}

core::Scenario make_dubins_elm_scenario(expr::ExprPool& pool,
                                        const DubinsElmParams& params) {
  const nn::TeacherFn teacher =
      [kd = params.k_d, kt = params.k_theta](const linalg::Vector& x) {
        return linalg::Vector{std::tanh(kd * x[0] + kt * x[1])};
      };
  // The distillation box of dubins::distill_controller: wider than the
  // verification domain in d, matching the heading range.
  nn::FeedforwardNet net =
      fit_controller(teacher, linalg::Vector{-6.0, -1.7},
                     linalg::Vector{6.0, 1.7}, params.hidden,
                     params.controller_seed);
  perturb_weights(net, params.weight_jitter, params.jitter_seed);

  const dubins::ErrorModel model{params.velocity, params.theta_r};
  core::Scenario s;
  s.name = plant_family_name(PlantFamily::kDubinsElm);
  core::BarrierProblem& p = s.problem;
  p.pool = &pool;
  p.sim_field = dubins::closed_loop_field(model, net);
  p.sim_field_factory = [model, net] {
    return dubins::closed_loop_field_inplace(model, net);
  };
  p.sym_field = dubins::closed_loop_field_expr(model, net, pool);
  p.initial_set = params.initial_set;
  p.safe_rect = params.safe_rect;
  return s;
}

core::Scenario make_dubins_ctrnn_scenario(expr::ExprPool& pool,
                                          const DubinsCtrnnParams& params) {
  nn::Ctrnn net = nn::Ctrnn::lagged_policy(
      linalg::Vector{params.k_d, params.k_theta}, params.tau);
  perturb_weights(net, params.weight_jitter, params.jitter_seed);

  const dubins::ErrorModel model{params.velocity, params.theta_r};
  core::Scenario s;
  s.name = plant_family_name(PlantFamily::kDubinsCtrnn);
  core::BarrierProblem& p = s.problem;
  p.pool = &pool;
  p.sim_field = dubins::rnn_closed_loop_field(model, net);
  p.sim_field_factory = [model, net] {
    return dubins::rnn_closed_loop_field_inplace(model, net);
  };
  p.sym_field = dubins::rnn_closed_loop_field_expr(model, net, pool);
  p.initial_set = params.initial_set;
  p.safe_rect = params.safe_rect;
  // The hidden state is a controller dimension, not a plant one: its
  // safe_rect faces are an invariant domain (tanh keeps |h| ≤ 1).
  p.unsafe_dims = {true, true, false};
  return s;
}

}  // namespace bcert::scenario
