#include "src/daemon/server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/core/fault.h"
#include "src/core/report.h"
#include "src/scenario/generator.h"
#include "src/smt/cache_io.h"

namespace bcert::daemon {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// A request line (and hence its JSON) must fit well under this; the cap
/// keeps a stuck or hostile writer from growing the read buffer forever.
constexpr std::size_t kMaxLineBytes = 1 << 20;

/// Write timeout: a client that cannot absorb one line within this long
/// is disconnected rather than allowed to wedge the scheduler.
constexpr int kSendTimeoutS = 5;

double seconds_between(SteadyClock::time_point from,
                       SteadyClock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::string u64_str(std::uint64_t v) { return std::to_string(v); }

std::string double_str(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// The `"id"` member of a request re-encoded as a JSON fragment for the
/// `"req"` echo; empty when absent or of an unsupported type.
std::string request_id_fragment(const JsonValue& request) {
  const JsonValue* id = request.find("id");
  if (id == nullptr) return {};
  if (id->is_number()) return double_str(id->as_number());
  if (id->is_string()) {
    return "\"" + core::json_escape(id->as_string()) + "\"";
  }
  return {};
}

/// Appends `,"req":<id>` when the request carried an id.
void append_req(std::string& json, const std::string& req_id) {
  if (req_id.empty()) return;
  json += ",\"req\":";
  json += req_id;
}

}  // namespace

/// One job, from accepted request to delivered result. Owned by the
/// scheduler thread; only the progress callback (pool worker) sees any
/// of it concurrently, and that callback captures copies — never the
/// Job itself.
struct Server::Job {
  std::uint64_t id = 0;
  std::shared_ptr<Connection> conn;  ///< submitter (events go here)
  std::uint64_t conn_id = 0;
  ScenarioSpec spec;
  std::string name;
  int priority = 0;
  double deadline_s = 0.0;
  std::uint64_t mem_quota_bytes = 0;
  bool want_progress = false;

  enum class State { kPending, kRunning, kDone };
  State state = State::kPending;

  core::JobHandle handle;
  std::optional<core::Scenario> scenario;
  SteadyClock::time_point submitted;
  SteadyClock::time_point dispatched;
  SteadyClock::time_point finished;
  std::optional<core::VerifyResult> result;
  int rr = 0;  ///< fair-share round-robin slot within the current wave
};

ServerOptions ServerOptions::from_runtime_config(
    const core::RuntimeConfig& config) {
  ServerOptions options;
  options.socket_path = config.daemon_socket;
  options.state_dir = config.state_dir;
  options.snapshot_period_s = config.snapshot_period_s;
  options.log_level = config.log_level;
  return options;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      log_(options_.log_level, options_.log_stream),
      engine_(std::make_unique<core::Engine>(options_.engine)) {}

Server::~Server() {
  // run() normally tears everything down; this path covers a Server
  // that was started but never run (or whose start failed midway).
  io_stop_.store(true);
  if (wake_pipe_[1] >= 0) {
    const char byte = 0;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (io_thread_.joinable()) io_thread_.join();
  for (int fd : {listen_fd_, wake_pipe_[0], wake_pipe_[1]}) {
    if (fd >= 0) ::close(fd);
  }
  if (started_) ::unlink(options_.socket_path.c_str());
}

std::string Server::snapshot_path() const {
  return options_.state_dir + "/bcertd.snapshot";
}

bool Server::start(std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path empty or too long";
    return false;
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof addr.sun_path - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return false;
  }
  // The daemon owns its socket path: a leftover file from a previous
  // (crashed) instance is replaced.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (error != nullptr) {
      *error = "bind/listen " + options_.socket_path + ": " +
               std::string(strerror(errno));
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::pipe2(wake_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
    if (error != nullptr) *error = "pipe2(): " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  if (!options_.state_dir.empty()) {
    const std::string path = snapshot_path();
    if (::access(path.c_str(), F_OK) != 0) {
      log_.info("snapshot_absent", {{"path", path}});
    } else {
      smt::WarmState state;
      std::string load_error;
      if (smt::load_snapshot(path, state, &load_error)) {
        const std::size_t tapes = state.tapes.size();
        const std::size_t trees = state.trees.size();
        const std::size_t bases = state.bases.size();
        engine_->import_warm_state(std::move(state));
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.snapshot_loaded = true;
        }
        log_.info("snapshot_loaded",
                  {{"path", path},
                   {"tapes", tapes},
                   {"trees", trees},
                   {"bases", bases}});
      } else {
        // Corrupt / truncated / version-mismatched snapshots start the
        // daemon cold, never dead.
        log_.warn("snapshot_rejected",
                  {{"path", path}, {"error", load_error}});
      }
    }
  }

  io_stop_.store(false);
  io_thread_ = std::thread([this] { io_loop(); });
  started_ = true;
  log_.info("listening", {{"socket", options_.socket_path},
                          {"state_dir", options_.state_dir.empty()
                                            ? std::string("<disabled>")
                                            : options_.state_dir},
                          {"snapshot_period_s", options_.snapshot_period_s}});
  return true;
}

// ---------------------------------------------------------------------------
// I/O thread
// ---------------------------------------------------------------------------

void Server::io_loop() {
  while (!io_stop_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Connection>> polled;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      for (const auto& [id, conn] : connections_) {
        fds.push_back({conn->fd, POLLIN, 0});
        polled.push_back(conn);
      }
    }
    const int rc = ::poll(fds.data(), fds.size(), 200);
    if (rc < 0 && errno != EINTR) break;
    if (io_stop_.load(std::memory_order_relaxed)) break;
    if (rc <= 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      char sink[64];
      while (::read(wake_pipe_[0], sink, sizeof sink) > 0) {
      }
    }
    if ((fds[1].revents & (POLLIN | POLLERR)) != 0) accept_client();
    for (std::size_t i = 0; i < polled.size(); ++i) {
      const short revents = fds[i + 2].revents;
      const std::shared_ptr<Connection>& conn = polled[i];
      if (conn->closed.load(std::memory_order_relaxed)) {
        reclaim(conn);
        continue;
      }
      if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (!read_from(conn)) reclaim(conn);
    }
  }
  // Shutdown: reclaim every connection so fds do not leak.
  std::vector<std::shared_ptr<Connection>> remaining;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const auto& [id, conn] : connections_) remaining.push_back(conn);
  }
  for (const auto& conn : remaining) reclaim(conn);
}

void Server::accept_client() {
  const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return;
  timeval timeout{};
  timeout.tv_sec = kSendTimeoutS;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);

  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn->id = next_conn_id_++;
    connections_[conn->id] = conn;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.connections_opened;
  }
  log_.debug("accept", {{"conn", conn->id}});
}

bool Server::read_from(const std::shared_ptr<Connection>& conn) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, MSG_DONTWAIT);
    if (n > 0) {
      conn->read_buffer.append(buf, static_cast<std::size_t>(n));
      if (conn->read_buffer.size() > kMaxLineBytes) {
        log_.warn("oversized_request", {{"conn", conn->id}});
        return false;
      }
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  std::size_t start = 0;
  bool alive = true;
  while (alive) {
    const std::size_t nl = conn->read_buffer.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn->read_buffer.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    // The read half of the socket_io fault point: a firing rule behaves
    // exactly like the client's connection dying mid-request.
    if (core::FaultRegistry::trip(core::FaultPoint::kSocketIo)) {
      log_.warn("socket_fault", {{"conn", conn->id}, {"side", "read"}});
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.connections_dropped;
      }
      alive = false;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(inbox_mutex_);
      inbox_.push_back(InboundLine{conn, std::move(line)});
    }
    inbox_cv_.notify_one();
  }
  conn->read_buffer.erase(0, start);
  return alive;
}

void Server::reclaim(const std::shared_ptr<Connection>& conn) {
  {
    // The write mutex fences out in-flight send_line calls so the fd is
    // never closed (and possibly reused) under a writer.
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    conn->closed.store(true, std::memory_order_relaxed);
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.erase(conn->id);
  }
  log_.debug("disconnect", {{"conn", conn->id}});
}

// ---------------------------------------------------------------------------
// Writes (any thread)
// ---------------------------------------------------------------------------

bool Server::send_line(const std::shared_ptr<Connection>& conn,
                       const std::string& json) {
  if (conn == nullptr) return false;
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->closed.load(std::memory_order_relaxed) || conn->fd < 0) {
    return false;
  }
  const bool faulted = core::FaultRegistry::trip(core::FaultPoint::kSocketIo);
  bool ok = !faulted;
  if (ok) {
    std::string line = json;
    line += '\n';
    std::size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n = ::send(conn->fd, line.data() + sent,
                               line.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      ok = false;  // timeout, EPIPE, reset, ...
      break;
    }
  }
  if (!ok) {
    // Mark closed and half-shut the socket; the I/O thread observes the
    // hangup and reclaims the fd (fds are only closed there).
    conn->closed.store(true, std::memory_order_relaxed);
    ::shutdown(conn->fd, SHUT_RDWR);
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.connections_dropped;
    }
    log_.warn("connection_dropped",
              {{"conn", conn->id}, {"why", faulted ? "socket_fault" : "send"}});
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Scheduler: request handling
// ---------------------------------------------------------------------------

void Server::send_error(const std::shared_ptr<Connection>& conn,
                        const std::string& req_id,
                        const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.protocol_errors;
  }
  std::string json = "{\"type\":\"error\"";
  append_req(json, req_id);
  json += ",\"error\":\"" + core::json_escape(message) + "\"}";
  send_line(conn, json);
}

void Server::handle_line(const InboundLine& in) {
  JsonValue request;
  std::string parse_error;
  if (!JsonValue::parse(in.line, request, &parse_error)) {
    send_error(in.conn, {}, "invalid JSON: " + parse_error);
    return;
  }
  if (!request.is_object()) {
    send_error(in.conn, {}, "request must be a JSON object");
    return;
  }
  const std::string req_id = request_id_fragment(request);
  const JsonValue* cmd = request.find("cmd");
  if (cmd == nullptr || !cmd->is_string()) {
    send_error(in.conn, req_id, "missing \"cmd\"");
    return;
  }
  const std::string& name = cmd->as_string();
  log_.debug("request", {{"conn", in.conn->id}, {"cmd", name}});
  if (name == "ping") {
    std::string json = "{\"type\":\"pong\"";
    append_req(json, req_id);
    json += "}";
    send_line(in.conn, json);
  } else if (name == "submit") {
    handle_submit(in.conn, request, req_id);
  } else if (name == "status") {
    handle_status(in.conn, request, req_id);
  } else if (name == "cancel") {
    handle_cancel(in.conn, request, req_id);
  } else if (name == "stats") {
    handle_stats(in.conn, req_id);
  } else if (name == "drain") {
    if (!draining_) {
      draining_ = true;
      log_.info("drain_requested", {{"conn", in.conn->id}});
    }
    std::string json = "{\"type\":\"draining\"";
    append_req(json, req_id);
    json += "}";
    send_line(in.conn, json);
  } else {
    send_error(in.conn, req_id, "unknown cmd \"" + name + "\"");
  }
}

void Server::handle_submit(const std::shared_ptr<Connection>& conn,
                           const JsonValue& request,
                           const std::string& req_id) {
  if (draining_) {
    send_error(conn, req_id, "draining: no new jobs accepted");
    return;
  }
  const JsonValue* scenario = request.find("scenario");
  if (scenario == nullptr) {
    send_error(conn, req_id, "submit requires a \"scenario\" object");
    return;
  }
  ScenarioSpec spec;
  std::string spec_error;
  if (!parse_scenario_spec(*scenario, spec, &spec_error)) {
    send_error(conn, req_id, spec_error);
    return;
  }
  const double priority = request.number_or("priority", 0.0);
  const double deadline_s = request.number_or("deadline_s", 0.0);
  const double mem_quota_mb = request.number_or("mem_quota_mb", 0.0);
  if (!(deadline_s >= 0.0) || !(mem_quota_mb >= 0.0)) {
    send_error(conn, req_id, "deadline_s / mem_quota_mb must be >= 0");
    return;
  }

  auto job = std::make_unique<Job>();
  job->id = next_job_id_++;
  job->conn = conn;
  job->conn_id = conn->id;
  job->spec = spec;
  job->name = spec.name();
  job->priority = static_cast<int>(
      std::clamp(priority, -1000.0, 1000.0));
  job->deadline_s = deadline_s;
  job->mem_quota_bytes =
      static_cast<std::uint64_t>(mem_quota_mb * 1024.0 * 1024.0);
  job->want_progress = request.bool_or("progress", false);
  job->submitted = SteadyClock::now();

  std::string json = "{\"type\":\"submitted\"";
  append_req(json, req_id);
  json += ",\"job\":" + u64_str(job->id);
  json += ",\"name\":\"" + core::json_escape(job->name) + "\"}";

  const std::uint64_t id = job->id;
  pending_.push_back(id);
  jobs_[id] = std::move(job);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.jobs_submitted;
    stats_.queue_depth = pending_.size();
  }
  log_.info("submit", {{"job", id},
                       {"conn", conn->id},
                       {"name", jobs_[id]->name},
                       {"priority", jobs_[id]->priority}});
  send_line(conn, json);
}

void Server::handle_status(const std::shared_ptr<Connection>& conn,
                           const JsonValue& request,
                           const std::string& req_id) {
  const double id_number = request.number_or("job", -1.0);
  const auto it = id_number >= 0.0
                      ? jobs_.find(static_cast<std::uint64_t>(id_number))
                      : jobs_.end();
  if (it == jobs_.end()) {
    send_error(conn, req_id, "unknown job");
    return;
  }
  const Job& job = *it->second;
  std::string json = "{\"type\":\"status\"";
  append_req(json, req_id);
  json += ",\"job\":" + u64_str(job.id);
  json += ",\"name\":\"" + core::json_escape(job.name) + "\"";
  json += ",\"state\":\"";
  switch (job.state) {
    case Job::State::kPending: json += "pending"; break;
    case Job::State::kRunning: json += "running"; break;
    case Job::State::kDone: json += "done"; break;
  }
  json += "\"";
  if (job.state == Job::State::kDone && job.result.has_value()) {
    json += ",\"verdict\":\"" +
            core::json_escape(verdict_line(job.name, *job.result)) + "\"";
    json += ",\"result\":" + core::result_json(*job.result);
  }
  json += "}";
  send_line(conn, json);
}

void Server::handle_cancel(const std::shared_ptr<Connection>& conn,
                           const JsonValue& request,
                           const std::string& req_id) {
  const double id_number = request.number_or("job", -1.0);
  const auto it = id_number >= 0.0
                      ? jobs_.find(static_cast<std::uint64_t>(id_number))
                      : jobs_.end();
  if (it == jobs_.end()) {
    send_error(conn, req_id, "unknown job");
    return;
  }
  Job& job = *it->second;
  const char* state = "done";
  if (job.state == Job::State::kPending) {
    // Never dispatched: synthesize the cancelled result right here.
    pending_.erase(std::find(pending_.begin(), pending_.end(), job.id));
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.queue_depth = pending_.size();
    }
    core::VerifyResult result;
    result.status = core::VerifyStatus::kCancelled;
    result.error = core::Status(core::ErrorCode::kCancelled,
                                "cancelled before dispatch");
    finish_job(job, std::move(result));
    state = "cancelled";
  } else if (job.state == Job::State::kRunning) {
    job.handle.cancel();  // cooperative; result arrives as kCancelled
    state = "cancelling";
  }
  log_.info("cancel", {{"job", job.id}, {"state", state}});
  std::string json = "{\"type\":\"cancelled\"";
  append_req(json, req_id);
  json += ",\"job\":" + u64_str(job.id);
  json += ",\"state\":\"" + std::string(state) + "\"}";
  send_line(conn, json);
}

void Server::handle_stats(const std::shared_ptr<Connection>& conn,
                          const std::string& req_id) {
  send_line(conn, stats_json(req_id));
}

// ---------------------------------------------------------------------------
// Scheduler: dispatch and collection
// ---------------------------------------------------------------------------

void Server::dispatch_wave() {
  // Fair-share order: priority strictly first; within a priority, jobs
  // interleave round-robin across submitting connections (each job's
  // rank within its own connection's backlog), submission order last.
  std::vector<Job*> wave;
  wave.reserve(pending_.size());
  for (const std::uint64_t id : pending_) wave.push_back(jobs_[id].get());
  std::map<std::uint64_t, int> per_conn;
  for (Job* job : wave) job->rr = per_conn[job->conn_id]++;
  std::stable_sort(wave.begin(), wave.end(), [](const Job* a, const Job* b) {
    if (a->priority != b->priority) return a->priority > b->priority;
    if (a->rr != b->rr) return a->rr < b->rr;
    return a->id < b->id;
  });
  pending_.clear();

  for (Job* job : wave) {
    // Materialization interns into pool_, which is safe exactly because
    // dispatch_wave only runs at quiesce (see the file comment).
    try {
      scenario::ScenarioGenerator generator(pool_, job->spec.generator_config());
      job->scenario =
          generator.generate_one(static_cast<std::size_t>(job->spec.index));
    } catch (const std::exception& e) {
      core::VerifyResult result;
      result.status = core::VerifyStatus::kInternalError;
      result.error = core::Status(core::ErrorCode::kInternal,
                                  std::string("materialize: ") + e.what());
      finish_job(*job, std::move(result));
      continue;
    }

    core::JobOptions job_options = scenario::zoo_job_defaults();
    if (job->scenario->certificate.has_value()) {
      job_options.certificate = *job->scenario->certificate;
    }
    job_options.deadline_s = job->deadline_s;
    job_options.mem_quota_bytes =
        static_cast<std::size_t>(job->mem_quota_bytes);
    if (job->want_progress) {
      // Fires on the Engine pool worker: copy everything, touch no Job.
      job_options.on_progress = [this, conn = job->conn,
                                 id = job->id](const core::JobProgress& p) {
        std::string event = "{\"type\":\"progress\",\"job\":" + u64_str(id);
        event += ",\"phase\":\"";
        event += core::job_phase_name(p.phase);
        event += "\",\"candidate_iteration\":" +
                 std::to_string(p.candidate_iteration);
        event +=
            ",\"level_iteration\":" + std::to_string(p.level_iteration) + "}";
        send_line(conn, event);
      };
    }

    try {
      job->handle = engine_->submit(job->scenario->problem, job_options);
    } catch (const std::exception& e) {
      core::VerifyResult result;
      result.status = core::VerifyStatus::kInternalError;
      result.error = core::Status(core::ErrorCode::kInternal,
                                  std::string("dispatch: ") + e.what());
      finish_job(*job, std::move(result));
      continue;
    }
    job->state = Job::State::kRunning;
    job->dispatched = SteadyClock::now();
    running_.push_back(job->id);
    log_.info("dispatch", {{"job", job->id}, {"name", job->name}});
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.queue_depth = 0;
    stats_.running = running_.size();
  }
}

void Server::collect_finished() {
  for (std::size_t i = 0; i < running_.size();) {
    Job& job = *jobs_[running_[i]];
    if (!job.handle.done()) {
      ++i;
      continue;
    }
    core::VerifyResult result = job.handle.get();
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
    finish_job(job, std::move(result));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.running = running_.size();
  }
}

void Server::finish_job(Job& job, core::VerifyResult result) {
  job.finished = SteadyClock::now();
  job.state = Job::State::kDone;
  job.result = std::move(result);
  const core::VerifyResult& r = *job.result;

  const bool was_dispatched =
      job.dispatched.time_since_epoch().count() != 0;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.jobs_completed;
    if (r.status == core::VerifyStatus::kCancelled) ++stats_.jobs_cancelled;
    if (!r.error.ok()) ++stats_.jobs_failed;
    if (was_dispatched) {
      stats_.queue_wait_total_s += seconds_between(job.submitted,
                                                   job.dispatched);
      stats_.run_total_s += seconds_between(job.dispatched, job.finished);
    }
    stats_.phase_totals.accumulate(r.timings);
    stats_.degradation.jit_to_tape += r.degradation.jit_to_tape;
    stats_.degradation.tape_to_tree += r.degradation.tape_to_tree;
    stats_.degradation.simd_downgrade += r.degradation.simd_downgrade;
    stats_.degradation.cache_cold += r.degradation.cache_cold;
    stats_.degradation.lp_cold += r.degradation.lp_cold;
    stats_.degradation.retries += r.degradation.retries;
  }
  log_.info("result", {{"job", job.id},
                       {"name", job.name},
                       {"status", core::verify_status_name(r.status)},
                       {"total_s", r.timings.total_time_s}});

  // Push the result event. A dead/dropped connection is fine: the
  // result stays in jobs_ and remains fetchable through `status`.
  std::string event = "{\"type\":\"result\",\"job\":" + u64_str(job.id);
  event += ",\"name\":\"" + core::json_escape(job.name) + "\"";
  event += ",\"verdict\":\"" +
           core::json_escape(verdict_line(job.name, r)) + "\"";
  event += ",\"result\":" + core::result_json(r) + "}";
  send_line(job.conn, event);
}

// ---------------------------------------------------------------------------
// Scheduler: snapshots
// ---------------------------------------------------------------------------

bool Server::save_snapshot_now(const char* reason) {
  const std::string path = snapshot_path();
  smt::WarmState state = engine_->export_warm_state();
  std::string error;
  const bool saved = smt::save_snapshot(path, state, &error);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (saved) {
      ++stats_.snapshots_saved;
    } else {
      ++stats_.snapshot_failures;
    }
  }
  if (saved) {
    log_.info("snapshot_saved", {{"path", path},
                                 {"reason", reason},
                                 {"tapes", state.tapes.size()},
                                 {"trees", state.trees.size()},
                                 {"bases", state.bases.size()}});
  } else {
    // Degradation, not death: a failed snapshot (I/O error or an armed
    // cache_serialize fault) skips this save and the daemon carries on.
    log_.warn("snapshot_skipped",
              {{"path", path}, {"reason", reason}, {"error", error}});
  }
  return saved;
}

void Server::maybe_periodic_snapshot() {
  if (options_.state_dir.empty() || options_.snapshot_period_s <= 0.0) return;
  const auto now = SteadyClock::now();
  if (seconds_between(last_snapshot_, now) < options_.snapshot_period_s) {
    return;
  }
  last_snapshot_ = now;
  save_snapshot_now("periodic");
}

// ---------------------------------------------------------------------------
// Scheduler: main loop
// ---------------------------------------------------------------------------

int Server::run() {
  if (!started_) {
    log_.error("run_before_start");
    return 1;
  }
  started_at_ = last_snapshot_ = SteadyClock::now();

  std::deque<InboundLine> batch;
  while (true) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(inbox_mutex_);
      inbox_cv_.wait_for(lock, std::chrono::milliseconds(20),
                         [this] { return !inbox_.empty(); });
      batch.swap(inbox_);
    }
    for (const InboundLine& line : batch) handle_line(line);

    if (options_.stop_flag != nullptr && options_.stop_flag->load() &&
        !draining_) {
      draining_ = true;
      log_.info("drain_requested", {{"conn", std::string("signal")}});
    }

    collect_finished();
    if (running_.empty() && !pending_.empty()) {
      dispatch_wave();
      collect_finished();  // pre-dispatch failures & instant jobs
    }
    maybe_periodic_snapshot();

    if (draining_ && pending_.empty() && running_.empty()) break;
  }

  if (!options_.state_dir.empty()) save_snapshot_now("drain");

  // Tell every surviving client the drain completed, then shut down.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const auto& [id, conn] : connections_) conns.push_back(conn);
  }
  for (const auto& conn : conns) send_line(conn, "{\"type\":\"drained\"}");

  io_stop_.store(true);
  const char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  io_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  ::unlink(options_.socket_path.c_str());
  started_ = false;
  log_.info("drained", {{"uptime_s",
                         seconds_between(started_at_, SteadyClock::now())}});
  return 0;
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

ServerStats Server::stats_snapshot() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::string Server::stats_json(const std::string& req_id) const {
  const ServerStats s = stats_snapshot();
  const smt::KeyedCacheStats tape = engine_->tape_cache().stats();
  const smt::KeyedCacheStats jit = engine_->tape_cache().jit_stats();
  const smt::KeyedCacheStats unsat = engine_->unsat_cache().stats();

  std::string json = "{\"type\":\"stats\"";
  append_req(json, req_id);
  json += ",\"uptime_s\":" +
          double_str(seconds_between(started_at_, SteadyClock::now()));
  json += ",\"draining\":" + std::string(draining_ ? "true" : "false");
  json += ",\"jobs\":{\"submitted\":" + u64_str(s.jobs_submitted);
  json += ",\"pending\":" + u64_str(s.queue_depth);
  json += ",\"running\":" + u64_str(s.running);
  json += ",\"completed\":" + u64_str(s.jobs_completed);
  json += ",\"cancelled\":" + u64_str(s.jobs_cancelled);
  json += ",\"failed\":" + u64_str(s.jobs_failed) + "}";
  json += ",\"connections\":{\"opened\":" + u64_str(s.connections_opened);
  json += ",\"dropped\":" + u64_str(s.connections_dropped);
  json += ",\"protocol_errors\":" + u64_str(s.protocol_errors) + "}";
  json += ",\"caches\":{\"tape\":{\"hits\":" + u64_str(tape.hits);
  json += ",\"misses\":" + u64_str(tape.misses);
  json += ",\"entries\":" + u64_str(tape.entries);
  json += ",\"capacity\":" + u64_str(tape.capacity);
  json += ",\"warm_restores\":" +
          u64_str(engine_->tape_cache().warm_restores()) + "}";
  json += ",\"jit\":{\"hits\":" + u64_str(jit.hits);
  json += ",\"misses\":" + u64_str(jit.misses) + "}";
  json += ",\"unsat\":{\"hits\":" + u64_str(unsat.hits);
  json += ",\"misses\":" + u64_str(unsat.misses);
  json += ",\"entries\":" + u64_str(unsat.entries);
  json += ",\"capacity\":" + u64_str(unsat.capacity);
  json += ",\"stale\":" + u64_str(engine_->unsat_cache().stale());
  json += ",\"warm_restores\":" +
          u64_str(engine_->unsat_cache().warm_restores()) + "}}";
  const core::VerifyTimings& t = s.phase_totals;
  json += ",\"latency\":{\"queue_wait_total_s\":" +
          double_str(s.queue_wait_total_s);
  json += ",\"run_total_s\":" + double_str(s.run_total_s);
  json += ",\"lp_time_s\":" + double_str(t.lp_time_s);
  json += ",\"smt5_time_s\":" + double_str(t.smt5_time_s);
  json += ",\"simulation_time_s\":" + double_str(t.simulation_time_s);
  json += ",\"generator_time_s\":" + double_str(t.generator_time_s);
  json += ",\"level_set_time_s\":" + double_str(t.level_set_time_s);
  json += ",\"total_time_s\":" + double_str(t.total_time_s) + "}";
  const core::DegradationReport& d = s.degradation;
  json += ",\"degradation\":{\"jit_to_tape\":" + u64_str(d.jit_to_tape);
  json += ",\"tape_to_tree\":" + u64_str(d.tape_to_tree);
  json += ",\"simd_downgrade\":" + u64_str(d.simd_downgrade);
  json += ",\"cache_cold\":" + u64_str(d.cache_cold);
  json += ",\"lp_cold\":" + u64_str(d.lp_cold);
  json += ",\"retries\":" + u64_str(d.retries) + "}";
  json += ",\"snapshots\":{\"loaded\":" +
          std::string(s.snapshot_loaded ? "true" : "false");
  json += ",\"saved\":" + u64_str(s.snapshots_saved);
  json += ",\"failed\":" + u64_str(s.snapshot_failures) + "}}";
  return json;
}

}  // namespace bcert::daemon
