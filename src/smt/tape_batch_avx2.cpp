/// \file tape_batch_avx2.cpp
/// \brief AVX2 two-interval kernels for the batched tape sweeps.
///
/// One 256-bit register holds the same tape slot for two boxes — lanes
/// [lo₀, hi₀, lo₁, hi₁] — and each kernel is the lane-doubled twin of
/// the SSE2 kernels in tape_kernels.h: identical IEEE operations per
/// lane, identical outward-rounding bit manipulation, identical
/// maxpd/minpd NaN semantics, so results are bit-for-bit equal to the
/// scalar tape (the batch differential fuzz suite compares every tier).
///
/// The kernels carry per-function `target("avx2")` attributes instead of
/// compiling the whole translation unit with -mavx2: a TU-wide flag
/// would let AVX-encoded copies of shared header inlines (interval
/// arithmetic, tape kernels) win the linker's COMDAT merge and crash
/// pre-AVX CPUs on the scalar paths. Selection happens at runtime —
/// resolve_simd_tier() only picks this tier when the CPU reports AVX2.

#include "src/smt/tape_batch_kernels.h"

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <cstdint>
#include <limits>

#include "src/smt/tape_kernels.h"

#define BCERT_AVX2_FN __attribute__((target("avx2")))

namespace bcert::smt::bkern {

namespace {

using interval::Interval;

inline Interval get_iv(const double* slot, std::size_t l) {
  return Interval(slot[2 * l], slot[2 * l + 1]);
}

inline void set_iv(double* slot, std::size_t l, const Interval& v) {
  slot[2 * l] = v.lo();
  slot[2 * l + 1] = v.hi();
}

/// 256-bit twin of tkern::outward_pd: [prev_float(lo), next_float(hi)]
/// per interval pair, ±0 mapped to the first subnormal of the step
/// direction, saturating infinities and NaN passed through.
BCERT_AVX2_FN inline __m256d outward_pd4(__m256d v) {
  const __m256i bits = _mm256_castpd_si256(v);
  const __m256i sign = _mm256_srli_epi64(bits, 63);  // 0 or 1 per lane
  // Per-lane bit delta: lo lanes step sign?+1:-1, hi lanes sign?-1:+1.
  __m256i t =
      _mm256_sub_epi64(_mm256_slli_epi64(sign, 1), _mm256_set1_epi64x(1));
  const __m256i hi_lane = _mm256_set_epi64x(-1, 0, -1, 0);
  const __m256i neg_t = _mm256_sub_epi64(_mm256_setzero_si256(), t);
  t = _mm256_or_si256(_mm256_and_si256(hi_lane, neg_t),
                      _mm256_andnot_si256(hi_lane, t));
  __m256d stepped = _mm256_castsi256_pd(_mm256_add_epi64(bits, t));
  // ±0 → smallest subnormal in the step direction.
  const __m256d zero_mask = _mm256_cmp_pd(v, _mm256_setzero_pd(), _CMP_EQ_OQ);
  const long long kNegSub = static_cast<long long>(0x8000000000000001ULL);
  const __m256d zero_step =
      _mm256_castsi256_pd(_mm256_set_epi64x(1, kNegSub, 1, kNegSub));
  stepped = _mm256_or_pd(_mm256_and_pd(zero_mask, zero_step),
                         _mm256_andnot_pd(zero_mask, stepped));
  // Keep saturating infinities and NaN unchanged.
  const double inf = std::numeric_limits<double>::infinity();
  const __m256d keep = _mm256_or_pd(
      _mm256_cmp_pd(v, _mm256_set_pd(inf, -inf, inf, -inf), _CMP_EQ_OQ),
      _mm256_cmp_pd(v, v, _CMP_UNORD_Q));
  return _mm256_or_pd(_mm256_and_pd(keep, v),
                      _mm256_andnot_pd(keep, stepped));
}

/// Per-pair emptiness (lo > hi) broadcast to both lanes of the pair.
BCERT_AVX2_FN inline __m256d empty_mask4(__m256d v) {
  const __m256d swapped = _mm256_permute_pd(v, 0b0101);
  // Even lanes compare lo > hi (the emptiness test, NaN → ordered-false
  // like the scalar is_empty); duplicate them across the pair.
  return _mm256_movedup_pd(_mm256_cmp_pd(v, swapped, _CMP_GT_OQ));
}

BCERT_AVX2_FN void forward_add_avx2(double* dst, const double* a,
                                    const double* b, std::size_t lanes) {
  const double inf = std::numeric_limits<double>::infinity();
  const __m256d canonical_empty = _mm256_set_pd(-inf, inf, -inf, inf);
  std::size_t l = 0;
  for (; l + 2 <= lanes; l += 2) {
    const __m256d va = _mm256_loadu_pd(a + 2 * l);
    const __m256d vb = _mm256_loadu_pd(b + 2 * l);
    const __m256d sum = outward_pd4(_mm256_add_pd(va, vb));
    const __m256d empty = _mm256_or_pd(empty_mask4(va), empty_mask4(vb));
    _mm256_storeu_pd(dst + 2 * l,
                     _mm256_blendv_pd(sum, canonical_empty, empty));
  }
  for (; l < lanes; ++l) {  // odd tail: the proven single-interval kernel
    set_iv(dst, l, tkern::add_iv(get_iv(a, l), get_iv(b, l)));
  }
}

BCERT_AVX2_FN void refine_sub_avx2(double* t, const double* r,
                                   const double* s, std::uint8_t* empty,
                                   std::size_t lanes) {
  std::size_t l = 0;
  for (; l + 2 <= lanes; l += 2) {
    const __m256d vs = _mm256_loadu_pd(s + 2 * l);
    const __m256d vr = _mm256_loadu_pd(r + 2 * l);
    const __m256d diff =
        outward_pd4(_mm256_sub_pd(vr, _mm256_permute_pd(vs, 0b0101)));
    const __m256d vt = _mm256_loadu_pd(t + 2 * l);
    // Lo lanes take max(t, diff), hi lanes min(t, diff) — the same
    // operand order (and therefore NaN behavior) as the SSE2 kernel.
    const __m256d res = _mm256_blend_pd(_mm256_max_pd(vt, diff),
                                        _mm256_min_pd(vt, diff), 0b1010);
    _mm256_storeu_pd(t + 2 * l, res);
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(res, _mm256_permute_pd(res, 0b0101), _CMP_GT_OQ));
    if (mask & 0x1) empty[l] = 1;
    if (mask & 0x4) empty[l + 1] = 1;
  }
  for (; l < lanes; ++l) {
    Interval target = get_iv(t, l);
    const bool ok =
        tkern::refine_sub(target, _mm_loadu_pd(r + 2 * l), get_iv(s, l));
    set_iv(t, l, target);
    if (!ok) empty[l] = 1;
  }
}

// The branchy forward lanes (kMulConst / kMul / kDiv) reuse the proven
// single-interval SSE2 kernels per lane: their empty / exact-zero /
// divisor-sign pre-checks dominate, so a two-interval AVX2 widening
// would spend its lanes re-deciding branches, not multiplying.

void forward_mul_const_lanes(double* dst, const double* x, double w,
                             const std::uint8_t* mask, std::size_t lanes) {
  const __m128d vw = _mm_set1_pd(w);
  const bool negative = w < 0.0;
  for (std::size_t l = 0; l < lanes; ++l) {
    if (mask[l]) {
      set_iv(dst, l, tkern::mul_const_iv(get_iv(x, l), vw, negative));
    }
  }
}

void forward_mul_lanes(double* dst, const double* a, const double* b,
                       const std::uint8_t* mask, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    if (mask[l]) set_iv(dst, l, tkern::mul_iv(get_iv(a, l), get_iv(b, l)));
  }
}

void forward_div_lanes(double* dst, const double* a, const double* b,
                       const std::uint8_t* mask, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    if (mask[l]) set_iv(dst, l, tkern::div_iv(get_iv(a, l), get_iv(b, l)));
  }
}

const LaneKernels kAvx2Kernels{forward_add_avx2, refine_sub_avx2,
                               forward_mul_const_lanes, forward_mul_lanes,
                               forward_div_lanes};

}  // namespace

const LaneKernels* avx2_kernels() { return &kAvx2Kernels; }

}  // namespace bcert::smt::bkern

#else  // not a GCC/Clang x86 build: no AVX2 kernels

namespace bcert::smt::bkern {
const LaneKernels* avx2_kernels() { return nullptr; }
}  // namespace bcert::smt::bkern

#endif
