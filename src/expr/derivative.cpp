#include "src/expr/derivative.h"

#include <stdexcept>
#include <unordered_map>

namespace bcert::expr {

namespace {

class Differentiator {
 public:
  Differentiator(ExprPool& pool, std::int32_t var) : pool_(pool), var_(var) {}

  ExprId diff(ExprId id) {
    auto it = memo_.find(id);
    if (it != memo_.end()) return it->second;
    const ExprId result = compute(id);
    memo_.emplace(id, result);
    return result;
  }

 private:
  ExprId compute(ExprId id) {
    ExprPool& p = pool_;
    const Node n = p.node(id);  // copy: pool may reallocate during diff
    switch (n.op) {
      case Op::kConst:
        return p.zero();
      case Op::kVar:
        return n.index == var_ ? p.one() : p.zero();
      case Op::kAdd:
        return p.add(diff(n.a), diff(n.b));
      case Op::kSub:
        return p.sub(diff(n.a), diff(n.b));
      case Op::kMul:
        return p.add(p.mul(diff(n.a), n.b), p.mul(n.a, diff(n.b)));
      case Op::kDiv:
        // (a/b)' = (a'b - ab') / b²
        return p.div(p.sub(p.mul(diff(n.a), n.b), p.mul(n.a, diff(n.b))),
                     p.sqr(n.b));
      case Op::kNeg:
        return p.neg(diff(n.a));
      case Op::kSin:
        return p.mul(p.cos(n.a), diff(n.a));
      case Op::kCos:
        return p.neg(p.mul(p.sin(n.a), diff(n.a)));
      case Op::kTan: {
        // tan' = 1 + tan²
        const ExprId t = p.tan(n.a);
        return p.mul(p.add(p.one(), p.sqr(t)), diff(n.a));
      }
      case Op::kAtan:
        return p.div(diff(n.a), p.add(p.one(), p.sqr(n.a)));
      case Op::kExp:
        return p.mul(p.exp(n.a), diff(n.a));
      case Op::kLog:
        return p.div(diff(n.a), n.a);
      case Op::kSqrt:
        return p.div(diff(n.a), p.mul(p.constant(2.0), p.sqrt(n.a)));
      case Op::kSqr:
        return p.mul(p.mul(p.constant(2.0), n.a), diff(n.a));
      case Op::kPow:
        return p.mul(p.mul(p.constant(static_cast<double>(n.index)),
                           p.pow(n.a, n.index - 1)),
                     diff(n.a));
      case Op::kTanh: {
        // tanh' = 1 - tanh²
        const ExprId t = p.tanh(n.a);
        return p.mul(p.sub(p.one(), p.sqr(t)), diff(n.a));
      }
      case Op::kSigmoid: {
        // σ' = σ(1-σ)
        const ExprId s = p.sigmoid(n.a);
        return p.mul(p.mul(s, p.sub(p.one(), s)), diff(n.a));
      }
      case Op::kRelu: {
        // Sub-gradient: derivative of the active branch via 0.5(sign+1)
        // is overkill for our smooth use cases; encode as max'(a,0) ≈
        // (relu(a)/a is ill-defined at 0) — use the Heaviside surrogate
        // d relu = (sign(a)+1)/2 expressed with abs: (a/|a|+1)/2.
        // For safety verification we never differentiate through relu in
        // the pipeline; reject loudly instead of silently mis-deriving.
        throw std::domain_error(
            "differentiate: relu is not differentiable; use smooth "
            "activations for barrier search");
      }
      case Op::kAbs:
        // d|a| = sign(a)·a' ; encode sign(a) = a/|a| (undefined at 0).
        return p.mul(p.div(n.a, p.abs(n.a)), diff(n.a));
      case Op::kMin:
      case Op::kMax:
        throw std::domain_error(
            "differentiate: min/max are not differentiable; rewrite the "
            "model with smooth functions");
    }
    throw std::logic_error("differentiate: unknown op");
  }

  ExprPool& pool_;
  std::int32_t var_;
  std::unordered_map<ExprId, ExprId> memo_;
};

}  // namespace

ExprId differentiate(ExprPool& pool, ExprId expr, std::int32_t var) {
  Differentiator d(pool, var);
  return d.diff(expr);
}

std::vector<ExprId> gradient(ExprPool& pool, ExprId expr, std::size_t n) {
  std::vector<ExprId> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(differentiate(pool, expr, static_cast<std::int32_t>(i)));
  return out;
}

ExprId lie_derivative(ExprPool& pool, ExprId w,
                      const std::vector<ExprId>& field) {
  std::vector<ExprId> terms;
  terms.reserve(field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    const ExprId dw = differentiate(pool, w, static_cast<std::int32_t>(i));
    terms.push_back(pool.mul(dw, field[i]));
  }
  return pool.sum(terms);
}

}  // namespace bcert::expr
