#pragma once
/// \file constraint.h
/// \brief Atomic real constraints `expr ⋈ 0` for the δ-SAT solver.
///
/// Every constraint is normalized to compare an expression against zero.
/// Strictness matters for the soundness of UNSAT answers (pruning a box
/// against `e < 0` may use `e ≥ 0`, against `e ≤ 0` only `e > 0`).

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "src/expr/expr.h"
#include "src/interval/interval.h"

namespace bcert::smt {

/// Comparison relation against zero.
enum class Rel : std::uint8_t {
  kLe,  ///< expr ≤ 0
  kLt,  ///< expr < 0
  kGe,  ///< expr ≥ 0
  kGt,  ///< expr > 0
  kEq,  ///< expr = 0
};

const char* rel_name(Rel r);

/// One atomic constraint over a shared ExprPool.
struct Constraint {
  expr::ExprId lhs = expr::kNoExpr;
  Rel rel = Rel::kLe;

  /// The set of values of `lhs` consistent with the relation. Strict
  /// relations use the closed hull (sound for contraction; strictness is
  /// applied at pruning time).
  interval::Interval feasible_values() const;

  /// True when an enclosure \p v of lhs over a box proves that *no* point
  /// of the box satisfies the constraint (box can be pruned).
  bool certainly_violated(const interval::Interval& v) const;

  /// True when an enclosure \p v proves that *every* point of the box
  /// satisfies the constraint.
  bool certainly_satisfied(const interval::Interval& v) const;
};

/// Conjunction of atomic constraints (one ICP query).
struct Conjunction {
  std::vector<Constraint> constraints;

  Conjunction() = default;
  explicit Conjunction(std::vector<Constraint> cs)
      : constraints(std::move(cs)) {}

  void add(expr::ExprId lhs, Rel rel) { constraints.push_back({lhs, rel}); }
  std::size_t size() const { return constraints.size(); }
  bool empty() const { return constraints.empty(); }
};

/// Pool-independent 128-bit conjunction identity, the key of the
/// persistent warm-state stores (src/smt/cache_io). Unlike
/// `structural_signature` (unsat_tree.h), which deliberately ignores
/// constant values so consecutive candidates collide, this hash covers
/// the *complete* compiler input of an HC4 tape: every operation, child
/// wiring in order, variable index, pow exponent, constant IEEE-754 bit
/// pattern and constraint relation. Two conjunctions with equal content
/// signatures therefore compile to bit-identical tapes (the tape slot
/// schedule is a pure structural DFS — see Hc4Tape), which is what lets
/// a restarted process adopt a persisted tape without re-deriving it.
/// Collisions would need two different compiler inputs meeting in 128
/// bits — negligible against cache populations of ≤ thousands.
struct Sig128 {
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const Sig128&, const Sig128&) = default;
  friend auto operator<=>(const Sig128&, const Sig128&) = default;
};

Sig128 content_signature(const expr::ExprPool& pool, const Conjunction& c);

/// Disjunction of conjunctions (DNF). The solver answers SAT if any
/// disjunct is satisfiable; UNSAT requires refuting all of them.
struct Dnf {
  std::vector<Conjunction> disjuncts;

  Dnf() = default;
  explicit Dnf(std::vector<Conjunction> ds) : disjuncts(std::move(ds)) {}

  /// Cross product: (this) ∧ (other), both in DNF.
  Dnf conjoin(const Dnf& other) const;

  static Dnf single(Conjunction c) { return Dnf({std::move(c)}); }
};

}  // namespace bcert::smt
