#include "src/smt/constraint.h"

#include <limits>

namespace bcert::smt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

const char* rel_name(Rel r) {
  switch (r) {
    case Rel::kLe: return "<=";
    case Rel::kLt: return "<";
    case Rel::kGe: return ">=";
    case Rel::kGt: return ">";
    case Rel::kEq: return "=";
  }
  return "?";
}

interval::Interval Constraint::feasible_values() const {
  switch (rel) {
    case Rel::kLe:
    case Rel::kLt:
      return {-kInf, 0.0};
    case Rel::kGe:
    case Rel::kGt:
      return {0.0, kInf};
    case Rel::kEq:
      return interval::Interval(0.0);
  }
  return interval::Interval::entire();
}

bool Constraint::certainly_violated(const interval::Interval& v) const {
  if (v.is_empty()) return true;
  switch (rel) {
    case Rel::kLe: return v.lo() > 0.0;   // every point has lhs > 0
    case Rel::kLt: return v.lo() >= 0.0;  // every point has lhs ≥ 0
    case Rel::kGe: return v.hi() < 0.0;
    case Rel::kGt: return v.hi() <= 0.0;
    case Rel::kEq: return !v.contains(0.0);
  }
  return false;
}

bool Constraint::certainly_satisfied(const interval::Interval& v) const {
  if (v.is_empty()) return false;
  switch (rel) {
    case Rel::kLe: return v.hi() <= 0.0;
    case Rel::kLt: return v.hi() < 0.0;
    case Rel::kGe: return v.lo() >= 0.0;
    case Rel::kGt: return v.lo() > 0.0;
    case Rel::kEq: return v.is_point() && v.lo() == 0.0;
  }
  return false;
}

Dnf Dnf::conjoin(const Dnf& other) const {
  Dnf out;
  out.disjuncts.reserve(disjuncts.size() * other.disjuncts.size());
  for (const Conjunction& a : disjuncts) {
    for (const Conjunction& b : other.disjuncts) {
      Conjunction c = a;
      c.constraints.insert(c.constraints.end(), b.constraints.begin(),
                           b.constraints.end());
      out.disjuncts.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace bcert::smt
