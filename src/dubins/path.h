#pragma once
/// \file path.h
/// \brief Target paths and path-following error computation (§4.1.2).
///
/// Angle convention follows the paper: θ is the *clockwise* angle from
/// the positive y-axis, so a heading θ moves along (sin θ, cos θ).
/// The distance error d_err is positive when the vehicle is left of the
/// path (relative to travel direction) and negative on the right.

#include <cstddef>
#include <vector>

#include "src/linalg/vector.h"

namespace bcert::dubins {

/// A point in the plane.
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// Path-following errors at one vehicle pose.
struct PathError {
  double distance = 0.0;  ///< d_err, signed (left positive)
  double angle = 0.0;     ///< θ_err = θ_r − θ_v, wrapped to (−π, π]
  Point2 nearest;         ///< closest point on the path
  double tangent_angle = 0.0;  ///< θ_r at the nearest point
  std::size_t segment = 0;     ///< index of the nearest segment
};

/// Wraps an angle to (−π, π].
double wrap_angle(double a);

/// Heading of a direction vector (dx, dy) in the paper's convention
/// (clockwise from +y): θ = atan2(dx, dy).
double heading_of(double dx, double dy);

/// Piecewise-linear target path (the blue path of Figure 4).
class PiecewiseLinearPath {
 public:
  /// Requires at least two waypoints; consecutive duplicates are ignored.
  explicit PiecewiseLinearPath(std::vector<Point2> waypoints);

  const std::vector<Point2>& waypoints() const { return waypoints_; }
  std::size_t num_segments() const { return waypoints_.size() - 1; }

  Point2 start() const { return waypoints_.front(); }
  Point2 end() const { return waypoints_.back(); }

  /// Total arc length.
  double length() const;

  /// Computes the path-following error for a vehicle at (x, y) heading
  /// θ_v (paper convention).
  PathError error(double xv, double yv, double theta_v) const;

  /// The piecewise-linear training path of Figure 4 (same overall shape:
  /// a few straight legs with moderate turns covering ~200 units).
  static PiecewiseLinearPath figure4_path();

  /// A straight-line path from (0,0) with constant tangent angle
  /// θ_r (paper convention), long enough for any bounded experiment.
  static PiecewiseLinearPath straight(double theta_r, double length = 1e4);

 private:
  std::vector<Point2> waypoints_;
};

}  // namespace bcert::dubins
