#include "src/linalg/matrix.h"

#include <cmath>
#include <ostream>
#include <stdexcept>

namespace bcert::linalg {

namespace {
void check_same_shape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string("Matrix ") + op +
                                ": shape mismatch");
  }
}
}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.size() ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix initializer: ragged rows");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  check_same_shape(*this, rhs, "+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  check_same_shape(*this, rhs, "-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Vector Matrix::row(std::size_t r) const {
  Vector v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::col(std::size_t c) const {
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  if (v.size() != cols_) throw std::invalid_argument("set_row: size mismatch");
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::set_col(std::size_t c, const Vector& v) {
  if (v.size() != rows_) throw std::invalid_argument("set_col: size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

double Matrix::norm_frobenius() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::norm_max() const {
  double acc = 0.0;
  for (double v : data_) acc = std::max(acc, std::fabs(v));
  return acc;
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("Matrix product: inner dimension mismatch");
  }
  Matrix out(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double av = a(r, k);
      if (av == 0.0) continue;
      for (std::size_t c = 0; c < b.cols(); ++c) out(r, c) += av * b(k, c);
    }
  }
  return out;
}

Vector operator*(const Matrix& a, const Vector& x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("Matrix-vector product: dimension mismatch");
  }
  Vector out(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * x[c];
    out[r] = acc;
  }
  return out;
}

void matvec(const Matrix& a, const Vector& x, Vector& out) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("matvec: dimension mismatch");
  }
  out.resize(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * x[c];
    out[r] = acc;
  }
}

double quadratic_form(const Vector& x, const Matrix& a, const Vector& y) {
  if (a.rows() != x.size() || a.cols() != y.size()) {
    throw std::invalid_argument("quadratic_form: dimension mismatch");
  }
  double acc = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double inner = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) inner += a(r, c) * y[c];
    acc += x[r] * inner;
  }
  return acc;
}

Matrix outer(const Vector& x, const Vector& y) {
  Matrix m(x.size(), y.size());
  for (std::size_t r = 0; r < x.size(); ++r)
    for (std::size_t c = 0; c < y.size(); ++c) m(r, c) = x[r] * y[c];
  return m;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << '[';
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (r) os << "; ";
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c) os << ", ";
      os << m(r, c);
    }
  }
  return os << ']';
}

}  // namespace bcert::linalg
