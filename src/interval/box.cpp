#include "src/interval/box.h"

#include <ostream>
#include <stdexcept>

namespace bcert::interval {

Box Box::point(const linalg::Vector& x) {
  std::vector<Interval> dims;
  dims.reserve(x.size());
  for (double v : x) dims.emplace_back(v);
  return Box(std::move(dims));
}

Box Box::from_bounds(const std::vector<std::pair<double, double>>& b) {
  std::vector<Interval> dims;
  dims.reserve(b.size());
  for (const auto& [lo, hi] : b) dims.emplace_back(lo, hi);
  return Box(std::move(dims));
}

bool Box::is_empty() const {
  for (const Interval& d : dims_)
    if (d.is_empty()) return true;
  return false;
}

double Box::max_width() const {
  double w = 0.0;
  for (const Interval& d : dims_) w = std::max(w, d.width());
  return w;
}

std::size_t Box::widest_dim() const {
  std::size_t best = 0;
  double w = -1.0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].width() > w) {
      w = dims_[i].width();
      best = i;
    }
  }
  return best;
}

linalg::Vector Box::midpoint() const {
  linalg::Vector m(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) m[i] = dims_[i].mid();
  return m;
}

double Box::perimeter() const {
  double acc = 0.0;
  for (const Interval& d : dims_) acc += d.width();
  return acc;
}

double Box::volume() const {
  if (dims_.empty() || is_empty()) return 0.0;
  double acc = 1.0;
  for (const Interval& d : dims_) acc *= d.width();
  return acc;
}

bool Box::contains(const linalg::Vector& x) const {
  if (x.size() != dims_.size()) return false;
  for (std::size_t i = 0; i < dims_.size(); ++i)
    if (!dims_[i].contains(x[i])) return false;
  return true;
}

bool Box::contains(const Box& o) const {
  if (o.size() != dims_.size()) return false;
  for (std::size_t i = 0; i < dims_.size(); ++i)
    if (!dims_[i].contains(o[i])) return false;
  return true;
}

std::pair<Box, Box> Box::split(std::size_t dim) const {
  if (dim >= dims_.size()) throw std::out_of_range("Box::split");
  Box left = *this, right = *this;
  const double m = dims_[dim].mid();
  left[dim] = Interval(dims_[dim].lo(), m);
  right[dim] = Interval(m, dims_[dim].hi());
  return {std::move(left), std::move(right)};
}

Box intersect(const Box& a, const Box& b) {
  if (a.size() != b.size()) throw std::invalid_argument("Box intersect: dims");
  std::vector<Interval> dims;
  dims.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    dims.push_back(intersect(a[i], b[i]));
  return Box(std::move(dims));
}

Box hull(const Box& a, const Box& b) {
  if (a.size() != b.size()) throw std::invalid_argument("Box hull: dims");
  std::vector<Interval> dims;
  dims.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) dims.push_back(hull(a[i], b[i]));
  return Box(std::move(dims));
}

std::ostream& operator<<(std::ostream& os, const Box& b) {
  os << '{';
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (i) os << " x ";
    os << b[i];
  }
  return os << '}';
}

}  // namespace bcert::interval
