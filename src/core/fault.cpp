#include "src/core/fault.h"

#include <array>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace bcert::core {

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kResourceExhausted:
      return "resource_exhausted";
    case ErrorCode::kFaultInjected:
      return "fault_injected";
    case ErrorCode::kWorkerStuck:
      return "worker_stuck";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

const char* fault_point_name(FaultPoint p) {
  switch (p) {
    case FaultPoint::kTapeCompile:
      return "tape_compile";
    case FaultPoint::kJitCompile:
      return "jit_compile";
    case FaultPoint::kHc4Backward:
      return "hc4_backward";
    case FaultPoint::kLpPivot:
      return "lp_pivot";
    case FaultPoint::kLpSolve:
      return "lp_solve";
    case FaultPoint::kCacheLookup:
      return "cache_lookup";
    case FaultPoint::kSimdDispatch:
      return "simd_dispatch";
    case FaultPoint::kWorkerDispatch:
      return "worker_dispatch";
    case FaultPoint::kAlloc:
      return "alloc";
    case FaultPoint::kCacheSerialize:
      return "cache_serialize";
    case FaultPoint::kSocketIo:
      return "socket_io";
    case FaultPoint::kNumPoints_:
      break;
  }
  return "unknown";
}

FaultInjected::FaultInjected(FaultPoint point)
    : std::runtime_error(std::string("injected fault at ") +
                         fault_point_name(point)),
      point_(point) {}

namespace detail {
std::atomic<bool> g_faults_enabled{false};
}  // namespace detail

namespace {

enum class FaultAction : std::uint8_t { kThrow, kDelay };

/// One armed rule. `at` fires on exactly that 1-based hit; `every` fires
/// whenever hit % every == 0. Exactly one of the two is set.
struct FaultRule {
  FaultAction action = FaultAction::kThrow;
  int delay_ms = 0;
  std::uint64_t at = 0;     // 0 = unused
  std::uint64_t every = 1;  // used when at == 0
};

struct PointState {
  std::vector<FaultRule> rules;
  std::atomic<std::uint64_t> hits{0};
};

struct RegistryState {
  std::mutex mu;  // guards rule installation, not the hot-path reads
  std::array<PointState, kNumFaultPoints> points;
};

RegistryState& registry() {
  static RegistryState* s = new RegistryState;  // leaked: outlives workers
  return *s;
}

bool parse_point(const std::string& name, FaultPoint* out) {
  for (std::size_t i = 0; i < kNumFaultPoints; ++i) {
    const auto p = static_cast<FaultPoint>(i);
    if (name == fault_point_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v == 0) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

/// Parses one `point:action[@trigger]` entry into (point, rule).
bool parse_entry(const std::string& entry, FaultPoint* point, FaultRule* rule,
                 std::string* error) {
  const std::size_t colon = entry.find(':');
  if (colon == std::string::npos) {
    *error = "missing ':' in fault entry '" + entry + "'";
    return false;
  }
  if (!parse_point(entry.substr(0, colon), point)) {
    *error = "unknown fault point '" + entry.substr(0, colon) + "'";
    return false;
  }

  std::string action = entry.substr(colon + 1);
  const std::size_t at = action.find('@');
  std::string trigger;
  if (at != std::string::npos) {
    trigger = action.substr(at + 1);
    action.resize(at);
  }

  *rule = FaultRule{};
  if (action == "throw") {
    rule->action = FaultAction::kThrow;
  } else if (action.rfind("delay=", 0) == 0) {
    std::string ms = action.substr(6);
    if (ms.size() > 2 && ms.compare(ms.size() - 2, 2, "ms") == 0) {
      ms.resize(ms.size() - 2);
    }
    std::uint64_t v = 0;
    if (!parse_u64(ms, &v) || v > 60'000) {
      *error = "bad delay in fault entry '" + entry + "'";
      return false;
    }
    rule->action = FaultAction::kDelay;
    rule->delay_ms = static_cast<int>(v);
  } else {
    *error = "unknown fault action '" + action + "' in '" + entry + "'";
    return false;
  }

  if (!trigger.empty()) {
    if (trigger.rfind("every:", 0) == 0) {
      if (!parse_u64(trigger.substr(6), &rule->every)) {
        *error = "bad trigger in fault entry '" + entry + "'";
        return false;
      }
    } else if (!parse_u64(trigger, &rule->at)) {
      *error = "bad trigger in fault entry '" + entry + "'";
      return false;
    }
  }
  return true;
}

/// Evaluates \p p's rules against a fresh hit. Returns the matched rule
/// (by value; rules are immutable once installed) or nullopt.
const FaultRule* match_rule(FaultPoint p, std::uint64_t hit) {
  PointState& st = registry().points[static_cast<std::size_t>(p)];
  for (const FaultRule& r : st.rules) {
    if (r.at != 0 ? hit == r.at : hit % r.every == 0) return &r;
  }
  return nullptr;
}

std::uint64_t record_hit(FaultPoint p) {
  PointState& st = registry().points[static_cast<std::size_t>(p)];
  return st.hits.fetch_add(1, std::memory_order_relaxed) + 1;
}

void apply_delay(const FaultRule& r) {
  if (r.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(r.delay_ms));
  }
}

}  // namespace

namespace detail {

void fault_check_slow(FaultPoint p) {
  const std::uint64_t hit = record_hit(p);
  const FaultRule* r = match_rule(p, hit);
  if (r == nullptr) return;
  if (r->action == FaultAction::kDelay) {
    apply_delay(*r);
    return;
  }
  throw FaultInjected(p);
}

bool fault_trip_slow(FaultPoint p) {
  const std::uint64_t hit = record_hit(p);
  const FaultRule* r = match_rule(p, hit);
  if (r == nullptr) return false;
  apply_delay(*r);
  return true;
}

}  // namespace detail

namespace {

using ParsedRules = std::array<std::vector<FaultRule>, kNumFaultPoints>;

bool parse_spec(const std::string& spec, ParsedRules& parsed,
                std::vector<std::string>* errors) {
  bool ok = true;
  std::size_t begin = 0;
  while (begin <= spec.size() && !spec.empty()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    FaultPoint point{};
    FaultRule rule;
    std::string error;
    if (!parse_entry(entry, &point, &rule, &error)) {
      if (errors != nullptr) errors->push_back(error);
      ok = false;
      continue;
    }
    parsed[static_cast<std::size_t>(point)].push_back(rule);
  }
  return ok;
}

}  // namespace

bool FaultRegistry::validate(const std::string& spec,
                             std::vector<std::string>* errors) {
  ParsedRules parsed;
  return parse_spec(spec, parsed, errors);
}

bool FaultRegistry::configure(const std::string& spec,
                              std::vector<std::string>* errors) {
  ParsedRules parsed;
  if (!parse_spec(spec, parsed, errors)) return false;

  RegistryState& s = registry();
  std::lock_guard<std::mutex> lock(s.mu);
  bool any = false;
  for (std::size_t i = 0; i < kNumFaultPoints; ++i) {
    s.points[i].rules = std::move(parsed[i]);
    s.points[i].hits.store(0, std::memory_order_relaxed);
    any = any || !s.points[i].rules.empty();
  }
  detail::g_faults_enabled.store(any, std::memory_order_relaxed);
  return true;
}

void FaultRegistry::clear() {
  RegistryState& s = registry();
  std::lock_guard<std::mutex> lock(s.mu);
  detail::g_faults_enabled.store(false, std::memory_order_relaxed);
  for (PointState& p : s.points) {
    p.rules.clear();
    p.hits.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t FaultRegistry::hits(FaultPoint p) {
  return registry()
      .points[static_cast<std::size_t>(p)]
      .hits.load(std::memory_order_relaxed);
}

}  // namespace bcert::core
