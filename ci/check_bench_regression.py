#!/usr/bin/env python3
"""Benchmark regression gate for the BENCH_*.json perf trajectory.

Compares a freshly measured bench report against the committed baseline
and fails (exit 1) when a gated metric drops by more than the allowed
fraction. Metrics are given as RECORD:FIELD pairs, e.g.

    check_bench_regression.py BENCH_micro.json build/BENCH_micro.json \
        --metric hc4_contract_tape:speedup \
        --metric lp_solve:warm_speedup --max-drop 0.20

Ratio-style fields (speedup, warm_speedup) are machine-independent,
which is what a gate running on heterogeneous CI machines should
compare; throughput fields (boxes_per_sec, items_per_sec, ...) only
make sense against a baseline measured on comparable hardware. A gated
record missing from the current report is always a failure (the
benchmark silently disappearing is the worst kind of regression); one
missing from the baseline is skipped with a note so new benchmarks can
land before their first baseline is committed.
"""

import argparse
import json
import sys


def load_results(path):
    with open(path) as f:
        data = json.load(f)
    return {r["name"]: r for r in data.get("results", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed baseline BENCH_*.json")
    ap.add_argument("current", help="freshly measured BENCH_*.json")
    ap.add_argument(
        "--metric",
        action="append",
        required=True,
        help="record:field to gate (repeatable), e.g. hc4_contract_tape:speedup",
    )
    ap.add_argument(
        "--max-drop",
        type=float,
        default=0.20,
        help="maximum allowed fractional drop vs baseline (default 0.20)",
    )
    args = ap.parse_args()

    baseline = load_results(args.baseline)
    current = load_results(args.current)

    failures = []
    for metric in args.metric:
        record, _, field = metric.partition(":")
        if not field:
            ap.error(f"--metric must be RECORD:FIELD, got {metric!r}")
        cur = current.get(record)
        if cur is None or field not in cur:
            failures.append(f"{metric}: missing from current report")
            continue
        base = baseline.get(record)
        if base is None or field not in base:
            print(f"note: {metric}: no baseline yet, skipping")
            continue
        allowed = base[field] * (1.0 - args.max_drop)
        status = "ok" if cur[field] >= allowed else "FAIL"
        print(
            f"{status}: {metric}: current {cur[field]:.4g} vs baseline "
            f"{base[field]:.4g} (floor {allowed:.4g})"
        )
        if cur[field] < allowed:
            failures.append(
                f"{metric}: {cur[field]:.4g} < {allowed:.4g} "
                f"(>{args.max_drop:.0%} drop from {base[field]:.4g})"
            )

    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("benchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
