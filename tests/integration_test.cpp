// Cross-module integration tests: the full train/distill → export →
// verify → validate loop, robustness of the verifier options, and the
// pendulum second-domain problem from the examples.
#include <cmath>
#include <fstream>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/verifier.h"
#include "src/dubins/error_dynamics.h"
#include "src/dubins/training.h"
#include "src/nn/elm.h"

namespace bcert {
namespace {

using linalg::Vector;
constexpr double kPi = 3.14159265358979323846;

core::BarrierProblem dubins_problem(expr::ExprPool& pool,
                                    const nn::FeedforwardNet& controller) {
  const dubins::ErrorModel model{1.0, 0.0};
  core::BarrierProblem p;
  p.pool = &pool;
  p.sim_field = dubins::closed_loop_field(model, controller);
  p.sym_field = dubins::closed_loop_field_expr(model, controller, pool);
  p.initial_set = {{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}};
  p.safe_rect = {{-5.0, -(kPi / 2.0 - 0.01)}, {5.0, kPi / 2.0 - 0.01}};
  return p;
}

TEST(Integration, SaveLoadVerifyRoundTrip) {
  // Serialize a verified controller; the loaded copy must verify with an
  // identical certificate (bitwise-equal weights → same LP → same W).
  const nn::FeedforwardNet original =
      dubins::distill_controller(dubins::proportional_teacher(), 15, 3);
  std::stringstream ss;
  original.save(ss);
  const nn::FeedforwardNet loaded = nn::FeedforwardNet::load(ss);

  expr::ExprPool pool_a, pool_b;
  core::BarrierVerifier va(dubins_problem(pool_a, original), {});
  core::BarrierVerifier vb(dubins_problem(pool_b, loaded), {});
  const core::VerifyResult ra = va.verify();
  const core::VerifyResult rb = vb.verify();
  ASSERT_TRUE(ra.safe());
  ASSERT_TRUE(rb.safe());
  EXPECT_EQ(ra.generator->coeffs().raw(), rb.generator->coeffs().raw());
  EXPECT_DOUBLE_EQ(ra.level, rb.level);
}

TEST(Integration, TrainedControllerVerifies) {
  // A *policy-searched* controller (short budget, rollouts across the
  // domain, rescaled angle weight — see DESIGN.md §6) verifies SAFE.
  dubins::TrainOptions topts;
  topts.hidden_neurons = 8;
  topts.iterations = 40;
  topts.population = 40;
  topts.sim.velocity = 1.0;
  topts.sim.dt = 0.1;
  topts.sim.steps = 400;
  topts.weights.angle = 1e3;
  topts.start_offsets = dubins::verification_offsets();
  topts.seed = 12;
  const dubins::PiecewiseLinearPath path(
      {{0.0, 0.0}, {12.0, 8.0}, {24.0, 10.0}, {36.0, 18.0}});
  const dubins::TrainResult tr = train_controller(path, topts);

  expr::ExprPool pool;
  core::BarrierVerifier verifier(dubins_problem(pool, tr.controller), {});
  const core::VerifyResult r = verifier.verify();
  EXPECT_EQ(r.status, core::VerifyStatus::kSafe)
      << verify_status_name(r.status);
}

TEST(Integration, OffsetStartRealizesRequestedErrors) {
  const dubins::PiecewiseLinearPath path({{0.0, 0.0}, {10.0, 5.0}});
  for (const auto& [d0, th0] : dubins::verification_offsets()) {
    const dubins::VehicleState s = offset_start(path, d0, th0);
    const dubins::PathError e = path.error(s.x, s.y, s.theta);
    EXPECT_NEAR(e.distance, d0, 1e-9) << d0 << "," << th0;
    EXPECT_NEAR(e.angle, th0, 1e-9) << d0 << "," << th0;
  }
}

TEST(Integration, PendulumSecondDomainVerifies) {
  const nn::TeacherFn teacher = [](const Vector& x) {
    return Vector{std::tanh(-2.0 * x[0] - 1.5 * x[1])};
  };
  nn::ElmOptions eopts;
  eopts.hidden = 12;
  eopts.samples = 400;
  const nn::FeedforwardNet controller = nn::elm_fit(
      teacher, 2, 1, Vector{-1.4, -1.7}, Vector{1.4, 1.7}, eopts);

  expr::ExprPool pool;
  core::BarrierProblem p;
  p.pool = &pool;
  const nn::FeedforwardNet net = controller;
  p.sim_field = [net](const Vector& x) {
    return Vector{x[1], std::sin(x[0]) + 3.0 * net.forward(x)[0]};
  };
  const expr::ExprId th = pool.var(0), om = pool.var(1);
  const expr::ExprId u = controller.to_expr(pool, {th, om})[0];
  p.sym_field = {om, pool.add(pool.sin(th),
                              pool.mul(pool.constant(3.0), u))};
  p.initial_set = {{-0.2, -0.2}, {0.2, 0.2}};
  p.safe_rect = {{-1.2, -1.5}, {1.2, 1.5}};

  core::VerifierOptions opts;
  opts.trace_duration = 20.0;
  core::BarrierVerifier verifier(p, opts);
  const core::VerifyResult r = verifier.verify();
  ASSERT_EQ(r.status, core::VerifyStatus::kSafe)
      << verify_status_name(r.status);

  // Spot-check the barrier conditions numerically on a grid of D \ X0.
  for (double a = -1.15; a <= 1.15; a += 0.1) {
    for (double b = -1.45; b <= 1.45; b += 0.1) {
      const Vector x{a, b};
      if (p.initial_set.contains(x)) continue;
      if (std::fabs(r.generator->value(x) - r.level) < 0.05) {
        // Near the barrier boundary: W must strictly decrease.
        EXPECT_LT(dot(r.generator->gradient(x), p.sim_field(x)), 0.0);
      }
    }
  }
}

TEST(Integration, AdaptiveDeltaRescuesCoarseDelta) {
  // With a deliberately coarse delta, the raw query yields a spurious
  // delta-SAT; adaptive refinement must still complete the proof.
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 30, 5);

  expr::ExprPool pool_a;
  core::VerifierOptions coarse;
  coarse.icp.delta = 5e-2;
  coarse.adaptive_delta = false;
  coarse.max_candidate_iterations = 3;
  core::BarrierVerifier va(dubins_problem(pool_a, controller), coarse);
  const core::VerifyResult ra = va.verify();
  EXPECT_NE(ra.status, core::VerifyStatus::kSafe);

  expr::ExprPool pool_b;
  core::VerifierOptions adaptive = coarse;
  adaptive.adaptive_delta = true;
  core::BarrierVerifier vb(dubins_problem(pool_b, controller), adaptive);
  const core::VerifyResult rb = vb.verify();
  EXPECT_EQ(rb.status, core::VerifyStatus::kSafe)
      << verify_status_name(rb.status);
}

TEST(Integration, SolverBudgetReportedHonestly) {
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 30, 5);
  expr::ExprPool pool;
  core::VerifierOptions opts;
  opts.icp.max_boxes = 10;  // absurdly small budget
  opts.adaptive_delta = false;
  core::BarrierVerifier verifier(dubins_problem(pool, controller), opts);
  const core::VerifyResult r = verifier.verify();
  EXPECT_EQ(r.status, core::VerifyStatus::kSolverBudget);
}

TEST(Integration, TimingColumnsAreConsistent) {
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 9);
  expr::ExprPool pool;
  core::BarrierVerifier verifier(dubins_problem(pool, controller), {});
  const core::VerifyResult r = verifier.verify();
  ASSERT_TRUE(r.safe());
  const core::VerifyTimings& t = r.timings;
  EXPECT_GT(t.lp_solves, 0);
  EXPECT_GT(t.smt5_queries, 0);
  EXPECT_GE(t.generator_time_s, t.lp_time_s);
  EXPECT_GE(t.total_time_s,
            t.generator_time_s + t.level_set_time_s - 1e-9);
  EXPECT_GE(t.other_time_s(), -1e-9);
  EXPECT_GT(t.avg_lp_time_s(), 0.0);
  EXPECT_GT(t.avg_smt5_time_s(), 0.0);
}

TEST(Integration, CheckCertificateAuditsStoredPair) {
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 42);
  expr::ExprPool pool;
  core::BarrierVerifier verifier(dubins_problem(pool, controller), {});
  const core::VerifyResult r = verifier.verify();
  ASSERT_TRUE(r.safe());

  // The synthesized pair re-checks clean.
  EXPECT_EQ(verifier.check_certificate(*r.generator, r.level),
            core::VerifyStatus::kSafe);
  // A level outside the window is rejected with the right diagnosis.
  EXPECT_EQ(verifier.check_certificate(*r.generator, r.level * 10.0),
            core::VerifyStatus::kLevelSetFailed);
  EXPECT_EQ(verifier.check_certificate(*r.generator, r.level * 0.05),
            core::VerifyStatus::kLevelSetFailed);
  // A non-PD form is rejected outright.
  core::QuadraticForm indefinite(2, Vector{1.0, 3.0, 1.0});
  EXPECT_EQ(verifier.check_certificate(indefinite, 1.0),
            core::VerifyStatus::kLevelSetFailed);
  // A form that is not a generator fails the decrease re-check.
  core::QuadraticForm not_generator(2, Vector{1.0, 0.0, 0.001});
  EXPECT_EQ(verifier.check_certificate(not_generator, 0.5),
            core::VerifyStatus::kMaxCandidateIterations);
}

TEST(Integration, ThetaRInvariance) {
  // The paper's ḋ expression −V sin(θr−θ)cos(θr) + V cos(θr−θ)sin(θr)
  // reduces to V sin(θ) for any constant θr; the verifier must therefore
  // produce the same verdict (and essentially the same certificate)
  // regardless of the target-path angle. This pushes the full
  // trigonometric expression — not the simplified form — through the
  // symbolic pipeline and the ICP solver.
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 42);
  std::optional<double> level0;
  for (const double theta_r : {0.0, 0.5, -1.1}) {
    expr::ExprPool pool;
    const dubins::ErrorModel model{1.0, theta_r};
    core::BarrierProblem p;
    p.pool = &pool;
    p.sim_field = dubins::closed_loop_field(model, controller);
    p.sym_field = dubins::closed_loop_field_expr(model, controller, pool);
    p.initial_set = {{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}};
    p.safe_rect = {{-5.0, -(kPi / 2.0 - 0.01)}, {5.0, kPi / 2.0 - 0.01}};
    core::BarrierVerifier verifier(p, {});
    const core::VerifyResult r = verifier.verify();
    ASSERT_TRUE(r.safe()) << "theta_r = " << theta_r << ": "
                          << verify_status_name(r.status);
    if (!level0) {
      level0 = r.level;
    } else {
      EXPECT_NEAR(r.level, *level0, 0.2) << theta_r;
    }
  }
}

TEST(Integration, SmtLibQueryExport) {
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 42);
  expr::ExprPool pool;
  core::BarrierVerifier verifier(dubins_problem(pool, controller), {});
  const core::VerifyResult r = verifier.verify();
  ASSERT_TRUE(r.safe());
  const std::string prefix =
      ::testing::TempDir() + "/bcert_query";
  verifier.export_queries_smtlib(*r.generator, r.level, prefix);
  for (const char* suffix : {"_decrease", "_initial", "_unsafe"}) {
    std::ifstream is(prefix + suffix + ".smt2");
    ASSERT_TRUE(is.good()) << suffix;
    std::stringstream buf;
    buf << is.rdbuf();
    const std::string content = buf.str();
    EXPECT_NE(content.find("(set-logic QF_NRA)"), std::string::npos);
    EXPECT_NE(content.find("(check-sat)"), std::string::npos);
    // The decrease query embeds the NN (tanh terms).
    if (std::string(suffix) == "_decrease") {
      EXPECT_NE(content.find("tanh"), std::string::npos);
    }
  }
}

TEST(Integration, LpInfeasibleSurfacesBindingStates) {
  // A destabilizing controller makes the synthesis LP infeasible; the
  // verifier must surface binding states as actionable counterexamples.
  nn::FeedforwardNet bad = nn::FeedforwardNet::single_hidden(2, 4, 1);
  bad.layer(0).weights = linalg::Matrix{{-0.5, -2.0}, {0.0, 0.0}};
  bad.layer(0).bias = Vector{0.0, 0.0};
  bad.layer(1).weights = linalg::Matrix{{5.0, 0.0}};
  bad.layer(1).bias = Vector{0.0};
  expr::ExprPool pool;
  core::VerifierOptions opts;
  opts.max_candidate_iterations = 2;
  core::BarrierVerifier verifier(dubins_problem(pool, bad), opts);
  const core::VerifyResult r = verifier.verify();
  if (r.status == core::VerifyStatus::kLpInfeasible) {
    EXPECT_FALSE(r.counterexamples.empty());
    for (const Vector& cex : r.counterexamples) {
      EXPECT_TRUE(verifier.problem().safe_rect.contains(cex));
    }
  } else {
    EXPECT_NE(r.status, core::VerifyStatus::kSafe);
  }
}

// The certificate is a *separating* object: scale it and the level
// together and it still separates (sanity on the geometry helpers).
TEST(Integration, CertificateScalingInvariance) {
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 21);
  expr::ExprPool pool;
  const core::BarrierProblem problem = dubins_problem(pool, controller);
  core::BarrierVerifier verifier(problem, {});
  const core::VerifyResult r = verifier.verify();
  ASSERT_TRUE(r.safe());
  core::QuadraticForm scaled(2, r.generator->coeffs() * 0.5);
  for (const Vector& v : problem.initial_set.vertices()) {
    EXPECT_LE(scaled.value(v), 0.5 * r.level + 1e-12);
  }
}

}  // namespace
}  // namespace bcert
