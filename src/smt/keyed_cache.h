#pragma once
/// \file keyed_cache.h
/// \brief Bounded, thread-safe keyed LRU store with hit/miss statistics.
///
/// The multi-query machinery of the SMT layer keeps two kinds of
/// compiled artifacts alive across the verifier's LP ↔ SMT refinement
/// loop: HC4 tapes (`TapeCache`) and terminal UNSAT box trees
/// (`UnsatTreeCache`). Both need the same store semantics — shared
/// ownership of immutable values, a hard entry cap so week-long synthesis
/// runs cannot grow without limit, least-recently-used eviction (the
/// candidate loop's working set is the current candidate × a few check
/// kinds; anything older is dead weight), and counters that make cache
/// effectiveness observable from tests and benches. `KeyedLruCache` is
/// that store; the two caches are thin typed wrappers over it.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace bcert::smt {

/// Cache effectiveness counters (monotonic; snapshot via stats()).
struct KeyedCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      ///< get() calls that found nothing
  std::uint64_t insertions = 0;  ///< entries actually added by put()
  std::uint64_t evictions = 0;   ///< entries dropped by the LRU cap
  std::size_t entries = 0;       ///< current size
  std::size_t capacity = 0;
};

/// Thread-safe LRU map from Key (any strict-weak-ordered type) to
/// shared, immutable values. All operations take one internal lock and
/// do O(log n) map work — the values these caches hold cost milliseconds
/// to build, so the store is never the bottleneck.
template <typename Key, typename Value>
class KeyedLruCache {
 public:
  /// Cache holding at most \p capacity entries (≥ 1).
  explicit KeyedLruCache(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Returns the cached value (bumping it to most-recent) or null.
  std::shared_ptr<Value> get(const Key& key) {
    std::lock_guard<std::mutex> lock(m_);
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second.pos);
    return it->second.value;
  }

  /// Inserts \p value under \p key, evicting the least-recently-used
  /// entries beyond capacity. When the key is already present:
  /// \p replace = true overwrites (newer artifact wins — the UNSAT-tree
  /// pattern), false keeps the resident value (equivalent-artifact
  /// pattern: racing compiles of the same tape). Returns the value now
  /// resident under the key.
  std::shared_ptr<Value> put(const Key& key, std::shared_ptr<Value> value,
                             bool replace = true) {
    std::lock_guard<std::mutex> lock(m_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      order_.splice(order_.begin(), order_, it->second.pos);
      if (replace) it->second.value = std::move(value);
      return it->second.value;
    }
    order_.push_front(key);
    map_.emplace(key, Entry{value, order_.begin()});
    ++stats_.insertions;
    while (map_.size() > capacity_) {
      map_.erase(order_.back());
      order_.pop_back();
      ++stats_.evictions;
    }
    return value;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(m_);
    return map_.size();
  }

  /// Consistent copy of the resident entries in most-recently-used
  /// order — what the warm-state snapshot writer serializes. Values are
  /// shared (immutable), so this is O(n) pointer copies, not deep ones.
  std::vector<std::pair<Key, std::shared_ptr<Value>>> snapshot() const {
    std::lock_guard<std::mutex> lock(m_);
    std::vector<std::pair<Key, std::shared_ptr<Value>>> out;
    out.reserve(map_.size());
    for (const Key& key : order_) {
      const auto it = map_.find(key);
      if (it != map_.end()) out.emplace_back(key, it->second.value);
    }
    return out;
  }

  KeyedCacheStats stats() const {
    std::lock_guard<std::mutex> lock(m_);
    KeyedCacheStats s = stats_;
    s.entries = map_.size();
    s.capacity = capacity_;
    return s;
  }

 private:
  struct Entry {
    std::shared_ptr<Value> value;
    typename std::list<Key>::iterator pos;  ///< position in order_
  };

  const std::size_t capacity_;
  mutable std::mutex m_;
  std::list<Key> order_;  ///< front = most recently used
  std::map<Key, Entry> map_;
  KeyedCacheStats stats_;
};

}  // namespace bcert::smt
