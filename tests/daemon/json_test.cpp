// Strict-JSON parser tests for the bcertd line protocol: RFC-8259
// acceptance (escapes, surrogate pairs, nesting, duplicate keys) and
// the rejection paths a hostile or buggy client can hit (trailing
// input, leading zeros, raw control characters, depth bombs, truncated
// documents). Every rejection must come back as false + a positioned
// error, never a throw — the server turns these into protocol errors.
#include <string>

#include <gtest/gtest.h>

#include "src/daemon/json.h"

namespace bcert::daemon {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(JsonValue::parse(text, v, &error)) << text << ": " << error;
  return v;
}

void expect_reject(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(JsonValue::parse(text, v, &error)) << "accepted: " << text;
  EXPECT_NE(error.find("offset"), std::string::npos)
      << "error lacks position: " << error;
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_ok("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(parse_ok("-12.5e2").as_number(), -1250.0);
  EXPECT_DOUBLE_EQ(parse_ok("1e-3").as_number(), 1e-3);
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_ok("  42  ").as_number(), 42.0);
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\/d\n\t\r\f\b")").as_string(),
            "a\"b\\c/d\n\t\r\f\b");
  EXPECT_EQ(parse_ok(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 → 4-byte UTF-8.
  EXPECT_EQ(parse_ok(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, ParsesContainers) {
  const JsonValue v = parse_ok(
      R"({"cmd":"submit","scenario":{"seed":7,"index":0},"tags":[1,2,3]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.string_or("cmd", ""), "submit");
  const JsonValue* scenario = v.find("scenario");
  ASSERT_NE(scenario, nullptr);
  EXPECT_DOUBLE_EQ(scenario->number_or("seed", 0.0), 7.0);
  const JsonValue* tags = v.find("tags");
  ASSERT_NE(tags, nullptr);
  ASSERT_EQ(tags->items().size(), 3u);
  EXPECT_DOUBLE_EQ(tags->items()[2].as_number(), 3.0);

  EXPECT_TRUE(parse_ok("{}").members().empty());
  EXPECT_TRUE(parse_ok("[]").items().empty());
}

TEST(Json, DuplicateKeysLastWinsAtLookup) {
  const JsonValue v = parse_ok(R"({"a":1,"a":2})");
  ASSERT_EQ(v.members().size(), 2u);  // document order retained
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->as_number(), 2.0);
}

TEST(Json, TypedLookupsFallBackOnWrongType) {
  const JsonValue v = parse_ok(R"({"n":"not a number","s":3,"b":"x"})");
  EXPECT_DOUBLE_EQ(v.number_or("n", -1.0), -1.0);
  EXPECT_EQ(v.string_or("s", "fallback"), "fallback");
  EXPECT_TRUE(v.bool_or("b", true));
  EXPECT_DOUBLE_EQ(v.number_or("missing", 9.0), 9.0);
}

TEST(Json, RejectsMalformedDocuments) {
  expect_reject("");
  expect_reject("{");
  expect_reject("[1,2");
  expect_reject("{\"a\":}");
  expect_reject("{\"a\" 1}");
  expect_reject("{a:1}");          // unquoted key
  expect_reject("[1,]");           // trailing comma
  expect_reject("{} {}");          // trailing input
  expect_reject("nul");
  expect_reject("truth");
}

TEST(Json, RejectsMalformedNumbers) {
  expect_reject("01");      // leading zero
  expect_reject("-");
  expect_reject("1.");      // digit required after '.'
  expect_reject(".5");
  expect_reject("1e");
  expect_reject("+1");
  expect_reject("NaN");
  expect_reject("Infinity");
}

TEST(Json, RejectsMalformedStrings) {
  expect_reject("\"unterminated");
  expect_reject("\"bad \\x escape\"");
  expect_reject("\"\\u12\"");           // short unicode escape
  expect_reject("\"\\ud83d\"");         // lone high surrogate
  expect_reject("\"\\ude00\"");         // lone low surrogate
  expect_reject(std::string("\"raw\tcontrol\""));  // unescaped control char
  expect_reject(std::string("\"nul\0byte\"", 10));
}

TEST(Json, RejectsDepthBomb) {
  // 64 levels parse; 100 must hit the recursion cap, not the stack.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  expect_reject(deep);

  std::string ok(40, '[');
  ok += std::string(40, ']');
  parse_ok(ok);
}

}  // namespace
}  // namespace bcert::daemon
