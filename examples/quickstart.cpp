// Quickstart: prove safety of a simple closed-loop system end to end.
//
// System: Dubins-car path-following error dynamics (the paper's case
// study) with a 10-neuron tanh controller distilled from a proportional
// steering law. The program synthesizes a barrier certificate and prints
// it together with the Table-1-style timing columns.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/engine.h"
#include "src/dubins/error_dynamics.h"
#include "src/dubins/training.h"
#include "src/expr/printer.h"

int main() {
  using namespace bcert;

  // 1. A controller: u = h(d_err, θ_err), one hidden tanh layer.
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10);

  // 2. The closed-loop model, numeric + symbolic (same weights).
  expr::ExprPool pool;
  const dubins::ErrorModel model{/*velocity=*/1.0, /*theta_r=*/0.0};
  core::BarrierProblem problem;
  problem.pool = &pool;
  problem.sim_field = dubins::closed_loop_field(model, controller);
  problem.sym_field = dubins::closed_loop_field_expr(model, controller, pool);

  // 3. Regions exactly as in §4.3 of the paper.
  constexpr double kPi = 3.14159265358979323846;
  constexpr double kEps = 0.01;
  problem.initial_set = {{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}};
  problem.safe_rect = {{-5.0, -(kPi / 2.0 - kEps)}, {5.0, kPi / 2.0 - kEps}};

  // 4. Verify through the Engine (shared caches + async-capable API;
  // for one-shot use, Engine::verify is the blocking entry point).
  Engine engine;
  JobOptions job;
  job.verify.icp.delta = 1e-3;
  const core::VerifyResult result = engine.verify(problem, job);

  std::printf("status:        %s\n", verify_status_name(result.status));
  if (result.generator) {
    const std::string w =
        to_string(pool, result.generator->to_expr(pool), {"d", "th"});
    std::printf("generator W =  %s\n", w.c_str());
  }
  if (result.safe()) {
    std::printf("level    l =   %.6f\n", result.level);
    std::printf("barrier  B(x) = W(x) - l  certifies the system SAFE:\n");
    std::printf("  no trajectory from X0 = [-1,1]x[-pi/16,pi/16] ever\n");
    std::printf("  reaches U (|d|>5 or |th|>pi/2-eps), for all time.\n");
  }
  std::printf("iterations:    %d\n", result.timings.candidate_iterations);
  std::printf("LP time:       %.3f s (%d solves)\n", result.timings.lp_time_s,
              result.timings.lp_solves);
  std::printf("SMT(5) time:   %.3f s (%d queries)\n",
              result.timings.smt5_time_s, result.timings.smt5_queries);
  std::printf("level-set:     %.3f s\n", result.timings.level_set_time_s);
  std::printf("total:         %.3f s\n", result.timings.total_time_s);
  return result.safe() ? 0 : 1;
}
