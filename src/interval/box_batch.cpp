#include "src/interval/box_batch.h"

#include <stdexcept>

namespace bcert::interval {

namespace {
/// Plane stride: capacity rounded up to 8 doubles, so every per-dimension
/// row starts 64-byte aligned when the base allocation is.
std::size_t padded(std::size_t capacity) { return (capacity + 7) & ~std::size_t{7}; }
}  // namespace

BoxBatch::BoxBatch(std::size_t dims, std::size_t capacity)
    : dims_(dims), capacity_(capacity), stride_(padded(capacity)) {
  if (dims == 0 || capacity == 0) {
    throw std::invalid_argument("BoxBatch: dims and capacity must be positive");
  }
  lo_ = linalg::aligned_doubles(dims_ * stride_);
  hi_ = linalg::aligned_doubles(dims_ * stride_);
}

void BoxBatch::push_back(const Box& b) {
  if (b.size() != dims_) {
    throw std::invalid_argument("BoxBatch::push_back: dimension mismatch");
  }
  if (size_ >= capacity_) {
    throw std::length_error("BoxBatch::push_back: batch full");
  }
  const std::size_t i = size_++;
  for (std::size_t d = 0; d < dims_; ++d) {
    lo_plane(d)[i] = b[d].lo();
    hi_plane(d)[i] = b[d].hi();
  }
}

Box BoxBatch::box(std::size_t i) const {
  std::vector<Interval> dims;
  dims.reserve(dims_);
  for (std::size_t d = 0; d < dims_; ++d) dims.push_back(dim(i, d));
  return Box(std::move(dims));
}

bool BoxBatch::lane_is_empty(std::size_t i) const {
  for (std::size_t d = 0; d < dims_; ++d) {
    if (lo_plane(d)[i] > hi_plane(d)[i]) return true;
  }
  return false;
}

double BoxBatch::max_width(std::size_t i) const {
  // Box::max_width twin: width() of an empty interval is 0.
  double w = 0.0;
  for (std::size_t d = 0; d < dims_; ++d) {
    const Interval v = dim(i, d);
    if (v.width() > w) w = v.width();
  }
  return w;
}

double BoxBatch::perimeter(std::size_t i) const {
  double p = 0.0;
  for (std::size_t d = 0; d < dims_; ++d) p += dim(i, d).width();
  return p;
}

}  // namespace bcert::interval
