#include "src/daemon/log.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <iostream>

namespace bcert::daemon {

namespace {

/// UTC wall-clock timestamp with millisecond resolution,
/// "2026-08-09T12:34:56.789Z".
std::string timestamp_utc() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

bool needs_quoting(const std::string& v) {
  if (v.empty()) return true;
  for (const char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n' ||
        c == '\t') {
      return true;
    }
  }
  return false;
}

void append_value(std::string& line, const std::string& v) {
  if (!needs_quoting(v)) {
    line += v;
    return;
  }
  line += '"';
  for (const char c : v) {
    switch (c) {
      case '"': line += "\\\""; break;
      case '\\': line += "\\\\"; break;
      case '\n': line += "\\n"; break;
      case '\t': line += "\\t"; break;
      default: line += c;
    }
  }
  line += '"';
}

}  // namespace

LogField::LogField(std::string k, double v) : key(std::move(k)) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  value = buf;
}

Logger::Logger(core::ConfigLogLevel level, std::ostream* os)
    : level_(level), os_(os != nullptr ? os : &std::cerr) {}

void Logger::log(core::ConfigLogLevel severity, const std::string& event,
                 std::vector<LogField> fields) {
  if (static_cast<int>(severity) > static_cast<int>(level_)) return;
  std::string line = timestamp_utc();
  line += " level=";
  line += core::log_level_name(severity);
  line += " event=";
  append_value(line, event);
  for (const LogField& f : fields) {
    line += ' ';
    line += f.key;
    line += '=';
    append_value(line, f.value);
  }
  line += '\n';
  std::lock_guard<std::mutex> lock(mutex_);
  (*os_) << line << std::flush;
}

}  // namespace bcert::daemon
