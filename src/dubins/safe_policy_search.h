#pragma once
/// \file safe_policy_search.h
/// \brief Counterexample-guided safe policy search — the paper's stated
/// future work ("algorithms to simultaneously train the neural network
/// while satisfying safety guarantees", §5), realized as a CEGIS loop:
///
///   repeat:
///     1. train a controller by CMA-ES from the current rollout set
///     2. attempt full barrier-certificate verification
///     3. SAFE → done; otherwise turn the verifier's counterexample
///        states into additional training rollout offsets and retrain
///
/// Each round makes the policy competent exactly where verification
/// found it lacking, until a certificate exists.

#include "src/core/verifier.h"
#include "src/dubins/training.h"

namespace bcert::dubins {

/// Options for the train↔verify loop.
struct SafePolicySearchOptions {
  TrainOptions train;               ///< CMA-ES settings per round
  core::VerifierOptions verify;     ///< verification settings
  int max_rounds = 5;               ///< CEGIS iterations
  double velocity = 1.0;            ///< error-model V
  std::size_t max_new_offsets = 4;  ///< CEX offsets adopted per round
};

/// Report of one round.
struct SafePolicySearchRound {
  int round = 0;
  double train_cost = 0.0;
  core::VerifyStatus status = core::VerifyStatus::kMaxCandidateIterations;
  std::size_t counterexamples = 0;
};

/// Final result.
struct SafePolicySearchResult {
  nn::FeedforwardNet controller;
  core::VerifyResult verification;   ///< of the final round
  std::vector<SafePolicySearchRound> rounds;

  bool safe() const { return verification.safe(); }
};

/// Runs the CEGIS loop on the Dubins path-following system with the
/// §4.3 region structure (X0/U given in \p verify_problem_regions via
/// the options' verifier defaults).
SafePolicySearchResult safe_policy_search(
    const PiecewiseLinearPath& path, const core::Rect& initial_set,
    const core::Rect& safe_rect, const SafePolicySearchOptions& opts);

}  // namespace bcert::dubins
