#pragma once
/// \file constraint.h
/// \brief Atomic real constraints `expr ⋈ 0` for the δ-SAT solver.
///
/// Every constraint is normalized to compare an expression against zero.
/// Strictness matters for the soundness of UNSAT answers (pruning a box
/// against `e < 0` may use `e ≥ 0`, against `e ≤ 0` only `e > 0`).

#include <string>
#include <vector>

#include "src/expr/expr.h"
#include "src/interval/interval.h"

namespace bcert::smt {

/// Comparison relation against zero.
enum class Rel : std::uint8_t {
  kLe,  ///< expr ≤ 0
  kLt,  ///< expr < 0
  kGe,  ///< expr ≥ 0
  kGt,  ///< expr > 0
  kEq,  ///< expr = 0
};

const char* rel_name(Rel r);

/// One atomic constraint over a shared ExprPool.
struct Constraint {
  expr::ExprId lhs = expr::kNoExpr;
  Rel rel = Rel::kLe;

  /// The set of values of `lhs` consistent with the relation. Strict
  /// relations use the closed hull (sound for contraction; strictness is
  /// applied at pruning time).
  interval::Interval feasible_values() const;

  /// True when an enclosure \p v of lhs over a box proves that *no* point
  /// of the box satisfies the constraint (box can be pruned).
  bool certainly_violated(const interval::Interval& v) const;

  /// True when an enclosure \p v proves that *every* point of the box
  /// satisfies the constraint.
  bool certainly_satisfied(const interval::Interval& v) const;
};

/// Conjunction of atomic constraints (one ICP query).
struct Conjunction {
  std::vector<Constraint> constraints;

  Conjunction() = default;
  explicit Conjunction(std::vector<Constraint> cs)
      : constraints(std::move(cs)) {}

  void add(expr::ExprId lhs, Rel rel) { constraints.push_back({lhs, rel}); }
  std::size_t size() const { return constraints.size(); }
  bool empty() const { return constraints.empty(); }
};

/// Disjunction of conjunctions (DNF). The solver answers SAT if any
/// disjunct is satisfiable; UNSAT requires refuting all of them.
struct Dnf {
  std::vector<Conjunction> disjuncts;

  Dnf() = default;
  explicit Dnf(std::vector<Conjunction> ds) : disjuncts(std::move(ds)) {}

  /// Cross product: (this) ∧ (other), both in DNF.
  Dnf conjoin(const Dnf& other) const;

  static Dnf single(Conjunction c) { return Dnf({std::move(c)}); }
};

}  // namespace bcert::smt
