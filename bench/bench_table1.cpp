// Reproduces Table 1: timing of the safety-verification procedure for
// NN controllers of increasing hidden-layer width.
//
// Columns match the paper: hidden neurons; average number of candidate
// iterations; average time per LP solve; average time per SMT-(5) query;
// total generator-computation time; time in other steps; total time.
// Values are averages over several seeds (paper: 30; default here: 3,
// override with BCERT_SEEDS).
//
// Environment knobs:
//   BCERT_SIZES=small|full|comma,list   widths to run (default small:
//                                       10..100; full adds 300..1000)
//   BCERT_SEEDS=N                       seeds to average over (default 3)
//   BCERT_TRAIN=1                       train the ≤100-neuron controllers
//                                       with CMA-ES policy search (paper
//                                       §4.2) instead of distillation
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/bench_common.h"

namespace {

using namespace bcert;

std::vector<std::size_t> parse_sizes(const std::string& spec) {
  if (spec == "small") return {10, 20, 40, 50, 70, 80, 90, 100};
  if (spec == "full") {
    return {10, 20, 40, 50, 70, 80, 90, 100, 300, 500, 700, 1000};
  }
  std::vector<std::size_t> out;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoul(tok));
  }
  return out;
}

nn::FeedforwardNet make_controller(std::size_t hidden, unsigned seed,
                                   bool train) {
  if (train && hidden <= 100) {
    dubins::TrainOptions opts = bench::paper_train_options();
    opts.hidden_neurons = hidden;
    opts.seed = seed;
    return train_controller(bench::training_path(), opts).controller;
  }
  return dubins::distill_controller(dubins::proportional_teacher(), hidden,
                                    seed * 7919 + 13);
}

}  // namespace

int main() {
  const std::vector<std::size_t> sizes =
      parse_sizes(bench::env_str("BCERT_SIZES", "small"));
  const int seeds = bench::env_int("BCERT_SEEDS", 3);
  const bool train = bench::env_int("BCERT_TRAIN", 0) != 0;
  bench::JsonReport report("table1");

  std::printf("# Table 1 reproduction: safety-verification timing vs NN "
              "size\n");
  std::printf("# controllers: %s; seeds averaged: %d (paper: 30)\n",
              train ? "CMA-ES policy search (<=100), distilled (>100)"
                    : "distilled from proportional teacher",
              seeds);
  std::printf("#\n");
  std::printf("# %7s %8s | %9s %9s %9s | %8s | %8s | %6s\n", "neurons",
              "safe", "avg.iter", "LP(s)", "Query(s)", "GenTot(s)",
              "Other(s)", "Tot(s)");

  for (const std::size_t hidden : sizes) {
    double sum_iters = 0, sum_lp = 0, sum_q = 0, sum_gen = 0, sum_other = 0,
           sum_total = 0;
    int safe_count = 0;
    for (int s = 0; s < seeds; ++s) {
      expr::ExprPool pool;
      const nn::FeedforwardNet net =
          make_controller(hidden, static_cast<unsigned>(s + 1), train);
      core::VerifierOptions opts;
      opts.seed = static_cast<unsigned>(1000 + s);
      core::Engine engine;
      core::JobOptions job;
      job.verify = opts;
      const core::VerifyResult r =
          engine.verify(bench::make_problem(pool, net), job);
      if (r.safe()) ++safe_count;
      sum_iters += r.timings.candidate_iterations;
      sum_lp += r.timings.avg_lp_time_s();
      sum_q += r.timings.avg_smt5_time_s();
      sum_gen += r.timings.generator_time_s;
      sum_other += r.timings.total_time_s - r.timings.generator_time_s;
      sum_total += r.timings.total_time_s;
    }
    const double n = seeds;
    std::printf("  %7zu %5d/%-2d | %9.1f %9.3f %9.3f | %8.2f | %8.2f | "
                "%6.2f\n",
                hidden, safe_count, seeds, sum_iters / n, sum_lp / n,
                sum_q / n, sum_gen / n, sum_other / n, sum_total / n);
    std::fflush(stdout);
    bench::BenchRecord rec;
    rec.name = "verify_nn" + std::to_string(hidden);
    rec.wall_time_s = sum_total / n;
    rec.items_per_sec = sum_total > 0.0 ? seeds / sum_total : -1.0;
    report.add(rec);
  }
  std::printf("#\n# paper trend: near-flat iteration count; query time "
              "grows with NN size\n");
  const std::string path = report.write();
  if (!path.empty()) std::printf("# wrote %s\n", path.c_str());
  return 0;
}
