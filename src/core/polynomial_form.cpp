#include "src/core/polynomial_form.h"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace bcert::core {

namespace {

/// Recursively enumerates exponent vectors with the given total degree.
void enumerate(std::size_t dims, int remaining, std::vector<int>& current,
               std::vector<std::vector<int>>& out) {
  if (current.size() == dims - 1) {
    current.push_back(remaining);
    out.push_back(current);
    current.pop_back();
    return;
  }
  for (int e = remaining; e >= 0; --e) {
    current.push_back(e);
    enumerate(dims, remaining - e, current, out);
    current.pop_back();
  }
}

double int_pow(double x, int n) {
  double acc = 1.0;
  for (int i = 0; i < n; ++i) acc *= x;
  return acc;
}

}  // namespace

MonomialBasis::MonomialBasis(std::size_t dims, int min_degree,
                             int max_degree)
    : dims_(dims) {
  if (dims == 0) throw std::invalid_argument("MonomialBasis: dims = 0");
  if (min_degree < 1 || max_degree < min_degree) {
    throw std::invalid_argument("MonomialBasis: bad degree range");
  }
  for (int deg = min_degree; deg <= max_degree; ++deg) {
    std::vector<int> current;
    enumerate(dims_, deg, current, exponents_);
  }
}

int MonomialBasis::degree(std::size_t k) const {
  return std::accumulate(exponents_[k].begin(), exponents_[k].end(), 0);
}

double MonomialBasis::value(std::size_t k, const linalg::Vector& x) const {
  double acc = 1.0;
  for (std::size_t i = 0; i < dims_; ++i) {
    acc *= int_pow(x[i], exponents_[k][i]);
  }
  return acc;
}

linalg::Vector MonomialBasis::gradient(std::size_t k,
                                       const linalg::Vector& x) const {
  linalg::Vector g(dims_);
  for (std::size_t i = 0; i < dims_; ++i) {
    const int e = exponents_[k][i];
    if (e == 0) continue;
    double acc = e * int_pow(x[i], e - 1);
    for (std::size_t j = 0; j < dims_; ++j) {
      if (j == i) continue;
      acc *= int_pow(x[j], exponents_[k][j]);
    }
    g[i] = acc;
  }
  return g;
}

expr::ExprId MonomialBasis::to_expr(std::size_t k,
                                    expr::ExprPool& pool) const {
  expr::ExprId acc = pool.one();
  for (std::size_t i = 0; i < dims_; ++i) {
    const int e = exponents_[k][i];
    if (e == 0) continue;
    acc = pool.mul(acc,
                   pool.pow(pool.var(static_cast<std::int32_t>(i)), e));
  }
  return acc;
}

std::string MonomialBasis::to_string(std::size_t k) const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = 0; i < dims_; ++i) {
    const int e = exponents_[k][i];
    if (e == 0) continue;
    if (!first) os << '*';
    first = false;
    os << 'x' << i;
    if (e > 1) os << '^' << e;
  }
  if (first) os << '1';
  return os.str();
}

PolynomialForm::PolynomialForm(MonomialBasis basis)
    : basis_(std::move(basis)), coeffs_(basis_.size()) {}

PolynomialForm::PolynomialForm(MonomialBasis basis, linalg::Vector coeffs)
    : basis_(std::move(basis)), coeffs_(std::move(coeffs)) {
  if (coeffs_.size() != basis_.size()) {
    throw std::invalid_argument("PolynomialForm: coefficient count");
  }
}

double PolynomialForm::value(const linalg::Vector& x) const {
  double acc = 0.0;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    if (coeffs_[k] == 0.0) continue;
    acc += coeffs_[k] * basis_.value(k, x);
  }
  return acc;
}

linalg::Vector PolynomialForm::gradient(const linalg::Vector& x) const {
  linalg::Vector g(dims());
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    if (coeffs_[k] == 0.0) continue;
    g += coeffs_[k] * basis_.gradient(k, x);
  }
  return g;
}

expr::ExprId PolynomialForm::to_expr(expr::ExprPool& pool) const {
  std::vector<expr::ExprId> terms;
  terms.reserve(coeffs_.size());
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    if (coeffs_[k] == 0.0) continue;
    terms.push_back(
        pool.mul(pool.constant(coeffs_[k]), basis_.to_expr(k, pool)));
  }
  return pool.sum(terms);
}

std::string PolynomialForm::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    if (coeffs_[k] == 0.0) continue;
    if (!first) os << " + ";
    first = false;
    os << coeffs_[k] << '*' << basis_.to_string(k);
  }
  if (first) os << '0';
  return os.str();
}

}  // namespace bcert::core
