#include "src/core/report.h"

#include <ostream>
#include <sstream>

namespace bcert::core {

namespace {

void write_vector_json(std::ostream& os, const linalg::Vector& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  os << ']';
}

void write_rect_json(std::ostream& os, const Rect& r) {
  os << "{\"lo\": ";
  write_vector_json(os, r.lo);
  os << ", \"hi\": ";
  write_vector_json(os, r.hi);
  os << '}';
}

}  // namespace

std::string json_escape(const std::string& s) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          out += "\\u00";
          out.push_back(hex[u >> 4]);
          out.push_back(hex[u & 0xf]);
        } else {
          out.push_back(c);
        }
        break;
      }
    }
  }
  return out;
}

void write_text_report(std::ostream& os, const VerifyResult& result,
                       const BarrierProblem& problem,
                       const ReportContext& ctx) {
  os << "=== barrier-certificate verification report ===\n";
  os << "system      : " << ctx.system_name << '\n';
  if (!ctx.controller_description.empty()) {
    os << "controller  : " << ctx.controller_description << '\n';
  }
  os << "verdict     : " << verify_status_name(result.status) << '\n';
  os << "gamma/delta : " << ctx.gamma << " / " << ctx.delta << "\n\n";

  os << "-- regions --\n";
  os << "X0 lo " << problem.initial_set.lo << " hi "
     << problem.initial_set.hi << '\n';
  os << "safe lo " << problem.safe_rect.lo << " hi " << problem.safe_rect.hi
     << "  (U = complement)\n\n";

  if (result.has_generator()) {
    os << "-- certificate --\n";
    if (result.generator) {
      os << "W coefficients (basis x_i x_j, i<=j): "
         << result.generator->coeffs() << '\n';
    } else {
      os << "W coefficients (monomial basis, "
         << result.poly_generator->basis().size()
         << " terms): " << result.poly_generator->coeffs() << '\n';
    }
    if (result.safe()) {
      os << "level l = " << result.level << '\n';
      os << "B(x) = W(x) - l satisfies conditions (1)-(3) of the strict\n";
      os << "barrier certificate definition: the system is SAFE for\n";
      os << "unbounded time.\n";
    }
    os << '\n';
  }

  os << "-- procedure --\n";
  os << "candidate iterations : " << result.timings.candidate_iterations
     << '\n';
  os << "LP solves            : " << result.timings.lp_solves << " ("
     << result.timings.lp_time_s << " s)\n";
  os << "SMT (5) queries      : " << result.timings.smt5_queries << " ("
     << result.timings.smt5_time_s << " s)\n";
  os << "final LP margin      : " << result.lp_margin << '\n';
  if (!result.counterexamples.empty()) {
    os << "counterexamples      :\n";
    for (const auto& cex : result.counterexamples) {
      os << "  " << cex << '\n';
    }
  }
  os << "\n-- timing (Table-1 columns) --\n";
  os << "generator total : " << result.timings.generator_time_s << " s\n";
  os << "level-set phase : " << result.timings.level_set_time_s << " s\n";
  os << "other           : " << result.timings.other_time_s() << " s\n";
  os << "total           : " << result.timings.total_time_s << " s\n";
}

void write_json_report(std::ostream& os, const VerifyResult& result,
                       const BarrierProblem& problem,
                       const ReportContext& ctx) {
  os.precision(17);
  os << "{\n";
  os << "  \"system\": \"" << json_escape(ctx.system_name) << "\",\n";
  os << "  \"controller\": \"" << json_escape(ctx.controller_description)
     << "\",\n";
  os << "  \"verdict\": \"" << verify_status_name(result.status) << "\",\n";
  os << "  \"safe\": " << (result.safe() ? "true" : "false") << ",\n";
  os << "  \"gamma\": " << ctx.gamma << ",\n";
  os << "  \"delta\": " << ctx.delta << ",\n";
  os << "  \"initial_set\": ";
  write_rect_json(os, problem.initial_set);
  os << ",\n  \"safe_rect\": ";
  write_rect_json(os, problem.safe_rect);
  os << ",\n";
  os << "  \"template\": \"" << template_kind_name(result.template_kind)
     << "\",\n";
  if (result.has_generator()) {
    os << "  \"generator_coeffs\": ";
    write_vector_json(os, result.generator_coeffs());
    os << ",\n";
  }
  os << "  \"level\": " << result.level << ",\n";
  os << "  \"lp_margin\": " << result.lp_margin << ",\n";
  os << "  \"counterexamples\": [";
  for (std::size_t i = 0; i < result.counterexamples.size(); ++i) {
    if (i) os << ", ";
    write_vector_json(os, result.counterexamples[i]);
  }
  os << "],\n";
  const VerifyTimings& t = result.timings;
  os << "  \"timings\": {\n";
  os << "    \"candidate_iterations\": " << t.candidate_iterations << ",\n";
  os << "    \"lp_solves\": " << t.lp_solves << ",\n";
  os << "    \"lp_time_s\": " << t.lp_time_s << ",\n";
  os << "    \"smt5_queries\": " << t.smt5_queries << ",\n";
  os << "    \"smt5_time_s\": " << t.smt5_time_s << ",\n";
  os << "    \"generator_time_s\": " << t.generator_time_s << ",\n";
  os << "    \"level_set_time_s\": " << t.level_set_time_s << ",\n";
  os << "    \"other_time_s\": " << t.other_time_s() << ",\n";
  os << "    \"total_time_s\": " << t.total_time_s << "\n";
  os << "  }\n}\n";
}

std::string json_report(const VerifyResult& result,
                        const BarrierProblem& problem,
                        const ReportContext& context) {
  std::ostringstream os;
  write_json_report(os, result, problem, context);
  return os.str();
}

void write_result_json(std::ostream& os, const VerifyResult& result) {
  os.precision(17);
  os << "{\"verdict\": \"" << verify_status_name(result.status) << "\", ";
  os << "\"safe\": " << (result.safe() ? "true" : "false") << ", ";
  os << "\"template\": \"" << template_kind_name(result.template_kind)
     << "\", ";
  if (result.has_generator()) {
    os << "\"generator_coeffs\": ";
    write_vector_json(os, result.generator_coeffs());
    os << ", ";
  }
  os << "\"level\": " << result.level << ", ";
  os << "\"lp_margin\": " << result.lp_margin << ", ";
  os << "\"counterexamples\": " << result.counterexamples.size() << ", ";
  os << "\"error\": {\"code\": \"" << error_code_name(result.error.code)
     << "\", \"message\": \"" << json_escape(result.error.message)
     << "\"}, ";
  const DegradationReport& d = result.degradation;
  os << "\"degradation\": {\"jit_to_tape\": " << d.jit_to_tape
     << ", \"tape_to_tree\": " << d.tape_to_tree
     << ", \"simd_downgrade\": " << d.simd_downgrade
     << ", \"cache_cold\": " << d.cache_cold << ", \"lp_cold\": " << d.lp_cold
     << ", \"retries\": " << d.retries << "}, ";
  const VerifyTimings& t = result.timings;
  os << "\"candidate_iterations\": " << t.candidate_iterations << ", ";
  os << "\"lp_time_s\": " << t.lp_time_s << ", ";
  os << "\"smt5_time_s\": " << t.smt5_time_s << ", ";
  os << "\"total_time_s\": " << t.total_time_s << "}";
}

std::string result_json(const VerifyResult& result) {
  std::ostringstream os;
  write_result_json(os, result);
  return os.str();
}

}  // namespace bcert::core
