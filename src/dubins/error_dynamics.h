#pragma once
/// \file error_dynamics.h
/// \brief The 2-state closed-loop error model of §4.1.3/4.1.4:
///
///   x = [d_err, θ_err]
///   ḋ_err = −V sin(θ_r − θ_err) cos(θ_r) + V cos(θ_r − θ_err) sin(θ_r)
///   θ̇_err = −u,   u = h(d_err, θ_err)
///
/// (the first equation simplifies to V sin(θ_err) for any constant θ_r;
/// we keep the paper's general form symbolically so the verified model
/// matches the paper's text verbatim).

#include <vector>

#include "src/expr/expr.h"
#include "src/linalg/vector.h"
#include "src/nn/network.h"
#include "src/ode/integrator.h"

namespace bcert::dubins {

/// Parameters of the error-dynamics model.
struct ErrorModel {
  double velocity = 5.0;   ///< constant V
  double theta_r = 0.0;    ///< constant target-path tangent angle
};

/// Numeric closed-loop vector field f(x) = fp(x, h(x)) for simulation.
/// The controller is evaluated without saturation (the NN's tanh output
/// is already in (−1, 1)), matching the symbolic model exactly.
ode::VectorField closed_loop_field(const ErrorModel& model,
                                   const nn::FeedforwardNet& controller);

/// Allocation-free flavor of closed_loop_field, bit-identical to it.
/// Every call to this factory returns an *independent* field instance
/// owning its own controller copy and scratch buffers: one instance must
/// not be shared across threads, but distinct instances evaluate safely
/// in parallel (this is how the falsifier and CMA-ES batch rollouts).
ode::VectorFieldInPlace closed_loop_field_inplace(
    const ErrorModel& model, const nn::FeedforwardNet& controller);

/// Symbolic closed-loop field over variables x0 = d_err, x1 = θ_err.
/// Returns {ḋ_err, θ̇_err} as expressions embedding the controller's
/// exact weights — the f(x) of the SMT queries.
std::vector<expr::ExprId> closed_loop_field_expr(
    const ErrorModel& model, const nn::FeedforwardNet& controller,
    expr::ExprPool& pool);

}  // namespace bcert::dubins
