#pragma once
/// \file runtime_config.h
/// \brief Typed, process-wide runtime configuration — the single home of
/// every `BCERT_*` environment knob that tunes the library's runtime
/// behavior.
///
/// Before this existed, six call sites (`thread_pool.cpp`,
/// `icp_solver.cpp` ×2, `hc4.cpp`, `tape_batch.cpp`, `lp_synthesis.cpp`)
/// each re-implemented `getenv` + ad-hoc parsing; a malformed value such
/// as `BCERT_ICP_BATCH=abc` was silently ignored (or worse, fed through
/// `atoi`). Now:
///
///  * `RuntimeConfig::from_env()` parses the environment **once**, with
///    strict validation — trailing junk, overflow, out-of-range and
///    unrecognized enum tokens all produce a warning on a single channel
///    (stderr, `bcert: config:` prefix) and fall back to the documented
///    default. Unknown `BCERT_*` variables (typos like
///    `BCERT_ICP_BACTH`) are reported too.
///  * `RuntimeConfig::active()` is the lazily-initialized process-wide
///    instance every resolver consults
///    (`parallel::default_thread_count`, `smt::resolve_icp_batch`,
///    `smt::icp_warm_enabled`, `smt::resolve_hc4_mode`,
///    `smt::resolve_simd_tier`, `core::lp_warm_start_enabled`).
///  * Every field is overridable programmatically via
///    `RuntimeConfig::set_active()` — embedding applications configure
///    the library through this struct instead of mutating their own
///    environment.
///
/// This header is dependency-free (it sits *below* `parallel`, `smt`
/// and `lp` in the link order) so every layer can consult it.

#include <cstdint>
#include <string>
#include <vector>

namespace bcert::core {

/// Tri-state override for boolean knobs whose in-code default lives in
/// an options struct (`IcpConfig::warm_start`,
/// `SynthesisOptions::warm_start`): `kAuto` defers to that struct.
enum class ConfigToggle : std::uint8_t { kAuto, kOn, kOff };

/// HC4 contractor backend selection (`BCERT_HC4_MODE`). Mirrors
/// `smt::Hc4Mode` without depending on the smt layer. `kJit` requests
/// the native x86-64 backend and degrades to `kTape` (bit-identically,
/// counted as `jit_to_tape`) when emission is unavailable.
enum class ConfigHc4Mode : std::uint8_t { kTape, kTree, kJit };

/// SIMD tier request for the batched tape sweeps (`BCERT_ICP_SIMD`).
/// `kAuto` picks the best tier available on this build/CPU; an explicit
/// request that is unavailable falls back with a warning (in smt).
enum class ConfigSimd : std::uint8_t { kAuto, kAvx2, kSse2, kScalar };

/// Structured-log severity threshold of the `bcertd` daemon
/// (`BCERT_LOG_LEVEL`). Messages below the threshold are dropped.
enum class ConfigLogLevel : std::uint8_t { kError, kWarn, kInfo, kDebug };

const char* log_level_name(ConfigLogLevel level);

/// The typed runtime configuration. Field defaults are the library
/// defaults; `from_env()` overlays the `BCERT_*` environment on top.
struct RuntimeConfig {
  /// Worker count of the global/default thread pools and every
  /// `threads = 0` auto knob. 0 = hardware concurrency.
  /// Env: `BCERT_THREADS` (positive integer).
  int threads = 0;

  /// ICP frontier batch width; 0 = library default (8), 1 = scalar
  /// frontier. Env: `BCERT_ICP_BATCH` (positive integer; clamped to
  /// 1024 by the solver).
  int icp_batch = 0;

  /// UNSAT-tree ICP warm-starting override. Env: `BCERT_ICP_WARM`
  /// (`0`/`off`/`false` → kOff, `1`/`on`/`true` → kOn).
  ConfigToggle icp_warm = ConfigToggle::kAuto;

  /// LP basis warm-starting override. Env: `BCERT_LP_WARM` (same
  /// tokens as `BCERT_ICP_WARM`).
  ConfigToggle lp_warm = ConfigToggle::kAuto;

  /// HC4 backend for `Hc4Mode::kAuto` contractors. Env:
  /// `BCERT_HC4_MODE` (`jit`, `tape` or `tree`).
  ConfigHc4Mode hc4_mode = ConfigHc4Mode::kTape;

  /// When true, tape→IR→native compilation logs the tape disassembly and
  /// the IR after every optimization pass to stderr (miscompile
  /// debugging). Env: `BCERT_JIT_DUMP` (`0`/`1`/`on`/`off`).
  bool jit_dump = false;

  /// SIMD tier of the batched tape sweeps. Env: `BCERT_ICP_SIMD`
  /// (`avx2`, `sse2` or `scalar`).
  ConfigSimd icp_simd = ConfigSimd::kAuto;

  /// Deterministic fault-injection spec installed into the process-wide
  /// `FaultRegistry` when this config becomes active (see
  /// src/core/fault.h for the grammar, e.g.
  /// `tape_compile:throw@3,lp_solve:delay=50ms@every:7`). Empty = no
  /// faults. Env: `BCERT_FAULT`; a malformed spec warns and is dropped.
  std::string fault_spec;

  /// Unix-domain socket path the `bcertd` daemon binds (and `bcertctl`
  /// connects to) when neither passes an explicit --socket. Env:
  /// `BCERT_DAEMON_SOCKET` (non-empty path; sun_path caps it at 107
  /// bytes — longer values warn and fall back to the default).
  std::string daemon_socket = "/tmp/bcertd.sock";

  /// Directory holding the daemon's warm-state snapshot
  /// (`bcertd.snapshot`): loaded on start, written on drain and on the
  /// periodic snapshot timer. Empty = persistence disabled. Env:
  /// `BCERT_STATE_DIR`.
  std::string state_dir;

  /// Period of the daemon's snapshot timer in seconds; 0 = snapshot
  /// only on drain/SIGTERM. Env: `BCERT_SNAPSHOT_S` (non-negative
  /// number).
  double snapshot_period_s = 300.0;

  /// Daemon structured-log threshold. Env: `BCERT_LOG_LEVEL` (`error`,
  /// `warn`, `info` or `debug`).
  ConfigLogLevel log_level = ConfigLogLevel::kInfo;

  /// Default per-job memory quota in bytes for the resource governor
  /// (`MemoryBudget`); 0 = unlimited. Jobs can override it through
  /// `JobOptions::mem_quota_bytes`. Env: `BCERT_MEM_QUOTA` (bytes, or
  /// with a `K`/`M`/`G` suffix, e.g. `256M`).
  std::uint64_t mem_quota_bytes = 0;

  /// Parses the `BCERT_*` environment with strict validation. Malformed
  /// or unknown variables produce one diagnostic each: appended to
  /// \p warnings when given, otherwise written to stderr through the
  /// single warning channel. Reads the environment at every call (the
  /// caching layer is `active()`).
  static RuntimeConfig from_env(std::vector<std::string>* warnings = nullptr);

  /// The process-wide configuration. First call parses the environment
  /// (emitting any warnings to stderr); later calls return the cached
  /// instance, as replaced by `set_active()`.
  static const RuntimeConfig& active();

  /// Replaces the process-wide configuration. Call before spinning up
  /// concurrent work — the swap itself is not synchronized against
  /// concurrent `active()` readers on other threads.
  static void set_active(const RuntimeConfig& config);
};

}  // namespace bcert::core
