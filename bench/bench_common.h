#pragma once
/// \file bench_common.h
/// \brief Shared setup for the paper-reproduction benches: the case-study
/// regions, controller factories, and small env-var helpers.

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/dubins/error_dynamics.h"
#include "src/dubins/training.h"
#include "src/parallel/thread_pool.h"

namespace bcert::bench {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kEps = 0.01;  ///< the ε of U's definition (§4.3)

/// Paper §4.3 regions: X0 = [-1,1]×[-π/16,π/16],
/// U = complement of [-5,5]×[-(π/2-ε),(π/2-ε)].
inline core::Rect paper_initial_set() {
  return {{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}};
}
inline core::Rect paper_safe_rect() {
  return {{-5.0, -(kPi / 2.0 - kEps)}, {5.0, kPi / 2.0 - kEps}};
}

/// Builds the closed-loop verification problem for a given controller.
inline core::BarrierProblem make_problem(expr::ExprPool& pool,
                                         const nn::FeedforwardNet& net) {
  const dubins::ErrorModel model{/*velocity=*/1.0, /*theta_r=*/0.0};
  core::BarrierProblem p;
  p.pool = &pool;
  p.sim_field = dubins::closed_loop_field(model, net);
  p.sim_field_factory = [model, net] {
    return dubins::closed_loop_field_inplace(model, net);
  };
  p.sym_field = dubins::closed_loop_field_expr(model, net, pool);
  p.initial_set = paper_initial_set();
  p.safe_rect = paper_safe_rect();
  return p;
}

/// Appends \p count synthesis-shaped decrease rows (-a·c + g ≤ tiny,
/// with the anti-degeneracy rhs perturbation lp_synthesis uses) to a
/// margin LP built by margin_lp().
inline void append_margin_rows(lp::LpProblem& p, std::mt19937& rng,
                               int count) {
  std::uniform_real_distribution<double> d(0.1, 2.0);
  const std::size_t k = p.num_vars() - 1;
  for (int i = 0; i < count; ++i) {
    linalg::Vector row(k + 1);
    for (std::size_t j = 0; j < k; ++j) row[j] = -d(rng);
    row[k] = 1.0;
    p.add_row(std::move(row), lp::RowRel::kLe,
              1e-10 * static_cast<double>(p.num_rows() + 1));
  }
}

/// Verifier-shaped margin-maximization LP: \p coeffs template
/// coefficients in [-1, 1] plus one maximized margin variable g ≥ 0,
/// with \p rows random decrease rows. The shape synthesize_candidate
/// produces — shared by the LP warm-start benchmark and its tests.
inline lp::LpProblem margin_lp(std::mt19937& rng, std::size_t coeffs,
                               int rows) {
  lp::LpProblem p = lp::LpProblem::with_free_vars(coeffs + 1);
  p.sense = lp::Sense::kMaximize;
  p.objective[coeffs] = 1.0;
  for (std::size_t i = 0; i < coeffs; ++i) {
    p.lower[i] = -1.0;
    p.upper[i] = 1.0;
  }
  p.lower[coeffs] = 0.0;
  append_margin_rows(p, rng, rows);
  return p;
}

/// Integer environment variable with default.
inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

/// String environment variable with default.
inline std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : fallback;
}

/// The scaled-down Figure-4 training path (full-size geometry divided by
/// 2.5 to match V = 1 rollouts; shape preserved).
inline dubins::PiecewiseLinearPath training_path() {
  return dubins::PiecewiseLinearPath({{0.0, 0.0},
                                      {12.0, 8.0},
                                      {24.0, 10.0},
                                      {36.0, 18.0},
                                      {40.0, 30.0},
                                      {48.0, 36.0}});
}

/// Paper-default training options (§4.2) scaled to V = 1.
inline dubins::TrainOptions paper_train_options() {
  dubins::TrainOptions opts;
  opts.hidden_neurons = 10;
  opts.iterations = 50;
  opts.population = 152;
  opts.sim.velocity = 1.0;
  opts.sim.dt = 0.1;
  opts.sim.steps = 700;
  return opts;
}

/// Training recipe that produces *verifiable* controllers: rollouts from
/// offsets spanning the verification domain, and the angle-cost weight
/// rescaled to our path/velocity scale (at the paper's scale the d² term
/// dominates the cost the same way; see DESIGN.md).
inline dubins::TrainOptions verification_train_options() {
  dubins::TrainOptions opts = paper_train_options();
  opts.start_offsets = dubins::verification_offsets();
  opts.weights.angle = 1e3;
  opts.iterations = 80;
  return opts;
}

// --- JSON perf reporting ----------------------------------------------------
// Every bench executable can drop a `BENCH_<name>.json` next to itself so
// successive PRs have a machine-readable perf trajectory to diff against.

/// One measured result. Metrics that stay negative are omitted from the
/// JSON (not every bench has a boxes/sec or simulations/sec notion).
struct BenchRecord {
  std::string name;
  double wall_time_s = 0.0;
  double boxes_per_sec = -1.0;
  double simulations_per_sec = -1.0;
  double items_per_sec = -1.0;
  double speedup = -1.0;  ///< vs the named baseline record, when relevant
  /// Warm-started vs cold-started solve time on the same LP sequence
  /// (the `lp_solve:warm_speedup` CI regression gate reads this).
  double warm_speedup = -1.0;
};

/// Collects records and writes `BENCH_<bench_name>.json` in the current
/// working directory.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void add(BenchRecord record) { records_.push_back(std::move(record)); }

  /// Writes the report; returns the file name ("" on I/O failure).
  std::string write() const {
    const std::string path = "BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return "";
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_name_.c_str());
    std::fprintf(f, "  \"threads\": %zu,\n",
                 parallel::default_thread_count());
    std::fprintf(f, "  \"results\": [");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"wall_time_s\": %.6g",
                   i ? "," : "", r.name.c_str(), r.wall_time_s);
      if (r.boxes_per_sec >= 0.0) {
        std::fprintf(f, ", \"boxes_per_sec\": %.6g", r.boxes_per_sec);
      }
      if (r.simulations_per_sec >= 0.0) {
        std::fprintf(f, ", \"simulations_per_sec\": %.6g",
                     r.simulations_per_sec);
      }
      if (r.items_per_sec >= 0.0) {
        std::fprintf(f, ", \"items_per_sec\": %.6g", r.items_per_sec);
      }
      if (r.speedup >= 0.0) {
        std::fprintf(f, ", \"speedup\": %.4g", r.speedup);
      }
      if (r.warm_speedup >= 0.0) {
        std::fprintf(f, ", \"warm_speedup\": %.4g", r.warm_speedup);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    return path;
  }

 private:
  std::string bench_name_;
  std::vector<BenchRecord> records_;
};

}  // namespace bcert::bench
