#pragma once
/// \file hc4.h
/// \brief HC4 forward/backward interval contractor.
///
/// The workhorse of the δ-SAT solver. Given a conjunction of constraints
/// over a shared expression DAG and a box, HC4:
///   1. forward-evaluates every DAG node over the box (natural interval
///      extension),
///   2. intersects each constraint root with its feasible value set,
///   3. sweeps the DAG in reverse topological order, projecting each
///      node's requirement onto its children through inverse operations,
///   4. reads back the narrowed variable intervals as the contracted box.
///
/// All projections are conservative (they may keep spurious points but
/// never discard a real solution), so an empty result is a proof that the
/// box contains no solution of the conjunction.
///
/// Three execution backends produce bit-identical results:
///   * kJit (BCERT_HC4_MODE=jit): the tape is lowered through the SSA
///     IR (src/smt/ir) and emitted as native x86-64 (src/smt/jit), with
///     the outward rounding fused into the SSE arithmetic. When emission
///     is impossible (non-x86-64 host, exec-mmap denied, `jit_compile`
///     fault armed) construction degrades to kTape bit-identically.
///   * kTape (default): the conjunction is compiled once into a flat
///     interval bytecode tape (src/smt/tape.h) and both sweeps are tight
///     loops over contiguous arrays — no pointer-chasing into the
///     ExprPool. Tapes are immutable and shared across ICP workers.
///   * kTree: the original per-node walk over the Evaluator schedule,
///     kept for differential testing (BCERT_HC4_MODE=tree).

#include <memory>
#include <vector>

#include "src/expr/eval.h"
#include "src/interval/box.h"
#include "src/smt/constraint.h"
#include "src/smt/jit/hc4_jit.h"
#include "src/smt/tape.h"

namespace bcert::smt {

/// HC4 execution backend selector. kAuto resolves through the
/// BCERT_HC4_MODE environment variable ("jit" / "tree" / "tape"),
/// default kTape.
enum class Hc4Mode : std::uint8_t { kAuto, kTape, kTree, kJit };

/// Resolves kAuto against BCERT_HC4_MODE (cached after the first call).
Hc4Mode resolve_hc4_mode(Hc4Mode mode);

/// HC4 contractor specialized to one conjunction.
class Hc4Contractor {
 public:
  /// Compiles the conjunction for the selected backend.
  Hc4Contractor(const expr::ExprPool& pool, Conjunction conjunction,
                Hc4Mode mode = Hc4Mode::kAuto);

  /// Shares an already-compiled tape (private register file only) — how
  /// parallel ICP workers avoid recompiling the schedule per worker.
  explicit Hc4Contractor(std::shared_ptr<const Hc4Tape> tape);

  /// Shares an already-compiled native jit (private register file only).
  explicit Hc4Contractor(std::shared_ptr<const Hc4Jit> jit);

  const Conjunction& conjunction() const {
    if (jit_) return jit_->conjunction();
    return tape_ ? tape_->conjunction() : conjunction_;
  }
  /// The compiled tape (null when running the tree or jit backend).
  const std::shared_ptr<const Hc4Tape>& tape() const { return tape_; }
  /// The native compilation (null unless running the jit backend).
  const std::shared_ptr<const Hc4Jit>& jit() const { return jit_; }

  /// One forward+backward pass; narrows \p box in place.
  ContractResult contract(interval::Box& box);

  /// Repeats passes until fixpoint (relative improvement below \p ratio)
  /// or \p max_passes; returns kEmpty as soon as infeasibility is proven.
  ContractResult contract_fixpoint(interval::Box& box, int max_passes = 8,
                                   double ratio = 0.05);

  /// Forward-evaluates all constraint roots over \p box.
  std::vector<interval::Interval> root_values(const interval::Box& box);

  /// True when every constraint is certainly satisfied over \p box
  /// (then any point of the box, e.g. its midpoint, is a real witness).
  /// Reuses the most recent forward sweep when it was over this same box
  /// (e.g. a contract() pass that reached a fixpoint), so the ICP hot
  /// loop does not pay a second full evaluation per box.
  bool certainly_satisfied(const interval::Box& box);

  /// True when some constraint is certainly violated over \p box.
  bool certainly_violated(const interval::Box& box);

  /// Both verdicts from a single forward evaluation.
  struct Certainty {
    bool satisfied;
    bool violated;
  };
  Certainty certainty(const interval::Box& box);

 private:
  /// Tree backend: projects node requirements onto children.
  bool backward_sweep();
  /// Root enclosures for \p box, via the cache when it is fresh.
  const std::vector<interval::Interval>& roots_for(const interval::Box& box);

  // Jit backend state (regs_ is shared with the tape backend — the jit
  // register file is the tape's plus the forward-root tail).
  std::shared_ptr<const Hc4Jit> jit_;

  // Tape backend state.
  std::shared_ptr<const Hc4Tape> tape_;
  Hc4Tape::Registers regs_;

  // Tree backend state (unused when tape_ is set).
  Conjunction conjunction_;
  std::unique_ptr<expr::Evaluator> eval_;
  std::vector<std::size_t> root_positions_;
  std::vector<interval::Interval> req_;  // per schedule node requirement

  // Forward-root cache: enclosures from the latest forward sweep and the
  // box they were evaluated over.
  std::vector<interval::Interval> cached_roots_;
  interval::Box cached_box_;
  bool cache_valid_ = false;
};

}  // namespace bcert::smt
