#pragma once
/// \file activation.h
/// \brief Neuron activation functions, usable numerically and symbolically.
///
/// The paper's case study uses MATLAB `tansig` (= tanh) everywhere, and
/// the verification approach explicitly supports any Type-2 computable
/// activation; we also provide sigmoid, ReLU and linear for the broader
/// API (ReLU controllers can be *simulated/trained* but not pushed through
/// symbolic differentiation — the barrier pipeline itself never needs to
/// differentiate the controller).

#include <cstdint>
#include <string>

#include "src/expr/expr.h"

namespace bcert::nn {

enum class Activation : std::uint8_t { kTanh, kSigmoid, kRelu, kLinear };

const char* activation_name(Activation a);

/// Parses an activation name; throws std::invalid_argument on unknown.
Activation activation_from_name(const std::string& name);

/// Scalar application.
double apply(Activation a, double v);

/// Symbolic application.
expr::ExprId apply(Activation a, expr::ExprPool& pool, expr::ExprId v);

}  // namespace bcert::nn
