#pragma once
/// \file simplex.h
/// \brief Two-phase dense primal simplex over a flat vectorized tableau,
/// with basis warm-starting.
///
/// Handles general LPs (free variables, box bounds, ≤/≥/= rows) by
/// conversion to standard form `min cᵀy, Ay = b, y ≥ 0` followed by a
/// full-tableau simplex. The tableau is one contiguous 64-byte-aligned
/// allocation with row-major, padded rows, and every pivot / cost-row
/// update runs through the in-place `linalg` raw kernels (SSE2 on
/// x86-64). Pricing is Dantzig with partial (windowed) pricing by
/// default, falling back to Bland's rule after
/// SimplexOptions::bland_after iterations for anti-cycling; solution
/// recovery is O(m+n) via a basis→row index map.
///
/// Warm-starting: an optimal solve exports its basis (LpSolution::basis)
/// and a later solve of a *related* problem — same variables and bounds,
/// rows only appended, the LP ↔ SMT refinement-loop pattern — can pass
/// it back via SimplexOptions::warm_start. The solver realizes the basis
/// by Gaussian pivoting, repairs any primal infeasibility the appended
/// rows introduced with dual-simplex steps, and finishes with primal
/// iterations. Whenever the warm basis is singular, structurally stale,
/// not dual-feasible, or its repair phase stalls, the solver silently
/// falls back to a cold phase-1 start — a warm basis can never change
/// the reported status or optimum, only the iteration count. The one
/// caveat is the shared iteration budget: a warm attempt may consume up
/// to half of SimplexOptions::max_iterations before falling back, so a
/// solve that would already be near the limit cold can reach
/// LpStatus::kIterLimit a little earlier (see LpBasis for the full
/// contract). Built for the small/medium dense problems of the
/// barrier-synthesis loop.

#include <functional>

#include "src/lp/problem.h"

namespace bcert::lp {

/// Solver options.
struct SimplexOptions {
  /// Pivot budget shared by all phases (including warm-start repair);
  /// exceeding it yields LpStatus::kIterLimit.
  int max_iterations = 50'000;
  /// Pivot / feasibility tolerance: reduced costs above -eps count as
  /// non-negative, ratio-test pivots must exceed eps.
  double eps = 1e-9;
  /// Switch from Dantzig to Bland's rule after this many iterations
  /// (anti-cycling safeguard on degenerate programs).
  int bland_after = 2'000;
  /// Partial-pricing window: entering-column search scans this many
  /// candidate columns past the previous entering column and takes the
  /// most negative reduced cost found, only widening when the window is
  /// clean. 0 means full Dantzig pricing (scan every column).
  int pricing_window = 64;
  /// Basis to start from (see LpBasis for the contract). Empty = cold
  /// two-phase start.
  LpBasis warm_start;
  /// Cooperative interrupt, polled every kInterruptStride pivots inside
  /// the phase loops. Once it returns true the solve stops with
  /// LpStatus::kInterrupted — how the pipeline enforces job deadlines
  /// and cancellation on LP-heavy candidates that would otherwise run a
  /// full pivot budget past the wall clock. Null = never interrupted.
  std::function<bool()> interrupt;
};

/// How many pivots run between SimplexOptions::interrupt polls.
inline constexpr int kInterruptStride = 64;

/// Solves \p problem; never throws on solver-status conditions (status is
/// reported in the result), throws std::invalid_argument on malformed
/// input (e.g. inconsistent dimensions or an empty bound interval).
/// Postconditions: on kOptimal, `x`, `objective` and `basis` are
/// populated (bounds/rows hold up to the solver tolerances); on any
/// other status `x` and `basis` are empty.
LpSolution solve_lp(const LpProblem& problem, const SimplexOptions& opts = {});

}  // namespace bcert::lp
