#include "src/smt/icp_solver.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/parallel/thread_pool.h"

namespace bcert::smt {

using clock = std::chrono::steady_clock;

const char* sat_result_name(SatResult r) {
  switch (r) {
    case SatResult::kUnsat: return "UNSAT";
    case SatResult::kSat: return "SAT";
    case SatResult::kDeltaSat: return "delta-SAT";
    case SatResult::kUnknown: return "UNKNOWN";
  }
  return "?";
}

linalg::Vector IcpResult::witness_point() const {
  if (!witness) {
    throw std::logic_error("IcpResult::witness_point: no witness");
  }
  return witness->midpoint();
}

namespace {

/// One wall-clock + box budget shared by every worker of a query — and,
/// for DNF queries, by every disjunct, so the configured limits bound
/// the *query*, not each of its k disjuncts separately.
struct SharedBudget {
  clock::time_point start;
  double time_limit_s;
  std::uint64_t max_boxes;
  std::atomic<std::uint64_t> boxes_used{0};

  explicit SharedBudget(const IcpConfig& config)
      : start(clock::now()),
        time_limit_s(config.time_limit_s),
        max_boxes(config.max_boxes) {}

  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start).count();
  }

  /// Claims one box; false when the box or time budget is spent.
  bool admit_box() {
    if (boxes_used.fetch_add(1, std::memory_order_relaxed) >= max_boxes) {
      return false;
    }
    return elapsed_s() <= time_limit_s;
  }
};

/// Outcome flags shared by the workers of one conjunction query (and by
/// concurrently dispatched DNF disjuncts).
struct SharedOutcome {
  std::mutex m;
  bool sat_found = false;
  SatResult sat_verdict = SatResult::kUnknown;
  interval::Box sat_witness;
  std::atomic<bool> exhausted{false};

  /// First (δ-)SAT discovery wins; everyone else gets cancelled.
  void report_sat(SatResult verdict, interval::Box witness,
                  parallel::CancellationToken& cancel) {
    {
      std::lock_guard<std::mutex> lock(m);
      if (!sat_found) {
        sat_found = true;
        sat_verdict = verdict;
        sat_witness = std::move(witness);
      }
    }
    cancel.cancel();
  }
};

void merge_stats(IcpStats& into, const IcpStats& from) {
  into.boxes_processed += from.boxes_processed;
  into.boxes_pruned += from.boxes_pruned;
  into.splits += from.splits;
  into.max_depth_width = std::min(into.max_depth_width, from.max_depth_width);
}

/// Where a query's workers get their contractors from. In tape mode the
/// conjunction is compiled exactly once and every worker shares the
/// immutable tape (each contractor then owns just a register file); in
/// tree mode each worker compiles its own evaluator, as the seed did.
struct ContractorSpec {
  const expr::ExprPool* pool = nullptr;
  const Conjunction* conjunction = nullptr;
  std::shared_ptr<const Hc4Tape> tape;  // null → tree backend

  ContractorSpec(const expr::ExprPool& p, const Conjunction& c,
                 const IcpConfig& config) {
    if (resolve_hc4_mode(config.hc4_mode) == Hc4Mode::kTape) {
      tape = config.tape_cache ? config.tape_cache->get_or_compile(p, c)
                               : std::make_shared<const Hc4Tape>(p, c);
    } else {
      pool = &p;
      conjunction = &c;
    }
  }

  Hc4Contractor make() const {
    return tape ? Hc4Contractor(tape)
                : Hc4Contractor(*pool, *conjunction, Hc4Mode::kTree);
  }
};

/// Classic depth-first branch-and-prune over one conjunction, driven by
/// a shared budget/cancellation pair. With a fresh budget and token this
/// is exactly the sequential seed algorithm (same exploration order,
/// same witness); under DNF dispatch several instances run concurrently.
void solve_sequential(const ContractorSpec& spec, const interval::Box& box,
                      const IcpConfig& config, SharedBudget& budget,
                      SharedOutcome& outcome,
                      parallel::CancellationToken& cancel, IcpStats& stats) {
  Hc4Contractor contractor = spec.make();

  // DFS work stack: depth-first finds witnesses fast and keeps memory
  // bounded by (depth x dimension).
  std::deque<interval::Box> work;
  if (!box.is_empty()) work.push_back(box);

  stats.max_depth_width = box.max_width();

  while (!work.empty()) {
    if (cancel.cancelled()) return;
    if (!budget.admit_box()) {
      outcome.exhausted.store(true, std::memory_order_release);
      cancel.cancel();
      return;
    }

    interval::Box current = std::move(work.back());
    work.pop_back();
    ++stats.boxes_processed;

    const ContractResult cr = contractor.contract_fixpoint(
        current, config.hc4_passes, config.hc4_improvement);
    if (cr == ContractResult::kEmpty || current.is_empty()) {
      ++stats.boxes_pruned;
      continue;
    }

    stats.max_depth_width =
        std::min(stats.max_depth_width, current.max_width());

    // True SAT: constraints certainly hold over the whole surviving box.
    if (contractor.certainly_satisfied(current)) {
      outcome.report_sat(SatResult::kSat, std::move(current), cancel);
      return;
    }

    // δ-condition: box too small to split further.
    if (current.max_width() <= config.delta) {
      outcome.report_sat(SatResult::kDeltaSat, std::move(current), cancel);
      return;
    }

    auto [left, right] = current.split_widest();
    ++stats.splits;
    work.push_back(std::move(left));
    work.push_back(std::move(right));
  }
}

/// Work-sharing frontier: one shard per worker. Owners push/pop at the
/// back of their shard (depth-first, cache-friendly); idle workers steal
/// from the *front* of a victim shard, which holds the shallowest — and
/// therefore largest — subproblems, so a single steal transfers a big
/// slice of the search tree.
struct Frontier {
  struct alignas(64) Shard {
    std::mutex m;
    std::deque<interval::Box> stack;
  };
  std::vector<Shard> shards;
  /// Boxes pushed but not yet retired (pruned / leaf / reported). The
  /// frontier is exhausted — query UNSAT — when this reaches zero.
  std::atomic<std::int64_t> in_flight{0};

  explicit Frontier(std::size_t workers) : shards(workers) {}

  void push_local(std::size_t w, interval::Box box) {
    std::lock_guard<std::mutex> lock(shards[w].m);
    shards[w].stack.push_back(std::move(box));
  }

  bool pop(std::size_t w, interval::Box& out) {
    {
      Shard& own = shards[w];
      std::lock_guard<std::mutex> lock(own.m);
      if (!own.stack.empty()) {
        out = std::move(own.stack.back());
        own.stack.pop_back();
        return true;
      }
    }
    for (std::size_t k = 1; k < shards.size(); ++k) {
      Shard& victim = shards[(w + k) % shards.size()];
      std::lock_guard<std::mutex> lock(victim.m);
      if (!victim.stack.empty()) {
        out = std::move(victim.stack.front());
        victim.stack.pop_front();
        return true;
      }
    }
    return false;
  }
};

/// Parallel branch-and-prune: the frontier is shared, every worker runs
/// its own contractor (HC4 keeps mutable per-schedule scratch), and the
/// first (δ-)SAT box cancels everyone.
void solve_parallel(const ContractorSpec& spec, const interval::Box& box,
                    const IcpConfig& config, int workers,
                    SharedBudget& budget, SharedOutcome& outcome,
                    parallel::CancellationToken& cancel,
                    IcpStats& merged_stats) {
  Frontier frontier(static_cast<std::size_t>(workers));
  frontier.in_flight.store(1, std::memory_order_relaxed);
  frontier.push_local(0, box);

  std::vector<IcpStats> worker_stats(static_cast<std::size_t>(workers));
  for (IcpStats& s : worker_stats) s.max_depth_width = box.max_width();

  parallel::ThreadPool::global().run_on_workers(
      static_cast<std::size_t>(workers), [&](std::size_t w) {
        Hc4Contractor contractor = spec.make();
        IcpStats& stats = worker_stats[w];
        interval::Box current;
        int idle_spins = 0;

        while (!cancel.cancelled()) {
          if (!frontier.pop(w, current)) {
            if (frontier.in_flight.load(std::memory_order_acquire) <= 0) {
              return;  // frontier drained: UNSAT
            }
            // Brief spin before yielding: boxes reappear quickly while
            // peers are mid-split.
            if (++idle_spins > 64) std::this_thread::yield();
            continue;
          }
          idle_spins = 0;

          if (!budget.admit_box()) {
            outcome.exhausted.store(true, std::memory_order_release);
            cancel.cancel();
            return;
          }
          ++stats.boxes_processed;

          const ContractResult cr = contractor.contract_fixpoint(
              current, config.hc4_passes, config.hc4_improvement);
          if (cr == ContractResult::kEmpty || current.is_empty()) {
            ++stats.boxes_pruned;
            frontier.in_flight.fetch_sub(1, std::memory_order_acq_rel);
            continue;
          }

          stats.max_depth_width =
              std::min(stats.max_depth_width, current.max_width());

          if (contractor.certainly_satisfied(current)) {
            outcome.report_sat(SatResult::kSat, std::move(current), cancel);
            frontier.in_flight.fetch_sub(1, std::memory_order_acq_rel);
            return;
          }
          if (current.max_width() <= config.delta) {
            outcome.report_sat(SatResult::kDeltaSat, std::move(current),
                               cancel);
            frontier.in_flight.fetch_sub(1, std::memory_order_acq_rel);
            return;
          }

          auto [left, right] = current.split_widest();
          ++stats.splits;
          // Two children replace one parent: net +1 in flight. Publish
          // before pushing so peers never observe a transient zero.
          frontier.in_flight.fetch_add(1, std::memory_order_acq_rel);
          frontier.push_local(w, std::move(left));
          frontier.push_local(w, std::move(right));
        }
      });

  for (const IcpStats& s : worker_stats) merge_stats(merged_stats, s);
}

/// Assembles the final verdict from the shared outcome flags.
IcpResult finalize(SharedOutcome& outcome, SharedBudget& budget,
                   IcpStats stats) {
  IcpResult result;
  result.stats = stats;
  std::lock_guard<std::mutex> lock(outcome.m);
  if (outcome.sat_found) {
    result.verdict = outcome.sat_verdict;
    result.witness = outcome.sat_witness;
  } else if (outcome.exhausted.load(std::memory_order_acquire)) {
    result.verdict = SatResult::kUnknown;
  } else {
    result.verdict = SatResult::kUnsat;
  }
  result.stats.solve_time_s = budget.elapsed_s();
  return result;
}

}  // namespace

IcpResult IcpSolver::solve(const Conjunction& conjunction,
                           const interval::Box& box) const {
  SharedBudget budget(config_);

  if (conjunction.empty()) {
    // Trivially satisfied everywhere (if the box is nonempty).
    IcpResult result;
    result.verdict = box.is_empty() ? SatResult::kUnsat : SatResult::kSat;
    if (!box.is_empty()) result.witness = box;
    result.stats.solve_time_s = budget.elapsed_s();
    return result;
  }

  SharedOutcome outcome;
  parallel::CancellationToken cancel;
  IcpStats stats;
  stats.max_depth_width = box.max_width();

  const ContractorSpec spec(*pool_, conjunction, config_);
  const int threads = parallel::resolve_thread_count(config_.threads);
  if (threads <= 1 || box.is_empty()) {
    IcpStats seq_stats;
    solve_sequential(spec, box, config_, budget, outcome, cancel, seq_stats);
    merge_stats(stats, seq_stats);
  } else {
    solve_parallel(spec, box, config_, threads, budget, outcome, cancel,
                   stats);
  }
  return finalize(outcome, budget, stats);
}

IcpResult IcpSolver::solve(const Dnf& dnf, const interval::Box& box) const {
  // One budget for the whole DNF: a k-disjunct query previously received
  // k fresh budgets and could run k× over the configured limits.
  SharedBudget budget(config_);
  const std::size_t k = dnf.disjuncts.size();

  IcpResult aggregate;
  aggregate.verdict = SatResult::kUnsat;
  aggregate.stats.max_depth_width = box.max_width();

  std::vector<IcpResult> results(k);
  for (IcpResult& r : results) r.stats.max_depth_width = box.max_width();
  const int threads = parallel::resolve_thread_count(config_.threads);

  if (threads > 1 && k >= static_cast<std::size_t>(threads)) {
    // Concurrent disjunct dispatch (enough disjuncts to feed every
    // worker): each disjunct runs the sequential branch-and-prune on a
    // pool strand; the first SAT answer (or an exhausted budget)
    // cancels the rest. With fewer disjuncts than workers the sweep
    // below is used instead, parallelizing *within* each disjunct so no
    // worker idles.
    parallel::CancellationToken cancel;
    SharedOutcome dnf_outcome;  // only `exhausted` is shared DNF-wide
    std::vector<SharedOutcome> outcomes(k);
    std::atomic<std::size_t> next{0};
    const std::size_t strands =
        std::min<std::size_t>(k, static_cast<std::size_t>(threads));

    parallel::ThreadPool::global().run_on_workers(strands, [&](std::size_t) {
      while (!cancel.cancelled()) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= k) return;
        IcpStats stats;
        stats.max_depth_width = box.max_width();
        if (box.is_empty()) {
          results[i].verdict = SatResult::kUnsat;
          continue;
        }
        if (dnf.disjuncts[i].empty()) {
          outcomes[i].sat_found = true;
          outcomes[i].sat_verdict = SatResult::kSat;
          outcomes[i].sat_witness = box;
          cancel.cancel();
        } else {
          // Compile lazily on the claiming strand: a DNF whose first
          // disjunct SATs immediately cancels the rest before their
          // (O(nodes)) tape compilations ever run.
          const ContractorSpec spec(*pool_, dnf.disjuncts[i], config_);
          solve_sequential(spec, box, config_, budget, outcomes[i],
                           cancel, stats);
          if (outcomes[i].exhausted.load(std::memory_order_acquire)) {
            dnf_outcome.exhausted.store(true, std::memory_order_release);
          }
        }
        results[i].stats = stats;
        std::lock_guard<std::mutex> lock(outcomes[i].m);
        if (outcomes[i].sat_found) {
          results[i].verdict = outcomes[i].sat_verdict;
          results[i].witness = outcomes[i].sat_witness;
        } else if (cancel.cancelled()) {
          results[i].verdict = SatResult::kUnknown;
        } else {
          results[i].verdict = SatResult::kUnsat;
        }
      }
    });

    bool any_unknown =
        dnf_outcome.exhausted.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < k; ++i) {
      merge_stats(aggregate.stats, results[i].stats);
      if (results[i].is_sat() && aggregate.verdict != SatResult::kSat &&
          aggregate.verdict != SatResult::kDeltaSat) {
        aggregate.verdict = results[i].verdict;
        aggregate.witness = std::move(results[i].witness);
      } else if (results[i].verdict == SatResult::kUnknown &&
                 !results[i].is_sat()) {
        any_unknown = true;
      }
    }
    if (!aggregate.is_sat() && any_unknown) {
      aggregate.verdict = SatResult::kUnknown;
    }
    aggregate.stats.solve_time_s = budget.elapsed_s();
    return aggregate;
  }

  // Sequential disjunct sweep (seed semantics: first SAT short-circuits)
  // under the shared budget.
  bool any_unknown = false;
  for (const Conjunction& disjunct : dnf.disjuncts) {
    SharedOutcome outcome;
    parallel::CancellationToken cancel;
    IcpStats stats;
    stats.max_depth_width = box.max_width();
    if (disjunct.empty()) {
      if (!box.is_empty()) {
        aggregate.verdict = SatResult::kSat;
        aggregate.witness = box;
        aggregate.stats.solve_time_s = budget.elapsed_s();
        return aggregate;
      }
      continue;
    }
    if (!box.is_empty()) {
      const ContractorSpec spec(*pool_, disjunct, config_);
      if (threads > 1) {
        solve_parallel(spec, box, config_, threads, budget, outcome, cancel,
                       stats);
      } else {
        IcpStats seq_stats;
        solve_sequential(spec, box, config_, budget, outcome, cancel,
                         seq_stats);
        merge_stats(stats, seq_stats);
      }
    }
    merge_stats(aggregate.stats, stats);
    std::lock_guard<std::mutex> lock(outcome.m);
    if (outcome.sat_found) {
      aggregate.verdict = outcome.sat_verdict;
      aggregate.witness = std::move(outcome.sat_witness);
      aggregate.stats.solve_time_s = budget.elapsed_s();
      return aggregate;
    }
    if (outcome.exhausted.load(std::memory_order_acquire)) any_unknown = true;
  }
  if (any_unknown) aggregate.verdict = SatResult::kUnknown;
  aggregate.stats.solve_time_s = budget.elapsed_s();
  return aggregate;
}

}  // namespace bcert::smt
