#pragma once
/// \file region.h
/// \brief Rectangular state-space regions and their constraint encodings.
///
/// The paper's case study uses: X0 = a rectangle, U = the complement of a
/// rectangle (a disjunction of four halfspaces), and the domain of
/// interest D = (X0 ∪ U)′. Membership and non-membership are encoded as
/// conjunctions / DNF over the shared expression pool, which is exactly
/// the form the δ-SAT solver consumes.

#include <vector>

#include "src/expr/expr.h"
#include "src/interval/box.h"
#include "src/linalg/vector.h"
#include "src/smt/constraint.h"

namespace bcert::core {

/// Axis-aligned rectangle [lo, hi] in state space.
struct Rect {
  linalg::Vector lo;
  linalg::Vector hi;

  std::size_t dims() const { return lo.size(); }

  /// Throws std::invalid_argument when lo/hi mismatch or lo > hi.
  void validate() const;

  bool contains(const linalg::Vector& x) const;

  /// All 2^n corner points.
  std::vector<linalg::Vector> vertices() const;

  interval::Box as_box() const;

  /// Center point.
  linalg::Vector center() const;
};

/// Conjunction encoding of `x ∈ rect`: for each i, lo_i ≤ x_i ≤ hi_i.
smt::Conjunction inside_rect(expr::ExprPool& pool, const Rect& rect);

/// DNF encoding of `x ∉ rect` (strict): ∨_i (x_i < lo_i ∨ x_i > hi_i).
/// Each disjunct is a single halfspace constraint.
smt::Dnf outside_rect(expr::ExprPool& pool, const Rect& rect);

/// One halfspace `x_dim ≤ bound` (side = -1) or `x_dim ≥ bound`
/// (side = +1) of the complement of a rectangle; used for the analytic
/// level-set bound of each unsafe halfspace.
struct Halfspace {
  std::size_t dim = 0;
  int side = 1;        ///< +1: x_dim ≥ bound, −1: x_dim ≤ bound
  double bound = 0.0;
};

/// The 2n halfspaces whose union is the complement of \p rect.
std::vector<Halfspace> complement_halfspaces(const Rect& rect);

/// Constraint `x ∈ halfspace` over the pool.
smt::Constraint halfspace_constraint(expr::ExprPool& pool,
                                     const Halfspace& hs);

}  // namespace bcert::core
