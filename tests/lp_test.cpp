// Unit tests for the two-phase simplex LP solver.
#include <random>

#include <gtest/gtest.h>

#include "src/lp/problem.h"
#include "src/lp/simplex.h"

namespace bcert::lp {
namespace {

using linalg::Vector;

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum (2, 6), objective 36.
  LpProblem p = LpProblem::with_free_vars(2);
  p.sense = Sense::kMaximize;
  p.objective = Vector{3.0, 5.0};
  p.lower = {0.0, 0.0};
  p.add_row(Vector{1.0, 0.0}, RowRel::kLe, 4.0);
  p.add_row(Vector{0.0, 2.0}, RowRel::kLe, 12.0);
  p.add_row(Vector{3.0, 2.0}, RowRel::kLe, 18.0);
  LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal) << lp_status_name(s.status);
  EXPECT_NEAR(s.objective, 36.0, 1e-8);
  EXPECT_NEAR(s.x[0], 2.0, 1e-8);
  EXPECT_NEAR(s.x[1], 6.0, 1e-8);
}

TEST(Simplex, MinimizationWithGeRows) {
  // min 2x + 3y s.t. x + y >= 4, x - y <= 2, x,y >= 0. Optimum: y as big
  // as allowed? obj increases in both -> x+y = 4 active; min 2x+3y on
  // x+y=4 with x <= y+2: best at y = 1, x = 3 -> 6+3 = 9? compare x=4,y=0:
  // violates x-y<=2? 4-0=4 > 2 violates. x=3,y=1: obj 9. x=2,y=2: 10.
  LpProblem p = LpProblem::with_free_vars(2);
  p.objective = Vector{2.0, 3.0};
  p.lower = {0.0, 0.0};
  p.add_row(Vector{1.0, 1.0}, RowRel::kGe, 4.0);
  p.add_row(Vector{1.0, -1.0}, RowRel::kLe, 2.0);
  LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-8);
  EXPECT_NEAR(s.x[0], 3.0, 1e-8);
  EXPECT_NEAR(s.x[1], 1.0, 1e-8);
}

TEST(Simplex, EqualityRow) {
  // min x + y s.t. x + 2y = 3, x,y >= 0 -> (0, 1.5) objective 1.5.
  LpProblem p = LpProblem::with_free_vars(2);
  p.objective = Vector{1.0, 1.0};
  p.lower = {0.0, 0.0};
  p.add_row(Vector{1.0, 2.0}, RowRel::kEq, 3.0);
  LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.5, 1e-8);
  EXPECT_NEAR(s.x[1], 1.5, 1e-8);
}

TEST(Simplex, FreeVariables) {
  // min x s.t. x >= -5 expressed via a row (x free). Optimum -5.
  LpProblem p = LpProblem::with_free_vars(1);
  p.objective = Vector{1.0};
  p.add_row(Vector{1.0}, RowRel::kGe, -5.0);
  LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -5.0, 1e-8);
}

TEST(Simplex, BoxBounds) {
  // max x + y with -1 <= x <= 2, 0.5 <= y <= 1.5.
  LpProblem p = LpProblem::with_free_vars(2);
  p.sense = Sense::kMaximize;
  p.objective = Vector{1.0, 1.0};
  p.lower = {-1.0, 0.5};
  p.upper = {2.0, 1.5};
  LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-8);
  EXPECT_NEAR(s.x[1], 1.5, 1e-8);
}

TEST(Simplex, UpperBoundOnlyVariable) {
  // min -x with x <= 3 (no lower bound) -> x = 3.
  LpProblem p = LpProblem::with_free_vars(1);
  p.objective = Vector{-1.0};
  p.upper = {3.0};
  LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem p = LpProblem::with_free_vars(1);
  p.objective = Vector{1.0};
  p.lower = {0.0};
  p.add_row(Vector{1.0}, RowRel::kLe, -1.0);  // x <= -1 with x >= 0
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem p = LpProblem::with_free_vars(1);
  p.sense = Sense::kMaximize;
  p.objective = Vector{1.0};
  p.lower = {0.0};
  EXPECT_EQ(solve_lp(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, DegenerateDoesNotCycle) {
  // Classic degenerate LP (Beale's example structure).
  LpProblem p = LpProblem::with_free_vars(4);
  p.sense = Sense::kMinimize;
  p.objective = Vector{-0.75, 150.0, -0.02, 6.0};
  p.lower = {0.0, 0.0, 0.0, 0.0};
  p.add_row(Vector{0.25, -60.0, -0.04, 9.0}, RowRel::kLe, 0.0);
  p.add_row(Vector{0.5, -90.0, -0.02, 3.0}, RowRel::kLe, 0.0);
  p.add_row(Vector{0.0, 0.0, 1.0, 0.0}, RowRel::kLe, 1.0);
  LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-6);
}

TEST(Simplex, RejectsMalformedRow) {
  LpProblem p = LpProblem::with_free_vars(2);
  EXPECT_THROW(p.add_row(Vector{1.0}, RowRel::kLe, 0.0),
               std::invalid_argument);
}

TEST(Simplex, MarginMaximizationShape) {
  // The barrier-synthesis LP shape: find coefficients c in [-1,1] and
  // margin g maximized s.t. constraints a·c <= -g (decrease conditions).
  // Planted: constraints generated from c* = (0.5, 0.5) decrease samples.
  LpProblem p = LpProblem::with_free_vars(3);  // c1, c2, g
  p.sense = Sense::kMaximize;
  p.objective = Vector{0.0, 0.0, 1.0};
  p.lower = {-1.0, -1.0, 0.0};
  p.upper = {1.0, 1.0, kLpInf};
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> d(0.1, 2.0);
  for (int i = 0; i < 50; ++i) {
    // (−a1)c1 + (−a2)c2 + g <= 0 with a1, a2 > 0 forces c1, c2 toward +1.
    p.add_row(Vector{-d(rng), -d(rng), 1.0}, RowRel::kLe, 0.0);
  }
  LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_GT(s.x[2], 0.0);        // positive margin found
  EXPECT_NEAR(s.x[0], 1.0, 1e-6);  // pushed to bound
  EXPECT_NEAR(s.x[1], 1.0, 1e-6);
}

// Property sweep: random feasible LPs — verify optimality certificate
// loosely by sampling: no random feasible point beats the reported optimum.
class RandomLp : public ::testing::TestWithParam<int> {};

TEST_P(RandomLp, SampledPointsNeverBeatOptimum) {
  std::mt19937 rng(GetParam() * 977 + 13);
  std::uniform_real_distribution<double> coeff(-1.0, 1.0);
  const std::size_t n = 3;
  LpProblem p = LpProblem::with_free_vars(n);
  p.sense = Sense::kMaximize;
  for (std::size_t j = 0; j < n; ++j) {
    p.objective[j] = coeff(rng);
    p.lower[j] = 0.0;
    p.upper[j] = 2.0;
  }
  for (int i = 0; i < 6; ++i) {
    Vector row(n);
    for (std::size_t j = 0; j < n; ++j) row[j] = std::fabs(coeff(rng));
    p.add_row(std::move(row), RowRel::kLe, 1.5);
  }
  LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  // Sample feasible points and compare.
  std::uniform_real_distribution<double> samp(0.0, 2.0);
  for (int t = 0; t < 2000; ++t) {
    Vector x(n);
    for (std::size_t j = 0; j < n; ++j) x[j] = samp(rng);
    bool feasible = true;
    for (const LpRow& row : p.rows) {
      if (dot(row.coeffs, x) > row.rhs + 1e-12) {
        feasible = false;
        break;
      }
    }
    if (feasible) {
      EXPECT_LE(dot(p.objective, x), s.objective + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLp, ::testing::Range(0, 10));

}  // namespace
}  // namespace bcert::lp
