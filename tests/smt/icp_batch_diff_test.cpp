// Differential tests for the batched (structure-of-arrays) tape engine:
// contract_fixpoint_batch must be bit-identical, lane by lane, to the
// scalar contraction hot loop at every available SIMD tier, and the
// batched ICP frontier must agree with the scalar frontier on every
// verdict. Also pins the exploration-order contract (stable split-index
// tie-break) and the BoxBatch plane layout.
#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/expr/expr.h"
#include "src/interval/box.h"
#include "src/interval/box_batch.h"
#include "src/smt/hc4.h"
#include "src/smt/icp_solver.h"

namespace bcert::smt {
namespace {

using expr::ExprId;
using expr::ExprPool;
using interval::Box;
using interval::BoxBatch;
using interval::Interval;
using linalg::Vector;

constexpr int kNumVars = 3;

/// Random DAG / conjunction / box generators — the same corpus shape as
/// the scalar tape differential fuzz harness (hc4_tape_diff_test.cpp).
ExprId random_dag(ExprPool& pool, std::mt19937& rng, int num_ops) {
  std::vector<ExprId> terms;
  for (int v = 0; v < kNumVars; ++v) terms.push_back(pool.var(v));
  std::uniform_real_distribution<double> cdist(-3.0, 3.0);
  for (int i = 0; i < 3; ++i) terms.push_back(pool.constant(cdist(rng)));

  auto pick = [&] { return terms[rng() % terms.size()]; };
  for (int i = 0; i < num_ops; ++i) {
    ExprId t = terms.front();
    switch (rng() % 17) {
      case 0: t = pool.add(pick(), pick()); break;
      case 1: t = pool.sub(pick(), pick()); break;
      case 2: t = pool.mul(pick(), pick()); break;
      case 3: t = pool.div(pick(), pick()); break;
      case 4: t = pool.neg(pick()); break;
      case 5: t = pool.sin(pick()); break;
      case 6: t = pool.cos(pick()); break;
      case 7: t = pool.tanh(pick()); break;
      case 8: t = pool.sigmoid(pick()); break;
      case 9: t = pool.sqr(pick()); break;
      case 10: t = pool.abs(pick()); break;
      case 11: t = pool.min(pick(), pick()); break;
      case 12: t = pool.max(pick(), pick()); break;
      case 13:
        t = pool.pow(pick(), static_cast<std::int32_t>(2 + rng() % 3));
        break;
      case 14: t = pool.relu(pick()); break;
      case 15: t = pool.exp(pick()); break;
      case 16: t = pool.sqrt(pick()); break;
    }
    terms.push_back(t);
  }
  return terms.back();
}

Conjunction random_conjunction(ExprPool& pool, std::mt19937& rng) {
  static constexpr Rel kRels[] = {Rel::kLe, Rel::kLt, Rel::kGe, Rel::kGt};
  Conjunction c;
  const int n = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < n; ++i) {
    c.add(random_dag(pool, rng, 4 + static_cast<int>(rng() % 12)),
          kRels[rng() % 4]);
  }
  return c;
}

Box random_box(std::mt19937& rng) {
  std::uniform_real_distribution<double> bdist(-5.0, 5.0);
  std::vector<Interval> dims;
  for (int v = 0; v < kNumVars; ++v) {
    const int shape = static_cast<int>(rng() % 8);
    if (shape == 0) {
      dims.emplace_back(0.0, 0.0);
    } else if (shape == 1) {
      const double p = bdist(rng);
      dims.emplace_back(p, p);
    } else {
      double lo = bdist(rng), hi = bdist(rng);
      if (lo > hi) std::swap(lo, hi);
      dims.emplace_back(lo, hi);
    }
  }
  return Box(std::move(dims));
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

::testing::AssertionResult boxes_bit_identical(const Box& a, const Box& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "dimension mismatch";
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!bits_equal(a[i].lo(), b[i].lo()) ||
        !bits_equal(a[i].hi(), b[i].hi())) {
      return ::testing::AssertionFailure()
             << "dim " << i << ": scalar " << a[i] << " vs batch " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

std::vector<SimdTier> available_tiers() {
  std::vector<SimdTier> tiers;
  for (const SimdTier t :
       {SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2}) {
    if (simd_tier_available(t)) tiers.push_back(t);
  }
  return tiers;
}

/// Scalar reference for one box: contract_fixpoint on a scalar tape
/// contractor plus the hot loop's certainly_satisfied call.
struct ScalarRef {
  ContractResult result;
  bool satisfied;
  Box box;
};

ScalarRef scalar_reference(const std::shared_ptr<const Hc4Tape>& tape,
                           const Box& original, int passes, double ratio) {
  Hc4Contractor contractor(tape);
  ScalarRef ref{ContractResult::kNoChange, false, original};
  ref.result = contractor.contract_fixpoint(ref.box, passes, ratio);
  ref.satisfied = ref.result != ContractResult::kEmpty &&
                  !ref.box.is_empty() &&
                  contractor.certainly_satisfied(ref.box);
  return ref;
}

TEST(IcpBatchDiff, BatchedContractionBitIdenticalAtEveryTier) {
  const std::vector<SimdTier> tiers = available_tiers();
  ASSERT_FALSE(tiers.empty());
  std::mt19937 rng(20260731);
  int survivors = 0;

  for (int trial = 0; trial < 120; ++trial) {
    ExprPool pool;
    const Conjunction c = random_conjunction(pool, rng);
    const auto tape = std::make_shared<const Hc4Tape>(pool, c);

    // Mixed batch widths, including odd sizes (AVX2 tail lanes).
    const std::size_t lanes = 1 + rng() % 8;
    std::vector<Box> originals;
    for (std::size_t i = 0; i < lanes; ++i) originals.push_back(random_box(rng));

    std::vector<ScalarRef> refs;
    for (const Box& b : originals) {
      refs.push_back(scalar_reference(tape, b, 8, 0.05));
    }

    for (const SimdTier tier : tiers) {
      BoxBatch batch(kNumVars, lanes);
      for (const Box& b : originals) batch.push_back(b);
      auto regs = tape->make_batch_registers(lanes);
      std::vector<Hc4Tape::LaneOutcome> out(lanes);
      tape->contract_fixpoint_batch(batch, regs, 8, 0.05, out.data(), tier);

      for (std::size_t l = 0; l < lanes; ++l) {
        ASSERT_EQ(refs[l].result, out[l].result)
            << "trial " << trial << " lane " << l << " tier "
            << simd_tier_name(tier);
        if (refs[l].result == ContractResult::kEmpty) continue;
        ++survivors;
        EXPECT_TRUE(boxes_bit_identical(refs[l].box, batch.box(l)))
            << "trial " << trial << " lane " << l << " tier "
            << simd_tier_name(tier);
        EXPECT_EQ(refs[l].satisfied, out[l].satisfied)
            << "trial " << trial << " lane " << l << " tier "
            << simd_tier_name(tier);
      }
    }
  }
  // The corpus must exercise surviving (comparable) lanes.
  EXPECT_GT(survivors, 100);
}

TEST(IcpBatchDiff, Avx2MatchesSse2KernelForKernel) {
  if (!simd_tier_available(SimdTier::kAvx2)) {
    GTEST_SKIP() << "AVX2 not available on this build/CPU";
  }
  ASSERT_TRUE(simd_tier_available(SimdTier::kSse2));
  std::mt19937 rng(424242);
  for (int trial = 0; trial < 150; ++trial) {
    ExprPool pool;
    const Conjunction c = random_conjunction(pool, rng);
    const auto tape = std::make_shared<const Hc4Tape>(pool, c);
    const std::size_t lanes = 2 + rng() % 7;

    BoxBatch sse(kNumVars, lanes), avx(kNumVars, lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
      const Box b = random_box(rng);
      sse.push_back(b);
      avx.push_back(b);
    }
    auto regs_sse = tape->make_batch_registers(lanes);
    auto regs_avx = tape->make_batch_registers(lanes);
    std::vector<Hc4Tape::LaneOutcome> out_sse(lanes), out_avx(lanes);
    tape->contract_fixpoint_batch(sse, regs_sse, 8, 0.05, out_sse.data(),
                                  SimdTier::kSse2);
    tape->contract_fixpoint_batch(avx, regs_avx, 8, 0.05, out_avx.data(),
                                  SimdTier::kAvx2);
    for (std::size_t l = 0; l < lanes; ++l) {
      ASSERT_EQ(out_sse[l].result, out_avx[l].result)
          << "trial " << trial << " lane " << l;
      EXPECT_EQ(out_sse[l].satisfied, out_avx[l].satisfied);
      if (out_sse[l].result != ContractResult::kEmpty) {
        EXPECT_TRUE(boxes_bit_identical(sse.box(l), avx.box(l)))
            << "trial " << trial << " lane " << l;
      }
    }
  }
}

IcpConfig solver_config(int batch) {
  IcpConfig c;
  c.delta = 1e-2;
  c.max_boxes = 500'000;
  c.time_limit_s = 60.0;
  c.threads = 1;
  c.batch_size = batch;
  return c;
}

/// Random atoms with varied SAT/UNSAT status (parallel_icp_test shapes).
Constraint random_atom(ExprPool& pool, std::mt19937& rng) {
  std::uniform_real_distribution<double> coef(-2.0, 2.0);
  std::uniform_int_distribution<int> kind(0, 3);
  std::uniform_int_distribution<int> rel_pick(0, 1);
  const ExprId x = pool.var(0);
  const ExprId y = pool.var(1);
  ExprId e = expr::kNoExpr;
  switch (kind(rng)) {
    case 0:
      e = pool.sub(pool.add(pool.sqr(x), pool.sqr(y)),
                   pool.constant(std::abs(coef(rng)) + 0.1));
      break;
    case 1:
      e = pool.add(
          pool.add(pool.sin(pool.mul(pool.constant(coef(rng)), x)),
                   pool.cos(pool.mul(pool.constant(coef(rng)), y))),
          pool.constant(coef(rng)));
      break;
    case 2:
      e = pool.sub(pool.mul(x, y), pool.constant(coef(rng)));
      break;
    default:
      e = pool.add(pool.sub(pool.tanh(x), y), pool.constant(coef(rng)));
      break;
  }
  return {e, rel_pick(rng) == 0 ? Rel::kLe : Rel::kGe};
}

TEST(IcpBatchDiff, SolverBatchedVsScalarEquivalenceSweep) {
  std::mt19937 rng(2018);
  const Box box = Box::from_bounds({{-2.0, 2.0}, {-2.0, 2.0}});
  int sat_seen = 0, unsat_seen = 0;
  for (int trial = 0; trial < 25; ++trial) {
    ExprPool pool;
    Conjunction c;
    const int m = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < m; ++i) {
      const Constraint atom = random_atom(pool, rng);
      c.add(atom.lhs, atom.rel);
    }

    const IcpSolver scalar(pool, solver_config(1));
    const IcpSolver batched(pool, solver_config(8));
    const IcpResult rs = scalar.solve(c, box);
    const IcpResult rb = batched.solve(c, box);

    ASSERT_NE(rs.verdict, SatResult::kUnknown) << "trial " << trial;
    if (rs.is_unsat()) {
      ++unsat_seen;
      // UNSAT is a proof — the batched frontier explores the same split
      // tree (same order contract) and must reproduce it exactly.
      EXPECT_EQ(rb.verdict, SatResult::kUnsat) << "trial " << trial;
      EXPECT_FALSE(rb.witness.has_value());
      EXPECT_EQ(rs.stats.splits, rb.stats.splits) << "trial " << trial;
    } else {
      ++sat_seen;
      EXPECT_TRUE(rb.is_sat()) << "trial " << trial;
      ASSERT_TRUE(rb.witness.has_value());
      if (rb.verdict == SatResult::kSat) {
        const Vector w = rb.witness_point();
        for (const Constraint& atom : c.constraints) {
          const double v = pool.eval(atom.lhs, w);
          if (atom.rel == Rel::kLe) EXPECT_LE(v, 1e-12);
          if (atom.rel == Rel::kGe) EXPECT_GE(v, -1e-12);
        }
      }
    }
  }
  EXPECT_GT(sat_seen, 0);
  EXPECT_GT(unsat_seen, 0);
}

/// The native jit contractor plugged into the solver must reproduce the
/// tape solver's exact search tree — verdict, box counts, splits and
/// witness — on the same SAT/UNSAT-mixed corpus as the batched sweep.
/// (On hosts without native emission the jit rung degrades to the tape,
/// which makes this equivalence trivially true — still worth running:
/// it pins the degradation path.)
TEST(IcpBatchDiff, SolverJitVsTapeEquivalenceSweep) {
  std::mt19937 rng(4711);
  const Box box = Box::from_bounds({{-2.0, 2.0}, {-2.0, 2.0}});
  IcpConfig tape_cfg = solver_config(1);
  tape_cfg.hc4_mode = Hc4Mode::kTape;
  IcpConfig jit_cfg = solver_config(1);
  jit_cfg.hc4_mode = Hc4Mode::kJit;
  for (int trial = 0; trial < 25; ++trial) {
    ExprPool pool;
    Conjunction c;
    const int m = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < m; ++i) {
      const Constraint atom = random_atom(pool, rng);
      c.add(atom.lhs, atom.rel);
    }

    const IcpSolver tape_solver(pool, tape_cfg);
    const IcpSolver jit_solver(pool, jit_cfg);
    const IcpResult rt = tape_solver.solve(c, box);
    const IcpResult rj = jit_solver.solve(c, box);

    ASSERT_EQ(rt.verdict, rj.verdict) << "trial " << trial;
    EXPECT_EQ(rt.stats.boxes_processed, rj.stats.boxes_processed)
        << "trial " << trial;
    EXPECT_EQ(rt.stats.splits, rj.stats.splits) << "trial " << trial;
    ASSERT_EQ(rt.witness.has_value(), rj.witness.has_value());
    if (rt.witness.has_value()) {
      for (std::size_t d = 0; d < rt.witness->size(); ++d) {
        EXPECT_EQ((*rt.witness)[d].lo(), (*rj.witness)[d].lo());
        EXPECT_EQ((*rt.witness)[d].hi(), (*rj.witness)[d].hi());
      }
    }
  }
}

TEST(IcpBatchDiff, BatchedSequentialIsDeterministic) {
  ExprPool pool;
  Conjunction c;
  const ExprId r2 = pool.add(pool.sqr(pool.var(0)), pool.sqr(pool.var(1)));
  c.add(pool.sub(r2, pool.constant(1.0)), Rel::kLe);
  c.add(pool.sub(pool.constant(0.25), r2), Rel::kLe);

  const IcpSolver solver(pool, solver_config(8));
  const Box box = Box::from_bounds({{-2.0, 2.0}, {-2.0, 2.0}});
  const IcpResult a = solver.solve(c, box);
  const IcpResult b = solver.solve(c, box);
  ASSERT_TRUE(a.is_sat());
  ASSERT_TRUE(b.is_sat());
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(*a.witness, *b.witness);
  EXPECT_EQ(a.stats.boxes_processed, b.stats.boxes_processed);
  EXPECT_EQ(a.stats.splits, b.stats.splits);
}

TEST(IcpBatchDiff, WidestDimTieBreaksToLowestIndex) {
  // The exploration-order contract: equal widths split the lowest index.
  const Box b = Box::from_bounds({{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}});
  EXPECT_EQ(b.widest_dim(), 0u);
  const Box c = Box::from_bounds({{0.0, 0.5}, {0.0, 1.0}, {0.0, 1.0}});
  EXPECT_EQ(c.widest_dim(), 1u);
}

TEST(IcpBatchDiff, BoxBatchRoundTripsLanesBitExactly) {
  std::mt19937 rng(7);
  BoxBatch batch(kNumVars, 5);
  EXPECT_EQ(batch.size(), 0u);
  std::vector<Box> boxes;
  for (int i = 0; i < 5; ++i) {
    boxes.push_back(random_box(rng));
    batch.push_back(boxes.back());
  }
  EXPECT_EQ(batch.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(boxes_bit_identical(boxes[i], batch.box(i)));
    EXPECT_DOUBLE_EQ(boxes[i].max_width(), batch.max_width(i));
    EXPECT_DOUBLE_EQ(boxes[i].perimeter(), batch.perimeter(i));
    EXPECT_EQ(boxes[i].is_empty(), batch.lane_is_empty(i));
  }
  // Plane rows are 32-byte aligned (the SIMD layout contract).
  for (int d = 0; d < kNumVars; ++d) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(batch.lo_plane(d)) % 32, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(batch.hi_plane(d)) % 32, 0u);
  }
}

}  // namespace
}  // namespace bcert::smt
