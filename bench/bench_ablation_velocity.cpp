// Ablation D: vehicle speed vs certifiability.
//
// DESIGN.md §6 derives that the paper's region structure (|d| ≤ 5,
// |θ| ≤ π/2−ε) only admits quadratic barrier certificates when the
// speed-to-steering-authority ratio is modest: at the domain corner
// (d = 5, θ ≈ π/2) the outward drift ḋ = V sin θ ≈ V fights the bounded
// turn rate |u| < 1, and above a critical V the Lie derivative turns
// positive for *every* PD quadratic. This sweep measures that boundary
// empirically with a fixed controller.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace bcert;

  std::printf("# Ablation D: velocity vs certifiability "
              "(10-neuron distilled controller, fixed gains)\n");
  std::printf("# %9s | %7s %8s %9s | %8s\n", "velocity", "status",
              "margin", "level", "tot(s)");

  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 42);

  for (const double v :
       {0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0}) {
    expr::ExprPool pool;
    const dubins::ErrorModel model{v, 0.0};
    core::BarrierProblem p;
    p.pool = &pool;
    p.sim_field = dubins::closed_loop_field(model, controller);
    p.sym_field = dubins::closed_loop_field_expr(model, controller, pool);
    p.initial_set = bench::paper_initial_set();
    p.safe_rect = bench::paper_safe_rect();
    core::VerifierOptions opts;
    opts.max_candidate_iterations = 6;
    core::Engine engine;
    core::JobOptions job;
    job.verify = opts;
    const core::VerifyResult r = engine.verify(p, job);
    std::printf("  %9.2f | %7s %8.4f %9.4f | %8.2f\n", v,
                r.safe() ? "SAFE" : "fail", r.lp_margin, r.level,
                r.timings.total_time_s);
    std::fflush(stdout);
  }
  std::printf("#\n# reading: the LP margin decays roughly like 1/V and "
              "the certified invariant\n# shrinks toward X0 (level "
              "falls) as speed outpaces the bounded turn rate —\n# the "
              "LP compensates by tilting/shrinking the ellipse rather "
              "than failing\n# outright. See DESIGN.md S6 on the V = 1 "
              "modeling choice.\n");
  return 0;
}
