#include "src/core/verify_types.h"

#include <stdexcept>

namespace bcert::core {

ode::VectorFieldInPlace BarrierProblem::make_fast_field() const {
  if (sim_field_factory) return sim_field_factory();
  // Wrapper captures sim_field by value (a shared_ptr-like copy of the
  // std::function) so the returned field is self-contained.
  return [f = sim_field](const linalg::Vector& x, linalg::Vector& dx) {
    dx = f(x);
  };
}

bool BarrierProblem::has_invariant_dims() const {
  for (std::size_t i = 0; i < dims(); ++i) {
    if (!dim_unsafe(i)) return true;
  }
  return false;
}

void BarrierProblem::validate() const {
  if (pool == nullptr) {
    throw std::invalid_argument("BarrierProblem: pool is required");
  }
  if (!sim_field) {
    throw std::invalid_argument("BarrierProblem: sim_field is required");
  }
  initial_set.validate();
  safe_rect.validate();
  const std::size_t n = initial_set.dims();
  if (safe_rect.dims() != n || sym_field.size() != n) {
    throw std::invalid_argument("BarrierProblem: dimension mismatch");
  }
  if (!unsafe_dims.empty()) {
    if (unsafe_dims.size() != n) {
      throw std::invalid_argument("BarrierProblem: unsafe_dims size");
    }
    bool any = false;
    for (bool b : unsafe_dims) any = any || b;
    if (!any) {
      throw std::invalid_argument(
          "BarrierProblem: at least one dimension must be unsafe");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (initial_set.lo[i] < safe_rect.lo[i] ||
        initial_set.hi[i] > safe_rect.hi[i]) {
      throw std::invalid_argument(
          "BarrierProblem: X0 must lie inside the safe rectangle");
    }
  }
}

const char* template_kind_name(TemplateSpec::Kind k) {
  switch (k) {
    case TemplateSpec::Kind::kQuadratic: return "quadratic";
    case TemplateSpec::Kind::kPolynomial: return "polynomial";
  }
  return "?";
}

const char* verify_status_name(VerifyStatus s) {
  switch (s) {
    case VerifyStatus::kSafe: return "SAFE";
    case VerifyStatus::kLpInfeasible: return "no-conclusion(LP-infeasible)";
    case VerifyStatus::kMaxCandidateIterations:
      return "no-conclusion(max-candidate-iterations)";
    case VerifyStatus::kLevelSetFailed: return "no-conclusion(level-set)";
    case VerifyStatus::kSolverBudget: return "no-conclusion(solver-budget)";
    case VerifyStatus::kDomainNotInvariant:
      return "no-conclusion(domain-not-invariant)";
    case VerifyStatus::kCancelled: return "no-conclusion(cancelled)";
    case VerifyStatus::kDeadlineExceeded:
      return "no-conclusion(deadline-exceeded)";
    case VerifyStatus::kResourceExhausted:
      return "no-conclusion(resource-exhausted)";
    case VerifyStatus::kInternalError: return "no-conclusion(internal-error)";
  }
  return "?";
}

void VerifyTimings::accumulate(const VerifyTimings& other) {
  candidate_iterations += other.candidate_iterations;
  lp_solves += other.lp_solves;
  smt5_queries += other.smt5_queries;
  lp_time_s += other.lp_time_s;
  smt5_time_s += other.smt5_time_s;
  simulation_time_s += other.simulation_time_s;
  generator_time_s += other.generator_time_s;
  level_set_time_s += other.level_set_time_s;
  total_time_s += other.total_time_s;
}

double VerifyResult::generator_value(const linalg::Vector& x) const {
  if (generator) return generator->value(x);
  if (poly_generator) return poly_generator->value(x);
  throw std::logic_error("VerifyResult: no generator");
}

const linalg::Vector& VerifyResult::generator_coeffs() const {
  if (generator) return generator->coeffs();
  if (poly_generator) return poly_generator->coeffs();
  throw std::logic_error("VerifyResult: no generator");
}

}  // namespace bcert::core
