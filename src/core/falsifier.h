#pragma once
/// \file falsifier.h
/// \brief Simulation-based falsification — the testing-side complement
/// to verification.
///
/// The paper positions its method against simulation-based approaches
/// (e.g. compositional falsification, ref [3]): those *search* for an
/// unsafe execution, while a barrier certificate *proves* none exists.
/// This module implements the search side so users get both answers:
///
///   * robustness of a trajectory = min over time of its margin to the
///     unsafe set (negative ⇔ the trajectory is a counterexample);
///   * the falsifier minimizes robustness over initial states in X0 by
///     uniform random exploration followed by CMA-ES refinement (the
///     standard S-TaLiRo-style optimization-based falsification recipe).
///
/// On a system with a valid barrier certificate the falsifier must come
/// up empty — a useful end-to-end consistency check (tested).

#include <atomic>

#include "src/cmaes/cmaes.h"
#include "src/core/verify_types.h"
#include "src/ode/integrator.h"
#include "src/ode/trace.h"

namespace bcert::core {

/// Search budget and simulation settings.
struct FalsifierOptions {
  int random_trials = 200;       ///< phase 1: uniform samples of X0
  int cmaes_iterations = 30;     ///< phase 2: robustness minimization
  std::size_t cmaes_population = 16;
  double trace_duration = 20.0;
  double trace_dt = 0.01;
  unsigned seed = 11;
  /// Simulation parallelism: 0 = auto (BCERT_THREADS / hardware), 1 =
  /// sequential. Candidates are pre-generated on the calling thread and
  /// results are selected in index order, so the outcome is byte-
  /// identical for a fixed seed at any thread count.
  int threads = 0;
  /// Pool the simulation batches (and CMA-ES evaluations) run on;
  /// null = the process-global pool. Engine::falsify threads its owned
  /// pool through here.
  parallel::ThreadPool* pool = nullptr;
  /// Cooperative stop, polled between phase-1 chunks and once per
  /// CMA-ES generation. When it returns true the search winds down and
  /// reports the most violating execution found so far — this is how a
  /// deadline-bounded campaign keeps falsification from overshooting
  /// the job's wall clock. Null = run the full budget.
  std::function<bool()> should_stop;
};

/// Outcome of a falsification attempt.
struct FalsificationResult {
  bool falsified = false;        ///< an unsafe execution was found
  linalg::Vector initial_state;  ///< argmin-robustness start
  ode::Trace trace;              ///< its trajectory
  double robustness = 0.0;       ///< min margin to U (< 0 when falsified)
  int simulations = 0;
};

/// Optimization-based falsifier for the X0 / U = complement(safe_rect)
/// structure of BarrierProblem (only sim_field is used — no symbolic
/// model required).
class Falsifier {
 public:
  Falsifier(BarrierProblem problem, FalsifierOptions options);

  /// Runs both phases and reports the most violating execution found.
  FalsificationResult search();

  /// Robustness of the trajectory from \p x0: min over the trace of the
  /// margin to the unsafe set (distance inside the safe rectangle,
  /// negative once outside).
  double robustness(const linalg::Vector& x0, ode::Trace* trace_out) const;

  /// Pointwise margin of a state to U (positive inside the safe rect).
  double margin(const linalg::Vector& x) const;

 private:
  BarrierProblem problem_;
  FalsifierOptions options_;
  mutable std::atomic<int> simulations_{0};
};

}  // namespace bcert::core
