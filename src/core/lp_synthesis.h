#pragma once
/// \file lp_synthesis.h
/// \brief Candidate-generator synthesis by linear programming (§3).
///
/// Simulation traces supply sample states x with field values f(x). The
/// generator W is linear in its template coefficients c, so both
/// requirements discretize into linear constraints:
///
///   positivity:  W(x) ≥ g·‖x‖²        (W positive away from the origin)
///   decrease:    ∇W(x)·f(x) ≤ −g·‖x‖² (W strictly decreasing)
///
/// with the shared margin g maximized subject to c ∈ [−1, 1]^k (the usual
/// normalization — W is scale-invariant). A strictly positive optimal
/// margin yields a robust candidate; CEX states found by the SMT check
/// re-enter as additional samples.

#include <vector>

#include "src/core/polynomial_form.h"
#include "src/core/quadratic_form.h"
#include "src/linalg/vector.h"
#include "src/lp/problem.h"
#include "src/lp/simplex.h"
#include "src/ode/integrator.h"
#include "src/ode/trace.h"

namespace bcert::core {

/// One LP sample: a state and the closed-loop field there. The decrease
/// constraint only applies where condition (5) requires it (D \ X0) —
/// samples inside X0 contribute positivity rows only.
struct FieldSample {
  linalg::Vector x;
  linalg::Vector fx;
  bool require_decrease = true;
};

/// Collects LP samples from a trace: keeps states inside \p domain
/// (drops the rest), downsampled to at most \p max_points, and evaluates
/// \p field at each kept state. States inside \p decrease_exclude (if
/// given) are marked positivity-only.
std::vector<FieldSample> samples_from_trace(
    const ode::Trace& trace, const ode::VectorField& field,
    const Rect& domain, std::size_t max_points,
    const Rect* decrease_exclude = nullptr);

/// Result of one candidate-synthesis LP.
struct SynthesisResult {
  bool feasible = false;     ///< LP optimal with positive margin
  QuadraticForm candidate;   ///< meaningful only when feasible
  double margin = 0.0;       ///< optimal g
  int lp_iterations = 0;
  lp::LpStatus lp_status = lp::LpStatus::kIterLimit;
  /// Final simplex basis (optimal solves only). Feed it back through
  /// SynthesisOptions::simplex.warm_start on the next candidate LP —
  /// the refinement loop only appends counterexample rows, which is
  /// exactly the append-only pattern the warm start is built for.
  lp::LpBasis basis;
  /// True when the LP completed from the provided warm basis.
  bool lp_warm_started = false;
  /// States whose decrease constraint binds the margin (worst first).
  /// When the LP is infeasible these locate where *no* template
  /// candidate can decrease — valuable feedback for retraining (CEGIS).
  std::vector<linalg::Vector> binding_states;
};

/// Options for the synthesis LP.
struct SynthesisOptions {
  double min_margin = 1e-6;   ///< required optimal margin
  double origin_tol = 1e-9;   ///< samples closer to 0 than this are skipped
  /// The margin LP is homogeneous (all right-hand sides zero), which
  /// makes its starting vertex maximally degenerate and can stall the
  /// simplex for tens of thousands of pivots. Distinct tiny RHS
  /// perturbations break the degeneracy; the ≤1e-9 relaxation they
  /// introduce is dwarfed by the required margin and the candidate is
  /// re-validated symbolically regardless.
  double rhs_perturbation = 1e-10;
  lp::SimplexOptions simplex;
  /// Thread the previous iteration's basis into the next candidate LP
  /// (the verifiers do this via SynthesisResult::basis). The env var
  /// BCERT_LP_WARM overrides this flag when set ("0"/"off"/"false"
  /// disables, anything else enables) — see lp_warm_start_enabled().
  bool warm_start = true;
};

/// Effective warm-start switch: RuntimeConfig::active().lp_warm when it
/// is not kAuto (the typed home of BCERT_LP_WARM, parsed once at
/// startup), else \p opts.warm_start. In-process toggling goes through
/// \p opts.warm_start or RuntimeConfig::set_active().
bool lp_warm_start_enabled(const SynthesisOptions& opts);

/// Solves the margin-maximization LP over all \p samples for a pure
/// quadratic template in \p dims variables.
SynthesisResult synthesize_candidate(const std::vector<FieldSample>& samples,
                                     std::size_t dims,
                                     const SynthesisOptions& opts = {});

/// Result of polynomial-template synthesis (general monomial basis).
struct PolySynthesisResult {
  bool feasible = false;
  PolynomialForm candidate;
  double margin = 0.0;
  int lp_iterations = 0;
  lp::LpStatus lp_status = lp::LpStatus::kIterLimit;
  /// Final simplex basis (optimal solves only); see SynthesisResult.
  lp::LpBasis basis;
  /// True when the LP completed from the provided warm basis.
  bool lp_warm_started = false;
};

/// Same LP over an arbitrary monomial basis (see polynomial_form.h):
/// positivity `W(x) ≥ g‖x‖²` and decrease `∇W·f ≤ −g‖x‖²` per sample,
/// coefficients in [−1, 1], margin g maximized.
PolySynthesisResult synthesize_polynomial_candidate(
    const std::vector<FieldSample>& samples, const MonomialBasis& basis,
    const SynthesisOptions& opts = {});

}  // namespace bcert::core
