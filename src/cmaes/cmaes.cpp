#include "src/cmaes/cmaes.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

#include "src/linalg/decompositions.h"
#include "src/linalg/matrix.h"
#include "src/parallel/thread_pool.h"

namespace bcert::cmaes {

using linalg::Matrix;
using linalg::Vector;

namespace {

/// Strategy constants derived from n and λ (Hansen's defaults).
struct Strategy {
  std::size_t lambda, mu;
  Vector weights;  // size mu, positive, sums to 1
  double mueff;
  double cc, cs, c1, cmu, damps, chi_n;

  Strategy(std::size_t n_, std::size_t lambda_) {
    const double n = static_cast<double>(n_);
    lambda = lambda_;
    mu = lambda / 2;
    if (mu == 0) throw std::invalid_argument("CMA-ES: lambda too small");
    weights = Vector(mu);
    double wsum = 0.0;
    for (std::size_t i = 0; i < mu; ++i) {
      weights[i] = std::log(static_cast<double>(lambda) / 2.0 + 0.5) -
                   std::log(static_cast<double>(i + 1));
      wsum += weights[i];
    }
    double w2sum = 0.0;
    for (std::size_t i = 0; i < mu; ++i) {
      weights[i] /= wsum;
      w2sum += weights[i] * weights[i];
    }
    mueff = 1.0 / w2sum;
    cc = (4.0 + mueff / n) / (n + 4.0 + 2.0 * mueff / n);
    cs = (mueff + 2.0) / (n + mueff + 5.0);
    c1 = 2.0 / ((n + 1.3) * (n + 1.3) + mueff);
    cmu = std::min(1.0 - c1, 2.0 * (mueff - 2.0 + 1.0 / mueff) /
                                 ((n + 2.0) * (n + 2.0) + mueff));
    damps =
        1.0 + 2.0 * std::max(0.0, std::sqrt((mueff - 1.0) / (n + 1.0)) - 1.0) +
        cs;
    chi_n = std::sqrt(n) * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n));
  }
};

}  // namespace

CmaesResult cmaes_minimize(const ObjectiveFn& objective, const Vector& x0,
                           const CmaesOptions& options,
                           const IterationCallback& callback) {
  const std::size_t n = x0.size();
  if (n == 0) throw std::invalid_argument("CMA-ES: empty start point");

  const std::size_t lambda =
      options.lambda > 0
          ? options.lambda
          : 4 + static_cast<std::size_t>(
                    std::floor(3.0 * std::log(static_cast<double>(n))));
  const Strategy st(n, lambda);

  std::mt19937 rng(options.seed);
  std::normal_distribution<double> normal(0.0, 1.0);

  Vector mean = x0;
  double sigma = options.sigma0;
  Vector ps(n), pc(n);

  // Full mode keeps C plus its eigendecomposition; diagonal mode keeps
  // only the diagonal (separable CMA-ES).
  Matrix c_mat = Matrix::identity(n);
  Matrix b_mat = Matrix::identity(n);
  Vector d_vec(n, 1.0);
  Vector c_diag(n, 1.0);
  const bool diag = options.diagonal_only;

  CmaesResult result;
  result.best_fitness = std::numeric_limits<double>::infinity();

  struct Candidate {
    Vector x, z;
    double fitness;
  };
  std::vector<Candidate> pop(lambda);

  int eigen_stale = 0;

  const int eval_threads = parallel::resolve_thread_count(options.eval_threads);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (options.should_stop && options.should_stop()) {
      result.stop = CmaesStop::kInterrupted;
      result.iterations = iter;
      if (result.best_x.size() == 0) result.best_x = mean;  // stop before gen 1
      return result;
    }
    // --- sample --------------------------------------------------------
    // All candidates are drawn on this thread, in population order, so
    // the RNG stream (and therefore the whole optimization trajectory)
    // does not depend on how the evaluations below are scheduled.
    for (std::size_t k = 0; k < lambda; ++k) {
      Vector z(n);
      for (std::size_t i = 0; i < n; ++i) z[i] = normal(rng);
      Vector step(n);
      if (diag) {
        for (std::size_t i = 0; i < n; ++i)
          step[i] = std::sqrt(c_diag[i]) * z[i];
      } else {
        // step = B · (D ∘ z)
        Vector dz(n);
        for (std::size_t i = 0; i < n; ++i) dz[i] = d_vec[i] * z[i];
        step = b_mat * dz;
      }
      pop[k].x = mean + sigma * step;
      pop[k].z = std::move(z);
    }
    // --- evaluate ------------------------------------------------------
    // Fitness lands in the slot of its candidate whatever the schedule,
    // so results are byte-identical for any eval_threads value.
    if (eval_threads <= 1) {
      for (std::size_t k = 0; k < lambda; ++k) {
        pop[k].fitness = objective(pop[k].x);
      }
    } else {
      parallel::ThreadPool& pool = options.pool != nullptr
                                       ? *options.pool
                                       : parallel::ThreadPool::global();
      pool.parallel_for(0, lambda, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          pop[k].fitness = objective(pop[k].x);
        }
      });
    }
    std::sort(pop.begin(), pop.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.fitness < b.fitness;
              });

    const double gen_best = pop[0].fitness;
    result.fitness_history.push_back(gen_best);
    if (gen_best < result.best_fitness) {
      result.best_fitness = gen_best;
      result.best_x = pop[0].x;
    }
    result.iterations = iter + 1;

    if (callback) {
      CmaesIteration info;
      info.iteration = iter;
      info.best_fitness = gen_best;
      info.overall_best_fitness = result.best_fitness;
      info.best_x = pop[0].x;
      info.sigma = sigma;
      callback(info);
    }
    if (options.tol_fun > 0.0 && result.best_fitness <= options.tol_fun) {
      result.stop = CmaesStop::kTolFun;
      return result;
    }

    // --- recombination ---------------------------------------------------
    const Vector old_mean = mean;
    Vector zw(n);  // weighted average of z (for the sigma path)
    mean = Vector(n);
    for (std::size_t i = 0; i < st.mu; ++i) {
      mean += st.weights[i] * pop[i].x;
      zw += st.weights[i] * pop[i].z;
    }
    const Vector y = (mean - old_mean) / sigma;  // = B D zw (full mode)

    // --- step-size path (uses C^{-1/2} y = B zw) -------------------------
    Vector c_inv_sqrt_y(n);
    if (diag) {
      for (std::size_t i = 0; i < n; ++i)
        c_inv_sqrt_y[i] = y[i] / std::sqrt(c_diag[i]);
    } else {
      c_inv_sqrt_y = b_mat * zw;
    }
    const double cs_coef = std::sqrt(st.cs * (2.0 - st.cs) * st.mueff);
    ps = (1.0 - st.cs) * ps + cs_coef * c_inv_sqrt_y;

    const double ps_norm = ps.norm();
    sigma *= std::exp((st.cs / st.damps) * (ps_norm / st.chi_n - 1.0));

    // --- covariance path -------------------------------------------------
    const double expected_cycle =
        std::sqrt(1.0 -
                  std::pow(1.0 - st.cs, 2.0 * static_cast<double>(iter + 1)));
    const bool hsig =
        ps_norm / expected_cycle / st.chi_n <
        1.4 + 2.0 / (static_cast<double>(n) + 1.0);
    const double cc_coef = std::sqrt(st.cc * (2.0 - st.cc) * st.mueff);
    pc = (1.0 - st.cc) * pc;
    if (hsig) pc += cc_coef * y;

    // --- covariance update ----------------------------------------------
    const double delta_hsig = (1.0 - (hsig ? 1.0 : 0.0)) * st.cc * (2.0 - st.cc);
    if (diag) {
      for (std::size_t i = 0; i < n; ++i) {
        double rank_mu = 0.0;
        for (std::size_t k = 0; k < st.mu; ++k) {
          const double yi = (pop[k].x[i] - old_mean[i]) / sigma;
          rank_mu += st.weights[k] * yi * yi;
        }
        c_diag[i] = (1.0 - st.c1 - st.cmu) * c_diag[i] +
                    st.c1 * (pc[i] * pc[i] + delta_hsig * c_diag[i]) +
                    st.cmu * rank_mu;
        c_diag[i] = std::max(c_diag[i], 1e-20);
      }
    } else {
      Matrix rank_mu(n, n);
      for (std::size_t k = 0; k < st.mu; ++k) {
        const Vector yk = (pop[k].x - old_mean) / sigma;
        rank_mu += st.weights[k] * outer(yk, yk);
      }
      c_mat = (1.0 - st.c1 - st.cmu + st.c1 * delta_hsig) * c_mat +
              st.c1 * outer(pc, pc) + st.cmu * rank_mu;
      // Refresh the eigendecomposition lazily (every ~n/10 iterations is
      // the usual guidance; we refresh every iteration for small n).
      const int refresh_every =
          n <= 40 ? 1 : static_cast<int>(n / 40);
      if (++eigen_stale >= refresh_every) {
        eigen_stale = 0;
        // Symmetrize against numeric drift, then decompose.
        for (std::size_t r = 0; r < n; ++r)
          for (std::size_t cix = r + 1; cix < n; ++cix) {
            const double avg = 0.5 * (c_mat(r, cix) + c_mat(cix, r));
            c_mat(r, cix) = c_mat(cix, r) = avg;
          }
        const linalg::SymmetricEigen eig = linalg::symmetric_eigen(c_mat);
        b_mat = eig.eigenvectors;
        for (std::size_t i = 0; i < n; ++i) {
          d_vec[i] = std::sqrt(std::max(eig.eigenvalues[i], 1e-20));
        }
      }
    }

    if (sigma < options.tol_sigma) {
      result.stop = CmaesStop::kSigmaCollapse;
      return result;
    }
  }
  result.stop = CmaesStop::kMaxIterations;
  return result;
}

}  // namespace bcert::cmaes
