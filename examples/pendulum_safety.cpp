// Beyond the paper's case study: the same barrier-certificate pipeline
// applied to a different plant — an inverted pendulum stabilized by an
// NN controller. Demonstrates that the public API is system-agnostic:
// provide a numeric field, a symbolic field, and the region structure.
//
//   state    x = [θ, ω]        (angle from upright, angular velocity)
//   plant    θ̇ = ω,  ω̇ = a·sin θ + b·u        (a = gravity/length, b =
//            torque gain), u = h(θ, ω) ∈ (−1, 1) a tanh NN
//   X0       |θ| ≤ 0.2, |ω| ≤ 0.2              (near upright)
//   U        outside |θ| ≤ 1.2, |ω| ≤ 1.5      (falling / spinning)
#include <cmath>
#include <cstdio>

#include "src/core/engine.h"
#include "src/dubins/training.h"  // distill_controller reuse
#include "src/expr/printer.h"
#include "src/nn/elm.h"

int main() {
  using namespace bcert;

  constexpr double kGravity = 1.0;  // a
  constexpr double kTorque = 3.0;   // b

  // NN controller distilled from a PD law u* = tanh(−2θ − 1.5ω).
  const nn::TeacherFn teacher = [](const linalg::Vector& x) {
    return linalg::Vector{std::tanh(-2.0 * x[0] - 1.5 * x[1])};
  };
  nn::ElmOptions eopts;
  eopts.hidden = 16;
  eopts.samples = 600;
  const nn::FeedforwardNet controller =
      nn::elm_fit(teacher, 2, 1, linalg::Vector{-1.4, -1.7},
                  linalg::Vector{1.4, 1.7}, eopts);

  expr::ExprPool pool;
  core::BarrierProblem problem;
  problem.pool = &pool;
  const nn::FeedforwardNet net = controller;
  problem.sim_field = [net](const linalg::Vector& x) {
    const double u = net.forward(x)[0];
    return linalg::Vector{x[1], kGravity * std::sin(x[0]) + kTorque * u};
  };
  const expr::ExprId th = pool.var(0), om = pool.var(1);
  const expr::ExprId u = controller.to_expr(pool, {th, om})[0];
  problem.sym_field = {
      om, pool.add(pool.mul(pool.constant(kGravity), pool.sin(th)),
                   pool.mul(pool.constant(kTorque), u))};
  problem.initial_set = {{-0.2, -0.2}, {0.2, 0.2}};
  problem.safe_rect = {{-1.2, -1.5}, {1.2, 1.5}};

  std::printf("inverted pendulum with %zu-parameter NN controller\n",
              controller.num_params());
  std::printf("X0 = [-0.2,0.2]^2, U = outside [-1.2,1.2]x[-1.5,1.5]\n\n");

  Engine engine;
  JobOptions job;
  job.verify.trace_duration = 20.0;
  const core::VerifyResult r = engine.verify(problem, job);

  std::printf("result: %s\n", verify_status_name(r.status));
  if (r.generator) {
    std::printf("W(th,om) = %s\n",
                to_string(pool, r.generator->to_expr(pool), {"th", "om"})
                    .c_str());
  }
  if (r.safe()) {
    std::printf("level l  = %.6f\n", r.level);
    std::printf("=> the pendulum never falls (|th| <= 1.2 rad) from any\n");
    std::printf("   start in X0, for unbounded time. Total %.2f s.\n",
                r.timings.total_time_s);
  }
  return r.safe() ? 0 : 1;
}
