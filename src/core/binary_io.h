#pragma once
/// \file binary_io.h
/// \brief Bounds-checked little-endian byte-stream primitives for the
/// warm-state snapshot format.
///
/// The persistent-cache layer (src/smt/cache_io, src/lp/basis_io) and
/// the `bcertd` daemon serialize compiled tapes, UNSAT split trees and
/// LP warm bases to disk. Those readers consume *untrusted* bytes — a
/// truncated snapshot, a bit flip, a file from a different build — so
/// every read here is bounds-checked and failure latches: once a read
/// runs past the end, `ok()` stays false and all further reads return
/// zero values, letting decoders check a single flag per record instead
/// of per field. Doubles travel as IEEE-754 bit patterns (u64), so
/// round-trips are bit-exact including NaNs, infinities and signed
/// zeros — the warm-state contract ("loaded state behaves exactly like
/// organically warmed state") needs nothing less.
///
/// Header-only and dependency-free on purpose: it sits below smt/lp in
/// the link order, next to fault.h / runtime_config.h.

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace bcert::core {

/// FNV-1a 64-bit over a byte range — the snapshot payload checksum.
/// Not cryptographic; it guards against truncation and corruption, not
/// adversaries (snapshots live in the daemon's own state directory).
inline std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void bytes(const std::uint8_t* data, std::size_t size) {
    bytes_.insert(bytes_.end(), data, data + size);
  }

  /// Length-prefixed string (u32 size + raw bytes).
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  const std::vector<std::uint8_t>& data() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    // Host is little-endian on every platform this project targets
    // (x86-64); static_assert keeps a future big-endian port honest.
    static_assert(std::endian::native == std::endian::little,
                  "snapshot format is little-endian");
    bytes_.insert(bytes_.end(), b, b + n);
  }

  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked reader over a byte span. All reads after a failure
/// return zero values and leave ok() false (latched).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return ok_ ? size_ - pos_ : 0; }

  std::uint8_t u8() {
    std::uint8_t v = 0;
    extract(&v, sizeof v);
    return v;
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    extract(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    extract(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    extract(&v, sizeof v);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  /// Declares \p count records of at least \p min_bytes each are about
  /// to be read; false (latching) when the buffer cannot possibly hold
  /// them. Guards count-prefixed vector reads against a corrupt count
  /// causing a gigantic reserve.
  bool can_read(std::size_t count, std::size_t min_bytes) {
    if (!ok_) return false;
    if (min_bytes != 0 && count > remaining() / min_bytes) ok_ = false;
    return ok_;
  }

 private:
  void extract(void* p, std::size_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace bcert::core
