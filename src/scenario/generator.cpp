#include "src/scenario/generator.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/scenario/prng.h"

namespace bcert::scenario {

namespace {

/// Scales a rectangle's faces about the origin by one factor per
/// dimension, leaving dimensions past \p jitter_dims untouched (the
/// CTRNN hidden box must stay exactly [-1, 1] for tanh invariance).
void jitter_rect(core::Rect& rect, SplitMix64& rng, double relative,
                 std::size_t jitter_dims) {
  const std::size_t n = std::min(jitter_dims, rect.dims());
  for (std::size_t i = 0; i < n; ++i) {
    const double factor = rng.scale(relative);
    rect.lo[i] *= factor;
    rect.hi[i] *= factor;
  }
}

}  // namespace

ScenarioGenerator::ScenarioGenerator(expr::ExprPool& pool,
                                     GeneratorConfig config)
    : pool_(&pool), config_(std::move(config)) {
  if (config_.families.empty()) {
    throw std::invalid_argument("ScenarioGenerator: families must be "
                                "non-empty");
  }
}

core::Scenario ScenarioGenerator::generate_one(std::size_t index) {
  SplitMix64 rng(SplitMix64::derive(config_.seed, index));
  const PlantFamily family =
      config_.families[index % config_.families.size()];
  const double pj = config_.param_jitter;

  core::Scenario s;
  switch (family) {
    case PlantFamily::kAcc: {
      AccParams p;
      p.max_accel *= rng.scale(pj);
      p.drag *= rng.scale(pj);
      p.k_gap *= rng.scale(pj);
      p.k_vel *= rng.scale(pj);
      p.weight_jitter = config_.weight_jitter;
      p.jitter_seed = rng.next_u64();
      jitter_rect(p.safe_rect, rng, config_.region_jitter, 2);
      jitter_rect(p.initial_set, rng, config_.region_jitter, 2);
      s = make_acc_scenario(*pool_, p);
      break;
    }
    case PlantFamily::kQuadrotor: {
      QuadrotorParams p;
      p.torque *= rng.scale(pj);
      p.drag *= rng.scale(pj);
      p.k_angle *= rng.scale(pj);
      p.k_rate *= rng.scale(pj);
      p.weight_jitter = config_.weight_jitter;
      p.jitter_seed = rng.next_u64();
      jitter_rect(p.safe_rect, rng, config_.region_jitter, 2);
      jitter_rect(p.initial_set, rng, config_.region_jitter, 2);
      s = make_quadrotor_scenario(*pool_, p);
      break;
    }
    case PlantFamily::kPendulumElm: {
      PendulumParams p;
      p.gravity *= rng.scale(pj);
      p.torque *= rng.scale(pj);
      p.k_angle *= rng.scale(pj);
      p.k_rate *= rng.scale(pj);
      p.weight_jitter = config_.weight_jitter;
      p.jitter_seed = rng.next_u64();
      jitter_rect(p.safe_rect, rng, config_.region_jitter, 2);
      jitter_rect(p.initial_set, rng, config_.region_jitter, 2);
      s = make_pendulum_scenario(*pool_, p);
      break;
    }
    case PlantFamily::kDubinsElm: {
      DubinsElmParams p;
      p.velocity *= rng.scale(pj);
      p.k_d *= rng.scale(pj);
      p.k_theta *= rng.scale(pj);
      p.weight_jitter = config_.weight_jitter;
      p.jitter_seed = rng.next_u64();
      // The paper's heading bound π/2 − ε is a hard kinematic limit of
      // the error model; jitter only the cross-track extent.
      jitter_rect(p.safe_rect, rng, config_.region_jitter, 1);
      jitter_rect(p.initial_set, rng, config_.region_jitter, 1);
      s = make_dubins_elm_scenario(*pool_, p);
      break;
    }
    case PlantFamily::kDubinsCtrnn: {
      DubinsCtrnnParams p;
      p.velocity *= rng.scale(pj);
      p.k_d *= rng.scale(pj);
      p.k_theta *= rng.scale(pj);
      // τ drives verification hardness steeply (LP-infeasible ≈ 0.2);
      // keep the jittered lag inside the provably workable band.
      p.tau = std::clamp(p.tau * rng.scale(pj), 0.05, 0.15);
      p.weight_jitter = config_.weight_jitter;
      p.jitter_seed = rng.next_u64();
      jitter_rect(p.safe_rect, rng, config_.region_jitter, 1);
      jitter_rect(p.initial_set, rng, config_.region_jitter, 1);
      s = make_dubins_ctrnn_scenario(*pool_, p);
      break;
    }
  }

  if (config_.jitter_templates && rng.below(2) == 1) {
    s.certificate = core::TemplateSpec::polynomial(config_.polynomial_degree);
  }
  s.name += "-s" + std::to_string(config_.seed) + "-" +
            std::to_string(index);
  return s;
}

std::vector<core::Scenario> ScenarioGenerator::generate() {
  std::vector<core::Scenario> suite;
  suite.reserve(config_.count);
  for (std::size_t i = 0; i < config_.count; ++i) {
    suite.push_back(generate_one(i));
  }
  return suite;
}

core::JobOptions zoo_job_defaults() {
  core::JobOptions job;
  // Long enough for the CTRNN scenarios' lagged transient to die out;
  // the 2-D plants just sample a little deeper into their spirals.
  job.verify.trace_duration = 25.0;
  return job;
}

}  // namespace bcert::scenario
