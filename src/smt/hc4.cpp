#include "src/smt/hc4.h"

#include <cstdio>
#include <cstring>
#include <limits>

#include "src/core/runtime_config.h"
#include "src/smt/projections.h"

namespace bcert::smt {

using expr::ExprId;
using expr::kNoExpr;
using expr::Node;
using expr::Op;
using interval::Interval;

namespace {

std::vector<ExprId> roots_of(const Conjunction& c) {
  std::vector<ExprId> roots;
  roots.reserve(c.constraints.size());
  for (const Constraint& k : c.constraints) roots.push_back(k.lhs);
  return roots;
}

}  // namespace

Hc4Mode resolve_hc4_mode(Hc4Mode mode) {
  if (mode != Hc4Mode::kAuto) return mode;
  // Typed knob (BCERT_HC4_MODE): RuntimeConfig validated the token and
  // warned on typos; here we only map it onto the smt-layer enum.
  switch (core::RuntimeConfig::active().hc4_mode) {
    case core::ConfigHc4Mode::kTree:
      return Hc4Mode::kTree;
    case core::ConfigHc4Mode::kJit:
      return Hc4Mode::kJit;
    case core::ConfigHc4Mode::kTape:
      break;
  }
  return Hc4Mode::kTape;
}

Hc4Contractor::Hc4Contractor(const expr::ExprPool& pool,
                             Conjunction conjunction, Hc4Mode mode) {
  const Hc4Mode resolved = resolve_hc4_mode(mode);
  if (resolved == Hc4Mode::kJit) {
    auto tape = std::make_shared<const Hc4Tape>(pool, std::move(conjunction));
    try {
      jit_ = Hc4Jit::compile(tape);
      regs_ = jit_->make_registers();
    } catch (const std::exception&) {
      // Degradation ladder: emission refused (host, W^X, injected
      // fault) → run the tape interpreter, bit-identically. Callers that
      // track degradation (the ICP contractor setup) count their own
      // fallback; this direct path just stays correct.
      tape_ = std::move(tape);
      regs_ = tape_->make_registers();
    }
    return;
  }
  if (resolved == Hc4Mode::kTape) {
    tape_ = std::make_shared<const Hc4Tape>(pool, std::move(conjunction));
    regs_ = tape_->make_registers();
    return;
  }
  conjunction_ = std::move(conjunction);
  eval_ = std::make_unique<expr::Evaluator>(pool, roots_of(conjunction_));
  root_positions_.reserve(conjunction_.size());
  for (const Constraint& k : conjunction_.constraints) {
    root_positions_.push_back(eval_->position_of(k.lhs));
  }
}

Hc4Contractor::Hc4Contractor(std::shared_ptr<const Hc4Tape> tape)
    : tape_(std::move(tape)), regs_(tape_->make_registers()) {}

Hc4Contractor::Hc4Contractor(std::shared_ptr<const Hc4Jit> jit)
    : jit_(std::move(jit)), regs_(jit_->make_registers()) {}

const std::vector<Interval>& Hc4Contractor::roots_for(
    const interval::Box& box) {
  if (cache_valid_ && cached_box_ == box) return cached_roots_;
  if (jit_) {
    jit_->eval_roots(box, regs_, cached_roots_);
  } else if (tape_) {
    tape_->eval_roots(box, regs_, cached_roots_);
  } else {
    cached_roots_ = eval_->eval(box);
  }
  cached_box_ = box;
  cache_valid_ = true;
  return cached_roots_;
}

std::vector<Interval> Hc4Contractor::root_values(const interval::Box& box) {
  return roots_for(box);
}

bool Hc4Contractor::certainly_satisfied(const interval::Box& box) {
  const auto& vals = roots_for(box);
  const Conjunction& c = conjunction();
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (!c.constraints[i].certainly_satisfied(vals[i])) return false;
  }
  return true;
}

bool Hc4Contractor::certainly_violated(const interval::Box& box) {
  const auto& vals = roots_for(box);
  const Conjunction& c = conjunction();
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (c.constraints[i].certainly_violated(vals[i])) return true;
  }
  return false;
}

Hc4Contractor::Certainty Hc4Contractor::certainty(const interval::Box& box) {
  const auto& vals = roots_for(box);
  const Conjunction& c = conjunction();
  Certainty result{true, false};
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (!c.constraints[i].certainly_satisfied(vals[i])) {
      result.satisfied = false;
    }
    if (c.constraints[i].certainly_violated(vals[i])) result.violated = true;
  }
  return result;
}

ContractResult Hc4Contractor::contract(interval::Box& box) {
  // Cache the forward-root enclosures for the box being contracted: when
  // this pass ends at a fixpoint (kNoChange) the box is unchanged and a
  // following certainly_satisfied/certainly_violated is free.
  cached_box_ = box;

  if (jit_) {
    const ContractResult r = jit_->contract(box, regs_, &cached_roots_);
    cache_valid_ = true;
    return r;
  }
  if (tape_) {
    const ContractResult r = tape_->contract(box, regs_, &cached_roots_);
    cache_valid_ = true;
    return r;
  }

  // Forward pass: natural interval extension for every DAG node.
  eval_->eval_forward(box, req_);
  cached_roots_.resize(root_positions_.size());
  for (std::size_t i = 0; i < root_positions_.size(); ++i) {
    cached_roots_[i] = req_[root_positions_[i]];
  }
  cache_valid_ = true;

  // Intersect each constraint root with its feasible value set.
  for (std::size_t i = 0; i < conjunction_.size(); ++i) {
    const std::size_t pos = root_positions_[i];
    req_[pos] =
        intersect(req_[pos], conjunction_.constraints[i].feasible_values());
    if (req_[pos].is_empty()) return ContractResult::kEmpty;
  }

  if (!backward_sweep()) return ContractResult::kEmpty;

  // Read back variable intervals.
  bool changed = false;
  const auto& schedule = eval_->schedule();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Node& n = eval_->pool().node(schedule[i]);
    if (n.op != Op::kVar) continue;
    const auto dim = static_cast<std::size_t>(n.index);
    const Interval narrowed = intersect(box[dim], req_[i]);
    if (narrowed.is_empty()) return ContractResult::kEmpty;
    if (!(narrowed == box[dim])) {
      box[dim] = narrowed;
      changed = true;
    }
  }
  return changed ? ContractResult::kContracted : ContractResult::kNoChange;
}

bool Hc4Contractor::backward_sweep() {
  const auto& schedule = eval_->schedule();
  const expr::ExprPool& pool = eval_->pool();

  // Reverse topological order: parents are processed before children, so
  // each node's requirement is final before it is projected downward.
  for (std::size_t idx = schedule.size(); idx-- > 0;) {
    const Node& n = pool.node(schedule[idx]);
    const Interval r = req_[idx];
    if (r.is_empty()) return false;
    if (n.a == kNoExpr) continue;  // leaf

    Interval& a = req_[eval_->position_of(n.a)];
    Interval* b =
        n.b != kNoExpr ? &req_[eval_->position_of(n.b)] : nullptr;
    if (!detail::project_node(n.op, n.index, r, a, b)) return false;
  }
  return true;
}

ContractResult Hc4Contractor::contract_fixpoint(interval::Box& box,
                                                int max_passes,
                                                double ratio) {
  bool any_change = false;
  for (int pass = 0; pass < max_passes; ++pass) {
    const double before = box.perimeter();
    const ContractResult r = contract(box);
    if (r == ContractResult::kEmpty) return ContractResult::kEmpty;
    if (r == ContractResult::kNoChange) break;
    any_change = true;
    const double after = box.perimeter();
    if (before <= 0.0 || (before - after) / before < ratio) break;
  }
  return any_change ? ContractResult::kContracted : ContractResult::kNoChange;
}

}  // namespace bcert::smt
