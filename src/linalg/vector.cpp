#include "src/linalg/vector.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace bcert::linalg {

namespace {
void check_same_size(const Vector& a, const Vector& b, const char* op) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string("Vector ") + op +
                                ": dimension mismatch");
  }
}
}  // namespace

Vector& Vector::operator+=(const Vector& rhs) {
  check_same_size(*this, rhs, "+=");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  check_same_size(*this, rhs, "-=");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Vector& Vector::operator/=(double s) {
  for (double& v : data_) v /= s;
  return *this;
}

double Vector::norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Vector::norm_inf() const {
  double acc = 0.0;
  for (double v : data_) acc = std::max(acc, std::fabs(v));
  return acc;
}

double Vector::sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

void Vector::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(Vector lhs, double s) { return lhs *= s; }
Vector operator*(double s, Vector rhs) { return rhs *= s; }
Vector operator/(Vector lhs, double s) { return lhs /= s; }

Vector operator-(Vector v) {
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = -v[i];
  return v;
}

void axpy(double a, const Vector& x, Vector& y) {
  check_same_size(x, y, "axpy");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void scale_add(Vector& out, const Vector& x, double a, const Vector& y) {
  check_same_size(x, y, "scale_add");
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + a * y[i];
}

void copy_into(const Vector& x, Vector& out) {
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i];
}

double dot(const Vector& a, const Vector& b) {
  check_same_size(a, b, "dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Vector hadamard(const Vector& a, const Vector& b) {
  check_same_size(a, b, "hadamard");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

std::ostream& operator<<(std::ostream& os, const Vector& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  return os << ']';
}

}  // namespace bcert::linalg
