#pragma once
/// \file protocol.h
/// \brief The `bcertd` wire protocol: request vocabulary, scenario
/// submission specs and the canonical verdict line.
///
/// Transport is newline-delimited JSON over a Unix-domain socket: each
/// request is one JSON object on one line, each response/event one JSON
/// object on one line. Requests carry `"cmd"` plus command-specific
/// fields and an optional client-chosen `"id"` echoed as `"req"` in the
/// direct response, so a client can match replies while asynchronous
/// events (progress, results, the drain notice) interleave. The full
/// grammar lives in docs/ARCHITECTURE.md ("bcertd protocol").
///
/// Jobs are submitted as *scenario specs*, not serialized problems: a
/// spec names a point of the deterministic workload-zoo generator
/// (seed, index, generator knobs), and the daemon materializes the
/// scenario through its own long-lived `ExprPool`. The seed contract
/// (src/scenario/generator.h) makes this exact — the same spec
/// materializes the bit-identical scenario in any process — which is
/// what lets the CI smoke test diff daemon verdicts against an
/// in-process run, and keeps the protocol payload a handful of numbers
/// instead of a symbolic-expression exchange format.

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/verify_types.h"
#include "src/daemon/json.h"
#include "src/scenario/generator.h"

namespace bcert::daemon {

/// One submitted scenario: a point of the zoo generator plus job-level
/// execution controls. Everything defaults to the generator/job
/// defaults, so `{"cmd":"submit","scenario":{"seed":7,"index":3}}` is a
/// complete request.
struct ScenarioSpec {
  std::uint64_t seed = 1;
  std::uint64_t index = 0;
  /// Family rotation; empty = the generator's default mix.
  std::vector<scenario::PlantFamily> families;
  double param_jitter = -1.0;   ///< negative = generator default
  double weight_jitter = -1.0;
  double region_jitter = -1.0;
  bool jitter_templates = false;
  int polynomial_degree = 2;

  /// Stable display name, also used in verdict lines:
  /// "zoo-s<seed>-i<index>".
  std::string name() const;

  /// The generator config this spec selects (count = index + 1; the
  /// generator is prefix-stable so only `index` matters).
  scenario::GeneratorConfig generator_config() const;
};

/// Decodes the `"scenario"` object of a submit request. Strict about
/// types and ranges (a malformed spec is a protocol error, not a
/// best-effort guess); unknown keys are rejected so typos cannot
/// silently select a different scenario.
bool parse_scenario_spec(const JsonValue& v, ScenarioSpec& out,
                         std::string* error);

/// The canonical one-line verdict summary used by the restart and
/// differential checks: scenario name, status, template kind, level,
/// LP margin and every generator coefficient at full (%.17g) precision
/// — everything analytic about the result, nothing timing-dependent.
/// Two runs produced bit-identical verdicts iff their lines are equal.
std::string verdict_line(const std::string& name,
                         const core::VerifyResult& result);

}  // namespace bcert::daemon
