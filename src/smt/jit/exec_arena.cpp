#include "src/smt/jit/exec_arena.h"

#include <cstring>

#if defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))
#define BCERT_JIT_HOST 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define BCERT_JIT_HOST 0
#endif

namespace bcert::smt::jit {

bool ExecMemory::supported() { return BCERT_JIT_HOST != 0; }

#if BCERT_JIT_HOST

ExecMemory::ExecMemory(const std::uint8_t* code, std::size_t size) {
  if (size == 0) throw JitUnavailable("jit: empty code buffer");
  const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  size_ = (size + page - 1) & ~(page - 1);
  void* p = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    throw JitUnavailable("jit: mmap(RW) failed");
  }
  std::memcpy(p, code, size);
  if (::mprotect(p, size_, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(p, size_);
    throw JitUnavailable("jit: mprotect(RX) refused (W^X policy?)");
  }
  base_ = p;
}

ExecMemory::~ExecMemory() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

#else  // !BCERT_JIT_HOST

ExecMemory::ExecMemory(const std::uint8_t*, std::size_t) {
  throw JitUnavailable("jit: unsupported host (x86-64 Linux/macOS only)");
}

ExecMemory::~ExecMemory() = default;

#endif  // BCERT_JIT_HOST

}  // namespace bcert::smt::jit
