#pragma once
/// \file vector.h
/// \brief Dense real-valued vector used throughout the library.
///
/// The verification pipeline is small-and-dense (state dimension of the
/// case study is 2, LP tableaus are a few hundred columns, CMA-ES
/// covariances reach a few thousand), so a simple contiguous
/// `std::vector<double>` wrapper with value semantics is the right tool.

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace bcert::linalg {

/// Dense column vector of doubles with value semantics.
class Vector {
 public:
  Vector() = default;

  /// Creates a vector of \p n zeros.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}

  /// Creates a vector of \p n copies of \p value.
  Vector(std::size_t n, double value) : data_(n, value) {}

  /// Creates a vector from an explicit element list.
  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Wraps an existing buffer (moved in).
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t i) { return data_.at(i); }
  double at(std::size_t i) const { return data_.at(i); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  const std::vector<double>& raw() const { return data_; }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);
  Vector& operator/=(double s);

  /// Euclidean (L2) norm.
  double norm() const;
  /// Maximum absolute entry; 0 for the empty vector.
  double norm_inf() const;
  /// Sum of entries.
  double sum() const;

  /// Appends an element (used by constraint builders).
  void push_back(double v) { data_.push_back(v); }

  /// Resizes, zero-filling any new entries.
  void resize(std::size_t n) { data_.resize(n, 0.0); }

  /// Sets every entry to \p value.
  void fill(double value);

  bool operator==(const Vector& rhs) const { return data_ == rhs.data_; }

 private:
  std::vector<double> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(Vector lhs, double s);
Vector operator*(double s, Vector rhs);
Vector operator/(Vector lhs, double s);
Vector operator-(Vector v);

// --- in-place kernels -------------------------------------------------------
// Allocation-free building blocks for the hot simulation loops. All of
// them tolerate `out` arriving with the wrong size (it is resized once);
// after warm-up no kernel allocates.

/// y += a·x (dimensions must match).
void axpy(double a, const Vector& x, Vector& y);

/// out = x + a·y. `out` may not alias x or y.
void scale_add(Vector& out, const Vector& x, double a, const Vector& y);

/// out = x, reusing out's buffer when capacity allows.
void copy_into(const Vector& x, Vector& out);

/// Dot product; dimensions must match.
double dot(const Vector& a, const Vector& b);

/// Element-wise product.
Vector hadamard(const Vector& a, const Vector& b);

std::ostream& operator<<(std::ostream& os, const Vector& v);

}  // namespace bcert::linalg
