// Regression tests for the HC4 backward-projection soundness sweep:
// kSqr / even-kPow requirement clipping, extended (two-branch) division
// in the kMul/kDiv reversals, and the single-evaluation certainty cache.
// Every case runs against both backends (tree and tape).
#include <gtest/gtest.h>

#include "src/expr/expr.h"
#include "src/interval/box.h"
#include "src/smt/hc4.h"

namespace bcert::smt {
namespace {

using expr::ExprId;
using expr::ExprPool;
using interval::Box;
using interval::Interval;

const Hc4Mode kModes[] = {Hc4Mode::kTree, Hc4Mode::kTape};

TEST(Hc4Projection, SqrEntirelyNegativeRequirementPrunes) {
  for (const Hc4Mode mode : kModes) {
    ExprPool p;
    // x² + 1 ≤ 0 is infeasible everywhere: the requirement on x² is
    // [-∞, -1], entirely negative, and must prune the box.
    Conjunction c;
    c.add(p.add(p.sqr(p.var(0)), p.one()), Rel::kLe);
    Hc4Contractor hc4(p, c, mode);
    Box box = Box::from_bounds({{-3.0, 3.0}});
    EXPECT_EQ(hc4.contract(box), ContractResult::kEmpty);
  }
}

TEST(Hc4Projection, SqrPartiallyNegativeRequirementContracts) {
  for (const Hc4Mode mode : kModes) {
    ExprPool p;
    // x² - 4 ≤ 0: requirement on x² is [-∞, 4] — the negative part must
    // be clipped away, not fed to sqrt, and x contracts to ⊆ [-2, 2].
    Conjunction c;
    c.add(p.sub(p.sqr(p.var(0)), p.constant(4.0)), Rel::kLe);
    Hc4Contractor hc4(p, c, mode);
    Box box = Box::from_bounds({{-10.0, 10.0}});
    EXPECT_EQ(hc4.contract(box), ContractResult::kContracted);
    EXPECT_GE(box[0].lo(), -2.0 - 1e-9);
    EXPECT_LE(box[0].hi(), 2.0 + 1e-9);

    // One-sided box: the positive branch alone survives.
    Box pos = Box::from_bounds({{0.0, 10.0}});
    Hc4Contractor hc4b(p, c, mode);
    EXPECT_EQ(hc4b.contract(pos), ContractResult::kContracted);
    EXPECT_GE(pos[0].lo(), 0.0);
    EXPECT_LE(pos[0].hi(), 2.0 + 1e-9);
  }
}

TEST(Hc4Projection, PowEvenNegativeRequirementPrunes) {
  for (const Hc4Mode mode : kModes) {
    ExprPool p;
    // x⁴ + 2 ≤ 0: infeasible (even power is never ≤ -2).
    Conjunction c;
    c.add(p.add(p.pow(p.var(0), 4), p.constant(2.0)), Rel::kLe);
    Hc4Contractor hc4(p, c, mode);
    Box box = Box::from_bounds({{-3.0, 3.0}});
    EXPECT_EQ(hc4.contract(box), ContractResult::kEmpty);
  }
}

TEST(Hc4Projection, PowEvenPartiallyNegativeRequirementContracts) {
  for (const Hc4Mode mode : kModes) {
    ExprPool p;
    // x⁴ - 16 ≤ 0 → x ∈ [-2, 2].
    Conjunction c;
    c.add(p.sub(p.pow(p.var(0), 4), p.constant(16.0)), Rel::kLe);
    Hc4Contractor hc4(p, c, mode);
    Box box = Box::from_bounds({{-10.0, 10.0}});
    EXPECT_EQ(hc4.contract(box), ContractResult::kContracted);
    EXPECT_GE(box[0].lo(), -2.0 - 1e-9);
    EXPECT_LE(box[0].hi(), 2.0 + 1e-9);
  }
}

TEST(Hc4Projection, MulByExactZeroSiblingIsSound) {
  for (const Hc4Mode mode : kModes) {
    ExprPool p;
    // x·y ≤ 0 with y pinned to [0, 0]: x·0 = 0 satisfies the constraint
    // for every x, so nothing may be pruned. (Plain interval division
    // r/[0,0] is empty and used to empty x's requirement — a bogus
    // infeasibility proof.)
    Conjunction c;
    c.add(p.mul(p.var(0), p.var(1)), Rel::kLe);
    Hc4Contractor hc4(p, c, mode);
    Box box = Box::from_bounds({{-5.0, 5.0}, {0.0, 0.0}});
    EXPECT_EQ(hc4.contract(box), ContractResult::kNoChange);
    EXPECT_EQ(box[0], Interval(-5.0, 5.0));
  }
}

TEST(Hc4Projection, MulStraddlingSiblingUsesExtendedDivision) {
  for (const Hc4Mode mode : kModes) {
    ExprPool p;
    // x·y ≥ 2 with x ∈ [0, 10], y ∈ [-1, 1]. Plain division gives
    // r/y = entire (no contraction of x); two-branch extended division
    // intersected with x before hulling yields x ∈ [2, 10] (and then
    // y ∈ [0.2, 1]).
    Conjunction c;
    c.add(p.sub(p.mul(p.var(0), p.var(1)), p.constant(2.0)), Rel::kGe);
    Hc4Contractor hc4(p, c, mode);
    Box box = Box::from_bounds({{0.0, 10.0}, {-1.0, 1.0}});
    EXPECT_EQ(hc4.contract(box), ContractResult::kContracted);
    EXPECT_GE(box[0].lo(), 2.0 - 1e-9);
    EXPECT_GE(box[1].lo(), 0.2 - 1e-9);
  }
}

TEST(Hc4Projection, DivisionReversalStaysTight) {
  for (const Hc4Mode mode : kModes) {
    ExprPool p;
    // 1/y ≥ 2 over y ∈ [-3, 3] → y ∈ (0, 1/2].
    Conjunction c;
    c.add(p.sub(p.div(p.one(), p.var(0)), p.constant(2.0)), Rel::kGe);
    Hc4Contractor hc4(p, c, mode);
    Box box = Box::from_bounds({{-3.0, 3.0}});
    EXPECT_EQ(hc4.contract(box), ContractResult::kContracted);
    EXPECT_GE(box[0].lo(), 0.0 - 1e-12);
    EXPECT_LE(box[0].hi(), 0.5 + 1e-9);
  }
}

TEST(Hc4Projection, CertaintyIsSingleEvaluationConsistent) {
  for (const Hc4Mode mode : kModes) {
    ExprPool p;
    Conjunction c;
    // x² - 4 ≤ 0 ∧ x ≥ 0 (as x·1 ≥ 0 to keep two constraints).
    c.add(p.sub(p.sqr(p.var(0)), p.constant(4.0)), Rel::kLe);
    c.add(p.var(0), Rel::kGe);

    Hc4Contractor cached(p, c, mode);
    Box box = Box::from_bounds({{0.5, 1.5}});
    // Prime the cache through a contraction pass, then compare cached
    // answers against a fresh contractor that must evaluate from
    // scratch.
    Box work = box;
    cached.contract_fixpoint(work, 8, 0.05);
    Hc4Contractor fresh(p, c, mode);
    EXPECT_EQ(cached.certainly_satisfied(work),
              fresh.certainly_satisfied(work));
    EXPECT_EQ(cached.certainly_violated(work),
              fresh.certainly_violated(work));

    const auto both = cached.certainty(work);
    EXPECT_EQ(both.satisfied, fresh.certainly_satisfied(work));
    EXPECT_EQ(both.violated, fresh.certainly_violated(work));

    // And on a box the cache has never seen.
    Box other = Box::from_bounds({{3.0, 4.0}});
    EXPECT_EQ(cached.certainly_violated(other),
              fresh.certainly_violated(other));
    EXPECT_TRUE(cached.certainly_violated(other));  // x² - 4 > 0 there
  }
}

}  // namespace
}  // namespace bcert::smt
