#include "src/core/falsifier.h"

#include <algorithm>
#include <random>

namespace bcert::core {

Falsifier::Falsifier(BarrierProblem problem, FalsifierOptions options)
    : problem_(std::move(problem)), options_(options) {
  problem_.initial_set.validate();
  problem_.safe_rect.validate();
  if (!problem_.sim_field) {
    throw std::invalid_argument("Falsifier: sim_field is required");
  }
}

double Falsifier::margin(const linalg::Vector& x) const {
  const Rect& s = problem_.safe_rect;
  double m = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < s.dims(); ++i) {
    m = std::min(m, x[i] - s.lo[i]);
    m = std::min(m, s.hi[i] - x[i]);
  }
  return m;
}

double Falsifier::robustness(const linalg::Vector& x0,
                             ode::Trace* trace_out) const {
  ode::IntegrateOptions iopts;
  iopts.step = options_.trace_dt;
  iopts.t_end = options_.trace_duration;
  // Stop once clearly unsafe: deeper excursions don't tell us more.
  iopts.stop = [this](double, const linalg::Vector& x) {
    return margin(x) < -0.1;
  };
  const ode::Trace trace = integrate_rk4(problem_.sim_field, x0, iopts);
  ++simulations_;
  double rob = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    rob = std::min(rob, margin(trace.state(i)));
  }
  if (trace_out != nullptr) *trace_out = trace;
  return rob;
}

FalsificationResult Falsifier::search() {
  const Rect& x0_set = problem_.initial_set;
  const std::size_t n = x0_set.dims();
  simulations_ = 0;

  FalsificationResult best;
  best.robustness = std::numeric_limits<double>::infinity();

  // Phase 1: uniform random exploration of X0.
  std::mt19937 rng(options_.seed);
  std::vector<std::uniform_real_distribution<double>> dims;
  dims.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    dims.emplace_back(x0_set.lo[i], x0_set.hi[i]);
  }
  for (int trial = 0; trial < options_.random_trials; ++trial) {
    linalg::Vector x0(n);
    for (std::size_t i = 0; i < n; ++i) x0[i] = dims[i](rng);
    const double rob = robustness(x0, nullptr);
    if (rob < best.robustness) {
      best.robustness = rob;
      best.initial_state = x0;
    }
    if (rob < 0.0) break;  // already falsified
  }

  // Phase 2: CMA-ES refinement from the best random start (clamped onto
  // X0 — out-of-set candidates are projected back).
  if (best.robustness >= 0.0 && options_.cmaes_iterations > 0) {
    const auto objective = [&](const linalg::Vector& raw) {
      linalg::Vector x0(n);
      for (std::size_t i = 0; i < n; ++i) {
        x0[i] = std::clamp(raw[i], x0_set.lo[i], x0_set.hi[i]);
      }
      return robustness(x0, nullptr);
    };
    cmaes::CmaesOptions copts;
    copts.max_iterations = options_.cmaes_iterations;
    copts.lambda = options_.cmaes_population;
    copts.seed = options_.seed + 1;
    // Step size proportional to the set extent.
    double extent = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      extent = std::max(extent, x0_set.hi[i] - x0_set.lo[i]);
    }
    copts.sigma0 = 0.25 * extent;
    const cmaes::CmaesResult r =
        cmaes_minimize(objective, best.initial_state, copts);
    if (r.best_fitness < best.robustness) {
      best.robustness = r.best_fitness;
      best.initial_state = linalg::Vector(n);
      for (std::size_t i = 0; i < n; ++i) {
        best.initial_state[i] =
            std::clamp(r.best_x[i], x0_set.lo[i], x0_set.hi[i]);
      }
    }
  }

  // Materialize the winning trajectory.
  if (best.initial_state.size() == n) {
    best.robustness = robustness(best.initial_state, &best.trace);
  }
  best.falsified = best.robustness < 0.0;
  best.simulations = simulations_;
  return best;
}

}  // namespace bcert::core
