#include "src/nn/network.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace bcert::nn {

linalg::Vector Layer::forward(const linalg::Vector& in) const {
  linalg::Vector out = weights * in + bias;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = apply(activation, out[i]);
  }
  return out;
}

void Layer::forward_inplace(const linalg::Vector& in,
                            linalg::Vector& out) const {
  linalg::matvec(weights, in, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = apply(activation, out[i] + bias[i]);
  }
}

FeedforwardNet::FeedforwardNet(const std::vector<std::size_t>& layer_sizes,
                               const std::vector<Activation>& activations) {
  if (layer_sizes.size() < 2) {
    throw std::invalid_argument("FeedforwardNet: need >= 2 layer sizes");
  }
  if (activations.size() != layer_sizes.size() - 1) {
    throw std::invalid_argument(
        "FeedforwardNet: one activation per non-input layer required");
  }
  layers_.reserve(layer_sizes.size() - 1);
  for (std::size_t l = 1; l < layer_sizes.size(); ++l) {
    Layer layer;
    layer.weights = linalg::Matrix(layer_sizes[l], layer_sizes[l - 1]);
    layer.bias = linalg::Vector(layer_sizes[l]);
    layer.activation = activations[l - 1];
    layers_.push_back(std::move(layer));
  }
}

FeedforwardNet FeedforwardNet::single_hidden(std::size_t inputs,
                                             std::size_t hidden,
                                             std::size_t outputs,
                                             Activation act) {
  return FeedforwardNet({inputs, hidden, outputs}, {act, act});
}

std::size_t FeedforwardNet::num_inputs() const {
  return layers_.empty() ? 0 : layers_.front().inputs();
}

std::size_t FeedforwardNet::num_outputs() const {
  return layers_.empty() ? 0 : layers_.back().outputs();
}

std::size_t FeedforwardNet::num_params() const {
  std::size_t n = 0;
  for (const Layer& l : layers_) n += l.num_params();
  return n;
}

linalg::Vector FeedforwardNet::forward(const linalg::Vector& in) const {
  if (in.size() != num_inputs()) {
    throw std::invalid_argument("FeedforwardNet::forward: input size");
  }
  linalg::Vector v = in;
  for (const Layer& l : layers_) v = l.forward(v);
  return v;
}

void FeedforwardNet::forward_inplace(const linalg::Vector& in,
                                     linalg::Vector& out,
                                     ForwardScratch& scratch) const {
  if (in.size() != num_inputs()) {
    throw std::invalid_argument("FeedforwardNet::forward_inplace: input size");
  }
  if (layers_.empty()) {
    linalg::copy_into(in, out);
    return;
  }
  // Ping-pong between the two scratch buffers; the last layer writes
  // straight into `out`.
  const linalg::Vector* cur = &in;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    linalg::Vector& dst = (l % 2 == 0) ? scratch.a : scratch.b;
    layers_[l].forward_inplace(*cur, dst);
    cur = &dst;
  }
  layers_.back().forward_inplace(*cur, out);
}

linalg::Vector FeedforwardNet::parameters() const {
  linalg::Vector out(num_params());
  std::size_t k = 0;
  for (const Layer& l : layers_) {
    for (std::size_t r = 0; r < l.weights.rows(); ++r)
      for (std::size_t c = 0; c < l.weights.cols(); ++c)
        out[k++] = l.weights(r, c);
    for (std::size_t i = 0; i < l.bias.size(); ++i) out[k++] = l.bias[i];
  }
  return out;
}

void FeedforwardNet::set_parameters(const linalg::Vector& params) {
  if (params.size() != num_params()) {
    throw std::invalid_argument("FeedforwardNet::set_parameters: size");
  }
  std::size_t k = 0;
  for (Layer& l : layers_) {
    for (std::size_t r = 0; r < l.weights.rows(); ++r)
      for (std::size_t c = 0; c < l.weights.cols(); ++c)
        l.weights(r, c) = params[k++];
    for (std::size_t i = 0; i < l.bias.size(); ++i) l.bias[i] = params[k++];
  }
}

void FeedforwardNet::randomize(std::mt19937& rng, double scale) {
  std::normal_distribution<double> normal(0.0, 1.0);
  for (Layer& l : layers_) {
    const double w_std =
        scale / std::sqrt(static_cast<double>(std::max<std::size_t>(
                    l.inputs(), 1)));
    for (std::size_t r = 0; r < l.weights.rows(); ++r)
      for (std::size_t c = 0; c < l.weights.cols(); ++c)
        l.weights(r, c) = w_std * normal(rng);
    for (std::size_t i = 0; i < l.bias.size(); ++i)
      l.bias[i] = scale * normal(rng) * 0.1;
  }
}

std::vector<expr::ExprId> FeedforwardNet::to_expr(
    expr::ExprPool& pool, const std::vector<expr::ExprId>& inputs) const {
  if (inputs.size() != num_inputs()) {
    throw std::invalid_argument("FeedforwardNet::to_expr: input count");
  }
  std::vector<expr::ExprId> current = inputs;
  for (const Layer& l : layers_) {
    std::vector<expr::ExprId> next(l.outputs());
    for (std::size_t j = 0; j < l.outputs(); ++j) {
      std::vector<double> coeffs(l.inputs());
      for (std::size_t i = 0; i < l.inputs(); ++i) coeffs[i] = l.weights(j, i);
      const expr::ExprId pre = pool.affine(coeffs, current, l.bias[j]);
      next[j] = apply(l.activation, pool, pre);
    }
    current = std::move(next);
  }
  return current;
}

void FeedforwardNet::save(std::ostream& os) const {
  os.precision(17);
  os << "bcert-ffnet 1\n" << layers_.size() << '\n';
  for (const Layer& l : layers_) {
    os << l.outputs() << ' ' << l.inputs() << ' '
       << activation_name(l.activation) << '\n';
    for (std::size_t r = 0; r < l.weights.rows(); ++r) {
      for (std::size_t c = 0; c < l.weights.cols(); ++c) {
        os << l.weights(r, c) << (c + 1 < l.weights.cols() ? ' ' : '\n');
      }
    }
    for (std::size_t i = 0; i < l.bias.size(); ++i) {
      os << l.bias[i] << (i + 1 < l.bias.size() ? ' ' : '\n');
    }
  }
}

FeedforwardNet FeedforwardNet::load(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (magic != "bcert-ffnet" || version != 1) {
    throw std::runtime_error("FeedforwardNet::load: bad header");
  }
  std::size_t n_layers = 0;
  is >> n_layers;
  FeedforwardNet net;
  net.layers_.reserve(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) {
    std::size_t outs = 0, ins = 0;
    std::string act;
    is >> outs >> ins >> act;
    Layer layer;
    layer.weights = linalg::Matrix(outs, ins);
    layer.bias = linalg::Vector(outs);
    layer.activation = activation_from_name(act);
    for (std::size_t r = 0; r < outs; ++r)
      for (std::size_t c = 0; c < ins; ++c) is >> layer.weights(r, c);
    for (std::size_t i = 0; i < outs; ++i) is >> layer.bias[i];
    if (!is) throw std::runtime_error("FeedforwardNet::load: truncated");
    net.layers_.push_back(std::move(layer));
  }
  return net;
}

}  // namespace bcert::nn
