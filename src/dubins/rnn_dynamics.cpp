#include "src/dubins/rnn_dynamics.h"

#include <cmath>
#include <stdexcept>

namespace bcert::dubins {

ode::VectorField rnn_closed_loop_field(const ErrorModel& model,
                                       const nn::Ctrnn& controller) {
  if (controller.num_inputs() != 2 || controller.num_outputs() != 1) {
    throw std::invalid_argument(
        "rnn_closed_loop_field: controller must map (d, theta) -> u");
  }
  const double v = model.velocity;
  const double tr = model.theta_r;
  const nn::Ctrnn net = controller;
  const std::size_t k = net.num_hidden();
  return [v, tr, net, k](const linalg::Vector& x) {
    const double theta_err = x[1];
    linalg::Vector y{x[0], x[1]};
    linalg::Vector h(k);
    for (std::size_t i = 0; i < k; ++i) h[i] = x[2 + i];

    const double u = net.output(h)[0];
    const linalg::Vector dh = net.hidden_derivative(y, h);

    linalg::Vector dx(2 + k);
    dx[0] = -v * std::sin(tr - theta_err) * std::cos(tr) +
            v * std::cos(tr - theta_err) * std::sin(tr);
    dx[1] = -u;
    for (std::size_t i = 0; i < k; ++i) dx[2 + i] = dh[i];
    return dx;
  };
}

ode::VectorFieldInPlace rnn_closed_loop_field_inplace(
    const ErrorModel& model, const nn::Ctrnn& controller) {
  if (controller.num_inputs() != 2 || controller.num_outputs() != 1) {
    throw std::invalid_argument(
        "rnn_closed_loop_field_inplace: controller must map (d, theta) -> u");
  }
  const double v = model.velocity;
  const double tr = model.theta_r;
  const std::size_t k = controller.num_hidden();
  // Mutable captures = per-instance scratch; the factory hands each
  // caller (thread) its own (same discipline as closed_loop_field_inplace).
  return [v, tr, k, net = controller, y = linalg::Vector{},
          h = linalg::Vector{}, u = linalg::Vector{}, dh = linalg::Vector{},
          scratch = nn::Ctrnn::Scratch{}](const linalg::Vector& x,
                                          linalg::Vector& dx) mutable {
    const double theta_err = x[1];
    y.resize(2);
    y[0] = x[0];
    y[1] = x[1];
    h.resize(k);
    for (std::size_t i = 0; i < k; ++i) h[i] = x[2 + i];

    net.output_inplace(h, u);
    net.hidden_derivative_inplace(y, h, dh, scratch);

    dx.resize(2 + k);
    dx[0] = -v * std::sin(tr - theta_err) * std::cos(tr) +
            v * std::cos(tr - theta_err) * std::sin(tr);
    dx[1] = -u[0];
    for (std::size_t i = 0; i < k; ++i) dx[2 + i] = dh[i];
  };
}

std::vector<expr::ExprId> rnn_closed_loop_field_expr(
    const ErrorModel& model, const nn::Ctrnn& controller,
    expr::ExprPool& pool) {
  if (controller.num_inputs() != 2 || controller.num_outputs() != 1) {
    throw std::invalid_argument(
        "rnn_closed_loop_field_expr: controller must map (d, theta) -> u");
  }
  const std::size_t k = controller.num_hidden();
  const expr::ExprId d = pool.var(0);
  const expr::ExprId th = pool.var(1);
  std::vector<expr::ExprId> h(k);
  for (std::size_t i = 0; i < k; ++i) {
    h[i] = pool.var(static_cast<std::int32_t>(2 + i));
  }

  const expr::ExprId v = pool.constant(model.velocity);
  const expr::ExprId tr = pool.constant(model.theta_r);
  const expr::ExprId angle = pool.sub(tr, th);
  const expr::ExprId d_dot = pool.add(
      pool.neg(pool.mul(pool.mul(v, pool.sin(angle)), pool.cos(tr))),
      pool.mul(pool.mul(v, pool.cos(angle)), pool.sin(tr)));

  const expr::ExprId u = controller.output_expr(pool, h)[0];
  const expr::ExprId th_dot = pool.neg(u);
  const std::vector<expr::ExprId> h_dot =
      controller.hidden_derivative_expr(pool, {d, th}, h);

  std::vector<expr::ExprId> field{d_dot, th_dot};
  field.insert(field.end(), h_dot.begin(), h_dot.end());
  return field;
}

}  // namespace bcert::dubins
