#pragma once
/// \file smtlib_export.h
/// \brief SMT-LIB2 serialization of δ-SAT queries.
///
/// Emits the exact query our ICP solver answers in the dialect dReal
/// accepts (QF_NRA with transcendental functions), so any result can be
/// cross-checked against the solver the paper used:
///
///     dreal --precision 1e-3 query.smt2
///
/// Expressions print in prefix form with full double precision
/// (hexfloat-free: decimal with 17 significant digits round-trips).

#include <iosfwd>
#include <string>
#include <vector>

#include "src/interval/box.h"
#include "src/smt/constraint.h"

namespace bcert::smt {

/// Options for the export.
struct SmtLibOptions {
  std::string logic = "QF_NRA";
  double precision = 1e-3;            ///< dReal δ (emitted as a comment
                                      ///< and via :precision when set)
  std::vector<std::string> var_names; ///< default x0, x1, ...
};

/// Renders one expression in SMT-LIB2 prefix syntax.
std::string to_smtlib(const expr::ExprPool& pool, expr::ExprId id,
                      const std::vector<std::string>& var_names = {});

/// Writes a complete benchmark: declarations, box bounds as assertions,
/// the conjunction's constraints, (check-sat), (exit).
void write_smtlib(std::ostream& os, const expr::ExprPool& pool,
                  const Conjunction& conjunction, const interval::Box& box,
                  const SmtLibOptions& options = {});

/// DNF variant: each disjunct becomes one (or ...) argument.
void write_smtlib(std::ostream& os, const expr::ExprPool& pool,
                  const Dnf& dnf, const interval::Box& box,
                  const SmtLibOptions& options = {});

}  // namespace bcert::smt
