#include "src/daemon/json.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

namespace bcert::daemon {

namespace {

/// Nesting cap: a request is a flat command object with at most a
/// scenario spec inside — 64 levels is already absurd, and bounding the
/// recursion bounds the stack.
constexpr int kMaxDepth = 64;

/// Appends code point \p cp to \p out as UTF-8.
void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

/// Recursive-descent parser over one in-memory document.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool run(JsonValue& out, std::string* error) {
    skip_ws();
    if (!parse_value(out, 0)) {
      if (error != nullptr) {
        *error = "offset " + std::to_string(pos_) + ": " + why_;
      }
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "offset " + std::to_string(pos_) +
                 ": trailing characters after value";
      }
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* why) {
    if (why_.empty()) why_ = why;
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c, const char* why) {
    if (eof() || peek() != c) return fail(why);
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type_ = JsonValue::Type::kString;
        return parse_string(out.string_);
      case 't': return parse_literal("true", out, JsonValue::Type::kBool, true);
      case 'f':
        return parse_literal("false", out, JsonValue::Type::kBool, false);
      case 'n':
        return parse_literal("null", out, JsonValue::Type::kNull, false);
      default: return parse_number(out);
    }
  }

  bool parse_literal(const char* word, JsonValue& out, JsonValue::Type type,
                     bool value) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return fail("invalid literal");
    pos_ += n;
    out.type_ = type;
    out.bool_ = value;
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9') return fail("invalid number");
    // RFC 8259: no leading zeros ("01"), no bare ".5" / "5.".
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        return fail("digit required after decimal point");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        return fail("digit required in exponent");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("invalid number");
    out.type_ = JsonValue::Type::kNumber;
    out.number_ = v;
    return true;
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      std::uint32_t d = 0;
      if (c >= '0' && c <= '9') {
        d = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        d = static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
      out = (out << 4) | d;
    }
    pos_ += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "expected string")) return false;
    out.clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("invalid escape");
      }
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    if (!consume('[', "expected array")) return false;
    out.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      skip_ws();
      if (!parse_value(item, depth + 1)) return false;
      out.items_.push_back(std::move(item));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    if (!consume('{', "expected object")) return false;
    out.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':', "expected ':' after key")) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members_.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string why_;
};

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const Member& m : members_) {
    if (m.first == key) found = &m.second;
  }
  return found;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

bool JsonValue::parse(const std::string& text, JsonValue& out,
                      std::string* error) {
  out = JsonValue();
  Parser parser(text);
  if (!parser.run(out, error)) {
    out = JsonValue();
    return false;
  }
  return true;
}

}  // namespace bcert::daemon
