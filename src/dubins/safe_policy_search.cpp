#include "src/dubins/safe_policy_search.h"

#include <cmath>

#include "src/core/engine.h"
#include "src/dubins/error_dynamics.h"

namespace bcert::dubins {

SafePolicySearchResult safe_policy_search(
    const PiecewiseLinearPath& path, const core::Rect& initial_set,
    const core::Rect& safe_rect, const SafePolicySearchOptions& opts) {
  SafePolicySearchResult result;
  TrainOptions train = opts.train;

  // One Engine and one ExprPool for the whole CEGIS loop: the rounds'
  // verification problems share the controller architecture, so the
  // Engine's UNSAT-tree cache warm-starts each retrained candidate's
  // queries from the previous round's refutations. (The pool must
  // outlive the Engine's caches — see engine.h's lifetime contract —
  // which is why it is hoisted out of the loop.)
  core::Engine engine;
  expr::ExprPool pool;

  for (int round = 0; round < opts.max_rounds; ++round) {
    // Vary the CMA-ES seed per round so a retrain with the same rollout
    // set still explores differently.
    train.seed = opts.train.seed + static_cast<unsigned>(round) * 101;
    const TrainResult tr = train_controller(path, train);

    const ErrorModel model{opts.velocity, 0.0};
    core::BarrierProblem problem;
    problem.pool = &pool;
    problem.sim_field = closed_loop_field(model, tr.controller);
    problem.sim_field_factory = [model, controller = tr.controller] {
      return closed_loop_field_inplace(model, controller);
    };
    problem.sym_field = closed_loop_field_expr(model, tr.controller, pool);
    problem.initial_set = initial_set;
    problem.safe_rect = safe_rect;

    core::JobOptions job;
    job.verify = opts.verify;
    core::VerifyResult vr = engine.verify(problem, job);

    SafePolicySearchRound log;
    log.round = round;
    log.train_cost = tr.best_cost;
    log.status = vr.status;
    log.counterexamples = vr.counterexamples.size();
    result.rounds.push_back(log);

    result.controller = tr.controller;

    if (vr.safe() || round == opts.max_rounds - 1) {
      result.verification = std::move(vr);
      return result;
    }

    // CEGIS feedback: each adopted counterexample (d, θ) yields rollout
    // offsets covering the offending direction at full domain scale —
    // the state and its mirror (the error dynamics are symmetric under
    // (d,θ) → (−d,−θ) for an odd policy), an amplified copy pushed
    // toward the domain boundary, and its axis projections. Raw CEX tend
    // to sit on a small ring near the origin; without amplification the
    // retrained policy stays incompetent at large errors and the loop
    // stalls (observed; see DESIGN.md §6).
    const double d_span =
        0.8 * std::max(std::fabs(safe_rect.lo[0]), safe_rect.hi[0]);
    const double th_span =
        0.8 * std::max(std::fabs(safe_rect.lo[1]), safe_rect.hi[1]);
    auto add_offset = [&train](double d, double th) {
      for (const auto& [ed, eth] : train.start_offsets) {
        if (std::fabs(ed - d) < 0.25 && std::fabs(eth - th) < 0.12) {
          return;  // effectively a duplicate rollout
        }
      }
      train.start_offsets.emplace_back(d, th);
    };
    std::size_t adopted = 0;
    for (const linalg::Vector& cex : vr.counterexamples) {
      if (adopted >= opts.max_new_offsets) break;
      const double d = cex[0], th = cex[1];
      if (d == 0.0 && th == 0.0) continue;
      add_offset(d, th);
      add_offset(-d, -th);
      const double scale = std::min(
          std::fabs(d) > 1e-9 ? d_span / std::fabs(d) : 1e18,
          std::fabs(th) > 1e-9 ? th_span / std::fabs(th) : 1e18);
      if (scale > 1.0) {
        add_offset(scale * d, scale * th);
        add_offset(-scale * d, -scale * th);
      }
      if (std::fabs(d) > 1e-3) {
        add_offset(d > 0 ? d_span : -d_span, 0.0);
        add_offset(d > 0 ? -d_span : d_span, 0.0);
      }
      if (std::fabs(th) > 1e-3) {
        add_offset(0.0, th > 0 ? th_span : -th_span);
        add_offset(0.0, th > 0 ? -th_span : th_span);
      }
      ++adopted;
    }
    result.verification = std::move(vr);
  }
  return result;
}

}  // namespace bcert::dubins
