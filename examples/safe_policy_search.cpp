// The paper's future-work item (§5) in action: counterexample-guided
// safe policy search. Starts from a training setup that is known to
// produce unverifiable controllers (a single on-path rollout), and lets
// the CEGIS loop turn verifier counterexamples into new training
// rollouts until a barrier certificate exists.
//
// Usage: safe_policy_search [max_rounds]
#include <cstdio>
#include <string>

#include "src/dubins/safe_policy_search.h"

int main(int argc, char** argv) {
  using namespace bcert;
  constexpr double kPi = 3.14159265358979323846;

  dubins::SafePolicySearchOptions opts;
  opts.max_rounds = argc > 1 ? std::stoi(argv[1]) : 4;
  opts.max_new_offsets = 2;
  opts.train.hidden_neurons = 10;
  opts.train.iterations = 80;
  opts.train.population = 152;
  opts.train.sim.velocity = 1.0;
  opts.train.sim.dt = 0.1;
  opts.train.sim.steps = 700;
  opts.train.weights.angle = 1e3;
  // Deliberately start with lateral-offset rollouts only (no heading
  // offsets): round 0 typically trains a policy with an unverifiable
  // heading response, and the verifier's counterexamples supply exactly
  // the missing rollouts. Takes a couple of minutes.
  opts.train.start_offsets = {{0.0, 0.0}, {4.0, 0.0}, {-4.0, 0.0}};
  opts.verify.max_candidate_iterations = 8;

  const dubins::PiecewiseLinearPath path({{0.0, 0.0},
                                          {12.0, 8.0},
                                          {24.0, 10.0},
                                          {36.0, 18.0},
                                          {40.0, 30.0},
                                          {48.0, 36.0}});
  const core::Rect x0{{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}};
  const core::Rect safe{{-5.0, -(kPi / 2.0 - 0.01)},
                        {5.0, kPi / 2.0 - 0.01}};

  std::printf("CEGIS safe policy search (max %d rounds)\n", opts.max_rounds);
  const dubins::SafePolicySearchResult r =
      safe_policy_search(path, x0, safe, opts);

  for (const auto& round : r.rounds) {
    std::printf("  round %d: train cost %.1f -> %s (%zu counterexamples)\n",
                round.round, round.train_cost,
                verify_status_name(round.status), round.counterexamples);
  }
  if (r.safe()) {
    std::printf("=> verified SAFE after %zu round(s); barrier level l = "
                "%.4f\n", r.rounds.size(), r.verification.level);
  } else {
    std::printf("=> not verified within the round budget\n");
  }
  return r.safe() ? 0 : 1;
}
