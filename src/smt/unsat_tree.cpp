#include "src/smt/unsat_tree.h"

#include <algorithm>
#include <unordered_map>

namespace bcert::smt {

using expr::ExprId;
using expr::Node;
using expr::Op;
using interval::Box;
using interval::Interval;

std::size_t UnsatTree::split_count() const {
  std::size_t count = 0;
  for (const Node& n : nodes) count += n.left != kNoNode;
  return count;
}

void UnsatTree::replay(const Box& box, std::vector<Box>& out) const {
  walk(
      box, 0,
      [](const Node&, int) { return std::pair<int, int>{0, 0}; },
      [&out](Box&& leaf, int) { out.push_back(std::move(leaf)); });
}

namespace {

inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/// Post-order DAG hash ignoring constant values (see header).
std::uint64_t shape_hash(const expr::ExprPool& pool, ExprId root,
                         std::unordered_map<ExprId, std::uint64_t>& memo) {
  std::vector<std::pair<ExprId, bool>> stack{{root, false}};
  while (!stack.empty()) {
    const auto [id, expanded] = stack.back();
    stack.pop_back();
    if (memo.count(id) != 0) continue;
    const Node& n = pool.node(id);
    if (!expanded) {
      stack.emplace_back(id, true);
      if (n.a != expr::kNoExpr) stack.emplace_back(n.a, false);
      if (n.b != expr::kNoExpr) stack.emplace_back(n.b, false);
      continue;
    }
    std::uint64_t h = 0xc0ffee ^ (static_cast<std::uint64_t>(n.op) * 31u);
    if (n.op == Op::kVar || n.op == Op::kPow) {
      h = hash_combine(h, static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(n.index)));
    }
    // kConst contributes only its presence, never its value: successive
    // candidates' W coefficients must hash alike.
    const bool commutative = n.op == Op::kAdd || n.op == Op::kMul ||
                             n.op == Op::kMin || n.op == Op::kMax;
    if (commutative && n.b != expr::kNoExpr) {
      // ExprPool canonicalizes commutative operands by ExprId, and fresh
      // constants shift ids between candidate iterations — hash the
      // children symmetrically so the operand order cannot matter.
      const std::uint64_t ha = memo.at(n.a), hb = memo.at(n.b);
      h = hash_combine(h, ha + hb);
      h = hash_combine(h, ha ^ hb);
    } else {
      if (n.a != expr::kNoExpr) h = hash_combine(h, memo.at(n.a));
      if (n.b != expr::kNoExpr) h = hash_combine(h, memo.at(n.b) + 1);
    }
    memo.emplace(id, h);
  }
  return memo.at(root);
}

}  // namespace

std::uint64_t structural_signature(const expr::ExprPool& pool,
                                   const Conjunction& c) {
  std::unordered_map<ExprId, std::uint64_t> memo;
  std::uint64_t h = 0x5eed;
  for (const Constraint& k : c.constraints) {
    h = hash_combine(h, shape_hash(pool, k.lhs, memo));
    h = hash_combine(h, static_cast<std::uint64_t>(k.rel));
  }
  return h;
}

std::shared_ptr<const UnsatTree> UnsatTreeCache::find(
    const expr::ExprPool& pool, const Conjunction& c,
    const interval::Box& box) {
  return find(pool, structural_signature(pool, c), box);
}

std::shared_ptr<const UnsatTree> UnsatTreeCache::find(
    const expr::ExprPool& pool, std::uint64_t signature,
    const interval::Box& box) {
  auto tree = trees_.get({&pool, signature});
  if (tree == nullptr) return nullptr;
  if (!(tree->root_box == box)) {
    // Stale seed (the search box moved — e.g. a level-set bounding box
    // recomputed for a new candidate): silently fall back to cold.
    stale_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  return tree;
}

void UnsatTreeCache::store(const expr::ExprPool& pool, const Conjunction& c,
                           std::shared_ptr<const UnsatTree> tree) {
  store(pool, structural_signature(pool, c), std::move(tree));
}

void UnsatTreeCache::store(const expr::ExprPool& pool,
                           std::uint64_t signature,
                           std::shared_ptr<const UnsatTree> tree) {
  trees_.put({&pool, signature}, std::move(tree), /*replace=*/true);
}

}  // namespace bcert::smt
