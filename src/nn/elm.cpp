#include "src/nn/elm.h"

#include <cmath>
#include <stdexcept>

#include "src/linalg/decompositions.h"

namespace bcert::nn {

FeedforwardNet elm_fit(const TeacherFn& teacher, std::size_t inputs,
                       std::size_t outputs, const linalg::Vector& input_lo,
                       const linalg::Vector& input_hi,
                       const ElmOptions& opts) {
  if (input_lo.size() != inputs || input_hi.size() != inputs) {
    throw std::invalid_argument("elm_fit: bound dimension mismatch");
  }
  if (opts.samples < opts.hidden + 1) {
    throw std::invalid_argument(
        "elm_fit: need at least hidden+1 samples for a determined fit");
  }

  FeedforwardNet net = FeedforwardNet::single_hidden(
      inputs, opts.hidden, outputs, opts.activation);
  if (!opts.tanh_output) {
    net.layer(1).activation = Activation::kLinear;
  }

  std::mt19937 rng(opts.seed);
  std::normal_distribution<double> normal(0.0, 1.0);

  // Fixed random hidden layer. Scale relative to the input range so the
  // features are diverse over the sampling box (not all saturated).
  Layer& hidden = net.layer(0);
  for (std::size_t r = 0; r < opts.hidden; ++r) {
    for (std::size_t c = 0; c < inputs; ++c) {
      const double range = std::max(input_hi[c] - input_lo[c], 1e-9);
      hidden.weights(r, c) = opts.weight_scale * normal(rng) * 2.0 / range;
    }
    hidden.bias[r] = opts.weight_scale * normal(rng) * 0.5;
  }

  // Sample the training set and build the feature matrix (+ bias column).
  std::vector<std::uniform_real_distribution<double>> dims;
  dims.reserve(inputs);
  for (std::size_t c = 0; c < inputs; ++c) {
    dims.emplace_back(input_lo[c], input_hi[c]);
  }

  // Ridge regularization is implemented by augmenting the design matrix
  // with √λ·I rows (targets 0): min ‖Ax − b‖² + λ‖x‖².
  const std::size_t n_cols = opts.hidden + 1;
  const std::size_t n_rows =
      opts.samples + (opts.ridge > 0.0 ? n_cols : 0);
  linalg::Matrix features(n_rows, n_cols);
  linalg::Matrix targets(n_rows, outputs);
  if (opts.ridge > 0.0) {
    const double sq = std::sqrt(opts.ridge);
    for (std::size_t j = 0; j < n_cols; ++j) {
      features(opts.samples + j, j) = sq;
    }
  }
  for (std::size_t s = 0; s < opts.samples; ++s) {
    linalg::Vector x(inputs);
    for (std::size_t c = 0; c < inputs; ++c) x[c] = dims[c](rng);
    const linalg::Vector feat = hidden.forward(x);
    for (std::size_t j = 0; j < opts.hidden; ++j) features(s, j) = feat[j];
    features(s, opts.hidden) = 1.0;  // bias column

    linalg::Vector y = teacher(x);
    if (y.size() != outputs) {
      throw std::invalid_argument("elm_fit: teacher output size");
    }
    for (std::size_t j = 0; j < outputs; ++j) {
      double t = y[j];
      if (opts.tanh_output) {
        t = std::atanh(std::clamp(t, -opts.output_clip, opts.output_clip));
      }
      targets(s, j) = t;
    }
  }

  // Least-squares output weights, one column of targets at a time.
  Layer& out_layer = net.layer(1);
  for (std::size_t j = 0; j < outputs; ++j) {
    const linalg::Vector w =
        linalg::least_squares(features, targets.col(j));
    for (std::size_t k = 0; k < opts.hidden; ++k) out_layer.weights(j, k) = w[k];
    out_layer.bias[j] = w[opts.hidden];
  }
  return net;
}

}  // namespace bcert::nn
