#pragma once
/// \file poly_verifier.h
/// \brief Barrier-certificate verification with general polynomial
/// templates (the paper's "Sum-of-Squares polynomials" remark, §3).
///
/// Differences from the quadratic BarrierVerifier:
///
///  * The level set {W ≤ ℓ} of a higher-degree W is not an ellipsoid, so
///    there is no closed-form ℓ window. Both ends come from the certified
///    global optimizer (smt/optimizer.h): ℓ must exceed the certified
///    max of W over X0 and stay below the certified min of W over every
///    *face* of the safe rectangle.
///  * Condition (7) is replaced by its face form (7′):
///        ∃x ∈ ∂(safe_rect) : W(x) ≤ ℓ      — must be UNSAT.
///    Soundness: a trajectory from X0 ⊂ {W ≤ ℓ} (by (6)) that reaches U
///    must cross ∂(safe_rect). Along the way W never exceeds ℓ — inside
///    X0 by (6), outside X0 by the strict decrease (5) — yet every
///    boundary point with W ≤ ℓ is excluded by (7′). Contradiction, so
///    U is unreachable. This is the same argument the paper makes with
///    L ∩ U = ∅, specialized to U = complement(safe_rect).
///
/// The CEX refinement loop, the γ-slack decrease query and the timing
/// instrumentation are identical to the quadratic pipeline.

#include <optional>

#include "src/core/lp_synthesis.h"
#include "src/core/polynomial_form.h"
#include "src/core/verifier.h"
#include "src/smt/optimizer.h"

namespace bcert::core {

/// Options: the quadratic verifier's plus template degree and optimizer
/// settings.
struct PolyVerifierOptions {
  VerifierOptions base;
  int max_degree = 4;            ///< monomials of total degree 2..max
  smt::OptimizeConfig optimize;  ///< level-window bound computation
};

/// Result mirrors VerifyResult with a PolynomialForm generator.
struct PolyVerifyResult {
  VerifyStatus status = VerifyStatus::kMaxCandidateIterations;
  std::optional<PolynomialForm> generator;
  double level = 0.0;
  double lp_margin = 0.0;
  VerifyTimings timings;
  std::vector<linalg::Vector> counterexamples;

  bool safe() const { return status == VerifyStatus::kSafe; }
};

/// Verifier for polynomial templates of degree 2..max_degree.
class PolyBarrierVerifier {
 public:
  PolyBarrierVerifier(BarrierProblem problem, PolyVerifierOptions options);

  /// Runs the full pipeline.
  PolyVerifyResult verify();

  // --- exposed sub-steps -------------------------------------------------

  /// SMT condition (5) for a polynomial candidate.
  smt::IcpResult check_decrease(const PolynomialForm& w,
                                double delta = 0.0) const;

  /// SMT condition (6): ∃x ∈ X0 : W(x) > ℓ.
  smt::IcpResult check_initial_contained(const PolynomialForm& w,
                                         double level) const;

  /// SMT condition (7′): ∃x on some *unsafe-dimension* face of the safe
  /// rectangle with W(x) ≤ ℓ. Faces of domain-only dimensions are
  /// covered by the flow-invariance check instead (BarrierProblem::
  /// unsafe_dims), mirroring the quadratic verifier.
  smt::IcpResult check_boundary_excluded(const PolynomialForm& w,
                                         double level) const;

  /// Flow-invariance of domain-only faces (see BarrierVerifier).
  smt::IcpResult check_domain_invariance() const;

  /// Certified ℓ window from the global optimizer; nullopt when the
  /// bounds do not separate.
  std::optional<std::pair<double, double>> level_window(
      const PolynomialForm& w) const;

  const BarrierProblem& problem() const { return problem_; }
  const MonomialBasis& basis() const { return basis_; }

 private:
  double numeric_lie(const PolynomialForm& w, const linalg::Vector& x) const;

  /// Faces of the safe rectangle as degenerate boxes; when
  /// \p unsafe_only, restricted to unsafe dimensions.
  std::vector<interval::Box> safe_faces(bool unsafe_only) const;

  BarrierProblem problem_;
  PolyVerifierOptions options_;
  MonomialBasis basis_;
};

}  // namespace bcert::core
