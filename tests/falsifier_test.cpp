// Tests for the optimization-based falsifier and its consistency with
// the verifier: a certified-safe system cannot be falsified; a broken
// controller is falsified quickly.
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/falsifier.h"
#include "src/core/verifier.h"
#include "src/dubins/error_dynamics.h"
#include "src/dubins/training.h"

namespace bcert::core {
namespace {

using linalg::Vector;
constexpr double kPi = 3.14159265358979323846;

BarrierProblem dubins_problem(expr::ExprPool& pool,
                              const nn::FeedforwardNet& controller) {
  const dubins::ErrorModel model{1.0, 0.0};
  BarrierProblem p;
  p.pool = &pool;
  p.sim_field = dubins::closed_loop_field(model, controller);
  p.sym_field = dubins::closed_loop_field_expr(model, controller, pool);
  p.initial_set = {{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}};
  p.safe_rect = {{-5.0, -(kPi / 2.0 - 0.01)}, {5.0, kPi / 2.0 - 0.01}};
  return p;
}

TEST(Falsifier, MarginGeometry) {
  expr::ExprPool pool;
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 1);
  Falsifier f(dubins_problem(pool, controller), {});
  EXPECT_GT(f.margin(Vector{0.0, 0.0}), 1.0);     // deep inside
  EXPECT_NEAR(f.margin(Vector{5.0, 0.0}), 0.0, 1e-12);  // on the boundary
  EXPECT_LT(f.margin(Vector{6.0, 0.0}), 0.0);     // outside
}

TEST(Falsifier, SafeControllerNotFalsified) {
  expr::ExprPool pool;
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 42);
  FalsifierOptions opts;
  opts.random_trials = 60;
  opts.cmaes_iterations = 10;
  Falsifier f(dubins_problem(pool, controller), opts);
  const FalsificationResult r = f.search();
  EXPECT_FALSE(r.falsified);
  EXPECT_GT(r.robustness, 0.0);
  EXPECT_GT(r.simulations, 0);
}

TEST(Falsifier, UnstableControllerFalsifiedQuickly) {
  // Wrong-sign controller drives the angle error out of the safe band.
  nn::FeedforwardNet bad = nn::FeedforwardNet::single_hidden(2, 4, 1);
  bad.layer(0).weights = linalg::Matrix{{-0.5, -2.0}, {0.0, 0.0}};
  bad.layer(0).bias = Vector{0.0, 0.0};
  bad.layer(1).weights = linalg::Matrix{{5.0, 0.0}};
  bad.layer(1).bias = Vector{0.0};
  expr::ExprPool pool;
  FalsifierOptions opts;
  opts.random_trials = 40;
  Falsifier f(dubins_problem(pool, bad), opts);
  const FalsificationResult r = f.search();
  ASSERT_TRUE(r.falsified);
  EXPECT_LT(r.robustness, 0.0);
  // The falsifying start must really be in X0, and its trace must exit.
  EXPECT_TRUE(
      (Rect{{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}}).contains(
          r.initial_state));
  bool exited = false;
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    if (f.margin(r.trace.state(i)) < 0.0) exited = true;
  }
  EXPECT_TRUE(exited);
}

TEST(Falsifier, MarginalControllerNeedsOptimization) {
  // A weak (low-gain) controller: most X0 starts are fine but extreme
  // corners may excurse far. The CMA-ES phase should find the worst
  // robustness (still positive here, but near the pure-random minimum).
  const auto weak = [](double d, double th) {
    return std::tanh(0.05 * d + 0.5 * th);
  };
  const nn::FeedforwardNet controller =
      dubins::distill_controller(weak, 10, 3);
  expr::ExprPool pool;
  FalsifierOptions coarse;
  coarse.random_trials = 20;
  coarse.cmaes_iterations = 0;  // random only
  coarse.seed = 5;
  Falsifier f1(dubins_problem(pool, controller), coarse);
  const double rob_random = f1.search().robustness;

  FalsifierOptions refined = coarse;
  refined.cmaes_iterations = 25;
  Falsifier f2(dubins_problem(pool, controller), refined);
  const double rob_refined = f2.search().robustness;
  EXPECT_LE(rob_refined, rob_random + 1e-9);
}

TEST(Falsifier, VerifierAndFalsifierAgree) {
  // End-to-end consistency: when the verifier proves safety, the
  // falsifier must not find an unsafe execution (and vice versa for a
  // broken controller, covered above).
  expr::ExprPool pool;
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 20, 8);
  const BarrierProblem problem = dubins_problem(pool, controller);
  BarrierVerifier verifier(problem, {});
  const VerifyResult vr = verifier.verify();
  ASSERT_TRUE(vr.safe());

  FalsifierOptions opts;
  opts.random_trials = 80;
  opts.cmaes_iterations = 15;
  Falsifier falsifier(problem, opts);
  const FalsificationResult fr = falsifier.search();
  EXPECT_FALSE(fr.falsified);
  // Stronger: the worst trajectory's W never exceeds the level.
  EXPECT_GT(fr.robustness, 0.0);
}

}  // namespace
}  // namespace bcert::core
