/// \file bcertd_main.cpp
/// \brief `bcertd` — the verification daemon executable.
///
/// Usage:
///   bcertd [--socket PATH] [--state-dir DIR] [--snapshot-s SECONDS]
///
/// Unflagged configuration comes from the BCERT_* environment
/// (BCERT_DAEMON_SOCKET, BCERT_STATE_DIR, BCERT_SNAPSHOT_S,
/// BCERT_LOG_LEVEL — see README "Runtime configuration"). SIGTERM and
/// SIGINT trigger the same graceful drain as the `drain` command:
/// accepted jobs finish, the warm-state snapshot is written, clients get
/// a `drained` event, then the process exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/runtime_config.h"
#include "src/daemon/server.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--state-dir DIR] "
               "[--snapshot-s SECONDS]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bcert::daemon::ServerOptions options =
      bcert::daemon::ServerOptions::from_runtime_config(
          bcert::core::RuntimeConfig::active());
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--socket") == 0 && value != nullptr) {
      options.socket_path = value;
      ++i;
    } else if (std::strcmp(arg, "--state-dir") == 0 && value != nullptr) {
      options.state_dir = value;
      ++i;
    } else if (std::strcmp(arg, "--snapshot-s") == 0 && value != nullptr) {
      char* end = nullptr;
      options.snapshot_period_s = std::strtod(value, &end);
      if (end == value || *end != '\0' || options.snapshot_period_s < 0.0) {
        return usage(argv[0]);
      }
      ++i;
    } else {
      return usage(argv[0]);
    }
  }
  options.stop_flag = &g_stop;

  struct sigaction action {};
  action.sa_handler = on_signal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  bcert::daemon::Server server(std::move(options));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "bcertd: %s\n", error.c_str());
    return 1;
  }
  return server.run();
}
