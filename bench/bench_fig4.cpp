// Reproduces Figure 4: evolution of the NN controller during CMA-ES
// policy search — path-following behaviour with (a) random initial
// weights, (b) iteration 5, (c) iteration 25, (d) end of training.
//
// Output: for each snapshot, the target path and the actual driven path
// as x-y series (gnuplot/CSV friendly), plus the per-iteration best cost
// (the quantitative signal behind the four panels: tracking improves
// monotonically in cost).
//
// Environment knobs:
//   BCERT_FIG4_ITERS (default 50, as in the paper)
//   BCERT_FIG4_POP   (default 152, as in the paper)
#include <cmath>
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

int main() {
  using namespace bcert;

  dubins::TrainOptions opts = bench::paper_train_options();
  opts.iterations = bench::env_int("BCERT_FIG4_ITERS", 50);
  opts.population =
      static_cast<std::size_t>(bench::env_int("BCERT_FIG4_POP", 152));
  const dubins::PiecewiseLinearPath path = bench::training_path();

  std::printf("# Figure 4 reproduction: controller evolution during "
              "policy search\n");
  std::printf("# CMA-ES: %d iterations, population %zu, cost per paper "
              "S4.2\n", opts.iterations, opts.population);

  // Capture snapshots at the paper's panels.
  std::map<int, nn::FeedforwardNet> snapshots;
  std::vector<double> costs;
  const int last = opts.iterations - 1;
  const dubins::TrainResult result = train_controller(
      path, opts, [&](const dubins::TrainingSnapshot& snap) {
        costs.push_back(snap.best_cost);
        if (snap.iteration == 0 || snap.iteration == 5 ||
            snap.iteration == 25 || snap.iteration == last) {
          snapshots.emplace(snap.iteration, snap.controller);
        }
      });

  // Target path once.
  std::printf("\n# series: target_path (x y)\n");
  for (const dubins::Point2& p : path.waypoints()) {
    std::printf("target %.3f %.3f\n", p.x, p.y);
  }

  // One driven trajectory per snapshot (plus the final controller).
  dubins::SimOptions sim = opts.sim;
  auto emit = [&](const char* tag, const nn::FeedforwardNet& net) {
    const dubins::ClosedLoopTrace t = simulate_path_following(
        path, dubins::as_controller(net), opts.initial, sim);
    double abs_d = 0.0;
    for (const auto& s : t.samples) abs_d += std::fabs(s.error.distance);
    std::printf("\n# series: %s (x y), mean |d_err| = %.3f\n", tag,
                abs_d / static_cast<double>(t.size()));
    for (std::size_t i = 0; i < t.size(); i += 10) {
      std::printf("%s %.3f %.3f\n", tag, t[i].state.x, t[i].state.y);
    }
  };
  for (const auto& [iter, net] : snapshots) {
    char tag[32];
    std::snprintf(tag, sizeof tag, "iter%03d", iter);
    emit(tag, net);
  }
  emit("final_best", result.controller);

  std::printf("\n# series: cost_history (iteration best_cost)\n");
  for (std::size_t i = 0; i < costs.size(); ++i) {
    std::printf("cost %zu %.1f\n", i, costs[i]);
  }
  std::printf("\n# paper trend: wandering at random init; progressively "
              "tighter tracking by iterations 5/25/final.\n");
  return 0;
}
