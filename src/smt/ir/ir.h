#pragma once
/// \file ir.h
/// \brief SSA-style intermediate representation between `Hc4Tape` and the
/// native x86-64 backend (src/smt/jit).
///
/// A tape is already single-assignment per pass — every interior slot is
/// written by exactly one forward instruction — so the lowering is a
/// 1:1 re-kinding of the instruction stream into explicit forward and
/// backward programs, followed by optimization passes that are each
/// *provably bit-preserving* with respect to the interpreter:
///
///  * `fold_constants` — a forward instruction whose operands are all
///    constant-valued slots computes the same interval every pass (leaf
///    constants are re-seeded before each forward sweep, so the inputs
///    are pristine by construction). The value is evaluated once at
///    compile time — with the *same* kernel the interpreter would run —
///    and preloaded like a leaf constant; the forward instruction
///    disappears. The matching backward projection is retained: it
///    narrows the constant operand slots and its emptiness aborts are a
///    real feasibility signal (a constant requirement can go empty at
///    the ulp level even when the algebra says it shouldn't).
///
///  * `share_subexpressions` — forward value numbering: a structural
///    duplicate of an earlier instruction (same op / exponent / operand
///    slots) becomes a register copy from the representative's slot.
///    Each node keeps its own slot, so the backward sweep — where
///    requirements differ per node — replays unchanged. On tapes built
///    from an `ExprPool` this is a verified no-op (hash-consing plus
///    commutative-operand canonicalization make structural duplicates
///    unrepresentable); it is the tape-level guarantee for programs
///    assembled from other sources, and the unit tests drive it with
///    hand-built programs.
///
///  * `prune_dead_projections` — two provably-dead shapes:
///    (a) `kPow` with exponent ≤ 0: the interpreter's projection is a
///        literal no-op (`project_node` declines to invert non-positive
///        powers), so only the per-instruction requirement-emptiness
///        check survives (`BwdKind::kCheckOnly` — the check is
///        load-bearing: it is what aborts the sweep when an ancestor
///        emptied this slot).
///    (b) the second `kAdd` projection leg whose target is a
///        single-reference constant leaf: the narrowed value is provably
///        never read again before the next re-seed (one reference total,
///        leaves have no own projection, readback touches variables
///        only), so the store is elided while the intersect + emptiness
///        *check* — the observable part — remains.
///
/// Passes run in the order above; `dump()` prints the program (used
/// pass-by-pass under `BCERT_JIT_DUMP=1`) in a format whose instruction
/// lines round-trip counts for the disassembler tests.

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "src/expr/expr.h"
#include "src/interval/interval.h"
#include "src/smt/tape.h"

namespace bcert::smt::ir {

/// Emission strategy of one forward instruction.
enum class FwdKind : std::uint8_t {
  kGeneric,   ///< helper call into apply_interval_op
  kAdd,       ///< inline SSE add (tkern::add_iv twin)
  kSub,       ///< inline SSE subtract
  kNeg,       ///< inline negate (empty operand passes through untouched)
  kMulConst,  ///< inline multiply by {w, w}; `exponent` = MulConstSpec index
  kCopy,      ///< dst ← a (inserted by share_subexpressions)
  kFolded,    ///< removed; value preloaded via Program::folded_consts
};

struct FwdInstr {
  TapeSlot dst = kNoSlot;
  TapeSlot a = kNoSlot;
  TapeSlot b = kNoSlot;
  expr::Op op = expr::Op::kConst;
  std::int16_t exponent = 0;  ///< kPow exponent, or MulConstSpec index
  FwdKind kind = FwdKind::kGeneric;
};

/// Emission strategy of one backward (projection) instruction.
enum class BwdKind : std::uint8_t {
  kGeneric,    ///< requirement check + project_node helper call
  kAdd,        ///< inline two-leg refine_sub
  kMulConst,   ///< requirement check + reciprocal-multiply helper call
  kCheckOnly,  ///< projection eliminated; requirement check retained
};

struct BwdInstr {
  TapeSlot dst = kNoSlot;
  TapeSlot a = kNoSlot;
  TapeSlot b = kNoSlot;
  expr::Op op = expr::Op::kConst;
  std::int16_t exponent = 0;
  BwdKind kind = BwdKind::kGeneric;
  bool store_b = true;  ///< false: kAdd leg-2 store elided (check kept)
};

/// What the optimization passes did (dump + unit-test introspection).
struct PassStats {
  std::size_t folded = 0;
  std::size_t shared = 0;
  std::size_t dead_projections = 0;
  std::size_t demoted_stores = 0;
};

/// One conjunction tape lowered to explicit forward/backward programs.
/// `backward` is stored in execution order (reverse topological), so the
/// emitter walks both vectors front to back.
struct Program {
  std::vector<FwdInstr> forward;
  std::vector<BwdInstr> backward;
  /// Slots turned constant by fold_constants, with their preload values.
  std::vector<std::pair<TapeSlot, interval::Interval>> folded_consts;
  std::size_t num_slots = 0;
  PassStats stats;

  /// 1:1 lowering of \p tape (no optimization applied yet).
  static Program from_tape(const Hc4Tape& tape);

  /// Runs the three passes in order; cumulative stats are returned and
  /// kept in `stats`. When `core::RuntimeConfig::active().jit_dump` is
  /// set, the program is dumped to stderr after every pass.
  PassStats optimize(const Hc4Tape& tape);

  // Individual passes (exposed for unit tests).
  void fold_constants(const Hc4Tape& tape);
  void share_subexpressions();
  void prune_dead_projections(const Hc4Tape& tape);

  /// Live (non-folded) forward instruction count.
  std::size_t live_forward() const;

  /// Prints "ir(<phase>): ..." header plus one line per live forward
  /// instruction ("  f %dst = ...") and one per backward instruction
  /// ("  b %dst ...").
  void dump(std::ostream& os, const char* phase) const;
};

}  // namespace bcert::smt::ir
