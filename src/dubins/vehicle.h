#pragma once
/// \file vehicle.h
/// \brief Global-frame Dubins car (Eqs. 8-10) and closed-loop simulation
/// against a target path. Used for controller training (Figure 4) and
/// informal validation; the *verification* model is the 2-state error
/// dynamics in error_dynamics.h.

#include <functional>

#include "src/dubins/path.h"
#include "src/linalg/vector.h"
#include "src/ode/trace.h"

namespace bcert::dubins {

/// Vehicle pose in the global frame.
struct VehicleState {
  double x = 0.0;
  double y = 0.0;
  double theta = 0.0;  ///< clockwise from +y (paper convention)
};

/// Steering controller: (d_err, θ_err) → turn rate u.
using SteeringController =
    std::function<double(double d_err, double theta_err)>;

/// Discrete-time closed-loop simulation settings (mirrors the paper's
/// MATLAB discrete-time simulation used for the training cost).
struct SimOptions {
  double velocity = 5.0;  ///< constant longitudinal speed V
  double dt = 0.1;        ///< step
  std::size_t steps = 400;
  double u_min = -1.0;    ///< actuator saturation applied to u
  double u_max = 1.0;
};

/// One simulated sample of the closed loop.
struct ClosedLoopSample {
  double t = 0.0;
  VehicleState state;
  PathError error;
  double u = 0.0;
};

/// Full closed-loop record.
struct ClosedLoopTrace {
  std::vector<ClosedLoopSample> samples;

  std::size_t size() const { return samples.size(); }
  const ClosedLoopSample& operator[](std::size_t i) const {
    return samples[i];
  }
};

/// Simulates the Dubins car following \p path under \p controller from
/// \p initial, using per-step Euler integration of Eqs. (8)-(10) (the
/// paper's discrete-time training simulation).
ClosedLoopTrace simulate_path_following(const PiecewiseLinearPath& path,
                                        const SteeringController& controller,
                                        const VehicleState& initial,
                                        const SimOptions& opts);

}  // namespace bcert::dubins
