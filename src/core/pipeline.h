#pragma once
/// \file pipeline.h
/// \brief The template-generic Figure-1 verification pipeline.
///
/// `BarrierPipeline<Form>` is the single implementation of the paper's
/// procedure — seed simulations, the LP ↔ SMT(5) candidate refinement
/// loop, domain invariance, level-set selection with SMT (6)/(7) — for
/// any certificate template `Form` (today `QuadraticForm` and
/// `PolynomialForm`). It replaces the former twin `BarrierVerifier` /
/// `PolyBarrierVerifier` code paths, which duplicated the whole
/// candidate-loop/level-set machinery; those classes survive as thin
/// deprecated shims over this pipeline.
///
/// The per-template differences are isolated in `CertificateTraits`:
///
///  * **synthesize** — which margin LP builds a candidate (pure
///    quadratic template vs a general monomial basis);
///  * **level_window** — the analytic ellipsoid window (quadratic) vs
///    the certified global-optimizer window (polynomial);
///  * **check_level_exclusion** — condition (7) over the level set's
///    bounding box intersected with U's halfspaces (quadratic) vs the
///    face form (7′) over ∂(safe_rect) (polynomial; see
///    poly_verifier.h for the soundness argument).
///
/// Everything else — the decrease check (5), the initial-set check (6),
/// domain invariance, the δ-refinement workflow, the Table-1 timing
/// instrumentation and the binary search on ℓ — is shared code.
///
/// `PipelineHooks` is how the Engine drives a pipeline run: cooperative
/// cancellation, a deadline (both also interrupt long ICP queries via
/// `IcpConfig::interrupt` / clamped time limits), progress callbacks, an
/// owned thread pool, and the cross-scenario LP warm-basis slot.

#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/verify_types.h"
#include "src/interval/box.h"

namespace bcert::parallel {
class CancellationToken;
class ThreadPool;
}  // namespace bcert::parallel

namespace bcert::core {

/// Pipeline phases, reported through `PipelineHooks::on_progress`.
enum class JobPhase : std::uint8_t {
  kSeeding,        ///< initial random simulations
  kCandidateLoop,  ///< LP ↔ SMT(5) refinement
  kLevelSet,       ///< invariance + ℓ window + SMT (6)/(7)
  kDone,
};

const char* job_phase_name(JobPhase p);

/// Progress snapshot passed to the callback. Invoked from the thread
/// executing the pipeline (an Engine pool worker for submitted jobs) —
/// callbacks must be thread-safe and cheap.
struct JobProgress {
  JobPhase phase = JobPhase::kSeeding;
  int candidate_iteration = 0;  ///< 1-based, 0 before the loop
  int level_iteration = 0;      ///< 1-based, 0 before the search
};

/// Execution context the Engine (or a test harness) threads into a
/// pipeline run. Default-constructed hooks reproduce the classic
/// blocking one-shot `verify()` exactly.
struct PipelineHooks {
  /// Cooperative cancellation: polled between pipeline steps and wired
  /// into every ICP query via IcpConfig::interrupt, so a cancel aborts
  /// even a long-running SMT check promptly. Result status: kCancelled.
  const parallel::CancellationToken* cancel = nullptr;
  /// Pool for parallel ICP / DNF dispatch; null = the process-global
  /// pool (IcpConfig::pool can still override per-query).
  parallel::ThreadPool* pool = nullptr;
  /// Wall-clock deadline; each ICP query's time limit is clamped to the
  /// remaining budget. Result status: kDeadlineExceeded.
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  std::function<void(const JobProgress&)> on_progress;
  /// Cross-run LP warm-basis slot (the Engine's per-shape store): read
  /// as the first candidate LP's starting basis, overwritten with the
  /// final basis on exit. Warm starts never change LP *results* —
  /// stale/singular bases silently cold-start — but with degenerate
  /// alternate optima a different (equally optimal) vertex may be
  /// reported than a cold solve would find.
  lp::LpBasis* warm_basis_io = nullptr;
  /// Per-job memory budget (the Engine's resource governor): the ICP
  /// frontier and UNSAT-tree recorder charge against it, and a latched
  /// quota breach surfaces as VerifyStatus::kResourceExhausted instead
  /// of unbounded growth. Null = unlimited.
  MemoryBudget* mem_budget = nullptr;
};

template <typename Form>
class BarrierPipeline;

/// What one candidate synthesis produced, template-independently shaped
/// (the traits adapt SynthesisResult / PolySynthesisResult onto this).
template <typename Form>
struct PipelineSynthesis {
  bool feasible = false;
  /// Engaged whenever the LP ran (the forms have no default state).
  std::optional<Form> candidate;
  double margin = 0.0;
  lp::LpBasis basis;
  bool lp_warm_started = false;
  /// States whose decrease constraint binds an infeasible LP (quadratic
  /// synthesis only — empty for polynomial templates).
  std::vector<linalg::Vector> binding_states;
};

/// The per-template specialization layer. Only these five operations
/// differ between certificate templates; see the file comment.
template <typename Form>
struct CertificateTraits;

template <>
struct CertificateTraits<QuadraticForm> {
  static constexpr const char* kName = "quadratic";
  static constexpr TemplateSpec::Kind kKind = TemplateSpec::Kind::kQuadratic;

  /// The quadratic template needs no synthesis state beyond the
  /// problem dimension.
  struct Context {
    Context(const BarrierProblem&, const TemplateSpec&) {}
  };

  static PipelineSynthesis<QuadraticForm> synthesize(
      const std::vector<FieldSample>& samples,
      const BarrierPipeline<QuadraticForm>& pipeline,
      const SynthesisOptions& options);
  static void store_generator(VerifyResult& result, const QuadraticForm& w);
  static bool certificate_admissible(const QuadraticForm& w, double level);
  /// Analytic ellipsoid window [ℓ_min, ℓ_max].
  static std::optional<std::pair<double, double>> level_window(
      const BarrierPipeline<QuadraticForm>& pipeline, const QuadraticForm& w);
  /// Condition (7): ∃x : W(x) ≤ ℓ ∧ x ∈ U over the level set's padded
  /// bounding box.
  static smt::IcpResult check_level_exclusion(
      const BarrierPipeline<QuadraticForm>& pipeline, const QuadraticForm& w,
      double level);
};

template <>
struct CertificateTraits<PolynomialForm> {
  static constexpr const char* kName = "polynomial";
  static constexpr TemplateSpec::Kind kKind = TemplateSpec::Kind::kPolynomial;

  struct Context {
    MonomialBasis basis;
    smt::OptimizeConfig optimize;
    Context(const BarrierProblem& p, const TemplateSpec& spec)
        : basis(p.dims(), 2, spec.max_degree), optimize(spec.optimize) {}
  };

  static PipelineSynthesis<PolynomialForm> synthesize(
      const std::vector<FieldSample>& samples,
      const BarrierPipeline<PolynomialForm>& pipeline,
      const SynthesisOptions& options);
  static void store_generator(VerifyResult& result, const PolynomialForm& w);
  static bool certificate_admissible(const PolynomialForm& w, double level);
  /// Certified optimizer window: ℓ above the certified max of W over
  /// X0, below the certified min over the boundary faces.
  static std::optional<std::pair<double, double>> level_window(
      const BarrierPipeline<PolynomialForm>& pipeline,
      const PolynomialForm& w);
  /// Condition (7′): ∃x on an unsafe-dimension face of the safe
  /// rectangle with W(x) ≤ ℓ.
  static smt::IcpResult check_level_exclusion(
      const BarrierPipeline<PolynomialForm>& pipeline,
      const PolynomialForm& w, double level);
};

/// The Figure-1 procedure, generic over the certificate template. The
/// sub-steps are public so tests, benches and ablations can drive them
/// independently (as they could on the old verifier classes).
template <typename Form>
class BarrierPipeline {
 public:
  using Traits = CertificateTraits<Form>;

  /// Validates the problem and installs per-run tape/UNSAT-tree caches
  /// when the options carry none (the Engine injects its shared caches
  /// instead).
  BarrierPipeline(BarrierProblem problem, VerifierOptions options,
                  TemplateSpec spec = {});

  /// Runs the full pipeline under the given execution hooks.
  VerifyResult run(PipelineHooks hooks = {});

  // --- exposed sub-steps -------------------------------------------------

  /// Simulates from \p x0 until the horizon or domain exit and returns
  /// in-domain LP samples.
  std::vector<FieldSample> simulate_samples(const linalg::Vector& x0) const;

  /// Random initial states across the safe rectangle.
  std::vector<linalg::Vector> random_initial_states(int count,
                                                    unsigned seed) const;

  /// SMT condition (5): ∃x ∈ D\X0 : ∇W·f(x) ≥ −γ. UNSAT ⇒ valid
  /// generator. \p delta overrides the configured ICP precision when
  /// positive.
  smt::IcpResult check_decrease(const Form& w, double delta = 0.0) const;

  /// Numeric ∇W·f(x) at a point (used to classify δ-SAT witnesses).
  double numeric_lie(const Form& w, const linalg::Vector& x) const;

  /// SMT condition (6): ∃x ∈ X0 : W(x) > ℓ. UNSAT ⇒ X0 ⊂ L.
  smt::IcpResult check_initial_contained(const Form& w, double level) const;

  /// The template's condition-(7) variant (see CertificateTraits).
  smt::IcpResult check_level_exclusion(const Form& w, double level) const;

  /// For every domain-only dimension, proves the vector field points
  /// inward on both faces of the safe rectangle (∃x on face with
  /// outward flow must be UNSAT). Returns a kSat-style result on the
  /// first violation; an UNSAT result when all faces are invariant.
  smt::IcpResult check_domain_invariance() const;

  /// The template's ℓ window [ℓ_min, ℓ_max]; nullopt when none exists.
  std::optional<std::pair<double, double>> level_window(const Form& w) const;

  /// Independent certificate checking: re-proves conditions (5), (6)
  /// and (7)/(7′) for a *given* candidate pair (W, ℓ) without any
  /// synthesis. Returns kSafe only when all three queries are UNSAT.
  VerifyStatus check_certificate(const Form& w, double level) const;

  /// Writes the three SMT queries for the pair (W, ℓ) as SMT-LIB2
  /// benchmarks cross-checkable with dReal: `<prefix>_decrease.smt2`,
  /// `<prefix>_initial.smt2`, `<prefix>_unsafe.smt2`.
  void export_queries_smtlib(const Form& w, double level,
                             const std::string& prefix) const;

  /// Faces of the safe rectangle as degenerate boxes; when
  /// \p unsafe_only, restricted to unsafe dimensions.
  std::vector<interval::Box> safe_faces(bool unsafe_only) const;

  /// Solves a query with this pipeline's effective ICP configuration
  /// (caches, hooks interrupt/pool, deadline-clamped time limit).
  smt::IcpResult solve(const smt::Conjunction& query,
                       const interval::Box& box) const;
  smt::IcpResult solve(const smt::Dnf& query, const interval::Box& box) const;

  const BarrierProblem& problem() const { return problem_; }
  const VerifierOptions& options() const { return options_; }
  const TemplateSpec& spec() const { return spec_; }
  const typename Traits::Context& context() const { return context_; }

 private:
  /// Effective ICP config for one query: hooks wired in, δ overridden
  /// when positive, time limit clamped to the remaining deadline.
  smt::IcpConfig icp_config(double delta = 0.0) const;
  /// Sets the status and returns true when the run should stop (cancel
  /// fired or deadline passed).
  bool interrupted(VerifyResult& result) const;
  /// What a kUnknown ICP verdict means for this run: kResourceExhausted
  /// when the job's memory budget latched (the query wound down because
  /// admission stopped, not because the solver budget ran out),
  /// kSolverBudget otherwise.
  VerifyStatus unknown_status() const;
  /// The procedure body; run() wraps it to stamp the degradation
  /// snapshot and the typed error onto every exit path.
  VerifyResult run_impl();
  void report_progress(JobPhase phase, int candidate_iteration,
                       int level_iteration) const;

  BarrierProblem problem_;
  VerifierOptions options_;
  TemplateSpec spec_;
  typename Traits::Context context_;
  PipelineHooks hooks_;  ///< live during run(); defaults otherwise
  /// Per-run fallback tallies (tape→tree, SIMD downgrade, cold starts),
  /// shared with the ICP workers via IcpConfig::degrade. Mutable: the
  /// const query helpers hand out a non-const pointer.
  mutable DegradationCounters degrade_;
};

extern template class BarrierPipeline<QuadraticForm>;
extern template class BarrierPipeline<PolynomialForm>;

}  // namespace bcert::core
