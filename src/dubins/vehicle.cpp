#include "src/dubins/vehicle.h"

#include <algorithm>
#include <cmath>

namespace bcert::dubins {

ClosedLoopTrace simulate_path_following(const PiecewiseLinearPath& path,
                                        const SteeringController& controller,
                                        const VehicleState& initial,
                                        const SimOptions& opts) {
  ClosedLoopTrace trace;
  trace.samples.reserve(opts.steps + 1);

  VehicleState s = initial;
  for (std::size_t k = 0; k <= opts.steps; ++k) {
    ClosedLoopSample sample;
    sample.t = static_cast<double>(k) * opts.dt;
    sample.state = s;
    sample.error = path.error(s.x, s.y, s.theta);
    sample.u = std::clamp(
        controller(sample.error.distance, sample.error.angle), opts.u_min,
        opts.u_max);
    trace.samples.push_back(sample);
    if (k == opts.steps) break;

    // Euler step of Eqs. (8)-(10): ẋ = V sin θ, ẏ = V cos θ, θ̇ = u.
    s.x += opts.dt * opts.velocity * std::sin(s.theta);
    s.y += opts.dt * opts.velocity * std::cos(s.theta);
    s.theta += opts.dt * sample.u;
  }
  return trace;
}

}  // namespace bcert::dubins
