#!/usr/bin/env bash
# Daemon smoke: drives a real bcertd over its Unix socket through the
# full service lifecycle and diffs every verdict line against the
# in-process baseline (`bcertctl local-campaign`).
#
#   usage: ci/daemon_smoke.sh BUILD_DIR [FAULT_SPEC]
#
# The script runs one cold daemon campaign with concurrent clients and
# a cancel, then a drain → restart → resubmit cycle so the second
# campaign starts from the snapshot written on drain. Verdict lines
# must be byte-identical across all three runs (local, cold daemon,
# restarted daemon) — warm state may only change timings, never
# verdicts.
#
# With FAULT_SPEC set (e.g. "socket_io:throw@every:7,cache_serialize:
# throw@every:2") the same lifecycle must survive dropped client
# connections and failed snapshot writes: clients reconnect and poll
# `status` (results are always delivered), a failed save is skipped
# with a warning, and the restarted daemon simply starts cold. The
# warm-evidence assertions are therefore gated to the clean leg only.
set -euo pipefail

BUILD_DIR="${1:?usage: ci/daemon_smoke.sh BUILD_DIR [FAULT_SPEC]}"
FAULT_SPEC="${2:-}"

BCERTD="$BUILD_DIR/bcertd"
BCERTCTL="$BUILD_DIR/bcertctl"
[[ -x "$BCERTD" && -x "$BCERTCTL" ]] || {
  echo "daemon_smoke: bcertd/bcertctl not built in $BUILD_DIR" >&2
  exit 1
}

SEED=7
COUNT=4
WORK="$(mktemp -d)"
SOCK="$WORK/bcertd.sock"
STATE="$WORK/state"
SNAPSHOT="$STATE/bcertd.snapshot"
mkdir -p "$STATE"

DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

ctl() { "$BCERTCTL" --socket "$SOCK" "$@"; }

start_daemon() {
  env BCERT_DAEMON_SOCKET="$SOCK" BCERT_STATE_DIR="$STATE" \
      BCERT_SNAPSHOT_S=0 BCERT_LOG_LEVEL=info \
      ${FAULT_SPEC:+BCERT_FAULT="$FAULT_SPEC"} \
      "$BCERTD" >>"$WORK/bcertd.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    if ctl --connect-timeout 1 ping >/dev/null 2>&1; then return 0; fi
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.2
  done
  echo "daemon_smoke: daemon did not come up" >&2
  cat "$WORK/bcertd.log" >&2
  exit 1
}

drain_daemon() {
  ctl drain --wait >/dev/null
  local exit_code=0
  wait "$DAEMON_PID" || exit_code=$?
  DAEMON_PID=""
  if [[ "$exit_code" -ne 0 ]]; then
    echo "daemon_smoke: drain exited $exit_code" >&2
    cat "$WORK/bcertd.log" >&2
    exit 1
  fi
}

diff_verdicts() {
  if ! diff -u "$WORK/expected.txt" "$1"; then
    echo "daemon_smoke: $2 verdicts diverged from local-campaign" >&2
    exit 1
  fi
}

# In-process baseline (no daemon, no faults): the exact lines every
# daemon campaign below must reproduce.
"$BCERTCTL" local-campaign --seed "$SEED" --count "$COUNT" \
  >"$WORK/expected.txt"

echo "== cold daemon: concurrent campaign + stats client + cancel =="
start_daemon

# Client 1: the mini-campaign (submits all jobs, then polls verdicts).
ctl campaign --seed "$SEED" --count "$COUNT" >"$WORK/cold.txt" &
CAMPAIGN_PID=$!

# Client 2 (concurrent connection): submit a job beyond the campaign
# suite and cancel it while it is still queued behind the campaign.
SUBMIT_OUT="$(ctl submit --seed "$SEED" --index "$COUNT")"
CANCEL_JOB="${SUBMIT_OUT#job=}"
CANCEL_JOB="${CANCEL_JOB%% *}"
ctl cancel --job "$CANCEL_JOB" >/dev/null

# Client 3 (concurrent connection): stats poller.
ctl stats >/dev/null

wait "$CAMPAIGN_PID" || {
  echo "daemon_smoke: campaign client failed" >&2
  cat "$WORK/bcertd.log" >&2
  exit 1
}
diff_verdicts "$WORK/cold.txt" "cold-daemon"

# The cancelled job must report cancelled, not a verdict. Cancellation
# of a running job is cooperative, so poll until the result lands.
CANCELLED_OK=0
for _ in $(seq 1 100); do
  if ctl status --job "$CANCEL_JOB" | grep -qF "(cancelled)"; then
    CANCELLED_OK=1
    break
  fi
  sleep 0.2
done
if [[ "$CANCELLED_OK" -ne 1 ]]; then
  echo "daemon_smoke: cancelled job did not report cancelled" >&2
  exit 1
fi

ctl stats >"$WORK/stats_cold.txt"
drain_daemon

echo "== restart from snapshot: resubmit the same campaign =="
if [[ -z "$FAULT_SPEC" && ! -f "$SNAPSHOT" ]]; then
  echo "daemon_smoke: drain did not write $SNAPSHOT" >&2
  exit 1
fi
start_daemon
ctl campaign --seed "$SEED" --count "$COUNT" >"$WORK/warm.txt"
diff_verdicts "$WORK/warm.txt" "restarted-daemon"

ctl stats >"$WORK/stats_warm.txt"
if [[ -z "$FAULT_SPEC" ]]; then
  # Clean leg only: the restart must actually have taken the warm path.
  grep -q "snapshots.loaded=true" "$WORK/stats_warm.txt" || {
    echo "daemon_smoke: restarted daemon did not load the snapshot" >&2
    cat "$WORK/stats_warm.txt" >&2
    exit 1
  }
  TAPE_RESTORES="$(sed -n 's/^caches\.tape\.warm_restores=//p' \
    "$WORK/stats_warm.txt")"
  TREE_RESTORES="$(sed -n 's/^caches\.unsat\.warm_restores=//p' \
    "$WORK/stats_warm.txt")"
  if [[ "${TAPE_RESTORES:-0}" -eq 0 || "${TREE_RESTORES:-0}" -eq 0 ]]; then
    echo "daemon_smoke: no warm restores after restart" \
         "(tape=${TAPE_RESTORES:-0} tree=${TREE_RESTORES:-0})" >&2
    cat "$WORK/stats_warm.txt" >&2
    exit 1
  fi
  echo "warm evidence: tape=$TAPE_RESTORES tree=$TREE_RESTORES restores"
fi
drain_daemon

echo "daemon_smoke: OK (cold, restarted and local verdicts identical)"
