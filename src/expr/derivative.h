#pragma once
/// \file derivative.h
/// \brief Symbolic differentiation over the expression pool.
///
/// Used to form the Lie derivative ∇W·f of the generator function along
/// the closed-loop vector field. Differentiation is memoized per
/// (node, variable) pair, so shared subterms are differentiated once.

#include <vector>

#include "src/expr/expr.h"

namespace bcert::expr {

/// Returns ∂expr/∂x_var as a new expression in the same pool.
/// Non-differentiable ops (relu kinks, abs at 0, min/max ties) use the
/// standard sub-gradient convention (derivative of the active branch);
/// for the smooth activations the paper targets this never matters.
ExprId differentiate(ExprPool& pool, ExprId expr, std::int32_t var);

/// Gradient with respect to variables 0..n-1.
std::vector<ExprId> gradient(ExprPool& pool, ExprId expr, std::size_t n);

/// Lie derivative ∇W·f — the left side of barrier condition (3):
/// dW/dt along trajectories of ẋ = f(x).
/// \p field must have one component per state variable.
ExprId lie_derivative(ExprPool& pool, ExprId w,
                      const std::vector<ExprId>& field);

}  // namespace bcert::expr
