#include "src/smt/cache_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "src/core/binary_io.h"
#include "src/core/fault.h"

namespace bcert::smt {

using core::ByteReader;
using core::ByteWriter;
using interval::Interval;

namespace {

constexpr char kMagic[8] = {'B', 'C', 'E', 'R', 'T', 'S', 'N', 'P'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;

void write_interval(ByteWriter& w, const Interval& iv) {
  w.f64(iv.lo());
  w.f64(iv.hi());
}

Interval read_interval(ByteReader& r) {
  const double lo = r.f64();
  const double hi = r.f64();
  return Interval(lo, hi);
}

void write_intervals(ByteWriter& w, const std::vector<Interval>& ivs) {
  w.u64(ivs.size());
  for (const Interval& iv : ivs) write_interval(w, iv);
}

bool read_intervals(ByteReader& r, std::vector<Interval>& out) {
  const std::uint64_t n = r.u64();
  if (!r.can_read(n, 16)) return false;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(read_interval(r));
  return r.ok();
}

void write_u32s(ByteWriter& w, const std::vector<std::uint32_t>& v) {
  w.u64(v.size());
  for (const std::uint32_t x : v) w.u32(x);
}

bool read_u32s(ByteReader& r, std::vector<std::uint32_t>& out) {
  const std::uint64_t n = r.u64();
  if (!r.can_read(n, 4)) return false;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.u32());
  return r.ok();
}

// --- tape section ------------------------------------------------------------

void write_tape(ByteWriter& w, const Hc4Tape::Image& img) {
  w.u64(img.rels.size());
  for (const Rel rel : img.rels) w.u8(static_cast<std::uint8_t>(rel));
  w.u64(img.code.size());
  for (const TapeInstr& ins : img.code) {
    w.u32(ins.dst);
    w.u32(ins.a);
    w.u32(ins.b);
    w.u8(static_cast<std::uint8_t>(ins.op));
    w.u8(static_cast<std::uint8_t>(ins.spec));
    w.u16(static_cast<std::uint16_t>(ins.exponent));
  }
  w.u64(img.mul_const.size());
  for (const MulConstSpec& sp : img.mul_const) {
    w.f64(sp.w);
    write_interval(w, sp.rec);
    w.u32(sp.var_slot);
    w.u32(sp.const_slot);
    w.u8(sp.var_is_a ? 1 : 0);
  }
  write_u32s(w, img.var_slots);
  write_u32s(w, img.var_dims);
  write_u32s(w, img.const_slots);
  write_intervals(w, img.const_values);
  write_u32s(w, img.root_slots);
  write_intervals(w, img.root_feasible);
  w.u64(img.num_slots);
}

bool read_tape(ByteReader& r, Hc4Tape::Image& img) {
  const std::uint64_t num_rels = r.u64();
  if (!r.can_read(num_rels, 1)) return false;
  img.rels.reserve(num_rels);
  for (std::uint64_t i = 0; i < num_rels; ++i) {
    const std::uint8_t rel = r.u8();
    if (rel > static_cast<std::uint8_t>(Rel::kEq)) return false;
    img.rels.push_back(static_cast<Rel>(rel));
  }
  const std::uint64_t num_instrs = r.u64();
  if (!r.can_read(num_instrs, 16)) return false;
  img.code.reserve(num_instrs);
  for (std::uint64_t i = 0; i < num_instrs; ++i) {
    TapeInstr ins;
    ins.dst = r.u32();
    ins.a = r.u32();
    ins.b = r.u32();
    ins.op = static_cast<expr::Op>(r.u8());
    ins.spec = static_cast<std::int8_t>(r.u8());
    ins.exponent = static_cast<std::int16_t>(r.u16());
    img.code.push_back(ins);
  }
  const std::uint64_t num_specs = r.u64();
  if (!r.can_read(num_specs, 33)) return false;
  img.mul_const.reserve(num_specs);
  for (std::uint64_t i = 0; i < num_specs; ++i) {
    MulConstSpec sp;
    sp.w = r.f64();
    sp.rec = read_interval(r);
    sp.var_slot = r.u32();
    sp.const_slot = r.u32();
    sp.var_is_a = r.u8() != 0;
    img.mul_const.push_back(sp);
  }
  if (!read_u32s(r, img.var_slots)) return false;
  if (!read_u32s(r, img.var_dims)) return false;
  if (!read_u32s(r, img.const_slots)) return false;
  if (!read_intervals(r, img.const_values)) return false;
  if (!read_u32s(r, img.root_slots)) return false;
  if (!read_intervals(r, img.root_feasible)) return false;
  img.num_slots = r.u64();
  return r.ok();
}

// --- tree section ------------------------------------------------------------

void write_tree(ByteWriter& w, const UnsatTree& tree) {
  w.u64(tree.root_box.size());
  for (const Interval& iv : tree.root_box) write_interval(w, iv);
  w.u64(tree.nodes.size());
  for (const UnsatTree::Node& n : tree.nodes) {
    w.u32(n.dim);
    w.f64(n.value);
    w.u32(n.left);
    w.u32(n.right);
  }
}

bool read_tree(ByteReader& r, UnsatTree& tree) {
  const std::uint64_t dims = r.u64();
  if (!r.can_read(dims, 16)) return false;
  std::vector<Interval> box_dims;
  box_dims.reserve(dims);
  for (std::uint64_t i = 0; i < dims; ++i) box_dims.push_back(read_interval(r));
  tree.root_box = interval::Box(std::move(box_dims));
  const std::uint64_t num_nodes = r.u64();
  if (!r.can_read(num_nodes, 20)) return false;
  tree.nodes.reserve(num_nodes);
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    UnsatTree::Node n;
    n.dim = r.u32();
    n.value = r.f64();
    n.left = r.u32();
    n.right = r.u32();
    tree.nodes.push_back(n);
  }
  // walk() tolerates any node contents (malformed ⇒ leaf, keeping the
  // partition cover), so structural validation ends at the byte level.
  return r.ok();
}

// --- basis section -----------------------------------------------------------

void write_basis(ByteWriter& w, const WarmBasisEntry& e) {
  w.i32(e.kind);
  w.i32(e.degree);
  w.u64(e.dims);
  w.u64(e.basis.basic.size());
  for (const std::int32_t col : e.basis.basic) w.i32(col);
  w.i32(e.basis.num_structural);
}

bool read_basis(ByteReader& r, WarmBasisEntry& e) {
  e.kind = r.i32();
  e.degree = r.i32();
  e.dims = r.u64();
  const std::uint64_t rows = r.u64();
  if (!r.can_read(rows, 4)) return false;
  e.basis.basic.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) e.basis.basic.push_back(r.i32());
  e.basis.num_structural = r.i32();
  return r.ok();
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const WarmState& state) {
  ByteWriter payload;
  payload.u64(state.tapes.size());
  for (const TapeCache::WarmEntry& e : state.tapes) {
    payload.u64(e.content.a);
    payload.u64(e.content.b);
    write_tape(payload, e.tape->image());
  }
  payload.u64(state.trees.size());
  for (const UnsatTreeCache::WarmEntry& e : state.trees) {
    payload.u64(e.content.a);
    payload.u64(e.content.b);
    write_tree(payload, *e.tree);
  }
  payload.u64(state.bases.size());
  for (const WarmBasisEntry& e : state.bases) write_basis(payload, e);

  ByteWriter out;
  out.bytes(reinterpret_cast<const std::uint8_t*>(kMagic), sizeof kMagic);
  out.u32(kSnapshotVersion);
  out.u64(payload.size());
  out.u64(core::fnv1a64(payload.data().data(), payload.size()));
  out.bytes(payload.data().data(), payload.size());
  return out.take();
}

bool decode_snapshot(const std::uint8_t* data, std::size_t size,
                     WarmState& out, std::string* error) {
  out = WarmState{};
  const auto fail = [&](const char* why) {
    out = WarmState{};
    if (error != nullptr) *error = why;
    return false;
  };

  if (size < kHeaderBytes) return fail("snapshot shorter than header");
  if (std::memcmp(data, kMagic, sizeof kMagic) != 0) {
    return fail("bad snapshot magic");
  }
  ByteReader header(data + sizeof kMagic, kHeaderBytes - sizeof kMagic);
  const std::uint32_t version = header.u32();
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t checksum = header.u64();
  if (version != kSnapshotVersion) return fail("snapshot version mismatch");
  if (payload_size != size - kHeaderBytes) {
    return fail("snapshot payload size mismatch");
  }
  const std::uint8_t* payload = data + kHeaderBytes;
  if (core::fnv1a64(payload, payload_size) != checksum) {
    return fail("snapshot checksum mismatch");
  }

  ByteReader r(payload, payload_size);
  const std::uint64_t num_tapes = r.u64();
  if (!r.can_read(num_tapes, 16)) return fail("corrupt tape count");
  out.tapes.reserve(num_tapes);
  for (std::uint64_t i = 0; i < num_tapes; ++i) {
    TapeCache::WarmEntry e;
    e.content.a = r.u64();
    e.content.b = r.u64();
    Hc4Tape::Image img;
    if (!read_tape(r, img)) return fail("corrupt tape record");
    e.tape = Hc4Tape::restore(img);
    if (e.tape == nullptr) return fail("invalid tape image");
    out.tapes.push_back(std::move(e));
  }
  const std::uint64_t num_trees = r.u64();
  if (!r.can_read(num_trees, 16)) return fail("corrupt tree count");
  out.trees.reserve(num_trees);
  for (std::uint64_t i = 0; i < num_trees; ++i) {
    UnsatTreeCache::WarmEntry e;
    e.content.a = r.u64();
    e.content.b = r.u64();
    auto tree = std::make_shared<UnsatTree>();
    if (!read_tree(r, *tree)) return fail("corrupt tree record");
    e.tree = std::move(tree);
    out.trees.push_back(std::move(e));
  }
  const std::uint64_t num_bases = r.u64();
  if (!r.can_read(num_bases, 20)) return fail("corrupt basis count");
  out.bases.reserve(num_bases);
  for (std::uint64_t i = 0; i < num_bases; ++i) {
    WarmBasisEntry e;
    if (!read_basis(r, e)) return fail("corrupt basis record");
    out.bases.push_back(std::move(e));
  }
  if (!r.ok()) return fail("snapshot truncated");
  if (r.remaining() != 0) return fail("trailing bytes after snapshot");
  return true;
}

bool save_snapshot(const std::string& path, const WarmState& state,
                   std::string* error) {
  try {
    // Degradation rung: an armed cache_serialize fault makes the save
    // report failure — callers skip the snapshot and keep serving.
    core::FaultRegistry::check(core::FaultPoint::kCacheSerialize);

    const std::vector<std::uint8_t> bytes = encode_snapshot(state);
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      if (error != nullptr) {
        *error = "open failed: " + std::string(std::strerror(errno));
      }
      return false;
    }
    const std::size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool flushed = std::fflush(f) == 0;
    const bool closed = std::fclose(f) == 0;
    if (written != bytes.size() || !flushed || !closed) {
      std::remove(tmp.c_str());
      if (error != nullptr) *error = "short write";
      return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      if (error != nullptr) {
        *error = "rename failed: " + std::string(std::strerror(errno));
      }
      return false;
    }
    return true;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

bool load_snapshot(const std::string& path, WarmState& out,
                   std::string* error) {
  out = WarmState{};
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "open failed: " + std::string(std::strerror(errno));
    }
    return false;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    if (error != nullptr) *error = "read failed";
    return false;
  }
  return decode_snapshot(bytes.data(), bytes.size(), out, error);
}

}  // namespace bcert::smt
