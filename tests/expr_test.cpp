// Unit tests for the expression IR: construction/simplification,
// evaluation (scalar + interval), differentiation, printing.
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "src/expr/derivative.h"
#include "src/expr/eval.h"
#include "src/expr/expr.h"
#include "src/expr/printer.h"

namespace bcert::expr {
namespace {

using interval::Box;
using interval::Interval;
using linalg::Vector;

TEST(ExprPool, HashConsingSharesNodes) {
  ExprPool p;
  const ExprId x = p.var(0);
  const ExprId a = p.add(x, p.constant(2.0));
  const ExprId b = p.add(x, p.constant(2.0));
  EXPECT_EQ(a, b);
  const std::size_t before = p.size();
  (void)p.add(x, p.constant(2.0));
  EXPECT_EQ(p.size(), before);
}

TEST(ExprPool, CommutativeCanonicalization) {
  ExprPool p;
  const ExprId x = p.var(0), y = p.var(1);
  EXPECT_EQ(p.add(x, y), p.add(y, x));
  EXPECT_EQ(p.mul(x, y), p.mul(y, x));
}

TEST(ExprPool, ConstantFolding) {
  ExprPool p;
  EXPECT_TRUE(p.is_const(p.add(p.constant(2.0), p.constant(3.0)), 5.0));
  EXPECT_TRUE(p.is_const(p.mul(p.constant(2.0), p.constant(3.0)), 6.0));
  EXPECT_TRUE(p.is_const(p.sin(p.constant(0.0)), 0.0));
  EXPECT_TRUE(p.is_const(p.tanh(p.constant(0.0)), 0.0));
}

TEST(ExprPool, Identities) {
  ExprPool p;
  const ExprId x = p.var(0);
  EXPECT_EQ(p.add(x, p.zero()), x);
  EXPECT_EQ(p.mul(x, p.one()), x);
  EXPECT_TRUE(p.is_const(p.mul(x, p.zero()), 0.0));
  EXPECT_TRUE(p.is_const(p.sub(x, x), 0.0));
  EXPECT_EQ(p.neg(p.neg(x)), x);
  EXPECT_EQ(p.mul(x, x), p.sqr(x));
  EXPECT_EQ(p.pow(x, 1), x);
  EXPECT_EQ(p.pow(x, 2), p.sqr(x));
}

TEST(ExprPool, EvalPolynomial) {
  ExprPool p;
  const ExprId x = p.var(0), y = p.var(1);
  // 2x² + 3xy - y + 1
  const ExprId e =
      p.add(p.add(p.mul(p.constant(2.0), p.sqr(x)),
                  p.mul(p.constant(3.0), p.mul(x, y))),
            p.add(p.neg(y), p.one()));
  EXPECT_DOUBLE_EQ(p.eval(e, Vector{2.0, 1.0}), 8.0 + 6.0 - 1.0 + 1.0);
}

TEST(ExprPool, EvalTranscendental) {
  ExprPool p;
  const ExprId x = p.var(0);
  const ExprId e = p.add(p.sin(x), p.mul(p.cos(x), p.tanh(x)));
  const double v = 0.7;
  EXPECT_NEAR(p.eval(e, Vector{v}),
              std::sin(v) + std::cos(v) * std::tanh(v), 1e-15);
}

TEST(ExprPool, VariablesAndTermSize) {
  ExprPool p;
  const ExprId e = p.mul(p.add(p.var(0), p.var(2)), p.var(2));
  const auto vars = p.variables(e);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], 0);
  EXPECT_EQ(vars[1], 2);
  EXPECT_GE(p.term_size(e), 4u);
}

TEST(ExprPool, SumBalancedMatchesSequential) {
  ExprPool p;
  std::vector<ExprId> terms;
  for (int i = 0; i < 17; ++i) terms.push_back(p.constant(i));
  EXPECT_TRUE(p.is_const(p.sum(terms), 136.0));
}

TEST(ExprPool, AffineBuilder) {
  ExprPool p;
  const ExprId e = p.affine({2.0, -1.0}, {p.var(0), p.var(1)}, 0.5);
  EXPECT_DOUBLE_EQ(p.eval(e, Vector{3.0, 4.0}), 6.0 - 4.0 + 0.5);
}

TEST(Evaluator, MatchesPoolEval) {
  ExprPool p;
  const ExprId x = p.var(0), y = p.var(1);
  const ExprId e1 = p.mul(p.sin(x), p.exp(y));
  const ExprId e2 = p.sub(p.sqr(x), p.div(y, p.constant(2.0)));
  Evaluator ev(p, {e1, e2});
  const Vector pt{0.3, -0.8};
  const auto out = ev.eval(pt);
  EXPECT_NEAR(out[0], p.eval(e1, pt), 1e-15);
  EXPECT_NEAR(out[1], p.eval(e2, pt), 1e-15);
}

TEST(Evaluator, IntervalEnclosesPointEvals) {
  ExprPool p;
  const ExprId x = p.var(0), y = p.var(1);
  const ExprId e = p.add(p.mul(p.sin(x), p.cos(y)), p.sqr(p.tanh(x)));
  Evaluator ev(p, {e});
  const Box box = Box::from_bounds({{-1.0, 1.0}, {0.0, 2.0}});
  const Interval img = ev.eval(box)[0];
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dx(-1.0, 1.0), dy(0.0, 2.0);
  for (int i = 0; i < 500; ++i) {
    const Vector pt{dx(rng), dy(rng)};
    ASSERT_TRUE(img.contains(p.eval(e, pt)));
  }
}

TEST(Derivative, Polynomial) {
  ExprPool p;
  const ExprId x = p.var(0);
  // d/dx (x³ - 2x) = 3x² - 2
  const ExprId e = p.sub(p.pow(x, 3), p.mul(p.constant(2.0), x));
  const ExprId d = differentiate(p, e, 0);
  EXPECT_NEAR(p.eval(d, Vector{2.0}), 10.0, 1e-12);
  EXPECT_NEAR(p.eval(d, Vector{0.0}), -2.0, 1e-12);
}

TEST(Derivative, ChainRuleThroughTanh) {
  ExprPool p;
  const ExprId x = p.var(0);
  const ExprId e = p.tanh(p.mul(p.constant(3.0), x));
  const ExprId d = differentiate(p, e, 0);
  const double v = 0.4;
  const double expected = 3.0 * (1.0 - std::pow(std::tanh(3.0 * v), 2));
  EXPECT_NEAR(p.eval(d, Vector{v}), expected, 1e-12);
}

TEST(Derivative, PartialDerivatives) {
  ExprPool p;
  const ExprId x = p.var(0), y = p.var(1);
  const ExprId e = p.mul(x, p.sin(y));
  EXPECT_NEAR(p.eval(differentiate(p, e, 0), Vector{2.0, 1.0}),
              std::sin(1.0), 1e-12);
  EXPECT_NEAR(p.eval(differentiate(p, e, 1), Vector{2.0, 1.0}),
              2.0 * std::cos(1.0), 1e-12);
}

TEST(Derivative, GradientAndLie) {
  ExprPool p;
  const ExprId x = p.var(0), y = p.var(1);
  // W = x² + y², f = (-y, x) (rotation): Lie derivative must be 0.
  const ExprId w = p.add(p.sqr(x), p.sqr(y));
  const ExprId lie = lie_derivative(p, w, {p.neg(y), x});
  EXPECT_NEAR(p.eval(lie, Vector{0.3, -0.7}), 0.0, 1e-15);
  // f = (-x, -y) (contraction): Lie derivative = -2(x²+y²) < 0.
  const ExprId lie2 = lie_derivative(p, w, {p.neg(x), p.neg(y)});
  EXPECT_NEAR(p.eval(lie2, Vector{1.0, 2.0}), -10.0, 1e-12);
}

TEST(Derivative, NumericalAgreement) {
  ExprPool p;
  const ExprId x = p.var(0);
  const ExprId e =
      p.mul(p.exp(p.neg(p.sqr(x))), p.add(p.sin(x), p.constant(2.0)));
  const ExprId d = differentiate(p, e, 0);
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dom(-2.0, 2.0);
  const double h = 1e-6;
  for (int i = 0; i < 50; ++i) {
    const double v = dom(rng);
    const double fd =
        (p.eval(e, Vector{v + h}) - p.eval(e, Vector{v - h})) / (2 * h);
    EXPECT_NEAR(p.eval(d, Vector{v}), fd, 1e-5);
  }
}

TEST(Derivative, SigmoidDerivative) {
  ExprPool p;
  const ExprId x = p.var(0);
  const ExprId d = differentiate(p, p.sigmoid(x), 0);
  const double v = 0.9;
  const double s = 1.0 / (1.0 + std::exp(-v));
  EXPECT_NEAR(p.eval(d, Vector{v}), s * (1.0 - s), 1e-12);
}

TEST(Derivative, ReluThrows) {
  ExprPool p;
  EXPECT_THROW(differentiate(p, p.relu(p.var(0)), 0), std::domain_error);
}

TEST(Printer, ReadableOutput) {
  ExprPool p;
  const ExprId x = p.var(0), y = p.var(1);
  const ExprId e = p.add(p.sqr(x), p.mul(p.constant(2.0), y));
  const std::string s = to_string(p, e);
  EXPECT_NE(s.find("x0"), std::string::npos);
  EXPECT_NE(s.find("x1"), std::string::npos);
  EXPECT_NE(s.find("^2"), std::string::npos);
  const std::string named = to_string(p, e, {"d_err", "th_err"});
  EXPECT_NE(named.find("d_err"), std::string::npos);
}

// Property: differentiation of random polynomial-ish expressions agrees
// with central finite differences.
class DiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(DiffProperty, RandomExpressionGradient) {
  std::mt19937 rng(GetParam());
  ExprPool p;
  const ExprId x = p.var(0), y = p.var(1);
  std::uniform_real_distribution<double> coeff(-2.0, 2.0);
  // random cubic in two vars + a tanh term
  const ExprId e = p.sum({p.mul(p.constant(coeff(rng)), p.pow(x, 3)),
                          p.mul(p.constant(coeff(rng)), p.mul(p.sqr(x), y)),
                          p.mul(p.constant(coeff(rng)), p.sqr(y)),
                          p.mul(p.constant(coeff(rng)), p.tanh(x)),
                          p.constant(coeff(rng))});
  const ExprId dx_ = differentiate(p, e, 0);
  const ExprId dy_ = differentiate(p, e, 1);
  std::uniform_real_distribution<double> dom(-1.5, 1.5);
  const double h = 1e-6;
  for (int i = 0; i < 20; ++i) {
    const Vector pt{dom(rng), dom(rng)};
    const double fdx = (p.eval(e, Vector{pt[0] + h, pt[1]}) -
                        p.eval(e, Vector{pt[0] - h, pt[1]})) /
                       (2 * h);
    const double fdy = (p.eval(e, Vector{pt[0], pt[1] + h}) -
                        p.eval(e, Vector{pt[0], pt[1] - h})) /
                       (2 * h);
    EXPECT_NEAR(p.eval(dx_, pt), fdx, 1e-4);
    EXPECT_NEAR(p.eval(dy_, pt), fdy, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace bcert::expr
