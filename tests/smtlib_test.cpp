// Tests for SMT-LIB2 query export.
#include <array>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "src/expr/derivative.h"
#include "src/scenario/plants.h"
#include "src/smt/smtlib_export.h"

namespace bcert::smt {
namespace {

using expr::ExprPool;
using expr::Op;
using interval::Box;

TEST(SmtLib, ExpressionRendering) {
  ExprPool p;
  const auto x = p.var(0), y = p.var(1);
  EXPECT_EQ(to_smtlib(p, p.add(x, y)), "(+ x0 x1)");
  // Commutative ops canonicalize operand order by node id.
  EXPECT_EQ(to_smtlib(p, p.mul(p.constant(2.0), x)), "(* x0 2.0)");
  EXPECT_EQ(to_smtlib(p, p.sin(x)), "(sin x0)");
  EXPECT_EQ(to_smtlib(p, p.tanh(x)), "(tanh x0)");
  EXPECT_EQ(to_smtlib(p, p.sqr(x)), "(* x0 x0)");
  EXPECT_EQ(to_smtlib(p, p.pow(x, 3)), "(^ x0 3)");
  EXPECT_EQ(to_smtlib(p, p.neg(x)), "(- x0)");
}

TEST(SmtLib, NegativeLiteralsWrapped) {
  ExprPool p;
  const std::string s = to_smtlib(p, p.add(p.var(0), p.constant(-1.5)));
  EXPECT_NE(s.find("(- 1.5)"), std::string::npos);
}

TEST(SmtLib, SigmoidExpanded) {
  ExprPool p;
  const std::string s = to_smtlib(p, p.sigmoid(p.var(0)));
  EXPECT_NE(s.find("exp"), std::string::npos);
  EXPECT_EQ(s.find("sigmoid"), std::string::npos);
}

TEST(SmtLib, CustomVariableNames) {
  ExprPool p;
  const std::string s =
      to_smtlib(p, p.mul(p.var(0), p.var(1)), {"d_err", "th_err"});
  EXPECT_NE(s.find("d_err"), std::string::npos);
  EXPECT_NE(s.find("th_err"), std::string::npos);
  EXPECT_EQ(s.find("x0"), std::string::npos);
}

TEST(SmtLib, FullBenchmarkStructure) {
  ExprPool p;
  Conjunction c;
  c.add(p.sub(p.sqr(p.var(0)), p.one()), Rel::kLe);
  c.add(p.sin(p.var(1)), Rel::kGt);
  std::ostringstream os;
  write_smtlib(os, p, c, Box::from_bounds({{-2.0, 2.0}, {0.0, 3.0}}));
  const std::string out = os.str();
  EXPECT_NE(out.find("(set-logic QF_NRA)"), std::string::npos);
  EXPECT_NE(out.find("(declare-fun x0 () Real)"), std::string::npos);
  EXPECT_NE(out.find("(declare-fun x1 () Real)"), std::string::npos);
  EXPECT_NE(out.find("(assert (>= x0 (- 2.0)))"), std::string::npos);
  EXPECT_NE(out.find("(assert (<= x0 2.0))"), std::string::npos);
  EXPECT_NE(out.find("(check-sat)"), std::string::npos);
  EXPECT_NE(out.find("(exit)"), std::string::npos);
  // Constraints appear with their relations.
  EXPECT_NE(out.find("(<= (- (* x0 x0) 1.0) 0.0)"), std::string::npos);
  EXPECT_NE(out.find("(> (sin x1) 0.0)"), std::string::npos);
}

TEST(SmtLib, DnfBecomesOrOfAnds) {
  ExprPool p;
  Conjunction a, b;
  a.add(p.var(0), Rel::kLe);
  b.add(p.var(0), Rel::kGe);
  Dnf dnf({a, b});
  std::ostringstream os;
  write_smtlib(os, p, dnf, Box::from_bounds({{-1.0, 1.0}}));
  const std::string out = os.str();
  EXPECT_NE(out.find("(assert (or"), std::string::npos);
  EXPECT_NE(out.find("(and (<= x0 0.0))"), std::string::npos);
  EXPECT_NE(out.find("(and (>= x0 0.0))"), std::string::npos);
}

TEST(SmtLib, SharedSubtermsRenderConsistently) {
  ExprPool p;
  const auto t = p.tanh(p.var(0));
  const auto e = p.add(t, p.mul(t, t));  // tanh(x0) appears 3 times
  const std::string s = to_smtlib(p, e);
  // Count occurrences of "(tanh x0)".
  std::size_t count = 0, pos = 0;
  while ((pos = s.find("(tanh x0)", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 3u);
}

TEST(SmtLib, IntegralConstantsGetDecimalPoint) {
  ExprPool p;
  const std::string s = to_smtlib(p, p.add(p.var(0), p.constant(42.0)));
  EXPECT_NE(s.find("42.0"), std::string::npos);
}

// --- operator coverage audit -------------------------------------------

/// One expression exercising \p op. The switch is exhaustive on purpose:
/// adding an Op without extending it trips -Wswitch here, and adding one
/// without extending SmtPrinter::render() makes the export throw below —
/// either way the new operator cannot silently export as garbage.
expr::ExprId build_op(ExprPool& p, Op op) {
  const auto x = p.var(0), y = p.var(1);
  switch (op) {
    case Op::kConst: return p.constant(2.5);
    case Op::kVar: return x;
    case Op::kAdd: return p.add(x, y);
    case Op::kSub: return p.sub(x, y);
    case Op::kMul: return p.mul(x, y);
    case Op::kDiv: return p.div(x, y);
    case Op::kNeg: return p.neg(x);
    case Op::kSin: return p.sin(x);
    case Op::kCos: return p.cos(x);
    case Op::kTan: return p.tan(x);
    case Op::kAtan: return p.atan(x);
    case Op::kExp: return p.exp(x);
    case Op::kLog: return p.log(x);
    case Op::kSqrt: return p.sqrt(x);
    case Op::kSqr: return p.sqr(x);
    case Op::kPow: return p.pow(x, 5);
    case Op::kTanh: return p.tanh(x);
    case Op::kSigmoid: return p.sigmoid(x);
    case Op::kRelu: return p.relu(x);
    case Op::kAbs: return p.abs(x);
    case Op::kMin: return p.min(x, y);
    case Op::kMax: return p.max(x, y);
  }
  throw std::logic_error("build_op: unmapped operator");
}

bool balanced_parens(const std::string& s) {
  int depth = 0;
  for (char c : s) {
    if (c == '(') ++depth;
    if (c == ')' && --depth < 0) return false;
  }
  return depth == 0;
}

TEST(SmtLibAudit, EveryOperatorExportsOrFailsLoudly) {
  constexpr std::array<Op, 22> kAllOps = {
      Op::kConst, Op::kVar,  Op::kAdd,     Op::kSub,  Op::kMul,  Op::kDiv,
      Op::kNeg,   Op::kSin,  Op::kCos,     Op::kTan,  Op::kAtan, Op::kExp,
      Op::kLog,   Op::kSqrt, Op::kSqr,     Op::kPow,  Op::kTanh,
      Op::kSigmoid, Op::kRelu, Op::kAbs,   Op::kMin,  Op::kMax};
  // kMax is last in the enum; if this fails the list above is stale.
  ASSERT_EQ(static_cast<int>(Op::kMax), static_cast<int>(kAllOps.size()) - 1);
  for (Op op : kAllOps) {
    ExprPool p;
    std::string s;
    ASSERT_NO_THROW(s = to_smtlib(p, build_op(p, op)))
        << "op code " << static_cast<int>(op);
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s.find('?'), std::string::npos)
        << "op code " << static_cast<int>(op) << " rendered: " << s;
    EXPECT_TRUE(balanced_parens(s)) << s;
  }
}

TEST(SmtLibAudit, CorruptRelationThrowsInsteadOfEmittingTrue) {
  ExprPool p;
  Conjunction c;
  c.constraints.push_back({p.var(0), static_cast<Rel>(99)});
  std::ostringstream os;
  EXPECT_THROW(write_smtlib(os, p, c, Box::from_bounds({{-1.0, 1.0}})),
               std::logic_error);
}

// --- zoo-plant conjunction export ---------------------------------------

/// Exports the plant's Lie-derivative decrease conjunction (the query
/// shape the differential harness samples) and checks well-formedness.
std::string export_decrease_query(const core::Scenario& s) {
  ExprPool& p = *s.problem.pool;
  // A fixed quadratic candidate W = Σ xᵢ² over the plant's state.
  std::vector<expr::ExprId> sq;
  for (std::size_t i = 0; i < s.problem.safe_rect.lo.size(); ++i) {
    sq.push_back(p.sqr(p.var(static_cast<std::int32_t>(i))));
  }
  const expr::ExprId w = p.sum(sq);
  const expr::ExprId lie = expr::lie_derivative(p, w, s.problem.sym_field);
  Conjunction c;
  c.add(lie, Rel::kGe);
  std::ostringstream os;
  write_smtlib(os, p, c, s.problem.safe_rect.as_box());
  return os.str();
}

TEST(SmtLibAudit, AccScenarioConjunctionExports) {
  ExprPool pool;
  const std::string out =
      export_decrease_query(scenario::make_acc_scenario(pool));
  EXPECT_TRUE(balanced_parens(out));
  EXPECT_EQ(out.find('?'), std::string::npos);
  // The ELM controller puts tanh layers on the export path.
  EXPECT_NE(out.find("tanh"), std::string::npos);
  EXPECT_NE(out.find("(check-sat)"), std::string::npos);
}

TEST(SmtLibAudit, QuadrotorScenarioConjunctionExportsAbs) {
  ExprPool pool;
  const std::string out =
      export_decrease_query(scenario::make_quadrotor_scenario(pool));
  EXPECT_TRUE(balanced_parens(out));
  EXPECT_EQ(out.find('?'), std::string::npos);
  // The quadratic rate drag p·|p| puts kAbs on the export path.
  EXPECT_NE(out.find("abs"), std::string::npos);
}

TEST(SmtLibAudit, CtrnnScenarioConjunctionExports) {
  ExprPool pool;
  const std::string out =
      export_decrease_query(scenario::make_dubins_ctrnn_scenario(pool));
  EXPECT_TRUE(balanced_parens(out));
  EXPECT_EQ(out.find('?'), std::string::npos);
  // Three state dimensions declared (d_err, theta_err, hidden).
  EXPECT_NE(out.find("(declare-fun x2 () Real)"), std::string::npos);
}

}  // namespace
}  // namespace bcert::smt
