#pragma once
/// \file fault.h
/// \brief Deterministic fault injection, per-job resource accounting, and
/// the degradation-ladder bookkeeping shared by every layer of the stack.
///
/// Three small, dependency-free facilities live here (this header is part
/// of the bottom `bcert_config` library precisely so smt/lp/parallel can
/// use them without link cycles):
///
///  * `FaultRegistry` — named injection points compiled into the hot
///    paths behind a single relaxed atomic load (zero cost when no spec
///    is installed). A spec such as
///        tape_compile:throw@3,lp_solve:delay=50ms@every:7
///    arms points deterministically: hit counters are per-point and
///    1-based, `@N` fires on exactly the Nth hit, `@every:N` on every
///    Nth. Two flavors of site exist: `check()` sites *act* (throw a
///    `FaultInjected`, or sleep for `delay=` faults) and `trip()` sites
///    merely *report* that a fault fired so the surrounding code can walk
///    down its degradation ladder (tape → tree, AVX2 → SSE2 → scalar,
///    warm cache → cold start).
///
///  * `MemoryBudget` — per-job byte accounting with a quota. The ICP
///    frontier and the UNSAT-tree recorder charge their growth against
///    the job's budget; a failed charge latches `exhausted()` and the
///    pipeline converts it into a typed `kResourceExhausted` result
///    instead of an OOM kill. An armed `alloc` fault forces the next
///    charge to fail, so the whole path is testable without allocating
///    gigabytes.
///
///  * `DegradationCounters` / `DegradationReport` — one tally per rung of
///    the ladder, owned by the pipeline and snapshotted into
///    `VerifyResult::degradation` so every fallback decision is visible
///    in results and campaign JSON rather than silent.
///
/// `Status` / `ErrorCode` are the typed error taxonomy the Engine's
/// noexcept job boundary and `run_campaign`'s retry/quarantine logic
/// speak (see docs/ARCHITECTURE.md for the full table).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace bcert::core {

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

/// Typed failure classes threaded through engine, pipeline, ICP, tape and
/// LP. `kFaultInjected` and `kInternal` are transient from the campaign's
/// point of view (retry may succeed); the rest are deterministic.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kCancelled,           ///< job's cancellation token fired
  kDeadlineExceeded,    ///< wall-clock deadline hit
  kResourceExhausted,   ///< memory quota exceeded (MemoryBudget)
  kFaultInjected,       ///< an armed FaultRegistry point threw
  kWorkerStuck,         ///< watchdog: job missed deadline + grace
  kInternal,            ///< uncaught exception escaped the pipeline
};

const char* error_code_name(ErrorCode c);

/// Error code + human-readable context. `ok()` statuses carry no message.
struct Status {
  ErrorCode code = ErrorCode::kOk;
  std::string message;

  Status() = default;
  Status(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

  bool ok() const { return code == ErrorCode::kOk; }
  /// True for failure classes a campaign retry can plausibly clear.
  bool retryable() const {
    return code == ErrorCode::kFaultInjected || code == ErrorCode::kInternal;
  }
};

// ---------------------------------------------------------------------------
// Fault-injection registry
// ---------------------------------------------------------------------------

/// Named injection points. Names (used in BCERT_FAULT specs) are the
/// snake_case forms returned by fault_point_name().
enum class FaultPoint : std::uint8_t {
  kTapeCompile = 0,  ///< Hc4Tape compilation (check: throw → tree HC4)
  kJitCompile,       ///< Hc4Jit native emission (check: throw → tape HC4)
  kHc4Backward,      ///< tape backward sweep (check: throw → job isolation)
  kLpPivot,          ///< simplex pivot loop (check)
  kLpSolve,          ///< solve_lp entry (check)
  kCacheLookup,      ///< tape / UNSAT-tree cache probe (trip: cold start)
  kSimdDispatch,     ///< batched sweep tier dispatch (trip: downgrade)
  kWorkerDispatch,   ///< Engine job entry on a pool worker (check)
  kAlloc,            ///< MemoryBudget charge (trip: forced charge failure)
  kCacheSerialize,   ///< warm-state snapshot encode/write (check: the
                     ///< daemon skips the snapshot + warns, never dies)
  kSocketIo,         ///< daemon socket read/write (trip: connection drop)
  kNumPoints_,       ///< sentinel, not a point
};

inline constexpr std::size_t kNumFaultPoints =
    static_cast<std::size_t>(FaultPoint::kNumPoints_);

const char* fault_point_name(FaultPoint p);

/// Exception thrown by an armed `throw` fault at a check() site.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(FaultPoint point);
  FaultPoint point() const { return point_; }

 private:
  FaultPoint point_;
};

namespace detail {
/// Process-wide arm flag. Hot paths pay exactly this relaxed load while
/// no spec is installed.
extern std::atomic<bool> g_faults_enabled;
void fault_check_slow(FaultPoint p);  // throws FaultInjected / sleeps
bool fault_trip_slow(FaultPoint p);   // true when a rule fired
}  // namespace detail

/// Deterministic process-wide fault registry. check()/trip()/hits() are
/// safe to call concurrently from any thread; configure()/clear() are
/// setup-time operations (test fixtures, RuntimeConfig installing the
/// BCERT_FAULT spec) and must not race in-flight checks.
class FaultRegistry {
 public:
  /// True when any spec is installed. Tests that assert cache-hit or
  /// warm-start statistics guard themselves with this (an armed
  /// cache_lookup fault legitimately changes those counters).
  static bool enabled() {
    return detail::g_faults_enabled.load(std::memory_order_relaxed);
  }

  /// Hot-path injection check. No-op unless a spec is installed; an
  /// armed `throw` rule raises FaultInjected, an armed `delay=` rule
  /// sleeps, then control continues.
  static void check(FaultPoint p) {
    if (!enabled()) return;
    detail::fault_check_slow(p);
  }

  /// Non-throwing flavor for degradation-ladder sites: true when an
  /// armed rule fired (after honoring any `delay=`), so the caller
  /// should fall back one rung. Never throws.
  static bool trip(FaultPoint p) {
    if (!enabled()) return false;
    return detail::fault_trip_slow(p);
  }

  /// Parses and installs \p spec (comma-separated
  /// `point:action[@trigger]` entries; actions `throw` / `delay=Nms`;
  /// triggers `@N` / `@every:N`, default every hit). Replaces any
  /// previous spec and resets hit counters. Returns false and leaves the
  /// registry untouched on a malformed spec (each problem is appended to
  /// \p errors when non-null). An empty spec is equivalent to clear().
  static bool configure(const std::string& spec,
                        std::vector<std::string>* errors = nullptr);

  /// Parses \p spec without installing anything; true when well-formed.
  /// RuntimeConfig uses this to diagnose BCERT_FAULT at parse time.
  static bool validate(const std::string& spec,
                       std::vector<std::string>* errors = nullptr);

  /// Disarms every point and resets hit counters.
  static void clear();

  /// Times \p p has been evaluated since the last configure()/clear().
  static std::uint64_t hits(FaultPoint p);
};

// ---------------------------------------------------------------------------
// Resource governor
// ---------------------------------------------------------------------------

/// Per-job memory accounting. Quota 0 = unlimited (accounting only).
/// Thread-safe: ICP workers charge frontier growth concurrently.
class MemoryBudget {
 public:
  explicit MemoryBudget(std::size_t quota_bytes = 0) : quota_(quota_bytes) {}

  /// Attempts to reserve \p bytes. On failure (quota exceeded, or an
  /// armed `alloc` fault) nothing is charged and `exhausted()` latches.
  bool try_charge(std::size_t bytes) {
    if (FaultRegistry::trip(FaultPoint::kAlloc)) {
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
    const std::size_t now =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (quota_ != 0 && now > quota_) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Returns previously charged bytes to the budget.
  void release(std::size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Latched once any charge has failed; the pipeline maps this to
  /// kResourceExhausted.
  bool exhausted() const { return exhausted_.load(std::memory_order_relaxed); }

  std::size_t used() const { return used_.load(std::memory_order_relaxed); }
  std::size_t quota() const { return quota_; }

 private:
  std::size_t quota_;
  std::atomic<std::size_t> used_{0};
  std::atomic<bool> exhausted_{false};
};

// ---------------------------------------------------------------------------
// Degradation ladder bookkeeping
// ---------------------------------------------------------------------------

/// Plain snapshot of the per-job degradation counters, carried in
/// VerifyResult and serialized into campaign JSON.
struct DegradationReport {
  std::uint32_t jit_to_tape = 0;     ///< JIT emission failed → tape HC4
  std::uint32_t tape_to_tree = 0;    ///< tape compile failed → tree HC4
  std::uint32_t simd_downgrade = 0;  ///< batched tier walked down a rung
  std::uint32_t cache_cold = 0;      ///< cache entry dropped → cold start
  std::uint32_t lp_cold = 0;         ///< warm basis rejected → cold solve
  std::uint32_t retries = 0;         ///< campaign-level retry attempts

  bool any() const {
    return (jit_to_tape | tape_to_tree | simd_downgrade | cache_cold |
            lp_cold | retries) != 0;
  }
};

/// Atomic per-job tallies, one per ladder rung; shared by the pipeline
/// and the ICP workers running under it.
struct DegradationCounters {
  std::atomic<std::uint32_t> jit_to_tape{0};
  std::atomic<std::uint32_t> tape_to_tree{0};
  std::atomic<std::uint32_t> simd_downgrade{0};
  std::atomic<std::uint32_t> cache_cold{0};
  std::atomic<std::uint32_t> lp_cold{0};

  DegradationReport snapshot() const {
    DegradationReport r;
    r.jit_to_tape = jit_to_tape.load(std::memory_order_relaxed);
    r.tape_to_tree = tape_to_tree.load(std::memory_order_relaxed);
    r.simd_downgrade = simd_downgrade.load(std::memory_order_relaxed);
    r.cache_cold = cache_cold.load(std::memory_order_relaxed);
    r.lp_cold = lp_cold.load(std::memory_order_relaxed);
    return r;
  }
};

}  // namespace bcert::core
