#pragma once
/// \file hc4.h
/// \brief HC4 forward/backward interval contractor.
///
/// The workhorse of the δ-SAT solver. Given a conjunction of constraints
/// over a shared expression DAG and a box, HC4:
///   1. forward-evaluates every DAG node over the box (natural interval
///      extension),
///   2. intersects each constraint root with its feasible value set,
///   3. sweeps the DAG in reverse topological order, projecting each
///      node's requirement onto its children through inverse operations,
///   4. reads back the narrowed variable intervals as the contracted box.
///
/// All projections are conservative (they may keep spurious points but
/// never discard a real solution), so an empty result is a proof that the
/// box contains no solution of the conjunction.

#include <vector>

#include "src/expr/eval.h"
#include "src/interval/box.h"
#include "src/smt/constraint.h"

namespace bcert::smt {

/// Outcome of one contraction pass.
enum class ContractResult : std::uint8_t {
  kEmpty,       ///< box proven infeasible
  kContracted,  ///< box narrowed
  kNoChange,    ///< fixpoint for this pass
};

/// HC4 contractor specialized to one conjunction (shared evaluator).
class Hc4Contractor {
 public:
  /// Builds the shared evaluation schedule for all constraint roots.
  Hc4Contractor(const expr::ExprPool& pool, Conjunction conjunction);

  const Conjunction& conjunction() const { return conjunction_; }
  const expr::Evaluator& evaluator() const { return eval_; }

  /// One forward+backward pass; narrows \p box in place.
  ContractResult contract(interval::Box& box);

  /// Repeats passes until fixpoint (relative improvement below \p ratio)
  /// or \p max_passes; returns kEmpty as soon as infeasibility is proven.
  ContractResult contract_fixpoint(interval::Box& box, int max_passes = 8,
                                   double ratio = 0.05);

  /// Forward-evaluates all constraint roots over \p box.
  std::vector<interval::Interval> root_values(const interval::Box& box);

  /// True when every constraint is certainly satisfied over \p box
  /// (then any point of the box, e.g. its midpoint, is a real witness).
  bool certainly_satisfied(const interval::Box& box);

  /// True when some constraint is certainly violated over \p box.
  bool certainly_violated(const interval::Box& box);

 private:
  /// Projects node requirements onto children; false on empty.
  bool backward_sweep();

  Conjunction conjunction_;
  expr::Evaluator eval_;
  std::vector<std::size_t> root_positions_;
  std::vector<interval::Interval> req_;  // per schedule node requirement
};

}  // namespace bcert::smt
