#include "src/core/engine.h"

#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "src/core/fault.h"
#include "src/core/report.h"

namespace bcert::core {

namespace {

using clock = std::chrono::steady_clock;

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options),
      tape_cache_(std::make_shared<smt::TapeCache>(
          options.tape_cache_entries)),
      unsat_cache_(std::make_shared<smt::UnsatTreeCache>(
          options.unsat_cache_entries)),
      pool_(static_cast<std::size_t>(
          parallel::resolve_thread_count(options.threads))) {}

VerifyResult Engine::run_job(const BarrierProblem& problem,
                             const JobOptions& options,
                             parallel::CancellationToken* cancel,
                             clock::time_point submitted) {
  // Per-attempt resource governor: an explicit job quota wins, else the
  // BCERT_MEM_QUOTA runtime default (0 = accounting only, no limit).
  const std::size_t quota = options.mem_quota_bytes != 0
                                ? options.mem_quota_bytes
                                : RuntimeConfig::active().mem_quota_bytes;
  MemoryBudget budget(quota);

  // Noexcept job boundary: nothing a scenario does — an armed fault, a
  // bug escaping the pipeline, a malformed problem — may take the pool
  // worker (and with it every other queued scenario) down. Failures
  // come back as typed statuses that run_campaign can retry/quarantine.
  try {
    FaultRegistry::check(FaultPoint::kWorkerDispatch);

    // Wire the Engine-owned infrastructure into the pipeline. Caller-set
    // caches win (a job may want isolation); absent ones get the shared
    // stores so structurally repeated scenarios reuse compiled tapes,
    // UNSAT partitions and LP bases across the whole campaign.
    VerifierOptions verify = options.verify;
    if (!verify.icp.tape_cache) verify.icp.tape_cache = tape_cache_;
    if (!verify.icp.unsat_cache) verify.icp.unsat_cache = unsat_cache_;

    PipelineHooks hooks;
    hooks.cancel = cancel;
    hooks.pool = &pool_;
    if (options.deadline_s > 0.0) {
      hooks.deadline =
          submitted + std::chrono::duration_cast<clock::duration>(
                          std::chrono::duration<double>(options.deadline_s));
      hooks.has_deadline = true;
    }
    hooks.on_progress = options.on_progress;
    hooks.mem_budget = &budget;

    const BasisKey key{
        static_cast<int>(options.certificate.kind),
        options.certificate.kind == TemplateSpec::Kind::kQuadratic
            ? 2
            : options.certificate.max_degree,
        problem.dims()};
    lp::LpBasis basis;
    if (options_.share_lp_basis) {
      std::lock_guard<std::mutex> lock(basis_mutex_);
      const auto it = warm_bases_.find(key);
      if (it != warm_bases_.end()) basis = it->second;
      hooks.warm_basis_io = &basis;
    }

    VerifyResult result;
    if (options.certificate.kind == TemplateSpec::Kind::kQuadratic) {
      BarrierPipeline<QuadraticForm> pipeline(problem, std::move(verify),
                                              options.certificate);
      result = pipeline.run(std::move(hooks));
    } else {
      BarrierPipeline<PolynomialForm> pipeline(problem, std::move(verify),
                                               options.certificate);
      result = pipeline.run(std::move(hooks));
    }

    if (options_.share_lp_basis) {
      std::lock_guard<std::mutex> lock(basis_mutex_);
      warm_bases_[key] = std::move(basis);
    }
    return result;
  } catch (const FaultInjected& e) {
    VerifyResult result;
    result.template_kind = options.certificate.kind;
    result.status = VerifyStatus::kInternalError;
    result.error = Status(ErrorCode::kFaultInjected, e.what());
    return result;
  } catch (const std::exception& e) {
    VerifyResult result;
    result.template_kind = options.certificate.kind;
    result.status = VerifyStatus::kInternalError;
    result.error = Status(ErrorCode::kInternal, e.what());
    return result;
  }
}

VerifyResult Engine::verify(const BarrierProblem& problem,
                            const JobOptions& options) {
  ++jobs_submitted_;
  return run_job(problem, options, nullptr, clock::now());
}

JobHandle Engine::submit(BarrierProblem problem, JobOptions options) {
  ++jobs_submitted_;
  auto state = std::make_shared<JobState>();
  const clock::time_point submitted = clock::now();
  // The task shares ownership of the token only — capturing `state`
  // would close a state → future → task → state shared_ptr cycle and
  // leak the job; a dropped handle still cannot dangle the token.
  std::shared_ptr<parallel::CancellationToken> token = state->cancel;
  state->future =
      pool_
          .submit([this, token, submitted, problem = std::move(problem),
                   options = std::move(options)]() mutable {
            return run_job(problem, options, token.get(), submitted);
          })
          .share();
  return JobHandle(std::move(state));
}

namespace {

/// Collects one handle under the campaign watchdog. With a deadline
/// set, a job still running `grace` seconds past it is cancelled; if
/// it still does not retire within another grace period it is
/// abandoned with kWorkerStuck (the task co-owns its cancellation
/// token, so the detached worker is safe — it drains with the pool).
/// Without a deadline get() blocks, exactly the pre-watchdog behavior.
VerifyResult collect_with_watchdog(const JobHandle& handle,
                                   const JobOptions& options,
                                   const std::string& name) {
  if (options.deadline_s > 0.0) {
    if (!handle.wait_for(options.deadline_s + options.stuck_grace_s)) {
      handle.cancel();
      if (!handle.wait_for(options.stuck_grace_s)) {
        VerifyResult r;
        r.status = VerifyStatus::kInternalError;
        r.error = Status(ErrorCode::kWorkerStuck,
                         "scenario '" + name +
                             "' missed its deadline plus grace and ignored "
                             "cancellation; abandoned by the watchdog");
        return r;
      }
    }
  }
  return handle.get();
}

/// Campaign defaults specialized to one scenario (per-scenario template
/// override, when set).
JobOptions scenario_options(const Scenario& s, const JobOptions& defaults) {
  JobOptions options = defaults;
  if (s.certificate) options.certificate = *s.certificate;
  return options;
}

}  // namespace

CampaignResult Engine::run_campaign(std::span<const Scenario> scenarios,
                                    const JobOptions& defaults) {
  CampaignResult out;
  out.scenarios.reserve(scenarios.size());
  const clock::time_point t0 = clock::now();

  // Submit everything up front: scenarios pipeline through the pool
  // workers while this thread collects results in order.
  std::vector<JobHandle> handles;
  handles.reserve(scenarios.size());
  for (const Scenario& s : scenarios) {
    handles.push_back(submit(s.problem, scenario_options(s, defaults)));
  }
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const JobOptions options = scenario_options(scenarios[i], defaults);
    ScenarioOutcome outcome;
    outcome.name = scenarios[i].name;
    outcome.result =
        collect_with_watchdog(handles[i], options, outcome.name);

    // Bounded serial retry with exponential backoff for transient-class
    // failures (injected faults, escaped exceptions). kWorkerStuck,
    // deadline and quota breaches are deterministic — no retry.
    double backoff = options.retry.backoff_s;
    while (outcome.result.error.retryable() &&
           outcome.attempts <= options.retry.max_retries) {
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff *= options.retry.backoff_multiplier;
      }
      const JobHandle retry = submit(scenarios[i].problem, options);
      outcome.result = collect_with_watchdog(retry, options, outcome.name);
      ++outcome.attempts;
    }
    outcome.result.degradation.retries =
        static_cast<std::uint32_t>(outcome.attempts - 1);

    const ErrorCode code = outcome.result.error.code;
    if (code != ErrorCode::kOk) ++out.failed_count;
    outcome.quarantined = code == ErrorCode::kFaultInjected ||
                          code == ErrorCode::kInternal ||
                          code == ErrorCode::kWorkerStuck;
    if (outcome.quarantined) out.quarantined.push_back(outcome.name);

    out.aggregate.accumulate(outcome.result.timings);
    if (outcome.result.safe()) ++out.safe_count;
    out.scenarios.push_back(std::move(outcome));
  }
  out.wall_time_s =
      std::chrono::duration<double>(clock::now() - t0).count();
  return out;
}

CampaignResult Engine::run_campaign(std::span<const BarrierProblem> problems,
                                    const JobOptions& defaults) {
  std::vector<Scenario> scenarios;
  scenarios.reserve(problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    scenarios.push_back({"scenario-" + std::to_string(i), problems[i]});
  }
  return run_campaign(std::span<const Scenario>(scenarios), defaults);
}

FalsificationResult Engine::falsify(const BarrierProblem& problem,
                                    FalsifierOptions options) {
  if (options.pool == nullptr) options.pool = &pool_;
  Falsifier falsifier(problem, options);
  return falsifier.search();
}

smt::WarmState Engine::export_warm_state() const {
  smt::WarmState state;
  state.tapes = tape_cache_->export_entries();
  state.trees = unsat_cache_->export_entries();
  std::lock_guard<std::mutex> lock(basis_mutex_);
  state.bases.reserve(warm_bases_.size());
  for (const auto& [key, basis] : warm_bases_) {
    if (basis.empty()) continue;
    smt::WarmBasisEntry entry;
    entry.kind = std::get<0>(key);
    entry.degree = std::get<1>(key);
    entry.dims = std::get<2>(key);
    entry.basis = basis;
    state.bases.push_back(std::move(entry));
  }
  return state;
}

void Engine::import_warm_state(smt::WarmState state) {
  tape_cache_->import_entries(std::move(state.tapes));
  unsat_cache_->import_entries(std::move(state.trees));
  std::lock_guard<std::mutex> lock(basis_mutex_);
  for (smt::WarmBasisEntry& entry : state.bases) {
    const BasisKey key{entry.kind, entry.degree,
                       static_cast<std::size_t>(entry.dims)};
    // emplace keeps any live entry — a basis recorded this run is newer
    // (and by the warm-start contract, either is merely a starting
    // point, so staleness is a performance question only).
    warm_bases_.emplace(key, std::move(entry.basis));
  }
}

std::string CampaignResult::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\n  \"scenarios\": [";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \""
       << json_escape(scenarios[i].name)
       << "\", \"attempts\": " << scenarios[i].attempts
       << ", \"quarantined\": "
       << (scenarios[i].quarantined ? "true" : "false") << ", \"result\": ";
    write_result_json(os, scenarios[i].result);
    os << '}';
  }
  os << "\n  ],\n";
  os << "  \"safe_count\": " << safe_count << ",\n";
  os << "  \"failed_count\": " << failed_count << ",\n";
  os << "  \"quarantined\": [";
  for (std::size_t i = 0; i < quarantined.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(quarantined[i]) << '"';
  }
  os << "],\n";
  os << "  \"wall_time_s\": " << wall_time_s << ",\n";
  os << "  \"scenarios_per_sec\": " << scenarios_per_sec() << ",\n";
  os << "  \"aggregate\": {\n";
  os << "    \"candidate_iterations\": " << aggregate.candidate_iterations
     << ",\n";
  os << "    \"lp_solves\": " << aggregate.lp_solves << ",\n";
  os << "    \"lp_time_s\": " << aggregate.lp_time_s << ",\n";
  os << "    \"smt5_queries\": " << aggregate.smt5_queries << ",\n";
  os << "    \"smt5_time_s\": " << aggregate.smt5_time_s << ",\n";
  os << "    \"simulation_time_s\": " << aggregate.simulation_time_s
     << ",\n";
  os << "    \"generator_time_s\": " << aggregate.generator_time_s << ",\n";
  os << "    \"level_set_time_s\": " << aggregate.level_set_time_s << ",\n";
  os << "    \"total_time_s\": " << aggregate.total_time_s << "\n";
  os << "  }\n}\n";
  return os.str();
}

}  // namespace bcert::core
