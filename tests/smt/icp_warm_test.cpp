// UNSAT-tree warm-starting tests: warm-vs-cold equivalence on a
// verifier-shaped candidate sequence (same SAT/UNSAT answers, valid
// witnesses), the silent cold fallback on stale seeds, the
// poisoned-seed soundness guarantee (a wrong tree can never change a
// verdict — replayed leaves always partition the search box), and the
// bounded keyed stores (TapeCache / UnsatTreeCache LRU + stats).
#include <cmath>
#include <memory>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/runtime_config.h"
#include "src/expr/expr.h"
#include "src/smt/icp_solver.h"
#include "src/smt/unsat_tree.h"

namespace bcert::smt {
namespace {

using expr::ExprId;
using expr::ExprPool;
using interval::Box;
using interval::Interval;
using linalg::Vector;

/// Candidate-shaped query built on the interval dependency problem:
/// h = (x+y)² − x² − 2xy − y² is identically zero, but its natural
/// enclosure straddles zero with an error proportional to the box
/// width, and HC4's occurrence-wise projections cannot shortcut that.
/// The query asks ∃(x,y) : coeff·h − eps ≥ 0. With eps > 0 it is UNSAT
/// but only refutable by subdividing until every enclosure tightens
/// below eps — a genuine, reproducible split tree, the shape of the
/// verifier's hard SMT-(5) refutations. With eps < 0 it is satisfied
/// everywhere (h ≡ 0 ≥ eps) and SAT is found after a few splits.
/// `coeff` and `eps` are expression *constants*: every draw shares one
/// structure, which is exactly the warm-start hit pattern (only W's
/// coefficients change between candidate iterations). Keep coeff away
/// from 0/±1 so constant-folding cannot alter the shape.
Conjunction candidate_query(ExprPool& pool, double coeff, double eps) {
  const ExprId x = pool.var(0);
  const ExprId y = pool.var(1);
  const ExprId h = pool.sub(
      pool.sub(pool.sub(pool.sqr(pool.add(x, y)), pool.sqr(x)),
               pool.mul(pool.constant(2.0), pool.mul(x, y))),
      pool.sqr(y));
  Conjunction q;
  q.add(pool.sub(pool.mul(pool.constant(coeff), h), pool.constant(eps)),
        Rel::kGe);
  return q;
}

constexpr double kEps = 0.1;

Box search_box() { return Box::from_bounds({{-1.0, 1.0}, {-1.0, 1.0}}); }

IcpConfig warm_config(std::shared_ptr<UnsatTreeCache> cache) {
  IcpConfig config;
  config.delta = 1e-3;
  config.max_boxes = 2'000'000;
  config.time_limit_s = 120.0;
  config.threads = 1;
  config.unsat_cache = std::move(cache);
  return config;
}

TEST(IcpWarm, StructuralSignatureIgnoresConstantValues) {
  ExprPool pool;
  const Conjunction c1 = candidate_query(pool, 1.2, kEps);
  const Conjunction c2 = candidate_query(pool, 1.37, -0.09);
  EXPECT_EQ(structural_signature(pool, c1), structural_signature(pool, c2));

  // A different shape (extra constraint) must not collide.
  Conjunction c3 = candidate_query(pool, 1.2, kEps);
  c3.add(pool.sub(pool.var(0), pool.constant(1.0)), Rel::kLe);
  EXPECT_NE(structural_signature(pool, c1), structural_signature(pool, c3));

  // Same shape, different relation: distinct.
  Conjunction c4;
  c4.add(c1.constraints[0].lhs, Rel::kLe);
  EXPECT_NE(structural_signature(pool, c1), structural_signature(pool, c4));
}

TEST(IcpWarm, RepeatedQueryWarmStartsAndProcessesFewerBoxes) {
  // An armed cache_lookup fault legitimately forces cold starts; the
  // counters this test pins would then undercount by design.
  core::RuntimeConfig::active();  // installs any BCERT_FAULT spec
  if (core::FaultRegistry::enabled()) {
    GTEST_SKIP() << "fault injection armed: warm-start stats not stable";
  }
  ExprPool pool;
  const auto cache = std::make_shared<UnsatTreeCache>();
  const IcpSolver solver(pool, warm_config(cache));
  const Conjunction q = candidate_query(pool, 1.25, kEps);

  const IcpResult cold = solver.solve(q, search_box());
  ASSERT_EQ(cold.verdict, SatResult::kUnsat);
  EXPECT_EQ(cold.stats.warm_starts, 0u);
  ASSERT_GT(cold.stats.splits, 0u) << "workload too easy to exercise warm";
  EXPECT_EQ(cache->size(), 1u);

  const IcpResult warm = solver.solve(q, search_box());
  ASSERT_EQ(warm.verdict, SatResult::kUnsat);
  EXPECT_EQ(warm.stats.warm_starts, 1u);
  // Re-refuting an identical query touches only the partition leaves;
  // the cold run also processed every interior node of the tree.
  EXPECT_LT(warm.stats.boxes_processed, cold.stats.boxes_processed);
  EXPECT_GE(cache->stats().hits, 1u);
}

TEST(IcpWarm, WarmVsColdCandidateSequenceEquivalence) {
  // A recorded verifier-style conjunction sequence: mostly UNSAT
  // candidates with drifting coefficients, plus SAT interlopers (a
  // flipped slack sign makes the same structure satisfiable).
  struct Step {
    double coeff, eps;
  };
  const std::vector<Step> sequence = {
      {1.20, kEps},  {1.22, kEps}, {1.30, -kEps}, {1.25, kEps},
      {1.21, kEps},  {1.40, -kEps}, {1.27, kEps},
  };

  ExprPool cold_pool, warm_pool;
  const IcpSolver cold_solver(cold_pool,
                              warm_config(nullptr));  // no cache: cold
  const IcpSolver warm_solver(warm_pool,
                              warm_config(std::make_shared<UnsatTreeCache>()));

  std::uint32_t warm_hits = 0;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const Step& s = sequence[i];
    const Conjunction cq = candidate_query(cold_pool, s.coeff, s.eps);
    const Conjunction wq = candidate_query(warm_pool, s.coeff, s.eps);
    const IcpResult cold = cold_solver.solve(cq, search_box());
    const IcpResult warm = warm_solver.solve(wq, search_box());

    ASSERT_NE(cold.verdict, SatResult::kUnknown) << "step " << i;
    // Warm starts must never change a SAT/UNSAT answer.
    EXPECT_EQ(cold.is_unsat(), warm.is_unsat()) << "step " << i;
    EXPECT_EQ(cold.is_sat(), warm.is_sat()) << "step " << i;
    if (warm.is_unsat()) {
      EXPECT_FALSE(warm.witness.has_value());
    } else {
      // A witness box is valid regardless of which one is found first.
      ASSERT_TRUE(warm.witness.has_value()) << "step " << i;
      EXPECT_TRUE(search_box().contains(*warm.witness)) << "step " << i;
      if (warm.verdict == SatResult::kSat) {
        const Vector w = warm.witness_point();
        const double hv = (w[0] + w[1]) * (w[0] + w[1]) - w[0] * w[0] -
                          2.0 * w[0] * w[1] - w[1] * w[1];
        EXPECT_GE(s.coeff * hv - s.eps, -1e-9) << "step " << i;
      }
    }
    warm_hits += warm.stats.warm_starts;
  }
  // The drifting-coefficient steps share one structure: after the first
  // UNSAT proof, later steps must actually warm-start.
  EXPECT_GE(warm_hits, 3u);
}

TEST(IcpWarm, ImportedTreesRestoreWithoutChangingAnything) {
  core::RuntimeConfig::active();
  if (core::FaultRegistry::enabled()) {
    GTEST_SKIP() << "fault injection armed: warm-start stats not stable";
  }
  // The snapshot contract (src/smt/cache_io.h): a process restored from
  // exported trees must behave *bit-identically* to a fresh one on the
  // same query sequence — not just same SAT/UNSAT answers but the same
  // witnesses, because downstream the witness steers the LP ↔ SMT
  // trajectory and every low-order certificate digit. Content-exact
  // adoption guarantees this: an imported tree only ever seeds the
  // byte-identical query it refuted before.
  struct Step {
    double coeff, eps;
  };
  const std::vector<Step> sequence = {
      {1.20, kEps}, {1.22, kEps}, {1.30, -kEps}, {1.25, kEps},
  };

  ExprPool pool_a;
  const auto cache_a = std::make_shared<UnsatTreeCache>();
  const IcpSolver solver_a(pool_a, warm_config(cache_a));
  std::vector<IcpResult> organic;
  for (const Step& s : sequence) {
    organic.push_back(
        solver_a.solve(candidate_query(pool_a, s.coeff, s.eps), search_box()));
  }

  ExprPool pool_b;
  const auto cache_b = std::make_shared<UnsatTreeCache>();
  cache_b->import_entries(cache_a->export_entries());
  const IcpSolver solver_b(pool_b, warm_config(cache_b));
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const Step& s = sequence[i];
    const IcpResult restored =
        solver_b.solve(candidate_query(pool_b, s.coeff, s.eps), search_box());
    EXPECT_EQ(restored.verdict, organic[i].verdict) << "step " << i;
    ASSERT_EQ(restored.witness.has_value(), organic[i].witness.has_value())
        << "step " << i;
    if (restored.witness.has_value()) {
      // Bit-identical witness boxes, not merely valid ones.
      EXPECT_TRUE(*restored.witness == *organic[i].witness) << "step " << i;
    }
  }
  // The first refutation of the shape was answered from the import.
  EXPECT_GE(cache_b->warm_restores(), 1u);
}

TEST(IcpWarm, StaleSeedSilentlyFallsBackToColdStart) {
  core::RuntimeConfig::active();
  if (core::FaultRegistry::enabled()) {
    GTEST_SKIP() << "fault injection armed: warm-start stats not stable";
  }
  ExprPool pool;
  const auto cache = std::make_shared<UnsatTreeCache>();
  const IcpSolver solver(pool, warm_config(cache));
  const Conjunction q = candidate_query(pool, 1.22, kEps);

  ASSERT_EQ(solver.solve(q, search_box()).verdict, SatResult::kUnsat);
  ASSERT_EQ(cache->size(), 1u);

  // Same structure, different search box (the level-set pattern: the
  // bounding box moved with the candidate): the seed must be rejected
  // and the solve must be indistinguishable from a cold one.
  const Box moved = Box::from_bounds({{-1.25, 1.0}, {-1.0, 1.0}});
  const IcpResult r = solver.solve(q, moved);
  EXPECT_EQ(r.stats.warm_starts, 0u);
  EXPECT_GE(cache->stale(), 1u);

  ExprPool ref_pool;
  const Conjunction ref_q = candidate_query(ref_pool, 1.22, kEps);
  const IcpSolver ref(ref_pool, warm_config(nullptr));
  const IcpResult cold = ref.solve(ref_q, moved);
  EXPECT_EQ(r.verdict, cold.verdict);
  EXPECT_EQ(r.stats.boxes_processed, cold.stats.boxes_processed);
  EXPECT_EQ(r.stats.splits, cold.stats.splits);
}

TEST(IcpWarm, PoisonedSeedCannotChangeVerdicts) {
  core::RuntimeConfig::active();
  if (core::FaultRegistry::enabled()) {
    GTEST_SKIP() << "fault injection armed: warm-start stats not stable";
  }
  // Hand-plant a nonsense tree — splits in the wrong places, a split
  // point outside the box, an out-of-range child id — under the exact
  // signature and box of real queries. Replay still partitions the box,
  // so both the UNSAT and the SAT verdict must come out unchanged.
  for (const bool sat_case : {false, true}) {
    ExprPool pool;
    const auto cache = std::make_shared<UnsatTreeCache>();
    const double eps = sat_case ? -kEps : kEps;
    const Conjunction q = candidate_query(pool, 1.2, eps);

    auto poison = std::make_shared<UnsatTree>();
    poison->root_box = search_box();
    poison->nodes.resize(5);
    poison->nodes[0] = {1, 0.7, 1, 2};     // split y at 0.7
    poison->nodes[1] = {0, 97.0, 3, 4};    // split point outside the box
    poison->nodes[2] = {0, 0.4, 9000, 7};  // children out of range
    cache->store(pool, q, poison);

    const IcpSolver solver(pool, warm_config(cache));
    const IcpResult warm = solver.solve(q, search_box());
    EXPECT_EQ(warm.stats.warm_starts, 1u);

    ExprPool ref_pool;
    const Conjunction ref_q = candidate_query(ref_pool, 1.2, eps);
    const IcpSolver ref(ref_pool, warm_config(nullptr));
    const IcpResult cold = ref.solve(ref_q, search_box());
    EXPECT_EQ(cold.is_unsat(), warm.is_unsat());
    EXPECT_EQ(cold.is_sat(), warm.is_sat());
  }
}

TEST(IcpWarm, ReplayPartitionCoversTheBox) {
  UnsatTree tree;
  tree.root_box = search_box();
  tree.nodes.resize(3);
  tree.nodes[0] = {0, 0.25, 1, 2};
  tree.nodes[1] = {1, 0.0, UnsatTree::kNoNode, UnsatTree::kNoNode};
  tree.nodes[2] = {1, -3.5, UnsatTree::kNoNode, UnsatTree::kNoNode};
  EXPECT_EQ(tree.split_count(), 1u);

  std::vector<Box> leaves;
  tree.replay(search_box(), leaves);
  ASSERT_EQ(leaves.size(), 2u);

  // Every point of the box lies in some leaf (partition ⇒ soundness).
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> ux(-1.0, 1.0), uy(-1.0, 1.0);
  for (int i = 0; i < 200; ++i) {
    const Vector p{ux(rng), uy(rng)};
    bool covered = false;
    for (const Box& leaf : leaves) covered = covered || leaf.contains(p);
    EXPECT_TRUE(covered) << "point (" << p[0] << ", " << p[1] << ")";
  }

  // Degenerate split points clamp instead of losing coverage.
  UnsatTree clamped;
  clamped.root_box = search_box();
  clamped.nodes.resize(3);
  clamped.nodes[0] = {0, 99.0, 1, 2};  // split right of the box: left=all
  leaves.clear();
  clamped.replay(search_box(), leaves);
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_TRUE(leaves[0].contains(search_box()));
}

TEST(IcpWarm, WarmStartsDisabledByConfigFlag) {
  ExprPool pool;
  const auto cache = std::make_shared<UnsatTreeCache>();
  IcpConfig config = warm_config(cache);
  config.warm_start = false;  // env unset in tests: flag decides
  const IcpSolver solver(pool, config);
  const Conjunction q = candidate_query(pool, 1.3, kEps);

  ASSERT_EQ(solver.solve(q, search_box()).verdict, SatResult::kUnsat);
  const IcpResult again = solver.solve(q, search_box());
  EXPECT_EQ(again.verdict, SatResult::kUnsat);
  EXPECT_EQ(again.stats.warm_starts, 0u);
  // Disabled warm-starting records nothing either (pure legacy path).
  EXPECT_EQ(cache->size(), 0u);
}

TEST(IcpWarm, DnfQueriesWarmStartPerDisjunct) {
  core::RuntimeConfig::active();  // installs any BCERT_FAULT spec
  if (core::FaultRegistry::enabled()) {
    GTEST_SKIP() << "fault injection armed: warm-start stats not stable";
  }
  ExprPool pool;
  const auto cache = std::make_shared<UnsatTreeCache>();
  const IcpSolver solver(pool, warm_config(cache));

  const auto make_dnf = [&](double c1, double c2) {
    Dnf dnf;
    dnf.disjuncts.push_back(candidate_query(pool, c1, kEps));
    Conjunction second = candidate_query(pool, c2, kEps);
    second.add(pool.sub(pool.var(1), pool.constant(0.5)), Rel::kLe);
    dnf.disjuncts.push_back(std::move(second));
    return dnf;
  };

  const IcpResult cold = solver.solve(make_dnf(1.2, 1.3), search_box());
  ASSERT_EQ(cold.verdict, SatResult::kUnsat);
  EXPECT_EQ(cold.stats.warm_starts, 0u);
  EXPECT_EQ(cache->size(), 2u);  // one tree per refuted disjunct

  const IcpResult warm = solver.solve(make_dnf(1.25, 1.28), search_box());
  ASSERT_EQ(warm.verdict, SatResult::kUnsat);
  EXPECT_EQ(warm.stats.warm_starts, 2u);
  EXPECT_LE(warm.stats.boxes_processed, cold.stats.boxes_processed);
}

TEST(IcpWarm, TapeCacheIsBoundedLruWithStats) {
  ExprPool pool;
  TapeCache cache(/*capacity=*/4);
  std::vector<Conjunction> queries;
  for (int i = 0; i < 6; ++i) {
    Conjunction c;
    c.add(pool.add(pool.pow(pool.var(0), 2 + i), pool.var(1)), Rel::kLe);
    queries.push_back(std::move(c));
  }
  for (const Conjunction& c : queries) cache.get_or_compile(pool, c);
  EXPECT_EQ(cache.size(), 4u);

  KeyedCacheStats s = cache.stats();
  EXPECT_EQ(s.insertions, 6u);
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(s.misses, 6u);
  EXPECT_EQ(s.capacity, 4u);

  // Recent entries hit; the two oldest were evicted and recompile.
  const auto t5 = cache.get_or_compile(pool, queries[5]);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(t5.get(), cache.get_or_compile(pool, queries[5]).get());
  cache.get_or_compile(pool, queries[0]);  // evicted earlier: recompiles
  EXPECT_EQ(cache.stats().insertions, 7u);

  // LRU order: touching an entry protects it from the next eviction.
  const auto t3 = cache.get_or_compile(pool, queries[3]);  // hit: to front
  cache.get_or_compile(pool, queries[1]);  // insert: evicts LRU, not [3]
  EXPECT_EQ(t3.get(), cache.get_or_compile(pool, queries[3]).get());
}

TEST(IcpWarm, UnsatTreeCacheEvictsLeastRecentlyUsed) {
  ExprPool pool;
  UnsatTreeCache cache(/*capacity=*/2);
  const Box box = search_box();

  std::vector<Conjunction> qs;
  qs.push_back(candidate_query(pool, 1.2, kEps));
  {
    Conjunction c = candidate_query(pool, 1.2, kEps);
    c.add(pool.sub(pool.var(0), pool.constant(1.5)), Rel::kLe);
    qs.push_back(std::move(c));
  }
  {
    Conjunction c = candidate_query(pool, 1.2, kEps);
    c.add(pool.sub(pool.var(1), pool.constant(0.5)), Rel::kGe);
    qs.push_back(std::move(c));
  }

  for (const Conjunction& q : qs) {
    auto tree = std::make_shared<UnsatTree>();
    tree->root_box = box;
    cache.store(pool, q, tree);
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.find(pool, qs[0], box), nullptr);  // evicted
  EXPECT_NE(cache.find(pool, qs[2], box), nullptr);

  // Storing under an existing key replaces (newest proof wins).
  auto fresh = std::make_shared<UnsatTree>();
  fresh->root_box = box;
  fresh->nodes.resize(3);
  fresh->nodes[0] = {0, 1.0, 1, 2};
  cache.store(pool, qs[2], fresh);
  EXPECT_EQ(cache.size(), 2u);
  const auto got = cache.find(pool, qs[2], box);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->split_count(), 1u);
}

}  // namespace
}  // namespace bcert::smt
