#pragma once
/// \file eval.h
/// \brief Fast repeated evaluation of expression DAGs.
///
/// The ICP solver evaluates the same terms over thousands of boxes. The
/// `Evaluator` compiles a set of root expressions into a flat topological
/// schedule once; each evaluation is then a single pass over dense arrays
/// (no hashing, no recursion). Both real (`double`) and interval modes
/// share the schedule.

#include <vector>

#include "src/expr/expr.h"
#include "src/interval/box.h"
#include "src/interval/interval.h"
#include "src/linalg/vector.h"

namespace bcert::expr {

/// Compiled evaluation schedule for one or more roots over a pool.
class Evaluator {
 public:
  /// Compiles the schedule covering all \p roots.
  Evaluator(const ExprPool& pool, std::vector<ExprId> roots);

  const std::vector<ExprId>& roots() const { return roots_; }
  /// Number of schedule steps (reachable DAG nodes).
  std::size_t schedule_size() const { return schedule_.size(); }

  /// Evaluates all roots at point \p x; result aligned with roots().
  std::vector<double> eval(const linalg::Vector& x) const;

  /// Evaluates a single root at \p x.
  double eval_root(std::size_t root_index, const linalg::Vector& x) const;

  /// Interval evaluation over \p box (natural interval extension).
  std::vector<interval::Interval> eval(const interval::Box& box) const;

  /// Interval evaluation that also exposes per-node values — this is the
  /// forward pass of HC4; the backward pass consumes `values`.
  /// `values` is indexed by *schedule position* (see `position_of`).
  void eval_forward(const interval::Box& box,
                    std::vector<interval::Interval>& values) const;

  /// Schedule position of pool node \p id, or npos when unreachable.
  std::size_t position_of(ExprId id) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// The node ids in schedule order (parents after children).
  const std::vector<ExprId>& schedule() const { return schedule_; }

  const ExprPool& pool() const { return *pool_; }

 private:
  const ExprPool* pool_;
  std::vector<ExprId> roots_;
  std::vector<ExprId> schedule_;         // topo order, children first
  std::vector<std::size_t> position_;    // pool id -> schedule pos
  std::vector<std::size_t> root_pos_;    // root -> schedule pos
};

/// Applies one interior interval operation (anything but kConst/kVar,
/// whose payloads live outside the opcode). \p index is the kPow
/// exponent. Shared — and inline, it sits in every forward sweep — by
/// the Evaluator, the HC4 tree path, and the bytecode tape, so all three
/// produce bit-identical enclosures.
inline interval::Interval apply_interval_op(Op op, std::int32_t index,
                                            const interval::Interval& a,
                                            const interval::Interval& b) {
  using namespace interval;  // NOLINT: local, brings interval functions
  switch (op) {
    case Op::kConst:
    case Op::kVar:
      break;  // handled by the caller (leaf loads)
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kMul: return a * b;
    case Op::kDiv: return a / b;
    case Op::kNeg: return -a;
    case Op::kSin: return sin(a);
    case Op::kCos: return cos(a);
    case Op::kTan: return tan(a);
    case Op::kAtan: return atan(a);
    case Op::kExp: return exp(a);
    case Op::kLog: return log(a);
    case Op::kSqrt: return sqrt(a);
    case Op::kSqr: return sqr(a);
    case Op::kPow: return pow(a, index);
    case Op::kTanh: return tanh(a);
    case Op::kSigmoid: return sigmoid(a);
    case Op::kRelu: return relu(a);
    case Op::kAbs: return abs(a);
    case Op::kMin: return min(a, b);
    case Op::kMax: return max(a, b);
  }
  return interval::Interval::entire();
}

/// Applies one interval operation; shared by Evaluator and the HC4
/// backward pass (for re-evaluation after contraction).
interval::Interval apply_interval_op(const Node& n,
                                     const interval::Interval& a,
                                     const interval::Interval& b);

}  // namespace bcert::expr
