// Warm-state snapshot serialization tests: encode→decode→re-encode
// bit-identity for all three sections (tapes, UNSAT trees, LP bases),
// strict rejection of every corruption class (truncation, bit flips,
// version bumps, bad magic, trailing bytes) with the whole snapshot
// loading as empty, atomic save/load through the filesystem, and the
// cache_serialize fault point degrading a save into a clean failure.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/fault.h"
#include "src/expr/expr.h"
#include "src/smt/cache_io.h"
#include "src/smt/constraint.h"
#include "src/smt/tape.h"
#include "src/smt/unsat_tree.h"

namespace bcert::smt {
namespace {

using expr::ExprId;
using expr::ExprPool;
using interval::Box;
using interval::Interval;

Conjunction sample_query(ExprPool& pool, double coeff) {
  const ExprId x = pool.var(0);
  const ExprId y = pool.var(1);
  Conjunction q;
  q.add(pool.sub(pool.mul(pool.constant(coeff), pool.add(pool.sqr(x), y)),
                 pool.constant(0.25)),
        Rel::kGe);
  return q;
}

std::shared_ptr<const UnsatTree> sample_tree() {
  auto tree = std::make_shared<UnsatTree>();
  tree->root_box = Box::from_bounds({{-1.0, 1.0}, {-2.0, 2.0}});
  tree->nodes = {
      {0, 0.0, 1, 2},
      {1, -0.5, UnsatTree::kNoNode, UnsatTree::kNoNode},
      {1, 0.5, UnsatTree::kNoNode, UnsatTree::kNoNode},
  };
  return tree;
}

/// A populated WarmState with one real compiled tape, one tree and one
/// basis. The tape goes through TapeCache so the exported entry is
/// exactly what a live process would persist.
WarmState sample_state(ExprPool& pool, TapeCache& tapes) {
  const Conjunction q = sample_query(pool, 1.25);
  (void)tapes.get_or_compile(pool, q);

  WarmState state;
  state.tapes = tapes.export_entries();
  state.trees.push_back({content_signature(pool, q), sample_tree()});
  WarmBasisEntry basis;
  basis.kind = 1;
  basis.degree = 2;
  basis.dims = 3;
  basis.basis.basic = {0, 4, 7, -1};
  basis.basis.num_structural = 9;
  state.bases.push_back(std::move(basis));
  return state;
}

TEST(CacheIo, EncodeDecodeReencodeIsBitIdentical) {
  ExprPool pool;
  TapeCache tapes;
  const WarmState state = sample_state(pool, tapes);
  ASSERT_FALSE(state.tapes.empty());

  const std::vector<std::uint8_t> bytes = encode_snapshot(state);
  WarmState decoded;
  std::string error;
  ASSERT_TRUE(decode_snapshot(bytes.data(), bytes.size(), decoded, &error))
      << error;
  ASSERT_EQ(decoded.tapes.size(), state.tapes.size());
  ASSERT_EQ(decoded.trees.size(), 1u);
  ASSERT_EQ(decoded.bases.size(), 1u);

  // Field-level checks on the tree (the section this PR's restart
  // bit-identity hinges on): content key and node array byte-for-byte.
  EXPECT_EQ(decoded.trees[0].content, state.trees[0].content);
  const UnsatTree& tree = *decoded.trees[0].tree;
  ASSERT_EQ(tree.nodes.size(), 3u);
  EXPECT_EQ(tree.nodes[0].dim, 0u);
  EXPECT_EQ(tree.nodes[2].value, 0.5);
  EXPECT_TRUE(tree.root_box == state.trees[0].tree->root_box);
  EXPECT_EQ(decoded.bases[0].basis.basic, state.bases[0].basis.basic);

  // The strongest property: re-encoding the decoded state reproduces
  // the original byte stream exactly.
  EXPECT_EQ(encode_snapshot(decoded), bytes);
}

TEST(CacheIo, EmptyStateRoundTrips) {
  const WarmState empty;
  const std::vector<std::uint8_t> bytes = encode_snapshot(empty);
  WarmState decoded;
  std::string error;
  ASSERT_TRUE(decode_snapshot(bytes.data(), bytes.size(), decoded, &error));
  EXPECT_TRUE(decoded.empty());
}

void expect_rejected(std::vector<std::uint8_t> bytes) {
  WarmState out;
  // Pre-fill to prove rejection clears the output.
  out.bases.emplace_back();
  std::string error;
  EXPECT_FALSE(decode_snapshot(bytes.data(), bytes.size(), out, &error));
  EXPECT_TRUE(out.empty()) << "rejected snapshot left partial state";
  EXPECT_FALSE(error.empty());
}

TEST(CacheIo, RejectsEveryCorruptionClass) {
  ExprPool pool;
  TapeCache tapes;
  const std::vector<std::uint8_t> bytes =
      encode_snapshot(sample_state(pool, tapes));

  // Truncation at several depths: inside the header, inside the
  // payload, one byte short.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{20}, bytes.size() / 2,
        bytes.size() - 1}) {
    expect_rejected({bytes.begin(), bytes.begin() + keep});
  }

  // A single flipped payload bit must fail the checksum.
  std::vector<std::uint8_t> flipped = bytes;
  flipped[flipped.size() - 3] ^= 0x40;
  expect_rejected(std::move(flipped));

  // Version bump: future formats must load as empty, never reinterpret.
  std::vector<std::uint8_t> versioned = bytes;
  versioned[8] += 1;  // version u32 sits right after the 8-byte magic
  expect_rejected(std::move(versioned));

  // Bad magic.
  std::vector<std::uint8_t> magic = bytes;
  magic[0] = 'X';
  expect_rejected(std::move(magic));

  // Trailing garbage after a valid payload.
  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  expect_rejected(std::move(trailing));
}

TEST(CacheIo, SaveAndLoadThroughFilesystem) {
  ExprPool pool;
  TapeCache tapes;
  const WarmState state = sample_state(pool, tapes);
  const std::string path = testing::TempDir() + "cache_io_test.snapshot";
  std::remove(path.c_str());

  std::string error;
  WarmState missing;
  EXPECT_FALSE(load_snapshot(path, missing, &error));

  ASSERT_TRUE(save_snapshot(path, state, &error)) << error;
  WarmState loaded;
  ASSERT_TRUE(load_snapshot(path, loaded, &error)) << error;
  EXPECT_EQ(encode_snapshot(loaded), encode_snapshot(state));

  // No temp file left behind by the atomic write.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(CacheIo, CacheSerializeFaultFailsSaveCleanly) {
  core::FaultRegistry::clear();
  ASSERT_TRUE(core::FaultRegistry::configure("cache_serialize:throw@1",
                                             nullptr));
  const std::string path = testing::TempDir() + "cache_io_fault.snapshot";
  std::remove(path.c_str());

  std::string error;
  EXPECT_FALSE(save_snapshot(path, WarmState{}, &error));
  EXPECT_FALSE(error.empty());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr) << "faulted save left a file";
  if (f != nullptr) std::fclose(f);

  // The fault fired once; the retry (next hit) succeeds.
  EXPECT_TRUE(save_snapshot(path, WarmState{}, &error)) << error;
  std::remove(path.c_str());
  core::FaultRegistry::clear();
}

}  // namespace
}  // namespace bcert::smt
