#pragma once
/// \file problem.h
/// \brief Linear-program model types (problem, status, solution, basis).
///
/// The barrier-synthesis LP is small in variables (template coefficients
/// plus one margin variable) and moderate in rows (two constraints per
/// sampled trace point), so a dense representation is appropriate.

#include <cstdint>
#include <limits>
#include <vector>

#include "src/linalg/vector.h"

/// \namespace bcert::lp
/// \brief Dense linear programming: problem model and the two-phase
/// primal simplex with basis warm-starting used by candidate synthesis.
namespace bcert::lp {

/// Row relation of a linear constraint.
enum class RowRel : std::uint8_t {
  kLe,  ///< coeffs·x ≤ rhs
  kGe,  ///< coeffs·x ≥ rhs
  kEq,  ///< coeffs·x = rhs
};

/// Objective sense.
enum class Sense : std::uint8_t {
  kMinimize,  ///< minimize objective·x
  kMaximize,  ///< maximize objective·x
};

/// The solver's "unbounded" sentinel for variable bounds: a `lower` of
/// `-kLpInf` means free below, an `upper` of `+kLpInf` free above. Row
/// right-hand sides must be finite; infinities are only meaningful in
/// `LpProblem::lower` / `LpProblem::upper`.
inline constexpr double kLpInf = std::numeric_limits<double>::infinity();

/// One linear constraint `coeffs · x (rel) rhs`.
struct LpRow {
  linalg::Vector coeffs;      ///< length num_vars() coefficient vector
  RowRel rel = RowRel::kLe;   ///< relation between coeffs·x and rhs
  double rhs = 0.0;           ///< right-hand side (finite)
};

/// A linear program over n variables with optional box bounds.
struct LpProblem {
  Sense sense = Sense::kMinimize;  ///< objective sense
  linalg::Vector objective;        ///< length n objective coefficients
  std::vector<LpRow> rows;         ///< general constraint rows
  std::vector<double> lower;       ///< length n; -kLpInf for free below
  std::vector<double> upper;       ///< length n; +kLpInf for free above

  /// Number of decision variables (== objective.size()).
  std::size_t num_vars() const { return objective.size(); }
  /// Number of general constraint rows (bounds not included).
  std::size_t num_rows() const { return rows.size(); }

  /// Creates a problem with n variables, zero objective, free bounds.
  static LpProblem with_free_vars(std::size_t n);

  /// Appends a row; coefficient vector must have length num_vars()
  /// (throws std::invalid_argument otherwise).
  void add_row(linalg::Vector coeffs, RowRel rel, double rhs);
};

/// Solver status.
enum class LpStatus : std::uint8_t {
  kOptimal,      ///< optimal basic solution found
  kInfeasible,   ///< constraint system has no solution
  kUnbounded,    ///< objective unbounded over the feasible set
  kIterLimit,    ///< SimplexOptions::max_iterations exhausted
  kInterrupted,  ///< SimplexOptions::interrupt fired mid-solve
};

/// Human-readable name of \p s (never nullptr).
const char* lp_status_name(LpStatus s);

/// A simplex basis snapshot, exported from an optimal solve and usable
/// to warm-start a later solve (see SimplexOptions::warm_start).
///
/// Entry r of `basic` identifies the basic column of standard-form row r
/// in a *stable id space* that survives row appends:
///   - ids `[0, num_structural)` are the structural standard-form
///     columns introduced for the problem's variables (in variable
///     order, one or two per variable depending on its bounds);
///   - id `num_structural + r` is the slack/surplus column of
///     standard-form row r. Rows are ordered bounds-first (the rows the
///     variable transformation introduces for two-sided bounds), then
///     the problem's `rows` in order — so a later problem that only
///     *appends* rows keeps every id of an earlier basis meaningful.
///
/// Warm-start contract: correctness never depends on the basis —
/// `solve_lp` re-derives the tableau from the problem and falls back to
/// a cold start whenever the basis does not resolve (different variable
/// structure, out-of-range rows, a row slot without a slack), is
/// numerically singular, is not dual-feasible, or its dual-simplex
/// repair stalls (the warm attempt is capped at half the iteration
/// budget; its pivots count against the budget shared with the cold
/// retry). A well-matched basis (same variables/bounds, rows appended
/// only) merely reduces the pivot count, typically to a handful of
/// dual-simplex steps on the appended rows.
struct LpBasis {
  std::vector<std::int32_t> basic;  ///< per-row basic column ids (stable)
  std::int32_t num_structural = 0;  ///< structural-column count at export

  /// True when no basis is recorded (solve_lp treats it as "cold").
  bool empty() const { return basic.empty(); }
  /// Number of standard-form rows the basis was exported with.
  std::size_t num_rows() const { return basic.size(); }
};

/// Solution report.
struct LpSolution {
  LpStatus status = LpStatus::kIterLimit;  ///< terminal solver status
  linalg::Vector x;        ///< primal values (original variable space)
  double objective = 0.0;  ///< objective value in the problem's sense
  int iterations = 0;      ///< simplex iterations across all phases
  /// Final basis (populated when status == kOptimal, empty otherwise);
  /// feed it to SimplexOptions::warm_start of a related later solve.
  LpBasis basis;
  /// True when the solve was completed from the supplied warm basis
  /// (false on cold solves and when the warm attempt fell back).
  bool used_warm_start = false;
};

}  // namespace bcert::lp
