// End-to-end daemon tests over a real Unix-domain socket: submit →
// verdict round trip, graceful drain with a warm-state snapshot, and
// the headline acceptance property of this subsystem — a daemon
// restarted from its snapshot produces bit-identical verdict lines to
// both a fresh daemon and an in-process Engine run on the same scenario
// suite, with warm-restore counters proving the warm path was taken.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/daemon/client.h"
#include "src/daemon/json.h"
#include "src/daemon/protocol.h"
#include "src/daemon/server.h"
#include "src/expr/expr.h"
#include "src/scenario/generator.h"

namespace bcert::daemon {
namespace {

constexpr std::uint64_t kSeed = 7;
constexpr int kJobs = 2;

struct CampaignOutcome {
  std::vector<std::string> verdicts;
  bool snapshot_loaded = false;
  std::uint64_t tape_warm_restores = 0;
  std::uint64_t tree_warm_restores = 0;
};

/// Runs a daemon on \p socket_path, submits the fixed suite through a
/// real client connection, waits for every verdict, captures stats and
/// drains. The server's scheduler runs on a helper thread; run() must
/// return 0 (clean drain).
CampaignOutcome run_daemon_campaign(const std::string& socket_path,
                                    const std::string& state_dir) {
  CampaignOutcome outcome;

  ServerOptions options;
  options.socket_path = socket_path;
  options.state_dir = state_dir;
  options.snapshot_period_s = 0.0;  // drain-only snapshot
  options.log_level = core::ConfigLogLevel::kError;
  static std::ostringstream log_sink;  // outlives server threads
  options.log_stream = &log_sink;

  Server server(std::move(options));
  std::string error;
  EXPECT_TRUE(server.start(&error)) << error;
  if (::testing::Test::HasFailure()) return outcome;

  int exit_code = -1;
  std::thread scheduler([&] { exit_code = server.run(); });

  Client client(socket_path);
  EXPECT_TRUE(client.connect(/*timeout_s=*/10.0, &error)) << error;

  std::vector<std::uint64_t> job_ids;
  for (int i = 0; i < kJobs; ++i) {
    JsonValue response;
    const std::string body = "{\"cmd\":\"submit\",\"scenario\":{\"seed\":" +
                             std::to_string(kSeed) +
                             ",\"index\":" + std::to_string(i) + "}}";
    EXPECT_TRUE(client.request(body, response, &error)) << error;
    EXPECT_EQ(response.string_or("type", ""), "submitted");
    job_ids.push_back(
        static_cast<std::uint64_t>(response.number_or("job", 0.0)));
  }

  for (const std::uint64_t job : job_ids) {
    while (!::testing::Test::HasFailure()) {
      JsonValue response;
      EXPECT_TRUE(client.request(
          "{\"cmd\":\"status\",\"job\":" + std::to_string(job) + "}",
          response, &error))
          << error;
      if (response.string_or("state", "") == "done") {
        outcome.verdicts.push_back(response.string_or("verdict", ""));
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  JsonValue stats;
  EXPECT_TRUE(client.request("{\"cmd\":\"stats\"}", stats, &error)) << error;
  if (const JsonValue* snapshots = stats.find("snapshots")) {
    outcome.snapshot_loaded = snapshots->bool_or("loaded", false);
  }
  if (const JsonValue* caches = stats.find("caches")) {
    if (const JsonValue* tape = caches->find("tape")) {
      outcome.tape_warm_restores = static_cast<std::uint64_t>(
          tape->number_or("warm_restores", 0.0));
    }
    if (const JsonValue* unsat = caches->find("unsat")) {
      outcome.tree_warm_restores = static_cast<std::uint64_t>(
          unsat->number_or("warm_restores", 0.0));
    }
  }

  JsonValue drained;
  EXPECT_TRUE(client.request("{\"cmd\":\"drain\"}", drained, &error)) << error;
  scheduler.join();
  EXPECT_EQ(exit_code, 0);
  return outcome;
}

/// The in-process baseline: the same suite straight through an Engine,
/// exactly what `bcertctl local-campaign` runs.
std::vector<std::string> run_inprocess_campaign() {
  std::vector<std::string> verdicts;
  expr::ExprPool pool;
  core::Engine engine(core::EngineOptions{});
  for (int i = 0; i < kJobs; ++i) {
    ScenarioSpec spec;
    spec.seed = kSeed;
    spec.index = static_cast<std::uint64_t>(i);
    scenario::ScenarioGenerator generator(pool, spec.generator_config());
    core::Scenario scenario = generator.generate_one(spec.index);
    core::JobOptions job = scenario::zoo_job_defaults();
    if (scenario.certificate.has_value()) {
      job.certificate = *scenario.certificate;
    }
    verdicts.push_back(
        verdict_line(spec.name(), engine.verify(scenario.problem, job)));
  }
  return verdicts;
}

TEST(ServerRestart, SnapshotWarmedDaemonIsBitIdenticalToColdAndInProcess) {
  const std::string dir = testing::TempDir();
  const std::string socket_path = dir + "bcertd_restart_test.sock";
  const std::string state_dir = dir + "bcertd_restart_state";
  const std::string snapshot = state_dir + "/bcertd.snapshot";
  std::remove(snapshot.c_str());
  ASSERT_EQ(std::system(("mkdir -p " + state_dir).c_str()), 0);

  // Cold daemon: no snapshot to load, writes one on drain.
  const CampaignOutcome cold = run_daemon_campaign(socket_path, state_dir);
  ASSERT_FALSE(::testing::Test::HasFailure());
  ASSERT_EQ(cold.verdicts.size(), static_cast<std::size_t>(kJobs));
  EXPECT_FALSE(cold.snapshot_loaded);
  EXPECT_EQ(cold.tape_warm_restores, 0u);
  EXPECT_EQ(cold.tree_warm_restores, 0u);
  std::FILE* f = std::fopen(snapshot.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "drain did not write a snapshot";
  std::fclose(f);

  // Restarted daemon: loads the snapshot, must reproduce the cold
  // verdicts bit-for-bit while actually taking the warm path.
  const CampaignOutcome warm = run_daemon_campaign(socket_path, state_dir);
  ASSERT_FALSE(::testing::Test::HasFailure());
  EXPECT_TRUE(warm.snapshot_loaded);
  EXPECT_EQ(warm.verdicts, cold.verdicts);
  EXPECT_GT(warm.tape_warm_restores, 0u);
  EXPECT_GT(warm.tree_warm_restores, 0u);

  // And both must match the in-process Engine run of the same suite.
  EXPECT_EQ(run_inprocess_campaign(), cold.verdicts);

  for (const std::string& verdict : cold.verdicts) {
    EXPECT_NE(verdict.find("status="), std::string::npos) << verdict;
  }
  std::remove(snapshot.c_str());
}

}  // namespace
}  // namespace bcert::daemon
