#pragma once
/// \file differential.h
/// \brief N-way differential verdict harness over generated scenarios.
///
/// Samples verifier-shaped refutation queries (decrease-violation,
/// initial containment, level-set membership, raw field-range) from a
/// scenario's symbolic field, then answers every query four ways:
///
///   1. the δ-SAT ICP solver on the compiled **tape** backend,
///   2. the same solver on the **tree-walker** backend,
///   3. the same solver on the native **jit** backend (which degrades to
///      the tape interpreter on hosts without emission — still an exact
///      comparison, of the fallback rung),
///   4. a **sampled-point falsification check**: deterministic points in
///      the query box evaluated in plain double arithmetic — a point
///      satisfying every constraint with margin is a concrete witness,
///      so an UNSAT verdict against it is a soundness bug, full stop.
///
/// The three solver backends are contractually bit-identical (hc4.h), so
/// the harness asserts *exact* agreement: same verdict, same witness
/// box, same boxes-processed count. Every query is additionally
/// round-tripped through `smt::smtlib_export` and checked for
/// well-formedness, making each generated scenario a cross-check of the
/// exporter rather than a trust-me benchmark (percy-style N-way
/// equivalence testing).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/interval/box.h"
#include "src/smt/constraint.h"
#include "src/smt/icp_solver.h"

namespace bcert::scenario {

/// One sampled refutation query: a conjunction over the scenario's pool
/// plus the box it is asked over.
struct DifferentialQuery {
  std::string label;
  smt::Conjunction conjunction;
  interval::Box box;
};

/// Samples \p count queries from a scenario, seeded deterministically.
/// Queries mix certainly-SAT, certainly-UNSAT and borderline instances
/// (the interesting disagreements live at the border), and reuse the
/// scenario's symbolic field so the full plant operator mix — tanh
/// layers, trig, |·| — reaches the solvers and the exporter.
std::vector<DifferentialQuery> sample_queries(const core::Scenario& scenario,
                                              std::size_t count,
                                              std::uint64_t seed,
                                              expr::ExprPool& pool);

/// Harness tuning. The solver budget is box-count-bound (not wall-clock)
/// so both backends explore identical search trees even under load.
struct HarnessOptions {
  double delta = 1e-2;             ///< δ of both solver runs
  std::uint64_t max_boxes = 2000;  ///< branch budget per query
  std::size_t sample_points = 64;  ///< falsification points per query
  double point_margin = 1e-7;      ///< strict-satisfaction margin
  bool export_smtlib = true;       ///< render + validate every query
};

/// Verdict record of one query (kept only for failures).
struct VerdictRecord {
  std::string label;
  smt::SatResult tape = smt::SatResult::kUnknown;
  smt::SatResult tree = smt::SatResult::kUnknown;
  smt::SatResult jit = smt::SatResult::kUnknown;
  bool point_witness = false;  ///< a sampled point satisfied the query
  std::string detail;          ///< which check disagreed, and how
};

/// Aggregate harness outcome.
struct DifferentialReport {
  std::size_t queries = 0;
  std::size_t disagreements = 0;   ///< tape/tree/jit/point conflicts
  std::size_t export_failures = 0; ///< malformed SMT-LIB renderings
  std::size_t sat_queries = 0;     ///< (δ-)SAT under the tape backend
  std::size_t unsat_queries = 0;
  std::size_t smt2_bytes = 0;      ///< total exported benchmark bytes
  std::vector<VerdictRecord> failures;

  bool ok() const { return disagreements == 0 && export_failures == 0; }
};

/// Runs the three-way check over \p queries. \p pool must be the pool
/// the queries were sampled from.
DifferentialReport run_differential(const expr::ExprPool& pool,
                                    std::span<const DifferentialQuery> queries,
                                    const HarnessOptions& options = {});

}  // namespace bcert::scenario
