#include "src/lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "src/core/fault.h"

namespace bcert::lp {

namespace {

constexpr std::int32_t kNoCol = -1;

/// How an original variable maps into standard-form variables.
struct VarMap {
  enum class Kind { kShifted, kNegatedShifted, kSplit } kind = Kind::kSplit;
  std::size_t y1 = 0;  ///< primary standard-form index
  std::size_t y2 = 0;  ///< secondary (split only)
  double offset = 0.0; ///< l (shifted) or u (negated-shifted)
};

/// Standard-form program min cᵀy, Ay = b, y ≥ 0 in one flat row-major
/// matrix, plus the recovery mapping and the stable row/slack layout the
/// warm-start id space relies on. Rows are ordered bounds-first, then
/// the problem's rows, so appending problem rows never renumbers the
/// rows (or slack columns) an exported basis refers to.
struct StandardForm {
  std::size_t m = 0;         // rows
  std::size_t n_struct = 0;  // structural columns (from variables)
  std::size_t n_cols = 0;    // structural + slack/surplus columns
  std::vector<double> a;     // m x n_cols, row-major
  std::vector<double> b;     // m, normalized to b >= 0
  std::vector<double> c;     // n_cols (zero on slack columns)
  std::vector<VarMap> var_map;
  std::vector<std::int32_t> slack_col_of_row;  // kNoCol for = rows
  std::vector<std::int32_t> row_of_slack_col;  // kNoCol for structural
};

StandardForm build_standard_form(const LpProblem& p) {
  const std::size_t nv = p.num_vars();
  if (p.lower.size() != nv || p.upper.size() != nv) {
    throw std::invalid_argument("solve_lp: bounds size mismatch");
  }

  StandardForm sf;
  sf.var_map.resize(nv);

  // Assign standard-form indices for original variables.
  for (std::size_t j = 0; j < nv; ++j) {
    const double l = p.lower[j], u = p.upper[j];
    if (l > u) throw std::invalid_argument("solve_lp: empty variable bound");
    VarMap& vm = sf.var_map[j];
    if (l != -kLpInf) {
      vm.kind = VarMap::Kind::kShifted;
      vm.offset = l;
      vm.y1 = sf.n_struct++;
    } else if (u != kLpInf) {
      vm.kind = VarMap::Kind::kNegatedShifted;
      vm.offset = u;
      vm.y1 = sf.n_struct++;
    } else {
      vm.kind = VarMap::Kind::kSplit;
      vm.y1 = sf.n_struct++;
      vm.y2 = sf.n_struct++;
    }
  }

  // Gather all rows. Bound rows (y ≤ u − l for two-sided variables) come
  // FIRST — they depend only on the variables, so a later problem that
  // appends constraint rows keeps every earlier row index stable, which
  // is what makes exported bases re-importable (see LpBasis).
  struct RawRow {
    std::vector<double> coeffs;  // over structural vars (size n_struct)
    RowRel rel;
    double rhs;
  };
  std::vector<RawRow> raw;
  for (std::size_t j = 0; j < nv; ++j) {
    const VarMap& vm = sf.var_map[j];
    if (vm.kind == VarMap::Kind::kShifted && p.upper[j] != kLpInf) {
      RawRow rr;
      rr.coeffs.assign(sf.n_struct, 0.0);
      rr.coeffs[vm.y1] = 1.0;
      rr.rel = RowRel::kLe;
      rr.rhs = p.upper[j] - p.lower[j];
      raw.push_back(std::move(rr));
    }
    // kNegatedShifted has implicit y ≥ 0 ⇔ x ≤ u and no other bound.
  }

  auto substitute = [&](const linalg::Vector& coeffs, double rhs) {
    RawRow rr;
    rr.coeffs.assign(sf.n_struct, 0.0);
    rr.rhs = rhs;
    for (std::size_t j = 0; j < nv; ++j) {
      const double cj = coeffs[j];
      if (cj == 0.0) continue;
      const VarMap& vm = sf.var_map[j];
      switch (vm.kind) {
        case VarMap::Kind::kShifted:
          rr.coeffs[vm.y1] += cj;
          rr.rhs -= cj * vm.offset;
          break;
        case VarMap::Kind::kNegatedShifted:
          rr.coeffs[vm.y1] -= cj;
          rr.rhs -= cj * vm.offset;
          break;
        case VarMap::Kind::kSplit:
          rr.coeffs[vm.y1] += cj;
          rr.coeffs[vm.y2] -= cj;
          break;
      }
    }
    return rr;
  };

  for (const LpRow& row : p.rows) {
    if (row.coeffs.size() != nv) {
      throw std::invalid_argument("solve_lp: row size mismatch");
    }
    RawRow rr = substitute(row.coeffs, row.rhs);
    rr.rel = row.rel;
    raw.push_back(std::move(rr));
  }

  // Objective over structural vars (minimization).
  const double sense = p.sense == Sense::kMaximize ? -1.0 : 1.0;
  sf.c.assign(sf.n_struct, 0.0);
  for (std::size_t j = 0; j < nv; ++j) {
    const double cj = sense * p.objective[j];
    if (cj == 0.0) continue;
    const VarMap& vm = sf.var_map[j];
    switch (vm.kind) {
      case VarMap::Kind::kShifted:
        sf.c[vm.y1] += cj;
        break;
      case VarMap::Kind::kNegatedShifted:
        sf.c[vm.y1] -= cj;
        break;
      case VarMap::Kind::kSplit:
        sf.c[vm.y1] += cj;
        sf.c[vm.y2] -= cj;
        break;
    }
  }

  // Assign slack/surplus columns (in row order — stable under appends).
  sf.m = raw.size();
  sf.slack_col_of_row.assign(sf.m, kNoCol);
  std::size_t n_cols = sf.n_struct;
  for (std::size_t i = 0; i < sf.m; ++i) {
    if (raw[i].rel != RowRel::kEq) {
      sf.slack_col_of_row[i] = static_cast<std::int32_t>(n_cols++);
    }
  }
  sf.n_cols = n_cols;
  sf.row_of_slack_col.assign(n_cols, kNoCol);
  for (std::size_t i = 0; i < sf.m; ++i) {
    if (sf.slack_col_of_row[i] != kNoCol) {
      sf.row_of_slack_col[sf.slack_col_of_row[i]] =
          static_cast<std::int32_t>(i);
    }
  }
  sf.c.resize(n_cols, 0.0);

  // Flatten, equalize, and normalize to b ≥ 0.
  sf.a.assign(sf.m * n_cols, 0.0);
  sf.b.assign(sf.m, 0.0);
  for (std::size_t i = 0; i < sf.m; ++i) {
    double* r = sf.a.data() + i * n_cols;
    std::copy(raw[i].coeffs.begin(), raw[i].coeffs.end(), r);
    sf.b[i] = raw[i].rhs;
    if (raw[i].rel == RowRel::kLe) {
      r[sf.slack_col_of_row[i]] = 1.0;
    } else if (raw[i].rel == RowRel::kGe) {
      r[sf.slack_col_of_row[i]] = -1.0;
    }
    if (sf.b[i] < 0.0) {
      for (std::size_t j = 0; j < n_cols; ++j) r[j] = -r[j];
      sf.b[i] = -sf.b[i];
    }
  }
  return sf;
}

/// Full-tableau simplex over one flat, 64-byte-aligned allocation.
///
/// Layout: m+1 rows of `stride` doubles (stride = n+1 rounded up to a
/// multiple of 8, so every row starts cache-line aligned). Row i < m is
/// tableau row i, row m is the reduced-cost row z; column n is the
/// right-hand side. Columns [0, n_cols) are structural+slack, columns
/// [n_cols, n) (cold solves only) are one artificial per row. All row
/// updates run through the linalg raw kernels.
class Tableau {
 public:
  Tableau(const StandardForm& sf, const SimplexOptions& opts,
          bool with_artificials)
      : sf_(sf),
        opts_(opts),
        m_(sf.m),
        n_price_(sf.n_cols),
        n_(sf.n_cols + (with_artificials ? sf.m : 0)),
        stride_((n_ + 1 + 7) & ~static_cast<std::size_t>(7)),
        buf_(linalg::aligned_doubles((m_ + 1) * stride_)),
        basis_(m_, kNoCol),
        row_of_col_(n_, kNoCol) {
    for (std::size_t i = 0; i < m_; ++i) {
      double* r = row(i);
      const double* src = sf.a.data() + i * sf.n_cols;
      std::copy(src, src + sf.n_cols, r);
      r[n_] = sf.b[i];
    }
  }

  /// Cold start: crash basis (slack where usable, artificial otherwise),
  /// phase 1 only when artificials were needed, then phase 2.
  LpStatus cold_run() {
    bool any_artificial = false;
    for (std::size_t i = 0; i < m_; ++i) {
      const std::int32_t sc = sf_.slack_col_of_row[i];
      if (sc != kNoCol && row(i)[static_cast<std::size_t>(sc)] == 1.0) {
        set_basis(i, sc);  // feasible: b_i >= 0 after normalization
      } else {
        const std::size_t art = sf_.n_cols + i;
        row(i)[art] = 1.0;
        set_basis(i, static_cast<std::int32_t>(art));
        any_artificial = true;
      }
    }
    if (any_artificial) {
      // Phase 1: minimize the sum of artificials. Entering columns are
      // always drawn from [0, n_cols) — artificials never re-enter.
      std::vector<double> cost1(n_, 0.0);
      for (std::size_t j = sf_.n_cols; j < n_; ++j) cost1[j] = 1.0;
      build_reduced_costs(cost1.data());
      const LpStatus s = primal_iterate();
      if (s != LpStatus::kOptimal) return s;
      if (objective_value() > 1e-7) return LpStatus::kInfeasible;
      if (!drive_out_artificials()) return LpStatus::kInfeasible;
    }
    build_phase2_costs();
    return primal_iterate();
  }

  /// Expresses the tableau in the warm basis by Gaussian pivoting.
  /// Returns false (leaving the caller to cold-start a fresh Tableau)
  /// when the basis does not resolve against this standard form or is
  /// numerically singular.
  bool realize_warm(const LpBasis& warm) {
    if (warm.num_structural != static_cast<std::int32_t>(sf_.n_struct)) {
      return false;
    }
    if (warm.basic.size() > m_) return false;
    // Resolve the stable ids into the column SET of the basis. The
    // exported per-row pairing is meaningless against a fresh tableau
    // (it described the previous B⁻¹A, not A), so only the set matters.
    std::vector<std::int32_t> cols(m_, kNoCol);
    for (std::size_t r = 0; r < m_; ++r) {
      // Rows beyond the exported basis are the appended ones; their own
      // slack is the natural basic column (dual simplex repairs any
      // infeasibility it brings in).
      const std::int32_t id =
          r < warm.basic.size()
              ? warm.basic[r]
              : static_cast<std::int32_t>(sf_.n_struct + r);
      if (id < 0) return false;
      std::int32_t col;
      if (id < warm.num_structural) {
        col = id;
      } else {
        const auto rr = static_cast<std::size_t>(id - warm.num_structural);
        if (rr >= m_) return false;
        col = sf_.slack_col_of_row[rr];
        if (col == kNoCol) return false;  // = row has no slack
      }
      if (cols[r] != kNoCol) return false;
      for (std::size_t q = 0; q < r; ++q) {
        if (cols[q] == col) return false;  // duplicate basic column
      }
      cols[r] = col;
    }
    // Gaussian realization with partial pivoting over the basis set:
    // each row takes the still-unused basis column with the largest
    // pivot magnitude, re-deriving the row↔column pairing from A.
    std::vector<std::int32_t> remaining = cols;
    for (std::size_t r = 0; r < m_; ++r) {
      std::size_t pick = remaining.size();
      double best = 1e-7;  // anything at/below this is singular
      const double* ri = crow(r);
      for (std::size_t q = 0; q < remaining.size(); ++q) {
        const double mag =
            std::fabs(ri[static_cast<std::size_t>(remaining[q])]);
        if (mag > best) {
          best = mag;
          pick = q;
        }
      }
      if (pick == remaining.size()) return false;  // singular basis
      pivot(r, static_cast<std::size_t>(remaining[pick]));
      remaining[pick] = remaining.back();
      remaining.pop_back();
    }
    return true;
  }

  /// Finishes a solve from a realized warm basis: dual-simplex repair of
  /// any primal infeasibility the appended rows introduced, then primal
  /// iterations. nullopt means "give up, cold-start instead" (the basis
  /// was not dual-feasible, or dual pricing found no pivot — the cold
  /// path re-derives the status soundly from scratch).
  std::optional<LpStatus> warm_run() {
    build_phase2_costs();
    double min_rhs = 0.0;
    for (std::size_t i = 0; i < m_; ++i) min_rhs = std::min(min_rhs, rhs(i));
    if (min_rhs < -1e-9) {
      const double* z = zrow();
      for (std::size_t j = 0; j < n_price_; ++j) {
        if (z[j] < -1e-7) return std::nullopt;  // primal AND dual infeasible
      }
      const std::optional<LpStatus> s = dual_iterate();
      if (!s) return std::nullopt;
      // An interrupt is terminal everywhere — a cold retry would only
      // burn pivots past a deadline that has already expired.
      if (*s == LpStatus::kInterrupted) return *s;
      // An iteration-limited repair phase is abandoned too: the cold
      // path decides the status with the budget that remains.
      if (*s != LpStatus::kOptimal) return std::nullopt;
    }
    const LpStatus status = primal_iterate();
    // Hitting the warm attempt's (halved) budget is never terminal —
    // abandon so the cold retry can finish within the shared budget.
    if (status == LpStatus::kIterLimit) return std::nullopt;
    return status;
  }

  /// Simplex iterations spent so far (all phases).
  int iterations() const { return iters_; }

  /// Value of standard-form variable \p j in the current basis — O(1)
  /// via the basis→row index map (the seed implementation scanned the
  /// basis per variable, O(m·n) over a full solution recovery).
  double value_of(std::size_t j) const {
    const std::int32_t r = row_of_col_[j];
    return r == kNoCol ? 0.0 : crow(static_cast<std::size_t>(r))[n_];
  }

  /// Current objective of the active cost row (phase 1: Σ artificials).
  double objective_value() const { return -czrow()[n_]; }

  /// Exports the basis in the stable id space (see LpBasis).
  LpBasis export_basis() const {
    LpBasis out;
    out.num_structural = static_cast<std::int32_t>(sf_.n_struct);
    out.basic.resize(m_);
    for (std::size_t r = 0; r < m_; ++r) {
      const std::int32_t col = basis_[r];
      std::int32_t id;
      if (col < static_cast<std::int32_t>(sf_.n_struct)) {
        id = col;
      } else if (col < static_cast<std::int32_t>(sf_.n_cols)) {
        id = out.num_structural +
             sf_.row_of_slack_col[static_cast<std::size_t>(col)];
      } else {
        // Artificial basic at zero level (redundant row): record the
        // row's own slot; a future import resolves it to that row's
        // slack or falls back to a cold start.
        id = out.num_structural + static_cast<std::int32_t>(r);
      }
      out.basic[r] = id;
    }
    return out;
  }

 private:
  double* buf_row(std::size_t i) { return buf_.get() + i * stride_; }
  const double* cbuf_row(std::size_t i) const {
    return buf_.get() + i * stride_;
  }
  double* row(std::size_t i) { return buf_row(i); }
  const double* crow(std::size_t i) const { return cbuf_row(i); }
  double* zrow() { return buf_row(m_); }
  const double* czrow() const { return cbuf_row(m_); }
  double rhs(std::size_t i) const { return crow(i)[n_]; }

  void set_basis(std::size_t r, std::int32_t col) {
    const std::int32_t old = basis_[r];
    if (old != kNoCol) row_of_col_[static_cast<std::size_t>(old)] = kNoCol;
    basis_[r] = col;
    row_of_col_[static_cast<std::size_t>(col)] = static_cast<std::int32_t>(r);
  }

  /// Rebuilds the reduced-cost row z = c − c_Bᵀ B⁻¹ A for \p cost
  /// (length n_) as one axpy per basic row with nonzero cost.
  void build_reduced_costs(const double* cost) {
    double* z = zrow();
    std::copy(cost, cost + n_, z);
    z[n_] = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = cost[static_cast<std::size_t>(basis_[i])];
      if (cb != 0.0) linalg::axpy(n_ + 1, -cb, crow(i), z);
    }
  }

  void build_phase2_costs() {
    std::vector<double> cost(n_, 0.0);
    std::copy(sf_.c.begin(), sf_.c.end(), cost.begin());
    build_reduced_costs(cost.data());
  }

  /// Pivots on (r, col): kernel-normalized pivot row, one axpy per
  /// remaining row (z included), with exact unit-column fixups so basic
  /// columns stay bit-clean across hundreds of pivots.
  void pivot(std::size_t r, std::size_t col) {
    double* pr = row(r);
    const double piv = pr[col];
    if (piv != 1.0) linalg::scale_divide(n_ + 1, piv, pr);
    pr[col] = 1.0;
    for (std::size_t i = 0; i <= m_; ++i) {
      if (i == r) continue;
      double* ri = buf_row(i);
      const double f = ri[col];
      if (f == 0.0) continue;
      linalg::axpy(n_ + 1, -f, pr, ri);
      ri[col] = 0.0;
    }
    set_basis(r, static_cast<std::int32_t>(col));
  }

  /// Dantzig pricing with a partial (windowed) scan: resume where the
  /// last scan left off, take the most negative reduced cost within the
  /// first window that holds any candidate, widen only when a window is
  /// clean. Returns n_ when no column prices out (optimal).
  std::size_t pick_dantzig() {
    const std::size_t n = n_price_;
    if (n == 0) return n_;
    const std::size_t w = opts_.pricing_window > 0
                              ? static_cast<std::size_t>(opts_.pricing_window)
                              : n;
    const double* z = czrow();
    std::size_t best = n_;
    double best_z = -opts_.eps;
    std::size_t j = pricing_start_ % n;
    std::size_t in_window = 0;
    for (std::size_t scanned = 0; scanned < n; ++scanned) {
      if (z[j] < best_z) {
        best_z = z[j];
        best = j;
      }
      if (++j == n) j = 0;
      if (++in_window == w) {
        if (best != n_) break;
        in_window = 0;
      }
    }
    if (best != n_) pricing_start_ = (best + 1) % n;
    return best;
  }

  /// Bland's rule: lowest-index column with negative reduced cost.
  std::size_t pick_bland() const {
    const double* z = czrow();
    for (std::size_t j = 0; j < n_price_; ++j) {
      if (z[j] < -opts_.eps) return j;
    }
    return n_;
  }

  /// Polls the cooperative interrupt every kInterruptStride pivots (the
  /// poll itself may be an arbitrary user callback — keep it off the
  /// per-pivot path).
  bool interrupted() const {
    return opts_.interrupt && iters_ % kInterruptStride == 0 &&
           opts_.interrupt();
  }

  LpStatus primal_iterate() {
    for (;; ++iters_) {
      if (iters_ >= opts_.max_iterations) return LpStatus::kIterLimit;
      if (interrupted()) return LpStatus::kInterrupted;
      core::FaultRegistry::check(core::FaultPoint::kLpPivot);
      const bool bland = iters_ >= opts_.bland_after;
      const std::size_t enter = bland ? pick_bland() : pick_dantzig();
      if (enter == n_) return LpStatus::kOptimal;

      // Ratio test (smallest basis index breaks ties — anti-cycling).
      std::size_t leave = m_;
      double best_ratio = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        const double a = crow(i)[enter];
        if (a <= opts_.eps) continue;
        const double ratio = rhs(i) / a;
        if (leave == m_ || ratio < best_ratio - 1e-12 ||
            (std::fabs(ratio - best_ratio) <= 1e-12 &&
             basis_[i] < basis_[leave])) {
          leave = i;
          best_ratio = ratio;
        }
      }
      if (leave == m_) return LpStatus::kUnbounded;
      pivot(leave, enter);
    }
  }

  /// Dual simplex: restores primal feasibility while keeping the
  /// reduced costs non-negative. kOptimal means "primal feasible again"
  /// (the caller finishes with primal iterations); nullopt means no
  /// entering column existed — primal infeasible in exact arithmetic,
  /// but the caller re-derives that verdict via a cold start rather
  /// than trusting a warm-path conclusion.
  std::optional<LpStatus> dual_iterate() {
    for (;; ++iters_) {
      if (iters_ >= opts_.max_iterations) return LpStatus::kIterLimit;
      if (interrupted()) return LpStatus::kInterrupted;
      core::FaultRegistry::check(core::FaultPoint::kLpPivot);
      // Leaving row: most negative basic value; after bland_after
      // iterations, the lowest infeasible row instead (the dual
      // analogue of the primal Bland switch, against degenerate
      // zero-ratio cycling).
      const bool bland = iters_ >= opts_.bland_after;
      std::size_t leave = m_;
      double most_neg = -1e-9;
      for (std::size_t i = 0; i < m_; ++i) {
        if (rhs(i) < most_neg) {
          most_neg = rhs(i);
          leave = i;
          if (bland) break;
        }
      }
      if (leave == m_) return LpStatus::kOptimal;

      const double* lr = crow(leave);
      const double* z = czrow();
      std::size_t enter = n_;
      double best_ratio = 0.0;
      for (std::size_t j = 0; j < n_price_; ++j) {
        const double a = lr[j];
        if (a >= -opts_.eps) continue;
        const double ratio = std::max(z[j], 0.0) / -a;
        if (enter == n_ || ratio < best_ratio - 1e-12 ||
            (std::fabs(ratio - best_ratio) <= 1e-12 && j < enter)) {
          enter = j;
          best_ratio = ratio;
        }
      }
      if (enter == n_) return std::nullopt;
      pivot(leave, enter);
    }
  }

  /// After phase 1, replaces basic artificials by structural columns
  /// (or keeps zero-level artificials on redundant rows). Returns false
  /// when a nonzero artificial cannot be removed (infeasible).
  bool drive_out_artificials() {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < static_cast<std::int32_t>(sf_.n_cols)) continue;
      const double* ri = crow(i);
      std::size_t col = sf_.n_cols;
      for (std::size_t j = 0; j < sf_.n_cols; ++j) {
        if (std::fabs(ri[j]) > 1e-7) {
          col = j;
          break;
        }
      }
      if (col == sf_.n_cols) {
        // Redundant row (all-zero structural part); harmless: the
        // artificial stays basic at value 0 and is never priced.
        if (std::fabs(rhs(i)) > 1e-7) return false;
        continue;
      }
      pivot(i, col);
    }
    return true;
  }

  const StandardForm& sf_;
  SimplexOptions opts_;
  std::size_t m_;
  std::size_t n_price_;  // pricing limit: structural + slack columns
  std::size_t n_;        // total columns (rhs lives at index n_)
  std::size_t stride_;   // padded row length, multiple of 8 doubles
  linalg::AlignedDoubles buf_;
  std::vector<std::int32_t> basis_;        // per-row basic column
  std::vector<std::int32_t> row_of_col_;   // basis→row map (kNoCol = nonbasic)
  std::size_t pricing_start_ = 0;
  int iters_ = 0;
};

void finalize(LpSolution& sol, LpStatus status, const Tableau& tab,
              const StandardForm& sf, const LpProblem& problem) {
  sol.status = status;
  sol.iterations = tab.iterations();
  if (status != LpStatus::kOptimal) return;
  sol.x = linalg::Vector(problem.num_vars());
  for (std::size_t j = 0; j < problem.num_vars(); ++j) {
    const VarMap& vm = sf.var_map[j];
    switch (vm.kind) {
      case VarMap::Kind::kShifted:
        sol.x[j] = vm.offset + tab.value_of(vm.y1);
        break;
      case VarMap::Kind::kNegatedShifted:
        sol.x[j] = vm.offset - tab.value_of(vm.y1);
        break;
      case VarMap::Kind::kSplit:
        sol.x[j] = tab.value_of(vm.y1) - tab.value_of(vm.y2);
        break;
    }
  }
  sol.objective = dot(problem.objective, sol.x);
  sol.basis = tab.export_basis();
}

}  // namespace

LpSolution solve_lp(const LpProblem& problem, const SimplexOptions& opts) {
  core::FaultRegistry::check(core::FaultPoint::kLpSolve);
  const StandardForm sf = build_standard_form(problem);

  LpSolution sol;
  int warm_attempt_iters = 0;
  if (!opts.warm_start.empty()) {
    // The warm attempt may use at most half the iteration budget: a
    // stalling repair phase is abandoned (cold fallback below) while at
    // least half the budget is still unspent.
    SimplexOptions warm_opts = opts;
    warm_opts.max_iterations = opts.max_iterations / 2;
    Tableau tab(sf, warm_opts, /*with_artificials=*/false);
    if (tab.realize_warm(opts.warm_start)) {
      if (const std::optional<LpStatus> status = tab.warm_run()) {
        finalize(sol, *status, tab, sf, problem);
        sol.used_warm_start = true;
        return sol;
      }
    }
    warm_attempt_iters = tab.iterations();
  }

  // The iteration budget is shared across the whole solve: pivots spent
  // on an abandoned warm attempt come out of the cold retry's budget.
  SimplexOptions cold_opts = opts;
  cold_opts.max_iterations -= warm_attempt_iters;
  Tableau tab(sf, cold_opts, /*with_artificials=*/true);
  finalize(sol, tab.cold_run(), tab, sf, problem);
  sol.iterations += warm_attempt_iters;
  return sol;
}

}  // namespace bcert::lp
