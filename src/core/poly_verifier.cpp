#include "src/core/poly_verifier.h"

#include <chrono>
#include <cmath>
#include <memory>

#include "src/expr/derivative.h"

namespace bcert::core {

namespace {
using clock = std::chrono::steady_clock;
double seconds_since(clock::time_point t0) {
  return std::chrono::duration<double>(clock::now() - t0).count();
}
}  // namespace

PolyBarrierVerifier::PolyBarrierVerifier(BarrierProblem problem,
                                         PolyVerifierOptions options)
    : problem_(std::move(problem)),
      options_(std::move(options)),
      basis_(problem_.dims(), 2, options_.max_degree) {
  problem_.validate();
  // Share compiled HC4 tapes across this verifier's query sequence (the
  // candidate loop re-checks structurally identical conjunctions).
  if (!options_.base.icp.tape_cache) {
    options_.base.icp.tape_cache = std::make_shared<smt::TapeCache>();
  }
  // ICP warm-starting across the candidate loop's structurally repeated
  // queries, as in BarrierVerifier (see verifier.cpp).
  if (!options_.base.icp.unsat_cache) {
    options_.base.icp.unsat_cache = std::make_shared<smt::UnsatTreeCache>();
  }
}

double PolyBarrierVerifier::numeric_lie(const PolynomialForm& w,
                                        const linalg::Vector& x) const {
  return dot(w.gradient(x), problem_.sim_field(x));
}

smt::IcpResult PolyBarrierVerifier::check_decrease(const PolynomialForm& w,
                                                   double delta) const {
  expr::ExprPool& pool = *problem_.pool;
  const expr::ExprId lie =
      expr::lie_derivative(pool, w.to_expr(pool), problem_.sym_field);
  smt::Conjunction decrease;
  decrease.add(pool.add(lie, pool.constant(options_.base.gamma)),
               smt::Rel::kGe);
  const smt::Dnf query =
      outside_rect(pool, problem_.initial_set)
          .conjoin(smt::Dnf::single(std::move(decrease)));
  smt::IcpConfig config = options_.base.icp;
  if (delta > 0.0) config.delta = delta;
  smt::IcpSolver solver(pool, config);
  return solver.solve(query, problem_.safe_rect.as_box());
}

smt::IcpResult PolyBarrierVerifier::check_initial_contained(
    const PolynomialForm& w, double level) const {
  expr::ExprPool& pool = *problem_.pool;
  smt::Conjunction query;
  query.add(pool.sub(w.to_expr(pool), pool.constant(level)), smt::Rel::kGt);
  smt::IcpSolver solver(pool, options_.base.icp);
  return solver.solve(query, problem_.initial_set.as_box());
}

std::vector<interval::Box> PolyBarrierVerifier::safe_faces(
    bool unsafe_only) const {
  const Rect& s = problem_.safe_rect;
  std::vector<interval::Box> faces;
  faces.reserve(2 * s.dims());
  for (std::size_t i = 0; i < s.dims(); ++i) {
    if (unsafe_only && !problem_.dim_unsafe(i)) continue;
    for (const double pin : {s.lo[i], s.hi[i]}) {
      interval::Box face = s.as_box();
      face[i] = interval::Interval(pin);
      faces.push_back(std::move(face));
    }
  }
  return faces;
}

smt::IcpResult PolyBarrierVerifier::check_domain_invariance() const {
  expr::ExprPool& pool = *problem_.pool;
  smt::IcpSolver solver(pool, options_.base.icp);
  smt::IcpResult aggregate;
  aggregate.verdict = smt::SatResult::kUnsat;
  for (std::size_t i = 0; i < problem_.dims(); ++i) {
    if (problem_.dim_unsafe(i)) continue;
    for (const int side : {-1, +1}) {
      interval::Box face = problem_.safe_rect.as_box();
      const double bound =
          side > 0 ? problem_.safe_rect.hi[i] : problem_.safe_rect.lo[i];
      face[i] = interval::Interval(bound);
      smt::Conjunction outward;
      const expr::ExprId fi = problem_.sym_field[i];
      outward.add(side > 0 ? fi : pool.neg(fi), smt::Rel::kGt);
      smt::IcpResult r = solver.solve(outward, face);
      aggregate.stats.boxes_processed += r.stats.boxes_processed;
      aggregate.stats.solve_time_s += r.stats.solve_time_s;
      if (r.is_sat()) return r;
      if (r.verdict == smt::SatResult::kUnknown) {
        aggregate.verdict = smt::SatResult::kUnknown;
      }
    }
  }
  return aggregate;
}

smt::IcpResult PolyBarrierVerifier::check_boundary_excluded(
    const PolynomialForm& w, double level) const {
  expr::ExprPool& pool = *problem_.pool;
  smt::Conjunction in_level_set;
  in_level_set.add(pool.sub(w.to_expr(pool), pool.constant(level)),
                   smt::Rel::kLe);
  smt::IcpSolver solver(pool, options_.base.icp);

  smt::IcpResult aggregate;
  aggregate.verdict = smt::SatResult::kUnsat;
  for (const interval::Box& face : safe_faces(true)) {
    smt::IcpResult r = solver.solve(in_level_set, face);
    aggregate.stats.boxes_processed += r.stats.boxes_processed;
    aggregate.stats.solve_time_s += r.stats.solve_time_s;
    if (r.is_sat()) return r;
    if (r.verdict == smt::SatResult::kUnknown) {
      aggregate.verdict = smt::SatResult::kUnknown;
    }
  }
  return aggregate;
}

std::optional<std::pair<double, double>> PolyBarrierVerifier::level_window(
    const PolynomialForm& w) const {
  expr::ExprPool& pool = *problem_.pool;
  const expr::ExprId w_expr = w.to_expr(pool);

  // ℓ_min: certified *upper* bound of max W over X0 (so X0 ⊂ L holds for
  // any ℓ above it).
  const smt::OptimizeResult over_x0 = smt::maximize(
      pool, w_expr, problem_.initial_set.as_box(), options_.optimize);
  const double lo = over_x0.upper;

  // ℓ_max: certified *lower* bound of min W over the boundary faces.
  double hi = std::numeric_limits<double>::infinity();
  for (const interval::Box& face : safe_faces(true)) {
    const smt::OptimizeResult on_face =
        smt::minimize(pool, w_expr, face, options_.optimize);
    hi = std::min(hi, on_face.lower);
  }
  if (!(lo < hi) || lo <= 0.0 || !std::isfinite(hi)) return std::nullopt;
  return std::make_pair(lo, hi);
}

PolyVerifyResult PolyBarrierVerifier::verify() {
  PolyVerifyResult result;
  const auto t_start = clock::now();

  // Seed simulations reuse the quadratic verifier's machinery.
  BarrierVerifier seeder(problem_, options_.base);
  const auto t_seed = clock::now();
  std::vector<FieldSample> samples;
  for (const linalg::Vector& x0 : seeder.random_initial_states(
           options_.base.seed_traces, options_.base.seed)) {
    const auto s = seeder.simulate_samples(x0);
    samples.insert(samples.end(), s.begin(), s.end());
  }
  // Domain-wide positivity anchors (decrease-exempt), as in the
  // quadratic pipeline.
  for (const linalg::Vector& x : seeder.random_initial_states(
           options_.base.positivity_samples, options_.base.seed + 7919)) {
    samples.push_back(
        {x, problem_.sim_field(x), /*require_decrease=*/false});
  }
  result.timings.simulation_time_s += seconds_since(t_seed);

  const auto t_gen = clock::now();
  std::optional<PolynomialForm> generator;
  // Warm-start each candidate LP from the previous iteration's basis —
  // the loop only appends counterexample rows (see BarrierVerifier).
  const bool warm = lp_warm_start_enabled(options_.base.synthesis);
  lp::LpBasis warm_basis;
  for (int iter = 0; iter < options_.base.max_candidate_iterations; ++iter) {
    ++result.timings.candidate_iterations;

    const auto t_lp = clock::now();
    SynthesisOptions sopts = options_.base.synthesis;
    if (warm) sopts.simplex.warm_start = std::move(warm_basis);
    const PolySynthesisResult synth =
        synthesize_polynomial_candidate(samples, basis_, sopts);
    warm_basis = synth.basis;
    result.timings.lp_time_s += seconds_since(t_lp);
    ++result.timings.lp_solves;

    if (!synth.feasible) {
      result.status = VerifyStatus::kLpInfeasible;
      result.timings.generator_time_s = seconds_since(t_gen);
      result.timings.total_time_s = seconds_since(t_start);
      return result;
    }
    result.lp_margin = synth.margin;
    result.generator = synth.candidate;

    const auto t_smt = clock::now();
    smt::IcpResult check = check_decrease(synth.candidate);
    ++result.timings.smt5_queries;
    double delta = options_.base.icp.delta;
    while (options_.base.adaptive_delta &&
           check.verdict == smt::SatResult::kDeltaSat &&
           delta > options_.base.min_delta &&
           numeric_lie(synth.candidate, check.witness_point()) <
               -options_.base.gamma) {
      delta *= options_.base.delta_shrink;
      check = check_decrease(synth.candidate, delta);
      ++result.timings.smt5_queries;
    }
    result.timings.smt5_time_s += seconds_since(t_smt);

    if (check.verdict == smt::SatResult::kUnknown) {
      result.status = VerifyStatus::kSolverBudget;
      result.timings.generator_time_s = seconds_since(t_gen);
      result.timings.total_time_s = seconds_since(t_start);
      return result;
    }
    if (check.is_unsat()) {
      generator = synth.candidate;
      break;
    }

    const linalg::Vector cex = check.witness_point();
    result.counterexamples.push_back(cex);
    const auto t_sim = clock::now();
    const auto s = seeder.simulate_samples(cex);
    result.timings.simulation_time_s += seconds_since(t_sim);
    samples.insert(samples.end(), s.begin(), s.end());
    if (s.empty()) {
      samples.push_back({cex, problem_.sim_field(cex)});
    }
  }
  result.timings.generator_time_s = seconds_since(t_gen);

  if (!generator) {
    result.status = VerifyStatus::kMaxCandidateIterations;
    result.timings.total_time_s = seconds_since(t_start);
    return result;
  }

  // Level selection via the certified optimizer window + SMT binary
  // search, exactly as in the quadratic case.
  const auto t_level = clock::now();

  if (problem_.has_invariant_dims()) {
    const smt::IcpResult inv = check_domain_invariance();
    if (inv.verdict == smt::SatResult::kUnknown) {
      result.status = VerifyStatus::kSolverBudget;
      result.timings.level_set_time_s = seconds_since(t_level);
      result.timings.total_time_s = seconds_since(t_start);
      return result;
    }
    if (inv.is_sat()) {
      result.status = VerifyStatus::kDomainNotInvariant;
      result.timings.level_set_time_s = seconds_since(t_level);
      result.timings.total_time_s = seconds_since(t_start);
      return result;
    }
  }

  const auto window = level_window(*generator);
  if (!window) {
    result.status = VerifyStatus::kLevelSetFailed;
    result.timings.level_set_time_s = seconds_since(t_level);
    result.timings.total_time_s = seconds_since(t_start);
    return result;
  }
  double lo = window->first * (1.0 + options_.base.level_margin);
  double hi = window->second * (1.0 - options_.base.level_margin);
  if (!(lo < hi)) {
    result.status = VerifyStatus::kLevelSetFailed;
    result.timings.level_set_time_s = seconds_since(t_level);
    result.timings.total_time_s = seconds_since(t_start);
    return result;
  }

  double level = std::sqrt(lo * hi);
  bool proved = false;
  for (int iter = 0; iter < options_.base.max_level_iterations; ++iter) {
    const smt::IcpResult init_check =
        check_initial_contained(*generator, level);
    if (init_check.verdict == smt::SatResult::kUnknown) {
      result.status = VerifyStatus::kSolverBudget;
      break;
    }
    if (init_check.is_sat()) {
      lo = level;
      level = std::sqrt(lo * hi);
      continue;
    }
    const smt::IcpResult boundary_check =
        check_boundary_excluded(*generator, level);
    if (boundary_check.verdict == smt::SatResult::kUnknown) {
      result.status = VerifyStatus::kSolverBudget;
      break;
    }
    if (boundary_check.is_sat()) {
      hi = level;
      level = std::sqrt(lo * hi);
      continue;
    }
    proved = true;
    break;
  }
  result.timings.level_set_time_s = seconds_since(t_level);
  result.timings.total_time_s = seconds_since(t_start);

  if (proved) {
    result.status = VerifyStatus::kSafe;
    result.level = level;
  } else if (result.status != VerifyStatus::kSolverBudget) {
    result.status = VerifyStatus::kLevelSetFailed;
  }
  return result;
}

}  // namespace bcert::core
