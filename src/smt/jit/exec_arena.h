#pragma once
/// \file exec_arena.h
/// \brief W^X-safe executable memory for the tape JIT.
///
/// One `ExecMemory` owns one mmap'd region per compiled tape. The
/// lifecycle never holds writable+executable pages simultaneously: the
/// region is mapped RW, the code bytes are copied in, then the mapping
/// is flipped to RX with mprotect. Hardened hosts that refuse executable
/// anonymous mappings (or refuse the RW→RX flip) surface as a
/// `JitUnavailable` throw, which the contractor setup catches to walk
/// the degradation ladder down to the interpreter (`jit_to_tape`).
///
/// Only x86-64 ELF/Mach-O hosts are supported; everywhere else
/// `supported()` is false and construction throws.

#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace bcert::smt::jit {

/// Thrown when native emission cannot proceed on this host (non-x86-64
/// build, exec-mmap denial, W^X flip refused). Callers degrade to the
/// tape interpreter — bit-identically, by contract.
class JitUnavailable : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Immutable executable copy of a finished code buffer.
class ExecMemory {
 public:
  /// True when this build + platform can execute emitted code at all.
  static bool supported();

  /// Maps RW, copies \p size bytes from \p code, remaps RX.
  /// Throws JitUnavailable on any failure; never leaves a writable
  /// executable page behind.
  ExecMemory(const std::uint8_t* code, std::size_t size);
  ~ExecMemory();

  ExecMemory(const ExecMemory&) = delete;
  ExecMemory& operator=(const ExecMemory&) = delete;

  /// Entry point at byte offset \p off into the region.
  const void* entry(std::size_t off) const {
    return static_cast<const std::uint8_t*>(base_) + off;
  }
  std::size_t size() const { return size_; }

 private:
  void* base_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace bcert::smt::jit
