#pragma once
/// \file elm.h
/// \brief Random-feature ("extreme learning machine") controller fitting.
///
/// Table 1 of the paper verifies controllers with up to 1000 hidden
/// neurons. Training a 4001-parameter policy with full-covariance CMA-ES
/// is not what that experiment measures — it measures how *verification*
/// scales with network size. To manufacture large controllers that are
/// functionally equivalent to the trained 10-neuron policy, we fix a
/// random hidden layer and fit the output layer by least squares to a
/// teacher controller (distillation). The resulting network has exactly
/// the architecture and activation functions the SMT query must handle.

#include <functional>
#include <random>

#include "src/linalg/vector.h"
#include "src/nn/network.h"

namespace bcert::nn {

/// A teacher mapping controller inputs to desired outputs.
using TeacherFn = std::function<linalg::Vector(const linalg::Vector&)>;

/// Options for the random-feature fit.
struct ElmOptions {
  std::size_t hidden = 100;           ///< hidden neurons of the student
  std::size_t samples = 600;          ///< training grid size
  double weight_scale = 1.0;          ///< hidden random weight scale
  Activation activation = Activation::kTanh;
  bool tanh_output = true;            ///< paper: tansig output neuron
  double output_clip = 0.999;         ///< clamp before atanh when fitting
  unsigned seed = 1234;
  /// Ridge (Tikhonov) regularization of the output-layer fit. Keeps the
  /// L1 norm of output weights small, which keeps interval enclosures of
  /// the network tight during verification — unregularized least squares
  /// on nearly-collinear random features can produce huge cancelling
  /// weights that make the δ-SAT queries needlessly hard.
  double ridge = 1e-4;
};

/// Fits a single-hidden-layer student to \p teacher over the box
/// [lo, hi]^inputs sampled uniformly. When `tanh_output`, targets are
/// mapped through atanh so the final tanh reproduces the teacher.
FeedforwardNet elm_fit(const TeacherFn& teacher, std::size_t inputs,
                       std::size_t outputs, const linalg::Vector& input_lo,
                       const linalg::Vector& input_hi,
                       const ElmOptions& opts = {});

}  // namespace bcert::nn
