// Workload-zoo plant tests: symbolic/numeric field agreement, in-place
// factory bit-identity, and end-to-end verification of the new plants
// through the Engine.
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/expr/eval.h"
#include "src/nn/ctrnn.h"
#include "src/scenario/generator.h"
#include "src/scenario/plants.h"
#include "src/scenario/prng.h"

namespace bcert::scenario {
namespace {

/// Deterministic points inside the scenario's safe rectangle.
std::vector<linalg::Vector> sample_points(const core::Scenario& s,
                                          std::size_t count,
                                          std::uint64_t seed) {
  const core::Rect& r = s.problem.safe_rect;
  SplitMix64 rng(seed);
  std::vector<linalg::Vector> points;
  for (std::size_t k = 0; k < count; ++k) {
    linalg::Vector x(r.dims());
    for (std::size_t i = 0; i < r.dims(); ++i) {
      x[i] = rng.uniform(r.lo[i], r.hi[i]);
    }
    points.push_back(std::move(x));
  }
  return points;
}

core::Scenario make_family(expr::ExprPool& pool, PlantFamily family) {
  switch (family) {
    case PlantFamily::kAcc: return make_acc_scenario(pool);
    case PlantFamily::kQuadrotor: return make_quadrotor_scenario(pool);
    case PlantFamily::kPendulumElm: return make_pendulum_scenario(pool);
    case PlantFamily::kDubinsElm: return make_dubins_elm_scenario(pool);
    case PlantFamily::kDubinsCtrnn: return make_dubins_ctrnn_scenario(pool);
  }
  throw std::invalid_argument("make_family");
}

TEST(Zoo, SymbolicFieldMatchesNumericField) {
  for (std::size_t f = 0; f < kPlantFamilyCount; ++f) {
    expr::ExprPool pool;
    const auto family = static_cast<PlantFamily>(f);
    const core::Scenario s = make_family(pool, family);
    ASSERT_EQ(s.problem.sym_field.size(), s.problem.safe_rect.dims())
        << s.name;
    expr::Evaluator eval(pool, s.problem.sym_field);
    for (const linalg::Vector& x : sample_points(s, 25, 7 + f)) {
      const linalg::Vector dx = s.problem.sim_field(x);
      const std::vector<double> sym = eval.eval(x);
      ASSERT_EQ(dx.size(), sym.size());
      for (std::size_t i = 0; i < dx.size(); ++i) {
        // The symbolic DAG reassociates NN affine layers, so exact
        // equality is not promised — agreement to ~1e-9 is.
        EXPECT_NEAR(dx[i], sym[i], 1e-9)
            << s.name << " component " << i << " at sample";
      }
    }
  }
}

TEST(Zoo, InplaceFactoryBitIdenticalToAllocatingField) {
  for (std::size_t f = 0; f < kPlantFamilyCount; ++f) {
    expr::ExprPool pool;
    const auto family = static_cast<PlantFamily>(f);
    const core::Scenario s = make_family(pool, family);
    ASSERT_TRUE(static_cast<bool>(s.problem.sim_field_factory)) << s.name;
    auto inplace = s.problem.sim_field_factory();
    linalg::Vector dx;
    for (const linalg::Vector& x : sample_points(s, 25, 31 + f)) {
      const linalg::Vector expected = s.problem.sim_field(x);
      inplace(x, dx);
      ASSERT_EQ(dx.size(), expected.size());
      for (std::size_t i = 0; i < dx.size(); ++i) {
        // Bit-identical, not approximately equal: the in-place kernels
        // share the allocating path's accumulation order by contract.
        EXPECT_EQ(dx[i], expected[i]) << s.name << " component " << i;
      }
    }
  }
}

TEST(Zoo, FactoryInstancesAreIndependent) {
  expr::ExprPool pool;
  const core::Scenario s = make_acc_scenario(pool);
  auto a = s.problem.sim_field_factory();
  auto b = s.problem.sim_field_factory();
  linalg::Vector da, db;
  // Interleave the two instances: shared scratch would corrupt results.
  for (const linalg::Vector& x : sample_points(s, 10, 99)) {
    a(x, da);
    b(x, db);
    for (std::size_t i = 0; i < da.size(); ++i) EXPECT_EQ(da[i], db[i]);
  }
}

TEST(Zoo, AccVerifiesSafe) {
  expr::ExprPool pool;
  const core::Scenario s = make_acc_scenario(pool);
  core::Engine engine({.threads = 1});
  const core::VerifyResult r = engine.verify(s.problem, zoo_job_defaults());
  EXPECT_EQ(r.status, core::VerifyStatus::kSafe);
  EXPECT_TRUE(r.has_generator());
  EXPECT_GT(r.level, 0.0);
}

TEST(Zoo, QuadrotorVerifiesSafe) {
  expr::ExprPool pool;
  const core::Scenario s = make_quadrotor_scenario(pool);
  core::Engine engine({.threads = 1});
  const core::VerifyResult r = engine.verify(s.problem, zoo_job_defaults());
  EXPECT_EQ(r.status, core::VerifyStatus::kSafe);
}

TEST(Zoo, DubinsElmVerifiesSafe) {
  expr::ExprPool pool;
  const core::Scenario s = make_dubins_elm_scenario(pool);
  core::Engine engine({.threads = 1});
  const core::VerifyResult r = engine.verify(s.problem, zoo_job_defaults());
  EXPECT_EQ(r.status, core::VerifyStatus::kSafe);
}

TEST(Zoo, DubinsCtrnnVerifiesSafeWithDomainOnlyHiddenDim) {
  expr::ExprPool pool;
  const core::Scenario s = make_dubins_ctrnn_scenario(pool);
  ASSERT_EQ(s.problem.safe_rect.dims(), 3u);
  ASSERT_EQ(s.problem.unsafe_dims.size(), 3u);
  EXPECT_FALSE(s.problem.unsafe_dims[2]);
  core::Engine engine({.threads = 1});
  const core::VerifyResult r = engine.verify(s.problem, zoo_job_defaults());
  EXPECT_EQ(r.status, core::VerifyStatus::kSafe);
}

TEST(Zoo, CtrnnParameterRoundTrip) {
  nn::Ctrnn net =
      nn::Ctrnn::lagged_policy(linalg::Vector{0.25, 2.0}, 0.1);
  const linalg::Vector params = net.parameters();
  ASSERT_EQ(params.size(), net.num_params());

  nn::Ctrnn copy = net;
  copy.set_parameters(params);
  linalg::Vector y{0.3, -0.2};
  linalg::Vector h{0.1};
  EXPECT_EQ(net.output(h)[0], copy.output(h)[0]);

  // A perturbed parameter vector must change behaviour (the jitter axis
  // is live), and setting the original back must restore it exactly.
  linalg::Vector bumped = params;
  bumped[0] += 0.5;
  copy.set_parameters(bumped);
  linalg::Vector d0(1), d1(1);
  nn::Ctrnn::Scratch s0, s1;
  net.hidden_derivative_inplace(y, h, d0, s0);
  copy.hidden_derivative_inplace(y, h, d1, s1);
  EXPECT_NE(d0[0], d1[0]);
  copy.set_parameters(params);
  copy.hidden_derivative_inplace(y, h, d1, s1);
  EXPECT_EQ(d0[0], d1[0]);
}

TEST(Zoo, WeightJitterIsDeterministicAndBounded) {
  expr::ExprPool pool_a, pool_b, pool_c;
  AccParams jittered;
  jittered.weight_jitter = 0.02;
  jittered.jitter_seed = 1234;
  const core::Scenario a = make_acc_scenario(pool_a, jittered);
  const core::Scenario b = make_acc_scenario(pool_b, jittered);
  const core::Scenario base = make_acc_scenario(pool_c);
  const linalg::Vector x{0.3, -0.1};
  // Same params => bit-identical jittered controller.
  EXPECT_EQ(a.problem.sim_field(x)[1], b.problem.sim_field(x)[1]);
  // Jitter actually moved the policy off the unjittered baseline.
  EXPECT_NE(a.problem.sim_field(x)[1], base.problem.sim_field(x)[1]);
}

}  // namespace
}  // namespace bcert::scenario
