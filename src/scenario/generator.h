#pragma once
/// \file generator.h
/// \brief Seeded, fully deterministic campaign-suite generation over the
/// workload zoo.
///
/// `ScenarioGenerator` emits `std::vector<core::Scenario>` suites of
/// configurable size for `Engine::run_campaign`: each scenario is a zoo
/// plant with jittered dynamics constants, jittered region layout (the
/// unsafe set is the obstacle), an independently perturbed controller,
/// and — optionally — a per-scenario certificate template override.
///
/// ## Seed contract
///
/// Scenario `i` of a suite is a pure function of `(config.seed, i,
/// config)` — nothing else. Concretely:
///
///  * all randomness flows from `SplitMix64::derive(config.seed, i)`, a
///    per-scenario stream that does not depend on how many draws any
///    other scenario consumed (**prefix stability**: growing `count`
///    re-emits the same first scenarios, bit-for-bit);
///  * the stream uses only platform-independent integer mixing and
///    exact power-of-two scaling (src/scenario/prng.h), never
///    `std::*_distribution`;
///  * the family rotates round-robin through `config.families`
///    (`families[i % families.size()]`), so every suite of length
///    ≥ families.size() is a mixed-plant suite.
///
/// Therefore two generators with equal configs produce bit-identical
/// suites — same names, same region bounds, same controller weights,
/// same symbolic fields — which tests/scenario/generator_test.cpp
/// asserts and the differential harness (differential.h) relies on.

#include <cstdint>
#include <vector>

#include "src/core/engine.h"
#include "src/scenario/plants.h"

namespace bcert::scenario {

/// Suite-shape and jitter-magnitude knobs. All jitters are bounded and
/// small by default so generated scenarios stay verifiable (the point is
/// workload diversity, not adversarial search).
struct GeneratorConfig {
  std::uint64_t seed = 1;
  std::size_t count = 8;
  /// Families the suite rotates through; must be non-empty.
  std::vector<PlantFamily> families{
      PlantFamily::kAcc, PlantFamily::kQuadrotor, PlantFamily::kPendulumElm,
      PlantFamily::kDubinsElm, PlantFamily::kDubinsCtrnn};
  /// Relative jitter of dynamics constants (accel authority, drag,
  /// torque, gravity, velocity, τ, teacher gains).
  double param_jitter = 0.05;
  /// Relative bound of the per-weight controller perturbation.
  double weight_jitter = 0.02;
  /// Relative jitter of the region layout (safe-rectangle faces = the
  /// obstacle boundary, and the initial set).
  double region_jitter = 0.05;
  /// When set, scenarios alternate pseudo-randomly between the campaign
  /// default template and polynomial(polynomial_degree), via the
  /// per-scenario `Scenario::certificate` override.
  bool jitter_templates = false;
  int polynomial_degree = 2;
};

/// Deterministic scenario-suite generator. All scenarios share the one
/// expression pool passed in (so structurally repeated queries hit the
/// Engine's tape and UNSAT-tree caches across the whole suite); the pool
/// must outlive every use of the generated problems.
class ScenarioGenerator {
 public:
  ScenarioGenerator(expr::ExprPool& pool, GeneratorConfig config = {});

  const GeneratorConfig& config() const { return config_; }

  /// Scenario \p index of the suite (prefix-stable; see seed contract).
  core::Scenario generate_one(std::size_t index);

  /// The full suite: generate_one(0 .. count-1).
  std::vector<core::Scenario> generate();

 private:
  expr::ExprPool* pool_;
  GeneratorConfig config_;
};

/// Campaign defaults that fit every zoo family (the CTRNN scenarios
/// need longer seed traces than the 2-D plants).
core::JobOptions zoo_job_defaults();

}  // namespace bcert::scenario
