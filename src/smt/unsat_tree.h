#pragma once
/// \file unsat_tree.h
/// \brief Terminal UNSAT box trees: recording, replay, and the
/// structural-signature cache behind ICP warm-starting.
///
/// When branch-and-prune refutes a conjunction it implicitly builds a
/// binary *split tree*: every processed box was either pruned (a leaf)
/// or bisected at a recorded (dimension, midpoint). `UnsatTree` stores
/// exactly those split decisions plus the root box. Replaying the splits
/// over the root box reproduces a *partition* of it — by construction,
/// for any tree: each replayed split covers its parent interval exactly
/// (clamped when the recorded midpoint falls outside the replayed
/// interval, in which case the uncovered child is empty and skipped).
///
/// That partition property is the soundness story of ICP warm-starting:
/// seeding the next query's frontier with the replayed leaves covers
/// exactly the original box, so even a stale or mismatched tree can
/// never make an UNSAT claim unsound or hide a real witness. Staleness
/// only costs a suboptimal partition. (As with any change of
/// contraction granularity, a δ-*borderline* query may answer δ-SAT
/// where a cold run proved UNSAT, or vice versa — both are legitimate
/// δ-complete answers, absorbed by the verifiers' adaptive-δ loop.)
/// The only validation needed is that the recorded root box equals the
/// query box (and the dimensions match); on any mismatch the solver
/// silently cold starts from the full box, mirroring the LP warm-start
/// contract.
///
/// Why it pays: the verifier's LP ↔ SMT loop re-solves queries whose
/// *shape* is fixed while only W's coefficients (expression constants)
/// change — candidate refinements, adaptive-δ re-checks, the level-set
/// binary search. The previous proof's partition already concentrates
/// splits where the constraint was hard to refute, so most replayed
/// leaves die in a single contraction pass instead of re-deriving the
/// tree's interior. `UnsatTreeCache` keys trees by a *structural*
/// conjunction signature that deliberately ignores constant values, so
/// consecutive candidates hit the same entry.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/expr/expr.h"
#include "src/interval/box.h"
#include "src/smt/constraint.h"
#include "src/smt/keyed_cache.h"

namespace bcert::smt {

/// Recorded split tree of one refuted (or partially explored) query.
/// Immutable once published to the cache.
struct UnsatTree {
  /// Sentinel child id: the node is a leaf.
  static constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

  struct Node {
    std::uint32_t dim = 0;       ///< split dimension
    double value = 0.0;          ///< split point (parent box midpoint)
    std::uint32_t left = kNoNode;
    std::uint32_t right = kNoNode;
  };

  interval::Box root_box;   ///< the box the recorded query searched
  std::vector<Node> nodes;  ///< nodes[0] is the root (when non-empty)

  /// Number of splits recorded (leaves = splits + 1 when non-degenerate).
  std::size_t split_count() const;

  /// Replays the recorded splits over \p box, appending the partition
  /// leaves to \p out in left-first depth-first order. Always produces a
  /// cover of \p box: a split point outside the replayed interval yields
  /// one empty child, which is skipped. An empty tree yields \p box
  /// itself.
  void replay(const interval::Box& box,
              std::vector<interval::Box>& out) const;

  /// The traversal behind replay(), exposed so callers can thread their
  /// own per-node state (the ICP solver mirrors the seed's splits into a
  /// fresh recording): one shared implementation keeps the
  /// partition-coverage invariant in exactly one place.
  /// \p on_split : (const Node&, Tag parent) → {left Tag, right Tag},
  ///   called once per replayed internal node;
  /// \p on_leaf  : (interval::Box&&, Tag), called once per partition
  ///   leaf, in left-first depth-first order.
  template <typename Tag, typename SplitFn, typename LeafFn>
  void walk(const interval::Box& box, Tag root_tag, SplitFn&& on_split,
            LeafFn&& on_leaf) const {
    struct Frame {
      std::uint32_t sid;
      Tag tag;
      interval::Box box;
    };
    std::vector<Frame> stack;
    stack.push_back({0, root_tag, box});
    while (!stack.empty()) {
      Frame f = std::move(stack.back());
      stack.pop_back();
      const bool leaf = f.sid == kNoNode || f.sid >= nodes.size() ||
                        nodes[f.sid].left == kNoNode ||
                        nodes[f.sid].dim >= f.box.size();
      if (leaf) {
        on_leaf(std::move(f.box), f.tag);  // (or malformed: keep cover)
        continue;
      }
      const Node& n = nodes[f.sid];
      const interval::Interval iv = f.box[n.dim];
      // Clamped split: a point outside the interval leaves one child
      // empty (skipped), so the emitted leaves always cover the box.
      interval::Box left = f.box;
      interval::Box right = std::move(f.box);
      left[n.dim] = interval::Interval(iv.lo(), std::min(n.value, iv.hi()));
      right[n.dim] = interval::Interval(std::max(n.value, iv.lo()), iv.hi());
      const std::pair<Tag, Tag> tags = on_split(n, f.tag);
      // Push right below left so the left-most leaf is emitted first.
      if (!right[n.dim].is_empty()) {
        stack.push_back({n.right, tags.second, std::move(right)});
      }
      if (!left[n.dim].is_empty()) {
        stack.push_back({n.left, tags.first, std::move(left)});
      }
    }
  }
};

/// Hash of a conjunction's DAG *shape*: operations, variable indices,
/// pow exponents, child wiring, and constraint relations — but NOT
/// constant values. Two candidate iterations that differ only in W's
/// coefficients therefore share a signature (the warm-start hit case);
/// a hash collision between genuinely different queries merely seeds a
/// useless-but-sound partition, because replay always covers the box.
std::uint64_t structural_signature(const expr::ExprPool& pool,
                                   const Conjunction& c);

/// LRU store of terminal UNSAT trees, keyed by (pool, structural
/// signature). Shares the `KeyedLruCache` machinery (and stats contract)
/// with `TapeCache`. Lookups validate the recorded root box against the
/// query box and report a miss on mismatch — the silent-fallback half of
/// the warm-start contract. Stores overwrite: the newest proof for a
/// query shape is the closest to the next candidate.
class UnsatTreeCache {
 public:
  /// Default LRU capacity. Trees are capped at kMaxNodes nodes each, so
  /// the cache is bounded in bytes (≤ ~50 MB) as well as entries.
  static constexpr std::size_t kMaxEntries = 16;

  /// Recording cap per query: a proof deeper than this is not persisted
  /// (re-deriving it is cheaper than holding arbitrarily large trees).
  static constexpr std::size_t kMaxNodes = std::size_t{1} << 17;

  explicit UnsatTreeCache(std::size_t capacity = kMaxEntries)
      : trees_(capacity) {}

  /// The recorded tree for this query shape, or null when absent or when
  /// the recorded root box does not match \p box exactly. The
  /// signature-taking overloads let a caller that both finds and stores
  /// in one query (the solver's warm context) hash the conjunction once.
  std::shared_ptr<const UnsatTree> find(const expr::ExprPool& pool,
                                        const Conjunction& c,
                                        const interval::Box& box);
  std::shared_ptr<const UnsatTree> find(const expr::ExprPool& pool,
                                        std::uint64_t signature,
                                        const interval::Box& box);

  /// As above, but on a live miss also probes the imported warm side
  /// table under the content-exact signature. A content hit means \p c
  /// is byte-for-byte the query the tree refuted in a previous process,
  /// so replaying it re-derives the same UNSAT verdict and re-records an
  /// isomorphic tree — the adoption cannot change any verdict. Counted
  /// in warm_restores().
  std::shared_ptr<const UnsatTree> find(const expr::ExprPool& pool,
                                        std::uint64_t signature,
                                        const Sig128& content,
                                        const interval::Box& box);

  /// Publishes \p tree as the latest proof for this query shape.
  void store(const expr::ExprPool& pool, const Conjunction& c,
             std::shared_ptr<const UnsatTree> tree);
  void store(const expr::ExprPool& pool, std::uint64_t signature,
             std::shared_ptr<const UnsatTree> tree);

  /// As above, but also records \p tree in the content-keyed warm table
  /// so it becomes exportable (see export_entries). The solver's publish
  /// path uses this overload; the content-less overloads feed the live
  /// LRU only.
  void store(const expr::ExprPool& pool, std::uint64_t signature,
             const Sig128& content, std::shared_ptr<const UnsatTree> tree);

  std::size_t size() const { return trees_.size(); }

  /// Hit/miss/eviction counters of the underlying store. A signature hit
  /// whose recorded root box mismatches the query box is returned as
  /// null (cold fallback) and counted separately via stale().
  KeyedCacheStats stats() const { return trees_.stats(); }
  std::uint64_t stale() const { return stale_.load(); }

  // --- persistent warm state (src/smt/cache_io, bcertd) ---------------------

  /// Bound on the content-keyed warm table (the exportable record of
  /// published trees). FIFO-evicted; eviction order is deterministic, so
  /// identical runs export identical snapshots.
  static constexpr std::size_t kMaxWarmEntries = 1024;

  /// One exportable entry: the pool-independent *content-exact* 128-bit
  /// signature (full solver input, constants included — the same
  /// contract tapes use) and the shared immutable tree.
  ///
  /// Why content-exact and not the live cache's lossy structural key:
  /// replay of any tree is *sound* (it always partitions the query box),
  /// but it is not *verdict-neutral* — seeding a δ-SAT search with a
  /// different-content tree changes which witness branch-and-prune finds
  /// first, which perturbs the LP ↔ SMT trajectory downstream. Organic
  /// in-process seeding evolves identically in every identical run, so
  /// lossy keys are fine there; an *imported* tree, however, would seed
  /// the first query of a shape that a cold process runs cold, breaking
  /// the snapshot contract that warm state changes timings, never
  /// verdicts. Keying persisted trees by content means an adopted tree
  /// replays only the byte-identical query it refuted before: the
  /// verdict (UNSAT) and the re-recorded tree are reproduced, and the
  /// live cache stays in lockstep with a cold process.
  struct WarmEntry {
    Sig128 content;
    std::shared_ptr<const UnsatTree> tree;
  };

  /// Contents of the content-keyed warm table (imported entries merged
  /// with trees published via the content-taking store()).
  std::vector<WarmEntry> export_entries() const;

  /// Installs restored trees into the warm side table; a later find()
  /// whose content signature matches adopts the tree (same root-box
  /// validation as a live hit) and counts it in warm_restores().
  void import_entries(std::vector<WarmEntry> entries);

  /// find() calls answered from an imported tree — the counter proving a
  /// snapshot-warmed process actually took the warm path.
  std::uint64_t warm_restores() const {
    return warm_restores_.load(std::memory_order_relaxed);
  }

 private:
  using Key = std::pair<const void*, std::uint64_t>;

  void warm_insert(const Sig128& content,
                   std::shared_ptr<const UnsatTree> tree);

  KeyedLruCache<Key, const UnsatTree> trees_;
  std::atomic<std::uint64_t> stale_{0};
  mutable std::mutex warm_mutex_;
  std::map<Sig128, std::shared_ptr<const UnsatTree>> warm_;
  std::deque<Sig128> warm_order_;  ///< FIFO eviction queue (lazy)
  std::atomic<std::uint64_t> warm_restores_{0};
};

}  // namespace bcert::smt
