#include "src/ode/integrator.h"

#include <algorithm>
#include <cmath>

namespace bcert::ode {

using linalg::Vector;
using linalg::copy_into;
using linalg::scale_add;

VectorFieldInPlace wrap_field(const VectorField& f) {
  return [&f](const Vector& x, Vector& dx) { dx = f(x); };
}

void rk4_step_inplace(const VectorFieldInPlace& f, const Vector& x, double h,
                      Vector& out, RkScratch& s) {
  // Bit-identical to the textbook formulation
  //   x + (k1 + 2·k2 + 2·k3 + k4)·(h/6)
  // evaluated left-to-right, but with every stage written into reused
  // buffers instead of freshly allocated temporaries.
  f(x, s.k1);
  scale_add(s.xt, x, h / 2.0, s.k1);
  f(s.xt, s.k2);
  scale_add(s.xt, x, h / 2.0, s.k2);
  f(s.xt, s.k3);
  scale_add(s.xt, x, h, s.k3);
  f(s.xt, s.k4);
  const double w = h / 6.0;
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] + (((s.k1[i] + s.k2[i] * 2.0) + s.k3[i] * 2.0) + s.k4[i]) * w;
  }
}

Vector rk4_step(const VectorField& f, const Vector& x, double h) {
  RkScratch scratch;
  Vector out;
  rk4_step_inplace(wrap_field(f), x, h, out, scratch);
  return out;
}

Trace integrate_rk4(const VectorFieldInPlace& f, const Vector& x0,
                    const IntegrateOptions& opts) {
  Trace trace;
  const auto steps = static_cast<std::size_t>(
      std::ceil(opts.t_end / opts.step));
  trace.reserve(steps + 1);
  RkScratch s;
  Vector x = x0;
  double t = 0.0;
  trace.push_back(t, x);
  for (std::size_t i = 0; i < steps; ++i) {
    const double h = std::min(opts.step, opts.t_end - t);
    if (h <= 0.0) break;
    rk4_step_inplace(f, x, h, s.xn, s);
    std::swap(x, s.xn);
    t += h;
    trace.push_back(t, x);
    if (opts.stop && opts.stop(t, x)) break;
  }
  return trace;
}

Trace integrate_rk4(const VectorField& f, const Vector& x0,
                    const IntegrateOptions& opts) {
  return integrate_rk4(wrap_field(f), x0, opts);
}

namespace {

// Fehlberg coefficients (RKF45).
constexpr double kA2 = 1.0 / 4.0;
constexpr double kB31 = 3.0 / 32.0, kB32 = 9.0 / 32.0;
constexpr double kC41 = 1932.0 / 2197.0, kC42 = -7200.0 / 2197.0,
                 kC43 = 7296.0 / 2197.0;
constexpr double kD51 = 439.0 / 216.0, kD52 = -8.0, kD53 = 3680.0 / 513.0,
                 kD54 = -845.0 / 4104.0;
constexpr double kE61 = -8.0 / 27.0, kE62 = 2.0, kE63 = -3544.0 / 2565.0,
                 kE64 = 1859.0 / 4104.0, kE65 = -11.0 / 40.0;
// 4th-order solution weights.
constexpr double kW41 = 25.0 / 216.0, kW43 = 1408.0 / 2565.0,
                 kW44 = 2197.0 / 4104.0, kW45 = -1.0 / 5.0;
// 5th-order solution weights.
constexpr double kW51 = 16.0 / 135.0, kW53 = 6656.0 / 12825.0,
                 kW54 = 28561.0 / 56430.0, kW55 = -9.0 / 50.0,
                 kW56 = 2.0 / 55.0;

// Evaluates k = f(xt)·h into \p k without allocating.
void stage(const VectorFieldInPlace& f, const Vector& xt, double h,
           Vector& k) {
  f(xt, k);
  k *= h;
}

}  // namespace

Trace integrate_rkf45(const VectorFieldInPlace& f, const Vector& x0,
                      const IntegrateOptions& opts) {
  Trace trace;
  RkScratch s;
  Vector x = x0;
  const std::size_t n = x0.size();
  double t = 0.0;
  double h = opts.step;
  trace.push_back(t, x);

  while (t < opts.t_end) {
    h = std::min(h, opts.t_end - t);
    h = std::clamp(h, opts.min_step, opts.max_step);

    // Stage points accumulate left-to-right exactly as the allocating
    // formulation `x + k1*c1 + k2*c2 + ...` did, keeping traces
    // bit-identical to the original implementation.
    stage(f, x, h, s.k1);
    scale_add(s.xt, x, kA2, s.k1);
    stage(f, s.xt, h, s.k2);
    scale_add(s.xt, x, kB31, s.k1);
    linalg::axpy(kB32, s.k2, s.xt);
    stage(f, s.xt, h, s.k3);
    scale_add(s.xt, x, kC41, s.k1);
    linalg::axpy(kC42, s.k2, s.xt);
    linalg::axpy(kC43, s.k3, s.xt);
    stage(f, s.xt, h, s.k4);
    scale_add(s.xt, x, kD51, s.k1);
    linalg::axpy(kD52, s.k2, s.xt);
    linalg::axpy(kD53, s.k3, s.xt);
    linalg::axpy(kD54, s.k4, s.xt);
    stage(f, s.xt, h, s.k5);
    scale_add(s.xt, x, kE61, s.k1);
    linalg::axpy(kE62, s.k2, s.xt);
    linalg::axpy(kE63, s.k3, s.xt);
    linalg::axpy(kE64, s.k4, s.xt);
    linalg::axpy(kE65, s.k5, s.xt);
    stage(f, s.xt, h, s.k6);

    scale_add(s.x4, x, kW41, s.k1);
    linalg::axpy(kW43, s.k3, s.x4);
    linalg::axpy(kW44, s.k4, s.x4);
    linalg::axpy(kW45, s.k5, s.x4);
    scale_add(s.xn, x, kW51, s.k1);
    linalg::axpy(kW53, s.k3, s.xn);
    linalg::axpy(kW54, s.k4, s.xn);
    linalg::axpy(kW55, s.k5, s.xn);
    linalg::axpy(kW56, s.k6, s.xn);

    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      err = std::max(err, std::fabs(s.xn[i] - s.x4[i]));
    }
    const double tol = opts.abs_tol +
                       opts.rel_tol * std::max(x.norm_inf(), s.xn.norm_inf());

    if (err <= tol || h <= opts.min_step) {
      t += h;
      // Local extrapolation: accept the 5th-order solution.
      std::swap(x, s.xn);
      trace.push_back(t, x);
      if (opts.stop && opts.stop(t, x)) break;
    }
    // Step-size update with the usual safety factor and clamps.
    const double scale =
        err > 0.0 ? 0.9 * std::pow(tol / err, 0.2) : 2.0;
    h *= std::clamp(scale, 0.2, 2.0);
  }
  return trace;
}

Trace integrate_rkf45(const VectorField& f, const Vector& x0,
                      const IntegrateOptions& opts) {
  return integrate_rkf45(wrap_field(f), x0, opts);
}

}  // namespace bcert::ode
