// Tests for the RK4 / RKF45 integrators and the Trace container.
#include <cmath>

#include <gtest/gtest.h>

#include "src/ode/integrator.h"
#include "src/ode/trace.h"

namespace bcert::ode {
namespace {

using linalg::Vector;

// ẋ = -x has exact solution x(t) = x0 e^{-t}.
const VectorField kDecay = [](const Vector& x) { return -1.0 * x; };

// Harmonic oscillator: ẋ = y, ẏ = -x; circles of constant radius.
const VectorField kOscillator = [](const Vector& x) {
  return Vector{x[1], -x[0]};
};

TEST(Trace, BasicAccessors) {
  Trace t;
  t.push_back(0.0, Vector{1.0});
  t.push_back(0.5, Vector{2.0});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.duration(), 0.5);
  EXPECT_DOUBLE_EQ(t.front()[0], 1.0);
  EXPECT_DOUBLE_EQ(t.back()[0], 2.0);
}

TEST(Trace, DownsampleKeepsEndpoints) {
  Trace t;
  for (int i = 0; i <= 100; ++i)
    t.push_back(0.01 * i, Vector{static_cast<double>(i)});
  const Trace d = t.downsampled(11);
  EXPECT_EQ(d.size(), 11u);
  EXPECT_DOUBLE_EQ(d.front()[0], 0.0);
  EXPECT_DOUBLE_EQ(d.back()[0], 100.0);
}

TEST(Trace, DownsampleNoopWhenSmall) {
  Trace t;
  t.push_back(0.0, Vector{1.0});
  t.push_back(1.0, Vector{2.0});
  EXPECT_EQ(t.downsampled(10).size(), 2u);
}

TEST(Rk4, ExponentialDecayAccuracy) {
  IntegrateOptions opts;
  opts.step = 0.01;
  opts.t_end = 2.0;
  const Trace t = integrate_rk4(kDecay, Vector{1.0}, opts);
  EXPECT_NEAR(t.back()[0], std::exp(-2.0), 1e-9);
  EXPECT_NEAR(t.duration(), 2.0, 1e-12);
}

TEST(Rk4, FourthOrderConvergence) {
  // Halving the step should shrink the error by ~2^4.
  auto err_for = [](double h) {
    IntegrateOptions opts;
    opts.step = h;
    opts.t_end = 1.0;
    const Trace t = integrate_rk4(kDecay, Vector{1.0}, opts);
    return std::fabs(t.back()[0] - std::exp(-1.0));
  };
  const double e1 = err_for(0.1);
  const double e2 = err_for(0.05);
  EXPECT_GT(e1 / e2, 10.0);  // comfortably super-cubic
}

TEST(Rk4, OscillatorEnergyNearlyConserved) {
  IntegrateOptions opts;
  opts.step = 0.01;
  opts.t_end = 6.283185307179586;  // one period
  const Trace t = integrate_rk4(kOscillator, Vector{1.0, 0.0}, opts);
  EXPECT_NEAR(t.back()[0], 1.0, 1e-6);
  EXPECT_NEAR(t.back()[1], 0.0, 1e-6);
}

TEST(Rk4, StopPredicateHaltsEarly) {
  IntegrateOptions opts;
  opts.step = 0.01;
  opts.t_end = 100.0;
  opts.stop = [](double, const Vector& x) { return x[0] < 0.5; };
  const Trace t = integrate_rk4(kDecay, Vector{1.0}, opts);
  EXPECT_LT(t.back()[0], 0.5);
  EXPECT_LT(t.duration(), 1.0);  // ln 2 ≈ 0.69
}

TEST(Rkf45, MatchesExactSolution) {
  IntegrateOptions opts;
  opts.step = 0.05;
  opts.t_end = 3.0;
  opts.abs_tol = 1e-10;
  opts.rel_tol = 1e-10;
  const Trace t = integrate_rkf45(kDecay, Vector{2.0}, opts);
  EXPECT_NEAR(t.back()[0], 2.0 * std::exp(-3.0), 1e-7);
}

TEST(Rkf45, AdaptsStepOnOscillator) {
  IntegrateOptions opts;
  opts.step = 0.001;
  opts.t_end = 6.283185307179586;
  opts.abs_tol = 1e-9;
  opts.rel_tol = 1e-9;
  opts.max_step = 0.5;
  const Trace t = integrate_rkf45(kOscillator, Vector{1.0, 0.0}, opts);
  EXPECT_NEAR(t.back()[0], 1.0, 1e-5);
  // Adaptive: should use far fewer steps than fixed 0.001 would (6283).
  EXPECT_LT(t.size(), 3000u);
}

TEST(Rkf45, AgreesWithRk4) {
  // Nonlinear field: ẋ = sin(x) + 0.1.
  const VectorField f = [](const Vector& x) {
    return Vector{std::sin(x[0]) + 0.1};
  };
  IntegrateOptions o1;
  o1.step = 0.001;
  o1.t_end = 5.0;
  IntegrateOptions o2 = o1;
  o2.step = 0.01;
  const Trace a = integrate_rk4(f, Vector{0.3}, o1);
  const Trace b = integrate_rkf45(f, Vector{0.3}, o2);
  EXPECT_NEAR(a.back()[0], b.back()[0], 1e-5);
}

TEST(Rk4Step, SingleStepMatchesTaylor) {
  // For ẋ = x at x=1, one RK4 step of h approximates e^h to O(h^5).
  const VectorField f = [](const Vector& x) { return x; };
  const Vector next = rk4_step(f, Vector{1.0}, 0.1);
  // Local truncation error of RK4 is h^5/5! ≈ 8.3e-8 for h = 0.1.
  EXPECT_NEAR(next[0], std::exp(0.1), 2e-7);
}

}  // namespace
}  // namespace bcert::ode
