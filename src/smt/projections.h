#pragma once
/// \file projections.h
/// \brief Backward (reverse) interval projections for HC4.
///
/// One node of the constraint DAG has a *requirement* r — the set of
/// values it must take for the constraint system to be satisfiable — and
/// `project_node` narrows its children's requirements through the inverse
/// operation. Shared by the tree-walking contractor (`Hc4Contractor`) and
/// the compiled bytecode tape (`Hc4Tape`), so the two paths are
/// projection-for-projection identical and can be differentially tested.
///
/// Every projection is conservative: it may keep spurious points but
/// never discards a real solution. Returning false means some child's
/// requirement became empty — a proof the enclosing box is infeasible.

#include <limits>

#include "src/expr/expr.h"
#include "src/interval/interval.h"

namespace bcert::smt::detail {

using interval::Interval;

inline constexpr double kProjInf = std::numeric_limits<double>::infinity();

/// Refines `target` with the relational quotient num ÷ den (the set
/// {x : x·y ∈ num, y ∈ den}). Uses two-branch extended division and
/// intersects each branch with `target` *before* hulling, which prunes
/// where plain interval division would return entire (e.g. den = [-1,1]
/// with 0 ∉ num). Sound for divisors that touch or straddle zero: when
/// 0 ∈ num and 0 ∈ den no pruning happens (any x solves x·0 = 0 ∈ num).
inline bool refine_quotient(Interval& target, const Interval& num,
                            const Interval& den) {
  Interval q1, q2;
  const int pieces = interval::extended_div(num, den, q1, q2);
  if (pieces == 0) {
    target = Interval::empty();
    return false;
  }
  Interval out = intersect(target, q1);
  if (pieces == 2) out = hull(out, intersect(target, q2));
  target = out;
  return !target.is_empty();
}

/// Projects requirement \p r of a node with operation \p op (and integer
/// payload \p index, the kPow exponent) onto its children \p a and \p b
/// (null for unary ops). Children are narrowed in place; false when a
/// child's requirement becomes empty.
inline bool project_node(expr::Op op, std::int32_t index, const Interval& r,
                         Interval& a, Interval* b) {
  using expr::Op;

  auto refine = [](Interval& target, const Interval& with) {
    target = intersect(target, with);
    return !target.is_empty();
  };

  switch (op) {
    case Op::kAdd:
      if (!refine(a, r - *b)) return false;
      if (!refine(*b, r - a)) return false;
      break;
    case Op::kSub:
      if (!refine(a, r + *b)) return false;
      if (!refine(*b, a - r)) return false;
      break;
    case Op::kMul:
      // a·b ∈ r: extended division keeps this sound when the sibling
      // touches zero (plain r/b is empty for b = [0,0] even though any
      // a satisfies a·0 = 0 ∈ r) and tighter when it straddles zero.
      if (!refine_quotient(a, r, *b)) return false;
      if (!refine_quotient(*b, r, a)) return false;
      break;
    case Op::kDiv:
      // a/b ∈ r ⇒ a ∈ r·b, and b ∈ {y : y·v ∈ a for some v ∈ r}.
      if (!refine(a, r * *b)) return false;
      if (!refine_quotient(*b, a, r)) return false;
      break;
    case Op::kNeg:
      if (!refine(a, -r)) return false;
      break;
    case Op::kSin: {
      // Invertible only on the principal monotone branch.
      const Interval principal(-interval::kPiLower / 2.0,
                               interval::kPiLower / 2.0);
      if (principal.contains(a)) {
        if (!refine(a, interval::asin(r))) return false;
      }
      break;
    }
    case Op::kCos: {
      const Interval pos_branch(0.0, interval::kPiLower);
      const Interval neg_branch(-interval::kPiLower, 0.0);
      if (pos_branch.contains(a)) {
        if (!refine(a, interval::acos(r))) return false;
      } else if (neg_branch.contains(a)) {
        if (!refine(a, -interval::acos(r))) return false;
      }
      break;
    }
    case Op::kTan: {
      const Interval principal(-interval::kPiLower / 2.0,
                               interval::kPiLower / 2.0);
      if (principal.contains(a)) {
        if (!refine(a, interval::atan(r))) return false;
      }
      break;
    }
    case Op::kAtan:
      if (!refine(a, interval::tan(r))) return false;
      break;
    case Op::kExp:
      if (!refine(a, interval::log(r))) return false;
      break;
    case Op::kLog:
      if (!refine(a, interval::exp(r))) return false;
      break;
    case Op::kSqrt:
      if (!refine(a, interval::sqr(intersect(r, {0.0, kProjInf})))) {
        return false;
      }
      break;
    case Op::kSqr: {
      // a² is never negative: clip the requirement to [0, ∞) first and
      // prune outright when it is entirely negative (mirrors kAbs). The
      // two square-root branches are intersected with a before hulling.
      const Interval rr = intersect(r, {0.0, kProjInf});
      if (rr.is_empty()) return false;
      const Interval s = interval::sqrt(rr);
      a = hull(intersect(a, Interval(-s.hi(), -s.lo())), intersect(a, s));
      if (a.is_empty()) return false;
      break;
    }
    case Op::kPow: {
      if (index <= 0) break;  // no projection for non-positive powers
      if (index % 2 == 0) {
        // Even power: same nonnegativity clip as kSqr.
        const Interval rr = intersect(r, {0.0, kProjInf});
        if (rr.is_empty()) return false;
        const Interval s = interval::nth_root(rr, index);
        a = hull(intersect(a, Interval(-s.hi(), -s.lo())), intersect(a, s));
        if (a.is_empty()) return false;
      } else {
        if (!refine(a, interval::nth_root(r, index))) return false;
      }
      break;
    }
    case Op::kTanh:
      if (!refine(a, interval::atanh(r))) return false;
      break;
    case Op::kSigmoid:
      if (!refine(a, interval::logit(r))) return false;
      break;
    case Op::kRelu: {
      if (r.hi() < 0.0) return false;  // relu(x) ≥ 0 always
      if (r.lo() > 0.0) {
        if (!refine(a, r)) return false;
      } else {
        if (!refine(a, Interval(-kProjInf, r.hi()))) return false;
      }
      break;
    }
    case Op::kAbs: {
      const Interval rr = intersect(r, {0.0, kProjInf});
      if (rr.is_empty()) return false;
      a = hull(intersect(a, Interval(-rr.hi(), -rr.lo())), intersect(a, rr));
      if (a.is_empty()) return false;
      break;
    }
    case Op::kMin:
      // Both operands are ≥ min's lower bound.
      if (!refine(a, Interval(r.lo(), kProjInf))) return false;
      if (!refine(*b, Interval(r.lo(), kProjInf))) return false;
      // If one operand cannot attain the min, the other must.
      if (b->lo() > r.hi() && !refine(a, Interval(-kProjInf, r.hi()))) {
        return false;
      }
      if (a.lo() > r.hi() && !refine(*b, Interval(-kProjInf, r.hi()))) {
        return false;
      }
      break;
    case Op::kMax:
      if (!refine(a, Interval(-kProjInf, r.hi()))) return false;
      if (!refine(*b, Interval(-kProjInf, r.hi()))) return false;
      if (b->hi() < r.lo() && !refine(a, Interval(r.lo(), kProjInf))) {
        return false;
      }
      if (a.hi() < r.lo() && !refine(*b, Interval(r.lo(), kProjInf))) {
        return false;
      }
      break;
    case Op::kConst:
    case Op::kVar:
      break;
  }
  return true;
}

}  // namespace bcert::smt::detail
