// Differential verdict harness: >= 500 sampled refutation queries per
// run, answered by the tape backend, the tree backend and a sampled-
// point falsification check — zero disagreements tolerated.
#include <limits>

#include <gtest/gtest.h>

#include "src/scenario/differential.h"
#include "src/scenario/generator.h"

namespace bcert::scenario {
namespace {

TEST(Differential, SamplingIsDeterministic) {
  GeneratorConfig config;
  config.seed = 4;
  config.count = 1;
  config.families = {PlantFamily::kQuadrotor};
  expr::ExprPool pool;
  const core::Scenario s = ScenarioGenerator(pool, config).generate_one(0);
  const auto qa = sample_queries(s, 12, 77, pool);
  const auto qb = sample_queries(s, 12, 77, pool);
  ASSERT_EQ(qa.size(), qb.size());
  for (std::size_t i = 0; i < qa.size(); ++i) {
    EXPECT_EQ(qa[i].label, qb[i].label);
    ASSERT_EQ(qa[i].box.size(), qb[i].box.size());
    for (std::size_t d = 0; d < qa[i].box.size(); ++d) {
      EXPECT_EQ(qa[i].box[d].lo(), qb[i].box[d].lo());
      EXPECT_EQ(qa[i].box[d].hi(), qb[i].box[d].hi());
    }
    ASSERT_EQ(qa[i].conjunction.size(), qb[i].conjunction.size());
    for (std::size_t c = 0; c < qa[i].conjunction.size(); ++c) {
      // Hash-consing over the shared pool makes equal queries equal ids.
      EXPECT_EQ(qa[i].conjunction.constraints[c].lhs,
                qb[i].conjunction.constraints[c].lhs);
    }
  }
}

TEST(Differential, FiveHundredQueriesZeroDisagreements) {
  // 100 queries per zoo family = 500 total (the ISSUE's CI floor).
  constexpr std::size_t kPerFamily = 100;
  GeneratorConfig config;
  config.seed = 9;
  config.count = kPlantFamilyCount;
  expr::ExprPool pool;
  const std::vector<core::Scenario> suite =
      ScenarioGenerator(pool, config).generate();

  std::size_t total = 0, sat = 0, unsat = 0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto queries =
        sample_queries(suite[i], kPerFamily, 1000 + i, pool);
    ASSERT_EQ(queries.size(), kPerFamily);
    const DifferentialReport report = run_differential(pool, queries);
    EXPECT_TRUE(report.ok()) << suite[i].name << ": "
                             << report.disagreements << " disagreements, "
                             << report.export_failures
                             << " export failures";
    for (const VerdictRecord& f : report.failures) {
      ADD_FAILURE() << suite[i].name << " / " << f.label << ": "
                    << f.detail;
    }
    total += report.queries;
    sat += report.sat_queries;
    unsat += report.unsat_queries;
    EXPECT_GT(report.smt2_bytes, 0u) << suite[i].name;
  }
  EXPECT_GE(total, 500u);
  // The query mix must actually exercise both verdicts — an all-SAT or
  // all-UNSAT harness tests one code path and proves little.
  EXPECT_GT(sat, 0u);
  EXPECT_GT(unsat, 0u);
}

TEST(Differential, ExportValidationCatchesMalformedQueries) {
  // A query whose box carries non-finite bounds must be flagged by the
  // well-formedness check, not silently exported.
  GeneratorConfig config;
  config.count = 1;
  config.families = {PlantFamily::kAcc};
  expr::ExprPool pool;
  const core::Scenario s = ScenarioGenerator(pool, config).generate_one(0);
  auto queries = sample_queries(s, 1, 5, pool);
  ASSERT_FALSE(queries.empty());
  queries[0].conjunction.add(
      pool.constant(std::numeric_limits<double>::quiet_NaN()),
      smt::Rel::kGe);
  HarnessOptions opts;
  opts.sample_points = 4;
  const DifferentialReport report = run_differential(pool, queries, opts);
  EXPECT_GT(report.export_failures, 0u);
}

}  // namespace
}  // namespace bcert::scenario
