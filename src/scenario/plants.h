#pragma once
/// \file plants.h
/// \brief The workload zoo: closed-loop NN-controlled plants packaged as
/// ready-to-verify campaign scenarios.
///
/// Everything before this module funneled through the Dubins car and the
/// pendulum example. The zoo widens the workload to the paper's own
/// motivating domain — NN-controlled automotive scenarios (adaptive
/// cruise control; the Dubins car *is* the paper's lane-keeping error
/// model) — plus a quadrotor attitude loop, and finally wires the
/// stateful (CTRNN) and random-feature (ELM) controller families of
/// src/nn into the verification path.
///
/// Every builder returns a complete `core::Scenario`: numeric field,
/// allocation-free in-place field factory, symbolic field over the
/// caller's pool, and the paper's X0 / U region structure. The
/// controllers are fit deterministically from the parameter struct
/// (same params ⇒ bit-identical scenario), and an optional post-fit
/// weight perturbation — driven by the platform-independent SplitMix64
/// stream — gives the scenario generator its NN-weight jitter axis.
///
/// | family        | state                | controller        | dims |
/// |---------------|----------------------|-------------------|------|
/// | acc           | gap error, rel. vel. | ELM (tanh)        | 2    |
/// | quadrotor     | roll angle, rate     | ELM (tanh)        | 2    |
/// | pendulum-elm  | angle, ang. velocity | ELM (tanh)        | 2    |
/// | dubins-elm    | d_err, theta_err     | ELM (tanh)        | 2    |
/// | dubins-ctrnn  | d_err, theta_err, h  | CTRNN (stateful)  | 3    |

#include <cstdint>
#include <cstddef>

#include "src/core/engine.h"
#include "src/linalg/vector.h"

namespace bcert::scenario {

inline constexpr double kPi = 3.14159265358979323846;

/// The zoo's plant families (stable order: the generator's family
/// round-robin and the bench suite mix index into this).
enum class PlantFamily : std::uint8_t {
  kAcc,
  kQuadrotor,
  kPendulumElm,
  kDubinsElm,
  kDubinsCtrnn,
};

inline constexpr std::size_t kPlantFamilyCount = 5;

/// Stable display name ("acc", "quadrotor", "pendulum-elm", ...).
const char* plant_family_name(PlantFamily family);

/// Adaptive cruise control in relative coordinates behind a constant-
/// speed lead vehicle. State x = [e, v]: e = headway error (actual gap
/// minus desired gap), v = closing-speed error (lead minus ego).
///
///   ė = v
///   v̇ = −a·u − c_v·v,   u = h(e, v) ∈ (−1, 1)
///
/// with a = acceleration authority and u distilled from the PD teacher
/// u* = tanh(k_e·e + k_v·v) (accelerate when the gap is too large or
/// opening). U is the complement of the safe rectangle: its lower e face
/// is the collision margin, the upper face losing the lead.
struct AccParams {
  double max_accel = 2.0;   ///< a: acceleration authority (m/s²)
  double drag = 0.4;        ///< c_v: relative-velocity damping
  double k_gap = 0.4;       ///< teacher gap gain k_e
  double k_vel = 1.2;       ///< teacher closing-speed gain k_v
  std::size_t hidden = 12;  ///< ELM hidden neurons
  unsigned controller_seed = 1101;  ///< ELM random-feature seed
  double weight_jitter = 0.0;  ///< post-fit relative |Δw/w| bound, 0 = none
  std::uint64_t jitter_seed = 0;    ///< SplitMix64 stream for the jitter
  core::Rect initial_set{{-0.4, -0.4}, {0.4, 0.4}};
  core::Rect safe_rect{{-2.5, -2.0}, {2.5, 2.0}};
};

core::Scenario make_acc_scenario(expr::ExprPool& pool,
                                 const AccParams& params = {});

/// Quadrotor roll-attitude stabilization. State x = [φ, p]: roll angle
/// and roll rate.
///
///   φ̇ = p
///   ṗ = c_t·u − c_d·p·|p|,   u = h(φ, p) ∈ (−1, 1)
///
/// c_t is the torque authority, c_d·p·|p| the quadratic aerodynamic
/// drag (the |·| puts kAbs on the verification path), and u is
/// distilled from u* = tanh(−k_a·φ − k_r·p).
struct QuadrotorParams {
  double torque = 4.0;      ///< c_t: normalized torque authority
  double drag = 0.5;        ///< c_d: quadratic rate-drag coefficient
  double k_angle = 1.5;     ///< teacher angle gain k_a
  double k_rate = 0.8;      ///< teacher rate gain k_r
  std::size_t hidden = 12;
  unsigned controller_seed = 1102;
  double weight_jitter = 0.0;
  std::uint64_t jitter_seed = 0;
  core::Rect initial_set{{-0.15, -0.15}, {0.15, 0.15}};
  core::Rect safe_rect{{-1.0, -2.0}, {1.0, 2.0}};
};

core::Scenario make_quadrotor_scenario(expr::ExprPool& pool,
                                       const QuadrotorParams& params = {});

/// Inverted pendulum stabilized by an ELM controller (the
/// examples/pendulum_safety.cpp system, promoted into the zoo).
/// State x = [θ, ω]: θ̇ = ω, ω̇ = g·sin θ + c_t·u with
/// u = h(θ, ω) distilled from u* = tanh(−k_a·θ − k_r·ω).
struct PendulumParams {
  double gravity = 1.0;   ///< g: gravity/length ratio
  double torque = 3.0;    ///< c_t: torque gain
  double k_angle = 2.0;   ///< teacher angle gain k_a
  double k_rate = 1.5;    ///< teacher rate gain k_r
  std::size_t hidden = 12;
  unsigned controller_seed = 1103;
  double weight_jitter = 0.0;
  std::uint64_t jitter_seed = 0;
  core::Rect initial_set{{-0.2, -0.2}, {0.2, 0.2}};
  core::Rect safe_rect{{-1.2, -1.5}, {1.2, 1.5}};
};

core::Scenario make_pendulum_scenario(expr::ExprPool& pool,
                                      const PendulumParams& params = {});

/// The paper's lane-keeping case study (§4): Dubins-vehicle error
/// dynamics [d_err, θ_err] under an ELM controller distilled from the
/// proportional teacher u* = tanh(k_d·d + k_θ·θ). Default regions are
/// the paper's §4.3 X0 and U.
struct DubinsElmParams {
  double velocity = 1.0;   ///< V
  double theta_r = 0.0;    ///< reference heading
  double k_d = 0.25;       ///< teacher cross-track gain
  double k_theta = 2.0;    ///< teacher heading gain
  std::size_t hidden = 10;
  unsigned controller_seed = 1104;
  double weight_jitter = 0.0;
  std::uint64_t jitter_seed = 0;
  core::Rect initial_set{{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}};
  core::Rect safe_rect{{-5.0, -(kPi / 2.0 - 0.01)},
                       {5.0, kPi / 2.0 - 0.01}};
};

core::Scenario make_dubins_elm_scenario(expr::ExprPool& pool,
                                        const DubinsElmParams& params = {});

/// The paper's future-work configuration (§5): the same lane-keeping
/// plant under a *stateful* CTRNN controller — the lagged realization
/// of the proportional policy, τ·ḣ = −h + tanh(k_d·d + k_θ·θ), u = h.
/// Augmented state [d_err, θ_err, h]; the hidden dimension is
/// domain-only (unsafe_dims = {1, 1, 0}), so the pipeline additionally
/// proves the flow points inward on the h faces.
struct DubinsCtrnnParams {
  double velocity = 1.0;
  double theta_r = 0.0;
  double k_d = 0.25;
  double k_theta = 2.0;
  double tau = 0.1;   ///< controller lag; LP-infeasible above ≈0.2
  double weight_jitter = 0.0;
  std::uint64_t jitter_seed = 0;
  core::Rect initial_set{{-1.0, -kPi / 16.0, -0.25},
                         {1.0, kPi / 16.0, 0.25}};
  core::Rect safe_rect{{-5.0, -(kPi / 2.0 - 0.01), -1.0},
                       {5.0, kPi / 2.0 - 0.01, 1.0}};
};

core::Scenario make_dubins_ctrnn_scenario(
    expr::ExprPool& pool, const DubinsCtrnnParams& params = {});

}  // namespace bcert::scenario
