#pragma once
/// \file cmaes.h
/// \brief Covariance Matrix Adaptation Evolution Strategy.
///
/// Implements the standard (μ/μ_w, λ)-CMA-ES of Hansen & Ostermeier
/// (2001) with rank-1 + rank-μ covariance updates and cumulative step-
/// size adaptation — the algorithm the paper uses for direct policy
/// search of the NN controller (§4.2, refs [8, 10]). A separable
/// (diagonal-covariance) variant is included for high-dimensional
/// parameter vectors where the full n×n covariance is not warranted.

#include <cstdint>
#include <functional>
#include <vector>

#include "src/linalg/vector.h"

namespace bcert::parallel {
class ThreadPool;
}  // namespace bcert::parallel

namespace bcert::cmaes {

/// Objective to minimize.
using ObjectiveFn = std::function<double(const linalg::Vector&)>;

/// Tuning parameters; zero/negative values mean "use the Hansen default".
struct CmaesOptions {
  std::size_t lambda = 0;     ///< population size (default 4+⌊3 ln n⌋)
  double sigma0 = 0.5;        ///< initial step size
  int max_iterations = 100;
  double tol_fun = 0.0;       ///< stop when best fitness ≤ tol_fun
  double tol_sigma = 1e-12;   ///< stop when sigma collapses
  unsigned seed = 2024;
  bool diagonal_only = false; ///< separable CMA-ES (large n)
  /// Population-evaluation parallelism: 1 = sequential (default, safe
  /// for any objective), 0 = auto (BCERT_THREADS / hardware), N = use N
  /// strands. Values != 1 require a thread-safe objective. Candidates
  /// are always sampled on the calling thread and fitness values are
  /// written by population index, so the optimization trajectory is
  /// byte-identical for a fixed seed at any thread count.
  int eval_threads = 1;
  /// Pool the evaluation strands run on; null = the process-global
  /// pool. The Engine threads its owned pool through here.
  parallel::ThreadPool* pool = nullptr;
  /// Cooperative stop, polled once per generation before sampling. When
  /// it returns true the search stops with CmaesStop::kInterrupted,
  /// keeping the best point found so far — how the falsifier honors job
  /// deadlines and cancellation mid-search.
  std::function<bool()> should_stop;
};

/// Per-iteration report for progress callbacks (e.g. Figure 4 snapshots).
struct CmaesIteration {
  int iteration = 0;
  double best_fitness = 0.0;       ///< best of current population
  double overall_best_fitness = 0.0;
  linalg::Vector best_x;           ///< best of current population
  double sigma = 0.0;
};

using IterationCallback = std::function<void(const CmaesIteration&)>;

/// Why the optimizer stopped.
enum class CmaesStop : std::uint8_t {
  kMaxIterations,
  kTolFun,
  kSigmaCollapse,
  kInterrupted,  ///< CmaesOptions::should_stop fired
};

/// Final report.
struct CmaesResult {
  linalg::Vector best_x;
  double best_fitness = 0.0;
  int iterations = 0;
  CmaesStop stop = CmaesStop::kMaxIterations;
  std::vector<double> fitness_history;  ///< per-iteration population best
};

/// Minimizes \p objective starting from \p x0.
CmaesResult cmaes_minimize(const ObjectiveFn& objective,
                           const linalg::Vector& x0,
                           const CmaesOptions& options = {},
                           const IterationCallback& callback = {});

}  // namespace bcert::cmaes
