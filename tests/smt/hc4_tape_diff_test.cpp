// Differential fuzz harness: the compiled interval bytecode tape vs the
// tree-walking HC4 contractor on randomized expression DAGs and boxes.
//
// Two properties are checked per trial:
//  * equivalence — both backends return the same verdict and
//    *bit-identical* contracted boxes (they execute the same arithmetic
//    in the same order, so even rounding must agree);
//  * soundness — any sampled point of the original box that satisfies
//    the conjunction (in double arithmetic) must survive contraction:
//    the result is not kEmpty and the point lies in the contracted box.
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/expr/expr.h"
#include "src/interval/box.h"
#include "src/smt/hc4.h"

namespace bcert::smt {
namespace {

using expr::ExprId;
using expr::ExprPool;
using interval::Box;
using interval::Interval;
using linalg::Vector;

constexpr int kNumVars = 3;

/// Grows a random DAG over `kNumVars` variables. Built terms stay in the
/// worklist so later operations reuse them — real shared subterms, not a
/// tree — exercising slot aliasing in the tape.
ExprId random_dag(ExprPool& pool, std::mt19937& rng, int num_ops) {
  std::vector<ExprId> terms;
  for (int v = 0; v < kNumVars; ++v) terms.push_back(pool.var(v));
  std::uniform_real_distribution<double> cdist(-3.0, 3.0);
  for (int i = 0; i < 3; ++i) terms.push_back(pool.constant(cdist(rng)));

  auto pick = [&] { return terms[rng() % terms.size()]; };
  for (int i = 0; i < num_ops; ++i) {
    ExprId t = terms.front();
    switch (rng() % 17) {
      case 0: t = pool.add(pick(), pick()); break;
      case 1: t = pool.sub(pick(), pick()); break;
      case 2: t = pool.mul(pick(), pick()); break;
      case 3: t = pool.div(pick(), pick()); break;
      case 4: t = pool.neg(pick()); break;
      case 5: t = pool.sin(pick()); break;
      case 6: t = pool.cos(pick()); break;
      case 7: t = pool.tanh(pick()); break;
      case 8: t = pool.sigmoid(pick()); break;
      case 9: t = pool.sqr(pick()); break;
      case 10: t = pool.abs(pick()); break;
      case 11: t = pool.min(pick(), pick()); break;
      case 12: t = pool.max(pick(), pick()); break;
      case 13:
        t = pool.pow(pick(), static_cast<std::int32_t>(2 + rng() % 3));
        break;
      case 14: t = pool.relu(pick()); break;
      case 15: t = pool.exp(pick()); break;
      case 16: t = pool.sqrt(pick()); break;
    }
    terms.push_back(t);
  }
  return terms.back();
}

Conjunction random_conjunction(ExprPool& pool, std::mt19937& rng) {
  static constexpr Rel kRels[] = {Rel::kLe, Rel::kLt, Rel::kGe, Rel::kGt};
  Conjunction c;
  const int n = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < n; ++i) {
    c.add(random_dag(pool, rng, 4 + static_cast<int>(rng() % 12)),
          kRels[rng() % 4]);
  }
  return c;
}

Box random_box(std::mt19937& rng) {
  std::uniform_real_distribution<double> bdist(-5.0, 5.0);
  std::vector<Interval> dims;
  for (int v = 0; v < kNumVars; ++v) {
    const int shape = static_cast<int>(rng() % 8);
    if (shape == 0) {
      dims.emplace_back(0.0, 0.0);  // exact-zero point dim
    } else if (shape == 1) {
      const double p = bdist(rng);
      dims.emplace_back(p, p);  // degenerate point dim
    } else {
      double lo = bdist(rng), hi = bdist(rng);
      if (lo > hi) std::swap(lo, hi);
      dims.emplace_back(lo, hi);
    }
  }
  return Box(std::move(dims));
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

::testing::AssertionResult boxes_bit_identical(const Box& a, const Box& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "dimension mismatch";
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!bits_equal(a[i].lo(), b[i].lo()) ||
        !bits_equal(a[i].hi(), b[i].hi())) {
      return ::testing::AssertionFailure()
             << "dim " << i << ": tree " << a[i] << " vs tape " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

/// Evaluates \p id at \p x, or nullopt where the real function is
/// undefined (division by zero, log of a non-positive value, square root
/// of a negative). Plain pool.eval would return ±inf/NaN there — e.g.
/// 1/0 = inf "satisfies" a ≥ constraint in double arithmetic — but such
/// points are not real solutions and the contractor may prune them.
std::optional<double> eval_defined(const ExprPool& pool, expr::ExprId id,
                                   const Vector& x,
                                   std::map<expr::ExprId, double>& memo) {
  if (const auto it = memo.find(id); it != memo.end()) return it->second;
  const expr::Node& n = pool.node(id);
  double v = 0.0;
  if (n.op == expr::Op::kConst) {
    v = n.value;
  } else if (n.op == expr::Op::kVar) {
    v = x[static_cast<std::size_t>(n.index)];
  } else {
    const auto a = eval_defined(pool, n.a, x, memo);
    if (!a) return std::nullopt;
    std::optional<double> b;
    if (n.b != expr::kNoExpr) {
      b = eval_defined(pool, n.b, x, memo);
      if (!b) return std::nullopt;
    }
    switch (n.op) {
      case expr::Op::kDiv:
        if (*b == 0.0) return std::nullopt;
        break;
      case expr::Op::kLog:
        if (*a <= 0.0) return std::nullopt;
        break;
      case expr::Op::kSqrt:
        if (*a < 0.0) return std::nullopt;
        break;
      default: break;
    }
    v = pool.eval(id, x);
    if (std::isnan(v)) return std::nullopt;
  }
  memo.emplace(id, v);
  return v;
}

/// True when \p x satisfies every constraint of \p c in double
/// arithmetic and every subterm is defined over the reals at \p x.
bool satisfies(const ExprPool& pool, const Conjunction& c, const Vector& x) {
  std::map<expr::ExprId, double> memo;
  for (const Constraint& k : c.constraints) {
    const auto v = eval_defined(pool, k.lhs, x, memo);
    if (!v) return false;
    switch (k.rel) {
      case Rel::kLe: if (!(*v <= 0.0)) return false; break;
      case Rel::kLt: if (!(*v < 0.0)) return false; break;
      case Rel::kGe: if (!(*v >= 0.0)) return false; break;
      case Rel::kGt: if (!(*v > 0.0)) return false; break;
      case Rel::kEq: if (!(*v == 0.0)) return false; break;
    }
  }
  return true;
}

Vector sample_point(const Box& box, std::mt19937& rng) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  Vector x(box.size());
  for (std::size_t i = 0; i < box.size(); ++i) {
    x[i] = box[i].lo() + u(rng) * (box[i].hi() - box[i].lo());
  }
  return x;
}

TEST(Hc4TapeDiff, SinglePassMatchesTreeBitExactly) {
  std::mt19937 rng(20260731);
  for (int trial = 0; trial < 300; ++trial) {
    ExprPool pool;
    const Conjunction c = random_conjunction(pool, rng);
    const Box original = random_box(rng);

    Hc4Contractor tree(pool, c, Hc4Mode::kTree);
    Hc4Contractor tape(pool, c, Hc4Mode::kTape);
    ASSERT_NE(tape.tape(), nullptr);

    Box tree_box = original, tape_box = original;
    const ContractResult tr = tree.contract(tree_box);
    const ContractResult pr = tape.contract(tape_box);
    ASSERT_EQ(tr, pr) << "trial " << trial;
    EXPECT_TRUE(boxes_bit_identical(tree_box, tape_box))
        << "trial " << trial;
  }
}

TEST(Hc4TapeDiff, FixpointMatchesTreeBitExactly) {
  std::mt19937 rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    ExprPool pool;
    const Conjunction c = random_conjunction(pool, rng);
    const Box original = random_box(rng);

    Hc4Contractor tree(pool, c, Hc4Mode::kTree);
    Hc4Contractor tape(pool, c, Hc4Mode::kTape);

    Box tree_box = original, tape_box = original;
    const ContractResult tr = tree.contract_fixpoint(tree_box, 8, 0.05);
    const ContractResult pr = tape.contract_fixpoint(tape_box, 8, 0.05);
    ASSERT_EQ(tr, pr) << "trial " << trial;
    EXPECT_TRUE(boxes_bit_identical(tree_box, tape_box))
        << "trial " << trial;

    // Certainty verdicts must agree as well (they share forward values).
    if (tr != ContractResult::kEmpty) {
      EXPECT_EQ(tree.certainly_satisfied(tree_box),
                tape.certainly_satisfied(tape_box));
      EXPECT_EQ(tree.certainly_violated(tree_box),
                tape.certainly_violated(tape_box));
    }
  }
}

TEST(Hc4TapeDiff, ContractionNeverDiscardsSatisfyingPoints) {
  std::mt19937 rng(4242);
  int witnesses = 0;
  for (int trial = 0; trial < 200; ++trial) {
    ExprPool pool;
    const Conjunction c = random_conjunction(pool, rng);
    const Box original = random_box(rng);

    // Collect satisfying sample points first.
    std::vector<Vector> keep;
    for (int s = 0; s < 32; ++s) {
      Vector x = sample_point(original, rng);
      if (satisfies(pool, c, x)) keep.push_back(std::move(x));
    }

    for (const Hc4Mode mode : {Hc4Mode::kTape, Hc4Mode::kTree}) {
      Hc4Contractor hc4(pool, c, mode);
      Box box = original;
      const ContractResult r = hc4.contract_fixpoint(box, 8, 0.05);
      if (keep.empty()) continue;
      ASSERT_NE(r, ContractResult::kEmpty)
          << "trial " << trial << ": pruned a box holding a witness";
      for (const Vector& x : keep) {
        EXPECT_TRUE(box.contains(x))
            << "trial " << trial << ": witness fell out of the box";
      }
    }
    witnesses += static_cast<int>(keep.size());
  }
  // The generator must actually produce satisfiable instances for this
  // test to mean anything.
  EXPECT_GT(witnesses, 200);
}

/// Shared-tape workers: contractors built from one tape must behave
/// identically to contractors that compiled their own.
TEST(Hc4TapeDiff, SharedTapePrivateRegisters) {
  std::mt19937 rng(99);
  ExprPool pool;
  const Conjunction c = random_conjunction(pool, rng);
  const auto tape = std::make_shared<const Hc4Tape>(pool, c);

  Hc4Contractor own(pool, c, Hc4Mode::kTape);
  Hc4Contractor shared_a(tape);
  Hc4Contractor shared_b(tape);

  for (int trial = 0; trial < 50; ++trial) {
    const Box original = random_box(rng);
    Box b0 = original, b1 = original, b2 = original;
    const ContractResult r0 = own.contract_fixpoint(b0, 8, 0.05);
    const ContractResult r1 = shared_a.contract_fixpoint(b1, 8, 0.05);
    const ContractResult r2 = shared_b.contract_fixpoint(b2, 8, 0.05);
    ASSERT_EQ(r0, r1);
    ASSERT_EQ(r0, r2);
    EXPECT_TRUE(boxes_bit_identical(b0, b1));
    EXPECT_TRUE(boxes_bit_identical(b0, b2));
  }
}

/// The multi-query cache hands back the same compiled tape for repeated
/// conjunction signatures (same pool, same roots, same relations).
TEST(Hc4TapeDiff, TapeCacheReusesCompiledSchedules) {
  ExprPool pool;
  Conjunction c;
  c.add(pool.add(pool.sqr(pool.var(0)), pool.var(1)), Rel::kLe);
  Conjunction same = c;
  Conjunction other;
  other.add(pool.add(pool.sqr(pool.var(0)), pool.var(1)), Rel::kGe);

  TapeCache cache;
  const auto t1 = cache.get_or_compile(pool, c);
  const auto t2 = cache.get_or_compile(pool, same);
  const auto t3 = cache.get_or_compile(pool, other);
  EXPECT_EQ(t1.get(), t2.get());
  EXPECT_NE(t1.get(), t3.get());
  EXPECT_EQ(cache.size(), 2u);

  // Cached tapes still contract correctly: x² + y ≤ 0 with y ∈ [-4, -1]
  // forces x² ≤ 4, i.e. x ∈ [-2, 2].
  Hc4Contractor hc4(t2);
  Box box = Box::from_bounds({{-3.0, 3.0}, {-4.0, -1.0}});
  EXPECT_EQ(hc4.contract(box), ContractResult::kContracted);
  EXPECT_LE(box[0].hi(), 2.0 + 1e-9);
  EXPECT_GE(box[0].lo(), -2.0 - 1e-9);
}

}  // namespace
}  // namespace bcert::smt
