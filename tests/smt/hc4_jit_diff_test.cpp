// Differential fuzz harness for the native x86-64 HC4 backend: the
// emitted code must be bit-identical to the tape interpreter (and hence
// to the tree walk) on randomized expression DAGs and boxes, including
// rounding, NaN payloads and signed zeros; soundness is re-checked
// against sampled satisfying points. Also unit-tests the SSA IR passes
// (constant folding, hand-built common-subexpression sharing,
// dead-projection pruning), the jit compilation cache, the `jit_compile`
// fault point's degradation to the interpreter, and the dump round-trip
// counts of the tape/IR disassemblers.
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/fault.h"
#include "src/expr/expr.h"
#include "src/interval/box.h"
#include "src/smt/hc4.h"
#include "src/smt/icp_solver.h"
#include "src/smt/jit/exec_arena.h"

namespace bcert::smt {
namespace {

using expr::ExprId;
using expr::ExprPool;
using interval::Box;
using interval::Interval;
using linalg::Vector;

constexpr int kNumVars = 3;

/// Same corpus shape as the scalar tape differential fuzz harness
/// (hc4_tape_diff_test.cpp): random DAGs with real shared subterms.
ExprId random_dag(ExprPool& pool, std::mt19937& rng, int num_ops) {
  std::vector<ExprId> terms;
  for (int v = 0; v < kNumVars; ++v) terms.push_back(pool.var(v));
  std::uniform_real_distribution<double> cdist(-3.0, 3.0);
  for (int i = 0; i < 3; ++i) terms.push_back(pool.constant(cdist(rng)));

  auto pick = [&] { return terms[rng() % terms.size()]; };
  for (int i = 0; i < num_ops; ++i) {
    ExprId t = terms.front();
    switch (rng() % 17) {
      case 0: t = pool.add(pick(), pick()); break;
      case 1: t = pool.sub(pick(), pick()); break;
      case 2: t = pool.mul(pick(), pick()); break;
      case 3: t = pool.div(pick(), pick()); break;
      case 4: t = pool.neg(pick()); break;
      case 5: t = pool.sin(pick()); break;
      case 6: t = pool.cos(pick()); break;
      case 7: t = pool.tanh(pick()); break;
      case 8: t = pool.sigmoid(pick()); break;
      case 9: t = pool.sqr(pick()); break;
      case 10: t = pool.abs(pick()); break;
      case 11: t = pool.min(pick(), pick()); break;
      case 12: t = pool.max(pick(), pick()); break;
      case 13:
        t = pool.pow(pick(), static_cast<std::int32_t>(2 + rng() % 3));
        break;
      case 14: t = pool.relu(pick()); break;
      case 15: t = pool.exp(pick()); break;
      case 16: t = pool.sqrt(pick()); break;
    }
    terms.push_back(t);
  }
  return terms.back();
}

Conjunction random_conjunction(ExprPool& pool, std::mt19937& rng) {
  static constexpr Rel kRels[] = {Rel::kLe, Rel::kLt, Rel::kGe, Rel::kGt};
  Conjunction c;
  const int n = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < n; ++i) {
    c.add(random_dag(pool, rng, 4 + static_cast<int>(rng() % 12)),
          kRels[rng() % 4]);
  }
  return c;
}

Box random_box(std::mt19937& rng) {
  std::uniform_real_distribution<double> bdist(-5.0, 5.0);
  std::vector<Interval> dims;
  for (int v = 0; v < kNumVars; ++v) {
    const int shape = static_cast<int>(rng() % 8);
    if (shape == 0) {
      dims.emplace_back(0.0, 0.0);
    } else if (shape == 1) {
      const double p = bdist(rng);
      dims.emplace_back(p, p);
    } else {
      double lo = bdist(rng), hi = bdist(rng);
      if (lo > hi) std::swap(lo, hi);
      dims.emplace_back(lo, hi);
    }
  }
  return Box(std::move(dims));
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

::testing::AssertionResult boxes_bit_identical(const Box& a, const Box& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "dimension mismatch";
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!bits_equal(a[i].lo(), b[i].lo()) ||
        !bits_equal(a[i].hi(), b[i].hi())) {
      return ::testing::AssertionFailure()
             << "dim " << i << ": tape " << a[i] << " vs jit " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult roots_bit_identical(
    const std::vector<Interval>& a, const std::vector<Interval>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "root count mismatch";
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!bits_equal(a[i].lo(), b[i].lo()) ||
        !bits_equal(a[i].hi(), b[i].hi())) {
      return ::testing::AssertionFailure()
             << "root " << i << ": tape " << a[i] << " vs jit " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

/// Everything below is vacuous on hosts where native emission is
/// unavailable (non-x86-64); the degradation path is covered everywhere.
bool jit_supported() { return jit::ExecMemory::supported(); }

TEST(Hc4JitDiff, SinglePassThreeWayBitIdentical) {
  if (!jit_supported()) GTEST_SKIP() << "no native backend on this host";
  std::mt19937 rng(20260809);
  for (int trial = 0; trial < 300; ++trial) {
    ExprPool pool;
    const Conjunction c = random_conjunction(pool, rng);
    const Box original = random_box(rng);

    Hc4Contractor tree(pool, c, Hc4Mode::kTree);
    Hc4Contractor tape(pool, c, Hc4Mode::kTape);
    Hc4Contractor jit(pool, c, Hc4Mode::kJit);
    ASSERT_NE(jit.jit(), nullptr) << "compilation unexpectedly degraded";

    Box tree_box = original, tape_box = original, jit_box = original;
    const ContractResult rt = tree.contract(tree_box);
    const ContractResult rp = tape.contract(tape_box);
    const ContractResult rj = jit.contract(jit_box);
    ASSERT_EQ(rt, rj) << "trial " << trial;
    ASSERT_EQ(rp, rj) << "trial " << trial;
    EXPECT_TRUE(boxes_bit_identical(tree_box, jit_box)) << "trial " << trial;
    EXPECT_TRUE(boxes_bit_identical(tape_box, jit_box)) << "trial " << trial;
  }
}

TEST(Hc4JitDiff, FixpointCertaintyAndRootsBitIdentical) {
  if (!jit_supported()) GTEST_SKIP() << "no native backend on this host";
  std::mt19937 rng(1729);
  for (int trial = 0; trial < 200; ++trial) {
    ExprPool pool;
    const Conjunction c = random_conjunction(pool, rng);
    const Box original = random_box(rng);

    Hc4Contractor tape(pool, c, Hc4Mode::kTape);
    Hc4Contractor jit(pool, c, Hc4Mode::kJit);
    ASSERT_NE(jit.jit(), nullptr);

    // Forward-only enclosures (the certainty inputs) must match first.
    EXPECT_TRUE(roots_bit_identical(tape.root_values(original),
                                    jit.root_values(original)))
        << "trial " << trial;

    Box tape_box = original, jit_box = original;
    const ContractResult rp = tape.contract_fixpoint(tape_box, 8, 0.05);
    const ContractResult rj = jit.contract_fixpoint(jit_box, 8, 0.05);
    ASSERT_EQ(rp, rj) << "trial " << trial;
    EXPECT_TRUE(boxes_bit_identical(tape_box, jit_box)) << "trial " << trial;
    if (rp != ContractResult::kEmpty) {
      EXPECT_EQ(tape.certainly_satisfied(tape_box),
                jit.certainly_satisfied(jit_box));
      EXPECT_EQ(tape.certainly_violated(tape_box),
                jit.certainly_violated(jit_box));
    }
  }
}

/// Evaluates \p id at \p x, or nullopt where the real function is
/// undefined (same filter as the tape harness — see its doc comment).
std::optional<double> eval_defined(const ExprPool& pool, expr::ExprId id,
                                   const Vector& x,
                                   std::map<expr::ExprId, double>& memo) {
  if (const auto it = memo.find(id); it != memo.end()) return it->second;
  const expr::Node& n = pool.node(id);
  double v = 0.0;
  if (n.op == expr::Op::kConst) {
    v = n.value;
  } else if (n.op == expr::Op::kVar) {
    v = x[static_cast<std::size_t>(n.index)];
  } else {
    const auto a = eval_defined(pool, n.a, x, memo);
    if (!a) return std::nullopt;
    std::optional<double> b;
    if (n.b != expr::kNoExpr) {
      b = eval_defined(pool, n.b, x, memo);
      if (!b) return std::nullopt;
    }
    switch (n.op) {
      case expr::Op::kDiv:
        if (*b == 0.0) return std::nullopt;
        break;
      case expr::Op::kLog:
        if (*a <= 0.0) return std::nullopt;
        break;
      case expr::Op::kSqrt:
        if (*a < 0.0) return std::nullopt;
        break;
      default: break;
    }
    v = pool.eval(id, x);
    if (std::isnan(v)) return std::nullopt;
  }
  memo.emplace(id, v);
  return v;
}

bool satisfies(const ExprPool& pool, const Conjunction& c, const Vector& x) {
  std::map<expr::ExprId, double> memo;
  for (const Constraint& k : c.constraints) {
    const auto v = eval_defined(pool, k.lhs, x, memo);
    if (!v) return false;
    switch (k.rel) {
      case Rel::kLe: if (!(*v <= 0.0)) return false; break;
      case Rel::kLt: if (!(*v < 0.0)) return false; break;
      case Rel::kGe: if (!(*v >= 0.0)) return false; break;
      case Rel::kGt: if (!(*v > 0.0)) return false; break;
      case Rel::kEq: if (!(*v == 0.0)) return false; break;
    }
  }
  return true;
}

Vector sample_point(const Box& box, std::mt19937& rng) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  Vector x(box.size());
  for (std::size_t i = 0; i < box.size(); ++i) {
    x[i] = box[i].lo() + u(rng) * (box[i].hi() - box[i].lo());
  }
  return x;
}

TEST(Hc4JitDiff, ContractionNeverDiscardsSatisfyingPoints) {
  if (!jit_supported()) GTEST_SKIP() << "no native backend on this host";
  std::mt19937 rng(31337);
  int witnesses = 0;
  for (int trial = 0; trial < 200; ++trial) {
    ExprPool pool;
    const Conjunction c = random_conjunction(pool, rng);
    const Box original = random_box(rng);

    std::vector<Vector> keep;
    for (int s = 0; s < 32; ++s) {
      Vector x = sample_point(original, rng);
      if (satisfies(pool, c, x)) keep.push_back(std::move(x));
    }
    if (keep.empty()) continue;

    Hc4Contractor jit(pool, c, Hc4Mode::kJit);
    ASSERT_NE(jit.jit(), nullptr);
    Box box = original;
    const ContractResult r = jit.contract_fixpoint(box, 8, 0.05);
    ASSERT_NE(r, ContractResult::kEmpty)
        << "trial " << trial << ": pruned a box holding a witness";
    for (const Vector& x : keep) {
      EXPECT_TRUE(box.contains(x))
          << "trial " << trial << ": witness fell out of the box";
    }
    witnesses += static_cast<int>(keep.size());
  }
  EXPECT_GT(witnesses, 200);
}

/// Shared-jit workers: contractors sharing one compilation must behave
/// identically to a contractor that compiled its own.
TEST(Hc4JitDiff, SharedJitPrivateRegisters) {
  if (!jit_supported()) GTEST_SKIP() << "no native backend on this host";
  std::mt19937 rng(99);
  ExprPool pool;
  const Conjunction c = random_conjunction(pool, rng);
  const auto jit =
      Hc4Jit::compile(std::make_shared<const Hc4Tape>(pool, c));

  Hc4Contractor own(pool, c, Hc4Mode::kJit);
  Hc4Contractor shared_a(jit);
  Hc4Contractor shared_b(jit);

  for (int trial = 0; trial < 50; ++trial) {
    const Box original = random_box(rng);
    Box b0 = original, b1 = original, b2 = original;
    const ContractResult r0 = own.contract_fixpoint(b0, 8, 0.05);
    const ContractResult r1 = shared_a.contract_fixpoint(b1, 8, 0.05);
    const ContractResult r2 = shared_b.contract_fixpoint(b2, 8, 0.05);
    ASSERT_EQ(r0, r1);
    ASSERT_EQ(r0, r2);
    EXPECT_TRUE(boxes_bit_identical(b0, b1));
    EXPECT_TRUE(boxes_bit_identical(b0, b2));
  }
}

/// The multi-query cache keys compilations by the tape's structural
/// signature: repeated conjunctions share one Hc4Jit (and its tape).
TEST(Hc4JitDiff, TapeCacheReusesCompiledJits) {
  if (!jit_supported()) GTEST_SKIP() << "no native backend on this host";
  ExprPool pool;
  Conjunction c;
  c.add(pool.add(pool.sqr(pool.var(0)), pool.var(1)), Rel::kLe);
  Conjunction same = c;
  Conjunction other;
  other.add(pool.add(pool.sqr(pool.var(0)), pool.var(1)), Rel::kGe);

  TapeCache cache;
  const auto j1 = cache.get_or_compile_jit(pool, c);
  const auto j2 = cache.get_or_compile_jit(pool, same);
  const auto j3 = cache.get_or_compile_jit(pool, other);
  EXPECT_EQ(j1.get(), j2.get());
  EXPECT_NE(j1.get(), j3.get());
  EXPECT_EQ(cache.jit_stats().misses, 2u);
  EXPECT_EQ(cache.jit_stats().hits, 1u);
  // The jit shares the cached tape object, not a recompilation.
  EXPECT_EQ(j1->tape_ptr().get(), cache.get_or_compile(pool, c).get());

  // Cached jits still contract correctly: x² + y ≤ 0 with y ∈ [-4, -1]
  // forces x² ≤ 4, i.e. x ∈ [-2, 2].
  Hc4Contractor hc4(j2);
  Box box = Box::from_bounds({{-3.0, 3.0}, {-4.0, -1.0}});
  EXPECT_EQ(hc4.contract(box), ContractResult::kContracted);
  EXPECT_LE(box[0].hi(), 2.0 + 1e-9);
  EXPECT_GE(box[0].lo(), -2.0 - 1e-9);
}

/// Armed `jit_compile` fault: compile() throws, the contractor degrades
/// to the tape interpreter bit-identically, and the ICP setup counts the
/// rung in DegradationCounters::jit_to_tape.
TEST(Hc4JitDiff, JitCompileFaultDegradesToTape) {
  ASSERT_TRUE(core::FaultRegistry::configure("jit_compile:throw"));
  ExprPool pool;
  Conjunction c;
  c.add(pool.sub(pool.add(pool.sqr(pool.var(0)), pool.sqr(pool.var(1))),
                 pool.constant(1.0)),
        Rel::kLe);

  EXPECT_THROW(
      Hc4Jit::compile(std::make_shared<const Hc4Tape>(pool, c)),
      core::FaultInjected);

  // Direct construction: jit request lands on the tape backend.
  Hc4Contractor degraded(pool, c, Hc4Mode::kJit);
  EXPECT_EQ(degraded.jit(), nullptr);
  ASSERT_NE(degraded.tape(), nullptr);
  Hc4Contractor tape(pool, c, Hc4Mode::kTape);
  Box degraded_box = Box::from_bounds({{-2.0, 2.0}, {-2.0, 2.0}});
  Box tape_box = degraded_box;
  EXPECT_EQ(tape.contract(tape_box), degraded.contract(degraded_box));
  EXPECT_TRUE(boxes_bit_identical(tape_box, degraded_box));

  // Solver setup: the fallback is counted on the degradation ladder.
  core::DegradationCounters counters;
  IcpConfig config;
  config.delta = 1e-2;
  config.threads = 1;
  config.batch_size = 1;
  config.hc4_mode = Hc4Mode::kJit;
  config.degrade = &counters;
  const IcpSolver solver(pool, config);
  const IcpResult r =
      solver.solve(c, Box::from_bounds({{-2.0, 2.0}, {-2.0, 2.0}}));
  EXPECT_TRUE(r.is_sat());
  EXPECT_GT(counters.jit_to_tape.load(), 0u);
  core::FaultRegistry::clear();

  // Disarmed, the same configuration compiles (where the host can).
  if (jit_supported()) {
    Hc4Contractor healthy(pool, c, Hc4Mode::kJit);
    EXPECT_NE(healthy.jit(), nullptr);
  }
}

// --- IR pass unit tests -----------------------------------------------------

TEST(Hc4JitIr, FoldsConstantSubtreesAndKeepsProjections) {
  ExprPool pool;
  Conjunction c;
  // ExprPool's hash-consing folds constant subtrees at intern time with
  // point arithmetic — except division by a constant zero, which it
  // declines. That div (and everything const-valued downstream of it)
  // is exactly what reaches the interval-level fold: here the div folds
  // first, then the add over (folded, leaf-const) cascades.
  const ExprId dz = pool.div(pool.constant(1.0), pool.constant(0.0));
  const ExprId k = pool.add(dz, pool.constant(1.0));
  c.add(pool.sub(pool.mul(pool.var(0), pool.var(1)), k), Rel::kLe);
  const Hc4Tape tape(pool, c);

  ir::Program prog = ir::Program::from_tape(tape);
  const std::size_t before = prog.live_forward();
  prog.fold_constants(tape);
  EXPECT_GE(prog.stats.folded, 2u);
  EXPECT_EQ(prog.live_forward(), before - prog.stats.folded);
  EXPECT_EQ(prog.folded_consts.size(), prog.stats.folded);
  // Backward projections are all retained (their aborts are load-bearing).
  EXPECT_EQ(prog.backward.size(), tape.code().size());
}

TEST(Hc4JitIr, FoldsDivisionByConstantZeroToEmpty) {
  ExprPool pool;
  Conjunction c;
  // 1/0 folds to the empty interval at compile time — the forward sweep
  // must then report infeasibility exactly like the interpreter.
  c.add(pool.sub(pool.div(pool.constant(1.0), pool.constant(0.0)),
                 pool.var(0)),
        Rel::kLe);
  const Hc4Tape tape(pool, c);
  ir::Program prog = ir::Program::from_tape(tape);
  prog.fold_constants(tape);
  EXPECT_GE(prog.stats.folded, 1u);
  bool found_empty = false;
  for (const auto& [slot, value] : prog.folded_consts) {
    found_empty |= value.is_empty();
  }
  EXPECT_TRUE(found_empty);

  if (jit_supported()) {
    Hc4Contractor tape_hc4(pool, c, Hc4Mode::kTape);
    Hc4Contractor jit_hc4(pool, c, Hc4Mode::kJit);
    ASSERT_NE(jit_hc4.jit(), nullptr);
    Box a = Box::from_bounds({{-1.0, 1.0}, {-1.0, 1.0}});
    Box b = a;
    EXPECT_EQ(tape_hc4.contract(a), jit_hc4.contract(b));
    EXPECT_TRUE(boxes_bit_identical(a, b));
  }
}

TEST(Hc4JitIr, SharesHandBuiltStructuralDuplicates) {
  // ExprPool hash-consing makes duplicates unrepresentable in real
  // tapes (the pass is a verified no-op there), so drive the pass with a
  // hand-built program: %2 and %3 compute the same sum.
  ir::Program prog;
  prog.num_slots = 4;
  ir::FwdInstr i2;
  i2.dst = 2; i2.a = 0; i2.b = 1;
  i2.op = expr::Op::kAdd; i2.kind = ir::FwdKind::kAdd;
  ir::FwdInstr i3 = i2;
  i3.dst = 3;
  prog.forward = {i2, i3};
  prog.share_subexpressions();
  EXPECT_EQ(prog.stats.shared, 1u);
  ASSERT_EQ(prog.forward.size(), 2u);
  EXPECT_EQ(prog.forward[0].kind, ir::FwdKind::kAdd);
  EXPECT_EQ(prog.forward[1].kind, ir::FwdKind::kCopy);
  EXPECT_EQ(prog.forward[1].a, 2u);  // copies from the representative

  // And on a pool-built tape the pass must find nothing.
  ExprPool pool;
  Conjunction c;
  c.add(pool.add(pool.mul(pool.var(0), pool.var(1)),
                 pool.mul(pool.var(1), pool.var(0))),
        Rel::kLe);
  const Hc4Tape tape(pool, c);
  ir::Program real = ir::Program::from_tape(tape);
  real.share_subexpressions();
  EXPECT_EQ(real.stats.shared, 0u);
}

TEST(Hc4JitIr, PrunesDeadProjections) {
  ExprPool pool;
  Conjunction c;
  // x^-2 has no inverse projection (project_node declines exp ≤ 0): the
  // backward instruction must demote to the bare requirement check.
  const ExprId x = pool.var(0);
  c.add(pool.pow(x, -2), Rel::kGe);
  // x + 2.5 with the constant interned *after* x, so it lands in the
  // kAdd's second operand: a constant leaf read only by this add, whose
  // leg-2 projection store is elided (intersect + check retained). The
  // first leg is never demotable — leg 2 reads its narrowed output.
  c.add(pool.add(x, pool.constant(2.5)), Rel::kLe);
  const Hc4Tape tape(pool, c);
  ir::Program prog = ir::Program::from_tape(tape);
  prog.prune_dead_projections(tape);
  EXPECT_GE(prog.stats.dead_projections, 1u);
  EXPECT_GE(prog.stats.demoted_stores, 1u);
  bool has_check_only = false, has_demoted = false;
  for (const auto& b : prog.backward) {
    has_check_only |= b.kind == ir::BwdKind::kCheckOnly;
    has_demoted |= b.kind == ir::BwdKind::kAdd && !b.store_b;
  }
  EXPECT_TRUE(has_check_only);
  EXPECT_TRUE(has_demoted);

  if (jit_supported()) {
    Hc4Contractor tape_hc4(pool, c, Hc4Mode::kTape);
    Hc4Contractor jit_hc4(pool, c, Hc4Mode::kJit);
    ASSERT_NE(jit_hc4.jit(), nullptr);
    Box a = Box::from_bounds({{0.1, 4.0}});
    Box b = a;
    EXPECT_EQ(tape_hc4.contract_fixpoint(a, 8, 0.05),
              jit_hc4.contract_fixpoint(b, 8, 0.05));
    EXPECT_TRUE(boxes_bit_identical(a, b));
  }
}

// --- disassembler round-trips -----------------------------------------------

std::size_t count_lines_with_prefix(const std::string& text,
                                    const std::string& prefix) {
  std::size_t count = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) ++count;
  }
  return count;
}

TEST(Hc4JitDump, TapeDumpRoundTripsInstructionCount) {
  std::mt19937 rng(5150);
  for (int trial = 0; trial < 10; ++trial) {
    ExprPool pool;
    const Conjunction c = random_conjunction(pool, rng);
    const Hc4Tape tape(pool, c);
    std::ostringstream out;
    tape.dump(out);
    EXPECT_EQ(count_lines_with_prefix(out.str(), "  %"), tape.code().size())
        << "trial " << trial;
  }
}

TEST(Hc4JitDump, IrDumpRoundTripsLiveCounts) {
  std::mt19937 rng(6021);
  for (int trial = 0; trial < 10; ++trial) {
    ExprPool pool;
    const Conjunction c = random_conjunction(pool, rng);
    const Hc4Tape tape(pool, c);
    ir::Program prog = ir::Program::from_tape(tape);
    prog.optimize(tape);
    std::ostringstream out;
    prog.dump(out, "optimized");
    EXPECT_EQ(count_lines_with_prefix(out.str(), "  f "),
              prog.live_forward())
        << "trial " << trial;
    EXPECT_EQ(count_lines_with_prefix(out.str(), "  b "),
              prog.backward.size())
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace bcert::smt
