#include "src/core/verifier.h"

#include <chrono>
#include <cmath>
#include <fstream>
#include <memory>
#include <random>
#include <stdexcept>

#include "src/expr/derivative.h"
#include "src/smt/smtlib_export.h"

namespace bcert::core {

namespace {

using clock = std::chrono::steady_clock;

double seconds_since(clock::time_point t0) {
  return std::chrono::duration<double>(clock::now() - t0).count();
}

}  // namespace

ode::VectorFieldInPlace BarrierProblem::make_fast_field() const {
  if (sim_field_factory) return sim_field_factory();
  // Wrapper captures sim_field by value (a shared_ptr-like copy of the
  // std::function) so the returned field is self-contained.
  return [f = sim_field](const linalg::Vector& x, linalg::Vector& dx) {
    dx = f(x);
  };
}

bool BarrierProblem::has_invariant_dims() const {
  for (std::size_t i = 0; i < dims(); ++i) {
    if (!dim_unsafe(i)) return true;
  }
  return false;
}

void BarrierProblem::validate() const {
  if (pool == nullptr) {
    throw std::invalid_argument("BarrierProblem: pool is required");
  }
  if (!sim_field) {
    throw std::invalid_argument("BarrierProblem: sim_field is required");
  }
  initial_set.validate();
  safe_rect.validate();
  const std::size_t n = initial_set.dims();
  if (safe_rect.dims() != n || sym_field.size() != n) {
    throw std::invalid_argument("BarrierProblem: dimension mismatch");
  }
  if (!unsafe_dims.empty()) {
    if (unsafe_dims.size() != n) {
      throw std::invalid_argument("BarrierProblem: unsafe_dims size");
    }
    bool any = false;
    for (bool b : unsafe_dims) any = any || b;
    if (!any) {
      throw std::invalid_argument(
          "BarrierProblem: at least one dimension must be unsafe");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (initial_set.lo[i] < safe_rect.lo[i] ||
        initial_set.hi[i] > safe_rect.hi[i]) {
      throw std::invalid_argument(
          "BarrierProblem: X0 must lie inside the safe rectangle");
    }
  }
}

const char* verify_status_name(VerifyStatus s) {
  switch (s) {
    case VerifyStatus::kSafe: return "SAFE";
    case VerifyStatus::kLpInfeasible: return "no-conclusion(LP-infeasible)";
    case VerifyStatus::kMaxCandidateIterations:
      return "no-conclusion(max-candidate-iterations)";
    case VerifyStatus::kLevelSetFailed: return "no-conclusion(level-set)";
    case VerifyStatus::kSolverBudget: return "no-conclusion(solver-budget)";
    case VerifyStatus::kDomainNotInvariant:
      return "no-conclusion(domain-not-invariant)";
  }
  return "?";
}

BarrierVerifier::BarrierVerifier(BarrierProblem problem,
                                 VerifierOptions options)
    : problem_(std::move(problem)), options_(options) {
  problem_.validate();
  // Multi-query ICP: every δ-SAT check in the LP ↔ SMT refinement loop
  // goes through this verifier's pool, and the adaptive-δ re-checks
  // repeat identical (hash-consed) conjunctions, so one shared tape
  // cache lets the solvers reuse compiled HC4 schedules across queries.
  // The cache holds ExprIds of problem_.pool and dies with the verifier,
  // well before the pool.
  if (!options_.icp.tape_cache) {
    options_.icp.tape_cache = std::make_shared<smt::TapeCache>();
  }
  // UNSAT-tree warm-starting (BCERT_ICP_WARM): successive candidates
  // differ only in W's coefficients, so their decrease/level queries
  // share structural signatures and each refutation seeds the next
  // query's frontier from the previous proof's leaf partition. Sound by
  // construction — replayed leaves partition the same search box, and a
  // stale seed silently cold-starts — so verdicts never change.
  if (!options_.icp.unsat_cache) {
    options_.icp.unsat_cache = std::make_shared<smt::UnsatTreeCache>();
  }
}

std::vector<FieldSample> BarrierVerifier::simulate_samples(
    const linalg::Vector& x0) const {
  ode::IntegrateOptions iopts;
  iopts.step = options_.trace_dt;
  iopts.t_end = options_.trace_duration;
  const Rect& domain = problem_.safe_rect;
  // Stop once the state leaves a slightly padded domain — such states
  // are in U and contribute no constraints.
  iopts.stop = [&domain](double, const linalg::Vector& x) {
    for (std::size_t i = 0; i < domain.dims(); ++i) {
      const double pad = 0.05 * (domain.hi[i] - domain.lo[i]);
      if (x[i] < domain.lo[i] - pad || x[i] > domain.hi[i] + pad) return true;
    }
    return false;
  };
  const ode::Trace trace =
      integrate_rk4(problem_.make_fast_field(), x0, iopts);
  return samples_from_trace(trace, problem_.sim_field, domain,
                            options_.samples_per_trace,
                            &problem_.initial_set);
}

std::vector<linalg::Vector> BarrierVerifier::random_initial_states(
    int count, unsigned seed) const {
  std::mt19937 rng(seed);
  const Rect& domain = problem_.safe_rect;
  std::vector<std::uniform_real_distribution<double>> dims;
  dims.reserve(domain.dims());
  for (std::size_t i = 0; i < domain.dims(); ++i) {
    dims.emplace_back(domain.lo[i], domain.hi[i]);
  }
  std::vector<linalg::Vector> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    linalg::Vector x(domain.dims());
    for (std::size_t i = 0; i < domain.dims(); ++i) x[i] = dims[i](rng);
    out.push_back(std::move(x));
  }
  return out;
}

smt::IcpResult BarrierVerifier::check_decrease(const QuadraticForm& w,
                                               double delta) const {
  expr::ExprPool& pool = *problem_.pool;
  const expr::ExprId w_expr = w.to_expr(pool);
  const expr::ExprId lie =
      expr::lie_derivative(pool, w_expr, problem_.sym_field);
  // ∇W·f + γ ≥ 0 — the satisfiability query whose UNSAT proves (3).
  smt::Conjunction decrease;
  decrease.add(pool.add(lie, pool.constant(options_.gamma)), smt::Rel::kGe);

  // x ∈ D \ X0 : search the safe rectangle, excluding X0 (DNF split).
  const smt::Dnf query =
      outside_rect(pool, problem_.initial_set)
          .conjoin(smt::Dnf::single(std::move(decrease)));

  smt::IcpConfig config = options_.icp;
  if (delta > 0.0) config.delta = delta;
  smt::IcpSolver solver(pool, config);
  return solver.solve(query, problem_.safe_rect.as_box());
}

double BarrierVerifier::numeric_lie(const QuadraticForm& w,
                                    const linalg::Vector& x) const {
  return dot(w.gradient(x), problem_.sim_field(x));
}

smt::IcpResult BarrierVerifier::check_initial_contained(
    const QuadraticForm& w, double level) const {
  expr::ExprPool& pool = *problem_.pool;
  smt::Conjunction query;
  // W(x) − ℓ > 0 somewhere in X0 would violate X0 ⊂ L.
  query.add(pool.sub(w.to_expr(pool), pool.constant(level)), smt::Rel::kGt);
  smt::IcpSolver solver(pool, options_.icp);
  return solver.solve(query, problem_.initial_set.as_box());
}

smt::IcpResult BarrierVerifier::check_unsafe_disjoint(const QuadraticForm& w,
                                                      double level) const {
  expr::ExprPool& pool = *problem_.pool;

  // The level set L = {W ≤ ℓ} is bounded (W must be PD to get here);
  // search its padded bounding box intersected with each unsafe
  // halfspace of U = complement(safe_rect).
  const std::optional<Rect> bbox = w.level_set_bounding_box(level);
  if (!bbox) {
    // Not PD — report as a (spurious) SAT so the caller rejects ℓ.
    smt::IcpResult r;
    r.verdict = smt::SatResult::kDeltaSat;
    return r;
  }
  Rect padded = *bbox;
  for (std::size_t i = 0; i < padded.dims(); ++i) {
    const double pad = 1e-6 + 1e-6 * (padded.hi[i] - padded.lo[i]);
    padded.lo[i] -= pad;
    padded.hi[i] += pad;
  }

  smt::Conjunction in_level_set;
  in_level_set.add(pool.sub(w.to_expr(pool), pool.constant(level)),
                   smt::Rel::kLe);
  // Only the unsafe dimensions' halfspaces constitute U.
  smt::Dnf outside;
  for (const Halfspace& hs : complement_halfspaces(problem_.safe_rect)) {
    if (!problem_.dim_unsafe(hs.dim)) continue;
    smt::Conjunction c;
    c.constraints.push_back(halfspace_constraint(pool, hs));
    outside.disjuncts.push_back(std::move(c));
  }
  const smt::Dnf query = outside.conjoin(smt::Dnf::single(in_level_set));

  smt::IcpSolver solver(pool, options_.icp);
  return solver.solve(query, padded.as_box());
}

smt::IcpResult BarrierVerifier::check_domain_invariance() const {
  expr::ExprPool& pool = *problem_.pool;
  smt::IcpSolver solver(pool, options_.icp);

  smt::IcpResult aggregate;
  aggregate.verdict = smt::SatResult::kUnsat;
  for (std::size_t i = 0; i < problem_.dims(); ++i) {
    if (problem_.dim_unsafe(i)) continue;
    for (const int side : {-1, +1}) {
      // On the face x_i = bound, outward flow means side·f_i(x) > 0.
      interval::Box face = problem_.safe_rect.as_box();
      const double bound =
          side > 0 ? problem_.safe_rect.hi[i] : problem_.safe_rect.lo[i];
      face[i] = interval::Interval(bound);
      smt::Conjunction outward;
      const expr::ExprId fi = problem_.sym_field[i];
      outward.add(side > 0 ? fi : pool.neg(fi), smt::Rel::kGt);
      smt::IcpResult r = solver.solve(outward, face);
      aggregate.stats.boxes_processed += r.stats.boxes_processed;
      aggregate.stats.solve_time_s += r.stats.solve_time_s;
      if (r.is_sat()) return r;
      if (r.verdict == smt::SatResult::kUnknown) {
        aggregate.verdict = smt::SatResult::kUnknown;
      }
    }
  }
  return aggregate;
}

std::optional<std::pair<double, double>> BarrierVerifier::level_window(
    const QuadraticForm& w) const {
  if (!w.positive_definite()) return std::nullopt;
  const double lo = w.min_level_containing(problem_.initial_set);
  double hi = std::numeric_limits<double>::infinity();
  for (const Halfspace& hs : complement_halfspaces(problem_.safe_rect)) {
    if (!problem_.dim_unsafe(hs.dim)) continue;
    const std::optional<double> cap = w.max_level_avoiding(hs);
    if (!cap) return std::nullopt;
    hi = std::min(hi, *cap);
  }
  if (!std::isfinite(hi)) return std::nullopt;
  if (!(lo < hi) || lo <= 0.0) return std::nullopt;
  return std::make_pair(lo, hi);
}

void BarrierVerifier::export_queries_smtlib(const QuadraticForm& w,
                                            double level,
                                            const std::string& prefix) const {
  expr::ExprPool& pool = *problem_.pool;
  smt::SmtLibOptions sopts;
  sopts.precision = options_.icp.delta;

  // Condition (5): decrease over D \ X0.
  {
    const expr::ExprId lie =
        expr::lie_derivative(pool, w.to_expr(pool), problem_.sym_field);
    smt::Conjunction decrease;
    decrease.add(pool.add(lie, pool.constant(options_.gamma)), smt::Rel::kGe);
    const smt::Dnf query =
        outside_rect(pool, problem_.initial_set)
            .conjoin(smt::Dnf::single(std::move(decrease)));
    std::ofstream os(prefix + "_decrease.smt2");
    write_smtlib(os, pool, query, problem_.safe_rect.as_box(), sopts);
  }
  // Condition (6): X0 escapes the level set.
  {
    smt::Conjunction query;
    query.add(pool.sub(w.to_expr(pool), pool.constant(level)),
              smt::Rel::kGt);
    std::ofstream os(prefix + "_initial.smt2");
    write_smtlib(os, pool, query, problem_.initial_set.as_box(), sopts);
  }
  // Condition (7): the level set touches U.
  {
    smt::Conjunction in_level_set;
    in_level_set.add(pool.sub(w.to_expr(pool), pool.constant(level)),
                     smt::Rel::kLe);
    const smt::Dnf query = outside_rect(pool, problem_.safe_rect)
                               .conjoin(smt::Dnf::single(in_level_set));
    const std::optional<Rect> bbox = w.level_set_bounding_box(level);
    const Rect search = bbox ? *bbox : problem_.safe_rect;
    std::ofstream os(prefix + "_unsafe.smt2");
    write_smtlib(os, pool, query, search.as_box(), sopts);
  }
}

VerifyStatus BarrierVerifier::check_certificate(const QuadraticForm& w,
                                                double level) const {
  if (!w.positive_definite() || level <= 0.0) {
    return VerifyStatus::kLevelSetFailed;
  }
  const smt::IcpResult decrease = check_decrease(w);
  if (decrease.verdict == smt::SatResult::kUnknown) {
    return VerifyStatus::kSolverBudget;
  }
  if (!decrease.is_unsat()) return VerifyStatus::kMaxCandidateIterations;

  const smt::IcpResult init = check_initial_contained(w, level);
  if (init.verdict == smt::SatResult::kUnknown) {
    return VerifyStatus::kSolverBudget;
  }
  if (!init.is_unsat()) return VerifyStatus::kLevelSetFailed;

  const smt::IcpResult unsafe = check_unsafe_disjoint(w, level);
  if (unsafe.verdict == smt::SatResult::kUnknown) {
    return VerifyStatus::kSolverBudget;
  }
  if (!unsafe.is_unsat()) return VerifyStatus::kLevelSetFailed;

  return VerifyStatus::kSafe;
}

VerifyResult BarrierVerifier::verify() {
  VerifyResult result;
  const auto t_start = clock::now();

  // ---- Seed simulations --------------------------------------------------
  const auto t_seed = clock::now();
  std::vector<FieldSample> samples;
  for (const linalg::Vector& x0 :
       random_initial_states(options_.seed_traces, options_.seed)) {
    const auto s = simulate_samples(x0);
    samples.insert(samples.end(), s.begin(), s.end());
  }
  // Domain-wide positivity anchors (decrease-exempt).
  for (const linalg::Vector& x : random_initial_states(
           options_.positivity_samples, options_.seed + 7919)) {
    samples.push_back({x, problem_.sim_field(x), /*require_decrease=*/false});
  }
  result.timings.simulation_time_s += seconds_since(t_seed);

  // ---- Candidate loop: LP ↔ SMT(5) ---------------------------------------
  const auto t_gen = clock::now();
  std::optional<QuadraticForm> generator;
  // Each refinement iteration re-solves the margin LP with the same
  // variables and all previous rows plus the new counterexample rows —
  // the append-only pattern basis warm-starting is built for. Thread the
  // previous optimal basis into the next solve (BCERT_LP_WARM=0 or
  // SynthesisOptions::warm_start=false reverts to cold starts).
  const bool warm = lp_warm_start_enabled(options_.synthesis);
  lp::LpBasis warm_basis;
  for (int iter = 0; iter < options_.max_candidate_iterations; ++iter) {
    ++result.timings.candidate_iterations;

    const auto t_lp = clock::now();
    SynthesisOptions sopts = options_.synthesis;
    if (warm) sopts.simplex.warm_start = std::move(warm_basis);
    const SynthesisResult synth =
        synthesize_candidate(samples, problem_.dims(), sopts);
    warm_basis = synth.basis;
    result.timings.lp_time_s += seconds_since(t_lp);
    ++result.timings.lp_solves;

    if (!synth.feasible) {
      result.status = VerifyStatus::kLpInfeasible;
      // Surface the binding samples as counterexamples: they locate
      // where the closed loop resists *every* template candidate.
      result.counterexamples = synth.binding_states;
      result.timings.generator_time_s = seconds_since(t_gen);
      result.timings.total_time_s = seconds_since(t_start);
      return result;
    }
    result.lp_margin = synth.margin;
    result.generator = synth.candidate;

    const auto t_smt = clock::now();
    smt::IcpResult check = check_decrease(synth.candidate);
    ++result.timings.smt5_queries;
    // δ-refinement: re-query with tighter δ while the witness is a
    // spurious artifact of interval slack (numeric Lie below −γ).
    double delta = options_.icp.delta;
    while (options_.adaptive_delta &&
           check.verdict == smt::SatResult::kDeltaSat &&
           delta > options_.min_delta &&
           numeric_lie(synth.candidate, check.witness_point()) <
               -options_.gamma) {
      delta *= options_.delta_shrink;
      check = check_decrease(synth.candidate, delta);
      ++result.timings.smt5_queries;
    }
    result.timings.smt5_time_s += seconds_since(t_smt);

    if (check.verdict == smt::SatResult::kUnknown) {
      result.status = VerifyStatus::kSolverBudget;
      result.timings.generator_time_s = seconds_since(t_gen);
      result.timings.total_time_s = seconds_since(t_start);
      return result;
    }
    if (check.is_unsat()) {
      generator = synth.candidate;
      break;
    }

    // CEX: simulate from the witness and extend the sample set.
    const linalg::Vector cex = check.witness_point();
    result.counterexamples.push_back(cex);
    const auto t_sim = clock::now();
    const auto s = simulate_samples(cex);
    result.timings.simulation_time_s += seconds_since(t_sim);
    samples.insert(samples.end(), s.begin(), s.end());
    if (s.empty()) {
      // Witness immediately left the domain; at least pin the point
      // itself so the LP sees the violation.
      samples.push_back({cex, problem_.sim_field(cex)});
    }
  }
  result.timings.generator_time_s = seconds_since(t_gen);

  if (!generator) {
    result.status = VerifyStatus::kMaxCandidateIterations;
    result.timings.total_time_s = seconds_since(t_start);
    return result;
  }

  // ---- Level-set selection + SMT (6) & (7) -------------------------------
  const auto t_level = clock::now();

  // Domain-only dimensions must be flow-invariant, otherwise trajectories
  // could leave the region where the decrease condition was proven.
  if (problem_.has_invariant_dims()) {
    const smt::IcpResult inv = check_domain_invariance();
    if (inv.verdict == smt::SatResult::kUnknown) {
      result.status = VerifyStatus::kSolverBudget;
      result.timings.level_set_time_s = seconds_since(t_level);
      result.timings.total_time_s = seconds_since(t_start);
      return result;
    }
    if (inv.is_sat()) {
      result.status = VerifyStatus::kDomainNotInvariant;
      result.timings.level_set_time_s = seconds_since(t_level);
      result.timings.total_time_s = seconds_since(t_start);
      return result;
    }
  }

  const auto window = level_window(*generator);
  if (!window) {
    result.status = VerifyStatus::kLevelSetFailed;
    result.timings.level_set_time_s = seconds_since(t_level);
    result.timings.total_time_s = seconds_since(t_start);
    return result;
  }
  // Shrink the analytic window slightly so both SMT queries have margin.
  double lo = window->first * (1.0 + options_.level_margin);
  double hi = window->second * (1.0 - options_.level_margin);
  if (!(lo < hi)) {
    result.status = VerifyStatus::kLevelSetFailed;
    result.timings.level_set_time_s = seconds_since(t_level);
    result.timings.total_time_s = seconds_since(t_start);
    return result;
  }

  double level = std::sqrt(lo * hi);  // geometric midpoint first
  bool proved = false;
  for (int iter = 0; iter < options_.max_level_iterations; ++iter) {
    const smt::IcpResult init_check =
        check_initial_contained(*generator, level);
    if (init_check.verdict == smt::SatResult::kUnknown) {
      result.status = VerifyStatus::kSolverBudget;
      break;
    }
    if (init_check.is_sat()) {
      // Some initial state escapes L: raise ℓ.
      lo = level;
      level = std::sqrt(lo * hi);
      continue;
    }
    const smt::IcpResult unsafe_check =
        check_unsafe_disjoint(*generator, level);
    if (unsafe_check.verdict == smt::SatResult::kUnknown) {
      result.status = VerifyStatus::kSolverBudget;
      break;
    }
    if (unsafe_check.is_sat()) {
      // L reaches into U: lower ℓ.
      hi = level;
      level = std::sqrt(lo * hi);
      continue;
    }
    proved = true;
    break;
  }
  result.timings.level_set_time_s = seconds_since(t_level);
  result.timings.total_time_s = seconds_since(t_start);

  if (proved) {
    result.status = VerifyStatus::kSafe;
    result.level = level;
  } else if (result.status != VerifyStatus::kSolverBudget) {
    result.status = VerifyStatus::kLevelSetFailed;
  }
  return result;
}

}  // namespace bcert::core
