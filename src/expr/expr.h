#pragma once
/// \file expr.h
/// \brief Hash-consed arena of symbolic expressions.
///
/// Expressions are immutable DAG nodes stored in an `ExprPool` and
/// referenced by index (`ExprId`). Hash-consing guarantees structural
/// sharing (the same subterm is stored once), which keeps the closed-loop
/// dynamics of a 1000-neuron controller compact and makes memoized
/// evaluation trivial. Construction applies light algebraic
/// simplification (constant folding, additive/multiplicative identities)
/// so the SMT queries stay small.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/linalg/vector.h"

namespace bcert::expr {

/// Index of an expression node inside its pool.
using ExprId = std::uint32_t;

/// Sentinel for "no child".
inline constexpr ExprId kNoExpr = 0xFFFFFFFFu;

/// Operation tag of an expression node.
enum class Op : std::uint8_t {
  kConst,    ///< literal; `value`
  kVar,      ///< variable; `index`
  kAdd,      ///< a + b
  kSub,      ///< a - b
  kMul,      ///< a * b
  kDiv,      ///< a / b
  kNeg,      ///< -a
  kSin,
  kCos,
  kTan,
  kAtan,
  kExp,
  kLog,
  kSqrt,
  kSqr,      ///< a²  (kept distinct from kPow for cheap eval/diff)
  kPow,      ///< aⁿ, integer n in `index`
  kTanh,     ///< MATLAB tansig
  kSigmoid,  ///< logistic 1/(1+e^{-a})
  kRelu,     ///< max(a, 0)
  kAbs,
  kMin,      ///< min(a, b)
  kMax,      ///< max(a, b)
};

/// True for operations with two children.
bool is_binary(Op op);
/// Human-readable operation name (used by the printer and diagnostics).
const char* op_name(Op op);

/// One immutable expression node. Plain data: no invariant beyond what
/// ExprPool enforces at construction.
struct Node {
  Op op = Op::kConst;
  ExprId a = kNoExpr;   ///< first child
  ExprId b = kNoExpr;   ///< second child (binary ops only)
  double value = 0.0;   ///< payload for kConst
  std::int32_t index = 0;  ///< variable index (kVar) or exponent (kPow)
};

/// Arena + hash-consing factory for expression DAGs.
///
/// All ExprIds handed out by a pool are only meaningful with that pool.
class ExprPool {
 public:
  ExprPool();

  std::size_t size() const { return nodes_.size(); }
  const Node& node(ExprId id) const { return nodes_[id]; }

  /// Number of distinct variables referenced so far (max index + 1).
  std::size_t num_vars() const { return num_vars_; }

  // --- leaf constructors -------------------------------------------------
  ExprId constant(double v);
  ExprId var(std::int32_t index);
  /// Convenience constants.
  ExprId zero() { return constant(0.0); }
  ExprId one() { return constant(1.0); }

  // --- operators (with algebraic simplification) --------------------------
  ExprId add(ExprId a, ExprId b);
  ExprId sub(ExprId a, ExprId b);
  ExprId mul(ExprId a, ExprId b);
  ExprId div(ExprId a, ExprId b);
  ExprId neg(ExprId a);
  ExprId sin(ExprId a);
  ExprId cos(ExprId a);
  ExprId tan(ExprId a);
  ExprId atan(ExprId a);
  ExprId exp(ExprId a);
  ExprId log(ExprId a);
  ExprId sqrt(ExprId a);
  ExprId sqr(ExprId a);
  ExprId pow(ExprId a, std::int32_t n);
  ExprId tanh(ExprId a);
  ExprId sigmoid(ExprId a);
  ExprId relu(ExprId a);
  ExprId abs(ExprId a);
  ExprId min(ExprId a, ExprId b);
  ExprId max(ExprId a, ExprId b);

  /// Builds Σ terms (empty sum = 0). More balanced than a left fold,
  /// which keeps DAG depth logarithmic for wide NN layers.
  ExprId sum(const std::vector<ExprId>& terms);

  /// Builds the dot product Σ cᵢ·xᵢ of constants and expressions.
  ExprId affine(const std::vector<double>& coeffs,
                const std::vector<ExprId>& terms, double bias);

  /// True when \p id is the literal \p v.
  bool is_const(ExprId id, double v) const;
  /// True when \p id is any literal.
  bool is_const(ExprId id) const { return node(id).op == Op::kConst; }

  /// Evaluates the expression at a point (memoized over the DAG).
  /// Prefer expr::Evaluator for repeated evaluation.
  double eval(ExprId id, const linalg::Vector& x) const;

  /// Set of variable indices appearing under \p id.
  std::vector<std::int32_t> variables(ExprId id) const;

  /// Number of nodes reachable from \p id (DAG size of the term).
  std::size_t term_size(ExprId id) const;

 private:
  ExprId intern(const Node& n);

  struct NodeKey {
    Op op;
    ExprId a, b;
    double value;
    std::int32_t index;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const;
  };

  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, ExprId, NodeKeyHash> interned_;
  std::size_t num_vars_ = 0;
};

}  // namespace bcert::expr
