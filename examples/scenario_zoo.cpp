// The workload zoo end to end: generate a seeded mixed-plant campaign
// suite, run it through the Engine, and print the verdict table. The
// same binary doubles as a quick smoke of the differential verdict
// harness (three-way tape/tree/sampled-point agreement).
//
//   BCERT_ZOO_SCENARIOS  suite size            (default 10)
//   BCERT_ZOO_SEED       generator seed        (default 1)
//   BCERT_ZOO_QUERIES    differential queries  (default 40)
#include <cstdio>
#include <cstdlib>

#include "src/scenario/differential.h"
#include "src/scenario/generator.h"

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

}  // namespace

int main() {
  using namespace bcert;

  scenario::GeneratorConfig config;
  config.count = static_cast<std::size_t>(env_int("BCERT_ZOO_SCENARIOS", 10));
  config.seed = static_cast<std::uint64_t>(env_int("BCERT_ZOO_SEED", 1));
  config.jitter_templates = true;

  expr::ExprPool pool;
  scenario::ScenarioGenerator generator(pool, config);
  const std::vector<core::Scenario> suite = generator.generate();

  std::printf("workload zoo: %zu scenarios, seed %llu\n\n", suite.size(),
              static_cast<unsigned long long>(config.seed));

  Engine engine;
  const core::CampaignResult result =
      engine.run_campaign(std::span<const core::Scenario>(suite),
                          scenario::zoo_job_defaults());

  std::printf("%-24s %-22s %-10s %9s %9s\n", "scenario", "status",
              "template", "level", "time[s]");
  for (const core::ScenarioOutcome& outcome : result.scenarios) {
    std::printf("%-24s %-22s %-10s %9.4f %9.2f\n", outcome.name.c_str(),
                verify_status_name(outcome.result.status),
                core::template_kind_name(outcome.result.template_kind),
                outcome.result.level, outcome.result.timings.total_time_s);
  }
  std::printf("\n%d/%zu safe, %d failed, %zu quarantined, %.2f s wall "
              "(%.2f scenarios/s)\n",
              result.safe_count, result.scenarios.size(),
              result.failed_count, result.quarantined.size(),
              result.wall_time_s, result.scenarios_per_sec());

  // Differential harness smoke over the first scenarios.
  const std::size_t queries =
      static_cast<std::size_t>(env_int("BCERT_ZOO_QUERIES", 40));
  std::vector<scenario::DifferentialQuery> sampled;
  for (std::size_t i = 0; i < suite.size() && sampled.size() < queries; ++i) {
    const std::size_t want =
        std::min(queries - sampled.size(), std::size_t{8});
    std::vector<scenario::DifferentialQuery> qs = scenario::sample_queries(
        suite[i], want, config.seed + i, pool);
    for (auto& q : qs) sampled.push_back(std::move(q));
  }
  const scenario::DifferentialReport report = scenario::run_differential(
      pool, std::span<const scenario::DifferentialQuery>(sampled));
  std::printf("\ndifferential harness: %zu queries (%zu sat, %zu unsat), "
              "%zu disagreements, %zu export failures, %zu KiB smt2\n",
              report.queries, report.sat_queries, report.unsat_queries,
              report.disagreements, report.export_failures,
              report.smt2_bytes / 1024);
  for (const scenario::VerdictRecord& f : report.failures) {
    std::printf("  FAIL %s: %s\n", f.label.c_str(), f.detail.c_str());
  }
  return report.ok() ? 0 : 1;
}
