#pragma once
/// \file optimizer.h
/// \brief Certified global optimization of expressions over boxes.
///
/// Branch-and-bound with interval bounds: maintains a certified interval
/// [lower, upper] that contains the true global optimum and tightens it
/// until the gap is below a tolerance. Used for level-set selection with
/// non-quadratic generator templates, where `max W over X0` and
/// `min W over a face of the safe rectangle` have no closed form.
///
/// Soundness inherits from the interval layer: the returned enclosure is
/// guaranteed to contain the exact optimum of the real-valued function.

#include <cstdint>

#include "src/expr/eval.h"
#include "src/interval/box.h"

namespace bcert::smt {

/// Optimizer settings.
struct OptimizeConfig {
  double tolerance = 1e-6;       ///< stop when upper-lower ≤ tolerance
  double rel_tolerance = 1e-6;   ///< ... or gap/|optimum| ≤ this
  std::uint64_t max_boxes = 2'000'000;
  double time_limit_s = 60.0;
};

/// Result: a certified enclosure of the optimum and the best point found.
struct OptimizeResult {
  bool converged = false;    ///< gap below tolerance within budget
  double lower = 0.0;        ///< certified lower bound on the optimum
  double upper = 0.0;        ///< certified upper bound on the optimum
  linalg::Vector argmin;     ///< best feasible point found
  std::uint64_t boxes_processed = 0;
  double solve_time_s = 0.0;

  /// Midpoint estimate of the optimum.
  double value() const { return 0.5 * (lower + upper); }
};

/// Certified global minimum of `expr` over `box`.
OptimizeResult minimize(const expr::ExprPool& pool, expr::ExprId expr,
                        const interval::Box& box,
                        const OptimizeConfig& config = {});

/// Certified global maximum of `expr` over `box` (minimize of −expr with
/// the bounds negated back). Takes a mutable pool: the negated root is
/// interned into it.
OptimizeResult maximize(expr::ExprPool& pool, expr::ExprId expr,
                        const interval::Box& box,
                        const OptimizeConfig& config = {});

}  // namespace bcert::smt
