#include "src/core/lp_synthesis.h"

#include <algorithm>

#include "src/core/runtime_config.h"

namespace bcert::core {

bool lp_warm_start_enabled(const SynthesisOptions& opts) {
  switch (RuntimeConfig::active().lp_warm) {
    case ConfigToggle::kOn: return true;
    case ConfigToggle::kOff: return false;
    case ConfigToggle::kAuto: break;  // BCERT_LP_WARM unset
  }
  return opts.warm_start;
}

namespace {
/// Scales a constraint row to unit ∞-norm. Rows are homogeneous
/// inequalities (… ≤ 0), so positive scaling leaves the feasible set of
/// (coefficients, margin) unchanged while keeping the simplex tableau
/// well conditioned — essential once high-degree monomials (|x|⁴ ≈ 625
/// at the domain corners) share rows with O(1) entries.
void normalize_row(linalg::Vector& row) {
  const double scale = row.norm_inf();
  if (scale > 0.0) row /= scale;
}
}  // namespace

std::vector<FieldSample> samples_from_trace(const ode::Trace& trace,
                                            const ode::VectorField& field,
                                            const Rect& domain,
                                            std::size_t max_points,
                                            const Rect* decrease_exclude) {
  const ode::Trace thin = trace.downsampled(max_points);
  std::vector<FieldSample> out;
  out.reserve(thin.size());
  for (std::size_t i = 0; i < thin.size(); ++i) {
    const linalg::Vector& x = thin.state(i);
    if (!domain.contains(x)) continue;
    const bool decrease =
        decrease_exclude == nullptr || !decrease_exclude->contains(x);
    out.push_back({x, field(x), decrease});
  }
  return out;
}

SynthesisResult synthesize_candidate(const std::vector<FieldSample>& samples,
                                     std::size_t dims,
                                     const SynthesisOptions& opts) {
  const std::size_t k = QuadraticForm::basis_size(dims);
  QuadraticForm basis_helper(dims);  // zero form, used for basis math

  // Variables: c_0..c_{k-1} ∈ [−1, 1], margin g ≥ 0. Maximize g.
  lp::LpProblem problem = lp::LpProblem::with_free_vars(k + 1);
  problem.sense = lp::Sense::kMaximize;
  problem.objective[k] = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    problem.lower[i] = -1.0;
    problem.upper[i] = 1.0;
  }
  problem.lower[k] = 0.0;

  for (const FieldSample& s : samples) {
    const double scale = dot(s.x, s.x);
    if (scale < opts.origin_tol) continue;  // requirements vanish at 0

    // Positivity: −Σ c_k m_k(x) + g·scale ≤ 0.
    linalg::Vector pos_row(k + 1);
    for (std::size_t b = 0; b < k; ++b) {
      pos_row[b] = -basis_helper.basis_value(b, s.x);
    }
    pos_row[k] = scale;
    normalize_row(pos_row);
    problem.add_row(std::move(pos_row), lp::RowRel::kLe,
                    opts.rhs_perturbation *
                        static_cast<double>(problem.num_rows() + 1));

    if (!s.require_decrease) continue;  // inside X0: condition (5) exempt

    // Decrease: Σ c_k (∇m_k(x)·f(x)) + g·scale ≤ 0.
    linalg::Vector dec_row(k + 1);
    for (std::size_t b = 0; b < k; ++b) {
      dec_row[b] = dot(basis_helper.basis_gradient(b, s.x), s.fx);
    }
    dec_row[k] = scale;
    normalize_row(dec_row);
    problem.add_row(std::move(dec_row), lp::RowRel::kLe,
                    opts.rhs_perturbation *
                        static_cast<double>(problem.num_rows() + 1));
  }

  const lp::LpSolution lp_sol = lp::solve_lp(problem, opts.simplex);

  SynthesisResult result{false,         QuadraticForm(dims),
                         0.0,           lp_sol.iterations,
                         lp_sol.status, lp_sol.basis,
                         lp_sol.used_warm_start};
  if (lp_sol.status != lp::LpStatus::kOptimal) return result;

  linalg::Vector coeffs(k);
  for (std::size_t i = 0; i < k; ++i) coeffs[i] = lp_sol.x[i];
  result.margin = lp_sol.x[k];
  result.candidate = QuadraticForm(dims, std::move(coeffs));
  result.feasible = result.margin > opts.min_margin;

  // Rank decrease samples by normalized slack under the (possibly
  // degenerate) optimal candidate; the tightest ones bind the margin.
  std::vector<std::pair<double, std::size_t>> slack;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const FieldSample& s = samples[i];
    if (!s.require_decrease) continue;
    const double scale = dot(s.x, s.x);
    if (scale < opts.origin_tol) continue;
    const double lie = dot(result.candidate.gradient(s.x), s.fx);
    slack.emplace_back(-lie / scale, i);
  }
  std::sort(slack.begin(), slack.end());
  const std::size_t keep = std::min<std::size_t>(4, slack.size());
  for (std::size_t i = 0; i < keep; ++i) {
    result.binding_states.push_back(samples[slack[i].second].x);
  }
  return result;
}

PolySynthesisResult synthesize_polynomial_candidate(
    const std::vector<FieldSample>& samples, const MonomialBasis& basis,
    const SynthesisOptions& opts) {
  const std::size_t k = basis.size();

  lp::LpProblem problem = lp::LpProblem::with_free_vars(k + 1);
  problem.sense = lp::Sense::kMaximize;
  problem.objective[k] = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    problem.lower[i] = -1.0;
    problem.upper[i] = 1.0;
  }
  problem.lower[k] = 0.0;

  for (const FieldSample& s : samples) {
    const double scale = dot(s.x, s.x);
    if (scale < opts.origin_tol) continue;

    linalg::Vector pos_row(k + 1);
    for (std::size_t b = 0; b < k; ++b) pos_row[b] = -basis.value(b, s.x);
    pos_row[k] = scale;
    normalize_row(pos_row);
    problem.add_row(std::move(pos_row), lp::RowRel::kLe,
                    opts.rhs_perturbation *
                        static_cast<double>(problem.num_rows() + 1));

    if (!s.require_decrease) continue;

    linalg::Vector dec_row(k + 1);
    for (std::size_t b = 0; b < k; ++b) {
      dec_row[b] = dot(basis.gradient(b, s.x), s.fx);
    }
    dec_row[k] = scale;
    normalize_row(dec_row);
    problem.add_row(std::move(dec_row), lp::RowRel::kLe,
                    opts.rhs_perturbation *
                        static_cast<double>(problem.num_rows() + 1));
  }

  const lp::LpSolution lp_sol = lp::solve_lp(problem, opts.simplex);

  PolySynthesisResult result{false,         PolynomialForm(basis),
                             0.0,           lp_sol.iterations,
                             lp_sol.status, lp_sol.basis,
                             lp_sol.used_warm_start};
  if (lp_sol.status != lp::LpStatus::kOptimal) return result;

  linalg::Vector coeffs(k);
  for (std::size_t i = 0; i < k; ++i) coeffs[i] = lp_sol.x[i];
  result.margin = lp_sol.x[k];
  result.candidate = PolynomialForm(basis, std::move(coeffs));
  result.feasible = result.margin > opts.min_margin;
  return result;
}

}  // namespace bcert::core
