#pragma once
/// \file tape_kernels.h
/// \brief Internal interval kernels shared by the tape engine's scalar
/// and batched sweeps.
///
/// These helpers are the arithmetic core of `Hc4Tape::contract` and of
/// the batched `contract_fixpoint_batch` lanes; the AVX2 translation
/// unit (tape_batch_avx2.cpp) reuses them for its odd-lane tails. They
/// live in one header precisely so every execution path — tree walk,
/// scalar tape, per-lane batch, two-interval AVX2 batch — runs literally
/// the same code on the boundary cases the differential fuzz harness
/// checks (±0, ±inf, NaN, empty intervals).
///
/// Not a public API: include only from src/smt tape implementation files.

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/interval/interval.h"

#if defined(__SSE2__)
#define BCERT_TAPE_SSE2 1
#include <emmintrin.h>
#else
#define BCERT_TAPE_SSE2 0
#endif

namespace bcert::smt::tkern {

using interval::Interval;

/// x · [w, w] for fixed-sign nonzero finite w — bit-for-bit equal to the
/// general operator* (multiplication by a constant is monotone, and
/// mul_ep's 0·∞ = 0 convention is preserved) at half the endpoint work.
inline Interval mul_const(const Interval& x, double w) {
  if (x.is_empty()) return Interval::empty();
  if (x.lo() == 0.0 && x.hi() == 0.0) return Interval(0.0);
  const double p1 = interval::detail::mul_ep(x.lo(), w);
  const double p2 = interval::detail::mul_ep(x.hi(), w);
  return w > 0.0
             ? Interval(interval::prev_float(p1), interval::next_float(p2))
             : Interval(interval::prev_float(p2), interval::next_float(p1));
}

/// r · rec for a reciprocal interval of known sign (never empty, never
/// touching zero). Monotonicity in r collapses the four-product general
/// multiply to one endpoint pair per bound; any ±0 sign discrepancy with
/// the general path is erased by the outward rounding (prev/next_float
/// treat +0 and -0 identically), so results stay bit-identical.
inline Interval mul_rec(const Interval& r, const Interval& rec,
                        bool positive) {
  if (r.lo() == 0.0 && r.hi() == 0.0) return Interval(0.0);
  using interval::detail::mul_ep;
  double lo, hi;
  if (positive) {
    lo = std::min(mul_ep(r.lo(), rec.lo()), mul_ep(r.lo(), rec.hi()));
    hi = std::max(mul_ep(r.hi(), rec.lo()), mul_ep(r.hi(), rec.hi()));
  } else {
    lo = std::min(mul_ep(r.hi(), rec.lo()), mul_ep(r.hi(), rec.hi()));
    hi = std::max(mul_ep(r.lo(), rec.lo()), mul_ep(r.lo(), rec.hi()));
  }
  return {interval::prev_float(lo), interval::next_float(hi)};
}

/// refine_quotient specialized to a target known to be exactly [w, w]:
/// the intersect-and-hull collapses to a membership test (the result is
/// [w, w] again when w lies in a quotient piece, empty otherwise), so
/// the slot needs no write on the surviving path.
inline bool const_quotient_feasible(double w, const Interval& num,
                                    const Interval& den) {
  Interval q1, q2;
  const int pieces = interval::extended_div(num, den, q1, q2);
  return (pieces >= 1 && q1.contains(w)) || (pieces == 2 && q2.contains(w));
}

#if BCERT_TAPE_SSE2
// --- SIMD interval kernels (tape engine only) -------------------------------
// The flat register layout lets the sweeps treat an Interval as one
// two-lane vector [lo, hi]. These kernels are bit-for-bit equal to the
// scalar operations (the differential fuzz suite checks this), including
// the ±0 / ±inf / NaN edges of the outward rounding.

inline __m128d load_iv(const Interval& x) {
  return _mm_set_pd(x.hi(), x.lo());  // lane0 = lo, lane1 = hi
}

inline Interval store_iv(__m128d v) {
  alignas(16) double d[2];
  _mm_store_pd(d, v);
  return Interval(d[0], d[1]);
}

/// [prev_float(lo), next_float(hi)] — branchless vector twin of the
/// scalar helpers: IEEE-754 bit step away from the interval, ±0 mapped
/// to the first subnormal of the step direction, the saturating endpoint
/// (-inf on the lo lane, +inf on the hi lane) and NaN passed through.
inline __m128d outward_pd(__m128d v) {
  const __m128i bits = _mm_castpd_si128(v);
  const __m128i sign = _mm_srli_epi64(bits, 63);  // 0 or 1 per lane
  // Per-lane bit delta: lo lane steps sign?+1:-1, hi lane sign?-1:+1.
  __m128i t = _mm_sub_epi64(_mm_slli_epi64(sign, 1), _mm_set1_epi64x(1));
  const __m128i hi_lane = _mm_set_epi64x(-1, 0);
  const __m128i neg_t = _mm_sub_epi64(_mm_setzero_si128(), t);
  t = _mm_or_si128(_mm_and_si128(hi_lane, neg_t),
                   _mm_andnot_si128(hi_lane, t));
  __m128d stepped = _mm_castsi128_pd(_mm_add_epi64(bits, t));
  // ±0 → smallest subnormal in the step direction.
  const __m128d zero_mask = _mm_cmpeq_pd(v, _mm_setzero_pd());
  const __m128d zero_step = _mm_castsi128_pd(_mm_set_epi64x(
      1, static_cast<long long>(0x8000000000000001ULL)));
  stepped = _mm_or_pd(_mm_and_pd(zero_mask, zero_step),
                      _mm_andnot_pd(zero_mask, stepped));
  // Keep saturating infinities and NaN unchanged.
  const double inf = std::numeric_limits<double>::infinity();
  const __m128d keep = _mm_or_pd(_mm_cmpeq_pd(v, _mm_set_pd(inf, -inf)),
                                 _mm_cmpunord_pd(v, v));
  return _mm_or_pd(_mm_and_pd(keep, v), _mm_andnot_pd(keep, stepped));
}

/// Forward addition (operands may be empty — e.g. sqrt of a negative
/// range upstream — which yields the canonical empty, exactly like
/// operator+).
inline Interval add_iv(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  return store_iv(outward_pd(_mm_add_pd(load_iv(a), load_iv(b))));
}

/// Four-product core of interval::operator*: operands nonempty, neither
/// exactly [0,0]. mul_ep's 0·∞ = 0 convention is reproduced by zeroing
/// each product whose factors include a ±0 lane before the min/max
/// reduction, so no product is ever NaN; the reduction associates the
/// products differently from the scalar std::min/std::max chain, but the
/// only values where that could pick different bits are ±0 pairs, and
/// the outward rounding maps +0 and -0 to the same neighbor.
inline __m128d mul4_pd(__m128d va, __m128d vb) {
  const __m128d zero = _mm_setzero_pd();
  const __m128d vbs = _mm_shuffle_pd(vb, vb, 1);
  const __m128d za = _mm_cmpeq_pd(va, zero);
  const __m128d p14 = _mm_andnot_pd(_mm_or_pd(za, _mm_cmpeq_pd(vb, zero)),
                                    _mm_mul_pd(va, vb));
  const __m128d p23 = _mm_andnot_pd(_mm_or_pd(za, _mm_cmpeq_pd(vbs, zero)),
                                    _mm_mul_pd(va, vbs));
  const __m128d mn = _mm_min_pd(p14, p23);
  const __m128d mx = _mm_max_pd(p14, p23);
  const __m128d lo = _mm_min_pd(mn, _mm_shuffle_pd(mn, mn, 1));
  const __m128d hi = _mm_max_pd(mx, _mm_shuffle_pd(mx, mx, 1));
  return outward_pd(_mm_move_sd(hi, lo));  // lane0 = lo, lane1 = hi
}

/// Forward multiplication, bit-identical to interval::operator*.
inline Interval mul_iv(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  if ((a.lo() == 0.0 && a.hi() == 0.0) || (b.lo() == 0.0 && b.hi() == 0.0)) {
    return Interval(0.0);
  }
  return store_iv(mul4_pd(load_iv(a), load_iv(b)));
}

/// Forward multiplication by the splatted constant \p vw = [w, w]
/// (w nonzero finite, \p negative = w < 0), bit-identical to mul_const:
/// both endpoint products in one mulpd, the zero-endpoint mask standing
/// in for mul_ep, a swap instead of the w<0 endpoint exchange.
inline Interval mul_const_iv(const Interval& x, __m128d vw, bool negative) {
  if (x.is_empty()) return Interval::empty();
  if (x.lo() == 0.0 && x.hi() == 0.0) return Interval(0.0);
  const __m128d vx = load_iv(x);
  __m128d p = _mm_andnot_pd(_mm_cmpeq_pd(vx, _mm_setzero_pd()),
                            _mm_mul_pd(vx, vw));
  if (negative) p = _mm_shuffle_pd(p, p, 1);
  return store_iv(outward_pd(p));
}

/// Forward division, bit-identical to interval::operator/. The hot
/// branch — divisor bounded away from zero — runs reciprocal + the
/// 4-product core in SSE; rec is never empty and never exactly [0,0]
/// (outward rounding cannot land on zero), so operator*'s pre-checks on
/// it are vacuous. Zero-straddling divisors take the scalar extended
/// branches verbatim.
inline Interval div_iv(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  if (b.lo() > 0.0 || b.hi() < 0.0) {
    if (a.lo() == 0.0 && a.hi() == 0.0) return Interval(0.0);
    const __m128d vb = load_iv(b);
    const __m128d rec = outward_pd(
        _mm_div_pd(_mm_set1_pd(1.0), _mm_shuffle_pd(vb, vb, 1)));
    return store_iv(mul4_pd(load_iv(a), rec));
  }
  return a / b;
}

/// target ∩= (r − s), the kAdd projection leg. All operands are nonempty
/// (the backward sweep aborts the moment anything empties), so the
/// scalar empty pre-checks are vacuous and skipped; the max/min operand
/// order and the NaN behavior replicate scalar intersect exactly.
inline bool refine_sub(Interval& target, __m128d r, const Interval& s) {
  const __m128d sv = load_iv(s);
  const __m128d diff =
      outward_pd(_mm_sub_pd(r, _mm_shuffle_pd(sv, sv, 1)));
  const __m128d tv = load_iv(target);
  const __m128d res = _mm_move_sd(_mm_min_pd(tv, diff),
                                  _mm_max_pd(tv, diff));  // [max-lo, min-hi]
  alignas(16) double d[2];
  _mm_store_pd(d, res);
  target = Interval(d[0], d[1]);
  return !(d[0] > d[1]);  // mirrors !is_empty(), NaN-tolerant
}
#endif  // BCERT_TAPE_SSE2

}  // namespace bcert::smt::tkern
