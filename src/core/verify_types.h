#pragma once
/// \file verify_types.h
/// \brief Shared vocabulary of the verification stack: the problem
/// statement, tuning options, template selection and the one unified
/// result type every pipeline produces.
///
/// These types used to live split between `verifier.h` (quadratic) and
/// `poly_verifier.h` (polynomial, with a field-for-field copy of the
/// result struct). The Engine redesign hoists them here so the
/// template-generic `BarrierPipeline` (pipeline.h), the `Engine`
/// (engine.h) and the deprecated verifier shims all speak the same
/// types: one `BarrierProblem`, one `VerifierOptions`, one
/// `VerifyResult`.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/core/fault.h"
#include "src/core/lp_synthesis.h"
#include "src/core/polynomial_form.h"
#include "src/core/quadratic_form.h"
#include "src/core/region.h"
#include "src/expr/expr.h"
#include "src/ode/integrator.h"
#include "src/smt/icp_solver.h"
#include "src/smt/optimizer.h"

namespace bcert::core {

/// The verification problem: a closed-loop system given both numerically
/// (for simulation) and symbolically (for the SMT queries), with the
/// paper's region structure X0 / U = complement(safe_rect) /
/// D = safe_rect \ X0.
struct BarrierProblem {
  ode::VectorField sim_field;            ///< numeric ẋ = f(x)
  std::vector<expr::ExprId> sym_field;   ///< symbolic f, in `pool`
  expr::ExprPool* pool = nullptr;        ///< shared expression pool
  Rect initial_set;                      ///< X0
  Rect safe_rect;                        ///< U is its complement

  /// Optional allocation-free simulation field. Each factory invocation
  /// must return an *independent* field instance (own scratch buffers):
  /// the falsifier and the verifier call it once per thread/rollout to
  /// simulate without touching the allocator. When unset, sim_field is
  /// wrapped (correct, but slower).
  std::function<ode::VectorFieldInPlace()> sim_field_factory;

  /// The fastest simulation field available: sim_field_factory() when
  /// set, otherwise a wrapper around sim_field. The returned field owns
  /// its scratch and must not be shared across threads.
  ode::VectorFieldInPlace make_fast_field() const;

  /// Which dimensions' bounds constitute the unsafe set. Empty means
  /// "all" (the paper's case study). For augmented states — e.g. the
  /// hidden state of a recurrent controller — mark controller dimensions
  /// false: their safe_rect bounds are then treated as an *invariant
  /// domain* instead, and the verifier proves the flow points inward on
  /// those faces (so trajectories provably never leave the region where
  /// the decrease condition was checked).
  std::vector<bool> unsafe_dims;

  /// True when dimension \p i participates in the unsafe set.
  bool dim_unsafe(std::size_t i) const {
    return unsafe_dims.empty() || unsafe_dims[i];
  }
  /// True when some dimension is domain-only (needs invariance proof).
  bool has_invariant_dims() const;

  std::size_t dims() const { return initial_set.dims(); }
  void validate() const;
};

/// Which certificate template the pipeline synthesizes. The quadratic
/// and polynomial pipelines share everything except the level-window
/// strategy and the condition-(7) variant (see pipeline.h).
struct TemplateSpec {
  enum class Kind : std::uint8_t { kQuadratic, kPolynomial };

  Kind kind = Kind::kQuadratic;
  /// Polynomial templates span monomials of total degree 2..max_degree.
  int max_degree = 4;
  /// Certified global-optimizer settings for the polynomial level
  /// window (unused by the quadratic template's analytic window).
  smt::OptimizeConfig optimize;

  static TemplateSpec quadratic() { return {}; }
  static TemplateSpec polynomial(int max_degree = 4,
                                 smt::OptimizeConfig optimize = {}) {
    TemplateSpec spec;
    spec.kind = Kind::kPolynomial;
    spec.max_degree = max_degree;
    spec.optimize = optimize;
    return spec;
  }
};

const char* template_kind_name(TemplateSpec::Kind k);

/// Tuning for the whole procedure.
struct VerifierOptions {
  double gamma = 1e-6;            ///< slack of condition (5), as the paper
  int seed_traces = 10;           ///< initial random simulations
  double trace_duration = 15.0;
  double trace_dt = 0.01;
  std::size_t samples_per_trace = 15;
  /// Positivity-only samples drawn uniformly from the safe rectangle.
  /// Trajectory samples concentrate near the closed loop's attracting
  /// manifold; in augmented state spaces (stateful controllers) that
  /// leaves W unconstrained off-manifold and the LP can return an
  /// indefinite form. Uniform positivity samples restore W > 0 on the
  /// whole domain (they add no decrease rows).
  int positivity_samples = 100;
  int max_candidate_iterations = 20;  ///< LP ↔ SMT(5) refinement loop
  int max_level_iterations = 32;      ///< binary search on ℓ
  double level_margin = 1e-3;         ///< relative shrink of the ℓ window
  unsigned seed = 1;                  ///< RNG seed for initial states
  smt::IcpConfig icp;                 ///< δ-SAT solver settings
  SynthesisOptions synthesis;         ///< LP settings

  /// δ-refinement: a δ-SAT witness of (5) whose *numeric* Lie derivative
  /// is below −γ is spurious (an artifact of interval slack at the
  /// current δ). When enabled, the verifier re-runs the query with a
  /// tighter δ instead of feeding the spurious point back into the LP —
  /// the same workflow as re-invoking dReal with a smaller δ.
  bool adaptive_delta = true;
  double delta_shrink = 0.25;   ///< δ multiplier per refinement
  double min_delta = 1e-7;      ///< refinement floor
};

/// Outcome classes. Only kSafe carries a certificate; the others mirror
/// the "terminates with no conclusion" exits of Figure 1 — plus the
/// Engine-era early exits (cancellation, deadline).
enum class VerifyStatus : std::uint8_t {
  kSafe,
  kLpInfeasible,             ///< no candidate with positive margin
  kMaxCandidateIterations,   ///< CEX loop exhausted
  kLevelSetFailed,           ///< no ℓ window or binary search exhausted
  kSolverBudget,             ///< an SMT query returned UNKNOWN
  kDomainNotInvariant,       ///< flow exits a domain-only face
  kCancelled,                ///< job cancelled via its CancellationToken
  kDeadlineExceeded,         ///< job deadline elapsed mid-pipeline
  kResourceExhausted,        ///< memory quota hit (resource governor)
  kInternalError,            ///< exception crossed the job boundary
};

const char* verify_status_name(VerifyStatus s);

/// Timing columns of Table 1.
struct VerifyTimings {
  int candidate_iterations = 0;  ///< "Avg Num Iterations" contributor
  int lp_solves = 0;
  int smt5_queries = 0;
  double lp_time_s = 0.0;        ///< total LP time
  double smt5_time_s = 0.0;      ///< total SMT-(5) time
  double simulation_time_s = 0.0;
  double generator_time_s = 0.0; ///< total of the candidate loop
  double level_set_time_s = 0.0; ///< ℓ window + SMT (6)/(7)
  double total_time_s = 0.0;

  double avg_lp_time_s() const {
    return lp_solves ? lp_time_s / lp_solves : 0.0;
  }
  double avg_smt5_time_s() const {
    return smt5_queries ? smt5_time_s / smt5_queries : 0.0;
  }
  /// Table 1 "Time Spent in Other Steps".
  double other_time_s() const {
    return total_time_s - generator_time_s - level_set_time_s;
  }

  /// Column-wise accumulation (campaign aggregates).
  void accumulate(const VerifyTimings& other);
};

/// The one verification report, shared by both templates. Exactly one of
/// `generator` / `poly_generator` is set (matching `template_kind`);
/// everything else is template-independent. This replaces the former
/// `PolyVerifyResult` field-for-field copy.
struct VerifyResult {
  VerifyStatus status = VerifyStatus::kMaxCandidateIterations;
  TemplateSpec::Kind template_kind = TemplateSpec::Kind::kQuadratic;
  std::optional<QuadraticForm> generator;       ///< quadratic W candidate
  std::optional<PolynomialForm> poly_generator; ///< polynomial W candidate
  double level = 0.0;                      ///< ℓ (when kSafe)
  double lp_margin = 0.0;                  ///< margin of the final LP
  VerifyTimings timings;
  std::vector<linalg::Vector> counterexamples;  ///< CEX states from (5)
  /// Typed error detail for the failure statuses (kCancelled,
  /// kDeadlineExceeded, kResourceExhausted, kInternalError); ok() for
  /// every analytic outcome.
  Status error;
  /// Degradation-ladder decisions taken while producing this result
  /// (tape→tree, SIMD downgrades, cold starts, LP cold solves, campaign
  /// retries). All-zero on a clean run.
  DegradationReport degradation;

  bool safe() const { return status == VerifyStatus::kSafe; }
  /// W(x) of whichever generator is set; requires one to be set.
  double generator_value(const linalg::Vector& x) const;
  /// Coefficient vector of whichever generator is set.
  const linalg::Vector& generator_coeffs() const;
  bool has_generator() const {
    return generator.has_value() || poly_generator.has_value();
  }
};

}  // namespace bcert::core
