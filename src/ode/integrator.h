#pragma once
/// \file integrator.h
/// \brief Fixed-step RK4 and adaptive RKF45 integrators for autonomous
/// ODEs ẋ = f(x).
///
/// The paper uses MATLAB simulations only to *seed* the LP with sample
/// points; soundness of the final certificate never depends on
/// integration accuracy (the SMT step re-checks everything symbolically).
/// RK4 is the default; RKF45 is provided for stiff-ish NN controllers and
/// for cross-checking integration error in tests.

#include <functional>

#include "src/linalg/vector.h"
#include "src/ode/trace.h"

namespace bcert::ode {

/// Right-hand side of an autonomous ODE.
using VectorField = std::function<linalg::Vector(const linalg::Vector&)>;

/// Early-termination predicate (e.g. "state left the domain").
using StopPredicate = std::function<bool(double, const linalg::Vector&)>;

/// Integration settings.
struct IntegrateOptions {
  double step = 0.01;          ///< RK4 step / RKF45 initial step
  double t_end = 10.0;         ///< simulation horizon
  StopPredicate stop;          ///< optional early stop
  // RKF45 only:
  double abs_tol = 1e-8;
  double rel_tol = 1e-8;
  double min_step = 1e-6;
  double max_step = 0.1;
};

/// Classic fixed-step 4th-order Runge–Kutta from \p x0 at t = 0.
Trace integrate_rk4(const VectorField& f, const linalg::Vector& x0,
                    const IntegrateOptions& opts);

/// Runge–Kutta–Fehlberg 4(5) with step adaptation.
Trace integrate_rkf45(const VectorField& f, const linalg::Vector& x0,
                      const IntegrateOptions& opts);

/// Single RK4 step (exposed for discrete-time cost evaluation in
/// controller training).
linalg::Vector rk4_step(const VectorField& f, const linalg::Vector& x,
                        double h);

}  // namespace bcert::ode
