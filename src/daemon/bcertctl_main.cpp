/// \file bcertctl_main.cpp
/// \brief `bcertctl` — command-line client for the bcertd daemon.
///
/// Usage:
///   bcertctl [--socket PATH] [--connect-timeout S] COMMAND [ARGS]
///
/// Commands:
///   ping                              liveness check
///   stats                             print the daemon's stats JSON
///   submit --seed S --index I [...]   submit one zoo scenario
///   status --job N                    job state (verdict when done)
///   cancel --job N                    cancel a pending/running job
///   drain [--wait]                    graceful drain (--wait: until drained)
///   campaign --seed S --count N [...] submit N scenarios, wait, print
///                                     verdict lines in index order
///   local-campaign --seed S --count N run the same scenarios in-process
///                                     (no daemon) — the differential
///                                     baseline the CI smoke diffs against
///
/// Scenario flags (submit/campaign/local-campaign): --families a,b,...
/// --priority P --deadline-s D --mem-quota-mb M --polynomial-degree K.
///
/// Every request is retried across reconnects: a dropped connection
/// (daemon restart, armed socket_io fault) is not an error, because the
/// daemon keeps finished results fetchable via `status` — the client
/// reconnects and resumes polling. Campaigns therefore complete even
/// under a fault sweep that sheds connections continuously.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/core/runtime_config.h"
#include "src/daemon/client.h"
#include "src/daemon/json.h"
#include "src/daemon/protocol.h"
#include "src/expr/expr.h"
#include "src/scenario/generator.h"

namespace {

using bcert::daemon::Client;
using bcert::daemon::JsonValue;

struct CtlOptions {
  std::string socket_path;
  double connect_timeout_s = 10.0;

  // Scenario / job flags shared by submit, campaign and local-campaign.
  std::uint64_t seed = 1;
  std::uint64_t index = 0;
  std::uint64_t count = 1;
  std::string families;  // comma-separated; empty = generator default
  int priority = 0;
  double deadline_s = 0.0;
  double mem_quota_mb = 0.0;
  int polynomial_degree = 2;
  std::uint64_t job = 0;
  bool wait = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: bcertctl [--socket PATH] [--connect-timeout S] COMMAND ...\n"
      "commands: ping | stats | submit | status | cancel | drain |\n"
      "          campaign | local-campaign   (see file header for flags)\n");
  return 2;
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

/// JSON array fragment for --families "acc,quadrotor".
std::string families_json(const std::string& families) {
  std::string json = "[";
  std::size_t start = 0;
  while (start <= families.size()) {
    std::size_t comma = families.find(',', start);
    if (comma == std::string::npos) comma = families.size();
    if (comma > start) {
      if (json.size() > 1) json += ',';
      json += '"' + families.substr(start, comma - start) + '"';
    }
    start = comma + 1;
  }
  return json + "]";
}

std::string submit_body(const CtlOptions& options, std::uint64_t index) {
  std::string body = "{\"cmd\":\"submit\",\"scenario\":{";
  body += "\"seed\":" + std::to_string(options.seed);
  body += ",\"index\":" + std::to_string(index);
  if (!options.families.empty()) {
    body += ",\"families\":" + families_json(options.families);
  }
  body += ",\"polynomial_degree\":" +
          std::to_string(options.polynomial_degree) + "}";
  if (options.priority != 0) {
    body += ",\"priority\":" + std::to_string(options.priority);
  }
  if (options.deadline_s > 0.0) {
    body += ",\"deadline_s\":" + std::to_string(options.deadline_s);
  }
  if (options.mem_quota_mb > 0.0) {
    body += ",\"mem_quota_mb\":" + std::to_string(options.mem_quota_mb);
  }
  return body + "}";
}

/// Request with reconnect-and-retry: the daemon dropping this
/// connection (fault sweep, restart mid-campaign) is recoverable, so a
/// failed request reconnects and resends. Only repeated total failure
/// to reach the daemon is fatal.
bool rpc(Client& client, const CtlOptions& options, const std::string& body,
         JsonValue& response, std::string* error) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    if (!client.connected() &&
        !client.connect(options.connect_timeout_s, error)) {
      return false;
    }
    if (client.request(body, response, error)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

/// Polls `status` until the job is done; returns its verdict line.
bool wait_for_verdict(Client& client, const CtlOptions& options,
                      std::uint64_t job, std::string& verdict,
                      std::string* error) {
  const std::string body =
      "{\"cmd\":\"status\",\"job\":" + std::to_string(job) + "}";
  while (true) {
    JsonValue response;
    if (!rpc(client, options, body, response, error)) return false;
    if (response.string_or("type", "") == "error") {
      if (error != nullptr) *error = response.string_or("error", "error");
      return false;
    }
    if (response.string_or("state", "") == "done") {
      verdict = response.string_or("verdict", "");
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

int cmd_simple(const CtlOptions& options, const std::string& body) {
  Client client(options.socket_path);
  JsonValue response;
  std::string error;
  if (!rpc(client, options, body, response, &error)) {
    std::fprintf(stderr, "bcertctl: %s\n", error.c_str());
    return 1;
  }
  if (response.string_or("type", "") == "error") {
    std::fprintf(stderr, "bcertctl: %s\n",
                 response.string_or("error", "error").c_str());
    return 1;
  }
  std::printf("%s\n", response.string_or("type", "ok").c_str());
  return 0;
}

int cmd_stats(const CtlOptions& options) {
  Client client(options.socket_path);
  JsonValue response;
  std::string error;
  if (!rpc(client, options, "{\"cmd\":\"stats\"}", response, &error)) {
    std::fprintf(stderr, "bcertctl: %s\n", error.c_str());
    return 1;
  }
  // Re-encode the fields a script wants as grep-able key=value pairs
  // (the raw JSON also went to the daemon log).
  const JsonValue* caches = response.find("caches");
  const JsonValue* jobs = response.find("jobs");
  const JsonValue* snapshots = response.find("snapshots");
  std::printf("draining=%s\n",
              response.bool_or("draining", false) ? "true" : "false");
  if (jobs != nullptr) {
    for (const auto& [key, value] : jobs->members()) {
      if (value.is_number()) {
        std::printf("jobs.%s=%.0f\n", key.c_str(), value.as_number());
      }
    }
  }
  if (caches != nullptr) {
    for (const auto& [cache, fields] : caches->members()) {
      for (const auto& [key, value] : fields.members()) {
        if (value.is_number()) {
          std::printf("caches.%s.%s=%.0f\n", cache.c_str(), key.c_str(),
                      value.as_number());
        }
      }
    }
  }
  if (snapshots != nullptr) {
    std::printf("snapshots.loaded=%s\n",
                snapshots->bool_or("loaded", false) ? "true" : "false");
    std::printf("snapshots.saved=%.0f\n", snapshots->number_or("saved", 0));
    std::printf("snapshots.failed=%.0f\n", snapshots->number_or("failed", 0));
  }
  return 0;
}

int cmd_submit(const CtlOptions& options) {
  Client client(options.socket_path);
  JsonValue response;
  std::string error;
  if (!rpc(client, options, submit_body(options, options.index), response,
           &error)) {
    std::fprintf(stderr, "bcertctl: %s\n", error.c_str());
    return 1;
  }
  if (response.string_or("type", "") != "submitted") {
    std::fprintf(stderr, "bcertctl: %s\n",
                 response.string_or("error", "submit rejected").c_str());
    return 1;
  }
  const auto job = static_cast<std::uint64_t>(response.number_or("job", 0));
  if (!options.wait) {
    std::printf("job=%llu name=%s\n", static_cast<unsigned long long>(job),
                response.string_or("name", "").c_str());
    return 0;
  }
  std::string verdict;
  if (!wait_for_verdict(client, options, job, verdict, &error)) {
    std::fprintf(stderr, "bcertctl: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s\n", verdict.c_str());
  return 0;
}

int cmd_status(const CtlOptions& options) {
  Client client(options.socket_path);
  JsonValue response;
  std::string error;
  const std::string body =
      "{\"cmd\":\"status\",\"job\":" + std::to_string(options.job) + "}";
  if (!rpc(client, options, body, response, &error)) {
    std::fprintf(stderr, "bcertctl: %s\n", error.c_str());
    return 1;
  }
  if (response.string_or("type", "") == "error") {
    std::fprintf(stderr, "bcertctl: %s\n",
                 response.string_or("error", "error").c_str());
    return 1;
  }
  const std::string state = response.string_or("state", "?");
  if (state == "done") {
    std::printf("%s\n", response.string_or("verdict", "").c_str());
  } else {
    std::printf("state=%s\n", state.c_str());
  }
  return 0;
}

int cmd_drain(const CtlOptions& options) {
  Client client(options.socket_path);
  JsonValue response;
  std::string error;
  if (!rpc(client, options, "{\"cmd\":\"drain\"}", response, &error)) {
    std::fprintf(stderr, "bcertctl: %s\n", error.c_str());
    return 1;
  }
  if (!options.wait) {
    std::printf("draining\n");
    return 0;
  }
  // Wait for the drained event — or for the daemon to close/vanish,
  // which equally means the drain finished.
  while (true) {
    JsonValue event;
    if (!client.read_event(event, 120.0, &error)) {
      std::printf("drained\n");
      return 0;
    }
    if (event.string_or("type", "") == "drained") {
      std::printf("drained\n");
      return 0;
    }
  }
}

int cmd_campaign(const CtlOptions& options) {
  Client client(options.socket_path);
  std::string error;
  std::vector<std::uint64_t> job_ids(options.count, 0);
  for (std::uint64_t i = 0; i < options.count; ++i) {
    JsonValue response;
    if (!rpc(client, options, submit_body(options, i), response, &error)) {
      std::fprintf(stderr, "bcertctl: submit %llu: %s\n",
                   static_cast<unsigned long long>(i), error.c_str());
      return 1;
    }
    if (response.string_or("type", "") != "submitted") {
      std::fprintf(stderr, "bcertctl: submit %llu: %s\n",
                   static_cast<unsigned long long>(i),
                   response.string_or("error", "rejected").c_str());
      return 1;
    }
    job_ids[i] = static_cast<std::uint64_t>(response.number_or("job", 0));
  }
  for (std::uint64_t i = 0; i < options.count; ++i) {
    std::string verdict;
    if (!wait_for_verdict(client, options, job_ids[i], verdict, &error)) {
      std::fprintf(stderr, "bcertctl: job %llu: %s\n",
                   static_cast<unsigned long long>(job_ids[i]),
                   error.c_str());
      return 1;
    }
    std::printf("%s\n", verdict.c_str());
  }
  return 0;
}

/// The in-process differential baseline: same specs, same generator,
/// fresh Engine, no daemon — prints the exact verdict lines the daemon
/// path must reproduce.
int cmd_local_campaign(const CtlOptions& options) {
  bcert::expr::ExprPool pool;
  bcert::Engine engine;
  for (std::uint64_t i = 0; i < options.count; ++i) {
    bcert::daemon::ScenarioSpec spec;
    spec.seed = options.seed;
    spec.index = i;
    spec.polynomial_degree = options.polynomial_degree;
    if (!options.families.empty()) {
      // Reuse the protocol parser so family names behave identically.
      std::string spec_json = "{\"seed\":" + std::to_string(options.seed) +
                              ",\"index\":" + std::to_string(i) +
                              ",\"families\":" +
                              families_json(options.families) + "}";
      JsonValue value;
      std::string parse_error;
      if (!JsonValue::parse(spec_json, value, &parse_error) ||
          !bcert::daemon::parse_scenario_spec(value, spec, &parse_error)) {
        std::fprintf(stderr, "bcertctl: %s\n", parse_error.c_str());
        return 1;
      }
      spec.polynomial_degree = options.polynomial_degree;
    }
    bcert::scenario::ScenarioGenerator generator(pool,
                                                 spec.generator_config());
    bcert::core::Scenario scenario =
        generator.generate_one(static_cast<std::size_t>(i));
    bcert::JobOptions job_options = bcert::scenario::zoo_job_defaults();
    if (scenario.certificate.has_value()) {
      job_options.certificate = *scenario.certificate;
    }
    job_options.deadline_s = options.deadline_s;
    job_options.mem_quota_bytes =
        static_cast<std::size_t>(options.mem_quota_mb * 1024.0 * 1024.0);
    const bcert::core::VerifyResult result =
        engine.verify(scenario.problem, job_options);
    std::printf("%s\n",
                bcert::daemon::verdict_line(spec.name(), result).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CtlOptions options;
  options.socket_path = bcert::core::RuntimeConfig::active().daemon_socket;

  std::string command;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    auto take_u64 = [&](std::uint64_t& out) {
      if (value == nullptr || !parse_u64(value, out)) return false;
      ++i;
      return true;
    };
    auto take_double = [&](double& out) {
      if (value == nullptr || !parse_double(value, out)) return false;
      ++i;
      return true;
    };
    if (std::strcmp(arg, "--socket") == 0 && value != nullptr) {
      options.socket_path = value;
      ++i;
    } else if (std::strcmp(arg, "--connect-timeout") == 0) {
      if (!take_double(options.connect_timeout_s)) return usage();
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!take_u64(options.seed)) return usage();
    } else if (std::strcmp(arg, "--index") == 0) {
      if (!take_u64(options.index)) return usage();
    } else if (std::strcmp(arg, "--count") == 0) {
      if (!take_u64(options.count)) return usage();
    } else if (std::strcmp(arg, "--job") == 0) {
      if (!take_u64(options.job)) return usage();
    } else if (std::strcmp(arg, "--families") == 0 && value != nullptr) {
      options.families = value;
      ++i;
    } else if (std::strcmp(arg, "--priority") == 0) {
      double p = 0.0;
      if (!take_double(p)) return usage();
      options.priority = static_cast<int>(p);
    } else if (std::strcmp(arg, "--deadline-s") == 0) {
      if (!take_double(options.deadline_s)) return usage();
    } else if (std::strcmp(arg, "--mem-quota-mb") == 0) {
      if (!take_double(options.mem_quota_mb)) return usage();
    } else if (std::strcmp(arg, "--polynomial-degree") == 0) {
      std::uint64_t degree = 0;
      if (!take_u64(degree)) return usage();
      options.polynomial_degree = static_cast<int>(degree);
    } else if (std::strcmp(arg, "--wait") == 0) {
      options.wait = true;
    } else if (arg[0] != '-' && command.empty()) {
      command = arg;
    } else {
      return usage();
    }
  }

  if (command == "ping") return cmd_simple(options, "{\"cmd\":\"ping\"}");
  if (command == "stats") return cmd_stats(options);
  if (command == "submit") return cmd_submit(options);
  if (command == "status") return cmd_status(options);
  if (command == "cancel") {
    return cmd_simple(options, "{\"cmd\":\"cancel\",\"job\":" +
                                   std::to_string(options.job) + "}");
  }
  if (command == "drain") return cmd_drain(options);
  if (command == "campaign") return cmd_campaign(options);
  if (command == "local-campaign") return cmd_local_campaign(options);
  return usage();
}
