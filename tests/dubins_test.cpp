// Tests for the Dubins-car case study: paths/errors, vehicle simulation,
// error dynamics (numeric & symbolic agreement), and controller training.
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "src/dubins/error_dynamics.h"
#include "src/dubins/path.h"
#include "src/dubins/training.h"
#include "src/dubins/vehicle.h"
#include "src/expr/eval.h"

namespace bcert::dubins {
namespace {

using linalg::Vector;
constexpr double kPi = 3.14159265358979323846;

TEST(Angles, WrapAngle) {
  EXPECT_NEAR(wrap_angle(0.0), 0.0, 1e-15);
  EXPECT_NEAR(wrap_angle(2.0 * kPi + 0.3), 0.3, 1e-12);
  EXPECT_NEAR(wrap_angle(-2.0 * kPi - 0.3), -0.3, 1e-12);
  EXPECT_NEAR(wrap_angle(kPi), kPi, 1e-12);        // pi maps to pi
  EXPECT_NEAR(wrap_angle(3.0 * kPi), kPi, 1e-12);
}

TEST(Angles, HeadingConvention) {
  // Paper convention: θ clockwise from +y. Along +y → 0, along +x → π/2.
  EXPECT_NEAR(heading_of(0.0, 1.0), 0.0, 1e-15);
  EXPECT_NEAR(heading_of(1.0, 0.0), kPi / 2.0, 1e-15);
  EXPECT_NEAR(heading_of(-1.0, 0.0), -kPi / 2.0, 1e-15);
}

TEST(Path, RejectsDegenerate) {
  EXPECT_THROW(PiecewiseLinearPath({{0.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearPath({{1.0, 1.0}, {1.0, 1.0}}),
               std::invalid_argument);
}

TEST(Path, LengthOfKnownPath) {
  PiecewiseLinearPath p({{0.0, 0.0}, {3.0, 0.0}, {3.0, 4.0}});
  EXPECT_NEAR(p.length(), 7.0, 1e-12);
}

TEST(Path, StraightPathErrorSigns) {
  // Straight path along +y (θ_r = 0). Vehicle left of the path is -x
  // side?? Travel direction is +y; "left" of travel is -x... no: facing
  // +y, left hand points to -x in screen coords where +x is right.
  const PiecewiseLinearPath p = PiecewiseLinearPath::straight(0.0);
  // Vehicle at x = +2 (right of travel direction): distance negative.
  const PathError right = p.error(2.0, 0.0, 0.0);
  EXPECT_NEAR(right.distance, -2.0, 1e-9);
  // Vehicle at x = -2 (left): positive.
  const PathError left = p.error(-2.0, 0.0, 0.0);
  EXPECT_NEAR(left.distance, 2.0, 1e-9);
  // Aligned heading → zero angle error.
  EXPECT_NEAR(right.angle, 0.0, 1e-12);
  // Vehicle rotated clockwise by 0.2 → θ_err = θ_r − θ_v = −0.2.
  EXPECT_NEAR(p.error(0.0, 0.0, 0.2).angle, -0.2, 1e-12);
}

TEST(Path, NearestPointOnSegments) {
  PiecewiseLinearPath p({{0.0, 0.0}, {10.0, 0.0}});
  const PathError e = p.error(5.0, 3.0, kPi / 2.0);
  EXPECT_NEAR(e.nearest.x, 5.0, 1e-12);
  EXPECT_NEAR(e.nearest.y, 0.0, 1e-12);
  EXPECT_NEAR(std::fabs(e.distance), 3.0, 1e-12);
  // Beyond the end: clamps to the last waypoint.
  const PathError off = p.error(12.0, 0.0, kPi / 2.0);
  EXPECT_NEAR(off.nearest.x, 10.0, 1e-12);
}

TEST(Path, TangentAngleOfDiagonalSegment) {
  PiecewiseLinearPath p({{0.0, 0.0}, {1.0, 1.0}});
  const PathError e = p.error(0.5, 0.5, 0.0);
  EXPECT_NEAR(e.tangent_angle, kPi / 4.0, 1e-12);
}

TEST(Vehicle, StraightLineMotion) {
  // Zero steering, heading +y: vehicle travels straight up.
  const SteeringController zero = [](double, double) { return 0.0; };
  const PiecewiseLinearPath path = PiecewiseLinearPath::straight(0.0);
  SimOptions opts;
  opts.velocity = 1.0;
  opts.dt = 0.1;
  opts.steps = 100;
  const ClosedLoopTrace t =
      simulate_path_following(path, zero, {0.0, 0.0, 0.0}, opts);
  EXPECT_EQ(t.size(), 101u);
  EXPECT_NEAR(t[100].state.y, 10.0, 1e-9);
  EXPECT_NEAR(t[100].state.x, 0.0, 1e-9);
}

TEST(Vehicle, SaturationApplied) {
  const SteeringController big = [](double, double) { return 50.0; };
  const PiecewiseLinearPath path = PiecewiseLinearPath::straight(0.0);
  SimOptions opts;
  opts.steps = 3;
  const ClosedLoopTrace t =
      simulate_path_following(path, big, {0.0, 0.0, 0.0}, opts);
  for (const auto& s : t.samples) EXPECT_LE(s.u, opts.u_max);
}

TEST(Vehicle, ProportionalTeacherTracksStraightPath) {
  const PiecewiseLinearPath path = PiecewiseLinearPath::straight(0.0);
  SimOptions opts;
  opts.velocity = 1.0;
  opts.dt = 0.05;
  opts.steps = 2000;
  // Start 3 units right of the path with aligned heading.
  const ClosedLoopTrace t = simulate_path_following(
      path, proportional_teacher(), {3.0, 0.0, 0.0}, opts);
  EXPECT_LT(std::fabs(t.samples.back().error.distance), 0.1);
  EXPECT_LT(std::fabs(t.samples.back().error.angle), 0.05);
}

TEST(ErrorDynamics, SimplifiesToVSinTheta) {
  // For any constant θ_r the ḋ expression equals V sin(θ_err).
  nn::FeedforwardNet net = nn::FeedforwardNet::single_hidden(2, 4, 1);
  std::mt19937 rng(3);
  net.randomize(rng);
  for (double theta_r : {0.0, 0.7, -1.2}) {
    const ErrorModel model{2.5, theta_r};
    const auto f = closed_loop_field(model, net);
    for (double th : {-1.0, -0.2, 0.0, 0.4, 1.3}) {
      const Vector dx = f(Vector{0.7, th});
      EXPECT_NEAR(dx[0], 2.5 * std::sin(th), 1e-12) << theta_r;
    }
  }
}

TEST(ErrorDynamics, ThetaDotIsMinusU) {
  nn::FeedforwardNet net = nn::FeedforwardNet::single_hidden(2, 4, 1);
  std::mt19937 rng(7);
  net.randomize(rng);
  const ErrorModel model{1.0, 0.0};
  const auto f = closed_loop_field(model, net);
  const Vector x{1.5, -0.3};
  EXPECT_NEAR(f(x)[1], -net.forward(x)[0], 1e-15);
}

TEST(ErrorDynamics, SymbolicMatchesNumeric) {
  nn::FeedforwardNet net = nn::FeedforwardNet::single_hidden(2, 10, 1);
  std::mt19937 rng(11);
  net.randomize(rng, 1.5);
  const ErrorModel model{1.0, 0.3};
  const auto f_num = closed_loop_field(model, net);

  expr::ExprPool pool;
  const auto f_sym = closed_loop_field_expr(model, net, pool);
  expr::Evaluator ev(pool, f_sym);

  std::uniform_real_distribution<double> dd(-5.0, 5.0), dt(-1.5, 1.5);
  for (int i = 0; i < 200; ++i) {
    const Vector x{dd(rng), dt(rng)};
    const Vector num = f_num(x);
    const auto sym = ev.eval(x);
    EXPECT_NEAR(sym[0], num[0], 1e-10);
    EXPECT_NEAR(sym[1], num[1], 1e-10);
  }
}

TEST(ErrorDynamics, RejectsWrongControllerShape) {
  nn::FeedforwardNet bad = nn::FeedforwardNet::single_hidden(3, 4, 1);
  EXPECT_THROW(closed_loop_field({1.0, 0.0}, bad), std::invalid_argument);
}

TEST(Training, CostPenalizesDeviation) {
  const PiecewiseLinearPath path = PiecewiseLinearPath::straight(0.0);
  SimOptions opts;
  opts.steps = 50;
  const ClosedLoopTrace on_path = simulate_path_following(
      path, proportional_teacher(), {0.0, 0.0, 0.0}, opts);
  const ClosedLoopTrace off_path = simulate_path_following(
      path, proportional_teacher(), {4.0, 0.0, 1.0}, opts);
  EXPECT_LT(path_following_cost(on_path, path),
            path_following_cost(off_path, path));
}

TEST(Training, ShortPolicySearchImproves) {
  // A tiny CMA-ES run (not the paper's full budget) must reduce the cost
  // below the random-initialization cost.
  TrainOptions opts;
  opts.hidden_neurons = 6;
  opts.iterations = 12;
  opts.population = 24;
  opts.sim.velocity = 1.0;
  opts.sim.dt = 0.2;
  opts.sim.steps = 150;
  opts.seed = 5;
  const PiecewiseLinearPath path({{0.0, 0.0}, {10.0, 8.0}, {22.0, 12.0}});
  std::vector<double> history;
  const TrainResult r = train_controller(
      path, opts, [&](const TrainingSnapshot& s) {
        history.push_back(s.best_cost);
      });
  ASSERT_EQ(history.size(), 12u);
  EXPECT_LT(r.best_cost, history.front());
  // The trained controller must produce bounded steering.
  const double u = r.controller.forward(Vector{1.0, 0.1})[0];
  EXPECT_GT(u, -1.0);
  EXPECT_LT(u, 1.0);
}

TEST(Training, DistilledControllerMatchesTeacher) {
  const auto teacher = proportional_teacher();
  const nn::FeedforwardNet net = distill_controller(teacher, 40);
  std::mt19937 rng(41);
  std::uniform_real_distribution<double> dd(-5.0, 5.0), dt(-1.5, 1.5);
  for (int i = 0; i < 300; ++i) {
    const double d = dd(rng), th = dt(rng);
    EXPECT_NEAR(net.forward(Vector{d, th})[0], teacher(d, th), 0.08);
  }
}

// Property: error dynamics of the closed loop with the teacher are
// contracting toward the path from anywhere in the domain.
class TeacherConvergence : public ::testing::TestWithParam<int> {};

TEST_P(TeacherConvergence, ErrorStateConverges) {
  std::mt19937 rng(GetParam() * 53 + 1);
  std::uniform_real_distribution<double> dd(-4.0, 4.0), dt(-1.3, 1.3);
  const nn::FeedforwardNet net = distill_controller(proportional_teacher(),
                                                    20, 77);
  const ErrorModel model{1.0, 0.0};
  const auto f = closed_loop_field(model, net);
  ode::IntegrateOptions iopts;
  iopts.step = 0.02;
  iopts.t_end = 40.0;
  const Vector x0{dd(rng), dt(rng)};
  const ode::Trace t = integrate_rk4(f, x0, iopts);
  EXPECT_LT(std::fabs(t.back()[0]), 0.2) << "d_err did not converge";
  EXPECT_LT(std::fabs(t.back()[1]), 0.1) << "theta_err did not converge";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TeacherConvergence, ::testing::Range(0, 10));

}  // namespace
}  // namespace bcert::dubins
