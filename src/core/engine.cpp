#include "src/core/engine.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "src/core/report.h"

namespace bcert::core {

namespace {

using clock = std::chrono::steady_clock;

/// Minimal JSON string escaping for caller-supplied scenario names.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options),
      tape_cache_(std::make_shared<smt::TapeCache>(
          options.tape_cache_entries)),
      unsat_cache_(std::make_shared<smt::UnsatTreeCache>(
          options.unsat_cache_entries)),
      pool_(static_cast<std::size_t>(
          parallel::resolve_thread_count(options.threads))) {}

VerifyResult Engine::run_job(const BarrierProblem& problem,
                             const JobOptions& options, JobState* state,
                             clock::time_point submitted) {
  // Wire the Engine-owned infrastructure into the pipeline. Caller-set
  // caches win (a job may want isolation); absent ones get the shared
  // stores so structurally repeated scenarios reuse compiled tapes,
  // UNSAT partitions and LP bases across the whole campaign.
  VerifierOptions verify = options.verify;
  if (!verify.icp.tape_cache) verify.icp.tape_cache = tape_cache_;
  if (!verify.icp.unsat_cache) verify.icp.unsat_cache = unsat_cache_;

  PipelineHooks hooks;
  if (state != nullptr) hooks.cancel = &state->cancel;
  hooks.pool = &pool_;
  if (options.deadline_s > 0.0) {
    hooks.deadline =
        submitted + std::chrono::duration_cast<clock::duration>(
                        std::chrono::duration<double>(options.deadline_s));
    hooks.has_deadline = true;
  }
  hooks.on_progress = options.on_progress;

  const BasisKey key{static_cast<int>(options.certificate.kind),
                     options.certificate.kind == TemplateSpec::Kind::kQuadratic
                         ? 2
                         : options.certificate.max_degree,
                     problem.dims()};
  lp::LpBasis basis;
  if (options_.share_lp_basis) {
    std::lock_guard<std::mutex> lock(basis_mutex_);
    const auto it = warm_bases_.find(key);
    if (it != warm_bases_.end()) basis = it->second;
    hooks.warm_basis_io = &basis;
  }

  VerifyResult result;
  if (options.certificate.kind == TemplateSpec::Kind::kQuadratic) {
    BarrierPipeline<QuadraticForm> pipeline(problem, std::move(verify),
                                            options.certificate);
    result = pipeline.run(std::move(hooks));
  } else {
    BarrierPipeline<PolynomialForm> pipeline(problem, std::move(verify),
                                             options.certificate);
    result = pipeline.run(std::move(hooks));
  }

  if (options_.share_lp_basis) {
    std::lock_guard<std::mutex> lock(basis_mutex_);
    warm_bases_[key] = std::move(basis);
  }
  return result;
}

VerifyResult Engine::verify(const BarrierProblem& problem,
                            const JobOptions& options) {
  ++jobs_submitted_;
  return run_job(problem, options, nullptr, clock::now());
}

JobHandle Engine::submit(BarrierProblem problem, JobOptions options) {
  ++jobs_submitted_;
  auto state = std::make_shared<JobState>();
  const clock::time_point submitted = clock::now();
  // The task holds the state shared_ptr: a dropped handle cannot leave
  // the running job with a dangling cancellation token.
  state->future =
      pool_
          .submit([this, state, submitted, problem = std::move(problem),
                   options = std::move(options)]() mutable {
            return run_job(problem, options, state.get(), submitted);
          })
          .share();
  return JobHandle(std::move(state));
}

CampaignResult Engine::run_campaign(std::span<const Scenario> scenarios,
                                    const JobOptions& defaults) {
  CampaignResult out;
  out.scenarios.reserve(scenarios.size());
  const clock::time_point t0 = clock::now();

  // Submit everything up front: scenarios pipeline through the pool
  // workers while this thread collects results in order.
  std::vector<JobHandle> handles;
  handles.reserve(scenarios.size());
  for (const Scenario& s : scenarios) {
    handles.push_back(submit(s.problem, defaults));
  }
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    ScenarioOutcome outcome;
    outcome.name = scenarios[i].name;
    outcome.result = handles[i].get();
    out.aggregate.accumulate(outcome.result.timings);
    if (outcome.result.safe()) ++out.safe_count;
    out.scenarios.push_back(std::move(outcome));
  }
  out.wall_time_s =
      std::chrono::duration<double>(clock::now() - t0).count();
  return out;
}

CampaignResult Engine::run_campaign(std::span<const BarrierProblem> problems,
                                    const JobOptions& defaults) {
  std::vector<Scenario> scenarios;
  scenarios.reserve(problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    scenarios.push_back({"scenario-" + std::to_string(i), problems[i]});
  }
  return run_campaign(std::span<const Scenario>(scenarios), defaults);
}

FalsificationResult Engine::falsify(const BarrierProblem& problem,
                                    FalsifierOptions options) {
  if (options.pool == nullptr) options.pool = &pool_;
  Falsifier falsifier(problem, options);
  return falsifier.search();
}

std::string CampaignResult::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\n  \"scenarios\": [";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \""
       << json_escape(scenarios[i].name) << "\", \"result\": ";
    write_result_json(os, scenarios[i].result);
    os << '}';
  }
  os << "\n  ],\n";
  os << "  \"safe_count\": " << safe_count << ",\n";
  os << "  \"wall_time_s\": " << wall_time_s << ",\n";
  os << "  \"scenarios_per_sec\": " << scenarios_per_sec() << ",\n";
  os << "  \"aggregate\": {\n";
  os << "    \"candidate_iterations\": " << aggregate.candidate_iterations
     << ",\n";
  os << "    \"lp_solves\": " << aggregate.lp_solves << ",\n";
  os << "    \"lp_time_s\": " << aggregate.lp_time_s << ",\n";
  os << "    \"smt5_queries\": " << aggregate.smt5_queries << ",\n";
  os << "    \"smt5_time_s\": " << aggregate.smt5_time_s << ",\n";
  os << "    \"simulation_time_s\": " << aggregate.simulation_time_s
     << ",\n";
  os << "    \"generator_time_s\": " << aggregate.generator_time_s << ",\n";
  os << "    \"level_set_time_s\": " << aggregate.level_set_time_s << ",\n";
  os << "    \"total_time_s\": " << aggregate.total_time_s << "\n";
  os << "  }\n}\n";
  return os.str();
}

}  // namespace bcert::core
