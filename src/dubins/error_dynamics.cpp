#include "src/dubins/error_dynamics.h"

#include <cmath>
#include <stdexcept>

namespace bcert::dubins {

ode::VectorField closed_loop_field(const ErrorModel& model,
                                   const nn::FeedforwardNet& controller) {
  if (controller.num_inputs() != 2 || controller.num_outputs() != 1) {
    throw std::invalid_argument(
        "closed_loop_field: controller must map (d_err, theta_err) -> u");
  }
  const double v = model.velocity;
  const double tr = model.theta_r;
  const nn::FeedforwardNet net = controller;  // own a copy
  return [v, tr, net](const linalg::Vector& x) {
    const double theta_err = x[1];
    const double u = net.forward(x)[0];
    linalg::Vector dx(2);
    dx[0] = -v * std::sin(tr - theta_err) * std::cos(tr) +
            v * std::cos(tr - theta_err) * std::sin(tr);
    dx[1] = -u;
    return dx;
  };
}

ode::VectorFieldInPlace closed_loop_field_inplace(
    const ErrorModel& model, const nn::FeedforwardNet& controller) {
  if (controller.num_inputs() != 2 || controller.num_outputs() != 1) {
    throw std::invalid_argument(
        "closed_loop_field_inplace: controller must map "
        "(d_err, theta_err) -> u");
  }
  const double v = model.velocity;
  const double tr = model.theta_r;
  // Mutable captures = per-instance scratch; the factory hands each
  // caller (thread) its own.
  return [v, tr, net = controller, scratch = nn::ForwardScratch{},
          u = linalg::Vector{}](const linalg::Vector& x,
                                linalg::Vector& dx) mutable {
    const double theta_err = x[1];
    net.forward_inplace(x, u, scratch);
    dx.resize(2);
    dx[0] = -v * std::sin(tr - theta_err) * std::cos(tr) +
            v * std::cos(tr - theta_err) * std::sin(tr);
    dx[1] = -u[0];
  };
}

std::vector<expr::ExprId> closed_loop_field_expr(
    const ErrorModel& model, const nn::FeedforwardNet& controller,
    expr::ExprPool& pool) {
  if (controller.num_inputs() != 2 || controller.num_outputs() != 1) {
    throw std::invalid_argument(
        "closed_loop_field_expr: controller must map 2 inputs -> 1 output");
  }
  const expr::ExprId d = pool.var(0);
  const expr::ExprId th = pool.var(1);
  const expr::ExprId v = pool.constant(model.velocity);
  const expr::ExprId tr = pool.constant(model.theta_r);

  // ḋ_err, exactly as printed in the paper (§4.1.3).
  const expr::ExprId angle = pool.sub(tr, th);
  const expr::ExprId d_dot = pool.add(
      pool.neg(pool.mul(pool.mul(v, pool.sin(angle)), pool.cos(tr))),
      pool.mul(pool.mul(v, pool.cos(angle)), pool.sin(tr)));

  // θ̇_err = −u with u = h(d_err, θ_err).
  const expr::ExprId u = controller.to_expr(pool, {d, th})[0];
  const expr::ExprId th_dot = pool.neg(u);

  return {d_dot, th_dot};
}

}  // namespace bcert::dubins
