#pragma once
/// \file poly_verifier.h
/// \brief Deprecated polynomial-template facade over the unified
/// verification pipeline (the paper's "Sum-of-Squares polynomials"
/// remark, §3).
///
/// Differences from the quadratic template (both now implemented once,
/// in `BarrierPipeline<Form>` / `CertificateTraits`, pipeline.h):
///
///  * The level set {W ≤ ℓ} of a higher-degree W is not an ellipsoid, so
///    there is no closed-form ℓ window. Both ends come from the certified
///    global optimizer (smt/optimizer.h): ℓ must exceed the certified
///    max of W over X0 and stay below the certified min of W over every
///    *face* of the safe rectangle.
///  * Condition (7) is replaced by its face form (7′):
///        ∃x ∈ ∂(safe_rect) : W(x) ≤ ℓ      — must be UNSAT.
///    Soundness: a trajectory from X0 ⊂ {W ≤ ℓ} (by (6)) that reaches U
///    must cross ∂(safe_rect). Along the way W never exceeds ℓ — inside
///    X0 by (6), outside X0 by the strict decrease (5) — yet every
///    boundary point with W ≤ ℓ is excluded by (7′). Contradiction, so
///    U is unreachable. This is the same argument the paper makes with
///    L ∩ U = ∅, specialized to U = complement(safe_rect).
///
/// \deprecated `PolyBarrierVerifier` survives as a thin shim so existing
/// call sites keep compiling; new code should use `core::Engine` with
/// `TemplateSpec::polynomial(...)`. The former `PolyVerifyResult` — a
/// field-for-field copy of `VerifyResult` — is gone; both templates now
/// produce the one `VerifyResult` (the polynomial generator lives in
/// `VerifyResult::poly_generator`).

#include <optional>

#include "src/core/pipeline.h"
#include "src/core/verify_types.h"

namespace bcert::core {

/// Options: the shared verifier options plus template degree and
/// optimizer settings (mapped onto TemplateSpec::polynomial).
struct PolyVerifierOptions {
  VerifierOptions base;
  int max_degree = 4;            ///< monomials of total degree 2..max
  smt::OptimizeConfig optimize;  ///< level-window bound computation
};

/// \deprecated Both templates report through the unified VerifyResult;
/// polynomial candidates are in `poly_generator`.
using PolyVerifyResult = VerifyResult;

/// Verifier for polynomial templates of degree 2..max_degree.
///
/// \deprecated Thin shim over `BarrierPipeline<PolynomialForm>`; prefer
/// `core::Engine` with `TemplateSpec::polynomial(...)`.
class PolyBarrierVerifier {
 public:
  PolyBarrierVerifier(BarrierProblem problem, PolyVerifierOptions options)
      : pipeline_(std::move(problem), std::move(options.base),
                  TemplateSpec::polynomial(options.max_degree,
                                           options.optimize)) {}

  /// Runs the full pipeline. \deprecated Use Engine::verify.
  VerifyResult verify() { return pipeline_.run(); }

  // --- exposed sub-steps (delegating to the pipeline) ---------------------

  /// SMT condition (5) for a polynomial candidate.
  smt::IcpResult check_decrease(const PolynomialForm& w,
                                double delta = 0.0) const {
    return pipeline_.check_decrease(w, delta);
  }
  /// SMT condition (6): ∃x ∈ X0 : W(x) > ℓ.
  smt::IcpResult check_initial_contained(const PolynomialForm& w,
                                         double level) const {
    return pipeline_.check_initial_contained(w, level);
  }
  /// SMT condition (7′): ∃x on some *unsafe-dimension* face of the safe
  /// rectangle with W(x) ≤ ℓ. Faces of domain-only dimensions are
  /// covered by the flow-invariance check instead.
  smt::IcpResult check_boundary_excluded(const PolynomialForm& w,
                                         double level) const {
    return pipeline_.check_level_exclusion(w, level);
  }
  /// Flow-invariance of domain-only faces.
  smt::IcpResult check_domain_invariance() const {
    return pipeline_.check_domain_invariance();
  }
  /// Certified ℓ window from the global optimizer; nullopt when the
  /// bounds do not separate.
  std::optional<std::pair<double, double>> level_window(
      const PolynomialForm& w) const {
    return pipeline_.level_window(w);
  }

  const BarrierProblem& problem() const { return pipeline_.problem(); }
  const MonomialBasis& basis() const { return pipeline_.context().basis; }

 private:
  BarrierPipeline<PolynomialForm> pipeline_;
};

}  // namespace bcert::core
