#pragma once
/// \file quadratic_form.h
/// \brief Pure-quadratic generator-function template W(x) = xᵀ P x.
///
/// The paper instantiates the simulation-guided approach with a quadratic
/// W whose level sets are ellipsoids; the LP determines the monomial
/// coefficients. This class owns the monomial basis bookkeeping, numeric
/// and symbolic evaluation, gradients, and the ellipsoid geometry used in
/// level-set selection.

#include <optional>
#include <vector>

#include "src/core/region.h"
#include "src/expr/expr.h"
#include "src/linalg/matrix.h"
#include "src/linalg/vector.h"

namespace bcert::core {

/// W(x) = Σ_{i≤j} c_{ij} x_i x_j, stored as a coefficient vector over the
/// basis {x_i x_j : i ≤ j} in lexicographic order.
class QuadraticForm {
 public:
  /// Zero form over \p n variables.
  explicit QuadraticForm(std::size_t n);

  /// Form from coefficients (size must equal basis_size(n)).
  QuadraticForm(std::size_t n, linalg::Vector coeffs);

  /// Form from a symmetric matrix P (coefficients c_ii = P_ii,
  /// c_ij = 2 P_ij for i < j).
  static QuadraticForm from_matrix(const linalg::Matrix& p);

  static std::size_t basis_size(std::size_t n) { return n * (n + 1) / 2; }

  std::size_t dims() const { return n_; }
  std::size_t num_coeffs() const { return coeffs_.size(); }
  const linalg::Vector& coeffs() const { return coeffs_; }

  /// Monomial value m_k(x) for basis index k.
  double basis_value(std::size_t k, const linalg::Vector& x) const;

  /// Gradient of the k-th basis monomial at x.
  linalg::Vector basis_gradient(std::size_t k, const linalg::Vector& x) const;

  /// W(x).
  double value(const linalg::Vector& x) const;

  /// ∇W(x).
  linalg::Vector gradient(const linalg::Vector& x) const;

  /// Symmetric matrix P with W(x) = xᵀ P x.
  linalg::Matrix matrix() const;

  /// Symbolic W over pool variables 0..n-1.
  expr::ExprId to_expr(expr::ExprPool& pool) const;

  /// True when P is positive definite (Cholesky succeeds).
  bool positive_definite() const;

  /// Smallest level ℓ such that every vertex of \p rect satisfies
  /// W(v) ≤ ℓ (i.e. the rectangle's corners are inside {W ≤ ℓ}).
  double min_level_containing(const Rect& rect) const;

  /// Largest level ℓ such that the ellipsoid {W ≤ ℓ} stays strictly out
  /// of the halfspace (min of W over the hyperplane x_dim = bound equals
  /// bound² / (P⁻¹)_{dim,dim}). Returns nullopt when P is singular.
  std::optional<double> max_level_avoiding(const Halfspace& hs) const;

  /// Axis-aligned bounding box of the ellipsoid {W ≤ level}:
  /// |x_i| ≤ sqrt(level · (P⁻¹)_{ii}). Returns nullopt when P is not PD.
  std::optional<Rect> level_set_bounding_box(double level) const;

  /// Points on the boundary {W = level} (for plotting; 2-D only).
  std::vector<linalg::Vector> boundary_points_2d(double level,
                                                 std::size_t count) const;

 private:
  std::size_t index_of(std::size_t i, std::size_t j) const;

  std::size_t n_;
  linalg::Vector coeffs_;
  // Basis bookkeeping: basis k ↦ (i, j), i ≤ j.
  std::vector<std::pair<std::size_t, std::size_t>> basis_;
};

}  // namespace bcert::core
