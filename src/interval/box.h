#pragma once
/// \file box.h
/// \brief Axis-aligned boxes (interval vectors) — the search state of the
/// branch-and-prune δ-SAT solver and the geometric representation of the
/// initial set X0 and domain D.

#include <cstddef>
#include <iosfwd>
#include <utility>
#include <vector>

#include "src/interval/interval.h"
#include "src/linalg/vector.h"

namespace bcert::interval {

/// Cartesian product of intervals, one per variable.
class Box {
 public:
  Box() = default;

  /// Box of \p n empty intervals.
  explicit Box(std::size_t n) : dims_(n) {}

  /// Box from explicit per-dimension intervals.
  explicit Box(std::vector<Interval> dims) : dims_(std::move(dims)) {}

  /// Degenerate box around a point.
  static Box point(const linalg::Vector& x);

  /// Box from per-dimension [lo, hi] pairs.
  static Box from_bounds(const std::vector<std::pair<double, double>>& b);

  std::size_t size() const { return dims_.size(); }
  bool empty_dims() const { return dims_.empty(); }

  Interval& operator[](std::size_t i) { return dims_[i]; }
  const Interval& operator[](std::size_t i) const { return dims_[i]; }

  auto begin() const { return dims_.begin(); }
  auto end() const { return dims_.end(); }

  /// True when any dimension is the empty interval.
  bool is_empty() const;

  /// Maximum dimension width (∞-norm diameter).
  double max_width() const;

  /// Index of the widest dimension (0 when dimensionless). Ties break
  /// stably to the *lowest* dimension index — part of the ICP frontier's
  /// exploration-order contract: scalar and batched branch-and-prune both
  /// split the same dimension of the same box, so their search trees are
  /// reproducible at any batch width or thread count.
  std::size_t widest_dim() const;

  /// Component-wise midpoint.
  linalg::Vector midpoint() const;

  /// Sum of widths (useful as a progress measure).
  double perimeter() const;

  /// Volume (product of widths); 0 when any dimension is a point/empty.
  double volume() const;

  bool contains(const linalg::Vector& x) const;
  bool contains(const Box& o) const;

  /// Bisects along \p dim at its midpoint; returns {left, right}.
  std::pair<Box, Box> split(std::size_t dim) const;

  /// Bisects along the widest dimension.
  std::pair<Box, Box> split_widest() const { return split(widest_dim()); }

  bool operator==(const Box& o) const { return dims_ == o.dims_; }

 private:
  std::vector<Interval> dims_;
};

/// Component-wise intersection; empty if any dimension is empty.
Box intersect(const Box& a, const Box& b);

/// Component-wise hull.
Box hull(const Box& a, const Box& b);

std::ostream& operator<<(std::ostream& os, const Box& b);

}  // namespace bcert::interval
