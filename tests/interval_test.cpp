// Unit + property tests for bcert::interval.
//
// The property tests are the important ones: for random point inputs the
// interval image of a point must contain the exact double result, and for
// random interval inputs the image of sampled points must stay inside the
// interval result (soundness of outward rounding).
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "src/interval/box.h"
#include "src/interval/interval.h"

namespace bcert::interval {
namespace {

TEST(Interval, EmptyAndPoint) {
  Interval e;
  EXPECT_TRUE(e.is_empty());
  EXPECT_EQ(e, Interval::empty());
  Interval p(2.5);
  EXPECT_TRUE(p.is_point());
  EXPECT_DOUBLE_EQ(p.width(), 0.0);
  EXPECT_TRUE(p.contains(2.5));
  EXPECT_FALSE(p.contains(2.6));
}

TEST(Interval, BasicSetOps) {
  Interval a(0.0, 2.0), b(1.0, 3.0), c(5.0, 6.0);
  EXPECT_EQ(intersect(a, b), Interval(1.0, 2.0));
  EXPECT_TRUE(intersect(a, c).is_empty());
  EXPECT_EQ(hull(a, c), Interval(0.0, 6.0));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(Interval(0.0, 10.0).contains(b));
}

TEST(Interval, AddSubContainment) {
  Interval a(1.0, 2.0), b(-1.0, 3.0);
  Interval s = a + b;
  EXPECT_LE(s.lo(), 0.0);
  EXPECT_GE(s.hi(), 5.0);
  Interval d = a - b;
  EXPECT_LE(d.lo(), -2.0);
  EXPECT_GE(d.hi(), 3.0);
}

TEST(Interval, MulSignCases) {
  EXPECT_TRUE((Interval(2, 3) * Interval(4, 5)).contains(Interval(8, 15)));
  EXPECT_TRUE((Interval(-3, -2) * Interval(4, 5)).contains(Interval(-15, -8)));
  EXPECT_TRUE((Interval(-2, 3) * Interval(-5, 4)).contains(Interval(-15, 12)));
  EXPECT_EQ(Interval(0.0) * Interval::entire(), Interval(0.0));
}

TEST(Interval, DivisionAwayFromZero) {
  Interval q = Interval(1.0, 2.0) / Interval(4.0, 8.0);
  EXPECT_TRUE(q.contains(0.125));
  EXPECT_TRUE(q.contains(0.5));
  EXPECT_LT(q.width(), 0.376);
}

TEST(Interval, ExtendedDivision) {
  // Divisor spanning zero with numerator off zero -> entire.
  EXPECT_EQ(Interval(1.0, 2.0) / Interval(-1.0, 1.0), Interval::entire());
  // One-sided zero touch gives a ray.
  Interval r = Interval(1.0, 2.0) / Interval(0.0, 1.0);
  EXPECT_TRUE(r.contains(1.0));
  EXPECT_TRUE(r.contains(1e9));
  EXPECT_FALSE(r.contains(0.5));
}

TEST(Interval, SqrIsNonNegativeAndTight) {
  Interval s = sqr(Interval(-2.0, 3.0));
  EXPECT_GE(s.lo(), 0.0);
  EXPECT_TRUE(s.contains(0.0));
  EXPECT_TRUE(s.contains(9.0));
  EXPECT_LT(s.hi(), 9.0 + 1e-9);
}

TEST(Interval, SqrtDomainClipping) {
  EXPECT_TRUE(sqrt(Interval(-4.0, -1.0)).is_empty());
  Interval r = sqrt(Interval(-1.0, 4.0));
  EXPECT_GE(r.lo(), 0.0);
  EXPECT_TRUE(r.contains(2.0));
}

TEST(Interval, LogDomainClipping) {
  EXPECT_TRUE(log(Interval(-2.0, -1.0)).is_empty());
  Interval r = log(Interval(0.0, 1.0));
  EXPECT_EQ(r.lo(), -std::numeric_limits<double>::infinity());
  EXPECT_GE(r.hi(), 0.0);
}

TEST(Interval, SinCriticalPoints) {
  // [0, pi] contains the max of sin at pi/2.
  Interval s = sin(Interval(0.0, 3.15));
  EXPECT_DOUBLE_EQ(s.hi(), 1.0);
  EXPECT_LE(s.lo(), 0.0);
  // Narrow monotone interval stays tight.
  Interval t = sin(Interval(0.1, 0.2));
  EXPECT_NEAR(t.lo(), std::sin(0.1), 1e-12);
  EXPECT_NEAR(t.hi(), std::sin(0.2), 1e-12);
  // Width >= 2 pi -> [-1, 1].
  EXPECT_EQ(sin(Interval(0.0, 10.0)), Interval(-1.0, 1.0));
}

TEST(Interval, CosCriticalPoints) {
  Interval c = cos(Interval(-0.5, 0.5));  // max at 0
  EXPECT_DOUBLE_EQ(c.hi(), 1.0);
  Interval c2 = cos(Interval(3.0, 3.3));  // min at pi
  EXPECT_DOUBLE_EQ(c2.lo(), -1.0);
}

TEST(Interval, TanPole) {
  EXPECT_EQ(tan(Interval(1.0, 2.0)), Interval::entire());  // pi/2 inside
  Interval t = tan(Interval(-0.5, 0.5));
  EXPECT_TRUE(t.contains(std::tan(0.5)));
  EXPECT_FALSE(t.is_unbounded());
}

TEST(Interval, TanhRangeAndMonotonicity) {
  Interval t = tanh(Interval(-100.0, 100.0));
  EXPECT_GE(t.lo(), -1.0);
  EXPECT_LE(t.hi(), 1.0);
  Interval u = tanh(Interval(0.5, 1.0));
  EXPECT_TRUE(u.contains(std::tanh(0.75)));
}

TEST(Interval, AtanhInverseOfTanh) {
  Interval x(0.25, 0.5);
  Interval back = atanh(tanh(x));
  EXPECT_TRUE(back.contains(x));
  EXPECT_LT(back.width(), x.width() + 1e-9);
}

TEST(Interval, SigmoidLogitRoundTrip) {
  Interval x(-2.0, 1.0);
  Interval back = logit(sigmoid(x));
  EXPECT_TRUE(back.contains(x));
}

TEST(Interval, NthRoot) {
  EXPECT_TRUE(nth_root(Interval(8.0), 3).contains(2.0));
  EXPECT_TRUE(nth_root(Interval(-8.0), 3).contains(-2.0));
  EXPECT_TRUE(nth_root(Interval(16.0), 4).contains(2.0));
  EXPECT_TRUE(nth_root(Interval(-16.0, -1.0), 4).is_empty());
}

TEST(Interval, PowEvenOdd) {
  EXPECT_TRUE(pow(Interval(-2.0, 1.0), 2).contains(Interval(0.0, 4.0)));
  EXPECT_TRUE(pow(Interval(-2.0, 1.0), 3).contains(Interval(-8.0, 1.0)));
  EXPECT_EQ(pow(Interval(2.0, 3.0), 0), Interval(1.0));
}

TEST(Interval, AbsMinMax) {
  EXPECT_EQ(abs(Interval(-3.0, 2.0)), Interval(0.0, 3.0));
  EXPECT_EQ(min(Interval(1.0, 5.0), Interval(2.0, 3.0)), Interval(1.0, 3.0));
  EXPECT_EQ(max(Interval(1.0, 5.0), Interval(2.0, 3.0)), Interval(2.0, 5.0));
}

TEST(Interval, MidMagMig) {
  Interval a(-4.0, 2.0);
  EXPECT_DOUBLE_EQ(a.mid(), -1.0);
  EXPECT_DOUBLE_EQ(a.mag(), 4.0);
  EXPECT_DOUBLE_EQ(a.mig(), 0.0);
  EXPECT_DOUBLE_EQ(Interval(2.0, 5.0).mig(), 2.0);
}

TEST(Interval, AsinAcos) {
  EXPECT_TRUE(asin(Interval(0.0, 1.0)).contains(kPiLower / 2.0));
  EXPECT_TRUE(acos(Interval(-1.0, 1.0)).contains(kPiLower));
  EXPECT_TRUE(acos(Interval(-1.0, 1.0)).contains(0.0));
}

// --- soundness property sweeps ------------------------------------------

using UnaryFn = Interval (*)(const Interval&);
using ScalarFn = double (*)(double);

struct UnaryCase {
  const char* name;
  UnaryFn ifn;
  ScalarFn sfn;
  double lo, hi;  // sampling domain
};

class UnarySoundness : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnarySoundness, ImageContainsSampledPoints) {
  const UnaryCase& c = GetParam();
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dom(c.lo, c.hi);
  for (int trial = 0; trial < 200; ++trial) {
    double a = dom(rng), b = dom(rng);
    if (a > b) std::swap(a, b);
    const Interval img = c.ifn(Interval(a, b));
    std::uniform_real_distribution<double> inner(a, b);
    for (int s = 0; s < 20; ++s) {
      const double x = inner(rng);
      const double y = c.sfn(x);
      if (std::isfinite(y)) {
        ASSERT_TRUE(img.contains(y))
            << c.name << " image misses f(" << x << ")=" << y;
      }
    }
  }
}

double sigmoid_scalar(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double relu_scalar(double x) { return x > 0 ? x : 0.0; }
double sqr_scalar(double x) { return x * x; }

INSTANTIATE_TEST_SUITE_P(
    Functions, UnarySoundness,
    ::testing::Values(
        UnaryCase{"sin", &sin, &std::sin, -10.0, 10.0},
        UnaryCase{"cos", &cos, &std::cos, -10.0, 10.0},
        UnaryCase{"tan", &tan, &std::tan, -1.5, 1.5},
        UnaryCase{"exp", &exp, &std::exp, -5.0, 5.0},
        UnaryCase{"log", &log, &std::log, 0.01, 100.0},
        UnaryCase{"sqrt", &sqrt, &std::sqrt, 0.0, 100.0},
        UnaryCase{"tanh", &tanh, &std::tanh, -5.0, 5.0},
        UnaryCase{"atan", &atan, &std::atan, -10.0, 10.0},
        UnaryCase{"asin", &asin, &std::asin, -1.0, 1.0},
        UnaryCase{"acos", &acos, &std::acos, -1.0, 1.0},
        UnaryCase{"sigmoid", &sigmoid, &sigmoid_scalar, -10.0, 10.0},
        UnaryCase{"relu", &relu, &relu_scalar, -5.0, 5.0},
        UnaryCase{"sqr", &sqr, &sqr_scalar, -10.0, 10.0},
        UnaryCase{"abs", &abs, &std::fabs, -10.0, 10.0}),
    [](const auto& info) { return info.param.name; });

class ArithmeticSoundness : public ::testing::TestWithParam<int> {};

TEST_P(ArithmeticSoundness, RandomIntervalContainment) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> dom(-10.0, 10.0);
  for (int trial = 0; trial < 300; ++trial) {
    double a1 = dom(rng), a2 = dom(rng), b1 = dom(rng), b2 = dom(rng);
    if (a1 > a2) std::swap(a1, a2);
    if (b1 > b2) std::swap(b1, b2);
    const Interval ia(a1, a2), ib(b1, b2);
    std::uniform_real_distribution<double> sa(a1, a2), sb(b1, b2);
    for (int s = 0; s < 10; ++s) {
      const double x = sa(rng), y = sb(rng);
      ASSERT_TRUE((ia + ib).contains(x + y));
      ASSERT_TRUE((ia - ib).contains(x - y));
      ASSERT_TRUE((ia * ib).contains(x * y));
      if (!ib.contains(0.0)) {
        ASSERT_TRUE((ia / ib).contains(x / y));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArithmeticSoundness, ::testing::Range(0, 5));

// --- Box ---------------------------------------------------------------

TEST(Box, BasicGeometry) {
  Box b = Box::from_bounds({{0.0, 2.0}, {-1.0, 1.0}});
  EXPECT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b.max_width(), 2.0);
  EXPECT_DOUBLE_EQ(b.volume(), 4.0);
  EXPECT_DOUBLE_EQ(b.perimeter(), 4.0);
  linalg::Vector mid = b.midpoint();
  EXPECT_DOUBLE_EQ(mid[0], 1.0);
  EXPECT_DOUBLE_EQ(mid[1], 0.0);
  EXPECT_TRUE(b.contains(linalg::Vector{1.0, 0.5}));
  EXPECT_FALSE(b.contains(linalg::Vector{3.0, 0.0}));
}

TEST(Box, SplitCoversOriginal) {
  Box b = Box::from_bounds({{0.0, 4.0}, {0.0, 1.0}});
  auto [l, r] = b.split_widest();
  EXPECT_DOUBLE_EQ(l[0].hi(), 2.0);
  EXPECT_DOUBLE_EQ(r[0].lo(), 2.0);
  EXPECT_EQ(hull(l, r), b);
}

TEST(Box, EmptyDetection) {
  Box b = Box::from_bounds({{0.0, 1.0}});
  EXPECT_FALSE(b.is_empty());
  b[0] = Interval::empty();
  EXPECT_TRUE(b.is_empty());
}

TEST(Box, IntersectAndContains) {
  Box a = Box::from_bounds({{0.0, 2.0}, {0.0, 2.0}});
  Box b = Box::from_bounds({{1.0, 3.0}, {1.0, 3.0}});
  Box c = intersect(a, b);
  EXPECT_DOUBLE_EQ(c[0].lo(), 1.0);
  EXPECT_DOUBLE_EQ(c[0].hi(), 2.0);
  EXPECT_TRUE(a.contains(c));
}

TEST(Box, PointBox) {
  Box p = Box::point(linalg::Vector{1.0, 2.0});
  EXPECT_TRUE(p[0].is_point());
  EXPECT_DOUBLE_EQ(p.max_width(), 0.0);
}

TEST(Interval, OutwardSteppingMatchesNextafter) {
  const double cases[] = {0.0,
                          -0.0,
                          5e-324,
                          -5e-324,
                          1.0,
                          -1.0,
                          1e-300,
                          -1e308,
                          std::numeric_limits<double>::max(),
                          -std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity()};
  const double inf = std::numeric_limits<double>::infinity();
  for (const double v : cases) {
    // next/prev_float(±inf) saturate (the seed behavior the solver
    // depends on); everything else must match libm exactly.
    const double expect_next = v == inf ? inf : std::nextafter(v, inf);
    const double expect_prev = v == -inf ? -inf : std::nextafter(v, -inf);
    EXPECT_EQ(next_float(v), expect_next) << "v = " << v;
    EXPECT_EQ(prev_float(v), expect_prev) << "v = " << v;
  }
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> d(-1e12, 1e12);
  for (int i = 0; i < 10000; ++i) {
    const double v = d(rng);
    EXPECT_EQ(next_float(v), std::nextafter(v, inf));
    EXPECT_EQ(prev_float(v), std::nextafter(v, -inf));
  }
}

TEST(Interval, MulExactZeroTimesUnbounded) {
  const double inf = std::numeric_limits<double>::infinity();
  // {0·y : y ∈ [a, ∞)} = {0}: the exact-zero operand short-circuit must
  // hold for unbounded partners with no NaN endpoints.
  EXPECT_EQ(Interval(0.0) * Interval(5.0, inf), Interval(0.0));
  EXPECT_EQ(Interval(-3.0, inf) * Interval(0.0), Interval(0.0));
  EXPECT_EQ(Interval(-inf, inf) * Interval(0.0, 0.0), Interval(0.0));
}

TEST(Interval, MulUnboundedGeneralPathHasNoNan) {
  const double inf = std::numeric_limits<double>::infinity();
  // [-∞, ∞) × [0, 2]: the endpoint products include (-∞)·0 and ∞·0,
  // which mul_ep must map to 0 rather than NaN.
  const Interval a = Interval(-inf, inf) * Interval(0.0, 2.0);
  EXPECT_FALSE(std::isnan(a.lo()));
  EXPECT_FALSE(std::isnan(a.hi()));
  EXPECT_EQ(a, Interval::entire());

  const Interval b = Interval(0.0, 1.0) * Interval(2.0, inf);
  EXPECT_FALSE(std::isnan(b.lo()));
  EXPECT_FALSE(std::isnan(b.hi()));
  EXPECT_LE(b.lo(), 0.0);
  EXPECT_EQ(b.hi(), inf);

  const Interval c = Interval(-inf, -1.0) * Interval(0.0, 3.0);
  EXPECT_FALSE(std::isnan(c.lo()));
  EXPECT_FALSE(std::isnan(c.hi()));
  EXPECT_EQ(c.lo(), -inf);
  EXPECT_GE(c.hi(), 0.0);
}

TEST(Interval, ExtendedDivOrdinary) {
  Interval q1, q2;
  ASSERT_EQ(extended_div(Interval(2.0, 4.0), Interval(1.0, 2.0), q1, q2), 1);
  EXPECT_LE(q1.lo(), 1.0);
  EXPECT_GE(q1.lo(), 1.0 - 1e-12);
  EXPECT_GE(q1.hi(), 4.0);
  EXPECT_LE(q1.hi(), 4.0 + 1e-12);
}

TEST(Interval, ExtendedDivStraddlingDivisorSplits) {
  const double inf = std::numeric_limits<double>::infinity();
  Interval q1, q2;
  // [2,4] ÷ [-1,1]: two rays (-∞, -2] ∪ [2, ∞).
  ASSERT_EQ(extended_div(Interval(2.0, 4.0), Interval(-1.0, 1.0), q1, q2),
            2);
  EXPECT_EQ(q1.lo(), -inf);
  EXPECT_NEAR(q1.hi(), -2.0, 1e-12);
  EXPECT_NEAR(q2.lo(), 2.0, 1e-12);
  EXPECT_EQ(q2.hi(), inf);

  // Negative numerator mirror: [-4,-2] ÷ [-1,1].
  ASSERT_EQ(extended_div(Interval(-4.0, -2.0), Interval(-1.0, 1.0), q1, q2),
            2);
  EXPECT_EQ(q1.lo(), -inf);
  EXPECT_NEAR(q1.hi(), -2.0, 1e-12);
  EXPECT_NEAR(q2.lo(), 2.0, 1e-12);
  EXPECT_EQ(q2.hi(), inf);
}

TEST(Interval, ExtendedDivZeroTouchingDivisor) {
  const double inf = std::numeric_limits<double>::infinity();
  Interval q1, q2;
  ASSERT_EQ(extended_div(Interval(2.0, 4.0), Interval(0.0, 1.0), q1, q2), 1);
  EXPECT_NEAR(q1.lo(), 2.0, 1e-12);
  EXPECT_EQ(q1.hi(), inf);

  ASSERT_EQ(extended_div(Interval(2.0, 4.0), Interval(-1.0, 0.0), q1, q2),
            1);
  EXPECT_EQ(q1.lo(), -inf);
  EXPECT_NEAR(q1.hi(), -2.0, 1e-12);
}

TEST(Interval, ExtendedDivExactZeroDivisor) {
  Interval q1, q2;
  // x·0 ∈ [2,4] has no solution.
  EXPECT_EQ(extended_div(Interval(2.0, 4.0), Interval(0.0), q1, q2), 0);
  // x·0 ∈ [-1,1] holds for every x (0 is in the numerator).
  ASSERT_EQ(extended_div(Interval(-1.0, 1.0), Interval(0.0), q1, q2), 1);
  EXPECT_EQ(q1, Interval::entire());
  // Same when the divisor merely straddles zero.
  ASSERT_EQ(extended_div(Interval(-1.0, 1.0), Interval(-2.0, 2.0), q1, q2),
            1);
  EXPECT_EQ(q1, Interval::entire());
}

TEST(Interval, ExtendedDivSamplePointSoundness) {
  // Property: for sampled y ∈ den and q in a piece, q·y must be able to
  // land in num; conversely every x with x·den ∩ num ≠ ∅ lies in a piece.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> d(-3.0, 3.0);
  for (int trial = 0; trial < 2000; ++trial) {
    double nl = d(rng), nh = d(rng);
    if (nl > nh) std::swap(nl, nh);
    double dl = d(rng), dh = d(rng);
    if (dl > dh) std::swap(dl, dh);
    const Interval num(nl, nh), den(dl, dh);
    Interval q1, q2;
    const int pieces = extended_div(num, den, q1, q2);
    std::uniform_real_distribution<double> ux(-10.0, 10.0);
    for (int s = 0; s < 8; ++s) {
      const double x = ux(rng);
      // x·den is an interval; membership test against num.
      const Interval image = Interval(x) * den;
      const bool solves = image.intersects(num);
      if (!solves) continue;
      const bool in_pieces = (pieces >= 1 && q1.contains(x)) ||
                             (pieces == 2 && q2.contains(x));
      EXPECT_TRUE(in_pieces)
          << "x=" << x << " num=" << num << " den=" << den;
    }
  }
}

}  // namespace
}  // namespace bcert::interval
