#pragma once
/// \file interval.h
/// \brief Outward-rounded interval arithmetic.
///
/// Every operation returns an interval guaranteed to contain the exact
/// real-number image of its operands. Rounding is made safe by padding
/// each floating-point result outward with `std::nextafter` (a couple of
/// ulps generously covers the ≤1-ulp error of IEEE basic ops and the
/// few-ulp error of quality libm transcendentals). This is the soundness
/// bedrock of the δ-SAT solver: an UNSAT answer built on these bounds is
/// a proof over the reals.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace bcert::interval {

/// Conservative enclosure of π: kPiLower < π < kPiUpper.
inline constexpr double kPiLower = 3.14159265358979267;
inline constexpr double kPiUpper = 3.14159265358979356;

/// Closed real interval [lo, hi]. The empty interval is represented by
/// lo > hi (canonically [+inf, -inf]).
class Interval {
 public:
  /// Default: the empty interval.
  constexpr Interval()
      : lo_(std::numeric_limits<double>::infinity()),
        hi_(-std::numeric_limits<double>::infinity()) {}

  /// Degenerate point interval [v, v].
  constexpr explicit Interval(double v) : lo_(v), hi_(v) {}

  /// Interval [lo, hi]; lo > hi yields the empty interval.
  constexpr Interval(double lo, double hi) : lo_(lo), hi_(hi) {}

  /// The whole real line.
  static constexpr Interval entire() {
    return {-std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
  }
  static constexpr Interval empty() { return {}; }

  double lo() const { return lo_; }
  double hi() const { return hi_; }

  bool is_empty() const { return lo_ > hi_; }
  bool is_point() const { return lo_ == hi_; }
  /// True if either endpoint is infinite (and not empty).
  bool is_unbounded() const {
    return !is_empty() &&
           (lo_ == -std::numeric_limits<double>::infinity() ||
            hi_ == std::numeric_limits<double>::infinity());
  }

  /// Width hi - lo (0 for points, -inf... guarded: 0 for empty).
  double width() const { return is_empty() ? 0.0 : hi_ - lo_; }
  /// Midpoint, clamped to finite when one side is infinite.
  double mid() const;
  /// Maximum absolute value over the interval.
  double mag() const {
    if (is_empty()) return 0.0;
    return std::max(std::fabs(lo_), std::fabs(hi_));
  }
  /// Minimum absolute value over the interval (0 if it contains 0).
  double mig() const {
    if (is_empty()) return 0.0;
    if (lo_ <= 0.0 && 0.0 <= hi_) return 0.0;
    return std::min(std::fabs(lo_), std::fabs(hi_));
  }

  bool contains(double v) const { return lo_ <= v && v <= hi_; }
  bool contains(const Interval& o) const {
    return o.is_empty() || (lo_ <= o.lo_ && o.hi_ <= hi_);
  }
  bool intersects(const Interval& o) const {
    return !is_empty() && !o.is_empty() && lo_ <= o.hi_ && o.lo_ <= hi_;
  }

  /// True when every point is strictly positive / negative.
  bool strictly_positive() const { return !is_empty() && lo_ > 0.0; }
  bool strictly_negative() const { return !is_empty() && hi_ < 0.0; }

  bool operator==(const Interval& o) const {
    return (is_empty() && o.is_empty()) || (lo_ == o.lo_ && hi_ == o.hi_);
  }

 private:
  double lo_;
  double hi_;
};

/// Next representable double below / above (outward rounding helpers).
/// Implemented as a direct IEEE-754 bit increment — identical results to
/// std::nextafter (including at ±0 and the subnormal/overflow edges) but
/// inlineable, which matters because every interval operation rounds both
/// endpoints outward.
inline double next_float(double v) {
  if (v == std::numeric_limits<double>::infinity() || std::isnan(v)) return v;
  if (v == 0.0) return std::bit_cast<double>(std::uint64_t{1});
  std::uint64_t b = std::bit_cast<std::uint64_t>(v);
  b += (b >> 63) == 0 ? 1 : static_cast<std::uint64_t>(-1);
  return std::bit_cast<double>(b);
}

inline double prev_float(double v) {
  if (v == -std::numeric_limits<double>::infinity() || std::isnan(v)) return v;
  if (v == 0.0) {
    return std::bit_cast<double>(std::uint64_t{1} << 63 | std::uint64_t{1});
  }
  std::uint64_t b = std::bit_cast<std::uint64_t>(v);
  b += (b >> 63) == 0 ? static_cast<std::uint64_t>(-1) : 1;
  return std::bit_cast<double>(b);
}

/// Widens both endpoints outward by \p ulps representable steps.
/// Used to make libm results conservative.
Interval widen(const Interval& x, int ulps = 2);

// --- set operations ---------------------------------------------------

inline Interval intersect(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  const double lo = a.lo() > b.lo() ? a.lo() : b.lo();
  const double hi = a.hi() < b.hi() ? a.hi() : b.hi();
  if (lo > hi) return Interval::empty();
  return {lo, hi};
}

/// Interval hull (smallest interval containing both).
inline Interval hull(const Interval& a, const Interval& b) {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  return {a.lo() < b.lo() ? a.lo() : b.lo(),
          a.hi() > b.hi() ? a.hi() : b.hi()};
}

// --- arithmetic (all outward rounded) ----------------------------------
// The four basic operations are inline: they are the inner loop of HC4
// contraction (forward sweeps and backward projections execute one per
// DAG node) and at ~10 ns of work each the call overhead used to rival
// the arithmetic.

namespace detail {
/// Endpoint product obeying the interval convention 0 · ∞ = 0 (the exact
/// image of {0} × anything is {0}; every partner endpoint stands for a
/// finite real). Also the reason no endpoint product can be NaN.
inline double mul_ep(double a, double b) {
  if (a == 0.0 || b == 0.0) return 0.0;
  return a * b;
}
}  // namespace detail

inline Interval operator+(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  return {prev_float(a.lo() + b.lo()), next_float(a.hi() + b.hi())};
}

inline Interval operator-(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  return {prev_float(a.lo() - b.hi()), next_float(a.hi() - b.lo())};
}

inline Interval operator-(const Interval& a) {
  if (a.is_empty()) return a;
  return {-a.hi(), -a.lo()};
}

inline Interval operator*(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  // Exact-zero operand: the image {0·y : y ∈ b} is {0} for any nonempty
  // b, even an unbounded one (every y is a finite real), so [0,0] is the
  // exact result — returning it unwidened keeps sign information.
  if ((a.lo() == 0.0 && a.hi() == 0.0) || (b.lo() == 0.0 && b.hi() == 0.0)) {
    return Interval(0.0);
  }
  const double p1 = detail::mul_ep(a.lo(), b.lo());
  const double p2 = detail::mul_ep(a.lo(), b.hi());
  const double p3 = detail::mul_ep(a.hi(), b.lo());
  const double p4 = detail::mul_ep(a.hi(), b.hi());
  const double lo = std::min(std::min(p1, p2), std::min(p3, p4));
  const double hi = std::max(std::max(p1, p2), std::max(p3, p4));
  return {prev_float(lo), next_float(hi)};
}
/// Division. If b contains 0 the result may be entire() (we do not split
/// into two disjoint rays; the ICP layer handles the precision loss).
inline Interval operator/(const Interval& a, const Interval& b) {
  constexpr double kInfinity = std::numeric_limits<double>::infinity();
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  if (b.lo() > 0.0 || b.hi() < 0.0) {
    // Divisor bounded away from zero: reciprocal then multiply.
    const Interval rec{prev_float(1.0 / b.hi()), next_float(1.0 / b.lo())};
    return a * rec;
  }
  // Divisor touches or spans zero: extended division.
  if (b.lo() == 0.0 && b.hi() == 0.0) return Interval::empty();
  if (a.contains(0.0)) return Interval::entire();
  if (b.lo() == 0.0) {
    // b = [0, bh], bh > 0.
    if (a.hi() < 0.0) return {-kInfinity, next_float(a.hi() / b.hi())};
    return {prev_float(a.lo() / b.hi()), kInfinity};
  }
  if (b.hi() == 0.0) {
    // b = [bl, 0], bl < 0.
    if (a.hi() < 0.0) return {prev_float(a.hi() / b.lo()), kInfinity};
    return {-kInfinity, next_float(a.lo() / b.lo())};
  }
  return Interval::entire();  // zero strictly inside b
}

/// Generalized (relational) extended division: the closure of
/// `{x : x·y ∈ num for some y ∈ den}` as up to two disjoint pieces,
/// written to \p q1 (and \p q2 when the divisor straddles zero and the
/// numerator does not contain it). Returns the piece count: 0 means the
/// set is empty (den = [0,0] with 0 ∉ num). Unlike operator/, which
/// models pointwise real division (so num/[0,0] is empty), this is the
/// projection semantics HC4 multiplication/division reversal needs:
/// 0·den ∈ num whenever 0 ∈ num, so the result is entire there instead
/// of empty. Intersecting a target interval with each piece *before*
/// hulling keeps contraction tight where plain division returns entire.
inline int extended_div(const Interval& num, const Interval& den,
                        Interval& q1, Interval& q2) {
  constexpr double kInfinity = std::numeric_limits<double>::infinity();
  if (num.is_empty() || den.is_empty()) {
    q1 = Interval::empty();
    return 0;
  }
  if (den.lo() > 0.0 || den.hi() < 0.0) {
    q1 = num / den;  // divisor bounded away from zero: ordinary division
    return 1;
  }
  if (num.contains(0.0)) {
    // 0 ∈ num and 0 ∈ den: x·0 = 0 ∈ num holds for every x.
    q1 = Interval::entire();
    return 1;
  }
  if (den.lo() == 0.0 && den.hi() == 0.0) {
    q1 = Interval::empty();  // x·0 = 0 ∉ num for any x
    return 0;
  }
  if (num.lo() > 0.0) {
    if (den.lo() == 0.0) {
      q1 = {prev_float(num.lo() / den.hi()), kInfinity};
      return 1;
    }
    if (den.hi() == 0.0) {
      q1 = {-kInfinity, next_float(num.lo() / den.lo())};
      return 1;
    }
    q1 = {-kInfinity, next_float(num.lo() / den.lo())};
    q2 = {prev_float(num.lo() / den.hi()), kInfinity};
    return 2;
  }
  // num.hi() < 0: mirror of the positive-numerator cases.
  if (den.lo() == 0.0) {
    q1 = {-kInfinity, next_float(num.hi() / den.hi())};
    return 1;
  }
  if (den.hi() == 0.0) {
    q1 = {prev_float(num.hi() / den.lo()), kInfinity};
    return 1;
  }
  q1 = {-kInfinity, next_float(num.hi() / den.hi())};
  q2 = {prev_float(num.hi() / den.lo()), kInfinity};
  return 2;
}

Interval operator+(const Interval& a, double b);
Interval operator+(double a, const Interval& b);
Interval operator-(const Interval& a, double b);
Interval operator-(double a, const Interval& b);
Interval operator*(const Interval& a, double b);
Interval operator*(double a, const Interval& b);
Interval operator/(const Interval& a, double b);

// --- elementary functions ----------------------------------------------

inline Interval sqr(const Interval& x) {
  if (x.is_empty()) return x;
  const double m = x.mag();
  const double lo = x.mig();
  return {std::max(0.0, prev_float(lo * lo)), next_float(m * m)};
}

Interval sqrt(const Interval& x);   ///< intersected with [0, inf)
Interval exp(const Interval& x);
Interval log(const Interval& x);    ///< intersected with domain (0, inf)
Interval pow(const Interval& x, int n);

inline Interval abs(const Interval& x) {
  if (x.is_empty()) return x;
  return {x.mig(), x.mag()};
}

inline Interval min(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  return {std::min(a.lo(), b.lo()), std::min(a.hi(), b.hi())};
}

inline Interval max(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  return {std::max(a.lo(), b.lo()), std::max(a.hi(), b.hi())};
}

Interval sin(const Interval& x);
Interval cos(const Interval& x);
Interval tan(const Interval& x);
Interval atan(const Interval& x);
/// Principal arcsine; input clipped to [-1,1]. Range [-pi/2, pi/2].
Interval asin(const Interval& x);
/// Principal arccosine; input clipped to [-1,1]. Range [0, pi].
Interval acos(const Interval& x);
/// Monotone sigmoid 1/(1+e^{-x}), range (0,1).
Interval sigmoid(const Interval& x);
/// Monotone tanh, range (-1,1). This is MATLAB's `tansig`.
Interval tanh(const Interval& x);
/// Inverse of tanh on (-1,1); inputs outside are clipped to the domain.
Interval atanh(const Interval& x);
/// ReLU max(x, 0).
Interval relu(const Interval& x);

/// Real n-th root, n ≥ 1. For even n the domain is clipped to [0, inf)
/// and the result is the non-negative root; for odd n the root is
/// sign-preserving (defined on all reals).
Interval nth_root(const Interval& x, int n);

/// Inverse of the logistic sigmoid: log(x / (1-x)) on (0, 1).
/// Inputs are clipped to [0, 1]; endpoints map to ∓inf.
Interval logit(const Interval& x);

std::ostream& operator<<(std::ostream& os, const Interval& x);

}  // namespace bcert::interval
