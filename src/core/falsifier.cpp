#include "src/core/falsifier.h"

#include <algorithm>
#include <random>

#include "src/parallel/thread_pool.h"

namespace bcert::core {

namespace {

/// Phase-1 candidates are evaluated in fixed-size chunks. The chunk size
/// is a constant (not a function of the thread count) so that the number
/// of simulations performed — and therefore the reported statistics —
/// is identical for any BCERT_THREADS setting.
constexpr int kTrialChunk = 64;

}  // namespace

Falsifier::Falsifier(BarrierProblem problem, FalsifierOptions options)
    : problem_(std::move(problem)), options_(options) {
  problem_.initial_set.validate();
  problem_.safe_rect.validate();
  if (!problem_.sim_field) {
    throw std::invalid_argument("Falsifier: sim_field is required");
  }
}

double Falsifier::margin(const linalg::Vector& x) const {
  const Rect& s = problem_.safe_rect;
  double m = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < s.dims(); ++i) {
    m = std::min(m, x[i] - s.lo[i]);
    m = std::min(m, s.hi[i] - x[i]);
  }
  return m;
}

double Falsifier::robustness(const linalg::Vector& x0,
                             ode::Trace* trace_out) const {
  ode::IntegrateOptions iopts;
  iopts.step = options_.trace_dt;
  iopts.t_end = options_.trace_duration;
  // Stop once clearly unsafe: deeper excursions don't tell us more.
  iopts.stop = [this](double, const linalg::Vector& x) {
    return margin(x) < -0.1;
  };
  // A fresh in-place field per rollout: the construction cost (one small
  // controller copy) is negligible against ~2000 RK4 steps, and it makes
  // concurrent robustness() calls trivially thread-safe.
  const ode::Trace trace =
      integrate_rk4(problem_.make_fast_field(), x0, iopts);
  simulations_.fetch_add(1, std::memory_order_relaxed);
  double rob = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    rob = std::min(rob, margin(trace.state(i)));
  }
  if (trace_out != nullptr) *trace_out = trace;
  return rob;
}

FalsificationResult Falsifier::search() {
  const Rect& x0_set = problem_.initial_set;
  const std::size_t n = x0_set.dims();
  simulations_.store(0, std::memory_order_relaxed);
  const int threads = parallel::resolve_thread_count(options_.threads);
  parallel::ThreadPool& pool = options_.pool != nullptr
                                   ? *options_.pool
                                   : parallel::ThreadPool::global();

  FalsificationResult best;
  best.robustness = std::numeric_limits<double>::infinity();

  // Phase 1: uniform random exploration of X0. Candidates are drawn
  // sequentially from one RNG (the exact stream a sequential sweep would
  // see), simulated in parallel chunk by chunk, then scanned in index
  // order — so the winner is independent of the thread count.
  std::mt19937 rng(options_.seed);
  std::vector<std::uniform_real_distribution<double>> dims;
  dims.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    dims.emplace_back(x0_set.lo[i], x0_set.hi[i]);
  }
  std::vector<linalg::Vector> candidates;
  std::vector<double> robs;
  bool falsified_early = false;
  for (int done = 0; done < options_.random_trials && !falsified_early;) {
    if (options_.should_stop && options_.should_stop()) break;
    const int count = std::min(kTrialChunk, options_.random_trials - done);
    candidates.assign(static_cast<std::size_t>(count), linalg::Vector(n));
    for (int k = 0; k < count; ++k) {
      for (std::size_t i = 0; i < n; ++i) candidates[k][i] = dims[i](rng);
    }
    robs.assign(static_cast<std::size_t>(count), 0.0);
    if (threads <= 1) {
      for (int k = 0; k < count; ++k) {
        robs[k] = robustness(candidates[k], nullptr);
      }
    } else {
      pool.parallel_for(0, static_cast<std::size_t>(count), 1,
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t k = lo; k < hi; ++k) {
                            robs[k] = robustness(candidates[k], nullptr);
                          }
                        });
    }
    for (int k = 0; k < count; ++k) {
      if (robs[k] < best.robustness) {
        best.robustness = robs[k];
        best.initial_state = candidates[k];
      }
      if (robs[k] < 0.0) {
        falsified_early = true;  // already falsified
        break;
      }
    }
    done += count;
  }

  // Phase 2: CMA-ES refinement from the best random start (clamped onto
  // X0 — out-of-set candidates are projected back).
  if (best.robustness >= 0.0 && options_.cmaes_iterations > 0) {
    const auto objective = [&](const linalg::Vector& raw) {
      linalg::Vector x0(n);
      for (std::size_t i = 0; i < n; ++i) {
        x0[i] = std::clamp(raw[i], x0_set.lo[i], x0_set.hi[i]);
      }
      return robustness(x0, nullptr);
    };
    cmaes::CmaesOptions copts;
    copts.max_iterations = options_.cmaes_iterations;
    copts.lambda = options_.cmaes_population;
    copts.seed = options_.seed + 1;
    copts.eval_threads = threads;  // objective above is thread-safe
    copts.pool = options_.pool;    // Engine pool when driven by one
    copts.should_stop = options_.should_stop;
    // Step size proportional to the set extent.
    double extent = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      extent = std::max(extent, x0_set.hi[i] - x0_set.lo[i]);
    }
    copts.sigma0 = 0.25 * extent;
    const cmaes::CmaesResult r =
        cmaes_minimize(objective, best.initial_state, copts);
    if (r.best_fitness < best.robustness) {
      best.robustness = r.best_fitness;
      best.initial_state = linalg::Vector(n);
      for (std::size_t i = 0; i < n; ++i) {
        best.initial_state[i] =
            std::clamp(r.best_x[i], x0_set.lo[i], x0_set.hi[i]);
      }
    }
  }

  // Materialize the winning trajectory.
  if (best.initial_state.size() == n) {
    best.robustness = robustness(best.initial_state, &best.trace);
  }
  best.falsified = best.robustness < 0.0;
  best.simulations = simulations_.load(std::memory_order_relaxed);
  return best;
}

}  // namespace bcert::core
