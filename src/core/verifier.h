#pragma once
/// \file verifier.h
/// \brief Deprecated quadratic-template facade over the unified
/// verification pipeline.
///
/// \deprecated `BarrierVerifier` survives as a thin shim over
/// `BarrierPipeline<QuadraticForm>` (pipeline.h) so existing call sites
/// keep compiling. New code should use `core::Engine` (engine.h) — it
/// shares the tape/UNSAT-tree caches, the LP warm-basis store and the
/// thread pool across scenarios, and adds async submission,
/// cancellation and deadlines. The shim's `verify()` is bit-identical
/// to the Engine's single-job path on a fresh Engine (asserted by
/// tests/engine_test.cpp).
///
/// The problem/options/result vocabulary lives in verify_types.h; this
/// header re-exports it for source compatibility.

#include <optional>
#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/core/verify_types.h"

namespace bcert::core {

/// Quadratic-template verifier — the procedure of Figure 1 in the paper.
///
/// \deprecated Thin shim over `BarrierPipeline<QuadraticForm>`; prefer
/// `core::Engine`. The exposed sub-steps delegate 1:1 to the pipeline.
class BarrierVerifier {
 public:
  BarrierVerifier(BarrierProblem problem, VerifierOptions options)
      : pipeline_(std::move(problem), std::move(options)) {}

  /// Runs the full pipeline (blocking, one-shot, per-run caches).
  /// \deprecated Use Engine::verify / Engine::submit.
  VerifyResult verify() { return pipeline_.run(); }

  // --- exposed sub-steps (delegating to the pipeline) ---------------------

  std::vector<FieldSample> simulate_samples(const linalg::Vector& x0) const {
    return pipeline_.simulate_samples(x0);
  }
  std::vector<linalg::Vector> random_initial_states(int count,
                                                    unsigned seed) const {
    return pipeline_.random_initial_states(count, seed);
  }
  /// SMT condition (5): ∃x ∈ D\X0 : ∇W·f(x) ≥ −γ. UNSAT ⇒ valid
  /// generator.
  smt::IcpResult check_decrease(const QuadraticForm& w,
                                double delta = 0.0) const {
    return pipeline_.check_decrease(w, delta);
  }
  double numeric_lie(const QuadraticForm& w, const linalg::Vector& x) const {
    return pipeline_.numeric_lie(w, x);
  }
  /// SMT condition (6): ∃x ∈ X0 : W(x) > ℓ. UNSAT ⇒ X0 ⊂ L.
  smt::IcpResult check_initial_contained(const QuadraticForm& w,
                                         double level) const {
    return pipeline_.check_initial_contained(w, level);
  }
  /// SMT condition (7): ∃x : W(x) ≤ ℓ ∧ x ∈ U. UNSAT ⇒ L ∩ U = ∅.
  smt::IcpResult check_unsafe_disjoint(const QuadraticForm& w,
                                       double level) const {
    return pipeline_.check_level_exclusion(w, level);
  }
  smt::IcpResult check_domain_invariance() const {
    return pipeline_.check_domain_invariance();
  }
  std::optional<std::pair<double, double>> level_window(
      const QuadraticForm& w) const {
    return pipeline_.level_window(w);
  }
  VerifyStatus check_certificate(const QuadraticForm& w, double level) const {
    return pipeline_.check_certificate(w, level);
  }
  void export_queries_smtlib(const QuadraticForm& w, double level,
                             const std::string& prefix) const {
    pipeline_.export_queries_smtlib(w, level, prefix);
  }

  const BarrierProblem& problem() const { return pipeline_.problem(); }
  const VerifierOptions& options() const { return pipeline_.options(); }

 private:
  BarrierPipeline<QuadraticForm> pipeline_;
};

}  // namespace bcert::core
