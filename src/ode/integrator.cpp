#include "src/ode/integrator.h"

#include <algorithm>
#include <cmath>

namespace bcert::ode {

linalg::Vector rk4_step(const VectorField& f, const linalg::Vector& x,
                        double h) {
  const linalg::Vector k1 = f(x);
  const linalg::Vector k2 = f(x + k1 * (h / 2.0));
  const linalg::Vector k3 = f(x + k2 * (h / 2.0));
  const linalg::Vector k4 = f(x + k3 * h);
  return x + (k1 + 2.0 * k2 + 2.0 * k3 + k4) * (h / 6.0);
}

Trace integrate_rk4(const VectorField& f, const linalg::Vector& x0,
                    const IntegrateOptions& opts) {
  Trace trace;
  const auto steps = static_cast<std::size_t>(
      std::ceil(opts.t_end / opts.step));
  trace.reserve(steps + 1);
  linalg::Vector x = x0;
  double t = 0.0;
  trace.push_back(t, x);
  for (std::size_t i = 0; i < steps; ++i) {
    const double h = std::min(opts.step, opts.t_end - t);
    if (h <= 0.0) break;
    x = rk4_step(f, x, h);
    t += h;
    trace.push_back(t, x);
    if (opts.stop && opts.stop(t, x)) break;
  }
  return trace;
}

namespace {

// Fehlberg coefficients (RKF45).
constexpr double kA2 = 1.0 / 4.0;
constexpr double kB31 = 3.0 / 32.0, kB32 = 9.0 / 32.0;
constexpr double kC41 = 1932.0 / 2197.0, kC42 = -7200.0 / 2197.0,
                 kC43 = 7296.0 / 2197.0;
constexpr double kD51 = 439.0 / 216.0, kD52 = -8.0, kD53 = 3680.0 / 513.0,
                 kD54 = -845.0 / 4104.0;
constexpr double kE61 = -8.0 / 27.0, kE62 = 2.0, kE63 = -3544.0 / 2565.0,
                 kE64 = 1859.0 / 4104.0, kE65 = -11.0 / 40.0;
// 4th-order solution weights.
constexpr double kW41 = 25.0 / 216.0, kW43 = 1408.0 / 2565.0,
                 kW44 = 2197.0 / 4104.0, kW45 = -1.0 / 5.0;
// 5th-order solution weights.
constexpr double kW51 = 16.0 / 135.0, kW53 = 6656.0 / 12825.0,
                 kW54 = 28561.0 / 56430.0, kW55 = -9.0 / 50.0,
                 kW56 = 2.0 / 55.0;

}  // namespace

Trace integrate_rkf45(const VectorField& f, const linalg::Vector& x0,
                      const IntegrateOptions& opts) {
  Trace trace;
  linalg::Vector x = x0;
  double t = 0.0;
  double h = opts.step;
  trace.push_back(t, x);

  while (t < opts.t_end) {
    h = std::min(h, opts.t_end - t);
    h = std::clamp(h, opts.min_step, opts.max_step);

    const linalg::Vector k1 = f(x) * h;
    const linalg::Vector k2 = f(x + k1 * kA2) * h;
    const linalg::Vector k3 = f(x + k1 * kB31 + k2 * kB32) * h;
    const linalg::Vector k4 = f(x + k1 * kC41 + k2 * kC42 + k3 * kC43) * h;
    const linalg::Vector k5 =
        f(x + k1 * kD51 + k2 * kD52 + k3 * kD53 + k4 * kD54) * h;
    const linalg::Vector k6 =
        f(x + k1 * kE61 + k2 * kE62 + k3 * kE63 + k4 * kE64 + k5 * kE65) * h;

    const linalg::Vector x4 =
        x + k1 * kW41 + k3 * kW43 + k4 * kW44 + k5 * kW45;
    const linalg::Vector x5 = x + k1 * kW51 + k3 * kW53 + k4 * kW54 +
                              k5 * kW55 + k6 * kW56;

    const double err = (x5 - x4).norm_inf();
    const double tol =
        opts.abs_tol + opts.rel_tol * std::max(x.norm_inf(), x5.norm_inf());

    if (err <= tol || h <= opts.min_step) {
      t += h;
      x = x5;  // local extrapolation: accept the 5th-order solution
      trace.push_back(t, x);
      if (opts.stop && opts.stop(t, x)) break;
    }
    // Step-size update with the usual safety factor and clamps.
    const double scale =
        err > 0.0 ? 0.9 * std::pow(tol / err, 0.2) : 2.0;
    h *= std::clamp(scale, 0.2, 2.0);
  }
  return trace;
}

}  // namespace bcert::ode
