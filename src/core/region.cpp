#include "src/core/region.h"

#include <stdexcept>

namespace bcert::core {

void Rect::validate() const {
  if (lo.size() != hi.size() || lo.empty()) {
    throw std::invalid_argument("Rect: lo/hi dimension mismatch");
  }
  for (std::size_t i = 0; i < lo.size(); ++i) {
    if (lo[i] > hi[i]) {
      throw std::invalid_argument("Rect: lo > hi");
    }
  }
}

bool Rect::contains(const linalg::Vector& x) const {
  if (x.size() != lo.size()) return false;
  for (std::size_t i = 0; i < lo.size(); ++i) {
    if (x[i] < lo[i] || x[i] > hi[i]) return false;
  }
  return true;
}

std::vector<linalg::Vector> Rect::vertices() const {
  const std::size_t n = dims();
  std::vector<linalg::Vector> out;
  out.reserve(std::size_t{1} << n);
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    linalg::Vector v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = (mask >> i) & 1 ? hi[i] : lo[i];
    }
    out.push_back(std::move(v));
  }
  return out;
}

interval::Box Rect::as_box() const {
  std::vector<interval::Interval> dims_v;
  dims_v.reserve(dims());
  for (std::size_t i = 0; i < dims(); ++i) dims_v.emplace_back(lo[i], hi[i]);
  return interval::Box(std::move(dims_v));
}

linalg::Vector Rect::center() const {
  linalg::Vector c(dims());
  for (std::size_t i = 0; i < dims(); ++i) c[i] = 0.5 * (lo[i] + hi[i]);
  return c;
}

smt::Conjunction inside_rect(expr::ExprPool& pool, const Rect& rect) {
  smt::Conjunction c;
  for (std::size_t i = 0; i < rect.dims(); ++i) {
    const expr::ExprId xi = pool.var(static_cast<std::int32_t>(i));
    // lo_i − x_i ≤ 0 and x_i − hi_i ≤ 0.
    c.add(pool.sub(pool.constant(rect.lo[i]), xi), smt::Rel::kLe);
    c.add(pool.sub(xi, pool.constant(rect.hi[i])), smt::Rel::kLe);
  }
  return c;
}

smt::Dnf outside_rect(expr::ExprPool& pool, const Rect& rect) {
  smt::Dnf dnf;
  for (const Halfspace& hs : complement_halfspaces(rect)) {
    smt::Conjunction c;
    c.constraints.push_back(halfspace_constraint(pool, hs));
    dnf.disjuncts.push_back(std::move(c));
  }
  return dnf;
}

std::vector<Halfspace> complement_halfspaces(const Rect& rect) {
  std::vector<Halfspace> out;
  out.reserve(2 * rect.dims());
  for (std::size_t i = 0; i < rect.dims(); ++i) {
    out.push_back({i, -1, rect.lo[i]});  // x_i ≤ lo_i
    out.push_back({i, +1, rect.hi[i]});  // x_i ≥ hi_i
  }
  return out;
}

smt::Constraint halfspace_constraint(expr::ExprPool& pool,
                                     const Halfspace& hs) {
  const expr::ExprId xi = pool.var(static_cast<std::int32_t>(hs.dim));
  const expr::ExprId b = pool.constant(hs.bound);
  if (hs.side > 0) {
    // x ≥ bound ⇔ bound − x ≤ 0.
    return {pool.sub(b, xi), smt::Rel::kLe};
  }
  // x ≤ bound ⇔ x − bound ≤ 0.
  return {pool.sub(xi, b), smt::Rel::kLe};
}

}  // namespace bcert::core
