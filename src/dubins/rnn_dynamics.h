#pragma once
/// \file rnn_dynamics.h
/// \brief Closed-loop dynamics with a *stateful* (CTRNN) controller —
/// the paper's future-work configuration (§2, §5).
///
/// Augmented state x = [d_err, θ_err, h_1, ..., h_k]:
///
///   ḋ_err  = −V sin(θr−θ)cos(θr) + V cos(θr−θ)sin(θr)
///   θ̇_err  = −u,          u = Wo·h + bo
///   τ·ḣ    = −h + act(Wx·[d, θ] + Wh·h + b)
///
/// The closed loop is autonomous, so the unmodified barrier-certificate
/// pipeline verifies it; the SMT queries just gain k dimensions.

#include <vector>

#include "src/dubins/error_dynamics.h"
#include "src/nn/ctrnn.h"

namespace bcert::dubins {

/// Numeric augmented field over [d, θ, h...].
ode::VectorField rnn_closed_loop_field(const ErrorModel& model,
                                       const nn::Ctrnn& controller);

/// Allocation-free augmented field; bit-identical to
/// rnn_closed_loop_field. Each invocation of the factory-style call
/// returns an independent instance (own scratch buffers), matching the
/// BarrierProblem::sim_field_factory contract.
ode::VectorFieldInPlace rnn_closed_loop_field_inplace(
    const ErrorModel& model, const nn::Ctrnn& controller);

/// Symbolic augmented field; variables 0 = d, 1 = θ, 2.. = h.
std::vector<expr::ExprId> rnn_closed_loop_field_expr(
    const ErrorModel& model, const nn::Ctrnn& controller,
    expr::ExprPool& pool);

}  // namespace bcert::dubins
