#pragma once
/// \file integrator.h
/// \brief Fixed-step RK4 and adaptive RKF45 integrators for autonomous
/// ODEs ẋ = f(x).
///
/// The paper uses MATLAB simulations only to *seed* the LP with sample
/// points; soundness of the final certificate never depends on
/// integration accuracy (the SMT step re-checks everything symbolically).
/// RK4 is the default; RKF45 is provided for stiff-ish NN controllers and
/// for cross-checking integration error in tests.
///
/// Two vector-field flavors exist:
///  * `VectorField` (returns a fresh Vector) — the convenient legacy API.
///  * `VectorFieldInPlace` (writes into a caller-owned buffer) — the
///    allocation-free API used by the hot simulation loops (falsifier,
///    CMA-ES training, LP sample generation). Both flavors run through
///    the same stepping code and produce bit-identical traces.
///
/// The integrators keep all Runge–Kutta stage buffers in an `RkScratch`
/// that is allocated once per call and reused across every step, so a
/// 2000-step rollout performs no per-step allocation beyond storing the
/// trace itself.

#include <functional>

#include "src/linalg/vector.h"
#include "src/ode/trace.h"

namespace bcert::ode {

/// Right-hand side of an autonomous ODE (allocating flavor).
using VectorField = std::function<linalg::Vector(const linalg::Vector&)>;

/// Allocation-free right-hand side: writes f(x) into \p dx. The buffer
/// arrives sized to the state dimension (after the first call) and must
/// be fully overwritten.
using VectorFieldInPlace =
    std::function<void(const linalg::Vector& x, linalg::Vector& dx)>;

/// Early-termination predicate (e.g. "state left the domain").
using StopPredicate = std::function<bool(double, const linalg::Vector&)>;

/// Integration settings.
struct IntegrateOptions {
  double step = 0.01;          ///< RK4 step / RKF45 initial step
  double t_end = 10.0;         ///< simulation horizon
  StopPredicate stop;          ///< optional early stop
  // RKF45 only:
  double abs_tol = 1e-8;
  double rel_tol = 1e-8;
  double min_step = 1e-6;
  double max_step = 0.1;
};

/// Reusable Runge–Kutta stage buffers. Value-initialized is fine; every
/// integrator sizes the members lazily on first use. One scratch must
/// not be shared between threads.
struct RkScratch {
  linalg::Vector k1, k2, k3, k4, k5, k6;
  linalg::Vector xt;   ///< stage evaluation point
  linalg::Vector x4;   ///< RKF45 4th-order candidate
  linalg::Vector xn;   ///< accepted next state
};

/// Classic fixed-step 4th-order Runge–Kutta from \p x0 at t = 0.
Trace integrate_rk4(const VectorFieldInPlace& f, const linalg::Vector& x0,
                    const IntegrateOptions& opts);
Trace integrate_rk4(const VectorField& f, const linalg::Vector& x0,
                    const IntegrateOptions& opts);

/// Runge–Kutta–Fehlberg 4(5) with step adaptation.
Trace integrate_rkf45(const VectorFieldInPlace& f, const linalg::Vector& x0,
                      const IntegrateOptions& opts);
Trace integrate_rkf45(const VectorField& f, const linalg::Vector& x0,
                      const IntegrateOptions& opts);

/// Single allocation-free RK4 step: writes the next state into \p out
/// (which may not alias \p x) using \p scratch for the stage buffers.
void rk4_step_inplace(const VectorFieldInPlace& f, const linalg::Vector& x,
                      double h, linalg::Vector& out, RkScratch& scratch);

/// Single RK4 step (exposed for discrete-time cost evaluation in
/// controller training). Allocating convenience wrapper.
linalg::Vector rk4_step(const VectorField& f, const linalg::Vector& x,
                        double h);

/// Adapts an allocating field to the in-place interface (the returned
/// field still pays f's allocations; use a native VectorFieldInPlace to
/// eliminate them). The referenced \p f must outlive the result.
VectorFieldInPlace wrap_field(const VectorField& f);

}  // namespace bcert::ode
