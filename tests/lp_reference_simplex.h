#pragma once
// The SEED two-phase tableau simplex, preserved verbatim (modulo
// namespacing / inline-ing) as the reference implementation for the
// differential tests in lp_warm_test.cpp: the flat vectorized solver in
// src/lp/simplex.cpp must agree with this one on status and objective
// for randomized programs. Test-only code — not built into the library.

#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/lp/problem.h"

namespace bcert::lp::seed_ref {

struct VarMap {
  enum class Kind { kShifted, kNegatedShifted, kSplit } kind = Kind::kSplit;
  std::size_t y1 = 0;
  std::size_t y2 = 0;
  double offset = 0.0;
};

struct StandardForm {
  std::vector<std::vector<double>> a;  // m x n
  std::vector<double> b;               // m
  std::vector<double> c;               // n
  std::vector<VarMap> var_map;         // original var -> standard vars
  std::size_t n = 0;
};

inline StandardForm build_standard_form(const LpProblem& p) {
  const std::size_t nv = p.num_vars();
  if (p.lower.size() != nv || p.upper.size() != nv) {
    throw std::invalid_argument("solve_lp: bounds size mismatch");
  }

  StandardForm sf;
  sf.var_map.resize(nv);

  for (std::size_t j = 0; j < nv; ++j) {
    const double l = p.lower[j], u = p.upper[j];
    if (l > u) throw std::invalid_argument("solve_lp: empty variable bound");
    VarMap& vm = sf.var_map[j];
    if (l != -kLpInf) {
      vm.kind = VarMap::Kind::kShifted;
      vm.offset = l;
      vm.y1 = sf.n++;
    } else if (u != kLpInf) {
      vm.kind = VarMap::Kind::kNegatedShifted;
      vm.offset = u;
      vm.y1 = sf.n++;
    } else {
      vm.kind = VarMap::Kind::kSplit;
      vm.y1 = sf.n++;
      vm.y2 = sf.n++;
    }
  }

  struct RawRow {
    std::vector<double> coeffs;
    RowRel rel;
    double rhs;
  };
  std::vector<RawRow> raw;

  auto substitute = [&](const linalg::Vector& coeffs, double rhs) {
    RawRow rr;
    rr.coeffs.assign(sf.n, 0.0);
    rr.rhs = rhs;
    for (std::size_t j = 0; j < nv; ++j) {
      const double cj = coeffs[j];
      if (cj == 0.0) continue;
      const VarMap& vm = sf.var_map[j];
      switch (vm.kind) {
        case VarMap::Kind::kShifted:
          rr.coeffs[vm.y1] += cj;
          rr.rhs -= cj * vm.offset;
          break;
        case VarMap::Kind::kNegatedShifted:
          rr.coeffs[vm.y1] -= cj;
          rr.rhs -= cj * vm.offset;
          break;
        case VarMap::Kind::kSplit:
          rr.coeffs[vm.y1] += cj;
          rr.coeffs[vm.y2] -= cj;
          break;
      }
    }
    return rr;
  };

  for (const LpRow& row : p.rows) {
    if (row.coeffs.size() != nv) {
      throw std::invalid_argument("solve_lp: row size mismatch");
    }
    RawRow rr = substitute(row.coeffs, row.rhs);
    rr.rel = row.rel;
    raw.push_back(std::move(rr));
  }
  for (std::size_t j = 0; j < nv; ++j) {
    const VarMap& vm = sf.var_map[j];
    const double l = p.lower[j], u = p.upper[j];
    if (vm.kind == VarMap::Kind::kShifted && u != kLpInf) {
      RawRow rr;
      rr.coeffs.assign(sf.n, 0.0);
      rr.coeffs[vm.y1] = 1.0;
      rr.rel = RowRel::kLe;
      rr.rhs = u - l;
      raw.push_back(std::move(rr));
    }
    (void)l;
  }

  const double sense = p.sense == Sense::kMaximize ? -1.0 : 1.0;
  sf.c.assign(sf.n, 0.0);
  for (std::size_t j = 0; j < nv; ++j) {
    const double cj = sense * p.objective[j];
    if (cj == 0.0) continue;
    const VarMap& vm = sf.var_map[j];
    switch (vm.kind) {
      case VarMap::Kind::kShifted:
        sf.c[vm.y1] += cj;
        break;
      case VarMap::Kind::kNegatedShifted:
        sf.c[vm.y1] -= cj;
        break;
      case VarMap::Kind::kSplit:
        sf.c[vm.y1] += cj;
        sf.c[vm.y2] -= cj;
        break;
    }
  }

  const std::size_t m = raw.size();
  std::size_t n_total = sf.n;
  for (const RawRow& rr : raw) {
    if (rr.rel != RowRel::kEq) ++n_total;
  }
  sf.a.assign(m, std::vector<double>(n_total, 0.0));
  sf.b.assign(m, 0.0);
  sf.c.resize(n_total, 0.0);

  std::size_t slack_col = sf.n;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < sf.n; ++j) sf.a[i][j] = raw[i].coeffs[j];
    sf.b[i] = raw[i].rhs;
    if (raw[i].rel == RowRel::kLe) {
      sf.a[i][slack_col++] = 1.0;
    } else if (raw[i].rel == RowRel::kGe) {
      sf.a[i][slack_col++] = -1.0;
    }
    if (sf.b[i] < 0.0) {
      for (double& v : sf.a[i]) v = -v;
      sf.b[i] = -sf.b[i];
    }
  }
  sf.n = n_total;
  return sf;
}

class Tableau {
 public:
  Tableau(StandardForm sf, const SimplexOptions& opts)
      : sf_(std::move(sf)), opts_(opts), m_(sf_.b.size()) {
    n_struct_ = sf_.n;
    n_ = n_struct_ + m_;
    t_.assign(m_, std::vector<double>(n_ + 1, 0.0));
    basis_.assign(m_, 0);
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = 0; j < n_struct_; ++j) t_[i][j] = sf_.a[i][j];
      t_[i][n_struct_ + i] = 1.0;
      t_[i][n_] = sf_.b[i];
      basis_[i] = n_struct_ + i;
    }
  }

  LpStatus run() {
    std::vector<double> cost1(n_, 0.0);
    for (std::size_t j = n_struct_; j < n_; ++j) cost1[j] = 1.0;
    build_reduced_costs(cost1);
    LpStatus s = iterate();
    if (s != LpStatus::kOptimal) return s;
    if (objective_value() > 1e-7) return LpStatus::kInfeasible;
    if (!drive_out_artificials()) return LpStatus::kInfeasible;

    std::vector<double> cost2 = sf_.c;
    cost2.resize(n_, 0.0);
    frozen_after_ = n_struct_;
    build_reduced_costs(cost2);
    return iterate();
  }

  int iterations() const { return iters_; }

  double value_of(std::size_t j) const {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] == j) return t_[i][n_];
    }
    return 0.0;
  }

  double objective_value() const { return -z_[n_]; }

 private:
  void build_reduced_costs(const std::vector<double>& cost) {
    z_.assign(n_ + 1, 0.0);
    for (std::size_t j = 0; j <= n_; ++j) {
      double acc = (j < n_) ? cost[j] : 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        acc -= cost[basis_[i]] * t_[i][j];
      }
      z_[j] = acc;
    }
  }

  void pivot(std::size_t row, std::size_t col) {
    const double piv = t_[row][col];
    for (double& v : t_[row]) v /= piv;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double f = t_[i][col];
      if (f == 0.0) continue;
      for (std::size_t j = 0; j <= n_; ++j) t_[i][j] -= f * t_[row][j];
    }
    const double zf = z_[col];
    if (zf != 0.0) {
      for (std::size_t j = 0; j <= n_; ++j) z_[j] -= zf * t_[row][j];
    }
    basis_[row] = col;
  }

  LpStatus iterate() {
    for (;; ++iters_) {
      if (iters_ >= opts_.max_iterations) return LpStatus::kIterLimit;
      const bool bland = iters_ >= opts_.bland_after;

      std::size_t enter = n_;
      double best = -opts_.eps;
      const std::size_t limit = frozen_after_ ? frozen_after_ : n_;
      for (std::size_t j = 0; j < limit; ++j) {
        if (z_[j] < best) {
          enter = j;
          if (bland) break;
          best = z_[j];
        } else if (bland && z_[j] < -opts_.eps) {
          enter = j;
          break;
        }
      }
      if (enter == n_) return LpStatus::kOptimal;

      std::size_t leave = m_;
      double best_ratio = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        const double a = t_[i][enter];
        if (a <= opts_.eps) continue;
        const double ratio = t_[i][n_] / a;
        if (leave == m_ || ratio < best_ratio - 1e-12 ||
            (std::fabs(ratio - best_ratio) <= 1e-12 &&
             basis_[i] < basis_[leave])) {
          leave = i;
          best_ratio = ratio;
        }
      }
      if (leave == m_) return LpStatus::kUnbounded;
      pivot(leave, enter);
    }
  }

  bool drive_out_artificials() {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_struct_) continue;
      std::size_t col = n_struct_;
      for (std::size_t j = 0; j < n_struct_; ++j) {
        if (std::fabs(t_[i][j]) > 1e-7) {
          col = j;
          break;
        }
      }
      if (col == n_struct_) {
        if (std::fabs(t_[i][n_]) > 1e-7) return false;
        continue;
      }
      pivot(i, col);
    }
    return true;
  }

  StandardForm sf_;
  SimplexOptions opts_;
  std::size_t m_;
  std::size_t n_struct_ = 0;
  std::size_t n_ = 0;
  std::size_t frozen_after_ = 0;
  std::vector<std::vector<double>> t_;
  std::vector<double> z_;
  std::vector<std::size_t> basis_;
  int iters_ = 0;
};

/// The seed's solve_lp (ignores warm_start/pricing options it predates).
inline LpSolution solve_lp(const LpProblem& problem,
                           const SimplexOptions& opts = {}) {
  StandardForm sf = build_standard_form(problem);
  const std::vector<VarMap> var_map = sf.var_map;
  Tableau tab(std::move(sf), opts);

  LpSolution sol;
  sol.status = tab.run();
  sol.iterations = tab.iterations();
  if (sol.status != LpStatus::kOptimal) return sol;

  sol.x = linalg::Vector(problem.num_vars());
  for (std::size_t j = 0; j < problem.num_vars(); ++j) {
    const VarMap& vm = var_map[j];
    switch (vm.kind) {
      case VarMap::Kind::kShifted:
        sol.x[j] = vm.offset + tab.value_of(vm.y1);
        break;
      case VarMap::Kind::kNegatedShifted:
        sol.x[j] = vm.offset - tab.value_of(vm.y1);
        break;
      case VarMap::Kind::kSplit:
        sol.x[j] = tab.value_of(vm.y1) - tab.value_of(vm.y2);
        break;
    }
  }
  sol.objective = dot(problem.objective, sol.x);
  return sol;
}

}  // namespace bcert::lp::seed_ref
