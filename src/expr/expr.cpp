#include "src/expr/expr.h"

#include <cmath>
#include <functional>
#include <stdexcept>

namespace bcert::expr {

bool is_binary(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMin:
    case Op::kMax:
      return true;
    default:
      return false;
  }
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kVar: return "var";
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kNeg: return "neg";
    case Op::kSin: return "sin";
    case Op::kCos: return "cos";
    case Op::kTan: return "tan";
    case Op::kAtan: return "atan";
    case Op::kExp: return "exp";
    case Op::kLog: return "log";
    case Op::kSqrt: return "sqrt";
    case Op::kSqr: return "sqr";
    case Op::kPow: return "pow";
    case Op::kTanh: return "tanh";
    case Op::kSigmoid: return "sigmoid";
    case Op::kRelu: return "relu";
    case Op::kAbs: return "abs";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
  }
  return "?";
}

std::size_t ExprPool::NodeKeyHash::operator()(const NodeKey& k) const {
  std::size_t h = std::hash<int>()(static_cast<int>(k.op));
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<ExprId>()(k.a));
  mix(std::hash<ExprId>()(k.b));
  mix(std::hash<double>()(k.value));
  mix(std::hash<std::int32_t>()(k.index));
  return h;
}

ExprPool::ExprPool() {
  nodes_.reserve(1024);
  constant(0.0);  // id 0 is always the zero literal
  constant(1.0);  // id 1 is always the one literal
}

ExprId ExprPool::intern(const Node& n) {
  NodeKey key{n.op, n.a, n.b, n.value, n.index};
  auto [it, inserted] =
      interned_.emplace(key, static_cast<ExprId>(nodes_.size()));
  if (inserted) nodes_.push_back(n);
  return it->second;
}

ExprId ExprPool::constant(double v) {
  Node n;
  n.op = Op::kConst;
  n.value = v;
  return intern(n);
}

ExprId ExprPool::var(std::int32_t index) {
  if (index < 0) throw std::invalid_argument("ExprPool::var: negative index");
  Node n;
  n.op = Op::kVar;
  n.index = index;
  num_vars_ = std::max(num_vars_, static_cast<std::size_t>(index) + 1);
  return intern(n);
}

bool ExprPool::is_const(ExprId id, double v) const {
  const Node& n = node(id);
  return n.op == Op::kConst && n.value == v;
}

ExprId ExprPool::add(ExprId a, ExprId b) {
  if (is_const(a, 0.0)) return b;
  if (is_const(b, 0.0)) return a;
  if (is_const(a) && is_const(b))
    return constant(node(a).value + node(b).value);
  if (a > b) std::swap(a, b);  // canonical order for commutative ops
  Node n;
  n.op = Op::kAdd;
  n.a = a;
  n.b = b;
  return intern(n);
}

ExprId ExprPool::sub(ExprId a, ExprId b) {
  if (is_const(b, 0.0)) return a;
  if (a == b) return zero();
  if (is_const(a) && is_const(b))
    return constant(node(a).value - node(b).value);
  if (is_const(a, 0.0)) return neg(b);
  Node n;
  n.op = Op::kSub;
  n.a = a;
  n.b = b;
  return intern(n);
}

ExprId ExprPool::mul(ExprId a, ExprId b) {
  if (is_const(a, 0.0) || is_const(b, 0.0)) return zero();
  if (is_const(a, 1.0)) return b;
  if (is_const(b, 1.0)) return a;
  if (is_const(a) && is_const(b))
    return constant(node(a).value * node(b).value);
  if (is_const(a, -1.0)) return neg(b);
  if (is_const(b, -1.0)) return neg(a);
  if (a == b) return sqr(a);
  if (a > b) std::swap(a, b);
  Node n;
  n.op = Op::kMul;
  n.a = a;
  n.b = b;
  return intern(n);
}

ExprId ExprPool::div(ExprId a, ExprId b) {
  if (is_const(a, 0.0)) return zero();
  if (is_const(b, 1.0)) return a;
  if (is_const(a) && is_const(b) && node(b).value != 0.0)
    return constant(node(a).value / node(b).value);
  Node n;
  n.op = Op::kDiv;
  n.a = a;
  n.b = b;
  return intern(n);
}

ExprId ExprPool::neg(ExprId a) {
  if (is_const(a)) return constant(-node(a).value);
  if (node(a).op == Op::kNeg) return node(a).a;
  Node n;
  n.op = Op::kNeg;
  n.a = a;
  return intern(n);
}

#define BCERT_UNARY(NAME, OPTAG, FOLD)                      \
  ExprId ExprPool::NAME(ExprId a) {                         \
    if (is_const(a)) return constant(FOLD(node(a).value));  \
    Node n;                                                 \
    n.op = OPTAG;                                           \
    n.a = a;                                                \
    return intern(n);                                       \
  }

BCERT_UNARY(sin, Op::kSin, std::sin)
BCERT_UNARY(cos, Op::kCos, std::cos)
BCERT_UNARY(tan, Op::kTan, std::tan)
BCERT_UNARY(atan, Op::kAtan, std::atan)
BCERT_UNARY(exp, Op::kExp, std::exp)
BCERT_UNARY(log, Op::kLog, std::log)
BCERT_UNARY(sqrt, Op::kSqrt, std::sqrt)
BCERT_UNARY(tanh, Op::kTanh, std::tanh)
BCERT_UNARY(abs, Op::kAbs, std::fabs)

#undef BCERT_UNARY

ExprId ExprPool::sqr(ExprId a) {
  if (is_const(a)) return constant(node(a).value * node(a).value);
  Node n;
  n.op = Op::kSqr;
  n.a = a;
  return intern(n);
}

ExprId ExprPool::pow(ExprId a, std::int32_t e) {
  if (e == 0) return one();
  if (e == 1) return a;
  if (e == 2) return sqr(a);
  if (is_const(a)) return constant(std::pow(node(a).value, e));
  Node n;
  n.op = Op::kPow;
  n.a = a;
  n.index = e;
  return intern(n);
}

ExprId ExprPool::sigmoid(ExprId a) {
  if (is_const(a)) return constant(1.0 / (1.0 + std::exp(-node(a).value)));
  Node n;
  n.op = Op::kSigmoid;
  n.a = a;
  return intern(n);
}

ExprId ExprPool::relu(ExprId a) {
  if (is_const(a)) return constant(std::max(node(a).value, 0.0));
  Node n;
  n.op = Op::kRelu;
  n.a = a;
  return intern(n);
}

ExprId ExprPool::min(ExprId a, ExprId b) {
  if (a == b) return a;
  if (is_const(a) && is_const(b))
    return constant(std::min(node(a).value, node(b).value));
  if (a > b) std::swap(a, b);
  Node n;
  n.op = Op::kMin;
  n.a = a;
  n.b = b;
  return intern(n);
}

ExprId ExprPool::max(ExprId a, ExprId b) {
  if (a == b) return a;
  if (is_const(a) && is_const(b))
    return constant(std::max(node(a).value, node(b).value));
  if (a > b) std::swap(a, b);
  Node n;
  n.op = Op::kMax;
  n.a = a;
  n.b = b;
  return intern(n);
}

ExprId ExprPool::sum(const std::vector<ExprId>& terms) {
  // Balanced reduction keeps depth O(log n) for wide sums (NN layers).
  if (terms.empty()) return zero();
  std::vector<ExprId> level = terms;
  while (level.size() > 1) {
    std::vector<ExprId> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(add(level[i], level[i + 1]));
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

ExprId ExprPool::affine(const std::vector<double>& coeffs,
                        const std::vector<ExprId>& terms, double bias) {
  if (coeffs.size() != terms.size()) {
    throw std::invalid_argument("ExprPool::affine: size mismatch");
  }
  std::vector<ExprId> parts;
  parts.reserve(terms.size() + 1);
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (coeffs[i] == 0.0) continue;
    parts.push_back(mul(constant(coeffs[i]), terms[i]));
  }
  if (bias != 0.0) parts.push_back(constant(bias));
  return sum(parts);
}

double ExprPool::eval(ExprId id, const linalg::Vector& x) const {
  std::vector<double> memo(nodes_.size(),
                           std::numeric_limits<double>::quiet_NaN());
  std::vector<bool> done(nodes_.size(), false);
  // Iterative post-order to avoid deep recursion on long sum chains.
  std::vector<std::pair<ExprId, bool>> stack{{id, false}};
  while (!stack.empty()) {
    auto [cur, expanded] = stack.back();
    stack.pop_back();
    if (done[cur]) continue;
    const Node& n = nodes_[cur];
    if (!expanded) {
      stack.push_back({cur, true});
      if (n.a != kNoExpr && !done[n.a]) stack.push_back({n.a, false});
      if (n.b != kNoExpr && !done[n.b]) stack.push_back({n.b, false});
      continue;
    }
    const double a = n.a != kNoExpr ? memo[n.a] : 0.0;
    const double b = n.b != kNoExpr ? memo[n.b] : 0.0;
    double v = 0.0;
    switch (n.op) {
      case Op::kConst: v = n.value; break;
      case Op::kVar: v = x[static_cast<std::size_t>(n.index)]; break;
      case Op::kAdd: v = a + b; break;
      case Op::kSub: v = a - b; break;
      case Op::kMul: v = a * b; break;
      case Op::kDiv: v = a / b; break;
      case Op::kNeg: v = -a; break;
      case Op::kSin: v = std::sin(a); break;
      case Op::kCos: v = std::cos(a); break;
      case Op::kTan: v = std::tan(a); break;
      case Op::kAtan: v = std::atan(a); break;
      case Op::kExp: v = std::exp(a); break;
      case Op::kLog: v = std::log(a); break;
      case Op::kSqrt: v = std::sqrt(a); break;
      case Op::kSqr: v = a * a; break;
      case Op::kPow: v = std::pow(a, n.index); break;
      case Op::kTanh: v = std::tanh(a); break;
      case Op::kSigmoid: v = 1.0 / (1.0 + std::exp(-a)); break;
      case Op::kRelu: v = std::max(a, 0.0); break;
      case Op::kAbs: v = std::fabs(a); break;
      case Op::kMin: v = std::min(a, b); break;
      case Op::kMax: v = std::max(a, b); break;
    }
    memo[cur] = v;
    done[cur] = true;
  }
  return memo[id];
}

std::vector<std::int32_t> ExprPool::variables(ExprId id) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<bool> vars(num_vars_, false);
  std::vector<ExprId> stack{id};
  while (!stack.empty()) {
    const ExprId cur = stack.back();
    stack.pop_back();
    if (seen[cur]) continue;
    seen[cur] = true;
    const Node& n = nodes_[cur];
    if (n.op == Op::kVar) vars[static_cast<std::size_t>(n.index)] = true;
    if (n.a != kNoExpr) stack.push_back(n.a);
    if (n.b != kNoExpr) stack.push_back(n.b);
  }
  std::vector<std::int32_t> out;
  for (std::size_t i = 0; i < vars.size(); ++i)
    if (vars[i]) out.push_back(static_cast<std::int32_t>(i));
  return out;
}

std::size_t ExprPool::term_size(ExprId id) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<ExprId> stack{id};
  std::size_t count = 0;
  while (!stack.empty()) {
    const ExprId cur = stack.back();
    stack.pop_back();
    if (seen[cur]) continue;
    seen[cur] = true;
    ++count;
    const Node& n = nodes_[cur];
    if (n.a != kNoExpr) stack.push_back(n.a);
    if (n.b != kNoExpr) stack.push_back(n.b);
  }
  return count;
}

}  // namespace bcert::expr
