#pragma once
/// \file prng.h
/// \brief Deterministic, platform-independent randomness for scenario
/// generation.
///
/// The generator's seed contract ("identical seeds reproduce
/// bit-identical suites") cannot be built on `std::normal_distribution`
/// or `std::uniform_real_distribution`: the standard leaves their
/// algorithms implementation-defined, so libstdc++ and libc++ disagree
/// bit-for-bit. SplitMix64 (Steele, Lea & Flood 2014) is a fixed
/// published integer recurrence, and the mapping to doubles below uses
/// only exact power-of-two scaling of the top 53 bits — every value is
/// reproducible on any IEEE-754 platform from the seed alone.

#include <cstdint>

namespace bcert::scenario {

/// SplitMix64: 64 bits of state, one multiply-xorshift mix per draw.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1) with 53-bit resolution.
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Symmetric jitter in [-magnitude, magnitude).
  double jitter(double magnitude) { return uniform(-magnitude, magnitude); }

  /// Multiplicative jitter factor in [1 - relative, 1 + relative).
  double scale(double relative) { return 1.0 + jitter(relative); }

  /// Uniform integer in [0, n); n must be > 0. The tiny modulo bias is
  /// irrelevant for scenario mixing (n is always ≪ 2^32).
  std::uint64_t below(std::uint64_t n) { return next_u64() % n; }

  /// A decorrelated child seed for stream \p index: scenario i's stream
  /// depends only on (seed, i), never on how many draws earlier
  /// scenarios consumed — the basis of the generator's prefix stability.
  static std::uint64_t derive(std::uint64_t seed, std::uint64_t index) {
    SplitMix64 mixer(seed ^ (0xD1B54A32D192ED03ULL * (index + 1)));
    return mixer.next_u64();
  }

 private:
  std::uint64_t state_;
};

}  // namespace bcert::scenario
