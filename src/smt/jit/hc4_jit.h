#pragma once
/// \file hc4_jit.h
/// \brief Native x86-64 backend for HC4 contraction tapes.
///
/// `Hc4Jit` lowers one `Hc4Tape` through the SSA-style IR
/// (src/smt/ir/ir.h) — interval constant folding, common-subexpression
/// sharing, dead-projection pruning — and emits two machine-code entry
/// points over the tape's flat register file:
///
///   * `forward_fn(regs)`  — the forward sweep with the outward rounding
///     fused into the SSE arithmetic, every constraint root's natural
///     enclosure written to a tail buffer (`regs[num_slots + i]`), then
///     the feasible-set intersections; returns 0 the moment a root goes
///     empty.
///   * `backward_fn(regs)` — the reverse projection sweep; hot shapes
///     (kAdd legs, requirement-emptiness checks) are inline SSE, the
///     long tail of transcendental projections calls back into the same
///     `project_node` the interpreter runs.
///
/// The contract is *bit identity*: for every box, `Hc4Jit::contract` and
/// `Hc4Tape::contract` produce the same `ContractResult`, the same
/// narrowed box, and the same forward-root enclosures, down to NaN
/// payloads and signed zeros (the jit-vs-tape differential fuzz suite
/// enforces this). The interpreter therefore remains both the fallback —
/// `compile()` throws `JitUnavailable` on non-x86-64 hosts or when
/// executable memory is refused, and the contractor setup degrades
/// jit → tape, counted in `DegradationCounters::jit_to_tape` — and the
/// differential oracle.
///
/// A compiled jit is immutable and holds no mutable scratch: concurrent
/// workers share one `const Hc4Jit` and keep private register files,
/// exactly like the tape. `TapeCache::get_or_compile_jit` reuses the
/// tape's structural signature to share compilations across queries.

#include <cstddef>
#include <memory>
#include <vector>

#include "src/interval/box.h"
#include "src/interval/interval.h"
#include "src/linalg/vector.h"
#include "src/smt/ir/ir.h"
#include "src/smt/jit/exec_arena.h"
#include "src/smt/tape.h"

namespace bcert::smt {

/// One tape compiled to native code. Create via `compile()`.
class Hc4Jit {
 public:
  /// Per-worker mutable state: the tape's register file plus one tail
  /// slot per constraint root for the forward enclosures, plus one
  /// (value, operand) shadow pair per transcendental projection the
  /// emitted code can prove is a no-op and skip (see hc4_jit.cpp).
  using Registers = std::vector<interval::Interval>;

  /// Runs tape → IR → optimization passes → x86-64 emission.
  /// Throws `JitUnavailable` when the host cannot execute emitted code
  /// (non-x86-64 build, exec-mmap denial) and `core::FaultInjected` when
  /// the `jit_compile` fault point is armed. Failures leave no state
  /// behind; callers fall back to \p tape bit-identically.
  static std::shared_ptr<const Hc4Jit> compile(
      std::shared_ptr<const Hc4Tape> tape);

  const Hc4Tape& tape() const { return *tape_; }
  const std::shared_ptr<const Hc4Tape>& tape_ptr() const { return tape_; }
  const Conjunction& conjunction() const { return tape_->conjunction(); }

  /// The optimized IR this code was emitted from (pass stats, dumps).
  const ir::Program& program() const { return prog_; }
  /// Emitted machine-code size in bytes (both entry points).
  std::size_t code_size() const { return code_size_; }

  /// Fresh register file sized for this jit (constants preloaded).
  Registers make_registers() const;

  /// One forward+backward HC4 pass; bit-identical to Hc4Tape::contract
  /// (including the `kHc4Backward` fault point between the sweeps).
  ContractResult contract(interval::Box& box, Registers& regs,
                          std::vector<interval::Interval>* fwd_roots) const;

  /// Forward-only evaluation of the constraint roots over \p box;
  /// bit-identical to Hc4Tape::eval_roots.
  void eval_roots(const interval::Box& box, Registers& regs,
                  std::vector<interval::Interval>& out) const;

 private:
  using JitFn = int (*)(interval::Interval*);

  Hc4Jit(std::shared_ptr<const Hc4Tape> tape, ir::Program prog,
         linalg::AlignedDoubles data, const std::vector<std::uint8_t>& code,
         std::size_t fwd_off, std::size_t bwd_off, bool needs_nonempty_leaves,
         bool reseed_consts, std::size_t shadow_pairs);

  /// Seeds constants (leaf + folded) and the box's variables into \p regs.
  void load_leaves(const interval::Box& box, Registers& regs) const;
  std::size_t register_count() const;

  std::shared_ptr<const Hc4Tape> tape_;
  ir::Program prog_;
  linalg::AlignedDoubles data_;  ///< constant table the code addresses
  jit::ExecMemory exec_;
  JitFn forward_fn_;
  JitFn backward_fn_;
  std::size_t code_size_;
  /// The emitted code elided the provably-dead emptiness checks under a
  /// nonempty-leaves precondition; boxes with an empty variable interval
  /// take the (bit-identical) interpreter path instead.
  bool needs_nonempty_leaves_;
  /// Some backward projection (or root intersection) can write a
  /// constant slot, so load_leaves must re-seed constants per call.
  bool reseed_consts_;
  /// Shadow (value, operand) pairs appended to the register file for the
  /// backward no-narrow skip.
  std::size_t shadow_pairs_;
};

}  // namespace bcert::smt
