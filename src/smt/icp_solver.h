#pragma once
/// \file icp_solver.h
/// \brief δ-complete branch-and-prune satisfiability solver.
///
/// This plays the role dReal plays in the paper: it decides existential
/// queries `∃x ∈ box : φ(x)` where φ is a conjunction (or DNF) of
/// nonlinear real constraints built from Type-2 computable functions
/// (polynomials, trig, exp, tanh, sigmoid, ...).
///
/// Answer semantics (mirroring δ-decidability, Gao et al. 2012):
///  * `kUnsat`  — *proof*: no real point in the box satisfies φ.
///  * `kSat`    — a box was found over which φ certainly holds; its
///                midpoint is a genuine witness.
///  * `kDeltaSat` — a box of width ≤ δ survived pruning; φ may hold there
///                (a δ-weakening of φ does). Treated as SAT by callers,
///                exactly as the paper treats dReal's δ-sat answers.
///  * `kUnknown` — resource budget exhausted.
///
/// Batched frontier: the solver pops, contracts, splits and prunes
/// *sibling groups* of boxes (`IcpConfig::batch_size` lanes) instead of
/// one box at a time, running the structure-of-arrays tape sweeps
/// (src/smt/tape.h) across the group. Exploration order is documented
/// and stable:
///  * the frontier is a LIFO stack; each surviving box pushes its left
///    child then its right child (so the right child is explored first);
///  * splits bisect the widest dimension, ties breaking to the *lowest*
///    dimension index (Box::widest_dim);
///  * a batch pops the top `batch_size` boxes, processes them in pop
///    order (deepest first), and re-pushes surviving children in reverse
///    pop order, so the deepest box's children surface first.
/// With batch_size = 1 this is exactly the classic scalar DFS, witness
/// and statistics included; with any batch size each box's contraction
/// is bit-identical to the scalar path, so UNSAT/SAT answers never
/// change — only which witness is found first.
///
/// Parallel execution: with `IcpConfig::threads != 1` the box frontier is
/// shared across pool workers (each owning its own HC4 contractor or
/// batch register file). Idle workers steal whole chunks — up to a batch,
/// at most half the victim's shard — from the *front* of a victim shard,
/// which holds the shallowest (largest) subproblems. A worker that
/// proves (δ-)SAT short-circuits the others through a cancellation
/// token. UNSAT and UNKNOWN answers are identical to the sequential
/// solver's; a SAT witness box may differ between runs (any surviving
/// box is a valid witness — δ-decidability does not pin down which one
/// is reported). DNF queries dispatch their disjuncts concurrently under
/// one *shared* wall-clock/box budget, so a k-disjunct query can no
/// longer run k× over the configured limits.
///
/// UNSAT-tree warm-starting: when `IcpConfig::unsat_cache` is set (the
/// verifiers install one) and warm starts are enabled, every refuted
/// conjunction's terminal split tree is recorded, and a later query with
/// the same *structure* (same DAG shape — only constants such as W's
/// coefficients changed) over the same box is seeded from the replayed
/// partition leaves instead of the full initial box. Replayed leaves
/// always partition the query box, so a warm start can never produce an
/// unsound verdict: UNSAT remains a proof over the full box, and kSat
/// witnesses are independently certified. On δ-borderline queries the
/// UNSAT / δ-SAT split may differ from a cold run — exactly as it may
/// under any change of contraction granularity — which the callers'
/// adaptive-δ handling already absorbs. A stale seed (box mismatch)
/// silently cold-starts (see src/smt/unsat_tree.h).

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/core/fault.h"
#include "src/interval/box.h"
#include "src/smt/constraint.h"
#include "src/smt/hc4.h"
#include "src/smt/unsat_tree.h"

namespace bcert::parallel {
class CancellationToken;
class ThreadPool;
}  // namespace bcert::parallel

namespace bcert::smt {

/// Verdict of a query.
enum class SatResult : std::uint8_t { kUnsat, kSat, kDeltaSat, kUnknown };

const char* sat_result_name(SatResult r);

/// Tuning knobs for the solver.
struct IcpConfig {
  double delta = 1e-3;          ///< box-width precision (δ)
  std::uint64_t max_boxes = 10'000'000;  ///< branch budget (per query)
  double time_limit_s = 300.0;  ///< wall-clock budget (per query)
  int hc4_passes = 8;           ///< contraction passes per box
  double hc4_improvement = 0.05;  ///< fixpoint threshold (relative)
  /// Branch-and-prune parallelism: 0 = auto (BCERT_THREADS / hardware),
  /// 1 = sequential (bit-identical to the classic solver), N = N workers.
  int threads = 0;
  /// HC4 backend: kAuto honors BCERT_HC4_MODE (default: compiled tape).
  /// With the tape backend the conjunction is compiled once per query
  /// and shared read-only by all workers, each holding only a private
  /// interval register file.
  Hc4Mode hc4_mode = Hc4Mode::kAuto;
  /// Optional cross-query tape cache (multi-query ICP): when set,
  /// compiled tapes are reused for repeated conjunction signatures —
  /// e.g. the verifier's adaptive-δ re-checks of the same query. Must
  /// not outlive the ExprPool it caches for.
  std::shared_ptr<TapeCache> tape_cache;
  /// Frontier batch width: 0 = auto (BCERT_ICP_BATCH, default 8),
  /// 1 = scalar one-box-at-a-time (bit-identical to the classic solver,
  /// witness and stats included), N = contract sibling groups of N boxes
  /// through the batched tape sweeps. See the exploration-order contract
  /// in the file comment.
  int batch_size = 0;
  /// UNSAT-tree warm-starting across structurally identical queries.
  /// Only active when `unsat_cache` is set; the BCERT_ICP_WARM
  /// environment variable overrides this flag ("0"/"off"/"false"
  /// disables, anything else enables), mirroring BCERT_LP_WARM. Sound
  /// by construction: stale seeds silently cold-start and valid seeds
  /// partition the same search box (see the file comment).
  bool warm_start = true;
  /// Cross-query store of terminal UNSAT box trees (the verifiers
  /// install one per synthesis run). Must not outlive the ExprPool.
  std::shared_ptr<UnsatTreeCache> unsat_cache;
  /// Pool the parallel frontier and concurrent DNF dispatch run on;
  /// null = the process-global pool. The Engine points this at its
  /// owned pool so campaigns share one set of workers.
  parallel::ThreadPool* pool = nullptr;
  /// Optional external interrupt, polled cooperatively: once it fires
  /// the query stops admitting boxes and returns kUnknown promptly,
  /// exactly like an exhausted budget. The Engine wires its per-job
  /// cancellation token here so a cancelled job aborts a long-running
  /// query mid-flight instead of only between pipeline steps.
  const parallel::CancellationToken* interrupt = nullptr;
  /// Per-job memory budget (resource governor). When set, frontier
  /// growth and UNSAT-tree recording charge against it; once a charge
  /// fails the query winds down like an exhausted budget (kUnknown) and
  /// the caller maps the latched `exhausted()` flag to a typed
  /// kResourceExhausted verdict. Null = unaccounted.
  core::MemoryBudget* mem_budget = nullptr;
  /// Per-job degradation counters (pipeline-owned). When set, the
  /// ladder rungs taken inside the solver — tape compile failure → tree
  /// HC4, SIMD tier downgrade, dropped cache entry → cold start — are
  /// tallied here. Null = not recorded.
  core::DegradationCounters* degrade = nullptr;
};

/// Resolves IcpConfig::batch_size: values > 0 are taken (clamped to
/// 1024 — lane buffers are sized per worker by this), otherwise the
/// BCERT_ICP_BATCH environment variable, otherwise 8.
int resolve_icp_batch(int requested);

/// True when this config's warm-start flag, the BCERT_ICP_WARM override,
/// and the presence of an unsat_cache all allow warm starts.
bool icp_warm_enabled(const IcpConfig& config);

/// Solver statistics (one query).
struct IcpStats {
  std::uint64_t boxes_processed = 0;
  std::uint64_t boxes_pruned = 0;
  std::uint64_t splits = 0;
  /// Conjunction solves seeded from a cached UNSAT tree (a DNF query
  /// counts one per warm-seeded disjunct).
  std::uint32_t warm_starts = 0;
  double solve_time_s = 0.0;
  double max_depth_width = 0.0;  ///< smallest surviving box width seen
};

/// Result of a query: verdict + witness (for SAT / δ-SAT) + stats.
struct IcpResult {
  SatResult verdict = SatResult::kUnknown;
  std::optional<interval::Box> witness;  ///< surviving box when (δ-)SAT
  IcpStats stats;

  bool is_sat() const {
    return verdict == SatResult::kSat || verdict == SatResult::kDeltaSat;
  }
  bool is_unsat() const { return verdict == SatResult::kUnsat; }

  /// Witness midpoint (only valid when is_sat()).
  linalg::Vector witness_point() const;
};

/// δ-complete ICP solver over a shared expression pool.
class IcpSolver {
 public:
  explicit IcpSolver(const expr::ExprPool& pool, IcpConfig config = {})
      : pool_(&pool), config_(config) {}

  const IcpConfig& config() const { return config_; }
  IcpConfig& config() { return config_; }

  /// Decides ∃x ∈ \p box : conjunction(x).
  IcpResult solve(const Conjunction& conjunction,
                  const interval::Box& box) const;

  /// Decides ∃x ∈ \p box : dnf(x) by solving each disjunct; SAT short-
  /// circuits, UNSAT requires all disjuncts refuted, any UNKNOWN
  /// downgrades an otherwise-UNSAT answer to UNKNOWN. Stats accumulate
  /// across disjuncts (max_depth_width is the minimum seen anywhere) and
  /// the whole DNF shares one time/box budget.
  IcpResult solve(const Dnf& dnf, const interval::Box& box) const;

 private:
  const expr::ExprPool* pool_;
  IcpConfig config_;
};

}  // namespace bcert::smt
