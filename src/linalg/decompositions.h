#pragma once
/// \file decompositions.h
/// \brief Dense factorizations used by the pipeline: LU solves for
/// ellipsoid geometry (P⁻¹ in level-set bounds), Cholesky + symmetric
/// eigendecomposition for CMA-ES sampling, Householder QR for the
/// least-squares ("ELM") controller fits.

#include <optional>

#include "src/linalg/matrix.h"
#include "src/linalg/vector.h"

namespace bcert::linalg {

/// LU factorization with partial pivoting of a square matrix.
/// Factors PA = LU; exposes solves, determinant and inverse.
class LuDecomposition {
 public:
  /// Factors \p a. Throws std::invalid_argument if \p a is not square.
  explicit LuDecomposition(const Matrix& a);

  /// True when no zero (below tolerance) pivot was hit.
  bool invertible() const { return invertible_; }

  /// Solves A x = b. Throws std::runtime_error if singular.
  Vector solve(const Vector& b) const;

  /// Solves A X = B column-by-column. Throws std::runtime_error if singular.
  Matrix solve(const Matrix& b) const;

  /// Determinant of A (0 when singular was detected).
  double determinant() const;

  /// A⁻¹. Throws std::runtime_error if singular.
  Matrix inverse() const;

 private:
  Matrix lu_;                  // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_;
  int sign_ = 1;
  bool invertible_ = true;
};

/// Cholesky factorization A = L Lᵀ of a symmetric positive-definite matrix.
class CholeskyDecomposition {
 public:
  /// Factors \p a; `success()` reports whether \p a was numerically SPD.
  explicit CholeskyDecomposition(const Matrix& a);

  /// True when the factorization completed (a was numerically SPD).
  bool success() const { return success_; }

  /// Lower-triangular factor L. Only meaningful when success().
  const Matrix& lower() const { return l_; }

  /// Solves A x = b using the factorization.
  Vector solve(const Vector& b) const;

 private:
  Matrix l_;
  bool success_ = false;
};

/// Result of a symmetric eigendecomposition A = V diag(λ) Vᵀ.
struct SymmetricEigen {
  Vector eigenvalues;   ///< ascending order
  Matrix eigenvectors;  ///< columns correspond to `eigenvalues`
};

/// Jacobi rotation eigendecomposition for symmetric matrices.
/// Robust and simple; fine for the ≤ few-hundred sizes CMA-ES needs.
/// Throws std::invalid_argument when \p a is not symmetric.
SymmetricEigen symmetric_eigen(const Matrix& a, double tol = 1e-12,
                               int max_sweeps = 100);

/// Householder-QR least squares: minimizes ‖A x − b‖₂ for A with
/// rows ≥ cols and full column rank (rank deficiency is tolerated via
/// tiny-pivot regularization). Returns the minimizer.
Vector least_squares(const Matrix& a, const Vector& b);

/// Convenience: solve a square system via LU; std::nullopt when singular.
std::optional<Vector> solve_linear(const Matrix& a, const Vector& b);

}  // namespace bcert::linalg
