#include "src/linalg/decompositions.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace bcert::linalg {

namespace {
constexpr double kPivotTol = 1e-13;
}

LuDecomposition::LuDecomposition(const Matrix& a) : lu_(a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuDecomposition: matrix must be square");
  }
  const std::size_t n = a.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    std::size_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::fabs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < kPivotTol) {
      invertible_ = false;
      continue;
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      sign_ = -sign_;
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = lu_(r, k) / lu_(k, k);
      lu_(r, k) = m;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  if (!invertible_) throw std::runtime_error("LU solve: singular matrix");
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LU solve: size mismatch");
  Vector x(n);
  // Forward substitution with permutation (L has unit diagonal).
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Back substitution through U.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  Matrix out(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) out.set_col(c, solve(b.col(c)));
  return out;
}

double LuDecomposition::determinant() const {
  if (!invertible_) return 0.0;
  double det = sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(lu_.rows()));
}

CholeskyDecomposition::CholeskyDecomposition(const Matrix& a)
    : l_(a.rows(), a.cols()) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Cholesky: matrix must be square");
  }
  const std::size_t n = a.rows();
  success_ = true;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      double acc = a(r, c);
      for (std::size_t k = 0; k < c; ++k) acc -= l_(r, k) * l_(c, k);
      if (r == c) {
        if (acc <= 0.0) {
          success_ = false;
          return;
        }
        l_(r, c) = std::sqrt(acc);
      } else {
        l_(r, c) = acc / l_(c, c);
      }
    }
  }
}

Vector CholeskyDecomposition::solve(const Vector& b) const {
  if (!success_) throw std::runtime_error("Cholesky solve: not SPD");
  const std::size_t n = l_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("Cholesky solve: size mismatch");
  }
  Vector y(n);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[r];
    for (std::size_t c = 0; c < r; ++c) acc -= l_(r, c) * y[c];
    y[r] = acc / l_(r, r);
  }
  Vector x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= l_(c, ri) * x[c];
    x[ri] = acc / l_(ri, ri);
  }
  return x;
}

SymmetricEigen symmetric_eigen(const Matrix& a, double tol, int max_sweeps) {
  if (!a.is_symmetric(1e-9)) {
    throw std::invalid_argument("symmetric_eigen: matrix is not symmetric");
  }
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = r + 1; c < n; ++c) off += d(r, c) * d(r, c);
    if (std::sqrt(off) < tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::fabs(d(p, q)) < 1e-300) continue;
        const double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation G(p,q,θ) on both sides of D and accumulate in V.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p), dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k), dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue, permuting eigenvector columns alongside.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d(i, i) < d(j, j); });

  SymmetricEigen out;
  out.eigenvalues = Vector(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = d(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) {
      out.eigenvectors(i, j) = v(i, order[j]);
    }
  }
  return out;
}

Vector least_squares(const Matrix& a, const Vector& b) {
  const std::size_t m = a.rows(), n = a.cols();
  if (b.size() != m) throw std::invalid_argument("least_squares: size");
  if (m < n) throw std::invalid_argument("least_squares: underdetermined");

  // Householder QR, transforming b in place.
  Matrix r = a;
  Vector rhs = b;
  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-300) continue;
    const double alpha = (r(k, k) > 0) ? -norm : norm;
    Vector v(m - k);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    const double vnorm2 = dot(v, v);
    if (vnorm2 < 1e-300) continue;
    // Apply H = I - 2 v vᵀ / ‖v‖² to the remaining columns and the rhs.
    for (std::size_t c = k; c < n; ++c) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i) proj += v[i - k] * r(i, c);
      proj = 2.0 * proj / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, c) -= proj * v[i - k];
    }
    double proj = 0.0;
    for (std::size_t i = k; i < m; ++i) proj += v[i - k] * rhs[i];
    proj = 2.0 * proj / vnorm2;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= proj * v[i - k];
  }

  // Back substitution on the upper-triangular part; tiny pivots are
  // regularized so rank-deficient fits still return a finite answer.
  Vector x(n);
  for (std::size_t ki = n; ki-- > 0;) {
    double acc = rhs[ki];
    for (std::size_t c = ki + 1; c < n; ++c) acc -= r(ki, c) * x[c];
    const double piv = r(ki, ki);
    x[ki] = acc / ((std::fabs(piv) < 1e-12) ? (piv >= 0 ? 1e-12 : -1e-12)
                                            : piv);
  }
  return x;
}

std::optional<Vector> solve_linear(const Matrix& a, const Vector& b) {
  LuDecomposition lu(a);
  if (!lu.invertible()) return std::nullopt;
  return lu.solve(b);
}

}  // namespace bcert::linalg
