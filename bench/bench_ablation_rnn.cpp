// Ablation E: stateless vs stateful (recurrent) controller — the paper's
// §5 future-work configuration, quantifying its prediction that "a
// stateful controller will increase the query complexity of the
// verification question". The CTRNN adds its hidden state to the model,
// so every SMT query runs in 2+k dimensions instead of 2.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/dubins/rnn_dynamics.h"

int main() {
  using namespace bcert;

  std::printf("# Ablation E: stateless vs stateful controller "
              "(same steering law, tau = 0.1 lag)\n");
  std::printf("# %22s | %5s | %7s %9s %12s | %8s\n", "controller", "dims",
              "status", "SMT5(s)", "SMT5 boxes", "tot(s)");

  // Stateless: the static steering law as a 10-neuron feedforward net.
  {
    expr::ExprPool pool;
    const nn::FeedforwardNet net =
        dubins::distill_controller(dubins::proportional_teacher(), 10, 42);
    core::BarrierPipeline<core::QuadraticForm> v(
        bench::make_problem(pool, net), {});
    const auto t0 = std::chrono::steady_clock::now();
    const core::VerifyResult r = v.run();
    (void)t0;
    // Count boxes of one fresh decrease query for comparability.
    const smt::IcpResult q = v.check_decrease(*r.generator);
    std::printf("  %22s | %5d | %7s %9.3f %12llu | %8.2f\n",
                "feedforward (static)", 2, r.safe() ? "SAFE" : "fail",
                r.timings.smt5_time_s,
                static_cast<unsigned long long>(q.stats.boxes_processed),
                r.timings.total_time_s);
  }

  // Stateful: the same law behind a first-order CTRNN lag.
  for (const double tau : {0.1, 0.05}) {
    expr::ExprPool pool;
    const nn::Ctrnn net =
        nn::Ctrnn::lagged_policy(linalg::Vector{0.25, 2.0}, tau);
    core::BarrierProblem p;
    p.pool = &pool;
    p.sim_field = dubins::rnn_closed_loop_field({1.0, 0.0}, net);
    p.sym_field = dubins::rnn_closed_loop_field_expr({1.0, 0.0}, net, pool);
    p.initial_set = {{-1.0, -bench::kPi / 16.0, -0.25},
                     {1.0, bench::kPi / 16.0, 0.25}};
    p.safe_rect = {{-5.0, -(bench::kPi / 2.0 - bench::kEps), -1.0},
                   {5.0, bench::kPi / 2.0 - bench::kEps, 1.0}};
    p.unsafe_dims = {true, true, false};
    core::VerifierOptions opts;
    opts.trace_duration = 25.0;
    opts.icp.time_limit_s = 180.0;
    core::BarrierPipeline<core::QuadraticForm> v(p, opts);
    const core::VerifyResult r = v.run();
    char label[32];
    std::snprintf(label, sizeof label, "CTRNN lag tau=%.2f", tau);
    unsigned long long boxes = 0;
    if (r.generator) {
      boxes = v.check_decrease(*r.generator).stats.boxes_processed;
    }
    std::printf("  %22s | %5d | %7s %9.3f %12llu | %8.2f\n", label, 3,
                r.safe() ? "SAFE" : "fail", r.timings.smt5_time_s, boxes,
                r.timings.total_time_s);
    std::fflush(stdout);
  }
  std::printf("#\n# reading: one extra state dimension multiplies the "
              "branch-and-prune effort —\n# the paper's predicted "
              "complexity increase, measured. (At tau = 0.2 even\n# "
              "quartic templates are LP-infeasible; see "
              "tests/ctrnn_test.cpp.)\n");
  return 0;
}
